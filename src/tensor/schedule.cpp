#include "tensor/schedule.h"

#include <cstdio>
#include <stdexcept>

namespace tvmec::tensor {

std::string Schedule::to_string() const {
  std::string s = "mt" + std::to_string(tile_m) + "x" + std::to_string(tile_n);
  s += " kb" + std::to_string(block_k);
  s += " nb" + std::to_string(block_n);
  s += " t" + std::to_string(num_threads);
  return s;
}

Schedule Schedule::parse(const std::string& text) {
  Schedule s;
  unsigned long long bk = 0;
  unsigned long long bn = 0;
  if (std::sscanf(text.c_str(), "mt%dx%d kb%llu nb%llu t%d", &s.tile_m,
                  &s.tile_n, &bk, &bn, &s.num_threads) != 5)
    throw std::invalid_argument("Schedule::parse: malformed '" + text + "'");
  s.block_k = static_cast<std::size_t>(bk);
  s.block_n = static_cast<std::size_t>(bn);
  if (!s.valid())
    throw std::invalid_argument("Schedule::parse: invalid schedule '" +
                                text + "'");
  return s;
}

bool is_supported_tile(int tile_m, int tile_n) noexcept {
  const auto ok_m = [](int t) { return t == 1 || t == 2 || t == 4 || t == 8; };
  const auto ok_n = [](int t) {
    return t == 1 || t == 2 || t == 4 || t == 8 || t == 16 || t == 32 ||
           t == 64;
  };
  return ok_m(tile_m) && ok_n(tile_n);
}

bool Schedule::valid() const noexcept {
  if (!is_supported_tile(tile_m, tile_n)) return false;
  if (num_threads < 1 || num_threads > 256) return false;
  return true;
}

Schedule default_schedule() noexcept {
  Schedule s;
  s.tile_m = 4;
  s.tile_n = 4;
  s.block_k = 0;
  s.block_n = 0;
  s.num_threads = 1;
  return s;
}

}  // namespace tvmec::tensor
