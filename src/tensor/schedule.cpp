#include "tensor/schedule.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace tvmec::tensor {

const char* to_string(ParAxis axis) noexcept {
  switch (axis) {
    case ParAxis::M:
      return "m";
    case ParAxis::N:
      return "n";
    case ParAxis::MN:
      return "mn";
  }
  return "?";
}

std::string Schedule::to_string() const {
  std::string s = "mt" + std::to_string(tile_m) + "x" + std::to_string(tile_n);
  s += " kb" + std::to_string(block_k);
  s += " nb" + std::to_string(block_n);
  s += " t" + std::to_string(num_threads);
  s += " p";
  s += tensor::to_string(par_axis);
  s += " g" + std::to_string(par_grain);
  s += " v";
  s += tensor::to_string(variant);
  return s;
}

Schedule Schedule::parse(const std::string& text) {
  Schedule s;
  unsigned long long bk = 0;
  unsigned long long bn = 0;
  int consumed = 0;
  if (std::sscanf(text.c_str(), "mt%dx%d kb%llu nb%llu t%d%n", &s.tile_m,
                  &s.tile_n, &bk, &bn, &s.num_threads, &consumed) != 5)
    throw std::invalid_argument("Schedule::parse: malformed '" + text + "'");
  const char* rest = text.c_str() + consumed;
  while (*rest == ' ') ++rest;
  if (*rest == '\0') {
    // Legacy 5-field form: predates the parallel-axis knobs, when rows
    // of C were always partitioned.
    s.par_axis = ParAxis::M;
    s.par_grain = 0;
  } else {
    unsigned long long grain = 0;
    char axis[4] = {};
    int tail = 0;
    if (std::sscanf(rest, "p%3s g%llu%n", axis, &grain, &tail) != 2)
      throw std::invalid_argument("Schedule::parse: malformed '" + text +
                                  "'");
    if (std::strcmp(axis, "m") == 0) {
      s.par_axis = ParAxis::M;
    } else if (std::strcmp(axis, "n") == 0) {
      s.par_axis = ParAxis::N;
    } else if (std::strcmp(axis, "mn") == 0) {
      s.par_axis = ParAxis::MN;
    } else {
      throw std::invalid_argument("Schedule::parse: bad parallel axis '" +
                                  text + "'");
    }
    s.par_grain = static_cast<std::size_t>(grain);
    rest += tail;
    while (*rest == ' ') ++rest;
    if (*rest == 'v') {
      // Variant suffix; absent in pre-variant 7-field logs (-> Auto).
      const auto v = variant_from_string(rest + 1);
      if (!v)
        throw std::invalid_argument("Schedule::parse: bad variant '" + text +
                                    "'");
      s.variant = *v;
    } else if (*rest != '\0') {
      throw std::invalid_argument("Schedule::parse: malformed '" + text +
                                  "'");
    }
  }
  s.block_k = static_cast<std::size_t>(bk);
  s.block_n = static_cast<std::size_t>(bn);
  if (!s.valid())
    throw std::invalid_argument("Schedule::parse: invalid schedule '" +
                                text + "'");
  return s;
}

bool is_supported_tile(int tile_m, int tile_n) noexcept {
  const auto ok_m = [](int t) { return t == 1 || t == 2 || t == 4 || t == 8; };
  const auto ok_n = [](int t) {
    return t == 1 || t == 2 || t == 4 || t == 8 || t == 16 || t == 32 ||
           t == 64;
  };
  return ok_m(tile_m) && ok_n(tile_n);
}

bool Schedule::valid() const noexcept {
  if (!is_supported_tile(tile_m, tile_n)) return false;
  if (num_threads < 1 || num_threads > 256) return false;
  if (par_axis != ParAxis::M && par_axis != ParAxis::N &&
      par_axis != ParAxis::MN)
    return false;
  // Absurd grains (chunks of a million tiles) are pointless but harmless;
  // cap to keep to_string/parse and the search space sane.
  if (par_grain > (std::size_t{1} << 20)) return false;
  switch (variant) {
    case KernelVariant::Auto:
    case KernelVariant::Scalar:
    case KernelVariant::Avx2:
    case KernelVariant::Avx512:
    case KernelVariant::Neon:
      break;
    default:
      return false;
  }
  return true;
}

Schedule default_schedule() noexcept {
  Schedule s;
  s.tile_m = 4;
  s.tile_n = 4;
  s.block_k = 0;
  s.block_n = 0;
  s.num_threads = 1;
  s.par_axis = ParAxis::N;
  s.par_grain = 0;
  return s;
}

}  // namespace tvmec::tensor
