#pragma once

#include <cstddef>
#include <type_traits>

#include "tensor/semiring.h"
#include "tensor/variant.h"

/// Register-tiled microkernels — the library's stand-in for ML-compiler
/// codegen.
///
/// Each instantiation computes a TM x TN tile of C, accumulating over a
/// K-extent, holding the whole tile in local accumulators. This is the
/// classic GEMM outer-product microkernel; with the XorAnd64 semiring it
/// becomes the paper's Listing-2 inner loop.
///
/// Like TVM's codegen, the XorAnd64 microkernels come as a family of
/// arch-specialized variants — but unlike a compiler's, the choice is
/// made at RUNTIME, not at build time. The SIMD variants (AVX-512's
/// vpternlogq, AVX2's vpand+vpxor, NEON's vandq+veorq) live in separate
/// per-variant translation units (xorand_kernels_*.cpp) built with
/// per-file target flags; CPUID-based detection (tensor/variant.h) picks
/// the tier each call executes. This header keeps only the portable
/// generic template, which serves the non-XorAnd semirings and the
/// ragged-edge fallback. Wide N tiles (up to 64 words) amortize each
/// broadcast of an A mask over many data lanes — the key to reaching
/// XOR-roofline throughput.
namespace tvmec::tensor {

/// True when XorAnd tiles currently dispatch to SIMD-specialized code.
/// This is *runtime* truth — it reflects the variant the running host
/// (and any TVMEC_FORCE_VARIANT override) resolves to, not the flags the
/// library was compiled with.
inline bool xorand_simd_codegen() noexcept {
  return active_variant() != KernelVariant::Scalar;
}

/// Accumulates C[0..TM) x [0..TN) += A[0..TM) x [0..K) (x) B[0..K) x [0..TN)
/// under semiring S. Leading dimensions (lda/ldb/ldc) are in elements.
/// Portable codegen: XorAnd64 callers wanting the SIMD tiers go through
/// the variant dispatch in kernel.cpp instead of calling this directly.
template <class S, int TM, int TN>
void micro_gemm(const typename S::value_type* a, std::size_t lda,
                const typename S::value_type* b, std::size_t ldb,
                typename S::value_type* c, std::size_t ldc, std::size_t k) {
  using V = typename S::value_type;
  V acc[TM][TN];
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 16
    for (int j = 0; j < TN; ++j) acc[i][j] = c[i * ldc + j];
  for (std::size_t l = 0; l < k; ++l) {
    V bv[TN];
#pragma GCC unroll 16
    for (int j = 0; j < TN; ++j) bv[j] = b[l * ldb + j];
#pragma GCC unroll 8
    for (int i = 0; i < TM; ++i) {
      const V av = a[i * lda + l];
#pragma GCC unroll 16
      for (int j = 0; j < TN; ++j)
        acc[i][j] = S::add(acc[i][j], S::mul(av, bv[j]));
    }
  }
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 16
    for (int j = 0; j < TN; ++j) c[i * ldc + j] = acc[i][j];
}

/// Edge-tile fallback with runtime extents. Same semantics as micro_gemm;
/// used for the ragged borders a fixed-tile kernel cannot cover.
template <class S>
void micro_gemm_edge(const typename S::value_type* a, std::size_t lda,
                     const typename S::value_type* b, std::size_t ldb,
                     typename S::value_type* c, std::size_t ldc,
                     std::size_t k, std::size_t tm, std::size_t tn) {
  using V = typename S::value_type;
  for (std::size_t i = 0; i < tm; ++i) {
    for (std::size_t j = 0; j < tn; ++j) {
      V acc = c[i * ldc + j];
      for (std::size_t l = 0; l < k; ++l)
        acc = S::add(acc, S::mul(a[i * lda + l], b[l * ldb + j]));
      c[i * ldc + j] = acc;
    }
  }
}

}  // namespace tvmec::tensor
