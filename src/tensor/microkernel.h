#pragma once

#include <cstddef>
#include <type_traits>

#include "tensor/semiring.h"

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

/// Register-tiled microkernels — the library's stand-in for ML-compiler
/// codegen.
///
/// Each instantiation computes a TM x TN tile of C, accumulating over a
/// K-extent, holding the whole tile in local accumulators. This is the
/// classic GEMM outer-product microkernel; with the XorAnd64 semiring it
/// becomes the paper's Listing-2 inner loop.
///
/// Like TVM's codegen, the XorAnd64 microkernels are specialized for the
/// build target: on AVX-512 machines the AND+XOR pair fuses into a single
/// vpternlogq per 8 lanes, on AVX2 into a vpand+vpxor pair per 4 lanes,
/// with a portable scalar version everywhere else. Wide N tiles (up to 64
/// words) amortize each broadcast of an A mask over many data lanes —
/// the key to reaching XOR-roofline throughput.
namespace tvmec::tensor {

namespace detail {

#if defined(__AVX512F__)
inline constexpr bool kHaveAvx512 = true;

/// TM x (8*TNV) XorAnd tile with explicit zmm accumulators. The pragmas
/// force full unrolling so every accumulator stays in a register
/// (without them the register allocator spills the tile to the stack,
/// costing 2-4x).
template <int TM, int TNV>
void micro_xorand_avx512(const std::uint64_t* a, std::size_t lda,
                         const std::uint64_t* b, std::size_t ldb,
                         std::uint64_t* c, std::size_t ldc, std::size_t k) {
  __m512i acc[TM][TNV];
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      acc[i][v] = _mm512_loadu_si512(c + i * ldc + 8 * v);
  for (std::size_t l = 0; l < k; ++l) {
    __m512i bv[TNV];
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      bv[v] = _mm512_loadu_si512(b + l * ldb + 8 * v);
#pragma GCC unroll 8
    for (int i = 0; i < TM; ++i) {
      const __m512i av =
          _mm512_set1_epi64(static_cast<long long>(a[i * lda + l]));
#pragma GCC unroll 8
      for (int v = 0; v < TNV; ++v)
        // 0x78 = acc ^ (av & bv): the whole Listing-2 inner op in one
        // instruction.
        acc[i][v] = _mm512_ternarylogic_epi64(acc[i][v], av, bv[v], 0x78);
    }
  }
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      _mm512_storeu_si512(c + i * ldc + 8 * v, acc[i][v]);
}
#else
inline constexpr bool kHaveAvx512 = false;
#endif

#if defined(__AVX2__)
inline constexpr bool kHaveAvx2 = true;

/// TM x (4*TNV) XorAnd tile on 256-bit lanes (vpand + vpxor).
template <int TM, int TNV>
void micro_xorand_avx2(const std::uint64_t* a, std::size_t lda,
                       const std::uint64_t* b, std::size_t ldb,
                       std::uint64_t* c, std::size_t ldc, std::size_t k) {
  __m256i acc[TM][TNV];
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      acc[i][v] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c + i * ldc + 4 * v));
  for (std::size_t l = 0; l < k; ++l) {
    __m256i bv[TNV];
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      bv[v] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + l * ldb + 4 * v));
#pragma GCC unroll 8
    for (int i = 0; i < TM; ++i) {
      const __m256i av =
          _mm256_set1_epi64x(static_cast<long long>(a[i * lda + l]));
#pragma GCC unroll 8
      for (int v = 0; v < TNV; ++v)
        acc[i][v] =
            _mm256_xor_si256(acc[i][v], _mm256_and_si256(av, bv[v]));
    }
  }
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i * ldc + 4 * v),
                          acc[i][v]);
}
#else
inline constexpr bool kHaveAvx2 = false;
#endif

}  // namespace detail

/// True when this build dispatches XorAnd tiles to SIMD-specialized code.
constexpr bool xorand_simd_codegen() noexcept {
  return detail::kHaveAvx512 || detail::kHaveAvx2;
}

/// Accumulates C[0..TM) x [0..TN) += A[0..TM) x [0..K) (x) B[0..K) x [0..TN)
/// under semiring S. Leading dimensions (lda/ldb/ldc) are in elements.
template <class S, int TM, int TN>
void micro_gemm(const typename S::value_type* a, std::size_t lda,
                const typename S::value_type* b, std::size_t ldb,
                typename S::value_type* c, std::size_t ldc, std::size_t k) {
  if constexpr (std::is_same_v<S, XorAnd64>) {
#if defined(__AVX512F__)
    if constexpr (TN % 8 == 0) {
      detail::micro_xorand_avx512<TM, TN / 8>(a, lda, b, ldb, c, ldc, k);
      return;
    }
#endif
#if defined(__AVX2__)
    if constexpr (TN % 4 == 0) {
      detail::micro_xorand_avx2<TM, TN / 4>(a, lda, b, ldb, c, ldc, k);
      return;
    }
#endif
  }
  using V = typename S::value_type;
  V acc[TM][TN];
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 16
    for (int j = 0; j < TN; ++j) acc[i][j] = c[i * ldc + j];
  for (std::size_t l = 0; l < k; ++l) {
    V bv[TN];
#pragma GCC unroll 16
    for (int j = 0; j < TN; ++j) bv[j] = b[l * ldb + j];
#pragma GCC unroll 8
    for (int i = 0; i < TM; ++i) {
      const V av = a[i * lda + l];
#pragma GCC unroll 16
      for (int j = 0; j < TN; ++j)
        acc[i][j] = S::add(acc[i][j], S::mul(av, bv[j]));
    }
  }
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 16
    for (int j = 0; j < TN; ++j) c[i * ldc + j] = acc[i][j];
}

/// Edge-tile fallback with runtime extents. Same semantics as micro_gemm;
/// used for the ragged borders a fixed-tile kernel cannot cover.
template <class S>
void micro_gemm_edge(const typename S::value_type* a, std::size_t lda,
                     const typename S::value_type* b, std::size_t ldb,
                     typename S::value_type* c, std::size_t ldc,
                     std::size_t k, std::size_t tm, std::size_t tn) {
  using V = typename S::value_type;
  for (std::size_t i = 0; i < tm; ++i) {
    for (std::size_t j = 0; j < tn; ++j) {
      V acc = c[i * ldc + j];
      for (std::size_t l = 0; l < k; ++l)
        acc = S::add(acc, S::mul(a[i * lda + l], b[l * ldb + j]));
      c[i * ldc + j] = acc;
    }
  }
}

}  // namespace tvmec::tensor
