// AVX-512 XorAnd microkernel variant: the AND+XOR pair fuses into a
// single vpternlogq per 8 words. Compiled with per-file
// -mavx512f/-mavx512bw/-mavx512vl; selected at runtime only when CPUID
// (plus XGETBV zmm-state checks) reports all three.

#include "tensor/xorand_kernels.h"

#if defined(__AVX512F__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace tvmec::tensor {

namespace {

#include "tensor/xorand_portable_micro.inc"

/// TM x (8*TNV) XorAnd tile with explicit zmm accumulators.
template <int TM, int TNV>
void micro_avx512(const std::uint64_t* a, std::size_t lda,
                  const std::uint64_t* b, std::size_t ldb, std::uint64_t* c,
                  std::size_t ldc, std::size_t k) {
  __m512i acc[TM][TNV];
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      acc[i][v] = _mm512_loadu_si512(c + i * ldc + 8 * v);
  for (std::size_t l = 0; l < k; ++l) {
    __m512i bv[TNV];
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      bv[v] = _mm512_loadu_si512(b + l * ldb + 8 * v);
#pragma GCC unroll 8
    for (int i = 0; i < TM; ++i) {
      const __m512i av =
          _mm512_set1_epi64(static_cast<long long>(a[i * lda + l]));
#pragma GCC unroll 8
      for (int v = 0; v < TNV; ++v)
        // 0x78 = acc ^ (av & bv): the whole Listing-2 inner op in one
        // instruction.
        acc[i][v] = _mm512_ternarylogic_epi64(acc[i][v], av, bv[v], 0x78);
    }
  }
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      _mm512_storeu_si512(c + i * ldc + 8 * v, acc[i][v]);
}

/// Tiles narrower than one zmm lane fall back to the portable kernel,
/// instantiated inside this anonymous namespace (it only ever runs after
/// dispatch chose this tier, so AVX-512 codegen in it is safe).
template <int TM, int TN>
void micro(const std::uint64_t* a, std::size_t lda, const std::uint64_t* b,
           std::size_t ldb, std::uint64_t* c, std::size_t ldc,
           std::size_t k) {
  if constexpr (TN % 8 == 0) {
    micro_avx512<TM, TN / 8>(a, lda, b, ldb, c, ldc, k);
  } else {
    micro_portable<TM, TN>(a, lda, b, ldb, c, ldc, k);
  }
}

constexpr XorAndKernelTable kTable = TVMEC_XORAND_TABLE;

}  // namespace

const XorAndKernelTable* xorand_table_avx512() noexcept { return &kTable; }

}  // namespace tvmec::tensor

#else  // compiler lacked AVX-512 target support, or non-x86 architecture

namespace tvmec::tensor {
const XorAndKernelTable* xorand_table_avx512() noexcept { return nullptr; }
}  // namespace tvmec::tensor

#endif
