#pragma once

#include <cstdint>

/// Semirings: the one-line difference between GEMM and bitmatrix erasure
/// coding (paper Listings 1 vs 2). A semiring supplies the reduction
/// ("add") and combination ("mul") operators plus the additive identity;
/// every kernel in this library is generic over it.
namespace tvmec::tensor {

/// Ordinary arithmetic: GEMM.
template <typename T>
struct SumProd {
  using value_type = T;
  static constexpr T zero() noexcept { return T{}; }
  static constexpr T add(T a, T b) noexcept { return a + b; }
  static constexpr T mul(T a, T b) noexcept { return a * b; }
};

/// GF(2) arithmetic on 64-bit lanes: bitmatrix erasure coding.
/// "A" operands hold broadcast masks (0 or ~0), so `mul` (bitwise AND)
/// selects or zeroes an entire 64-bit slice of data, exactly as the
/// paper's Listing 2 formulates encoding.
struct XorAnd64 {
  using value_type = std::uint64_t;
  static constexpr std::uint64_t zero() noexcept { return 0; }
  static constexpr std::uint64_t add(std::uint64_t a, std::uint64_t b) noexcept {
    return a ^ b;
  }
  static constexpr std::uint64_t mul(std::uint64_t a, std::uint64_t b) noexcept {
    return a & b;
  }
};

}  // namespace tvmec::tensor
