#include "tensor/kernel.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "tensor/microkernel.h"
#include "tensor/threadpool.h"

namespace tvmec::tensor {

namespace {

/// Maps a supported tile_m extent {1,2,4,8} to its dispatch-table index.
int tile_m_index(int t) {
  switch (t) {
    case 1:
      return 0;
    case 2:
      return 1;
    case 4:
      return 2;
    case 8:
      return 3;
    default:
      throw std::invalid_argument("unsupported tile_m extent " +
                                  std::to_string(t));
  }
}

/// Maps a supported tile_n extent {1,2,4,8,16,32,64} to its index.
int tile_n_index(int t) {
  switch (t) {
    case 1:
      return 0;
    case 2:
      return 1;
    case 4:
      return 2;
    case 8:
      return 3;
    case 16:
      return 4;
    case 32:
      return 5;
    case 64:
      return 6;
    default:
      throw std::invalid_argument("unsupported tile_n extent " +
                                  std::to_string(t));
  }
}

template <class S>
using MicroFn = void (*)(const typename S::value_type*, std::size_t,
                         const typename S::value_type*, std::size_t,
                         typename S::value_type*, std::size_t, std::size_t);

/// The "generated code" menu: one fully unrolled microkernel per
/// (tile_m, tile_n) pair in the schedule search space.
template <class S>
constexpr std::array<std::array<MicroFn<S>, 7>, 4> make_dispatch() {
  return {{
      {{&micro_gemm<S, 1, 1>, &micro_gemm<S, 1, 2>, &micro_gemm<S, 1, 4>,
        &micro_gemm<S, 1, 8>, &micro_gemm<S, 1, 16>, &micro_gemm<S, 1, 32>,
        &micro_gemm<S, 1, 64>}},
      {{&micro_gemm<S, 2, 1>, &micro_gemm<S, 2, 2>, &micro_gemm<S, 2, 4>,
        &micro_gemm<S, 2, 8>, &micro_gemm<S, 2, 16>, &micro_gemm<S, 2, 32>,
        &micro_gemm<S, 2, 64>}},
      {{&micro_gemm<S, 4, 1>, &micro_gemm<S, 4, 2>, &micro_gemm<S, 4, 4>,
        &micro_gemm<S, 4, 8>, &micro_gemm<S, 4, 16>, &micro_gemm<S, 4, 32>,
        &micro_gemm<S, 4, 64>}},
      {{&micro_gemm<S, 8, 1>, &micro_gemm<S, 8, 2>, &micro_gemm<S, 8, 4>,
        &micro_gemm<S, 8, 8>, &micro_gemm<S, 8, 16>, &micro_gemm<S, 8, 32>,
        &micro_gemm<S, 8, 64>}},
  }};
}

template <class S>
void validate_shapes(MatView<const typename S::value_type> a,
                     MatView<const typename S::value_type> b,
                     MatView<typename S::value_type> c) {
  a.validate();
  b.validate();
  c.validate();
  if (a.rows != c.rows || b.cols != c.cols || a.cols != b.rows)
    throw std::invalid_argument("gemm: A(MxK) B(KxN) C(MxN) shape mismatch");
}

/// Executes the row range [m0, m1) of C under the given schedule.
template <class S>
void run_rows(MatView<const typename S::value_type> a,
              MatView<const typename S::value_type> b,
              MatView<typename S::value_type> c, const Schedule& s,
              std::size_t m0, std::size_t m1) {
  using V = typename S::value_type;
  static constexpr auto kDispatch = make_dispatch<S>();
  const MicroFn<S> micro =
      kDispatch[static_cast<std::size_t>(tile_m_index(s.tile_m))]
               [static_cast<std::size_t>(tile_n_index(s.tile_n))];
  const std::size_t tm = static_cast<std::size_t>(s.tile_m);
  const std::size_t tn = static_cast<std::size_t>(s.tile_n);
  const std::size_t n = c.cols;
  const std::size_t k = a.cols;
  const std::size_t block_n = s.block_n == 0 ? n : s.block_n;
  const std::size_t block_k = s.block_k == 0 ? k : s.block_k;

  // Zero the output rows once; k-blocks then accumulate into C.
  for (std::size_t i = m0; i < m1; ++i) {
    V* row = c.row(i);
    std::fill(row, row + n, S::zero());
  }

  for (std::size_t nb = 0; nb < n; nb += block_n) {
    const std::size_t nb_end = std::min(n, nb + block_n);
    for (std::size_t kb = 0; kb < k; kb += block_k) {
      const std::size_t kb_end = std::min(k, kb + block_k);
      const std::size_t kk = kb_end - kb;
      for (std::size_t i = m0; i < m1; i += tm) {
        const std::size_t mm = std::min(tm, m1 - i);
        for (std::size_t j = nb; j < nb_end; j += tn) {
          const std::size_t nn = std::min(tn, nb_end - j);
          const V* a_ptr = a.row(i) + kb;
          const V* b_ptr = b.row(kb) + j;
          V* c_ptr = c.row(i) + j;
          if (mm == tm && nn == tn) {
            micro(a_ptr, a.stride, b_ptr, b.stride, c_ptr, c.stride, kk);
          } else {
            micro_gemm_edge<S>(a_ptr, a.stride, b_ptr, b.stride, c_ptr,
                               c.stride, kk, mm, nn);
          }
        }
      }
    }
  }
}

template <class S>
void gemm_scheduled(MatView<const typename S::value_type> a,
                    MatView<const typename S::value_type> b,
                    MatView<typename S::value_type> c, const Schedule& s) {
  validate_shapes<S>(a, b, c);
  if (!s.valid()) throw std::invalid_argument("gemm: invalid schedule");
  const std::size_t m = c.rows;
  const std::size_t threads =
      std::min<std::size_t>(static_cast<std::size_t>(s.num_threads), m);
  if (threads <= 1) {
    run_rows<S>(a, b, c, s, 0, m);
    return;
  }
  // Partition rows across threads in tile_m-aligned chunks so no tile
  // straddles two workers.
  const std::size_t tm = static_cast<std::size_t>(s.tile_m);
  const std::size_t tiles = (m + tm - 1) / tm;
  const std::size_t tiles_per_thread = (tiles + threads - 1) / threads;
  ThreadPool::shared().parallel_for(threads, [&](std::size_t t) {
    const std::size_t m0 = std::min(m, t * tiles_per_thread * tm);
    const std::size_t m1 = std::min(m, (t + 1) * tiles_per_thread * tm);
    if (m0 < m1) run_rows<S>(a, b, c, s, m0, m1);
  });
}

template <class S>
void gemm_naive(MatView<const typename S::value_type> a,
                MatView<const typename S::value_type> b,
                MatView<typename S::value_type> c) {
  validate_shapes<S>(a, b, c);
  using V = typename S::value_type;
  for (std::size_t i = 0; i < c.rows; ++i) {
    for (std::size_t j = 0; j < c.cols; ++j) {
      V acc = S::zero();
      for (std::size_t l = 0; l < a.cols; ++l)
        acc = S::add(acc, S::mul(a.at(i, l), b.at(l, j)));
      c.at(i, j) = acc;
    }
  }
}

}  // namespace

void gemm_xorand(MatView<const std::uint64_t> a, MatView<const std::uint64_t> b,
                 MatView<std::uint64_t> c, const Schedule& schedule) {
  gemm_scheduled<XorAnd64>(a, b, c, schedule);
}

void gemm_sumprod_i64(MatView<const std::int64_t> a,
                      MatView<const std::int64_t> b, MatView<std::int64_t> c,
                      const Schedule& schedule) {
  gemm_scheduled<SumProd<std::int64_t>>(a, b, c, schedule);
}

void gemm_sumprod_f32(MatView<const float> a, MatView<const float> b,
                      MatView<float> c, const Schedule& schedule) {
  gemm_scheduled<SumProd<float>>(a, b, c, schedule);
}

void gemm_naive_sumprod_f32(MatView<const float> a, MatView<const float> b,
                            MatView<float> c) {
  gemm_naive<SumProd<float>>(a, b, c);
}

void gemm_naive_xorand(MatView<const std::uint64_t> a,
                       MatView<const std::uint64_t> b,
                       MatView<std::uint64_t> c) {
  gemm_naive<XorAnd64>(a, b, c);
}

void gemm_naive_sumprod_i64(MatView<const std::int64_t> a,
                            MatView<const std::int64_t> b,
                            MatView<std::int64_t> c) {
  gemm_naive<SumProd<std::int64_t>>(a, b, c);
}

}  // namespace tvmec::tensor
