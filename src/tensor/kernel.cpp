#include "tensor/kernel.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "tensor/microkernel.h"
#include "tensor/scattered.h"
#include "tensor/threadpool.h"
#include "tensor/xorand_kernels.h"

namespace tvmec::tensor {

namespace {

std::atomic<std::uint64_t> g_stage_copies{0};
std::atomic<std::uint64_t> g_stage_bytes{0};
std::atomic<std::uint64_t> g_scratch_hwm{0};

void raise_scratch_hwm(std::size_t bytes) {
  std::uint64_t prev = g_scratch_hwm.load(std::memory_order_relaxed);
  while (prev < bytes && !g_scratch_hwm.compare_exchange_weak(
                             prev, bytes, std::memory_order_relaxed)) {
  }
}

thread_local AlignedBuffer<std::uint64_t> tl_scratch;

/// Returns >= `words` of kernel scratch. Small requests reuse (and
/// geometrically grow) the thread-retained buffer, but retention is capped
/// at kScratchRetainBytes: anything larger lands in `overflow`, an
/// AlignedBuffer owned by the calling frame and freed on return, so one
/// giant batch can't pin scratch for the life of a worker thread.
std::uint64_t* acquire_scratch(std::size_t words,
                               AlignedBuffer<std::uint64_t>& overflow) {
  raise_scratch_hwm(words * sizeof(std::uint64_t));
  constexpr std::size_t kRetainWords =
      kScratchRetainBytes / sizeof(std::uint64_t);
  if (words > kRetainWords) {
    overflow = AlignedBuffer<std::uint64_t>(words);
    return overflow.data();
  }
  if (tl_scratch.size() < words)
    tl_scratch = AlignedBuffer<std::uint64_t>(
        std::min(kRetainWords, std::max(words, tl_scratch.size() * 2)));
  return tl_scratch.data();
}

/// Maps a supported tile_m extent {1,2,4,8} to its dispatch-table index.
int tile_m_index(int t) {
  switch (t) {
    case 1:
      return 0;
    case 2:
      return 1;
    case 4:
      return 2;
    case 8:
      return 3;
    default:
      throw std::invalid_argument("unsupported tile_m extent " +
                                  std::to_string(t));
  }
}

/// Maps a supported tile_n extent {1,2,4,8,16,32,64} to its index.
int tile_n_index(int t) {
  switch (t) {
    case 1:
      return 0;
    case 2:
      return 1;
    case 4:
      return 2;
    case 8:
      return 3;
    case 16:
      return 4;
    case 32:
      return 5;
    case 64:
      return 6;
    default:
      throw std::invalid_argument("unsupported tile_n extent " +
                                  std::to_string(t));
  }
}

template <class S>
using MicroFn = void (*)(const typename S::value_type*, std::size_t,
                         const typename S::value_type*, std::size_t,
                         typename S::value_type*, std::size_t, std::size_t);

/// The "generated code" menu: one fully unrolled microkernel per
/// (tile_m, tile_n) pair in the schedule search space.
template <class S>
constexpr std::array<std::array<MicroFn<S>, 7>, 4> make_dispatch() {
  return {{
      {{&micro_gemm<S, 1, 1>, &micro_gemm<S, 1, 2>, &micro_gemm<S, 1, 4>,
        &micro_gemm<S, 1, 8>, &micro_gemm<S, 1, 16>, &micro_gemm<S, 1, 32>,
        &micro_gemm<S, 1, 64>}},
      {{&micro_gemm<S, 2, 1>, &micro_gemm<S, 2, 2>, &micro_gemm<S, 2, 4>,
        &micro_gemm<S, 2, 8>, &micro_gemm<S, 2, 16>, &micro_gemm<S, 2, 32>,
        &micro_gemm<S, 2, 64>}},
      {{&micro_gemm<S, 4, 1>, &micro_gemm<S, 4, 2>, &micro_gemm<S, 4, 4>,
        &micro_gemm<S, 4, 8>, &micro_gemm<S, 4, 16>, &micro_gemm<S, 4, 32>,
        &micro_gemm<S, 4, 64>}},
      {{&micro_gemm<S, 8, 1>, &micro_gemm<S, 8, 2>, &micro_gemm<S, 8, 4>,
        &micro_gemm<S, 8, 8>, &micro_gemm<S, 8, 16>, &micro_gemm<S, 8, 32>,
        &micro_gemm<S, 8, 64>}},
  }};
}

/// Picks the microkernel for one (schedule, semiring) pair. XorAnd64 —
/// the erasure-coding semiring — dispatches through the runtime variant
/// tier: the schedule's variant knob resolved against CPUID detection
/// and any TVMEC_FORCE_VARIANT override (tensor/variant.h), so the same
/// binary runs vpternlogq on an AVX-512 host and the portable tile on a
/// machine that lacks it. Other semirings keep the template menu (their
/// codegen is whatever this TU was compiled with, which is safe by
/// construction: no per-file target flags apply here).
template <class S>
MicroFn<S> select_micro(const Schedule& s) {
  const std::size_t mi = static_cast<std::size_t>(tile_m_index(s.tile_m));
  const std::size_t ni = static_cast<std::size_t>(tile_n_index(s.tile_n));
  if constexpr (std::is_same_v<S, XorAnd64>) {
    return xorand_table(resolve_variant(s.variant))->fn[mi][ni];
  } else {
    static constexpr auto kDispatch = make_dispatch<S>();
    return kDispatch[mi][ni];
  }
}

template <class S>
void validate_shapes(MatView<const typename S::value_type> a,
                     MatView<const typename S::value_type> b,
                     MatView<typename S::value_type> c) {
  a.validate();
  b.validate();
  c.validate();
  if (a.rows != c.rows || b.cols != c.cols || a.cols != b.rows)
    throw std::invalid_argument("gemm: A(MxK) B(KxN) C(MxN) shape mismatch");
}

/// Executes the output block [m0, m1) x [n0, n1) of C under the given
/// schedule. Workers own disjoint C blocks, so this is the unit of
/// parallel work as well as the serial whole-matrix path.
template <class S>
void run_block(MatView<const typename S::value_type> a,
               MatView<const typename S::value_type> b,
               MatView<typename S::value_type> c, const Schedule& s,
               std::size_t m0, std::size_t m1, std::size_t n0,
               std::size_t n1) {
  using V = typename S::value_type;
  const MicroFn<S> micro = select_micro<S>(s);
  const std::size_t tm = static_cast<std::size_t>(s.tile_m);
  const std::size_t tn = static_cast<std::size_t>(s.tile_n);
  const std::size_t k = a.cols;
  const std::size_t block_n = s.block_n == 0 ? c.cols : s.block_n;
  const std::size_t block_k = s.block_k == 0 ? k : s.block_k;

  // Zero the owned block once; k-blocks then accumulate into C.
  for (std::size_t i = m0; i < m1; ++i) {
    V* row = c.row(i);
    std::fill(row + n0, row + n1, S::zero());
  }

  for (std::size_t nb = n0; nb < n1; nb += block_n) {
    const std::size_t nb_end = std::min(n1, nb + block_n);
    for (std::size_t kb = 0; kb < k; kb += block_k) {
      const std::size_t kb_end = std::min(k, kb + block_k);
      const std::size_t kk = kb_end - kb;
      for (std::size_t i = m0; i < m1; i += tm) {
        const std::size_t mm = std::min(tm, m1 - i);
        for (std::size_t j = nb; j < nb_end; j += tn) {
          const std::size_t nn = std::min(tn, nb_end - j);
          const V* a_ptr = a.row(i) + kb;
          const V* b_ptr = b.row(kb) + j;
          V* c_ptr = c.row(i) + j;
          if (mm == tm && nn == tn) {
            micro(a_ptr, a.stride, b_ptr, b.stride, c_ptr, c.stride, kk);
          } else {
            micro_gemm_edge<S>(a_ptr, a.stride, b_ptr, b.stride, c_ptr,
                               c.stride, kk, mm, nn);
          }
        }
      }
    }
  }
}

/// One axis split into tile-aligned chunks with the remainder spread
/// evenly: chunk sizes differ by at most one tile and no chunk is empty.
struct AxisChunks {
  std::size_t tiles = 0;   // total register tiles along the axis
  std::size_t chunks = 0;  // number of work chunks
  std::size_t tile = 0;    // tile extent in elements
  std::size_t extent = 0;  // axis extent in elements

  /// Element range [begin, end) of chunk c. Only valid for c < chunks
  /// (chunks >= 1 whenever the axis is non-empty, so no division by
  /// zero can occur for dispatched work).
  std::pair<std::size_t, std::size_t> range(std::size_t c) const {
    const std::size_t base = tiles / chunks;
    const std::size_t rem = tiles % chunks;
    const std::size_t t0 = c * base + std::min(c, rem);
    const std::size_t t1 = t0 + base + (c < rem ? 1 : 0);
    return {t0 * tile, std::min(extent, t1 * tile)};
  }
};

/// Carves `extent` into chunks of ~`grain` tiles (0 = auto: enough chunks
/// that the pool's dynamic claiming can balance load, a few per thread).
/// Degenerate shapes stay well-defined: an empty axis yields zero chunks
/// (nothing is dispatched), and an axis smaller than the grain yields a
/// single chunk covering it — never an empty range and never a
/// division by zero in range().
AxisChunks make_axis_chunks(std::size_t extent, std::size_t tile,
                            std::size_t grain, std::size_t threads) {
  AxisChunks ax;
  ax.tile = tile;
  ax.extent = extent;
  ax.tiles = (extent + tile - 1) / tile;
  if (ax.tiles == 0) {
    ax.chunks = 0;
    return ax;
  }
  constexpr std::size_t kChunksPerThread = 4;
  const std::size_t wanted =
      grain == 0 ? threads * kChunksPerThread : (ax.tiles + grain - 1) / grain;
  ax.chunks = std::clamp<std::size_t>(wanted, 1, ax.tiles);
  return ax;
}

template <class S>
void gemm_scheduled(MatView<const typename S::value_type> a,
                    MatView<const typename S::value_type> b,
                    MatView<typename S::value_type> c, const Schedule& s,
                    const CancelToken& cancel) {
  validate_shapes<S>(a, b, c);
  if (!s.valid()) throw std::invalid_argument("gemm: invalid schedule");
  const std::size_t m = c.rows;
  const std::size_t n = c.cols;
  const std::size_t threads = static_cast<std::size_t>(s.num_threads);
  const std::size_t tm = static_cast<std::size_t>(s.tile_m);
  const std::size_t tn = static_cast<std::size_t>(s.tile_n);

  if (threads <= 1) {
    if (!cancel.valid()) {
      run_block<S>(a, b, c, s, 0, m, 0, n);
      return;
    }
    // Cancellable serial path: carve N into tile-aligned chunks purely to
    // bound how much work runs between cancellation polls (a whole-matrix
    // run_block could be milliseconds — one batch-service time — per
    // check otherwise). Chunks cover at least kMinCancelWords of N so the
    // poll and the per-chunk re-entry amortize to well under a percent
    // even for small serving-sized operands.
    cancel.throw_if_cancelled();
    constexpr std::size_t kMinCancelWords = 4096;
    const std::size_t grain =
        std::max<std::size_t>(s.par_grain, (kMinCancelWords + tn - 1) / tn);
    const AxisChunks nc = make_axis_chunks(n, tn, grain, 1);
    for (std::size_t i = 0; i < nc.chunks; ++i) {
      cancel.throw_if_cancelled();
      const auto [n0, n1] = nc.range(i);
      run_block<S>(a, b, c, s, 0, m, n0, n1);
    }
    return;
  }

  ThreadPool& pool = ThreadPool::shared();

  switch (s.par_axis) {
    case ParAxis::M: {
      const AxisChunks mc = make_axis_chunks(m, tm, s.par_grain, threads);
      pool.parallel_for(
          mc.chunks,
          [&](std::size_t i) {
            const auto [m0, m1] = mc.range(i);
            run_block<S>(a, b, c, s, m0, m1, 0, n);
          },
          threads, cancel.raw());
      break;
    }
    case ParAxis::N: {
      // The EC-shaped default: each worker owns a contiguous span of
      // data words (columns of B/C) — the long axis for erasure codes.
      const AxisChunks nc = make_axis_chunks(n, tn, s.par_grain, threads);
      pool.parallel_for(
          nc.chunks,
          [&](std::size_t i) {
            const auto [n0, n1] = nc.range(i);
            run_block<S>(a, b, c, s, 0, m, n0, n1);
          },
          threads, cancel.raw());
      break;
    }
    case ParAxis::MN: {
      // 2D grid: rows split into at most `threads` chunks, columns carved
      // (by grain, or auto) so the grid still has slack to balance.
      // Chunk index = row-major over the grid.
      AxisChunks mc;
      mc.tile = tm;
      mc.extent = m;
      mc.tiles = (m + tm - 1) / tm;
      mc.chunks = std::min(threads, mc.tiles);
      const AxisChunks nc = make_axis_chunks(n, tn, s.par_grain, threads);
      pool.parallel_for(
          mc.chunks * nc.chunks,
          [&](std::size_t i) {
            const auto [m0, m1] = mc.range(i / nc.chunks);
            const auto [n0, n1] = nc.range(i % nc.chunks);
            run_block<S>(a, b, c, s, m0, m1, n0, n1);
          },
          threads, cancel.raw());
      break;
    }
  }
}

template <class S>
void gemm_naive(MatView<const typename S::value_type> a,
                MatView<const typename S::value_type> b,
                MatView<typename S::value_type> c) {
  validate_shapes<S>(a, b, c);
  using V = typename S::value_type;
  for (std::size_t i = 0; i < c.rows; ++i) {
    for (std::size_t j = 0; j < c.cols; ++j) {
      V acc = S::zero();
      for (std::size_t l = 0; l < a.cols; ++l)
        acc = S::add(acc, S::mul(a.at(i, l), b.at(l, j)));
      c.at(i, j) = acc;
    }
  }
}

/// Executes scattered columns [n0, n1): per n-block the B panel is
/// gathered fragment-by-fragment into cache-resident scratch (the packing
/// step of the tiled loop — each source word is read once per k-block,
/// while it is still warm for the microkernels), the full-M C panel
/// accumulates across k-blocks, and each C panel is scattered out exactly
/// once. Workers own disjoint column ranges, so this is both the serial
/// whole-matrix path and the unit of parallel work.
void run_scattered_range(MatView<const std::uint64_t> a,
                         const ScatteredView<const std::uint64_t>& b,
                         const ScatteredView<std::uint64_t>& c,
                         const Schedule& s, std::size_t n0, std::size_t n1,
                         const CancelToken& cancel) {
  using S = XorAnd64;
  const MicroFn<S> micro = select_micro<S>(s);
  const std::size_t tm = static_cast<std::size_t>(s.tile_m);
  const std::size_t tn = static_cast<std::size_t>(s.tile_n);
  const std::size_t m = a.rows;
  const std::size_t k = a.cols;
  const std::size_t n = b.cols();
  const std::size_t bk = s.block_k == 0 ? k : std::min(s.block_k, k);

  std::size_t bn = s.block_n;
  if (bn == 0) {
    // Unlike the contiguous path, block_n == 0 cannot mean "whole N": the
    // panel is materialized, and a full-width panel would be the staging
    // buffer this kernel exists to avoid. Size it so B-panel + C-panel
    // stay cache-resident.
    constexpr std::size_t kPanelBudgetWords =
        (std::size_t{1} << 18) / sizeof(std::uint64_t);  // 256 KiB
    bn = kPanelBudgetWords / (bk + m);
    bn = bn / tn * tn;
  }
  bn = std::max(bn, tn);

  AlignedBuffer<std::uint64_t> overflow;
  std::uint64_t* const b_panel = acquire_scratch(bk * bn + m * bn, overflow);
  std::uint64_t* const c_panel = b_panel + bk * bn;

  for (std::size_t nb = n0; nb < n1; nb += bn) {
    cancel.throw_if_cancelled();
    const std::size_t nn_blk = std::min(n1 - nb, bn);
    std::memset(c_panel, 0, m * nn_blk * sizeof(std::uint64_t));
    for (std::size_t kb = 0; kb < k; kb += bk) {
      const std::size_t kk = std::min(k, kb + bk) - kb;
      for (std::size_t r = 0; r < kk; ++r)
        b.gather((kb + r) * n + nb, nn_blk, b_panel + r * nn_blk);
      for (std::size_t i = 0; i < m; i += tm) {
        const std::size_t mm = std::min(tm, m - i);
        for (std::size_t j = 0; j < nn_blk; j += tn) {
          const std::size_t nn = std::min(tn, nn_blk - j);
          const std::uint64_t* a_ptr = a.row(i) + kb;
          const std::uint64_t* b_ptr = b_panel + j;
          std::uint64_t* c_ptr = c_panel + i * nn_blk + j;
          if (mm == tm && nn == tn) {
            micro(a_ptr, a.stride, b_ptr, nn_blk, c_ptr, nn_blk, kk);
          } else {
            micro_gemm_edge<S>(a_ptr, a.stride, b_ptr, nn_blk, c_ptr, nn_blk,
                               kk, mm, nn);
          }
        }
      }
    }
    for (std::size_t i = 0; i < m; ++i)
      c.scatter(i * n + nb, nn_blk, c_panel + i * nn_blk);
  }
}

}  // namespace

KernelStageStats kernel_stage_stats() noexcept {
  return {g_stage_copies.load(std::memory_order_relaxed),
          g_stage_bytes.load(std::memory_order_relaxed),
          g_scratch_hwm.load(std::memory_order_relaxed)};
}

void note_staging_copy(std::size_t bytes) noexcept {
  g_stage_copies.fetch_add(1, std::memory_order_relaxed);
  g_stage_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

std::size_t kernel_scratch_retained_bytes() noexcept {
  return tl_scratch.size() * sizeof(std::uint64_t);
}

void gemm_xorand_scattered(MatView<const std::uint64_t> a,
                           const ScatteredView<const std::uint64_t>& b,
                           const ScatteredView<std::uint64_t>& c,
                           const Schedule& schedule,
                           const CancelToken& cancel) {
  a.validate();
  if (!schedule.valid())
    throw std::invalid_argument("gemm: invalid schedule");
  if (a.rows != c.rows() || b.cols() != c.cols() || a.cols != b.rows())
    throw std::invalid_argument("gemm: A(MxK) B(KxN) C(MxN) shape mismatch");
  if (b.contiguous() && c.contiguous()) {
    // Physically contiguous operands need no packing at all: same code
    // path (and bytes) as the ordinary MatView kernel.
    gemm_xorand(a, b.as_matview(), c.as_matview(), schedule, cancel);
    return;
  }
  const std::size_t n = b.cols();
  const std::size_t threads = static_cast<std::size_t>(schedule.num_threads);
  if (threads <= 1) {
    run_scattered_range(a, b, c, schedule, 0, n, cancel);
    return;
  }
  // Scattered operands always partition N: M is tiny for erasure codes
  // and C panels are column-block-local, so there is nothing to gain
  // (and scatter-aliasing to lose) from splitting M.
  const AxisChunks nc = make_axis_chunks(
      n, static_cast<std::size_t>(schedule.tile_n), schedule.par_grain,
      threads);
  ThreadPool::shared().parallel_for(
      nc.chunks,
      [&](std::size_t i) {
        const auto [lo, hi] = nc.range(i);
        run_scattered_range(a, b, c, schedule, lo, hi, cancel);
      },
      threads, cancel.raw());
}

void gemm_xorand(MatView<const std::uint64_t> a, MatView<const std::uint64_t> b,
                 MatView<std::uint64_t> c, const Schedule& schedule,
                 const CancelToken& cancel) {
  gemm_scheduled<XorAnd64>(a, b, c, schedule, cancel);
}

void gemm_xorand_batched(MatView<const std::uint64_t> a,
                         std::span<const XorAndBatch> items,
                         const Schedule& schedule,
                         const CancelToken& cancel) {
  if (items.empty()) return;
  if (items.size() == 1) {
    // Oversized / lone requests bypass coalescing: no staging copy.
    gemm_xorand(a, items[0].b, items[0].c, schedule, cancel);
    return;
  }
  const std::size_t k = a.cols;
  const std::size_t m = a.rows;
  std::size_t n_total = 0;
  for (const XorAndBatch& item : items) {
    validate_shapes<XorAnd64>(a, item.b, item.c);
    n_total += item.b.cols;
  }

  // Coalescing exists to enlarge N so thread partitioning has work to
  // hand out; a serial schedule gains nothing from a wide B and would
  // pay the gather/scatter memory traffic for free. Run items
  // back-to-back instead (same results, no staging).
  if (schedule.num_threads <= 1) {
    for (const XorAndBatch& item : items) {
      cancel.throw_if_cancelled();
      gemm_xorand(a, item.b, item.c, schedule, cancel);
    }
    return;
  }

  // Zero-copy scattered dispatch: logical row r of the wide K x (sum N_i)
  // B matrix is the concatenation of every item's row r — a fragment
  // list, not a staging buffer. The scattered kernel folds the gather
  // into its panel packing, so request payloads flow to the microkernels
  // straight from the callers' buffers. (This replaces the full-batch
  // thread_local b_scratch/c_scratch staging this function used to do.)
  std::vector<Fragment<const std::uint64_t>> b_frags;
  b_frags.reserve(k * items.size());
  for (std::size_t row = 0; row < k; ++row)
    for (const XorAndBatch& item : items)
      b_frags.push_back({item.b.row(row), item.b.cols});
  std::vector<Fragment<std::uint64_t>> c_frags;
  c_frags.reserve(m * items.size());
  for (std::size_t row = 0; row < m; ++row)
    for (const XorAndBatch& item : items)
      c_frags.push_back({item.c.row(row), item.c.cols});
  gemm_xorand_scattered(
      a, ScatteredView<const std::uint64_t>(k, n_total, std::move(b_frags)),
      ScatteredView<std::uint64_t>(m, n_total, std::move(c_frags)), schedule,
      cancel);
}

void gemm_sumprod_i64(MatView<const std::int64_t> a,
                      MatView<const std::int64_t> b, MatView<std::int64_t> c,
                      const Schedule& schedule) {
  gemm_scheduled<SumProd<std::int64_t>>(a, b, c, schedule, {});
}

void gemm_sumprod_f32(MatView<const float> a, MatView<const float> b,
                      MatView<float> c, const Schedule& schedule) {
  gemm_scheduled<SumProd<float>>(a, b, c, schedule, {});
}

void gemm_naive_sumprod_f32(MatView<const float> a, MatView<const float> b,
                            MatView<float> c) {
  gemm_naive<SumProd<float>>(a, b, c);
}

void gemm_naive_xorand(MatView<const std::uint64_t> a,
                       MatView<const std::uint64_t> b,
                       MatView<std::uint64_t> c) {
  gemm_naive<XorAnd64>(a, b, c);
}

void gemm_naive_sumprod_i64(MatView<const std::int64_t> a,
                            MatView<const std::int64_t> b,
                            MatView<std::int64_t> c) {
  gemm_naive<SumProd<std::int64_t>>(a, b, c);
}

}  // namespace tvmec::tensor
