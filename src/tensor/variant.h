#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

/// Runtime SIMD-variant detection and dispatch — the seam that turns the
/// microkernel menu from a compile-time accident into a first-class tier.
///
/// Every binary carries scalar, AVX2 and AVX-512 (x86) or NEON (aarch64)
/// builds of the XorAnd microkernel family, compiled as separate
/// translation units with per-file target flags. Which one executes is a
/// *runtime* decision made here from CPUID, never from the flags the
/// library itself was compiled with: a generic build engages AVX-512 on a
/// capable host, and a binary built on that host still runs (scalar) on a
/// machine without it instead of dying on SIGILL. This is the
/// generator-emits-a-family-of-arch-specialized-microkernels pattern of
/// the TVM GEMM-generator line of work, applied at link time instead of
/// JIT time.
///
/// The variant is also one more axis of the autotuner's search space
/// (Schedule::variant): the tuner measures which tier wins per
/// (code, shape) rather than trusting the compiler, and tuning-log
/// records carry the variant so a schedule tuned on one ISA cannot
/// silently mis-tune another.
namespace tvmec::tensor {

/// One member of the XorAnd microkernel family. `Auto` is not a kernel:
/// it resolves to the best available variant at dispatch time and is the
/// default of every schedule (and the meaning assigned to legacy tuning
/// logs that predate the variant field).
enum class KernelVariant : std::uint8_t {
  Auto = 0,
  Scalar,
  Avx2,
  Avx512,
  Neon,
};

const char* to_string(KernelVariant v) noexcept;

/// Inverse of to_string; nullopt for unknown names.
std::optional<KernelVariant> variant_from_string(std::string_view name) noexcept;

/// CPUID-derived capabilities of the machine this process runs on (not
/// the machine it was built on). OS support for the wider register files
/// is included in the checks (XGETBV), so e.g. `avx2` is true only when
/// ymm state is actually saved/restored.
struct CpuFeatures {
  bool avx2 = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;
  bool gfni = false;
  bool neon = false;
};

/// Cached one-shot detection.
const CpuFeatures& cpu_features() noexcept;

/// True when `v` can execute here: the hardware supports it *and* the
/// binary carries a compiled kernel table for it (a build whose compiler
/// lacked -mavx512f support reports Avx512 unavailable even on capable
/// hardware). Auto and Scalar are always available.
bool variant_available(KernelVariant v) noexcept;

/// The concrete variants available on this host, ascending (Scalar
/// first, best last). Never empty.
std::vector<KernelVariant> available_variants();

/// The fastest available concrete variant.
KernelVariant best_variant() noexcept;

/// The forced-variant override, if any. Initialized lazily from the
/// TVMEC_FORCE_VARIANT environment variable (values: scalar, avx2,
/// avx512, neon); a name that is unknown or unavailable on this host is
/// ignored with a one-time stderr warning rather than an error, so a
/// reproducing script copied across machines degrades instead of dying.
std::optional<KernelVariant> forced_variant() noexcept;

/// Programmatic override (the test hook behind the env seam). nullopt
/// clears the force. Forcing an unavailable variant is ignored (with a
/// stderr warning) exactly like the env path.
void set_forced_variant(std::optional<KernelVariant> v) noexcept;

/// Re-reads TVMEC_FORCE_VARIANT and installs it (tests exercising the
/// env path call setenv then this). Returns what is now in force.
std::optional<KernelVariant> reload_forced_variant_from_env();

/// Dispatch resolution, in priority order: the forced variant if one is
/// set (reproducible benches force every call onto one tier), else
/// `requested` when it is concrete and available, else the best
/// available variant. Always returns a concrete, available variant.
KernelVariant resolve_variant(
    KernelVariant requested = KernelVariant::Auto) noexcept;

/// resolve_variant(Auto): what an unconstrained GEMM call executes now.
KernelVariant active_variant() noexcept;

}  // namespace tvmec::tensor
