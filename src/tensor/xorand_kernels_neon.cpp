// NEON XorAnd microkernel variant: vandq + veorq over 128-bit lanes,
// 2 words per vector. NEON is architecturally mandatory on aarch64, so
// no per-file flags are needed — the TU simply compiles to the stub on
// every other architecture and the runtime detection never offers it
// there.

#include "tensor/xorand_kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace tvmec::tensor {

namespace {

#include "tensor/xorand_portable_micro.inc"

/// TM x (2*TNV) XorAnd tile with explicit q-register accumulators.
template <int TM, int TNV>
void micro_neon(const std::uint64_t* a, std::size_t lda,
                const std::uint64_t* b, std::size_t ldb, std::uint64_t* c,
                std::size_t ldc, std::size_t k) {
  uint64x2_t acc[TM][TNV];
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v) acc[i][v] = vld1q_u64(c + i * ldc + 2 * v);
  for (std::size_t l = 0; l < k; ++l) {
    uint64x2_t bv[TNV];
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v) bv[v] = vld1q_u64(b + l * ldb + 2 * v);
#pragma GCC unroll 8
    for (int i = 0; i < TM; ++i) {
      const uint64x2_t av = vdupq_n_u64(a[i * lda + l]);
#pragma GCC unroll 8
      for (int v = 0; v < TNV; ++v)
        acc[i][v] = veorq_u64(acc[i][v], vandq_u64(av, bv[v]));
    }
  }
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v) vst1q_u64(c + i * ldc + 2 * v, acc[i][v]);
}

template <int TM, int TN>
void micro(const std::uint64_t* a, std::size_t lda, const std::uint64_t* b,
           std::size_t ldb, std::uint64_t* c, std::size_t ldc,
           std::size_t k) {
  if constexpr (TN % 2 == 0) {
    micro_neon<TM, TN / 2>(a, lda, b, ldb, c, ldc, k);
  } else {
    micro_portable<TM, TN>(a, lda, b, ldb, c, ldc, k);
  }
}

constexpr XorAndKernelTable kTable = TVMEC_XORAND_TABLE;

}  // namespace

const XorAndKernelTable* xorand_table_neon() noexcept { return &kTable; }

}  // namespace tvmec::tensor

#else  // not aarch64

namespace tvmec::tensor {
const XorAndKernelTable* xorand_table_neon() noexcept { return nullptr; }
}  // namespace tvmec::tensor

#endif
