#pragma once

#include <cstdint>

#include "tensor/buffer.h"
#include "tensor/schedule.h"
#include "tensor/semiring.h"

/// Schedule-driven blocked GEMM execution over a semiring.
///
/// `gemm_*` computes C = A (x) B (overwriting C) where (x) is the
/// semiring's combine/reduce pair:
///   - `gemm_sumprod_*`: ordinary matrix multiplication (the ML workload),
///   - `gemm_xorand`:    bitmatrix erasure coding (paper Listing 2) with
///                       A holding broadcast masks (0 or ~0ull) and B
///                       holding packed data words.
///
/// The executor applies the Schedule's cache blocking, register tiling
/// (dispatching to the template-instantiated microkernel menu) and thread
/// parallelism. `gemm_naive_*` are the unoptimized Listing-1/2 triple
/// loops used as correctness references and as the "what you'd write
/// without an ML library" baseline.
namespace tvmec::tensor {

/// Shapes must satisfy: A is MxK, B is KxN, C is MxN (each view's
/// rows/cols, with arbitrary strides). Throws std::invalid_argument on
/// mismatch or an unsupported schedule.
void gemm_xorand(MatView<const std::uint64_t> a, MatView<const std::uint64_t> b,
                 MatView<std::uint64_t> c, const Schedule& schedule);

void gemm_sumprod_i64(MatView<const std::int64_t> a,
                      MatView<const std::int64_t> b, MatView<std::int64_t> c,
                      const Schedule& schedule);

/// Single-precision GEMM — the kernel shape ML inference actually runs.
/// Exists to demonstrate (and test) that the identical schedule/microkernel
/// machinery serves both the ML workload and the erasure code, which is
/// the paper's whole premise.
void gemm_sumprod_f32(MatView<const float> a, MatView<const float> b,
                      MatView<float> c, const Schedule& schedule);

/// Reference implementations: the unoptimized triple loop.
void gemm_naive_xorand(MatView<const std::uint64_t> a,
                       MatView<const std::uint64_t> b,
                       MatView<std::uint64_t> c);

void gemm_naive_sumprod_i64(MatView<const std::int64_t> a,
                            MatView<const std::int64_t> b,
                            MatView<std::int64_t> c);

void gemm_naive_sumprod_f32(MatView<const float> a, MatView<const float> b,
                            MatView<float> c);

}  // namespace tvmec::tensor
