#pragma once

#include <cstdint>
#include <span>

#include "tensor/buffer.h"
#include "tensor/cancel.h"
#include "tensor/schedule.h"
#include "tensor/semiring.h"

/// Schedule-driven blocked GEMM execution over a semiring.
///
/// `gemm_*` computes C = A (x) B (overwriting C) where (x) is the
/// semiring's combine/reduce pair:
///   - `gemm_sumprod_*`: ordinary matrix multiplication (the ML workload),
///   - `gemm_xorand`:    bitmatrix erasure coding (paper Listing 2) with
///                       A holding broadcast masks (0 or ~0ull) and B
///                       holding packed data words.
///
/// The executor applies the Schedule's cache blocking, register tiling
/// (dispatching to the template-instantiated microkernel menu) and thread
/// parallelism. `gemm_naive_*` are the unoptimized Listing-1/2 triple
/// loops used as correctness references and as the "what you'd write
/// without an ML library" baseline.
namespace tvmec::tensor {

/// Shapes must satisfy: A is MxK, B is KxN, C is MxN (each view's
/// rows/cols, with arbitrary strides). Throws std::invalid_argument on
/// mismatch or an unsupported schedule.
///
/// `cancel`, when valid, is polled at tile-chunk granularity (between
/// the chunks the schedule's partitioning hands to the pool; serial
/// schedules are carved into N-axis chunks just for the poll, so even a
/// one-thread run observes cancellation mid-matrix). An observed flag
/// throws Cancelled; C is then partially written and must be treated as
/// garbage by the caller.
void gemm_xorand(MatView<const std::uint64_t> a, MatView<const std::uint64_t> b,
                 MatView<std::uint64_t> c, const Schedule& schedule,
                 const CancelToken& cancel = {});

/// One request of a batched xorand GEMM: every item shares the A operand
/// (the expanded bitmatrix) but brings its own B/C pair (its payload and
/// result). Shapes per item: B is KxN_i, C is MxN_i, with K = a.cols and
/// M = a.rows; the N_i may differ across items.
struct XorAndBatch {
  MatView<const std::uint64_t> b;
  MatView<std::uint64_t> c;
};

/// Multi-request GEMM with an enlarged N dimension (the serving-layer
/// batching primitive): the items' B operands are viewed side by side as
/// one logical K x (sum N_i) matrix and executed zero-copy through the
/// scattered kernel — each request's payload is a fragment of the wide
/// operand, gathered per cache panel inside the tiled loop instead of
/// being staged up front. GEMM efficiency grows with operand size, so
/// many small requests batched this way run at large-N throughput
/// instead of paying per-call tiny-N prices, and since the kernel reads
/// the callers' buffers directly there is no staging memcpy at all.
/// A single item dispatches directly. Throws std::invalid_argument on
/// any per-item shape mismatch. `cancel` follows the gemm_xorand
/// contract; the serial item-by-item path additionally polls between
/// items, and the scattered path polls between panels.
void gemm_xorand_batched(MatView<const std::uint64_t> a,
                         std::span<const XorAndBatch> items,
                         const Schedule& schedule,
                         const CancelToken& cancel = {});

/// Observability for the §5 staging tax and kernel scratch usage.
///
/// `stage_copies`/`stage_bytes` count memcpys whose only purpose is to
/// re-home operand bytes so a kernel can consume them (pointer-gather
/// staging, degenerate-alignment fallbacks). The zero-copy scattered paths
/// never bump them — panel packing inside the tiled loop is the kernel's
/// own cache blocking, not staging — so a test can assert a submit→result
/// flow performed zero staging copies. `scratch_high_water_bytes` is the
/// largest single scratch acquisition any kernel call requested.
/// Counters are process-wide, monotonic, and relaxed-atomic.
struct KernelStageStats {
  std::uint64_t stage_copies = 0;
  std::uint64_t stage_bytes = 0;
  std::uint64_t scratch_high_water_bytes = 0;
};

KernelStageStats kernel_stage_stats() noexcept;

/// Records one staging memcpy of `bytes` bytes. Called by every layer that
/// still stages (encode_ptrs gather, misaligned-buffer fallbacks), so the
/// counter means the same thing from the kernel tier up.
void note_staging_copy(std::size_t bytes) noexcept;

/// Kernel scratch retained per thread is capped at this many bytes;
/// requests beyond it are served from a transient allocation owned by the
/// calling frame instead, so one giant batch can't pin memory for the
/// life of a worker thread.
inline constexpr std::size_t kScratchRetainBytes = std::size_t{1} << 20;

/// Bytes of kernel scratch currently retained by the calling thread
/// (test hook for the retention cap).
std::size_t kernel_scratch_retained_bytes() noexcept;

void gemm_sumprod_i64(MatView<const std::int64_t> a,
                      MatView<const std::int64_t> b, MatView<std::int64_t> c,
                      const Schedule& schedule);

/// Single-precision GEMM — the kernel shape ML inference actually runs.
/// Exists to demonstrate (and test) that the identical schedule/microkernel
/// machinery serves both the ML workload and the erasure code, which is
/// the paper's whole premise.
void gemm_sumprod_f32(MatView<const float> a, MatView<const float> b,
                      MatView<float> c, const Schedule& schedule);

/// Reference implementations: the unoptimized triple loop.
void gemm_naive_xorand(MatView<const std::uint64_t> a,
                       MatView<const std::uint64_t> b,
                       MatView<std::uint64_t> c);

void gemm_naive_sumprod_i64(MatView<const std::int64_t> a,
                            MatView<const std::int64_t> b,
                            MatView<std::int64_t> c);

void gemm_naive_sumprod_f32(MatView<const float> a, MatView<const float> b,
                            MatView<float> c);

}  // namespace tvmec::tensor
