#include "tensor/variant.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "tensor/xorand_kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace tvmec::tensor {

namespace {

#if defined(__x86_64__) || defined(__i386__)

/// XGETBV: which register state the OS saves/restores. A CPU can report
/// AVX-512 while the kernel never context-switches zmm — executing it
/// anyway corrupts state, so feature bits count only with OS support.
std::uint64_t read_xcr0() {
  std::uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuFeatures detect() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  const bool osxsave = (ecx >> 27) & 1;
  if (!osxsave) return f;  // no XGETBV -> no extended state at all
  const std::uint64_t xcr0 = read_xcr0();
  const bool ymm_state = (xcr0 & 0x6) == 0x6;          // XMM + YMM
  const bool zmm_state = (xcr0 & 0xE6) == 0xE6;        // + opmask/zmm
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = ymm_state && ((ebx >> 5) & 1);
    f.avx512f = zmm_state && ((ebx >> 16) & 1);
    f.avx512bw = zmm_state && ((ebx >> 30) & 1);
    f.avx512vl = zmm_state && ((ebx >> 31) & 1);
    f.gfni = ((ecx >> 8) & 1) && ymm_state;
  }
  return f;
}

#elif defined(__aarch64__)

CpuFeatures detect() {
  CpuFeatures f;
  f.neon = true;  // Advanced SIMD is architecturally mandatory on aarch64
  return f;
}

#else

CpuFeatures detect() { return {}; }

#endif

/// Forced-variant state. 0 = uninitialized (read env on first touch),
/// 1 = no force, otherwise 1 + variant value.
std::atomic<int> g_forced{0};
std::once_flag g_env_once;

void warn_ignored(const char* what, const std::string& name) {
  std::fprintf(stderr,
               "tvmec: TVMEC_FORCE_VARIANT: ignoring %s variant '%s' "
               "(running best available instead)\n",
               what, name.c_str());
}

/// Parses and installs a force request; unknown or unavailable names are
/// ignored with a warning (never fatal — a repro script copied to a
/// lesser machine should still run, on the tiers that machine has).
std::optional<KernelVariant> parse_force(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  const std::optional<KernelVariant> v = variant_from_string(text);
  if (!v || *v == KernelVariant::Auto) {
    warn_ignored("unknown", text);
    return std::nullopt;
  }
  if (!variant_available(*v)) {
    warn_ignored("unavailable", text);
    return std::nullopt;
  }
  return v;
}

void init_forced_from_env() {
  std::call_once(g_env_once, [] {
    const std::optional<KernelVariant> v =
        parse_force(std::getenv("TVMEC_FORCE_VARIANT"));
    int expected = 0;
    g_forced.compare_exchange_strong(
        expected, v ? 2 + static_cast<int>(*v) : 1,
        std::memory_order_relaxed);  // a racing set_forced_variant wins
  });
}

}  // namespace

const char* to_string(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::Auto:
      return "auto";
    case KernelVariant::Scalar:
      return "scalar";
    case KernelVariant::Avx2:
      return "avx2";
    case KernelVariant::Avx512:
      return "avx512";
    case KernelVariant::Neon:
      return "neon";
  }
  return "?";
}

std::optional<KernelVariant> variant_from_string(
    std::string_view name) noexcept {
  for (const KernelVariant v :
       {KernelVariant::Auto, KernelVariant::Scalar, KernelVariant::Avx2,
        KernelVariant::Avx512, KernelVariant::Neon})
    if (name == to_string(v)) return v;
  return std::nullopt;
}

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures f = detect();
  return f;
}

bool variant_available(KernelVariant v) noexcept {
  const CpuFeatures& f = cpu_features();
  switch (v) {
    case KernelVariant::Auto:
    case KernelVariant::Scalar:
      return true;
    case KernelVariant::Avx2:
      return f.avx2 && xorand_table_avx2() != nullptr;
    case KernelVariant::Avx512:
      // The AVX-512 TU is compiled with f+bw+vl, so all three gate it.
      return f.avx512f && f.avx512bw && f.avx512vl &&
             xorand_table_avx512() != nullptr;
    case KernelVariant::Neon:
      return f.neon && xorand_table_neon() != nullptr;
  }
  return false;
}

std::vector<KernelVariant> available_variants() {
  std::vector<KernelVariant> out{KernelVariant::Scalar};
  for (const KernelVariant v :
       {KernelVariant::Neon, KernelVariant::Avx2, KernelVariant::Avx512})
    if (variant_available(v)) out.push_back(v);
  return out;
}

KernelVariant best_variant() noexcept {
  if (variant_available(KernelVariant::Avx512)) return KernelVariant::Avx512;
  if (variant_available(KernelVariant::Avx2)) return KernelVariant::Avx2;
  if (variant_available(KernelVariant::Neon)) return KernelVariant::Neon;
  return KernelVariant::Scalar;
}

std::optional<KernelVariant> forced_variant() noexcept {
  init_forced_from_env();
  const int raw = g_forced.load(std::memory_order_relaxed);
  if (raw <= 1) return std::nullopt;
  return static_cast<KernelVariant>(raw - 2);
}

void set_forced_variant(std::optional<KernelVariant> v) noexcept {
  init_forced_from_env();  // settle the env race once, then overwrite
  if (v && (*v == KernelVariant::Auto || !variant_available(*v))) {
    warn_ignored(*v == KernelVariant::Auto ? "unknown" : "unavailable",
                 to_string(*v));
    v = std::nullopt;
  }
  g_forced.store(v ? 2 + static_cast<int>(*v) : 1,
                 std::memory_order_relaxed);
}

std::optional<KernelVariant> reload_forced_variant_from_env() {
  init_forced_from_env();
  const std::optional<KernelVariant> v =
      parse_force(std::getenv("TVMEC_FORCE_VARIANT"));
  g_forced.store(v ? 2 + static_cast<int>(*v) : 1,
                 std::memory_order_relaxed);
  return v;
}

KernelVariant resolve_variant(KernelVariant requested) noexcept {
  if (const std::optional<KernelVariant> f = forced_variant()) return *f;
  if (requested != KernelVariant::Auto && variant_available(requested))
    return requested;
  return best_variant();
}

KernelVariant active_variant() noexcept {
  return resolve_variant(KernelVariant::Auto);
}

}  // namespace tvmec::tensor
