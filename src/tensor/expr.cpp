#include "tensor/expr.h"

#include <atomic>
#include <stdexcept>
#include <unordered_map>

#include "tensor/kernel.h"

namespace tvmec::tensor::te {

struct ExprNode {
  enum class Kind { Access, Binary, Reduce };
  Kind kind;

  // Access
  int tensor_id = -1;
  std::size_t tensor_rows = 0;
  std::size_t tensor_cols = 0;
  int row_axis = -1;
  int col_axis = -1;

  // Binary / Reduce
  BinOp op = BinOp::Add;
  Expr lhs;
  Expr rhs;

  // Reduce
  Expr body;
  IterVar axis;
};

namespace {

std::atomic<int> g_next_id{0};

int fresh_id() { return g_next_id.fetch_add(1, std::memory_order_relaxed); }

Value apply(BinOp op, Value a, Value b) {
  switch (op) {
    case BinOp::Add:
      return a + b;
    case BinOp::Mul:
      return a * b;
    case BinOp::Xor:
      return a ^ b;
    case BinOp::And:
      return a & b;
  }
  throw std::logic_error("unreachable BinOp");
}

Value identity_of(BinOp op) {
  switch (op) {
    case BinOp::Add:
    case BinOp::Xor:
      return 0;
    default:
      throw std::invalid_argument("reduce: reducer must be Add or Xor");
  }
}

using Env = std::unordered_map<int, std::size_t>;
using Tensors = std::unordered_map<int, MatView<const Value>>;

Value eval_expr(const Expr& e, const Env& env, const Tensors& tensors) {
  const ExprNode* n = e.node();
  if (n == nullptr) throw std::invalid_argument("evaluate: undefined expr");
  switch (n->kind) {
    case ExprNode::Kind::Access: {
      const auto t = tensors.find(n->tensor_id);
      if (t == tensors.end())
        throw std::invalid_argument("evaluate: unbound placeholder");
      const auto r = env.find(n->row_axis);
      const auto c = env.find(n->col_axis);
      if (r == env.end() || c == env.end())
        throw std::invalid_argument("evaluate: unbound axis in access");
      return t->second.at(r->second, c->second);
    }
    case ExprNode::Kind::Binary:
      return apply(n->op, eval_expr(n->lhs, env, tensors),
                   eval_expr(n->rhs, env, tensors));
    case ExprNode::Kind::Reduce: {
      Value acc = identity_of(n->op);
      Env inner = env;
      for (std::size_t v = 0; v < n->axis.extent; ++v) {
        inner[n->axis.id] = v;
        acc = apply(n->op, acc, eval_expr(n->body, inner, tensors));
      }
      return acc;
    }
  }
  throw std::logic_error("unreachable expr kind");
}

Tensors bind_tensors(const std::vector<Binding>& bindings) {
  Tensors tensors;
  for (const Binding& b : bindings) {
    b.view.validate();
    if (!tensors.emplace(b.placeholder_id, b.view).second)
      throw std::invalid_argument("duplicate binding for placeholder");
  }
  return tensors;
}

}  // namespace

Expr Placeholder::operator()(const IterVar& row, const IterVar& col) const {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Access;
  n->tensor_id = id_;
  n->tensor_rows = rows_;
  n->tensor_cols = cols_;
  n->row_axis = row.id;
  n->col_axis = col.id;
  return Expr(std::move(n));
}

Placeholder placeholder(std::size_t rows, std::size_t cols,
                        const std::string& name) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("placeholder: zero dimension");
  return Placeholder(fresh_id(), rows, cols, name);
}

IterVar reduce_axis(std::size_t extent, const std::string& name) {
  if (extent == 0) throw std::invalid_argument("reduce_axis: zero extent");
  return IterVar{fresh_id(), extent, name};
}

Expr binary(BinOp op, const Expr& lhs, const Expr& rhs) {
  if (!lhs.defined() || !rhs.defined())
    throw std::invalid_argument("binary: undefined operand");
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Binary;
  n->op = op;
  n->lhs = lhs;
  n->rhs = rhs;
  return Expr(std::move(n));
}

Expr reduce(BinOp op, const Expr& body, const IterVar& axis) {
  identity_of(op);  // validates the reducer
  if (!body.defined()) throw std::invalid_argument("reduce: undefined body");
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Reduce;
  n->op = op;
  n->body = body;
  n->axis = axis;
  return Expr(std::move(n));
}

ComputeDef compute(std::size_t rows, std::size_t cols,
                   const std::function<Expr(IterVar, IterVar)>& fn) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("compute: zero dimension");
  ComputeDef def;
  def.rows = rows;
  def.cols = cols;
  def.i = IterVar{fresh_id(), rows, "i"};
  def.j = IterVar{fresh_id(), cols, "j"};
  def.body = fn(def.i, def.j);
  if (!def.body.defined())
    throw std::invalid_argument("compute: body is undefined");
  return def;
}

void evaluate(const ComputeDef& def, const std::vector<Binding>& bindings,
              MatView<Value> out) {
  out.validate();
  if (out.rows != def.rows || out.cols != def.cols)
    throw std::invalid_argument("evaluate: output shape mismatch");
  const Tensors tensors = bind_tensors(bindings);
  Env env;
  for (std::size_t i = 0; i < def.rows; ++i) {
    env[def.i.id] = i;
    for (std::size_t j = 0; j < def.cols; ++j) {
      env[def.j.id] = j;
      out.at(i, j) = eval_expr(def.body, env, tensors);
    }
  }
}

LoweredGemm lower(const ComputeDef& def) {
  const ExprNode* red = def.body.node();
  if (red == nullptr || red->kind != ExprNode::Kind::Reduce)
    throw std::invalid_argument("lower: body must be a reduction");
  const ExprNode* bin = red->body.node();
  if (bin == nullptr || bin->kind != ExprNode::Kind::Binary)
    throw std::invalid_argument("lower: reduction body must be binary");
  const ExprNode* a = bin->lhs.node();
  const ExprNode* b = bin->rhs.node();
  if (a == nullptr || b == nullptr || a->kind != ExprNode::Kind::Access ||
      b->kind != ExprNode::Kind::Access)
    throw std::invalid_argument("lower: operands must be tensor accesses");

  LoweredGemm g;
  if (red->op == BinOp::Add && bin->op == BinOp::Mul) {
    g.kind_ = LoweredGemm::Kind::SumProd;
  } else if (red->op == BinOp::Xor && bin->op == BinOp::And) {
    g.kind_ = LoweredGemm::Kind::XorAnd;
  } else {
    throw std::invalid_argument(
        "lower: reducer/combiner must be (Add,Mul) or (Xor,And)");
  }

  // Expect A(i, k) and B(k, j) with k the reduction axis.
  const int k_id = red->axis.id;
  if (a->row_axis != def.i.id || a->col_axis != k_id || b->row_axis != k_id ||
      b->col_axis != def.j.id)
    throw std::invalid_argument(
        "lower: expected GEMM access pattern A(i,k), B(k,j)");
  if (a->tensor_rows != def.rows || a->tensor_cols != red->axis.extent ||
      b->tensor_rows != red->axis.extent || b->tensor_cols != def.cols)
    throw std::invalid_argument("lower: placeholder shapes do not match axes");

  g.a_id_ = a->tensor_id;
  g.b_id_ = b->tensor_id;
  g.rows_ = def.rows;
  g.cols_ = def.cols;
  g.red_ = red->axis.extent;
  return g;
}

void LoweredGemm::run(const std::vector<Binding>& bindings,
                      MatView<Value> out, const Schedule& schedule) const {
  out.validate();
  if (out.rows != rows_ || out.cols != cols_)
    throw std::invalid_argument("LoweredGemm::run: output shape mismatch");
  const Tensors tensors = bind_tensors(bindings);
  const auto a_it = tensors.find(a_id_);
  const auto b_it = tensors.find(b_id_);
  if (a_it == tensors.end() || b_it == tensors.end())
    throw std::invalid_argument("LoweredGemm::run: missing binding");
  const MatView<const Value> a = a_it->second;
  const MatView<const Value> b = b_it->second;
  if (a.rows != rows_ || a.cols != red_ || b.rows != red_ || b.cols != cols_)
    throw std::invalid_argument("LoweredGemm::run: operand shape mismatch");

  if (kind_ == Kind::XorAnd) {
    gemm_xorand(a, b, out, schedule);
  } else {
    // uint64 wraparound addition/multiplication is bit-identical to the
    // int64 kernel's two's-complement arithmetic, so reuse it.
    const MatView<const std::int64_t> ai{
        reinterpret_cast<const std::int64_t*>(a.data), a.rows, a.cols,
        a.stride};
    const MatView<const std::int64_t> bi{
        reinterpret_cast<const std::int64_t*>(b.data), b.rows, b.cols,
        b.stride};
    const MatView<std::int64_t> ci{reinterpret_cast<std::int64_t*>(out.data),
                                   out.rows, out.cols, out.stride};
    gemm_sumprod_i64(ai, bi, ci, schedule);
  }
}

}  // namespace tvmec::tensor::te
