#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>

/// Cooperative cancellation for long-running kernel work.
///
/// The model is a single atomic flag shared between whoever may decide to
/// stop the work (a CancelSource, or any owner of the underlying atomic)
/// and the code doing it (which holds a CancelToken). Kernels poll the
/// flag at work-chunk boundaries — one relaxed load per claimed chunk, a
/// cost that disappears next to the chunk itself — and unwind with
/// `Cancelled` when they observe it. Cancellation is therefore *prompt*
/// (bounded by one chunk of work) but never preemptive: a participant
/// finishes the chunk it already claimed, so partially-written outputs
/// are the only side effect and no lock is ever abandoned.
namespace tvmec::tensor {

/// Thrown by cancellable entry points when they observe a set flag. A
/// distinct type (not a generic runtime_error catch-all) so callers can
/// tell "the work was stopped on purpose" from "the work failed".
struct Cancelled : std::runtime_error {
  Cancelled() : std::runtime_error("cancelled") {}
};

/// Read side of the flag. Default-constructed tokens are *invalid*: they
/// never report cancellation and add no polling cost, which is what lets
/// every kernel entry point take one as a defaulted parameter.
class CancelToken {
 public:
  CancelToken() = default;
  /// Wraps an externally-owned flag. The shared_ptr keeps the flag alive
  /// for the token's lifetime (an aliasing shared_ptr works: the serving
  /// layer embeds the flag in its per-request completion record).
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  bool valid() const noexcept { return flag_ != nullptr; }
  bool cancelled() const noexcept {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }
  void throw_if_cancelled() const {
    if (cancelled()) throw Cancelled{};
  }
  /// The raw flag for the thread pool's per-chunk poll (nullptr when
  /// invalid — the pool skips the check entirely).
  const std::atomic<bool>* raw() const noexcept { return flag_.get(); }

 private:
  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side: owns a flag and mints tokens for it. Copyable (copies
/// share the flag); request_cancel is sticky and idempotent.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() noexcept {
    flag_->store(true, std::memory_order_release);
  }
  bool cancel_requested() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }
  CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace tvmec::tensor
