#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/variant.h"

/// The per-variant XorAnd microkernel tables.
///
/// Each SIMD variant lives in its own translation unit
/// (xorand_kernels_<variant>.cpp) compiled with per-file target flags
/// (-mavx2, -mavx512f ...), and everything inside those TUs sits in an
/// anonymous namespace: no symbol compiled for a higher ISA can be picked
/// by the linker over a portable one (the ODR/comdat-folding trap that
/// makes template-based multi-ISA builds SIGILL). The only things a
/// variant TU exports are the table getters declared here, which return
/// a pointer to a constexpr table of function pointers — taking the
/// table's address executes no target-specific instruction.
///
/// A getter returns nullptr when the variant was not compiled in (wrong
/// architecture, or a compiler without the target flags); runtime
/// availability (tensor/variant.h) is "hardware supports it AND the
/// table is non-null".
namespace tvmec::tensor {

/// Signature shared by every XorAnd microkernel: accumulate a
/// tile_m x tile_n tile of C over a K extent (see micro_gemm).
using XorAndMicroFn = void (*)(const std::uint64_t* a, std::size_t lda,
                               const std::uint64_t* b, std::size_t ldb,
                               std::uint64_t* c, std::size_t ldc,
                               std::size_t k);

/// One kernel per (tile_m, tile_n) point of the schedule menu, indexed
/// [tile_m_index][tile_n_index] for tile_m in {1,2,4,8} and tile_n in
/// {1,2,4,8,16,32,64} (the same index maps as kernel.cpp's dispatch).
struct XorAndKernelTable {
  XorAndMicroFn fn[4][7];
};

const XorAndKernelTable* xorand_table_scalar() noexcept;  // never null
const XorAndKernelTable* xorand_table_avx2() noexcept;
const XorAndKernelTable* xorand_table_avx512() noexcept;
const XorAndKernelTable* xorand_table_neon() noexcept;

/// Table for a *concrete* variant; nullptr when that variant is not
/// compiled into this binary (Auto also returns nullptr — resolve first).
const XorAndKernelTable* xorand_table(KernelVariant v) noexcept;

/// Builds the 4x7 table from a TU-local `micro<TM, TN>` function
/// template. Used inside each variant TU's anonymous namespace.
#define TVMEC_XORAND_ROW(TM)                                          \
  {                                                                   \
    &micro<TM, 1>, &micro<TM, 2>, &micro<TM, 4>, &micro<TM, 8>,       \
        &micro<TM, 16>, &micro<TM, 32>, &micro<TM, 64>                \
  }
#define TVMEC_XORAND_TABLE                                            \
  {                                                                   \
    {                                                                 \
      TVMEC_XORAND_ROW(1), TVMEC_XORAND_ROW(2), TVMEC_XORAND_ROW(4),  \
          TVMEC_XORAND_ROW(8)                                         \
    }                                                                 \
  }

}  // namespace tvmec::tensor
