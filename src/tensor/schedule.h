#pragma once

#include <cstddef>
#include <string>

#include "tensor/variant.h"

/// Kernel schedules: the knobs an ML compiler's autotuner turns.
///
/// A Schedule describes *how* a GEMM-shaped loop nest is executed — register
/// tiling, cache blocking, and thread parallelism — without changing *what*
/// it computes. This mirrors TVM's separation of compute definition from
/// schedule, which is the mechanism the paper exploits: the erasure-coding
/// compute definition differs from GEMM only in its inner ops, so the whole
/// schedule machinery applies unchanged.
namespace tvmec::tensor {

/// Which loop axis parallel schedules partition across threads.
///
/// For erasure coding M is tiny (out_units * w, e.g. 32 rows) while N is
/// the long data axis (words per unit), so partitioning over N — each
/// worker owning a contiguous span of data words — is what keeps every
/// core busy. M-partitioning is retained for tall ML-shaped GEMMs, and
/// MN tiles both axes into a 2D chunk grid.
enum class ParAxis { M, N, MN };

const char* to_string(ParAxis axis) noexcept;

struct Schedule {
  /// Register-tile height: rows of C accumulated simultaneously.
  int tile_m = 4;
  /// Register-tile width in elements: columns of C accumulated
  /// simultaneously (these become vector lanes in the specialized
  /// microkernels; wide tiles amortize A-operand broadcasts).
  int tile_n = 4;
  /// Cache-block depth over the reduction axis; 0 means no blocking
  /// (one pass over the full K extent).
  std::size_t block_k = 0;
  /// Cache-block width over the N axis; 0 means no blocking.
  std::size_t block_n = 0;
  /// Worker threads participating in one GEMM call. 1 = serial.
  int num_threads = 1;
  /// Loop axis partitioned across threads (ignored when num_threads == 1).
  ParAxis par_axis = ParAxis::N;
  /// Chunk grain for dynamic load balancing: register tiles per work
  /// chunk along the partitioned axis (the N axis for MN). 0 = auto
  /// (sized so each thread sees a handful of chunks to steal).
  std::size_t par_grain = 0;
  /// SIMD microkernel tier the schedule was tuned for. Auto = resolve to
  /// the best tier the running host supports; a concrete tier is honored
  /// only when available (and a TVMEC_FORCE_VARIANT override beats both),
  /// so a log tuned on an AVX-512 box still runs — on a lesser tier —
  /// anywhere. Only the XorAnd64 kernels consult this knob.
  KernelVariant variant = KernelVariant::Auto;

  /// Human-readable form, e.g. "mt4x8 kb64 nb2048 t4 pn g0 vauto", used
  /// in tuning logs.
  std::string to_string() const;

  /// Parses the to_string() format back into a Schedule — the mechanism
  /// behind persisting tuned kernels (TVM's "export the autotuned
  /// schedule" workflow, §5/§7.1 of the paper). The pre-parallel-axis
  /// 5-field form ("mt4x8 kb64 nb2048 t4") is still accepted and maps
  /// to M-partitioning with auto grain, which is what that era of logs
  /// actually ran; the pre-variant 7-field form maps to variant=Auto
  /// (those logs ran whatever the build's compile-time ISA was — Auto
  /// reproduces "best this host offers"). Throws std::invalid_argument
  /// on malformed input or an invalid schedule.
  static Schedule parse(const std::string& text);

  /// True if every knob is inside the range the kernel dispatcher supports.
  bool valid() const noexcept;

  bool operator==(const Schedule&) const = default;
};

/// Register-tile extents the microkernel menu was instantiated for.
/// (The dispatch table in kernel.cpp covers the cross product.)
bool is_supported_tile(int tile_m, int tile_n) noexcept;

/// A safe default schedule that performs reasonably everywhere; tuning
/// starts from — and must beat — this.
Schedule default_schedule() noexcept;

}  // namespace tvmec::tensor
