#pragma once

#include <cstddef>
#include <string>

/// Kernel schedules: the knobs an ML compiler's autotuner turns.
///
/// A Schedule describes *how* a GEMM-shaped loop nest is executed — register
/// tiling, cache blocking, and thread parallelism — without changing *what*
/// it computes. This mirrors TVM's separation of compute definition from
/// schedule, which is the mechanism the paper exploits: the erasure-coding
/// compute definition differs from GEMM only in its inner ops, so the whole
/// schedule machinery applies unchanged.
namespace tvmec::tensor {

struct Schedule {
  /// Register-tile height: rows of C accumulated simultaneously.
  int tile_m = 4;
  /// Register-tile width in elements: columns of C accumulated
  /// simultaneously (these become vector lanes in the specialized
  /// microkernels; wide tiles amortize A-operand broadcasts).
  int tile_n = 4;
  /// Cache-block depth over the reduction axis; 0 means no blocking
  /// (one pass over the full K extent).
  std::size_t block_k = 0;
  /// Cache-block width over the N axis; 0 means no blocking.
  std::size_t block_n = 0;
  /// Worker threads; rows of C are partitioned across them. 1 = serial.
  int num_threads = 1;

  /// Human-readable form, e.g. "mt4x8 kb64 nb2048 t1", used in tuning logs.
  std::string to_string() const;

  /// Parses the to_string() format back into a Schedule — the mechanism
  /// behind persisting tuned kernels (TVM's "export the autotuned
  /// schedule" workflow, §5/§7.1 of the paper). Throws
  /// std::invalid_argument on malformed input or an invalid schedule.
  static Schedule parse(const std::string& text);

  /// True if every knob is inside the range the kernel dispatcher supports.
  bool valid() const noexcept;

  bool operator==(const Schedule&) const = default;
};

/// Register-tile extents the microkernel menu was instantiated for.
/// (The dispatch table in kernel.cpp covers the cross product.)
bool is_supported_tile(int tile_m, int tile_n) noexcept;

/// A safe default schedule that performs reasonably everywhere; tuning
/// starts from — and must beat — this.
Schedule default_schedule() noexcept;

}  // namespace tvmec::tensor
