// AVX2 XorAnd microkernel variant: vpand + vpxor over 256-bit lanes,
// 4 words per vector. Compiled with per-file -mavx2 (see
// src/tensor/CMakeLists.txt); selected at runtime only when CPUID
// reports AVX2, so the rest of the binary stays portable.

#include "tensor/xorand_kernels.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace tvmec::tensor {

namespace {

#include "tensor/xorand_portable_micro.inc"

/// TM x (4*TNV) XorAnd tile with explicit ymm accumulators. The pragmas
/// force full unrolling so every accumulator stays in a register
/// (without them the register allocator spills the tile to the stack,
/// costing 2-4x).
template <int TM, int TNV>
void micro_avx2(const std::uint64_t* a, std::size_t lda,
                const std::uint64_t* b, std::size_t ldb, std::uint64_t* c,
                std::size_t ldc, std::size_t k) {
  __m256i acc[TM][TNV];
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      acc[i][v] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c + i * ldc + 4 * v));
  for (std::size_t l = 0; l < k; ++l) {
    __m256i bv[TNV];
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      bv[v] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + l * ldb + 4 * v));
#pragma GCC unroll 8
    for (int i = 0; i < TM; ++i) {
      const __m256i av =
          _mm256_set1_epi64x(static_cast<long long>(a[i * lda + l]));
#pragma GCC unroll 8
      for (int v = 0; v < TNV; ++v)
        acc[i][v] = _mm256_xor_si256(acc[i][v], _mm256_and_si256(av, bv[v]));
    }
  }
#pragma GCC unroll 8
  for (int i = 0; i < TM; ++i)
#pragma GCC unroll 8
    for (int v = 0; v < TNV; ++v)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i * ldc + 4 * v),
                          acc[i][v]);
}

/// Tiles narrower than one ymm lane fall back to the portable kernel —
/// instantiated inside THIS anonymous namespace, so it may legitimately
/// use AVX2 codegen: it only ever runs after dispatch chose this tier.
template <int TM, int TN>
void micro(const std::uint64_t* a, std::size_t lda, const std::uint64_t* b,
           std::size_t ldb, std::uint64_t* c, std::size_t ldc,
           std::size_t k) {
  if constexpr (TN % 4 == 0) {
    micro_avx2<TM, TN / 4>(a, lda, b, ldb, c, ldc, k);
  } else {
    micro_portable<TM, TN>(a, lda, b, ldb, c, ldc, k);
  }
}

constexpr XorAndKernelTable kTable = TVMEC_XORAND_TABLE;

}  // namespace

const XorAndKernelTable* xorand_table_avx2() noexcept { return &kTable; }

}  // namespace tvmec::tensor

#else  // compiler lacked AVX2 target support, or non-x86 architecture

namespace tvmec::tensor {
const XorAndKernelTable* xorand_table_avx2() noexcept { return nullptr; }
}  // namespace tvmec::tensor

#endif
