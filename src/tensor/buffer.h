#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <stdexcept>

/// Aligned owning buffers for kernel operands.
///
/// GEMM-style kernels want their operands cache-line aligned so vector
/// loads never straddle lines; this is the allocation type every matrix
/// operand in the library uses.
namespace tvmec::tensor {

/// Cache-line / vector-register friendly alignment for all operands.
inline constexpr std::size_t kBufferAlignment = 64;

/// An owning, 64-byte-aligned, fixed-size buffer of trivially copyable T.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  AlignedBuffer() noexcept = default;

  /// Allocates `count` value-initialized elements.
  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    const std::size_t bytes =
        (count * sizeof(T) + kBufferAlignment - 1) / kBufferAlignment *
        kBufferAlignment;
    data_ = static_cast<T*>(
        ::operator new(bytes, std::align_val_t{kBufferAlignment}));
    std::memset(data_, 0, bytes);
  }

  AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_) {
    if (size_ != 0) std::memcpy(data_, other.data_, size_ * sizeof(T));
  }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }
  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    swap(other);
    return *this;
  }
  ~AlignedBuffer() {
    if (data_ != nullptr)
      ::operator delete(data_, std::align_val_t{kBufferAlignment});
  }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  std::span<T> span() noexcept { return {data_, size_}; }
  std::span<const T> span() const noexcept { return {data_, size_}; }

  void fill_zero() noexcept {
    if (size_ != 0) std::memset(data_, 0, size_ * sizeof(T));
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// A non-owning strided 2-D view over row-major data, the operand type all
/// kernels take. `stride` is in elements, not bytes.
template <typename T>
struct MatView {
  T* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t stride = 0;  ///< distance between row starts, >= cols

  T* row(std::size_t r) const noexcept { return data + r * stride; }
  T& at(std::size_t r, std::size_t c) const noexcept {
    return data[r * stride + c];
  }

  /// Throws std::invalid_argument when the view is malformed.
  void validate() const {
    if (rows == 0 || cols == 0)
      throw std::invalid_argument("MatView: zero dimension");
    if (data == nullptr) throw std::invalid_argument("MatView: null data");
    if (stride < cols) throw std::invalid_argument("MatView: stride < cols");
  }

  MatView<const T> as_const() const noexcept {
    return {data, rows, cols, stride};
  }
};

}  // namespace tvmec::tensor
