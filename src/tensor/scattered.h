#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "tensor/buffer.h"
#include "tensor/cancel.h"
#include "tensor/schedule.h"

/// Scattered (iovec-style) GEMM operands.
///
/// Erasure-coding callers rarely hold their data contiguously: Jerasure-style
/// APIs hand the codec one pointer per unit, the serving layer batches many
/// requests whose payloads live in unrelated client buffers, and decode reads
/// survivors straight out of stripe storage. Staging all of that into one
/// contiguous matrix before the kernel runs is the §5 memcpy tax the paper
/// measures at 60–140%. A ScatteredView describes the logical row-major
/// operand as a fragment list instead, and gemm_xorand_scattered folds the
/// gather into the panel-packing step the tiled loop performs anyway — each
/// fragment's words are touched once, in cache, as part of packing, rather
/// than being re-streamed through a full-size staging buffer first.
namespace tvmec::tensor {

/// One physically contiguous piece of a logical operand stream.
/// `words` counts elements (not bytes); fragments must be non-empty.
template <typename T>
struct Fragment {
  T* ptr = nullptr;
  std::size_t words = 0;
};

/// A logical rows x cols row-major matrix whose element stream is split
/// into arbitrary word-granular fragments. Fragment boundaries need not
/// respect row boundaries: the concatenated fragments ARE the row-major
/// stream, in order. Invariants (checked at construction):
///   - every fragment has a non-null pointer and words >= 1,
///   - sum of fragment words == rows * cols,
///   - rows >= 1 and cols >= 1.
/// The view does not own the fragment storage; callers keep the underlying
/// buffers alive and unmoved while a kernel consumes the view.
template <typename T>
class ScatteredView {
 public:
  ScatteredView() = default;

  ScatteredView(std::size_t rows, std::size_t cols,
                std::vector<Fragment<T>> fragments)
      : rows_(rows), cols_(cols), fragments_(std::move(fragments)) {
    if (rows_ == 0 || cols_ == 0)
      throw std::invalid_argument("ScatteredView: zero dimension");
    offsets_.reserve(fragments_.size() + 1);
    offsets_.push_back(0);
    for (const Fragment<T>& f : fragments_) {
      if (f.ptr == nullptr)
        throw std::invalid_argument("ScatteredView: null fragment");
      if (f.words == 0)
        throw std::invalid_argument("ScatteredView: empty fragment");
      offsets_.push_back(offsets_.back() + f.words);
    }
    if (offsets_.back() != rows_ * cols_)
      throw std::invalid_argument(
          "ScatteredView: fragment words != rows * cols");
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t fragment_count() const noexcept { return fragments_.size(); }

  /// A single-fragment view is physically contiguous and eligible for the
  /// ordinary MatView kernel path with no packing at all.
  bool contiguous() const noexcept { return fragments_.size() == 1; }

  /// Only valid when contiguous().
  MatView<T> as_matview() const noexcept {
    return {fragments_.front().ptr, rows_, cols_, cols_};
  }

  /// Copies the logical word range [pos, pos + len) into dst. This is the
  /// packing primitive: kernels call it per cache panel so every source
  /// word is read exactly once per k-block.
  void gather(std::size_t pos, std::size_t len,
              std::remove_const_t<T>* dst) const noexcept {
    std::size_t f = fragment_index(pos);
    std::size_t off = pos - offsets_[f];
    while (len > 0) {
      const std::size_t take = std::min(len, fragments_[f].words - off);
      std::memcpy(dst, fragments_[f].ptr + off, take * sizeof(T));
      dst += take;
      len -= take;
      ++f;
      off = 0;
    }
  }

  /// Copies src over the logical word range [pos, pos + len). Only
  /// instantiable for mutable views.
  void scatter(std::size_t pos, std::size_t len, const T* src) const noexcept {
    static_assert(!std::is_const_v<T>,
                  "ScatteredView::scatter requires a mutable view");
    std::size_t f = fragment_index(pos);
    std::size_t off = pos - offsets_[f];
    while (len > 0) {
      const std::size_t take = std::min(len, fragments_[f].words - off);
      std::memcpy(fragments_[f].ptr + off, src, take * sizeof(T));
      src += take;
      len -= take;
      ++f;
      off = 0;
    }
  }

 private:
  /// Index of the fragment containing logical position pos (pos < total).
  std::size_t fragment_index(std::size_t pos) const noexcept {
    return static_cast<std::size_t>(
               std::upper_bound(offsets_.begin(), offsets_.end(), pos) -
               offsets_.begin()) -
           1;
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Fragment<T>> fragments_;
  std::vector<std::size_t> offsets_;  // prefix sums; offsets_[i] = start of i
};

/// C = A (x) B over the XorAnd semiring with scattered B and C operands.
/// Shapes: A is MxK (a MatView of broadcast masks), B is KxN, C is MxN.
///
/// Execution folds the gather into packing: per (n-block, k-block) the B
/// panel is assembled from fragments into a cache-resident scratch panel,
/// the register-tile microkernels accumulate into a C panel, and each C
/// panel is scattered out exactly once. When both B and C are contiguous
/// (single fragment) this dispatches to the plain gemm_xorand path.
///
/// Parallel schedules always partition the N axis (EC's long axis);
/// par_axis M/MN are accepted but treated as N since C panels are
/// column-block-local. `cancel` is polled between panels and chunks.
void gemm_xorand_scattered(MatView<const std::uint64_t> a,
                           const ScatteredView<const std::uint64_t>& b,
                           const ScatteredView<std::uint64_t>& c,
                           const Schedule& schedule,
                           const CancelToken& cancel = {});

}  // namespace tvmec::tensor
