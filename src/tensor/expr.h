#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/buffer.h"
#include "tensor/schedule.h"

/// A tensor-expression front end mirroring TVM's `te` API.
///
/// The paper's Listing 3 declares a GEMM and a bitmatrix erasure code in
/// TVM with identical structure, differing only in the reducer (sum vs
/// xor) and combiner (mul vs and). This module reproduces that interface:
///
///   auto A = te::placeholder(M, K, "A");
///   auto B = te::placeholder(K, N, "B");
///   auto k = te::reduce_axis(K, "k");
///   // GEMM:
///   auto gemm = te::compute(M, N, [&](te::IterVar i, te::IterVar j) {
///     return te::reduce(te::BinOp::Add, A(i, k) * B(k, j), k);
///   });
///   // Bitmatrix erasure code — the one-line change the paper highlights:
///   auto ec = te::compute(M, N, [&](te::IterVar i, te::IterVar j) {
///     return te::reduce(te::BinOp::Xor, A(i, k) & B(k, j), k);
///   });
///
/// A declared computation can be interpreted directly (`evaluate`, the
/// semantic reference) or lowered to the scheduled high-performance kernel
/// (`lower` + `LoweredGemm::run`), standing in for TVM's codegen path.
namespace tvmec::tensor::te {

/// All expression values are 64-bit words; Add/Mul wrap modulo 2^64.
using Value = std::uint64_t;

enum class BinOp { Add, Mul, Xor, And };

/// A loop axis (spatial or reduction).
struct IterVar {
  int id = -1;
  std::size_t extent = 0;
  std::string name;
};

struct ExprNode;

/// Immutable expression handle (shared AST node).
class Expr {
 public:
  Expr() = default;
  explicit Expr(std::shared_ptr<const ExprNode> node) : node_(std::move(node)) {}
  const ExprNode* node() const noexcept { return node_.get(); }
  bool defined() const noexcept { return node_ != nullptr; }

 private:
  std::shared_ptr<const ExprNode> node_;
};

/// A 2-D input tensor placeholder, as in TVM's te.placeholder.
class Placeholder {
 public:
  Placeholder(int id, std::size_t rows, std::size_t cols, std::string name)
      : id_(id), rows_(rows), cols_(cols), name_(std::move(name)) {}

  int id() const noexcept { return id_; }
  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  const std::string& name() const noexcept { return name_; }

  /// Indexing with two axes yields an access expression.
  Expr operator()(const IterVar& row, const IterVar& col) const;

 private:
  int id_;
  std::size_t rows_;
  std::size_t cols_;
  std::string name_;
};

/// Creates a fresh placeholder. Throws std::invalid_argument on a zero
/// dimension.
Placeholder placeholder(std::size_t rows, std::size_t cols,
                        const std::string& name);

/// Creates a reduction axis of the given extent.
IterVar reduce_axis(std::size_t extent, const std::string& name);

/// Builds a binary expression node.
Expr binary(BinOp op, const Expr& lhs, const Expr& rhs);

inline Expr operator+(const Expr& a, const Expr& b) {
  return binary(BinOp::Add, a, b);
}
inline Expr operator*(const Expr& a, const Expr& b) {
  return binary(BinOp::Mul, a, b);
}
inline Expr operator^(const Expr& a, const Expr& b) {
  return binary(BinOp::Xor, a, b);
}
inline Expr operator&(const Expr& a, const Expr& b) {
  return binary(BinOp::And, a, b);
}

/// Reduction of `body` over `axis` with commutative reducer `op`
/// (Add or Xor; throws std::invalid_argument otherwise — mirrors TVM's
/// comm_reducer requirement).
Expr reduce(BinOp op, const Expr& body, const IterVar& axis);

/// A declared 2-D computation: out(i, j) = body.
struct ComputeDef {
  std::size_t rows = 0;
  std::size_t cols = 0;
  IterVar i;
  IterVar j;
  Expr body;
};

/// Declares a computation; fn receives the two spatial axes and returns
/// the element expression (mirrors te.compute's lambda).
ComputeDef compute(std::size_t rows, std::size_t cols,
                   const std::function<Expr(IterVar, IterVar)>& fn);

/// Tensor bindings for execution: placeholder id -> data view.
struct Binding {
  int placeholder_id = -1;
  MatView<const Value> view;
};

/// Directly interprets the computation (reference semantics; slow).
/// Throws std::invalid_argument if bindings are missing or shapes do not
/// match the placeholder declarations.
void evaluate(const ComputeDef& def, const std::vector<Binding>& bindings,
              MatView<Value> out);

/// A computation lowered to the scheduled kernel path.
class LoweredGemm {
 public:
  enum class Kind { SumProd, XorAnd };

  Kind kind() const noexcept { return kind_; }
  int a_placeholder() const noexcept { return a_id_; }
  int b_placeholder() const noexcept { return b_id_; }

  /// Executes with the given schedule. Shape checks as in `evaluate`.
  void run(const std::vector<Binding>& bindings, MatView<Value> out,
           const Schedule& schedule) const;

 private:
  friend LoweredGemm lower(const ComputeDef& def);
  Kind kind_ = Kind::SumProd;
  int a_id_ = -1;
  int b_id_ = -1;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t red_ = 0;
};

/// Pattern-matches the GEMM-shaped loop nest — reduce(add|xor,
/// combine(mul|and, A(i,k), B(k,j)), k) — and returns the lowered form.
/// Throws std::invalid_argument when the computation is not GEMM-shaped
/// or mixes semirings (e.g. reduce(Xor, A*B)).
LoweredGemm lower(const ComputeDef& def);

}  // namespace tvmec::tensor::te
