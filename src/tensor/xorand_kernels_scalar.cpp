// Scalar (portable) XorAnd microkernel variant. Always compiled, with no
// target flags beyond the project defaults, so this table is the one
// guaranteed-safe tier on any host — and the reference every SIMD
// variant is differentially tested against.
//
// This TU also hosts the variant-keyed table selector, since it is the
// one XorAnd TU that exists on every architecture.

#include "tensor/xorand_kernels.h"

namespace tvmec::tensor {

namespace {

#include "tensor/xorand_portable_micro.inc"

template <int TM, int TN>
void micro(const std::uint64_t* a, std::size_t lda, const std::uint64_t* b,
           std::size_t ldb, std::uint64_t* c, std::size_t ldc,
           std::size_t k) {
  micro_portable<TM, TN>(a, lda, b, ldb, c, ldc, k);
}

constexpr XorAndKernelTable kTable = TVMEC_XORAND_TABLE;

}  // namespace

const XorAndKernelTable* xorand_table_scalar() noexcept { return &kTable; }

const XorAndKernelTable* xorand_table(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::Scalar:
      return xorand_table_scalar();
    case KernelVariant::Avx2:
      return xorand_table_avx2();
    case KernelVariant::Avx512:
      return xorand_table_avx512();
    case KernelVariant::Neon:
      return xorand_table_neon();
    case KernelVariant::Auto:
      break;
  }
  return nullptr;
}

}  // namespace tvmec::tensor
