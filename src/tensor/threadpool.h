#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

/// A persistent fork-join pool used by parallel kernel schedules.
///
/// Dispatch model: a pool of width W is the calling thread plus W-1
/// resident helper threads. `parallel_for(count, fn)` publishes one job
/// (a raw function pointer + context — no heap allocation, no per-task
/// queue), wakes the helpers, and then the caller itself joins the loop:
/// every participant repeatedly claims the next unclaimed index from a
/// shared atomic counter until the range is drained. The atomic counter
/// gives dynamic load balancing for free — a slow chunk simply means that
/// worker claims fewer chunks — which is what makes fine-grained
/// N-partitioned GEMM schedules balance without static splitting.
///
/// Nested calls (parallel_for from inside a running parallel_for) execute
/// the inner range inline on the calling participant, so nesting can never
/// deadlock the pool. Completion/error state lives in pool members, never
/// on the caller's stack, so helpers touch nothing that can dangle.
///
/// Cancellation: parallel_for optionally takes a raw cancel flag. Every
/// participant re-checks it before claiming each chunk (one relaxed load
/// per claim — the claim itself is already an atomic RMW, so the check is
/// in the noise) and stops claiming once it is set; chunks already
/// claimed run to completion. The dispatching caller then throws
/// Cancelled. Helpers never throw across the pool boundary, so a
/// cancelled job can never wedge the pool.
namespace tvmec::tensor {

class ThreadPool {
 public:
  /// Raw job signature: `ctx` is the closure state, `index` the claimed
  /// loop index.
  using RawFn = void (*)(void* ctx, std::size_t index);

  /// Creates a pool of parallel width `num_threads`: the caller plus
  /// `num_threads - 1` resident helpers (>= 1; throws
  /// std::invalid_argument on 0).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallel width: helpers + the participating caller.
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Runs fn(ctx, i) for i in [0, count) across the pool and blocks until
  /// every invocation completes. The caller participates in the work.
  /// `max_workers` caps how many threads (including the caller) claim
  /// indices; 0 means the full pool width. Exceptions thrown by fn
  /// propagate to the caller (the first one captured wins) after the
  /// whole range has been attempted.
  ///
  /// `cancel`, when non-null, is polled before every chunk claim: once it
  /// reads true no further indices are dispatched and the call throws
  /// Cancelled after all participants stop. Cancellation takes precedence
  /// over an exception fn may have thrown (the work was abandoned; its
  /// partial errors are moot). The flag must outlive the call.
  void parallel_for(std::size_t count, RawFn fn, void* ctx,
                    std::size_t max_workers = 0,
                    const std::atomic<bool>* cancel = nullptr);

  /// Convenience adapter for callables: forwards to the raw overload
  /// without copying or heap-allocating `fn` (it outlives the call).
  template <typename F>
    requires std::is_invocable_v<F&, std::size_t>
  void parallel_for(std::size_t count, F&& fn, std::size_t max_workers = 0,
                    const std::atomic<bool>* cancel = nullptr) {
    using Fn = std::remove_reference_t<F>;
    parallel_for(
        count,
        [](void* ctx, std::size_t i) { (*static_cast<Fn*>(ctx))(i); },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
        max_workers, cancel);
  }

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& shared();

 private:
  void worker_loop();
  /// Claims indices from next_index_ until the job range is drained or
  /// `cancel` reads true, capturing the first exception into job_error_.
  void run_chunks(RawFn fn, void* ctx, std::size_t count,
                  const std::atomic<bool>* cancel) noexcept;

  std::vector<std::thread> workers_;

  // Job slot — written by the dispatching caller under mutex_, read by
  // helpers under mutex_ after an epoch change.
  std::mutex mutex_;
  std::condition_variable wake_cv_;  // helpers wait for a new epoch
  std::condition_variable done_cv_;  // caller waits for helpers to finish
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  RawFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t job_limit_ = 0;  // max participants, caller included
  const std::atomic<bool>* job_cancel_ = nullptr;

  std::atomic<std::size_t> next_index_{0};    // next unclaimed loop index
  std::atomic<std::size_t> participants_{0};  // claimed participation slots
  std::atomic<std::size_t> outstanding_{0};   // helpers not yet done

  std::mutex error_mutex_;
  std::exception_ptr job_error_;

  // Serializes dispatches from distinct caller threads.
  std::mutex dispatch_mutex_;
};

}  // namespace tvmec::tensor
