#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

/// A small fixed-size thread pool used by parallel kernel schedules.
///
/// Deliberately simple (mutex + condition variable, no work stealing):
/// kernels submit a handful of coarse row-range tasks per call, so queue
/// contention is negligible and correctness is easy to reason about.
namespace tvmec::tensor {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; throws std::invalid_argument on 0).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// invocations complete. Exceptions thrown by fn propagate to the caller
  /// (the first one captured wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tvmec::tensor
