#include "tensor/threadpool.h"

#include <atomic>
#include <exception>
#include <stdexcept>

namespace tvmec::tensor {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0)
    throw std::invalid_argument("ThreadPool: need at least one thread");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  std::atomic<std::size_t> remaining{count};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < count; ++i) {
      tasks_.emplace([&, i] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard elock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard dlock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();
  std::unique_lock done_lock(done_mutex);
  done_cv.wait(done_lock,
               [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace tvmec::tensor
