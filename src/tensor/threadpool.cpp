#include "tensor/threadpool.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "tensor/cancel.h"

namespace tvmec::tensor {

namespace {

/// Depth of parallel_for frames on this thread (any pool). Non-zero means
/// we are already inside a job, so a further parallel_for must run inline:
/// a helper cannot block on its own pool, and the dispatching caller
/// already holds dispatch_mutex_.
thread_local int t_parallel_depth = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0)
    throw std::invalid_argument("ThreadPool: need at least one thread");
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_chunks(RawFn fn, void* ctx, std::size_t count,
                            const std::atomic<bool>* cancel) noexcept {
  ++t_parallel_depth;
  for (;;) {
    // Re-checked before every claim: a set flag stops further dispatch
    // promptly (the chunk already in flight finishes — cancellation is
    // cooperative, never preemptive).
    if (cancel && cancel->load(std::memory_order_relaxed)) break;
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    try {
      fn(ctx, i);
    } catch (...) {
      std::lock_guard lock(error_mutex_);
      if (!job_error_) job_error_ = std::current_exception();
    }
  }
  --t_parallel_depth;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    RawFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t count = 0;
    std::size_t limit = 0;
    const std::atomic<bool>* cancel = nullptr;
    {
      std::unique_lock lock(mutex_);
      wake_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      fn = job_fn_;
      ctx = job_ctx_;
      count = job_count_;
      limit = job_limit_;
      cancel = job_cancel_;
    }
    // Claim a participation slot; slots at or beyond the job's thread cap
    // sit this round out (the schedule asked for fewer threads than the
    // pool has).
    const std::size_t slot =
        participants_.fetch_add(1, std::memory_order_relaxed);
    if (slot < limit) run_chunks(fn, ctx, count, cancel);
    // The caller cannot leave parallel_for — and therefore cannot
    // invalidate fn/ctx — until every helper has checked in for this
    // epoch, so signalling last keeps helpers off freed state.
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(mutex_);
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count, RawFn fn, void* ctx,
                              std::size_t max_workers,
                              const std::atomic<bool>* cancel) {
  if (count == 0) return;
  const std::size_t width =
      max_workers == 0 ? size() : std::min(max_workers, size());
  if (count == 1 || width <= 1 || workers_.empty() || t_parallel_depth > 0) {
    // Serial pools, single items, and nested calls run inline on the
    // calling thread; exceptions propagate directly. The cancel flag is
    // still honored between iterations, so a nested cancelled loop
    // unwinds just like a pooled one (the enclosing job captures the
    // Cancelled as its error).
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel && cancel->load(std::memory_order_relaxed)) throw Cancelled{};
      fn(ctx, i);
    }
    return;
  }

  std::lock_guard dispatch(dispatch_mutex_);
  {
    std::lock_guard lock(mutex_);
    job_fn_ = fn;
    job_ctx_ = ctx;
    job_count_ = count;
    job_limit_ = width;
    job_cancel_ = cancel;
    next_index_.store(0, std::memory_order_relaxed);
    participants_.store(1, std::memory_order_relaxed);  // caller is slot 0
    outstanding_.store(workers_.size(), std::memory_order_relaxed);
    ++epoch_;
  }
  wake_cv_.notify_all();

  run_chunks(fn, ctx, count, cancel);  // the caller works too

  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
    job_fn_ = nullptr;
    job_ctx_ = nullptr;
    job_cancel_ = nullptr;
  }
  std::exception_ptr err;
  {
    std::lock_guard lock(error_mutex_);
    err = std::exchange(job_error_, nullptr);
  }
  // Cancellation dominates: the caller abandoned the job, so whatever fn
  // managed to throw before stopping describes work nobody wants.
  if (cancel && cancel->load(std::memory_order_relaxed)) throw Cancelled{};
  if (err) std::rethrow_exception(err);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace tvmec::tensor
