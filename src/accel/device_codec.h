#pragma once

#include <vector>

#include "accel/device.h"
#include "core/gemm_coder.h"
#include "ec/code_params.h"
#include "ec/reed_solomon.h"

/// Accelerator-native erasure coding (paper §3): the training state
/// already lives in device memory, so encode it *there* and ship only
/// the parity across the interconnect — instead of shipping all k data
/// units to the host and encoding on the CPU.
///
/// Because the encoder is "just a GEMM", the exact same mask matrix and
/// schedule machinery runs on the device executor; this is the paper's
/// portability claim in miniature. The two checkpoint paths below make
/// the data-movement difference measurable: on-device checkpointing
/// moves r units over the link, host-side checkpointing moves k units
/// (k/r times more for typical codes).
namespace tvmec::accel {

class DeviceCodec {
 public:
  /// Uploads the code's bitmatrix masks to the device once.
  DeviceCodec(Device& device, const ec::CodeParams& params,
              ec::RsFamily family = ec::RsFamily::CauchyGood);

  const ec::CodeParams& params() const noexcept { return params_; }
  Device& device() noexcept { return *device_; }

  /// The kernel schedule used by on-device encodes.
  void set_schedule(const tensor::Schedule& schedule);

  /// Encodes k device-resident data units into r device-resident parity
  /// units: one kernel launch, zero interconnect traffic. unit_size must
  /// be a multiple of 8*w; buffers must be exactly k*unit_size and
  /// r*unit_size bytes.
  void encode_on_device(const DeviceBuffer& data, DeviceBuffer& parity,
                        std::size_t unit_size);

  /// Checkpoint path A (the §3 proposal): encode on the device, copy
  /// only the r parity units to the host. Returns the parity bytes.
  std::vector<std::uint8_t> checkpoint_on_device(const DeviceBuffer& data,
                                                 std::size_t unit_size);

  /// Checkpoint path B (the status quo §3 criticizes): copy all k data
  /// units to the host and encode there. Returns identical parity bytes
  /// (same code, same GEMM) at k/r times the interconnect traffic.
  std::vector<std::uint8_t> checkpoint_via_host(const DeviceBuffer& data,
                                                std::size_t unit_size);

 private:
  Device* device_;
  ec::CodeParams params_;
  ec::ReedSolomon rs_;
  core::GemmCoder host_coder_;  ///< host-side encoder for path B
  DeviceBuffer device_masks_;   ///< rw x kw broadcast masks, device-resident
  tensor::Schedule schedule_;
};

}  // namespace tvmec::accel
