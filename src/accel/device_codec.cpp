#include "accel/device_codec.h"

#include <stdexcept>

#include "ec/bitmatrix_code.h"

namespace tvmec::accel {

DeviceCodec::DeviceCodec(Device& device, const ec::CodeParams& params,
                         ec::RsFamily family)
    : device_(&device),
      params_(params),
      rs_(params, family),
      host_coder_(rs_.parity_matrix()),
      schedule_(tensor::default_schedule()) {
  // Build the broadcast-mask matrix on the host, upload once. This is
  // the analogue of shipping the compiled kernel + weights to the GPU.
  const ec::BitmatrixCode code(rs_.parity_matrix());
  const gf::BitMatrix& bits = code.bits();
  tensor::AlignedBuffer<std::uint64_t> masks(bits.rows() * bits.cols());
  for (std::size_t i = 0; i < bits.rows(); ++i)
    for (std::size_t j = 0; j < bits.cols(); ++j)
      masks[i * bits.cols() + j] =
          bits.get(i, j) ? ~std::uint64_t{0} : std::uint64_t{0};
  device_masks_ = device_->alloc(masks.size() * 8);
  device_->copy_to_device(
      device_masks_,
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(masks.data()),
          masks.size() * 8));
}

void DeviceCodec::set_schedule(const tensor::Schedule& schedule) {
  if (!schedule.valid())
    throw std::invalid_argument("DeviceCodec: invalid schedule");
  schedule_ = schedule;
  host_coder_.set_schedule(schedule);
}

void DeviceCodec::encode_on_device(const DeviceBuffer& data,
                                   DeviceBuffer& parity,
                                   std::size_t unit_size) {
  const std::size_t quantum = std::size_t{8} * params_.w;
  if (unit_size == 0 || unit_size % quantum != 0)
    throw std::invalid_argument(
        "encode_on_device: unit size must be multiple of 8*w");
  if (data.size() != params_.k * unit_size)
    throw std::invalid_argument("encode_on_device: bad data buffer size");
  if (parity.size() != params_.r * unit_size)
    throw std::invalid_argument("encode_on_device: bad parity buffer size");
  const std::size_t kw = params_.k * params_.w;
  const std::size_t rw = params_.r * params_.w;
  const std::size_t words = unit_size / params_.w / 8;
  device_->launch_xorand_gemm(device_masks_, data, parity, rw, words, kw,
                              schedule_);
}

std::vector<std::uint8_t> DeviceCodec::checkpoint_on_device(
    const DeviceBuffer& data, std::size_t unit_size) {
  DeviceBuffer parity = device_->alloc(params_.r * unit_size);
  encode_on_device(data, parity, unit_size);
  std::vector<std::uint8_t> out(params_.r * unit_size);
  device_->copy_to_host(out, parity);  // only r units cross the link
  return out;
}

std::vector<std::uint8_t> DeviceCodec::checkpoint_via_host(
    const DeviceBuffer& data, std::size_t unit_size) {
  if (data.size() != params_.k * unit_size)
    throw std::invalid_argument("checkpoint_via_host: bad data buffer size");
  // All k units cross the link...
  tensor::AlignedBuffer<std::uint8_t> host_data(params_.k * unit_size);
  device_->copy_to_host(host_data.span(), data);
  // ...then the host encodes (same GEMM, host executor).
  std::vector<std::uint8_t> out(params_.r * unit_size);
  tensor::AlignedBuffer<std::uint8_t> parity(params_.r * unit_size);
  host_coder_.apply(host_data.span(), parity.span(), unit_size);
  std::copy(parity.span().begin(), parity.span().end(), out.begin());
  return out;
}

}  // namespace tvmec::accel
