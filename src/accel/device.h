#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "tensor/buffer.h"
#include "tensor/schedule.h"

/// A *simulated* accelerator, standing in for the GPUs the paper's §3
/// targets ("it would be ideal for such applications to be able to
/// perform erasure coding directly on the accelerator on top of which
/// they run, rather than transferring data to the host CPU").
///
/// No GPU exists in this environment, so the substitution keeps what
/// matters for the paper's argument and simulates the rest:
///  - compute is REAL: device kernels execute the same semiring GEMM
///    code paths the host uses (an accelerator would run TVM-generated
///    kernels; here the host CPU stands in as the "device core");
///  - the *memory-space economics* are SIMULATED: device memory is a
///    distinct allocation space, host<->device movement is explicit and
///    metered against a modeled interconnect bandwidth, and kernels can
///    only touch device-resident buffers (enforced, like a real driver).
/// This lets experiments quantify the paper's data-movement claim: how
/// many bytes cross the interconnect for on-device erasure coding versus
/// ship-to-host coding.
namespace tvmec::accel {

/// Traffic/launch accounting, in real bytes and *modeled* seconds.
struct DeviceStats {
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t allocations = 0;
  /// Transfer time under the modeled interconnect (seconds).
  double modeled_transfer_seconds = 0;
};

class Device;

/// A buffer living in the device's memory space. Opaque to host code:
/// contents are reachable only through Device::copy_* and kernels.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  std::size_t size() const noexcept { return bytes_ ? bytes_->size() : 0; }
  bool valid() const noexcept { return bytes_ != nullptr; }

 private:
  friend class Device;
  DeviceBuffer(std::shared_ptr<tensor::AlignedBuffer<std::uint8_t>> bytes,
               const Device* owner)
      : bytes_(std::move(bytes)), owner_(owner) {}
  std::shared_ptr<tensor::AlignedBuffer<std::uint8_t>> bytes_;
  const Device* owner_ = nullptr;
};

class Device {
 public:
  /// `interconnect_gbps` models the host<->device link (PCIe 3.0 x16
  /// ~ 12 GB/s effective is the classic figure). Throws
  /// std::invalid_argument on a non-positive bandwidth.
  explicit Device(std::string name = "sim0",
                  double interconnect_gbps = 12.0);

  const std::string& name() const noexcept { return name_; }
  const DeviceStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = DeviceStats{}; }

  /// Allocates zeroed device memory.
  DeviceBuffer alloc(std::size_t bytes);

  /// Host -> device copy (metered). Sizes must match exactly.
  void copy_to_device(DeviceBuffer& dst, std::span<const std::uint8_t> src);
  /// Device -> host copy (metered).
  void copy_to_host(std::span<std::uint8_t> dst, const DeviceBuffer& src);
  /// Device -> device copy (not interconnect traffic).
  void copy_on_device(DeviceBuffer& dst, const DeviceBuffer& src);

  /// Launches the XorAnd GEMM on device-resident operands (the erasure-
  /// coding kernel; dimensions in 64-bit words, matrices row-major and
  /// dense). Throws std::invalid_argument if any buffer belongs to
  /// another device, is undersized, or shapes mismatch.
  void launch_xorand_gemm(const DeviceBuffer& a, const DeviceBuffer& b,
                          DeviceBuffer& c, std::size_t m, std::size_t n,
                          std::size_t k, const tensor::Schedule& schedule);

 private:
  const std::uint8_t* data_of(const DeviceBuffer& buf,
                              const char* what) const;
  std::uint8_t* mutable_data_of(DeviceBuffer& buf, const char* what) const;

  std::string name_;
  double interconnect_bytes_per_sec_;
  DeviceStats stats_;
};

}  // namespace tvmec::accel
