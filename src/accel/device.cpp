#include "accel/device.h"

#include <cstring>
#include <stdexcept>

#include "tensor/kernel.h"

namespace tvmec::accel {

Device::Device(std::string name, double interconnect_gbps)
    : name_(std::move(name)),
      interconnect_bytes_per_sec_(interconnect_gbps * 1e9) {
  if (interconnect_gbps <= 0)
    throw std::invalid_argument("Device: interconnect bandwidth must be > 0");
}

DeviceBuffer Device::alloc(std::size_t bytes) {
  if (bytes == 0) throw std::invalid_argument("Device::alloc: zero size");
  ++stats_.allocations;
  return DeviceBuffer(
      std::make_shared<tensor::AlignedBuffer<std::uint8_t>>(bytes), this);
}

const std::uint8_t* Device::data_of(const DeviceBuffer& buf,
                                    const char* what) const {
  if (!buf.valid())
    throw std::invalid_argument(std::string(what) + ": invalid buffer");
  if (buf.owner_ != this)
    throw std::invalid_argument(std::string(what) +
                                ": buffer belongs to another device");
  return buf.bytes_->data();
}

std::uint8_t* Device::mutable_data_of(DeviceBuffer& buf,
                                      const char* what) const {
  return const_cast<std::uint8_t*>(data_of(buf, what));
}

void Device::copy_to_device(DeviceBuffer& dst,
                            std::span<const std::uint8_t> src) {
  std::uint8_t* d = mutable_data_of(dst, "copy_to_device");
  if (dst.size() != src.size())
    throw std::invalid_argument("copy_to_device: size mismatch");
  std::memcpy(d, src.data(), src.size());
  stats_.bytes_h2d += src.size();
  stats_.modeled_transfer_seconds +=
      static_cast<double>(src.size()) / interconnect_bytes_per_sec_;
}

void Device::copy_to_host(std::span<std::uint8_t> dst,
                          const DeviceBuffer& src) {
  const std::uint8_t* s = data_of(src, "copy_to_host");
  if (dst.size() != src.size())
    throw std::invalid_argument("copy_to_host: size mismatch");
  std::memcpy(dst.data(), s, dst.size());
  stats_.bytes_d2h += dst.size();
  stats_.modeled_transfer_seconds +=
      static_cast<double>(dst.size()) / interconnect_bytes_per_sec_;
}

void Device::copy_on_device(DeviceBuffer& dst, const DeviceBuffer& src) {
  const std::uint8_t* s = data_of(src, "copy_on_device");
  std::uint8_t* d = mutable_data_of(dst, "copy_on_device");
  if (dst.size() != src.size())
    throw std::invalid_argument("copy_on_device: size mismatch");
  std::memcpy(d, s, dst.size());
}

void Device::launch_xorand_gemm(const DeviceBuffer& a, const DeviceBuffer& b,
                                DeviceBuffer& c, std::size_t m,
                                std::size_t n, std::size_t k,
                                const tensor::Schedule& schedule) {
  const auto* pa =
      reinterpret_cast<const std::uint64_t*>(data_of(a, "launch: A"));
  const auto* pb =
      reinterpret_cast<const std::uint64_t*>(data_of(b, "launch: B"));
  auto* pc = reinterpret_cast<std::uint64_t*>(mutable_data_of(c, "launch: C"));
  if (a.size() < m * k * 8 || b.size() < k * n * 8 || c.size() < m * n * 8)
    throw std::invalid_argument("launch_xorand_gemm: buffer too small");
  ++stats_.kernel_launches;
  tensor::gemm_xorand({pa, m, k, k}, {pb, k, n, n}, {pc, m, n, n}, schedule);
}

}  // namespace tvmec::accel
