#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/membership.h"

/// The background self-healing loop: consumes damage events (from
/// degraded reads, failed writes, scrub, membership verdicts, revives),
/// keeps a risk-prioritized repair queue, and drains it under a
/// token-bucket byte budget — the control plane that replaces the
/// full-scan repair_all() walk as the steady-state path.
///
/// Priority is erasures-remaining-before-data-loss (r minus current
/// erasures, the routing view): a stripe one loss from unrecoverable is
/// rebuilt before one with a single loss, which is what minimizes the
/// time-at-risk integral E24 measures. Ordering uses the priority at
/// enqueue/coalesce time; the *disposition* re-assesses on pop, so a
/// stripe healed en route resolves as clean and one that worsened still
/// repairs correctly.
///
/// Rate limiting: a token bucket refilled from the virtual clock
/// (repair_bytes_per_sec x elapsed virtual time, clamped to
/// burst_bytes). A repair may start while the bucket is non-negative
/// and draws its actual RepairReport.bytes_on_wire afterwards (bytes on
/// the wire are only known after the DAG runs), so the bucket may dip
/// negative and the debt throttles subsequent ticks — budget compliance
/// within one stripe's traffic, which E24 bounds at 10%.
///
/// Coordinator-crash handling: a repair attempt that aborts (helper or
/// root died mid-DAG; the all-or-nothing discipline discarded partials)
/// re-enqueues the stripe at its re-assessed priority via a Requeue
/// event, up to max_requeues before it is abandoned.
///
/// Counter identities (asserted by tests, bench_heal, and the fuzzer):
///   events_reported == events_enqueued + events_coalesced
///   events_enqueued == repaired + clean + parked + requeues
///                      + abandoned + pending()
namespace tvmec::cluster {

struct HealerConfig {
  std::uint64_t repair_bytes_per_sec = 0;  ///< 0 = unlimited
  std::uint64_t burst_bytes = 1 << 20;     ///< bucket clamp
  /// Virtual time a tick represents when no membership is attached
  /// (with one, the heartbeat interval advances the clock instead).
  std::uint64_t tick_us = 10'000;
  /// Pause draining for a tick when foreground traffic since the last
  /// tick exceeded this many payload bytes (0 = never defer).
  std::uint64_t foreground_defer_bytes = 0;
  std::size_t max_repairs_per_tick = 4;
  std::size_t max_requeues = 8;  ///< failed-attempt retries before abandon
  /// False degrades ordering to FIFO (arrival sequence) — the baseline
  /// arm of the E24 time-at-risk comparison.
  bool priority_enabled = true;
};

struct HealerStats {
  std::uint64_t ticks = 0;
  std::uint64_t deferred_ticks = 0;   ///< skipped under foreground load
  std::uint64_t throttled_ticks = 0;  ///< drain stopped by the bucket
  std::uint64_t events_reported = 0;
  std::uint64_t events_enqueued = 0;
  std::uint64_t events_coalesced = 0;  ///< duplicate (object, stripe)
  std::uint64_t repaired = 0;          ///< popped and fully repaired
  std::uint64_t clean = 0;     ///< popped, nothing to do (healed en route)
  std::uint64_t parked = 0;    ///< popped while unrecoverable (cumulative)
  std::uint64_t requeues = 0;  ///< failed attempts re-enqueued
  std::uint64_t abandoned = 0;   ///< out of requeue budget
  std::uint64_t units_repaired = 0;
  std::uint64_t repair_bytes = 0;  ///< bytes_on_wire drawn from the bucket
  std::uint64_t nodes_declared_dead = 0;
  std::uint64_t rejoins_observed = 0;
  std::uint64_t parked_reactivated = 0;  ///< re-enqueued by a rejoin
};

class Healer : public DamageSink, public MembershipListener {
 public:
  /// Self-attaching: wires itself as the cluster's damage sink and, when
  /// a membership is given, as its listener and the cluster's failure
  /// detector. The destructor detaches whatever still points here.
  /// Non-owning throughout; cluster and membership must outlive it.
  Healer(Cluster& cluster, Membership* membership,
         const HealerConfig& config = {});
  ~Healer() override;

  Healer(const Healer&) = delete;
  Healer& operator=(const Healer&) = delete;

  const HealerConfig& config() const noexcept { return config_; }
  Membership* membership() const noexcept { return membership_; }

  /// One control-plane round: membership heartbeat tick (advances the
  /// virtual clock), bucket refill, foreground-load check, then drains
  /// up to max_repairs_per_tick queue entries within the byte budget.
  void tick();

  /// Ticks until the queue is empty or `max_ticks` elapse. Returns true
  /// when the queue drained (parked entries do not block convergence).
  bool run_until_idle(std::size_t max_ticks);

  // DamageSink: every discovery channel lands here.
  void report_damage(DamageKind kind, const std::string& name,
                     std::size_t stripe) override;

  // MembershipListener: Dead verdicts enqueue the node's stripes; a
  // rejoin reactivates everything parked as unrecoverable.
  void on_transition(std::size_t node, NodeState from, NodeState to) override;

  std::size_t pending() const noexcept { return queue_.size(); }
  std::size_t parked_now() const noexcept { return parked_.size(); }
  /// Events reported per discovery channel (tests pin that a degraded
  /// get() yields ReadCorruption, a failed put() WriteFailure, ...).
  std::uint64_t events_of(DamageKind kind) const noexcept {
    return events_by_kind_[static_cast<std::size_t>(kind)];
  }
  /// Current bucket level; negative while paying off an overdraw.
  std::int64_t tokens() const noexcept { return tokens_; }

  const HealerStats& stats() const noexcept { return stats_; }

  bool identity_holds() const noexcept {
    return stats_.events_reported ==
               stats_.events_enqueued + stats_.events_coalesced &&
           stats_.events_enqueued ==
               stats_.repaired + stats_.clean + stats_.parked +
                   stats_.requeues + stats_.abandoned + queue_.size();
  }

 private:
  using Key = std::pair<std::string, std::size_t>;

  struct Entry {
    int remaining = 0;  ///< r - erasures at (re)assessment; lower first
    std::uint64_t seq = 0;
    std::string name;
    std::size_t stripe = 0;
    bool operator<(const Entry& o) const {
      if (remaining != o.remaining) return remaining < o.remaining;
      return seq < o.seq;
    }
  };

  /// r - current erasures via the routing view (0 when priority is off,
  /// so ordering degrades to arrival sequence).
  int assess_remaining(const std::string& name, std::size_t stripe) const;
  void refill_tokens();
  void process(const Entry& e);

  Cluster& cluster_;
  Membership* membership_;
  HealerConfig config_;
  HealerStats stats_;
  std::set<Entry> queue_;
  std::map<Key, Entry> index_;  ///< queued entries by (object, stripe)
  std::set<Key> parked_;        ///< unrecoverable until a rejoin
  std::map<Key, std::size_t> requeue_count_;
  std::uint64_t seq_ = 0;
  std::int64_t tokens_ = 0;
  std::uint64_t last_refill_us_ = 0;
  std::uint64_t events_by_kind_[7] = {};
};

}  // namespace tvmec::cluster
