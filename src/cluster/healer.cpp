#include "cluster/healer.h"

#include <algorithm>

#include "cluster/repair.h"

namespace tvmec::cluster {

Healer::Healer(Cluster& cluster, Membership* membership,
               const HealerConfig& config)
    : cluster_(cluster), membership_(membership), config_(config) {
  cluster_.set_damage_sink(this);
  if (membership_ != nullptr) {
    membership_->set_listener(this);
    cluster_.set_membership(membership_);
  }
  tokens_ = static_cast<std::int64_t>(config_.burst_bytes);
  last_refill_us_ = cluster_.net().now_us();
}

Healer::~Healer() {
  if (cluster_.damage_sink() == this) cluster_.set_damage_sink(nullptr);
  if (membership_ != nullptr) {
    membership_->set_listener(nullptr);
    if (cluster_.membership() == membership_)
      cluster_.set_membership(nullptr);
  }
}

int Healer::assess_remaining(const std::string& name,
                             std::size_t stripe) const {
  if (!config_.priority_enabled) return 0;  // FIFO: order by seq only
  const StripeHealth h = cluster_.repairer().stripe_health(name, stripe);
  const int r = static_cast<int>(cluster_.params().r);
  if (!h.exists) return r;  // resolves as clean on pop anyway
  return r - static_cast<int>(h.erased);
}

void Healer::report_damage(DamageKind kind, const std::string& name,
                           std::size_t stripe) {
  ++stats_.events_reported;
  ++events_by_kind_[static_cast<std::size_t>(kind)];
  const Key key{name, stripe};
  if (parked_.contains(key)) {
    // Re-assess: a rejoin or fresh write may have made the stripe
    // recoverable again; otherwise the event folds into the parked one.
    const StripeHealth h = cluster_.repairer().stripe_health(name, stripe);
    if (h.exists && h.survivors >= cluster_.params().k) {
      parked_.erase(key);
    } else {
      ++stats_.events_coalesced;
      return;
    }
  }
  const int remaining = assess_remaining(name, stripe);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    ++stats_.events_coalesced;
    // Damage worsened while queued: move the entry up. (Never down —
    // the pop re-assesses, so a stale high urgency only costs order.)
    if (remaining < it->second.remaining) {
      queue_.erase(it->second);
      it->second.remaining = remaining;
      queue_.insert(it->second);
    }
    return;
  }
  Entry e;
  e.remaining = remaining;
  e.seq = seq_++;
  e.name = name;
  e.stripe = stripe;
  queue_.insert(e);
  index_.emplace(key, e);
  ++stats_.events_enqueued;
}

void Healer::on_transition(std::size_t node, NodeState from, NodeState to) {
  if (to == NodeState::Dead) {
    ++stats_.nodes_declared_dead;
    // Every stripe with a unit on the dead node just lost redundancy.
    for (const auto& [name, s] : cluster_.stripes_on_node(node))
      report_damage(DamageKind::MissedHeartbeats, name, s);
  } else if (from == NodeState::Dead) {
    ++stats_.rejoins_observed;
    // A returning node may hold exactly the units that made parked
    // stripes unrecoverable — give every parked entry another pass.
    const std::vector<Key> parked(parked_.begin(), parked_.end());
    parked_.clear();
    stats_.parked_reactivated += parked.size();
    for (const auto& [name, s] : parked)
      report_damage(DamageKind::Rejoin, name, s);
  }
}

void Healer::refill_tokens() {
  if (config_.repair_bytes_per_sec == 0) return;
  const std::uint64_t now = cluster_.net().now_us();
  const std::uint64_t elapsed = now - last_refill_us_;
  last_refill_us_ = now;
  tokens_ += static_cast<std::int64_t>(
      config_.repair_bytes_per_sec * elapsed / 1'000'000);
  tokens_ = std::min(tokens_, static_cast<std::int64_t>(config_.burst_bytes));
}

void Healer::tick() {
  ++stats_.ticks;
  if (membership_ != nullptr)
    membership_->tick();  // advances the clock one heartbeat interval
  else
    cluster_.net().advance(config_.tick_us);
  refill_tokens();
  const std::uint64_t foreground = cluster_.take_foreground_bytes();
  if (config_.foreground_defer_bytes > 0 &&
      foreground > config_.foreground_defer_bytes) {
    ++stats_.deferred_ticks;  // yield the wire to the client this round
    return;
  }
  for (std::size_t i = 0; i < config_.max_repairs_per_tick; ++i) {
    if (queue_.empty()) break;
    if (config_.repair_bytes_per_sec > 0 && tokens_ < 0) {
      ++stats_.throttled_ticks;  // still paying off an overdraw
      break;
    }
    const Entry e = *queue_.begin();
    queue_.erase(queue_.begin());
    index_.erase({e.name, e.stripe});
    process(e);
  }
}

bool Healer::run_until_idle(std::size_t max_ticks) {
  for (std::size_t i = 0; i < max_ticks && !queue_.empty(); ++i) tick();
  return queue_.empty();
}

void Healer::process(const Entry& e) {
  const Key key{e.name, e.stripe};
  // Disposition is decided on the stripe's *current* state, not the
  // state at enqueue time.
  const StripeHealth h = cluster_.repairer().stripe_health(e.name, e.stripe);
  if (!h.exists || h.erased == 0) {
    ++stats_.clean;
    requeue_count_.erase(key);
    return;
  }
  if (h.survivors < cluster_.params().k) {
    parked_.insert(key);  // unrecoverable until a rejoin changes the math
    ++stats_.parked;
    return;
  }
  const RepairReport rep = cluster_.repairer().repair_stripe(e.name, e.stripe);
  if (config_.repair_bytes_per_sec > 0)
    tokens_ -= static_cast<std::int64_t>(rep.bytes_on_wire);
  stats_.repair_bytes += rep.bytes_on_wire;
  if (rep.completed) {
    ++stats_.repaired;
    stats_.units_repaired += rep.units_repaired;
    requeue_count_.erase(key);
    return;
  }
  // The attempt aborted (helper/root crash mid-DAG; partials were
  // discarded). Re-enqueue at the re-assessed priority, bounded.
  std::size_t& rc = requeue_count_[key];
  if (rc >= config_.max_requeues) {
    ++stats_.abandoned;
    requeue_count_.erase(key);
    return;
  }
  ++rc;
  ++stats_.requeues;
  report_damage(DamageKind::Requeue, e.name, e.stripe);
}

}  // namespace tvmec::cluster
