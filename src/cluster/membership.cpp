#include "cluster/membership.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tvmec::cluster {

const char* to_string(NodeState s) noexcept {
  switch (s) {
    case NodeState::Alive:
      return "alive";
    case NodeState::Suspect:
      return "suspect";
    case NodeState::Dead:
      return "dead";
  }
  return "?";
}

Membership::Membership(Cluster& cluster, const MembershipConfig& config)
    : cluster_(cluster),
      config_(config),
      trackers_(cluster.num_nodes()) {
  if (config_.suspect_phi <= 0.0 || config_.dead_phi < config_.suspect_phi)
    throw std::invalid_argument(
        "Membership: need 0 < suspect_phi <= dead_phi");
  ack_timeout_us_ = config_.ack_timeout_us;
  if (ack_timeout_us_ == 0) {
    // Auto budget: jitter alone must never make an ack late, or a
    // perfectly healthy cluster would accrue suspicion. Worst one-way =
    // base + cross-domain surcharge (the client hop always crosses) +
    // serialization + max jitter; double it for the round trip.
    const NetConfig& net = cluster_.net().config();
    const std::uint64_t wire =
        net.bytes_per_us > 0 ? config_.heartbeat_bytes / net.bytes_per_us : 0;
    ack_timeout_us_ =
        2 * (net.base_latency_us + net.cross_domain_extra_us + wire +
             net.jitter_us) +
        10;
  }
}

NodeState Membership::state(std::size_t node) const {
  return node < trackers_.size() ? trackers_[node].state : NodeState::Dead;
}

double Membership::phi(std::size_t node) const {
  if (node >= trackers_.size()) return 0.0;
  const Tracker& t = trackers_[node];
  const double silence = static_cast<double>(stats_.ticks - t.last_ack_tick);
  const double gap = std::max(1.0, t.mean_gap + t.mean_dev);
  return silence / gap;
}

std::size_t Membership::count(NodeState s) const {
  std::size_t c = 0;
  for (const Tracker& t : trackers_)
    if (t.state == s) ++c;
  return c;
}

bool Membership::transitions_balance() const {
  // Entries into a state == exits from it + nodes still there.
  return stats_.alive_to_suspect == stats_.suspect_to_alive +
                                        stats_.suspect_to_dead +
                                        count(NodeState::Suspect) &&
         stats_.suspect_to_dead ==
             stats_.dead_to_alive + count(NodeState::Dead);
}

void Membership::transition(std::size_t node, NodeState to) {
  Tracker& t = trackers_[node];
  const NodeState from = t.state;
  if (from == to) return;
  if (from == NodeState::Alive && to == NodeState::Suspect)
    ++stats_.alive_to_suspect;
  else if (from == NodeState::Suspect && to == NodeState::Alive)
    ++stats_.suspect_to_alive;
  else if (from == NodeState::Suspect && to == NodeState::Dead)
    ++stats_.suspect_to_dead;
  else if (from == NodeState::Dead && to == NodeState::Alive)
    ++stats_.dead_to_alive;
  t.state = to;
  if (listener_ != nullptr) listener_->on_transition(node, from, to);
}

void Membership::tick() {
  ++stats_.ticks;
  const std::uint64_t now_tick = stats_.ticks;
  Network& net = cluster_.net();
  net.advance(config_.heartbeat_interval_us);

  for (std::size_t node = 0; node < trackers_.size(); ++node) {
    // Probe and ack are real sends: they roll the same seeded link-fault
    // stream as data traffic, so a partition window starves heartbeats
    // exactly as it starves unit transfers.
    ++stats_.probes_sent;
    const SendResult probe =
        net.send(net.client(), node, config_.heartbeat_bytes);
    bool on_time = false;
    bool late = false;
    if (probe.delivered && !cluster_.node_failed(node)) {
      const SendResult ack =
          net.send(node, net.client(), config_.heartbeat_bytes);
      if (ack.delivered) {
        const std::uint64_t rtt = probe.latency_us + ack.latency_us;
        (rtt <= ack_timeout_us_ ? on_time : late) = true;
      }
    }

    Tracker& t = trackers_[node];
    if (on_time) {
      ++stats_.acks_received;
      if (t.ever_acked) {
        const double gap = static_cast<double>(now_tick - t.last_ack_tick);
        t.mean_dev = config_.gap_alpha * std::abs(gap - t.mean_gap) +
                     (1.0 - config_.gap_alpha) * t.mean_dev;
        t.mean_gap = config_.gap_alpha * gap +
                     (1.0 - config_.gap_alpha) * t.mean_gap;
      } else {
        t.ever_acked = true;  // first ack seeds the estimator at gap 1
      }
      t.last_ack_tick = now_tick;
      if (t.state != NodeState::Alive) transition(node, NodeState::Alive);
      continue;
    }

    (late ? stats_.acks_late : stats_.acks_missed) += 1;
    const double p = phi(node);
    if (t.state == NodeState::Alive && p >= config_.suspect_phi)
      transition(node, NodeState::Suspect);
    if (trackers_[node].state == NodeState::Suspect && p >= config_.dead_phi)
      transition(node, NodeState::Dead);
  }
}

}  // namespace tvmec::cluster
