#include "cluster/cluster.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>

#include "cluster/membership.h"
#include "cluster/repair.h"

namespace tvmec::cluster {

const char* to_string(DamageKind k) noexcept {
  switch (k) {
    case DamageKind::MissedHeartbeats:
      return "missed-heartbeats";
    case DamageKind::ReadCorruption:
      return "read-corruption";
    case DamageKind::WriteFailure:
      return "write-failure";
    case DamageKind::ScrubFinding:
      return "scrub-finding";
    case DamageKind::Revive:
      return "revive";
    case DamageKind::Rejoin:
      return "rejoin";
    case DamageKind::Requeue:
      return "requeue";
  }
  return "?";
}

Cluster::Cluster(const ec::CodeParams& params, std::size_t unit_size,
                 const ClusterConfig& config)
    : params_(params),
      unit_size_(unit_size),
      config_(config),
      codec_(params),
      net_(config.num_nodes, config.num_domains, config.net, config.seed),
      nodes_(config.num_nodes),
      retry_(config.retry),
      ewma_(config.num_nodes) {
  ec::packet_bytes(params, unit_size);  // validates unit_size
  if (config.num_nodes < params.n())
    throw std::invalid_argument(
        "Cluster: need at least k + r nodes for distinct placement");
  repairer_ = std::make_unique<RepairCoordinator>(*this);
}

Cluster::~Cluster() = default;

void Cluster::set_plan_cache(std::shared_ptr<core::PlanCache> cache) {
  plan_cache_ = cache;
  codec_.set_plan_cache(std::move(cache));
}

void Cluster::set_repair_config(const RepairConfig& config) {
  repairer_->set_config(config);
}

const RepairStats& Cluster::repair_stats() const {
  return repairer_->stats();
}

void Cluster::put(const std::string& name,
                  std::span<const std::uint8_t> bytes) {
  remove(name);
  const std::size_t k = params_.k;
  const std::size_t n = params_.n();
  const std::size_t stripe_data = k * unit_size_;
  const std::size_t num_stripes =
      bytes.empty() ? 0 : (bytes.size() + stripe_data - 1) / stripe_data;

  ObjectMeta meta;
  meta.size = bytes.size();
  std::vector<std::uint8_t> stripe(n * unit_size_);
  std::vector<std::size_t> failed_stripes;
  for (std::size_t s = 0; s < num_stripes; ++s) {
    // Place this stripe's n units on consecutive nodes from a rotating
    // start: with domain_of(i) == i % D, consecutive node ids round-robin
    // the failure domains, so the stripe spreads over min(n, D) domains.
    StripeLocation loc;
    loc.nodes.resize(n);
    const std::size_t start = next_rotation_++;
    for (std::size_t u = 0; u < n; ++u)
      loc.nodes[u] = (start + u) % nodes_.size();

    std::fill(stripe.begin(), stripe.end(), 0);
    const std::size_t off = s * stripe_data;
    const std::size_t take = std::min(stripe_data, bytes.size() - off);
    std::memcpy(stripe.data(), bytes.data() + off, take);
    codec_.encode(std::span<const std::uint8_t>(stripe.data(), stripe_data),
                  std::span<std::uint8_t>(stripe.data() + stripe_data,
                                          (n - k) * unit_size_),
                  unit_size_);

    loc.unit_crcs.resize(n);
    for (std::size_t u = 0; u < n; ++u)
      loc.unit_crcs[u] = storage::crc32c(
          {stripe.data() + u * unit_size_, unit_size_});
    bool stripe_ok = true;
    for (std::size_t u = 0; u < n; ++u)
      stripe_ok &= store_unit(name, loc, s, u, stripe.data() + u * unit_size_);
    if (!stripe_ok) failed_stripes.push_back(s);
    meta.stripes.push_back(std::move(loc));
    ++stats_.stripes_written;
  }
  objects_[name] = std::move(meta);
  stats_.objects = objects_.size();
  // Write failures become damage events only once the object metadata is
  // registered — the healer re-assesses the stripe through objects_.
  for (const std::size_t s : failed_stripes)
    report_damage(DamageKind::WriteFailure, name, s);
  foreground_bytes_ += bytes.size();
}

std::optional<std::vector<std::uint8_t>> Cluster::get(
    const std::string& name) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) return std::nullopt;
  const ObjectMeta& meta = it->second;
  std::vector<std::uint8_t> out;
  out.reserve(meta.size);
  const std::size_t stripe_data = params_.k * unit_size_;
  for (std::size_t s = 0; s < meta.stripes.size(); ++s) {
    const auto stripe = read_stripe(name, meta, s);
    const std::size_t take = std::min(stripe_data, meta.size - out.size());
    out.insert(out.end(), stripe.data(), stripe.data() + take);
  }
  out.resize(meta.size);
  foreground_bytes_ += out.size();
  return out;
}

bool Cluster::exists(const std::string& name) const {
  return objects_.contains(name);
}

void Cluster::remove(const std::string& name) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) return;
  for (std::size_t s = 0; s < it->second.stripes.size(); ++s) {
    const auto& loc = it->second.stripes[s];
    for (std::size_t u = 0; u < loc.nodes.size(); ++u)
      nodes_[loc.nodes[u]].units.erase({name, s, u});
  }
  objects_.erase(it);
  stats_.objects = objects_.size();
}

void Cluster::fail_node(std::size_t node) {
  if (node >= nodes_.size())
    throw std::invalid_argument("Cluster: node out of range");
  mark_node_failed(node);
}

void Cluster::mark_node_failed(std::size_t node) {
  Node& n = nodes_[node];
  if (n.failed) return;
  n.failed = true;
  // Record what died with the machine: the re-replication debt a later
  // revive owes (revive_node turns these into Revive damage events).
  n.lost_units.clear();
  n.lost_units.reserve(n.units.size());
  for (const auto& [key, unit] : n.units) n.lost_units.push_back(key);
  n.units.clear();
  ++stats_.failed_nodes;
}

void Cluster::revive_node(std::size_t node) {
  if (node >= nodes_.size())
    throw std::invalid_argument("Cluster: node out of range");
  // Clear injector crash state even when the failure never reached the
  // cluster's own bookkeeping (a crash observed by no op yet).
  if (injector_ != nullptr) injector_->repair_node(node);
  Node& n = nodes_[node];
  if (!n.failed) return;
  n.failed = false;
  if (stats_.failed_nodes > 0) --stats_.failed_nodes;
  // The node rejoins empty: everything it held is re-replication debt.
  // Report each affected stripe once; the healer re-assesses, so stripes
  // repair already re-placed elsewhere resolve as clean.
  stats_.units_lost_on_revive += n.lost_units.size();
  std::set<std::pair<std::string, std::size_t>> seen;
  for (const auto& [name, s, u] : n.lost_units)
    if (seen.emplace(name, s).second)
      report_damage(DamageKind::Revive, name, s);
  n.lost_units.clear();
}

bool Cluster::node_failed(std::size_t node) const {
  return node < nodes_.size() &&
         (nodes_[node].failed ||
          (injector_ != nullptr && injector_->crashed(node)));
}

bool Cluster::node_usable(std::size_t node) const {
  if (node >= nodes_.size()) return false;
  if (nodes_[node].failed) return false;  // locally observed death
  // With a failure detector attached its verdict replaces the omniscient
  // injector peek; undetected crashes are discovered the honest way, by
  // an op failing against the node.
  if (membership_ != nullptr) return membership_->routable(node);
  return !(injector_ != nullptr && injector_->crashed(node));
}

std::vector<std::pair<std::string, std::size_t>> Cluster::stripes_on_node(
    std::size_t node) const {
  std::vector<std::pair<std::string, std::size_t>> out;
  for (const auto& [name, meta] : objects_)
    for (std::size_t s = 0; s < meta.stripes.size(); ++s)
      for (const std::size_t holder : meta.stripes[s].nodes)
        if (holder == node) {
          out.emplace_back(name, s);
          break;
        }
  return out;
}

void Cluster::report_damage(DamageKind kind, const std::string& name,
                            std::size_t stripe) {
  if (damage_sink_ == nullptr) return;
  ++stats_.damage_events;
  damage_sink_->report_damage(kind, name, stripe);
}

const std::vector<std::size_t>& Cluster::placement(const std::string& name,
                                                   std::size_t s) const {
  const auto it = objects_.find(name);
  if (it == objects_.end() || s >= it->second.stripes.size())
    throw std::invalid_argument("Cluster::placement: unknown object/stripe");
  return it->second.stripes[s].nodes;
}

std::size_t Cluster::object_stripe_count(const std::string& name) const {
  const auto it = objects_.find(name);
  return it == objects_.end() ? 0 : it->second.stripes.size();
}

std::vector<std::string> Cluster::object_names() const {
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, meta] : objects_) names.push_back(name);
  return names;
}

bool Cluster::corrupt_unit(const std::string& name, std::size_t stripe,
                           std::size_t unit) {
  const auto it = objects_.find(name);
  if (it == objects_.end() || stripe >= it->second.stripes.size() ||
      unit >= params_.n())
    return false;
  const std::size_t node = it->second.stripes[stripe].nodes[unit];
  if (node_failed(node)) return false;
  const auto uit = nodes_[node].units.find({name, stripe, unit});
  if (uit == nodes_[node].units.end()) return false;
  uit->second.bytes[0] ^= 0x5A;
  return true;
}

std::size_t Cluster::repair() { return repairer_->repair_all(); }

std::size_t Cluster::scrub() {
  std::size_t bad_units = 0;
  for (const auto& name : object_names()) {
    const auto it = objects_.find(name);
    if (it == objects_.end()) continue;
    for (std::size_t s = 0; s < it->second.stripes.size(); ++s) {
      const StripeLocation& loc = it->second.stripes[s];
      // Node-local integrity pass: CRC every stored copy against the
      // metadata checksum; no payload bytes cross the network here.
      std::size_t bad = 0;
      for (std::size_t u = 0; u < loc.nodes.size(); ++u) {
        const std::size_t node = loc.nodes[u];
        if (!node_usable(node)) {
          ++bad;
          continue;
        }
        const auto uit = nodes_[node].units.find({name, s, u});
        if (uit == nodes_[node].units.end()) {
          ++bad;
          continue;
        }
        if (storage::crc32c(uit->second.bytes) != loc.unit_crcs[u]) {
          ++bad;
          ++stats_.corruptions_detected;
        }
      }
      if (bad > 0) {
        bad_units += bad;
        // With a healer attached the finding joins the risk-prioritized
        // queue; the legacy inline repair remains the sink-less path.
        if (damage_sink_ != nullptr)
          report_damage(DamageKind::ScrubFinding, name, s);
        else
          repairer_->repair_stripe(name, s);
      }
    }
  }
  return bad_units;
}

double Cluster::node_ewma_us(std::size_t node) const {
  return node < ewma_.size() ? ewma_[node].value : 0.0;
}

void Cluster::update_ewma(std::size_t node, std::uint64_t latency_us) {
  Ewma& e = ewma_[node];
  const double sample = static_cast<double>(latency_us);
  e.value = e.samples == 0
                ? sample
                : config_.hedge.ewma_alpha * sample +
                      (1.0 - config_.hedge.ewma_alpha) * e.value;
  ++e.samples;
}

bool Cluster::store_unit(const std::string& name, const StripeLocation& loc,
                         std::size_t s, std::size_t u,
                         const std::uint8_t* src) {
  const std::size_t node = loc.nodes[u];
  if (!node_usable(node)) return false;

  // Ship the unit client -> node; a dropped message is retried under the
  // capped-backoff policy.
  std::uint64_t latency = 0;
  const bool shipped = storage::with_retries(
      retry_, retry_stats_, storage::FaultInjector::key(name, s, u),
      [&]() {
        const SendResult r = net_.send(net_.client(), node, unit_size_);
        latency += r.latency_us;
        return r.delivered ? storage::Attempt::Success
                           : storage::Attempt::Retry;
      });
  stats_.write_virtual_us += latency;
  net_.advance(latency);
  if (!shipped) return false;

  StoredUnit unit;
  unit.bytes.assign(src, src + unit_size_);
  // The recorded checksum is of the *intended* bytes: injected write
  // corruption must stay detectable on read.
  unit.crc = storage::crc32c({src, unit_size_});
  if (injector_ != nullptr &&
      !injector_->on_write(node, storage::FaultInjector::key(name, s, u),
                           unit.bytes)) {
    mark_node_failed(node);
    return false;
  }
  nodes_[node].units[{name, s, u}] = std::move(unit);
  return true;
}

Cluster::UnitRead Cluster::read_unit_rpc(const std::string& name,
                                         const StripeLocation& loc,
                                         std::size_t s, std::size_t u,
                                         std::uint8_t* dest,
                                         std::uint64_t* latency_us) {
  const std::size_t node = loc.nodes[u];
  if (!node_usable(node)) return UnitRead::Missing;

  UnitRead result = UnitRead::Missing;
  std::uint64_t latency = 0;
  storage::with_retries(
      retry_, retry_stats_, storage::FaultInjector::key(name, s, u),
      [&]() {
        const auto uit = nodes_[node].units.find({name, s, u});
        if (uit == nodes_[node].units.end()) {
          result = UnitRead::Missing;
          return storage::Attempt::Abort;
        }
        std::vector<std::uint8_t> copy = uit->second.bytes;
        if (injector_ != nullptr) {
          switch (injector_->on_read(
              node, storage::FaultInjector::key(name, s, u), copy)) {
            case storage::ReadFault::Crash:
              mark_node_failed(node);
              result = UnitRead::Missing;
              return storage::Attempt::Abort;
            case storage::ReadFault::Transient:
              return storage::Attempt::Retry;
            case storage::ReadFault::None:
              break;
          }
        }
        // The response carries the unit payload node -> client.
        const SendResult r = net_.send(node, net_.client(), unit_size_);
        latency += r.latency_us;
        if (!r.delivered) return storage::Attempt::Retry;
        if (storage::crc32c(copy) != loc.unit_crcs[u]) {
          // A read-side flip heals on re-read; persisted corruption
          // doesn't. Either way retry once more, then report Corrupt.
          ++stats_.corruptions_detected;
          result = UnitRead::Corrupt;
          return storage::Attempt::Retry;
        }
        std::memcpy(dest, copy.data(), unit_size_);
        result = UnitRead::Ok;
        return storage::Attempt::Success;
      });
  *latency_us = latency;
  return result;
}

Cluster::UnitRead Cluster::read_unit_local(const std::string& name,
                                           const StripeLocation& loc,
                                           std::size_t s, std::size_t u,
                                           std::uint8_t* dest) {
  const std::size_t node = loc.nodes[u];
  if (!node_usable(node)) return UnitRead::Missing;
  UnitRead result = UnitRead::Missing;
  storage::with_retries(
      retry_, retry_stats_, storage::FaultInjector::key(name, s, u + 1000),
      [&]() {
        const auto uit = nodes_[node].units.find({name, s, u});
        if (uit == nodes_[node].units.end()) {
          result = UnitRead::Missing;
          return storage::Attempt::Abort;
        }
        std::vector<std::uint8_t> copy = uit->second.bytes;
        if (injector_ != nullptr) {
          switch (injector_->on_read(
              node, storage::FaultInjector::key(name, s, u), copy)) {
            case storage::ReadFault::Crash:
              mark_node_failed(node);
              result = UnitRead::Missing;
              return storage::Attempt::Abort;
            case storage::ReadFault::Transient:
              return storage::Attempt::Retry;
            case storage::ReadFault::None:
              break;
          }
        }
        if (storage::crc32c(copy) != loc.unit_crcs[u]) {
          ++stats_.corruptions_detected;
          result = UnitRead::Corrupt;
          return storage::Attempt::Retry;
        }
        std::memcpy(dest, copy.data(), unit_size_);
        result = UnitRead::Ok;
        return storage::Attempt::Success;
      });
  return result;
}

std::vector<std::uint8_t> Cluster::read_stripe(const std::string& name,
                                               const ObjectMeta& meta,
                                               std::size_t s) {
  const std::size_t k = params_.k;
  const std::size_t n = params_.n();
  const StripeLocation& loc = meta.stripes[s];
  std::vector<std::uint8_t> stripe(n * unit_size_);
  std::vector<bool> have(n, false);
  std::vector<std::size_t> erased;
  std::uint64_t stripe_latency = 0;
  const HedgeConfig& hedge = config_.hedge;

  // Fan out the k data-unit reads (modeled as parallel: the stripe's
  // latency is the slowest unit's effective latency).
  for (std::size_t u = 0; u < k; ++u) {
    std::uint64_t latency = 0;
    const UnitRead r =
        read_unit_rpc(name, loc, s, u, stripe.data() + u * unit_size_,
                      &latency);
    if (r != UnitRead::Ok) {
      erased.push_back(u);
      continue;
    }
    have[u] = true;
    std::uint64_t effective = latency;
    const std::size_t node = loc.nodes[u];
    const Ewma ewma_before = ewma_[node];
    update_ewma(node, latency);
    // Hedge: the straggler blew its EWMA budget, so a second request
    // for a parity unit was (virtually) issued at the budget mark. The
    // recovered bytes are identical either way — both paths verify the
    // same metadata CRC — only the modeled completion time differs.
    if (hedge.enabled && ewma_before.samples >= hedge.min_samples) {
      const auto budget = static_cast<std::uint64_t>(hedge.multiplier *
                                                     ewma_before.value);
      if (latency > budget) {
        for (std::size_t p = k; p < n; ++p) {
          if (have[p] || !node_usable(loc.nodes[p])) continue;
          ++stats_.hedged_reads;
          std::uint64_t hedge_latency = 0;
          const UnitRead hr =
              read_unit_rpc(name, loc, s, p,
                            stripe.data() + p * unit_size_, &hedge_latency);
          if (hr == UnitRead::Ok) {
            have[p] = true;
            update_ewma(loc.nodes[p], hedge_latency);
            if (budget + hedge_latency < latency) {
              ++stats_.hedge_wins;
              effective = budget + hedge_latency;
            }
          }
          break;
        }
      }
    }
    stripe_latency = std::max(stripe_latency, effective);
  }

  if (!erased.empty()) {
    // Degraded read: pull every remaining live unit, then decode the
    // holes through the survivors on the client.
    for (std::size_t u = k; u < n; ++u) {
      if (have[u]) continue;
      std::uint64_t latency = 0;
      const UnitRead r =
          read_unit_rpc(name, loc, s, u, stripe.data() + u * unit_size_,
                        &latency);
      if (r == UnitRead::Ok) {
        have[u] = true;
        update_ewma(loc.nodes[u], latency);
        stripe_latency = std::max(stripe_latency, latency);
      } else {
        erased.push_back(u);
      }
    }
    // The degraded read *discovered* lost redundancy: report it before
    // deciding recoverability, so even a stripe that turns out to be
    // past r reaches the healer's ledger.
    report_damage(DamageKind::ReadCorruption, name, s);
    if (erased.size() > params_.r)
      throw std::runtime_error(
          "Cluster::get: stripe unrecoverable (more than r units lost)");
    codec_.decode(stripe, erased, unit_size_);
    for (const std::size_t u : erased) {
      if (storage::crc32c({stripe.data() + u * unit_size_, unit_size_}) !=
          loc.unit_crcs[u])
        throw std::runtime_error(
            "Cluster::get: reconstructed unit failed checksum");
    }
    ++stats_.degraded_reads;
  }

  stats_.read_virtual_us += stripe_latency;
  net_.advance(stripe_latency);  // stripes of a get() serialize on the client
  return stripe;
}

}  // namespace tvmec::cluster
