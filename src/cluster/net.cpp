#include "cluster/net.h"

#include <algorithm>
#include <stdexcept>

namespace tvmec::cluster {

Network::Network(std::size_t num_nodes, std::size_t num_domains,
                 const NetConfig& config, std::uint64_t seed)
    : num_nodes_(num_nodes),
      num_domains_(num_domains),
      config_(config),
      jitter_rng_(seed),
      ingress_bytes_(num_nodes + 1, 0) {
  if (num_nodes == 0)
    throw std::invalid_argument("Network: need at least one node");
  if (num_domains == 0 || num_domains > num_nodes)
    throw std::invalid_argument(
        "Network: num_domains must be in [1, num_nodes]");
  if (config.bytes_per_us == 0)
    throw std::invalid_argument("Network: bytes_per_us must be positive");
}

SendResult Network::send(std::size_t src, std::size_t dst,
                         std::size_t bytes) {
  if (src > num_nodes_ || dst > num_nodes_)
    throw std::invalid_argument("Network::send: endpoint out of range");

  SendResult result;
  result.latency_us = config_.base_latency_us + bytes / config_.bytes_per_us;
  const bool cross = domain_of(src) != domain_of(dst);
  if (cross) result.latency_us += config_.cross_domain_extra_us;
  if (config_.jitter_us > 0)
    result.latency_us += std::uniform_int_distribution<std::uint64_t>(
        0, config_.jitter_us)(jitter_rng_);

  auto fault = storage::LinkFault::None;
  if (injector_ != nullptr)
    fault = injector_->on_send(storage::FaultInjector::key("link", src, dst));

  ++stats_.messages_sent;
  switch (fault) {
    case storage::LinkFault::Drop:
      result.delivered = false;
      result.copies = 0;
      ++stats_.messages_dropped;
      stats_.bytes_sent += bytes;
      stats_.bytes_dropped += bytes;
      return result;
    case storage::LinkFault::Duplicate:
      result.copies = 2;
      ++stats_.messages_duplicated;
      break;
    case storage::LinkFault::None:
      result.copies = 1;
      break;
  }
  result.delivered = true;
  const std::uint64_t moved =
      static_cast<std::uint64_t>(bytes) * static_cast<std::uint64_t>(result.copies);
  stats_.messages_delivered += static_cast<std::uint64_t>(result.copies);
  stats_.bytes_sent += moved;
  stats_.bytes_received += moved;
  if (cross) stats_.cross_domain_bytes += moved;
  link_bytes_[{src, dst}] += moved;
  ingress_bytes_[dst] += moved;
  return result;
}

void Network::reset_stats() {
  stats_ = NetStats{};
  link_bytes_.clear();
  std::fill(ingress_bytes_.begin(), ingress_bytes_.end(), 0);
}

std::uint64_t Network::link_bytes(std::size_t src, std::size_t dst) const {
  const auto it = link_bytes_.find({src, dst});
  return it == link_bytes_.end() ? 0 : it->second;
}

std::uint64_t Network::max_link_bytes() const {
  std::uint64_t best = 0;
  for (const auto& [link, bytes] : link_bytes_) best = std::max(best, bytes);
  return best;
}

std::uint64_t Network::ingress_bytes(std::size_t endpoint) const {
  return endpoint < ingress_bytes_.size() ? ingress_bytes_[endpoint] : 0;
}

}  // namespace tvmec::cluster
