#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "ec/decoder.h"

/// DAG-based repair with partial aggregation at helper nodes — the
/// ECDAG discipline: instead of hauling k full survivor units to one
/// repairer (the naive star), each helper applies its slice of the
/// recovery matrix locally (an e x 1 GF coefficient column, lowered
/// through the same bitmatrix->GEMM path as every other coding op and
/// cached in the shared PlanCache under a locality-keyed entry), ships
/// the e-unit partial one hop to its failure domain's aggregator, which
/// XORs its domain's partials into one e-unit message before crossing
/// domains to the repair root. GF-linearity makes the result
/// byte-identical to decoding at the root: the recovery matrix product
/// R * S is just a sum of per-column terms, and XOR is that sum.
///
/// Traffic shape (MDS, full-unit helpers): total payload bytes moved are
/// the same k column-terms either way — the win is *where* they move.
/// Cross-domain bytes drop from ~k units to ~(#helper domains) units,
/// repair-root ingress from k units to (#domains) units, and the
/// per-link maximum falls accordingly; the modeled makespan follows the
/// bottleneck stage instead of the root's serialized ingress. E22
/// quantifies all four against the naive fetch.
///
/// Robustness: each attempt is all-or-nothing. A helper that crashes,
/// times out (retry exhaustion), or serves corrupt bytes mid-DAG aborts
/// the attempt; the coordinator re-plans around the dead helper
/// (partials are discarded, so byte-identity is preserved — nothing
/// half-aggregated survives into the next attempt), up to max_replans,
/// then degrades gracefully to the naive k-unit fetch, and only then
/// abandons. Counter identity:
///   attempts_started == attempts_completed + attempts_replanned
///                       + attempts_abandoned.
namespace tvmec::cluster {

struct RepairConfig {
  std::size_t chunk_bytes = 64 * 1024;  ///< pipelining granularity on the wire
  std::size_t max_replans = 2;          ///< DAG re-plans before naive fallback
  std::uint64_t deadline_us = 0;        ///< modeled makespan budget (0 = none)
  bool prefer_domain_local = true;      ///< order survivors root-domain-first
  bool allow_naive_fallback = true;
  /// False skips the DAG entirely and repairs via the naive k-unit star —
  /// the baseline arm of the E22 traffic-shape comparison.
  bool dag_enabled = true;
};

struct RepairStats {
  std::uint64_t attempts_started = 0;
  std::uint64_t attempts_completed = 0;
  std::uint64_t attempts_replanned = 0;  ///< aborted, superseded by a re-plan
  std::uint64_t attempts_abandoned = 0;
  std::uint64_t naive_fallbacks = 0;     ///< completed via the k-unit fetch
  std::uint64_t stripes_repaired = 0;
  std::uint64_t units_repaired = 0;
  std::uint64_t bytes_on_wire = 0;       ///< payload bytes sent during repair
  std::uint64_t cross_domain_bytes = 0;
  std::uint64_t hops = 0;                ///< DAG edges traversed
  std::uint64_t deadline_overruns = 0;
  std::uint64_t makespan_us_total = 0;   ///< summed modeled repair makespan

  bool identity_holds() const noexcept {
    return attempts_started ==
           attempts_completed + attempts_replanned + attempts_abandoned;
  }
};

/// Outcome of one stripe repair, for tests and the bench.
struct RepairReport {
  bool completed = false;
  bool used_naive = false;
  std::size_t units_repaired = 0;
  std::size_t replans = 0;
  std::size_t hops = 0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t cross_domain_bytes = 0;
  std::uint64_t root_ingress_bytes = 0;
  std::uint64_t max_link_bytes = 0;
  std::uint64_t makespan_us = 0;
};

/// Cheap stripe risk probe for the healer's priority scoring: unit
/// counts only, no payload moved. `erased` counts units that are
/// missing, CRC-stale, or on unusable nodes (the routing view); the
/// stripe's distance from data loss is r - erased (negative when past
/// recovery without a rejoin).
struct StripeHealth {
  bool exists = false;
  std::size_t erased = 0;
  std::size_t survivors = 0;
};

/// The planned DAG for one attempt (exposed for tests/bench).
struct RepairPlan {
  struct Helper {
    std::size_t unit = 0;    ///< survivor unit id this helper contributes
    std::size_t node = 0;
    std::size_t domain = 0;
    std::size_t column = 0;  ///< its column in the recovery matrix
  };
  std::vector<std::size_t> erased;   ///< unit ids being rebuilt
  /// The locality-keyed decode plan; recovery column i belongs to
  /// helpers[i] (survivors ascending).
  std::shared_ptr<const ec::DecodePlan> decode;
  std::vector<Helper> helpers;       ///< the chosen k survivors
  std::vector<std::size_t> domains;  ///< distinct helper domains, in order
  /// Aggregator node per entry of `domains` (a helper in that domain).
  std::vector<std::size_t> aggregators;
  std::size_t root_node = 0;  ///< receives the aggregate, stores the rebuild
  /// DAG edges: helper->aggregator (non-aggregators) + aggregator->root.
  std::size_t hops() const noexcept;
};

class RepairCoordinator {
 public:
  explicit RepairCoordinator(Cluster& cluster, const RepairConfig& config = {});

  const RepairConfig& config() const noexcept { return config_; }
  void set_config(const RepairConfig& config) noexcept { config_ = config; }
  const RepairStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = RepairStats{}; }

  /// Repairs every missing/corrupt unit of one stripe. Returns the
  /// report; report.completed == false means the stripe is currently
  /// unrecoverable (abandoned — survivors below k even for naive).
  /// A stripe with nothing to repair returns completed == true with
  /// units_repaired == 0.
  RepairReport repair_stripe(const std::string& name, std::size_t s);

  /// Walks every stripe of every object; repairs what it can. Returns
  /// total units rebuilt.
  std::size_t repair_all();

  /// Assesses one stripe's current damage without repairing it — the
  /// healer's (re-)prioritization hook. exists == false for unknown
  /// object/stripe (e.g. the object was removed while queued).
  StripeHealth stripe_health(const std::string& name, std::size_t s);

  /// Plans (without executing) the DAG the next attempt would run —
  /// test/bench introspection. Returns nullopt when no DAG-viable plan
  /// exists for the stripe's current losses.
  std::optional<RepairPlan> plan_stripe(const std::string& name,
                                        std::size_t s);

 private:
  struct StripeDamage {
    std::vector<std::size_t> erased;     ///< missing or corrupt unit ids
    std::vector<std::size_t> survivors;  ///< readable-in-principle unit ids
  };

  /// Probes stripe metadata for losses (node down, unit absent, CRC
  /// stale) without moving payload bytes.
  StripeDamage assess_stripe(const std::string& name, std::size_t s,
                             const Cluster::StripeLocation& loc);

  /// Picks a live node per erased unit to host the rebuilt data
  /// (prefers the lost unit's domain, never a node already holding a
  /// unit of this stripe). Empty return = no capacity.
  std::vector<std::size_t> pick_replacements(
      const Cluster::StripeLocation& loc,
      const std::vector<std::size_t>& erased);

  std::optional<RepairPlan> build_plan(const Cluster::StripeLocation& loc,
                                       const StripeDamage& damage,
                                       const std::vector<bool>& excluded,
                                       std::size_t root_node);

  /// Runs one DAG attempt. Returns true on success; on false,
  /// `failed_node` names the helper to exclude from the re-plan.
  bool execute_attempt(const std::string& name,
                       const Cluster::StripeLocation& loc, std::size_t s,
                       const RepairPlan& plan,
                       std::vector<std::vector<std::uint8_t>>& recovered,
                       RepairReport& report, std::size_t* failed_node);

  /// The graceful-degradation path: root fetches k survivor units and
  /// decodes locally. Same verification and accounting.
  bool execute_naive(const std::string& name,
                     const Cluster::StripeLocation& loc, std::size_t s,
                     const StripeDamage& damage, std::size_t root_node,
                     std::vector<std::vector<std::uint8_t>>& recovered,
                     RepairReport& report);

  /// Chunked transfer of `bytes` from src to dst with retries; fills
  /// serialized (sum of chunk latencies) for the makespan model.
  bool transfer(std::size_t src, std::size_t dst, std::size_t bytes,
                std::uint64_t salt, std::uint64_t* serialized_us);

  Cluster& cluster_;
  RepairConfig config_;
  RepairStats stats_;
};

}  // namespace tvmec::cluster
