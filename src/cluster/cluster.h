#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/net.h"
#include "core/tvmec.h"
#include "ec/code_params.h"
#include "storage/crc32c.h"
#include "storage/fault_injector.h"
#include "storage/retry.h"

/// A deterministic simulated multi-node erasure-coded cluster — the
/// multi-node counterpart of StripeStore. Each ClusterNode owns a local
/// unit store; every unit that moves between endpoints moves over the
/// modeled Network (so traffic, latency, and link faults are accounted),
/// and every local disk op consults the shared FaultInjector (so disk
/// and wire chaos replay from one seed).
///
/// Robustness features this layer adds over StripeStore:
///  - stripe placement across failure domains (a stripe's n units spread
///    over min(n, num_domains) domains, so one domain outage costs at
///    most ceil(n/domains) units per stripe)
///  - degraded reads: dead/slow/corrupt units detected per-RPC (timeout
///    == retry exhaustion under storage::RetryPolicy) fall back to
///    decode-through-survivors on the client
///  - hedged reads: a per-node EWMA latency tracker arms a hedge budget;
///    a straggling read past multiplier x EWMA triggers a second,
///    parity-backed request, and the modeled completion takes the
///    faster path (the recovered bytes are identical either way —
///    asserted against metadata CRCs)
///
/// Repair (DAG-based, partial aggregation at helpers) lives in
/// cluster/repair.h; Cluster::scrub() and Cluster::repair() drive it.
namespace tvmec::cluster {

class RepairCoordinator;
struct RepairConfig;
struct RepairStats;
class Membership;

/// Where a damage event came from — every path that discovers lost
/// redundancy names itself, so the healer's queue statistics decompose
/// by discovery channel.
enum class DamageKind {
  MissedHeartbeats,  ///< membership marked the stripe's node Dead
  ReadCorruption,    ///< CRC-corrupt or missing unit hit by a client get()
  WriteFailure,      ///< store_unit could not persist a unit during put()
  ScrubFinding,      ///< the integrity pass found a bad unit
  Revive,            ///< a revived node lost units; re-replicate them
  Rejoin,            ///< membership saw a Dead node ack again
  Requeue,           ///< a repair attempt aborted; re-assessed and retried
};

const char* to_string(DamageKind k) noexcept;

/// Consumer of damage events (the Healer). Non-owning observer: the
/// cluster reports (object, stripe) pairs that lost redundancy the
/// moment the loss is *discovered* — a CRC failure inside a degraded
/// read, a failed unit store, a scrub finding, a revive — instead of
/// leaving them for the next full-scan repair_all() walk.
class DamageSink {
 public:
  virtual ~DamageSink() = default;
  virtual void report_damage(DamageKind kind, const std::string& name,
                             std::size_t stripe) = 0;
};

/// Hedged-read policy. The EWMA is per source node over delivered read
/// latencies; hedging stays off for a node until it has min_samples.
struct HedgeConfig {
  bool enabled = true;
  double ewma_alpha = 0.2;     ///< new = alpha*sample + (1-alpha)*old
  double multiplier = 3.0;     ///< budget = multiplier * EWMA
  std::uint32_t min_samples = 8;
};

struct ClusterConfig {
  std::size_t num_nodes = 0;
  std::size_t num_domains = 1;
  NetConfig net;
  storage::RetryPolicy retry;
  HedgeConfig hedge;
  std::uint64_t seed = 0xC1457;  ///< network jitter stream
};

struct ClusterStats {
  std::size_t objects = 0;
  std::size_t stripes_written = 0;
  std::size_t degraded_reads = 0;   ///< stripes that needed reconstruction
  std::size_t hedged_reads = 0;     ///< hedge requests issued
  std::size_t hedge_wins = 0;       ///< hedged path beat the straggler
  std::size_t corruptions_detected = 0;
  std::size_t units_repaired = 0;   ///< units rebuilt by repair()/scrub()
  std::size_t failed_nodes = 0;
  std::size_t units_lost_on_revive = 0;  ///< units a revived node came back
                                         ///< without (re-replication debt)
  std::size_t damage_events = 0;    ///< events emitted to the DamageSink
  std::uint64_t read_virtual_us = 0;  ///< summed modeled stripe-read latency
  std::uint64_t write_virtual_us = 0;
};

class Cluster {
 public:
  /// num_nodes must be >= k + r (distinct nodes per stripe). unit_size
  /// follows the codec contract (positive multiple of w bytes).
  Cluster(const ec::CodeParams& params, std::size_t unit_size,
          const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ec::CodeParams& params() const noexcept { return params_; }
  std::size_t unit_size() const noexcept { return unit_size_; }
  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  std::size_t num_domains() const noexcept { return net_.num_domains(); }
  std::size_t domain_of(std::size_t node) const noexcept {
    return net_.domain_of(node);
  }

  Network& net() noexcept { return net_; }
  const Network& net() const noexcept { return net_; }
  core::Codec& codec() noexcept { return codec_; }

  /// Attaches the one fault injector to both the disk ops and the
  /// network links. Non-owning; null detaches.
  void attach_fault_injector(storage::FaultInjector* injector) noexcept {
    injector_ = injector;
    net_.attach_fault_injector(injector);
  }
  storage::FaultInjector* fault_injector() const noexcept {
    return injector_;
  }

  void set_retry_policy(const storage::RetryPolicy& policy) noexcept {
    retry_ = policy;
  }
  const storage::RetryPolicy& retry_policy() const noexcept { return retry_; }
  const storage::RetryStats& retry_stats() const noexcept {
    return retry_stats_;
  }

  /// Shares a decode-plan cache across degraded reads, the repair
  /// coordinator (which keys plans with a locality dimension), and any
  /// other consumers. Null detaches.
  void set_plan_cache(std::shared_ptr<core::PlanCache> cache);
  const std::shared_ptr<core::PlanCache>& plan_cache() const noexcept {
    return plan_cache_;
  }

  /// Stores an object: stripes of k*unit_size bytes (last zero-padded),
  /// encoded, units shipped over the network to their placed nodes.
  void put(const std::string& name, std::span<const std::uint8_t> bytes);

  /// Retrieves an object; reads degrade through survivors and hedge
  /// around stragglers. Returns nullopt for unknown names; throws
  /// std::runtime_error when a stripe has more than r units unreachable.
  std::optional<std::vector<std::uint8_t>> get(const std::string& name);

  bool exists(const std::string& name) const;
  void remove(const std::string& name);

  /// Marks a node failed and drops its units (a dead machine).
  void fail_node(std::size_t node);
  /// Replacement hardware: the node rejoins empty; injector crash state
  /// for it is cleared. The units it held when it failed are its
  /// re-replication debt: each affected stripe is reported to the
  /// DamageSink (kind Revive) and counted in units_lost_on_revive, so a
  /// rejoin triggers rebuilding what was lost instead of silently
  /// rejoining empty.
  void revive_node(std::size_t node);
  /// Ground truth: the machine is physically down (explicitly failed, or
  /// the injector crashed it). The simulation uses this to decide how
  /// I/O *behaves*; routing decisions should use node_usable() instead,
  /// which consults the failure detector when one is attached.
  bool node_failed(std::size_t node) const;
  /// The routing view: should reads/repair treat this node as holding
  /// usable units right now? Without a Membership attached this is the
  /// omniscient !node_failed(). With one attached, the injector peek is
  /// replaced by the detector's verdict — a node is unusable when the
  /// cluster itself observed it fail, or when membership says Dead.
  bool node_usable(std::size_t node) const;

  /// Failure detector consumed by node_usable(). Non-owning; null
  /// detaches (back to the omniscient view).
  void set_membership(Membership* membership) noexcept {
    membership_ = membership;
  }
  Membership* membership() const noexcept { return membership_; }

  /// Damage-event consumer (the Healer). Non-owning; null detaches.
  /// With a sink attached, scrub() routes findings through the sink
  /// instead of repairing inline.
  void set_damage_sink(DamageSink* sink) noexcept { damage_sink_ = sink; }
  DamageSink* damage_sink() const noexcept { return damage_sink_; }

  /// Every (object, stripe) whose placement references `node` — the
  /// stripes a Dead verdict for that node puts at risk.
  std::vector<std::pair<std::string, std::size_t>> stripes_on_node(
      std::size_t node) const;

  /// Foreground (client get/put) payload bytes moved since the last
  /// call; the healer's load-aware deferral reads and resets this.
  std::uint64_t take_foreground_bytes() noexcept {
    const std::uint64_t b = foreground_bytes_;
    foreground_bytes_ = 0;
    return b;
  }

  /// Nodes holding each unit of object `name`'s stripe `s` (n entries).
  /// Throws std::invalid_argument on unknown object/stripe.
  const std::vector<std::size_t>& placement(const std::string& name,
                                            std::size_t s) const;
  std::size_t object_stripe_count(const std::string& name) const;
  std::vector<std::string> object_names() const;

  /// Test/chaos hook: flips one byte of a stored unit, checksum left
  /// stale. Returns false when the unit is not on a live node.
  bool corrupt_unit(const std::string& name, std::size_t stripe,
                    std::size_t unit);

  /// DAG-based repair of everything lost or corrupt (see repair.h).
  /// Returns units rebuilt. Unrecoverable stripes are skipped.
  std::size_t repair();
  /// Integrity pass: local CRC verification on every node, DAG repair of
  /// every bad unit found. Returns corrupt-or-missing units detected.
  std::size_t scrub();

  RepairCoordinator& repairer() noexcept { return *repairer_; }
  void set_repair_config(const RepairConfig& config);
  const RepairStats& repair_stats() const;

  const ClusterStats& stats() const noexcept { return stats_; }
  const HedgeConfig& hedge_config() const noexcept { return config_.hedge; }
  /// Current EWMA read latency for a node (0 until sampled).
  double node_ewma_us(std::size_t node) const;

 private:
  friend class RepairCoordinator;

  struct StoredUnit {
    std::vector<std::uint8_t> bytes;
    std::uint32_t crc = 0;
  };
  struct Node {
    bool failed = false;
    std::map<std::tuple<std::string, std::size_t, std::size_t>, StoredUnit>
        units;
    /// Unit keys held when the node was marked failed — the
    /// re-replication debt a later revive owes (see revive_node).
    std::vector<std::tuple<std::string, std::size_t, std::size_t>> lost_units;
  };
  struct StripeLocation {
    std::vector<std::size_t> nodes;      ///< node per unit, n entries
    std::vector<std::uint32_t> unit_crcs;  ///< intended contents, n entries
  };
  struct ObjectMeta {
    std::size_t size = 0;
    std::vector<StripeLocation> stripes;
  };

  enum class UnitRead { Ok, Missing, Corrupt };

  /// One remote unit read: RPC over the network with retries, disk
  /// faults, CRC verification against metadata (one re-read on
  /// mismatch). On Ok, dest holds unit_size_ bytes and *latency_us the
  /// modeled response latency of the winning attempt.
  UnitRead read_unit_rpc(const std::string& name, const StripeLocation& loc,
                         std::size_t s, std::size_t u, std::uint8_t* dest,
                         std::uint64_t* latency_us);

  /// Node-local read used by repair helpers (no client RPC): disk faults
  /// + CRC only.
  UnitRead read_unit_local(const std::string& name, const StripeLocation& loc,
                           std::size_t s, std::size_t u, std::uint8_t* dest);

  /// Ships `src` over the network and persists it as unit u on its
  /// node (write faults apply). False when the unit could not be stored.
  bool store_unit(const std::string& name, const StripeLocation& loc,
                  std::size_t s, std::size_t u, const std::uint8_t* src);

  /// Reads stripe s with degradation + hedging; returns the full n-unit
  /// buffer and accumulates modeled latency.
  std::vector<std::uint8_t> read_stripe(const std::string& name,
                                        const ObjectMeta& meta, std::size_t s);

  void update_ewma(std::size_t node, std::uint64_t latency_us);
  void mark_node_failed(std::size_t node);
  /// Emits a damage event when a sink is attached (no-op otherwise).
  void report_damage(DamageKind kind, const std::string& name,
                     std::size_t stripe);

  ec::CodeParams params_;
  std::size_t unit_size_;
  ClusterConfig config_;
  core::Codec codec_;
  Network net_;
  std::vector<Node> nodes_;
  std::map<std::string, ObjectMeta> objects_;
  ClusterStats stats_;
  std::size_t next_rotation_ = 0;
  storage::FaultInjector* injector_ = nullptr;
  storage::RetryPolicy retry_;
  storage::RetryStats retry_stats_;
  std::shared_ptr<core::PlanCache> plan_cache_;
  struct Ewma {
    double value = 0.0;
    std::uint32_t samples = 0;
  };
  std::vector<Ewma> ewma_;
  std::unique_ptr<RepairCoordinator> repairer_;
  Membership* membership_ = nullptr;
  DamageSink* damage_sink_ = nullptr;
  std::uint64_t foreground_bytes_ = 0;
};

}  // namespace tvmec::cluster
