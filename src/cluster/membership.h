#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"

/// Deterministic heartbeat-based failure detection for the simulated
/// cluster — the piece that replaces the omniscient `node_failed()` peek
/// in routing decisions with an *earned* verdict.
///
/// Heartbeats are messages: every probe (client -> node) and ack
/// (node -> client) is a real Network::send(), so heartbeat traffic
/// rolls the same seeded link-fault stream as data traffic. A partition
/// window that would eat a unit transfer eats the heartbeat too, and the
/// whole chaos campaign — data faults, link faults, and the detector's
/// resulting verdicts — replays byte-for-byte from one seed.
///
/// Suspicion is phi-accrual-style but measured in *ticks* (heartbeat
/// intervals), not absolute virtual time: phi is the current silence
/// (ticks since the last good ack) over the node's smoothed inter-ack
/// gap. Foreground ops advancing the virtual clock therefore cannot
/// create false positives — only missed heartbeat rounds can. A node
/// climbs Alive -> Suspect -> Dead as phi crosses suspect_phi then
/// dead_phi, and any good ack snaps it back to Alive (a Dead -> Alive
/// snap is a *rejoin*, which listeners use to re-examine parked work).
///
/// Counter identities (asserted by tests/bench):
///   probes_sent == acks_received + acks_late + acks_missed
///   alive_to_suspect == suspect_to_alive + suspect_to_dead + |Suspect|
///   suspect_to_dead  == dead_to_alive + |Dead|
namespace tvmec::cluster {

enum class NodeState { Alive, Suspect, Dead };

const char* to_string(NodeState s) noexcept;

struct MembershipConfig {
  std::uint64_t heartbeat_interval_us = 10'000;  ///< virtual time per tick
  std::size_t heartbeat_bytes = 64;              ///< probe/ack payload size
  /// Round-trip budget for an ack to count on time. 0 = auto: derived
  /// from the network config so that jitter alone can never blow it
  /// (2 * worst one-way latency including max jitter, plus slack).
  std::uint64_t ack_timeout_us = 0;
  double suspect_phi = 3.0;  ///< silence/gap ratio that marks Suspect
  double dead_phi = 8.0;     ///< silence/gap ratio that marks Dead
  double gap_alpha = 0.2;    ///< EWMA smoothing for inter-ack gaps
};

struct MembershipStats {
  std::uint64_t ticks = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t acks_received = 0;  ///< on-time acks
  std::uint64_t acks_late = 0;      ///< delivered past ack_timeout_us
  std::uint64_t acks_missed = 0;    ///< probe/ack dropped or node down
  std::uint64_t alive_to_suspect = 0;
  std::uint64_t suspect_to_alive = 0;
  std::uint64_t suspect_to_dead = 0;
  std::uint64_t dead_to_alive = 0;  ///< rejoins
};

/// Observer of state transitions (the Healer). Non-owning.
class MembershipListener {
 public:
  virtual ~MembershipListener() = default;
  virtual void on_transition(std::size_t node, NodeState from,
                             NodeState to) = 0;
};

class Membership {
 public:
  /// Does NOT self-attach: call cluster.set_membership(&m) to make
  /// routing consume the verdicts (kept separate so tests can observe a
  /// detector without changing cluster behavior).
  explicit Membership(Cluster& cluster, const MembershipConfig& config = {});

  const MembershipConfig& config() const noexcept { return config_; }
  /// The resolved round-trip budget (config value, or the auto
  /// derivation when it was 0).
  std::uint64_t ack_timeout_us() const noexcept { return ack_timeout_us_; }

  void set_listener(MembershipListener* listener) noexcept {
    listener_ = listener;
  }

  /// One heartbeat round: advances the virtual clock by one interval,
  /// probes every node, folds acks into the per-node gap estimators, and
  /// applies state transitions. Listeners fire synchronously inside.
  void tick();

  NodeState state(std::size_t node) const;
  /// The routing verdict consumed by Cluster::node_usable(): Suspect
  /// nodes are still routed to (suspicion is a hint, death is a verdict).
  bool routable(std::size_t node) const { return state(node) != NodeState::Dead; }
  /// Current phi (silence over smoothed gap) for a node; 0 right after a
  /// good ack.
  double phi(std::size_t node) const;

  std::size_t count(NodeState s) const;

  const MembershipStats& stats() const noexcept { return stats_; }

  /// The transition ledger balances against current occupancy — every
  /// entry into Suspect/Dead is matched by an exit or a node still there.
  bool transitions_balance() const;
  /// probes_sent == acks_received + acks_late + acks_missed.
  bool probe_identity_holds() const noexcept {
    return stats_.probes_sent ==
           stats_.acks_received + stats_.acks_late + stats_.acks_missed;
  }

 private:
  struct Tracker {
    NodeState state = NodeState::Alive;
    std::uint64_t last_ack_tick = 0;  ///< tick of the last on-time ack
    double mean_gap = 1.0;            ///< EWMA inter-ack gap, in ticks
    double mean_dev = 0.0;            ///< EWMA |gap - mean|
    bool ever_acked = false;
  };

  void transition(std::size_t node, NodeState to);

  Cluster& cluster_;
  MembershipConfig config_;
  std::uint64_t ack_timeout_us_ = 0;
  MembershipListener* listener_ = nullptr;
  std::vector<Tracker> trackers_;
  MembershipStats stats_;
};

}  // namespace tvmec::cluster
