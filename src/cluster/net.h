#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "storage/fault_injector.h"

/// A deterministic modeled network for the simulated cluster — the same
/// substitution discipline as the E15 simulated accelerator: real bytes
/// move through real buffers (a "send" hands the payload to the
/// receiver's code path unchanged), while *time* and *failure* are
/// modeled. Latency is base + bytes/bandwidth + seeded jitter, with a
/// cross-failure-domain surcharge; drops, duplicate deliveries, and
/// partition windows come from the one shared FaultInjector stream, so a
/// chaos run replays byte-for-byte from its seed.
///
/// Accounting is the point: every send lands in NetStats under the
/// invariant bytes_sent == bytes_received + bytes_dropped (a duplicate
/// counts twice on both sides; a drop counts once sent, once dropped),
/// and per-link / per-endpoint-ingress byte counters expose the
/// quantities repair planning optimizes (cross-domain bytes, repairer
/// ingress, hottest link).
namespace tvmec::cluster {

struct NetConfig {
  std::uint64_t base_latency_us = 50;        ///< per-message propagation
  std::uint64_t cross_domain_extra_us = 200; ///< surcharge when domains differ
  std::uint64_t bytes_per_us = 100;          ///< modeled bandwidth (100 MB/s)
  std::uint64_t jitter_us = 0;               ///< uniform [0, jitter_us] extra
};

struct NetStats {
  std::uint64_t messages_sent = 0;       ///< send() calls
  std::uint64_t messages_delivered = 0;  ///< deliveries (a duplicate adds 2)
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_dropped = 0;
  std::uint64_t cross_domain_bytes = 0;  ///< received bytes that crossed domains

  /// The chaos-test invariant: nothing on the wire is unaccounted for.
  bool balanced() const noexcept {
    return bytes_sent == bytes_received + bytes_dropped;
  }
};

struct SendResult {
  bool delivered = false;        ///< at least one copy arrived
  std::uint64_t latency_us = 0;  ///< modeled one-way latency
  int copies = 1;                ///< deliveries (2 under duplicate fault)
};

class Network {
 public:
  /// Endpoints 0..num_nodes-1 are cluster nodes; endpoint num_nodes is
  /// the client/coordinator (its own failure domain). Node i lives in
  /// failure domain i % num_domains.
  Network(std::size_t num_nodes, std::size_t num_domains,
          const NetConfig& config = {}, std::uint64_t seed = 0x4E37);

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_domains() const noexcept { return num_domains_; }
  /// The client endpoint id (also valid as a send src/dst).
  std::size_t client() const noexcept { return num_nodes_; }
  /// Domain of an endpoint; the client gets the reserved domain
  /// num_domains so every node-to-client hop counts as cross-domain.
  std::size_t domain_of(std::size_t endpoint) const noexcept {
    return endpoint >= num_nodes_ ? num_domains_ : endpoint % num_domains_;
  }

  const NetConfig& config() const noexcept { return config_; }

  /// The cluster's virtual clock, in microseconds. The network owns time
  /// because everything timed in the simulation is a message: foreground
  /// reads/writes advance it by their modeled stripe latency, and the
  /// membership/healer tick advances it by one heartbeat interval. Sends
  /// never advance it implicitly (per-message latencies model *parallel*
  /// fan-out; the caller decides what serializes).
  std::uint64_t now_us() const noexcept { return clock_us_; }
  void advance(std::uint64_t us) noexcept { clock_us_ += us; }

  /// Non-owning; the injector must outlive the network. Null detaches
  /// (a perfect network — still modeled latency, never faults).
  void attach_fault_injector(storage::FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  storage::FaultInjector* fault_injector() const noexcept { return injector_; }

  /// Models moving `bytes` payload bytes from `src` to `dst`. Rolls link
  /// faults on the directed link (drop / duplicate / partition window),
  /// accounts the traffic, and returns the modeled latency. The caller
  /// moves the actual payload itself on delivered == true — the network
  /// never touches payload bytes, which is what keeps fault-free runs
  /// byte-identical to the single-process oracle.
  SendResult send(std::size_t src, std::size_t dst, std::size_t bytes);

  const NetStats& stats() const noexcept { return stats_; }
  void reset_stats();

  /// Received bytes per directed link / per receiving endpoint — the
  /// repair-traffic shape metrics (E22).
  std::uint64_t link_bytes(std::size_t src, std::size_t dst) const;
  std::uint64_t max_link_bytes() const;
  std::uint64_t ingress_bytes(std::size_t endpoint) const;
  /// Snapshot of per-directed-link received bytes (for before/after
  /// deltas around a repair).
  const std::map<std::pair<std::size_t, std::size_t>, std::uint64_t>&
  link_bytes_map() const noexcept {
    return link_bytes_;
  }

 private:
  std::size_t num_nodes_;
  std::size_t num_domains_;
  NetConfig config_;
  std::uint64_t clock_us_ = 0;
  std::mt19937_64 jitter_rng_;  ///< separate stream: latency modeling must
                                ///< not perturb the injector's fault replay
  storage::FaultInjector* injector_ = nullptr;
  NetStats stats_;
  std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> link_bytes_;
  std::vector<std::uint64_t> ingress_bytes_;  ///< size num_nodes_ + 1
};

}  // namespace tvmec::cluster
