#include "cluster/repair.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/gemm_coder.h"

namespace tvmec::cluster {

namespace {

constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

void xor_into(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace

std::size_t RepairPlan::hops() const noexcept {
  // Every non-aggregator helper sends one hop to its domain aggregator;
  // every aggregator sends one hop to the root. Final distribution to
  // replacement nodes other than the root is accounted at execution.
  return helpers.size();
}

RepairCoordinator::RepairCoordinator(Cluster& cluster,
                                     const RepairConfig& config)
    : cluster_(cluster), config_(config) {}

std::vector<std::size_t> RepairCoordinator::pick_replacements(
    const Cluster::StripeLocation& loc,
    const std::vector<std::size_t>& erased) {
  std::vector<std::size_t> picks;
  std::vector<bool> taken(cluster_.nodes_.size(), false);
  for (const std::size_t node : loc.nodes)
    if (node < taken.size()) taken[node] = true;
  for (const std::size_t uid : erased) {
    const std::size_t orig = loc.nodes[uid];
    // A live node with a corrupt copy is rebuilt in place.
    if (cluster_.node_usable(orig)) {
      picks.push_back(orig);
      continue;
    }
    // Otherwise find a spare: prefer the lost unit's failure domain so
    // the placement's domain spread survives the repair.
    const std::size_t want_domain = cluster_.domain_of(orig);
    std::size_t chosen = kNoNode;
    for (std::size_t node = 0; node < cluster_.nodes_.size(); ++node) {
      if (taken[node] || !cluster_.node_usable(node)) continue;
      if (cluster_.domain_of(node) == want_domain) {
        chosen = node;
        break;
      }
      if (chosen == kNoNode) chosen = node;
    }
    if (chosen == kNoNode) return {};
    taken[chosen] = true;
    picks.push_back(chosen);
  }
  return picks;
}

std::optional<RepairPlan> RepairCoordinator::build_plan(
    const Cluster::StripeLocation& loc, const StripeDamage& damage,
    const std::vector<bool>& excluded, std::size_t root_node) {
  // Survivor preference: the root's domain first, then the remaining
  // survivors grouped by domain — a plan drawn from few domains means
  // few cross-domain aggregate messages.
  const std::size_t root_domain = cluster_.domain_of(root_node);
  std::vector<std::size_t> pref;
  for (const std::size_t uid : damage.survivors) {
    const std::size_t node = loc.nodes[uid];
    if (!cluster_.node_usable(node) || excluded[node]) continue;
    pref.push_back(uid);
  }
  if (pref.size() < cluster_.params_.k) return std::nullopt;
  if (config_.prefer_domain_local) {
    std::stable_sort(pref.begin(), pref.end(),
                     [&](std::size_t a, std::size_t b) {
                       const std::size_t da =
                           cluster_.domain_of(loc.nodes[a]);
                       const std::size_t db =
                           cluster_.domain_of(loc.nodes[b]);
                       if ((da == root_domain) != (db == root_domain))
                         return da == root_domain;
                       return da < db;
                     });
  }

  // The locality dimension of the cache key: same loss pattern, different
  // survivor preference (placement/exclusions) => different plan entry.
  std::uint64_t locality = fnv_mix(kFnvOffset, root_domain + 1);
  for (const std::size_t uid : pref) locality = fnv_mix(locality, uid + 1);

  std::vector<std::size_t> erased_sorted = damage.erased;
  std::sort(erased_sorted.begin(), erased_sorted.end());

  const gf::Matrix& generator = cluster_.codec_.code().generator();
  std::shared_ptr<const ec::DecodePlan> plan;
  if (cluster_.plan_cache_ != nullptr) {
    core::PlanKey key{cluster_.params_.k,
                      cluster_.params_.r,
                      cluster_.params_.w,
                      cluster_.codec_.code().family(),
                      false,
                      erased_sorted,
                      locality};
    plan = cluster_.plan_cache_->get_or_build(key, [&]() {
      return ec::make_decode_plan_with_survivors(generator, erased_sorted,
                                                 pref);
    });
  } else {
    auto built =
        ec::make_decode_plan_with_survivors(generator, erased_sorted, pref);
    if (built)
      plan = std::make_shared<const ec::DecodePlan>(std::move(*built));
  }
  if (plan == nullptr) return std::nullopt;

  RepairPlan out;
  out.erased = erased_sorted;
  out.decode = plan;
  out.root_node = root_node;
  for (std::size_t i = 0; i < plan->survivors.size(); ++i) {
    const std::size_t uid = plan->survivors[i];
    const std::size_t node = loc.nodes[uid];
    out.helpers.push_back({uid, node, cluster_.domain_of(node), i});
  }
  for (const auto& h : out.helpers) {
    const auto it =
        std::find(out.domains.begin(), out.domains.end(), h.domain);
    if (it == out.domains.end()) {
      out.domains.push_back(h.domain);
      out.aggregators.push_back(h.node);
    }
  }
  return out;
}

bool RepairCoordinator::transfer(std::size_t src, std::size_t dst,
                                 std::size_t bytes, std::uint64_t salt,
                                 std::uint64_t* serialized_us) {
  const std::size_t chunk = std::max<std::size_t>(1, config_.chunk_bytes);
  std::size_t off = 0;
  std::size_t index = 0;
  while (off < bytes) {
    const std::size_t take = std::min(chunk, bytes - off);
    const bool ok = storage::with_retries(
        cluster_.retry_, cluster_.retry_stats_,
        fnv_mix(salt, index), [&]() {
          const SendResult r = cluster_.net_.send(src, dst, take);
          *serialized_us += r.latency_us;
          return r.delivered ? storage::Attempt::Success
                             : storage::Attempt::Retry;
        });
    if (!ok) return false;
    off += take;
    ++index;
  }
  return true;
}

bool RepairCoordinator::execute_attempt(
    const std::string& name, const Cluster::StripeLocation& loc,
    std::size_t s, const RepairPlan& plan,
    std::vector<std::vector<std::uint8_t>>& recovered, RepairReport& report,
    std::size_t* failed_node) {
  *failed_node = kNoNode;
  const std::size_t e = plan.erased.size();
  const std::size_t unit = cluster_.unit_size_;
  const gf::Matrix& recovery = plan.decode->recovery;
  const std::uint64_t root_in_before =
      cluster_.net_.ingress_bytes(plan.root_node);

  // One e-unit aggregate buffer per helper domain, XOR-accumulated.
  std::vector<std::vector<std::uint8_t>> agg(
      plan.domains.size(), std::vector<std::uint8_t>(e * unit, 0));
  std::vector<std::uint64_t> agg_ingress_us(plan.domains.size(), 0);

  std::vector<std::uint8_t> unit_buf(unit);
  std::vector<std::uint8_t> partial(e * unit);
  for (const auto& helper : plan.helpers) {
    // Local read at the helper (disk faults + CRC, retried).
    if (cluster_.read_unit_local(name, loc, s, helper.unit,
                                 unit_buf.data()) !=
        Cluster::UnitRead::Ok) {
      *failed_node = helper.node;
      return false;
    }
    // The helper's slice of the recovery matrix: an e x 1 coefficient
    // column, lowered through the same bitmatrix->GEMM path as every
    // other coding op and applied zero-copy to its local unit.
    gf::Matrix column(recovery.field(), e, 1);
    for (std::size_t i = 0; i < e; ++i)
      column.set(i, 0, recovery.at(i, helper.column));
    core::GemmCoder coder(column);
    const std::uint8_t* in_ptr = unit_buf.data();
    std::vector<std::uint8_t*> out_ptrs(e);
    for (std::size_t i = 0; i < e; ++i) out_ptrs[i] = partial.data() + i * unit;
    const core::ScatteredCoderItem item{{&in_ptr, 1}, out_ptrs, unit};
    coder.apply_scattered({&item, 1});

    const std::size_t d = static_cast<std::size_t>(
        std::find(plan.domains.begin(), plan.domains.end(), helper.domain) -
        plan.domains.begin());
    if (helper.node != plan.aggregators[d]) {
      // Ship the partial one (intra-domain) hop. Duplicate deliveries
      // are idempotent: the aggregator folds each helper's partial in
      // exactly once, however many copies arrive.
      std::uint64_t ser = 0;
      if (!transfer(helper.node, plan.aggregators[d], e * unit,
                    storage::FaultInjector::key(name, s, helper.unit),
                    &ser)) {
        *failed_node = helper.node;
        return false;
      }
      agg_ingress_us[d] += ser;
      ++report.hops;
    }
    xor_into(agg[d].data(), partial.data(), e * unit);
  }

  // Cross-domain stage: each domain aggregate crosses to the root, whose
  // ingress link serializes the arrivals.
  std::vector<std::uint8_t> total(e * unit, 0);
  std::uint64_t root_ingress_us = 0;
  for (std::size_t d = 0; d < plan.domains.size(); ++d) {
    std::uint64_t ser = 0;
    if (!transfer(plan.aggregators[d], plan.root_node, e * unit,
                  storage::FaultInjector::key(name, s, 500 + d), &ser)) {
      *failed_node = plan.aggregators[d];
      return false;
    }
    root_ingress_us += ser;
    ++report.hops;
    xor_into(total.data(), agg[d].data(), e * unit);
  }

  // Pipelined makespan: intra-domain aggregation overlaps the root's
  // ingress chunk by chunk, so the modeled wall-clock follows the
  // bottleneck stage plus a pipeline fill (see DESIGN.md).
  const std::uint64_t stage1 =
      agg_ingress_us.empty()
          ? 0
          : *std::max_element(agg_ingress_us.begin(), agg_ingress_us.end());
  std::uint64_t makespan = std::max(stage1, root_ingress_us) +
                           2 * cluster_.net_.config().base_latency_us;

  // GF-linearity delivered the decode: total == recovery * survivors,
  // byte-identical to decoding at the root. Verify against the metadata
  // checksums before anything is persisted.
  recovered.assign(e, std::vector<std::uint8_t>(unit));
  for (std::size_t i = 0; i < e; ++i) {
    std::memcpy(recovered[i].data(), total.data() + i * unit, unit);
    if (storage::crc32c(recovered[i]) != loc.unit_crcs[plan.erased[i]]) {
      *failed_node = kNoNode;  // nothing to exclude; re-plan retries clean
      return false;
    }
  }
  report.makespan_us += makespan;
  report.root_ingress_bytes +=
      cluster_.net_.ingress_bytes(plan.root_node) - root_in_before;
  return true;
}

bool RepairCoordinator::execute_naive(
    const std::string& name, const Cluster::StripeLocation& loc,
    std::size_t s, const StripeDamage& damage, std::size_t root_node,
    std::vector<std::vector<std::uint8_t>>& recovered,
    RepairReport& report) {
  const std::size_t k = cluster_.params_.k;
  const std::size_t unit = cluster_.unit_size_;
  const std::uint64_t root_in_before = cluster_.net_.ingress_bytes(root_node);

  // Haul whole survivor units to the root until k are in hand. The
  // root's ingress link serializes every transfer — the star-topology
  // cost the DAG exists to avoid.
  std::vector<std::size_t> fetched_ids;
  std::vector<std::vector<std::uint8_t>> fetched;
  std::uint64_t root_ingress_us = 0;
  for (const std::size_t uid : damage.survivors) {
    if (fetched_ids.size() == k) break;
    std::vector<std::uint8_t> buf(unit);
    if (cluster_.read_unit_local(name, loc, s, uid, buf.data()) !=
        Cluster::UnitRead::Ok)
      continue;
    std::uint64_t ser = 0;
    if (!transfer(loc.nodes[uid], root_node, unit,
                  storage::FaultInjector::key(name, s, 2000 + uid), &ser))
      continue;
    root_ingress_us += ser;
    ++report.hops;
    fetched_ids.push_back(uid);
    fetched.push_back(std::move(buf));
  }
  if (fetched_ids.size() < k) return false;

  std::vector<std::size_t> erased_sorted = damage.erased;
  std::sort(erased_sorted.begin(), erased_sorted.end());
  const auto plan = ec::make_decode_plan_with_survivors(
      cluster_.codec_.code().generator(), erased_sorted, fetched_ids);
  if (!plan) return false;

  const std::size_t e = erased_sorted.size();
  std::vector<const std::uint8_t*> in_ptrs;
  for (const std::size_t uid : plan->survivors) {
    const auto it =
        std::find(fetched_ids.begin(), fetched_ids.end(), uid);
    in_ptrs.push_back(
        fetched[static_cast<std::size_t>(it - fetched_ids.begin())].data());
  }
  recovered.assign(e, std::vector<std::uint8_t>(unit));
  std::vector<std::uint8_t*> out_ptrs(e);
  for (std::size_t i = 0; i < e; ++i) out_ptrs[i] = recovered[i].data();
  core::GemmCoder coder(plan->recovery);
  const core::ScatteredCoderItem item{in_ptrs, out_ptrs, unit};
  coder.apply_scattered({&item, 1});

  for (std::size_t i = 0; i < e; ++i)
    if (storage::crc32c(recovered[i]) != loc.unit_crcs[erased_sorted[i]])
      return false;
  report.makespan_us += root_ingress_us +
                        2 * cluster_.net_.config().base_latency_us;
  report.root_ingress_bytes +=
      cluster_.net_.ingress_bytes(root_node) - root_in_before;
  return true;
}

RepairReport RepairCoordinator::repair_stripe(const std::string& name,
                                              std::size_t s) {
  const auto oit = cluster_.objects_.find(name);
  if (oit == cluster_.objects_.end() || s >= oit->second.stripes.size())
    throw std::invalid_argument(
        "RepairCoordinator::repair_stripe: unknown object/stripe");
  Cluster::StripeLocation& loc = oit->second.stripes[s];

  RepairReport report;
  StripeDamage damage = assess_stripe(name, s, loc);
  if (damage.erased.empty()) {
    report.completed = true;
    return report;
  }

  const NetStats net_before = cluster_.net_.stats();
  const auto links_before = cluster_.net_.link_bytes_map();

  // Persists `recovered` (CRC-verified) onto the replacement nodes,
  // shipping each unit root -> replacement when they differ; updates
  // placement metadata. Returns false when a replacement dies receiving
  // its unit (the outer loop then re-plans — re-assessment drops any
  // units already persisted).
  const auto store_recovered =
      [&](const std::vector<std::size_t>& erased_sorted,
          const std::vector<std::size_t>& replacements, std::size_t root,
          std::vector<std::vector<std::uint8_t>>& recovered) {
        for (std::size_t i = 0; i < erased_sorted.size(); ++i) {
          const std::size_t uid = erased_sorted[i];
          const std::size_t target = replacements[i];
          if (target != root) {
            std::uint64_t ser = 0;
            if (!transfer(root, target, cluster_.unit_size_,
                          storage::FaultInjector::key(name, s, 3000 + uid),
                          &ser))
              return false;
            ++report.hops;
            report.makespan_us += ser;
          }
          Cluster::StoredUnit su;
          su.bytes = recovered[i];
          su.crc = loc.unit_crcs[uid];
          if (cluster_.injector_ != nullptr &&
              !cluster_.injector_->on_write(
                  target, storage::FaultInjector::key(name, s, uid),
                  su.bytes)) {
            cluster_.mark_node_failed(target);
            return false;
          }
          cluster_.nodes_[target].units[{name, s, uid}] = std::move(su);
          loc.nodes[uid] = target;
          ++report.units_repaired;
          ++stats_.units_repaired;
          ++cluster_.stats_.units_repaired;
        }
        return true;
      };

  std::vector<bool> excluded(cluster_.nodes_.size(), false);
  std::size_t replans = 0;
  bool completed = false;
  bool any_attempt = false;

  while (config_.dag_enabled) {
    damage = assess_stripe(name, s, loc);
    if (damage.erased.empty()) {
      // A re-planned pass found earlier partial stores finished the job.
      completed = true;
      break;
    }
    const auto replacements = pick_replacements(loc, damage.erased);
    if (damage.survivors.size() < cluster_.params_.k ||
        replacements.empty())
      break;  // not DAG-viable; naive can't help either -> abandon below
    std::vector<std::size_t> erased_sorted = damage.erased;
    std::sort(erased_sorted.begin(), erased_sorted.end());

    const auto plan =
        build_plan(loc, damage, excluded, replacements[0]);
    if (!plan) break;  // constrained survivors lack rank -> naive

    ++stats_.attempts_started;
    any_attempt = true;
    std::size_t failed_node = kNoNode;
    std::vector<std::vector<std::uint8_t>> recovered;
    if (execute_attempt(name, loc, s, *plan, recovered, report,
                        &failed_node) &&
        store_recovered(erased_sorted, replacements, plan->root_node,
                        recovered)) {
      ++stats_.attempts_completed;
      completed = true;
      break;
    }
    // Mid-DAG failure: discard partials (nothing half-aggregated
    // survives), exclude the dead helper, re-plan.
    if (failed_node != kNoNode) excluded[failed_node] = true;
    ++report.replans;
    if (replans < config_.max_replans) {
      ++stats_.attempts_replanned;
      ++replans;
      continue;
    }
    // Out of re-plan budget: this attempt is superseded by the naive
    // plan (still a re-plan for the identity) — or abandoned outright.
    if (config_.allow_naive_fallback) {
      ++stats_.attempts_replanned;
    } else {
      ++stats_.attempts_abandoned;
    }
    break;
  }

  if (!completed && config_.allow_naive_fallback) {
    damage = assess_stripe(name, s, loc);
    if (damage.erased.empty()) {
      completed = true;
    } else {
      const auto replacements = pick_replacements(loc, damage.erased);
      if (!replacements.empty() &&
          damage.survivors.size() >= cluster_.params_.k) {
        std::vector<std::size_t> erased_sorted = damage.erased;
        std::sort(erased_sorted.begin(), erased_sorted.end());
        ++stats_.attempts_started;
        any_attempt = true;
        std::vector<std::vector<std::uint8_t>> recovered;
        if (execute_naive(name, loc, s, damage, replacements[0], recovered,
                          report) &&
            store_recovered(erased_sorted, replacements, replacements[0],
                            recovered)) {
          ++stats_.attempts_completed;
          ++stats_.naive_fallbacks;
          report.used_naive = true;
          completed = true;
        } else {
          ++stats_.attempts_abandoned;
        }
      }
    }
  }
  if (!completed && !any_attempt) {
    // A damaged stripe we could not even plan for: account it so every
    // repair request shows up in the identity.
    ++stats_.attempts_started;
    ++stats_.attempts_abandoned;
  }

  const NetStats net_after = cluster_.net_.stats();
  report.bytes_on_wire = net_after.bytes_sent - net_before.bytes_sent;
  report.cross_domain_bytes =
      net_after.cross_domain_bytes - net_before.cross_domain_bytes;
  std::uint64_t max_link = 0;
  for (const auto& [link, bytes] : cluster_.net_.link_bytes_map()) {
    const auto it = links_before.find(link);
    const std::uint64_t before = it == links_before.end() ? 0 : it->second;
    max_link = std::max(max_link, bytes - before);
  }
  report.max_link_bytes = max_link;
  stats_.bytes_on_wire += report.bytes_on_wire;
  stats_.cross_domain_bytes += report.cross_domain_bytes;
  stats_.hops += report.hops;
  stats_.makespan_us_total += report.makespan_us;
  if (config_.deadline_us > 0 && report.makespan_us > config_.deadline_us)
    ++stats_.deadline_overruns;

  report.completed = completed;
  if (completed && report.units_repaired > 0) ++stats_.stripes_repaired;
  return report;
}

std::size_t RepairCoordinator::repair_all() {
  std::size_t units = 0;
  for (const auto& name : cluster_.object_names()) {
    const std::size_t stripes = cluster_.object_stripe_count(name);
    for (std::size_t s = 0; s < stripes; ++s)
      units += repair_stripe(name, s).units_repaired;
  }
  return units;
}

StripeHealth RepairCoordinator::stripe_health(const std::string& name,
                                              std::size_t s) {
  StripeHealth h;
  const auto oit = cluster_.objects_.find(name);
  if (oit == cluster_.objects_.end() || s >= oit->second.stripes.size())
    return h;
  h.exists = true;
  const StripeDamage damage =
      assess_stripe(name, s, oit->second.stripes[s]);
  h.erased = damage.erased.size();
  h.survivors = damage.survivors.size();
  return h;
}

std::optional<RepairPlan> RepairCoordinator::plan_stripe(
    const std::string& name, std::size_t s) {
  const auto oit = cluster_.objects_.find(name);
  if (oit == cluster_.objects_.end() || s >= oit->second.stripes.size())
    return std::nullopt;
  const Cluster::StripeLocation& loc = oit->second.stripes[s];
  const StripeDamage damage = assess_stripe(name, s, loc);
  if (damage.erased.empty() ||
      damage.survivors.size() < cluster_.params_.k)
    return std::nullopt;
  const auto replacements = pick_replacements(loc, damage.erased);
  if (replacements.empty()) return std::nullopt;
  const std::vector<bool> excluded(cluster_.nodes_.size(), false);
  return build_plan(loc, damage, excluded, replacements[0]);
}

RepairCoordinator::StripeDamage RepairCoordinator::assess_stripe(
    const std::string& name, std::size_t s,
    const Cluster::StripeLocation& loc) {
  StripeDamage damage;
  for (std::size_t u = 0; u < loc.nodes.size(); ++u) {
    const std::size_t node = loc.nodes[u];
    bool bad = !cluster_.node_usable(node);
    if (!bad) {
      const auto it = cluster_.nodes_[node].units.find({name, s, u});
      bad = it == cluster_.nodes_[node].units.end() ||
            storage::crc32c(it->second.bytes) != loc.unit_crcs[u];
    }
    (bad ? damage.erased : damage.survivors).push_back(u);
  }
  return damage;
}

}  // namespace tvmec::cluster
