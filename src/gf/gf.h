#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// Finite-field (Galois-field) arithmetic over GF(2^w), the substrate for
/// all erasure-code math in this library.
///
/// Supported word sizes are w = 4, 8 and 16, matching the sizes used by
/// Jerasure, ISA-L and the paper's evaluation (which fixes w = 8).
/// Arithmetic uses log/exp tables built once per field; region operations
/// (multiply a whole buffer by a constant) are provided for the table-based
/// baseline encoders.
namespace tvmec::gf {

/// Element type wide enough for every supported field.
using elem_t = std::uint16_t;

/// Returns true if `w` is one of the supported field word sizes.
constexpr bool is_supported_w(unsigned w) noexcept {
  return w == 4 || w == 8 || w == 16;
}

/// Split multiplication tables for GF(2^8), the core trick of ISA-L-style
/// encoders: because multiplication by a constant is linear over GF(2),
/// c*b == c*(b & 0x0F) ^ c*(b & 0xF0), so two 16-entry lookups replace one
/// 256-entry lookup and map directly onto byte-shuffle instructions.
struct SplitTables8 {
  std::array<std::uint8_t, 16> lo{};  ///< lo[x] = c * x          for x in [0,16)
  std::array<std::uint8_t, 16> hi{};  ///< hi[x] = c * (x << 4)   for x in [0,16)

  /// Multiply one byte by the constant the tables were built for.
  std::uint8_t mul(std::uint8_t b) const noexcept {
    return static_cast<std::uint8_t>(lo[b & 0x0F] ^ hi[b >> 4]);
  }
};

/// A Galois field GF(2^w).
///
/// Instances are immutable after construction. Use `Field::of(w)` to share
/// the per-w singleton instead of rebuilding tables.
class Field {
 public:
  /// Builds the log/exp tables for GF(2^w).
  /// Throws std::invalid_argument if `w` is unsupported.
  explicit Field(unsigned w);

  /// Shared immutable instance for the given word size.
  /// Throws std::invalid_argument if `w` is unsupported.
  static const Field& of(unsigned w);

  unsigned w() const noexcept { return w_; }
  /// Number of field elements, 2^w.
  std::uint32_t order() const noexcept { return order_; }
  /// Largest element value, 2^w - 1 (also the multiplicative group order).
  std::uint32_t max_elem() const noexcept { return order_ - 1; }
  /// The primitive polynomial used, including the leading x^w term.
  std::uint32_t primitive_poly() const noexcept { return poly_; }

  /// Field addition (== subtraction): bitwise XOR.
  static elem_t add(elem_t a, elem_t b) noexcept {
    return static_cast<elem_t>(a ^ b);
  }

  /// Field multiplication via log/exp tables.
  elem_t mul(elem_t a, elem_t b) const noexcept {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  /// Field division. Throws std::domain_error if b == 0.
  elem_t div(elem_t a, elem_t b) const;

  /// Multiplicative inverse. Throws std::domain_error if a == 0.
  elem_t inv(elem_t a) const;

  /// a raised to the (ordinary integer) power e.
  elem_t pow(elem_t a, std::uint32_t e) const noexcept;

  /// alpha^e where alpha is the primitive element (generator).
  elem_t exp(std::uint32_t e) const noexcept {
    return exp_[e % max_elem()];
  }

  /// Discrete log base alpha. Precondition: a != 0 (throws std::domain_error).
  std::uint32_t log(elem_t a) const;

  /// dst[i] = c * src[i] for every element of the region.
  /// For w=8 elements are bytes; for w=16, little-endian byte pairs
  /// (src.size() must be even); for w=4, each byte holds two independent
  /// nibble elements. src and dst must be the same size (else
  /// std::invalid_argument) and must not partially overlap.
  void region_mul(elem_t c, std::span<const std::uint8_t> src,
                  std::span<std::uint8_t> dst) const;

  /// dst[i] ^= c * src[i]: the multiply-accumulate at the heart of
  /// table-based erasure encoding.
  void region_mul_xor(elem_t c, std::span<const std::uint8_t> src,
                      std::span<std::uint8_t> dst) const;

  /// Split 4-bit tables for multiplying by constant c (w == 8 only;
  /// throws std::logic_error otherwise).
  SplitTables8 split_tables(std::uint8_t c) const;

 private:
  unsigned w_;
  std::uint32_t order_;
  std::uint32_t poly_;
  // exp_ is doubled in length so mul() can skip the modulo.
  std::vector<elem_t> exp_;
  std::vector<std::uint32_t> log_;
};

/// Multiplies two elements without tables (carry-less multiply + reduction).
/// Slow; used by tests to validate the table-based path.
elem_t mul_slow(unsigned w, elem_t a, elem_t b);

}  // namespace tvmec::gf
