#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gf/gf_matrix.h"

/// Binary ("bitmatrix") representation of GF(2^w) matrices, following
/// Bloemer et al. and Plank: every GF(2^w) element becomes a w x w binary
/// block, turning field arithmetic into XOR/AND over GF(2). This is the
/// representation the paper's Listing 2 kernel (and all bitmatrix erasure
/// coding) operates on.
namespace tvmec::gf {

/// A dense binary matrix, packed row-major into 64-bit words.
class BitMatrix {
 public:
  /// Zero matrix. Zero dimensions are legal (the bitmatrix of an r == 0
  /// code's parity block has no rows) and store no words.
  BitMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  /// Number of 64-bit words used to store one row.
  std::size_t words_per_row() const noexcept { return words_per_row_; }

  bool get(std::size_t r, std::size_t c) const {
    check_index(r, c);
    return (words_[r * words_per_row_ + c / 64] >> (c % 64)) & 1u;
  }
  void set(std::size_t r, std::size_t c, bool v) {
    check_index(r, c);
    std::uint64_t& word = words_[r * words_per_row_ + c / 64];
    const std::uint64_t mask = std::uint64_t{1} << (c % 64);
    word = v ? (word | mask) : (word & ~mask);
  }

  /// Total number of set bits — the XOR cost measure that "low-density"
  /// generator-matrix searches minimize.
  std::size_t ones() const noexcept;

  /// Number of set bits in one row.
  std::size_t row_ones(std::size_t r) const;

  /// Packed words of row r.
  std::span<const std::uint64_t> row_words(std::size_t r) const;

  bool operator==(const BitMatrix& other) const noexcept;

  static BitMatrix identity(std::size_t n);

  /// Expands a GF(2^w) matrix into its (rows*w) x (cols*w) binary form.
  /// Element e at block (i, j) becomes the w x w matrix whose column c
  /// holds the bits of e * alpha^c (Jerasure's matrix_to_bitmatrix).
  static BitMatrix from_gf_matrix(const Matrix& m);

  /// The w x w binary block for a single field element.
  static BitMatrix element_block(const Field& field, elem_t e);

  /// Binary matrix product over GF(2).
  BitMatrix mul(const BitMatrix& rhs) const;

  /// Binary matrix-vector product y = M x over GF(2).
  std::vector<std::uint8_t> mul_vec(std::span<const std::uint8_t> x) const;

  /// Gauss-Jordan inverse over GF(2); nullopt if singular.
  std::optional<BitMatrix> inverted() const;

  /// New matrix made of the given rows (in the given order).
  BitMatrix select_rows(std::span<const std::size_t> row_ids) const;

 private:
  void check_index(std::size_t r, std::size_t c) const;
  void xor_row_into(std::size_t src, std::size_t dst);

  std::size_t rows_;
  std::size_t cols_;
  std::size_t words_per_row_;
  std::vector<std::uint64_t> words_;
};

/// Number of ones in the bitmatrix expansion of row `row` of a GF(2^w)
/// matrix, without materializing the whole expansion. Used by generator-
/// matrix constructions that minimize XOR cost.
std::size_t row_bitmatrix_ones(const Matrix& m, std::size_t row);

}  // namespace tvmec::gf
