#include "gf/gf.h"

#include <cassert>
#include <mutex>
#include <stdexcept>
#include <string>

namespace tvmec::gf {

namespace {

/// Primitive polynomials (with the leading term) for each supported w.
/// These match the polynomials used by Jerasure and ISA-L so that encoded
/// bytes are interoperable with those libraries' defaults.
std::uint32_t primitive_poly_for(unsigned w) {
  switch (w) {
    case 4:
      return 0x13;  // x^4 + x + 1
    case 8:
      return 0x11D;  // x^8 + x^4 + x^3 + x^2 + 1
    case 16:
      return 0x1100B;  // x^16 + x^12 + x^3 + x + 1
    default:
      throw std::invalid_argument("GF(2^w): unsupported w=" +
                                  std::to_string(w));
  }
}

}  // namespace

Field::Field(unsigned w)
    : w_(w),
      order_(is_supported_w(w) ? (1u << w) : 0),
      poly_(primitive_poly_for(w)) {
  const std::uint32_t group = order_ - 1;
  exp_.assign(2 * group, 0);
  log_.assign(order_, 0);
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < group; ++i) {
    exp_[i] = static_cast<elem_t>(x);
    exp_[i + group] = static_cast<elem_t>(x);
    log_[x] = i;
    x <<= 1;
    if (x & order_) x ^= poly_;
  }
  // The generator must cycle through every nonzero element exactly once.
  assert(x == 1 && "polynomial is not primitive");
}

const Field& Field::of(unsigned w) {
  static const Field f4(4);
  static const Field f8(8);
  static const Field f16(16);
  switch (w) {
    case 4:
      return f4;
    case 8:
      return f8;
    case 16:
      return f16;
    default:
      throw std::invalid_argument("GF(2^w): unsupported w=" +
                                  std::to_string(w));
  }
}

elem_t Field::div(elem_t a, elem_t b) const {
  if (b == 0) throw std::domain_error("GF division by zero");
  if (a == 0) return 0;
  return exp_[log_[a] + max_elem() - log_[b]];
}

elem_t Field::inv(elem_t a) const {
  if (a == 0) throw std::domain_error("GF inverse of zero");
  return exp_[max_elem() - log_[a]];
}

elem_t Field::pow(elem_t a, std::uint32_t e) const noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const std::uint64_t le = (static_cast<std::uint64_t>(log_[a]) * e) % max_elem();
  return exp_[le];
}

std::uint32_t Field::log(elem_t a) const {
  if (a == 0) throw std::domain_error("GF log of zero");
  return log_[a];
}

void Field::region_mul(elem_t c, std::span<const std::uint8_t> src,
                       std::span<std::uint8_t> dst) const {
  if (src.size() != dst.size())
    throw std::invalid_argument("region_mul: size mismatch");
  switch (w_) {
    case 8: {
      // Full 256-entry table amortizes over the region.
      std::array<std::uint8_t, 256> table;
      for (std::uint32_t b = 0; b < 256; ++b)
        table[b] = static_cast<std::uint8_t>(mul(c, static_cast<elem_t>(b)));
      for (std::size_t i = 0; i < src.size(); ++i) dst[i] = table[src[i]];
      break;
    }
    case 4: {
      std::array<std::uint8_t, 16> table;
      for (std::uint32_t b = 0; b < 16; ++b)
        table[b] = static_cast<std::uint8_t>(mul(c, static_cast<elem_t>(b)));
      for (std::size_t i = 0; i < src.size(); ++i)
        dst[i] = static_cast<std::uint8_t>(table[src[i] & 0x0F] |
                                           (table[src[i] >> 4] << 4));
      break;
    }
    case 16: {
      if (src.size() % 2 != 0)
        throw std::invalid_argument("region_mul: w=16 needs even size");
      for (std::size_t i = 0; i < src.size(); i += 2) {
        const elem_t v =
            static_cast<elem_t>(src[i] | (static_cast<elem_t>(src[i + 1]) << 8));
        const elem_t p = mul(c, v);
        dst[i] = static_cast<std::uint8_t>(p & 0xFF);
        dst[i + 1] = static_cast<std::uint8_t>(p >> 8);
      }
      break;
    }
    default:
      assert(false);
  }
}

void Field::region_mul_xor(elem_t c, std::span<const std::uint8_t> src,
                           std::span<std::uint8_t> dst) const {
  if (src.size() != dst.size())
    throw std::invalid_argument("region_mul_xor: size mismatch");
  switch (w_) {
    case 8: {
      std::array<std::uint8_t, 256> table;
      for (std::uint32_t b = 0; b < 256; ++b)
        table[b] = static_cast<std::uint8_t>(mul(c, static_cast<elem_t>(b)));
      for (std::size_t i = 0; i < src.size(); ++i) dst[i] ^= table[src[i]];
      break;
    }
    case 4: {
      std::array<std::uint8_t, 16> table;
      for (std::uint32_t b = 0; b < 16; ++b)
        table[b] = static_cast<std::uint8_t>(mul(c, static_cast<elem_t>(b)));
      for (std::size_t i = 0; i < src.size(); ++i)
        dst[i] ^= static_cast<std::uint8_t>(table[src[i] & 0x0F] |
                                            (table[src[i] >> 4] << 4));
      break;
    }
    case 16: {
      if (src.size() % 2 != 0)
        throw std::invalid_argument("region_mul_xor: w=16 needs even size");
      for (std::size_t i = 0; i < src.size(); i += 2) {
        const elem_t v =
            static_cast<elem_t>(src[i] | (static_cast<elem_t>(src[i + 1]) << 8));
        const elem_t p = mul(c, v);
        dst[i] ^= static_cast<std::uint8_t>(p & 0xFF);
        dst[i + 1] ^= static_cast<std::uint8_t>(p >> 8);
      }
      break;
    }
    default:
      assert(false);
  }
}

SplitTables8 Field::split_tables(std::uint8_t c) const {
  if (w_ != 8)
    throw std::logic_error("split_tables is only defined for GF(2^8)");
  SplitTables8 t;
  for (std::uint32_t x = 0; x < 16; ++x) {
    t.lo[x] = static_cast<std::uint8_t>(mul(c, static_cast<elem_t>(x)));
    t.hi[x] = static_cast<std::uint8_t>(mul(c, static_cast<elem_t>(x << 4)));
  }
  return t;
}

elem_t mul_slow(unsigned w, elem_t a, elem_t b) {
  if (!is_supported_w(w)) throw std::invalid_argument("mul_slow: bad w");
  const std::uint32_t poly = primitive_poly_for(w);
  const std::uint32_t high_bit = 1u << w;
  std::uint32_t product = 0;
  std::uint32_t aa = a;
  std::uint32_t bb = b;
  while (bb != 0) {
    if (bb & 1) product ^= aa;
    bb >>= 1;
    aa <<= 1;
    if (aa & high_bit) aa ^= poly;
  }
  return static_cast<elem_t>(product);
}

}  // namespace tvmec::gf
