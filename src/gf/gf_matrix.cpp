#include "gf/gf_matrix.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <string>

#include "gf/bitmatrix.h"

namespace tvmec::gf {

Matrix::Matrix(const Field& field, std::size_t rows, std::size_t cols)
    : field_(&field), rows_(rows), cols_(cols), data_(rows * cols, 0) {}

void Matrix::check_index(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_)
    throw std::out_of_range("Matrix index (" + std::to_string(r) + "," +
                            std::to_string(c) + ") out of range");
}

std::span<const elem_t> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row out of range");
  return {data_.data() + r * cols_, cols_};
}

bool Matrix::operator==(const Matrix& other) const noexcept {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         field_->w() == other.field_->w() && data_ == other.data_;
}

Matrix Matrix::identity(const Field& field, std::size_t n) {
  Matrix m(field, n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, 1);
  return m;
}

Matrix Matrix::vandermonde(const Field& field, std::size_t rows,
                           std::size_t cols) {
  if (rows > field.order())
    throw std::invalid_argument("vandermonde: too many rows for field");
  Matrix m(field, rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m.set(i, j, field.pow(static_cast<elem_t>(i),
                            static_cast<std::uint32_t>(j)));
    }
  }
  return m;
}

Matrix Matrix::cauchy(const Field& field, std::size_t r, std::size_t k) {
  if (r + k > field.order())
    throw std::invalid_argument("cauchy: r + k exceeds field order");
  Matrix m(field, r, k);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const elem_t x = static_cast<elem_t>(i);
      const elem_t y = static_cast<elem_t>(r + j);
      m.set(i, j, field.inv(Field::add(x, y)));
    }
  }
  return m;
}

namespace {

/// Scale each row by the inverse of the element whose choice minimizes
/// the row's total bitmatrix weight. Scanning the row's own elements as
/// scale candidates keeps this O(r * k^2) while catching the big wins.
/// Row scaling by a nonzero constant preserves the MDS property.
void scale_rows_for_density(Matrix& m) {
  const Field& field = m.field();
  const std::size_t r = m.rows();
  const std::size_t k = m.cols();
  for (std::size_t i = 0; i < r; ++i) {
    elem_t best_scale = 1;
    std::size_t best_ones = row_bitmatrix_ones(m, i);
    for (std::size_t j = 0; j < k; ++j) {
      const elem_t candidate = field.inv(m.at(i, j));
      Matrix trial = m;
      for (std::size_t c = 0; c < k; ++c)
        trial.set(i, c, field.mul(candidate, m.at(i, c)));
      const std::size_t ones = row_bitmatrix_ones(trial, i);
      if (ones < best_ones) {
        best_ones = ones;
        best_scale = candidate;
      }
    }
    if (best_scale != 1) {
      for (std::size_t c = 0; c < k; ++c)
        m.set(i, c, field.mul(best_scale, m.at(i, c)));
    }
  }
}

/// Cauchy matrix from explicit distinct point sets xs (rows) and ys
/// (columns); xs and ys must be disjoint.
Matrix cauchy_from_points(const Field& field, std::span<const elem_t> xs,
                          std::span<const elem_t> ys) {
  Matrix m(field, xs.size(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    for (std::size_t j = 0; j < ys.size(); ++j)
      m.set(i, j, field.inv(Field::add(xs[i], ys[j])));
  return m;
}

}  // namespace

Matrix Matrix::cauchy_good(const Field& field, std::size_t r, std::size_t k) {
  Matrix m = cauchy(field, r, k);
  scale_rows_for_density(m);
  return m;
}

Matrix Matrix::cauchy_best(const Field& field, std::size_t r, std::size_t k,
                           std::size_t trials, std::uint64_t seed) {
  if (r + k > field.order())
    throw std::invalid_argument("cauchy_best: r + k exceeds field order");
  if (trials == 0) throw std::invalid_argument("cauchy_best: zero trials");

  std::vector<elem_t> points(field.order());
  for (std::uint32_t v = 0; v < field.order(); ++v)
    points[v] = static_cast<elem_t>(v);

  std::mt19937_64 rng(seed);
  std::optional<Matrix> best;
  std::size_t best_ones = 0;
  // Trial 0 is the canonical point set, so the search never does worse
  // than cauchy_good.
  for (std::size_t trial = 0; trial < trials; ++trial) {
    if (trial > 0) std::shuffle(points.begin(), points.end(), rng);
    Matrix m = cauchy_from_points(
        field, std::span<const elem_t>(points).subspan(0, r),
        std::span<const elem_t>(points).subspan(r, k));
    scale_rows_for_density(m);
    std::size_t ones = 0;
    for (std::size_t i = 0; i < r; ++i) ones += row_bitmatrix_ones(m, i);
    if (!best || ones < best_ones) {
      best = std::move(m);
      best_ones = ones;
    }
  }
  return *best;
}

Matrix Matrix::mul(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix::mul: shape mismatch");
  Matrix out(*field_, rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t l = 0; l < cols_; ++l) {
      const elem_t a = data_[i * cols_ + l];
      if (a == 0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        const elem_t prod = field_->mul(a, rhs.data_[l * rhs.cols_ + j]);
        out.data_[i * rhs.cols_ + j] =
            Field::add(out.data_[i * rhs.cols_ + j], prod);
      }
    }
  }
  return out;
}

std::vector<elem_t> Matrix::mul_vec(std::span<const elem_t> x) const {
  if (x.size() != cols_)
    throw std::invalid_argument("Matrix::mul_vec: size mismatch");
  std::vector<elem_t> y(rows_, 0);
  for (std::size_t i = 0; i < rows_; ++i) {
    elem_t acc = 0;
    for (std::size_t j = 0; j < cols_; ++j)
      acc = Field::add(acc, field_->mul(data_[i * cols_ + j], x[j]));
    y[i] = acc;
  }
  return y;
}

std::optional<Matrix> Matrix::inverted() const {
  if (rows_ != cols_)
    throw std::invalid_argument("Matrix::inverted: not square");
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = identity(*field_, n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && a.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a.data_[col * n + j], a.data_[pivot * n + j]);
        std::swap(inv.data_[col * n + j], inv.data_[pivot * n + j]);
      }
    }
    // Normalize the pivot row.
    const elem_t scale = field_->inv(a.at(col, col));
    for (std::size_t j = 0; j < n; ++j) {
      a.data_[col * n + j] = field_->mul(scale, a.data_[col * n + j]);
      inv.data_[col * n + j] = field_->mul(scale, inv.data_[col * n + j]);
    }
    // Eliminate the column everywhere else.
    for (std::size_t i = 0; i < n; ++i) {
      if (i == col) continue;
      const elem_t factor = a.at(i, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a.data_[i * n + j] = Field::add(
            a.data_[i * n + j], field_->mul(factor, a.data_[col * n + j]));
        inv.data_[i * n + j] = Field::add(
            inv.data_[i * n + j], field_->mul(factor, inv.data_[col * n + j]));
      }
    }
  }
  return inv;
}

Matrix Matrix::select_rows(std::span<const std::size_t> row_ids) const {
  Matrix out(*field_, row_ids.size(), cols_);
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    if (row_ids[i] >= rows_)
      throw std::out_of_range("select_rows: row id out of range");
    for (std::size_t j = 0; j < cols_; ++j)
      out.set(i, j, at(row_ids[i], j));
  }
  return out;
}

Matrix Matrix::vstack(const Matrix& below) const {
  if (cols_ != below.cols_)
    throw std::invalid_argument("vstack: column mismatch");
  Matrix out(*field_, rows_ + below.rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.set(i, j, at(i, j));
  for (std::size_t i = 0; i < below.rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      out.set(rows_ + i, j, below.at(i, j));
  return out;
}

Matrix rs_generator_vandermonde(const Field& field, std::size_t k,
                                std::size_t r) {
  if (k + r > field.order())
    throw std::invalid_argument("rs_generator_vandermonde: k + r too large");
  const Matrix v = Matrix::vandermonde(field, k + r, k);
  std::vector<std::size_t> top_ids(k);
  for (std::size_t i = 0; i < k; ++i) top_ids[i] = i;
  const Matrix top = v.select_rows(top_ids);
  const auto top_inv = top.inverted();
  if (!top_inv)
    throw std::logic_error("Vandermonde top block must be invertible");
  // Right-multiplying every row by the same invertible matrix preserves
  // the invertibility of any k-row subset, so the result stays MDS.
  return v.mul(*top_inv);
}

Matrix rs_generator_cauchy(const Field& field, std::size_t k, std::size_t r,
                           bool minimize_ones) {
  const Matrix c = minimize_ones ? Matrix::cauchy_good(field, r, k)
                                 : Matrix::cauchy(field, r, k);
  return Matrix::identity(field, k).vstack(c);
}

}  // namespace tvmec::gf
