#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "gf/gf.h"

/// Dense matrices over GF(2^w) and the generator-matrix constructions used
/// by Reed-Solomon erasure codes (Vandermonde and Cauchy families).
namespace tvmec::gf {

/// A dense row-major matrix with entries in a fixed GF(2^w).
///
/// The matrix holds a pointer to its field; fields obtained via `Field::of`
/// live for the program duration, so copies are cheap and safe.
class Matrix {
 public:
  /// Zero matrix of the given shape. Zero-dimension matrices are legal
  /// (an r == 0 code has an empty parity block) and hold no elements.
  Matrix(const Field& field, std::size_t rows, std::size_t cols);

  const Field& field() const noexcept { return *field_; }
  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  elem_t at(std::size_t r, std::size_t c) const {
    check_index(r, c);
    return data_[r * cols_ + c];
  }
  void set(std::size_t r, std::size_t c, elem_t v) {
    check_index(r, c);
    data_[r * cols_ + c] = v;
  }

  /// Row r as a contiguous span.
  std::span<const elem_t> row(std::size_t r) const;

  bool operator==(const Matrix& other) const noexcept;

  /// n x n identity.
  static Matrix identity(const Field& field, std::size_t n);

  /// rows x cols Vandermonde matrix: entry (i, j) = i^j in the field
  /// (with 0^0 == 1). Requires rows <= field order so evaluation points
  /// stay distinct; throws std::invalid_argument otherwise.
  static Matrix vandermonde(const Field& field, std::size_t rows,
                            std::size_t cols);

  /// r x k Cauchy matrix with entry (i, j) = 1 / (x_i + y_j) where
  /// x_i = i and y_j = r + j. Requires r + k <= field order.
  static Matrix cauchy(const Field& field, std::size_t r, std::size_t k);

  /// Cauchy matrix post-processed to reduce the number of ones in its
  /// bitmatrix expansion (Jerasure's "good" Cauchy idea): each row is
  /// scaled by the inverse of whichever of its elements minimizes the
  /// row's bitmatrix weight. Row scaling preserves the MDS property.
  static Matrix cauchy_good(const Field& field, std::size_t r, std::size_t k);

  /// Low-density Cauchy search (the §2.1 "generator matrices ... with as
  /// few ones in the matrix as possible" optimization, Jerasure's
  /// cauchy_best): samples `trials` random Cauchy point sets, applies the
  /// cauchy_good row scaling to each, and returns the sparsest. Any
  /// Cauchy point set yields an MDS parity block, so density is the only
  /// thing the search changes. Deterministic for a given seed.
  static Matrix cauchy_best(const Field& field, std::size_t r, std::size_t k,
                            std::size_t trials = 32,
                            std::uint64_t seed = 0xEC);

  /// Matrix product. Throws std::invalid_argument on shape mismatch.
  Matrix mul(const Matrix& rhs) const;

  /// Matrix-vector product y = M x. x.size() must equal cols().
  std::vector<elem_t> mul_vec(std::span<const elem_t> x) const;

  /// Gauss-Jordan inverse; nullopt if singular. Requires square.
  std::optional<Matrix> inverted() const;

  /// New matrix made of the given rows (in the given order); an empty
  /// selection yields a zero-row matrix.
  Matrix select_rows(std::span<const std::size_t> row_ids) const;

  /// Vertical concatenation [this; below]. Column counts must match.
  Matrix vstack(const Matrix& below) const;

 private:
  void check_index(std::size_t r, std::size_t c) const;

  const Field* field_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<elem_t> data_;
};

/// Builds the (k+r) x k *systematic* generator matrix of a Vandermonde
/// Reed-Solomon code: the top k x k block is the identity and the bottom
/// r x k block holds the parity coefficients. Constructed as V * inv(V_top),
/// which preserves the MDS property of the underlying evaluation code.
/// Requires k + r <= field order (throws std::invalid_argument).
Matrix rs_generator_vandermonde(const Field& field, std::size_t k,
                                std::size_t r);

/// Builds the (k+r) x k systematic generator matrix of a Cauchy
/// Reed-Solomon code: identity on top, (good) Cauchy matrix below.
Matrix rs_generator_cauchy(const Field& field, std::size_t k, std::size_t r,
                           bool minimize_ones = true);

}  // namespace tvmec::gf
