#include "gf/bitmatrix.h"

#include <bit>
#include <stdexcept>

namespace tvmec::gf {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + 63) / 64),
      words_(rows * words_per_row_, 0) {}

void BitMatrix::check_index(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_)
    throw std::out_of_range("BitMatrix index out of range");
}

std::size_t BitMatrix::ones() const noexcept {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

std::size_t BitMatrix::row_ones(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("BitMatrix::row_ones");
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_per_row_; ++i)
    total += std::popcount(words_[r * words_per_row_ + i]);
  return total;
}

std::span<const std::uint64_t> BitMatrix::row_words(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("BitMatrix::row_words");
  return {words_.data() + r * words_per_row_, words_per_row_};
}

bool BitMatrix::operator==(const BitMatrix& other) const noexcept {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         words_ == other.words_;
}

BitMatrix BitMatrix::identity(std::size_t n) {
  BitMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

BitMatrix BitMatrix::element_block(const Field& field, elem_t e) {
  const unsigned w = field.w();
  BitMatrix block(w, w);
  elem_t x = e;
  for (unsigned c = 0; c < w; ++c) {
    for (unsigned r = 0; r < w; ++r) block.set(r, c, (x >> r) & 1u);
    x = field.mul(x, 2);  // next column represents e * alpha^(c+1)
  }
  return block;
}

BitMatrix BitMatrix::from_gf_matrix(const Matrix& m) {
  const unsigned w = m.field().w();
  BitMatrix out(m.rows() * w, m.cols() * w);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const elem_t e = m.at(i, j);
      if (e == 0) continue;
      const BitMatrix block = element_block(m.field(), e);
      for (unsigned r = 0; r < w; ++r)
        for (unsigned c = 0; c < w; ++c)
          if (block.get(r, c)) out.set(i * w + r, j * w + c, true);
    }
  }
  return out;
}

BitMatrix BitMatrix::mul(const BitMatrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("BitMatrix::mul: shape mismatch");
  BitMatrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t l = 0; l < cols_; ++l) {
      if (!get(i, l)) continue;
      // XOR row l of rhs into row i of out.
      for (std::size_t wi = 0; wi < rhs.words_per_row_; ++wi)
        out.words_[i * out.words_per_row_ + wi] ^=
            rhs.words_[l * rhs.words_per_row_ + wi];
    }
  }
  return out;
}

std::vector<std::uint8_t> BitMatrix::mul_vec(
    std::span<const std::uint8_t> x) const {
  if (x.size() != cols_)
    throw std::invalid_argument("BitMatrix::mul_vec: size mismatch");
  std::vector<std::uint8_t> y(rows_, 0);
  for (std::size_t i = 0; i < rows_; ++i) {
    std::uint8_t acc = 0;
    for (std::size_t j = 0; j < cols_; ++j)
      acc ^= static_cast<std::uint8_t>(get(i, j) & (x[j] & 1u));
    y[i] = acc;
  }
  return y;
}

void BitMatrix::xor_row_into(std::size_t src, std::size_t dst) {
  for (std::size_t wi = 0; wi < words_per_row_; ++wi)
    words_[dst * words_per_row_ + wi] ^= words_[src * words_per_row_ + wi];
}

std::optional<BitMatrix> BitMatrix::inverted() const {
  if (rows_ != cols_)
    throw std::invalid_argument("BitMatrix::inverted: not square");
  const std::size_t n = rows_;
  BitMatrix a = *this;
  BitMatrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && !a.get(pivot, col)) ++pivot;
    if (pivot == n) return std::nullopt;
    if (pivot != col) {
      for (std::size_t wi = 0; wi < a.words_per_row_; ++wi)
        std::swap(a.words_[col * a.words_per_row_ + wi],
                  a.words_[pivot * a.words_per_row_ + wi]);
      for (std::size_t wi = 0; wi < inv.words_per_row_; ++wi)
        std::swap(inv.words_[col * inv.words_per_row_ + wi],
                  inv.words_[pivot * inv.words_per_row_ + wi]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (i == col || !a.get(i, col)) continue;
      a.xor_row_into(col, i);
      inv.xor_row_into(col, i);
    }
  }
  return inv;
}

BitMatrix BitMatrix::select_rows(std::span<const std::size_t> row_ids) const {
  if (row_ids.empty())
    throw std::invalid_argument("BitMatrix::select_rows: empty selection");
  BitMatrix out(row_ids.size(), cols_);
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    if (row_ids[i] >= rows_)
      throw std::out_of_range("BitMatrix::select_rows: row id out of range");
    for (std::size_t wi = 0; wi < words_per_row_; ++wi)
      out.words_[i * out.words_per_row_ + wi] =
          words_[row_ids[i] * words_per_row_ + wi];
  }
  return out;
}

std::size_t row_bitmatrix_ones(const Matrix& m, std::size_t row) {
  std::size_t total = 0;
  for (std::size_t j = 0; j < m.cols(); ++j) {
    const elem_t e = m.at(row, j);
    if (e == 0) continue;
    total += BitMatrix::element_block(m.field(), e).ones();
  }
  return total;
}

}  // namespace tvmec::gf
