#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "serve/request.h"

/// Per-backend circuit breaker: the service's defense against a codec
/// whose primary (GEMM) path starts failing persistently — a mis-tuned
/// schedule, a kernel regression, a poisoned plan cache.
///
/// Classic three-state machine:
///
///   Closed ──(failure_threshold consecutive failures)──▶ Open
///   Open ──(cooldown elapsed)──▶ HalfOpen (one probe in flight)
///   HalfOpen ──(success_threshold probe successes)──▶ Closed
///   HalfOpen ──(probe failure)──▶ Open (cooldown restarts)
///
/// While the breaker is not Closed, non-probe requests are told to
/// Degrade: the service runs them on the naive reference backend —
/// byte-identical output (same bitpacket embedding family), only
/// slower — so callers see latency, never corruption. At most one probe
/// is in flight at a time; everything else degrades until the probe
/// verdict lands.
namespace tvmec::serve {

struct BreakerPolicy {
  /// Master switch; disabled means allow_primary() always says Primary
  /// and record() is a no-op (zero overhead, zero state).
  bool enabled = true;
  /// Consecutive primary-path batch failures that trip Closed -> Open.
  std::size_t failure_threshold = 3;
  /// Consecutive probe successes that close a HalfOpen breaker.
  std::size_t success_threshold = 2;
  /// Open -> HalfOpen delay: how long to degrade before probing again.
  std::chrono::nanoseconds cooldown = std::chrono::milliseconds(100);
};

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

const char* to_string(BreakerState s) noexcept;

/// What the breaker tells the dispatcher to do with the next batch.
enum class BreakerDecision : std::uint8_t {
  Primary,  ///< breaker closed: run the fast path
  Probe,    ///< half-open: run the fast path, verdict decides recovery
  Degrade,  ///< open (or probe already in flight): run the naive path
};

/// Thread-safe; one instance per (codec, direction) in the service.
class CircuitBreaker {
 public:
  struct Counters {
    std::uint64_t trips = 0;       ///< transitions into Open
    std::uint64_t recoveries = 0;  ///< HalfOpen -> Closed transitions
    std::uint64_t probes = 0;      ///< probe batches dispatched
  };

  explicit CircuitBreaker(const BreakerPolicy& policy) : policy_(policy) {}

  /// Decides the path for a batch about to execute. May transition
  /// Open -> HalfOpen (cooldown elapsed) as a side effect; a Probe
  /// decision reserves the single probe slot until record()/abandon().
  BreakerDecision allow_primary(Clock::time_point now);

  /// Reports the batch outcome for the path `decision` selected.
  /// Degrade outcomes carry no signal about the primary path and are
  /// ignored. A cancelled/aborted primary batch is not a backend verdict
  /// either — call abandon() for those.
  void record(BreakerDecision decision, bool success, Clock::time_point now);

  /// Releases a Probe reservation without a verdict (batch cancelled or
  /// aborted before the backend could prove anything).
  void abandon(BreakerDecision decision);

  BreakerState state() const;
  Counters counters() const;

 private:
  const BreakerPolicy policy_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::Closed;
  std::size_t consecutive_failures_ = 0;
  std::size_t half_open_successes_ = 0;
  bool probe_inflight_ = false;
  Clock::time_point opened_at_{};
  Counters counters_;
};

}  // namespace tvmec::serve
