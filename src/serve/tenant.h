#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/request.h"

/// Tenant QoS for the sharded front: weighted fair shares, per-tenant
/// deadline budgets, and per-tenant counters whose identities mirror
/// the service-wide ones.
///
/// The model is max-min-flavored but deliberately simple: each tenant
/// owns a *share* of the front's total queue capacity proportional to
/// its weight (with a small floor so a zero-traffic tenant can always
/// get a foot in the door), and admission rejects a tenant whose
/// in-queue occupancy already fills its share. Because shares are
/// computed against total capacity — not against current load — an
/// underloaded front admits everyone (shares only bind once the sum of
/// demands exceeds capacity), which is the behavior operators expect
/// from "weighted fair": isolation under contention, no throttling
/// without it.
namespace tvmec::serve {

struct TenantPolicy {
  /// Relative share of the front's queue capacity. Must be > 0.
  double weight = 1.0;
  /// Per-tenant deadline cap: when nonzero, every admitted request's
  /// deadline is clamped to now + budget (a request with a looser — or
  /// absent — deadline gets this one; a tighter one is kept). Layered
  /// on the shards' deadline shedding, this turns one tenant's
  /// patience into bounded queue occupancy instead of unbounded
  /// buffering.
  std::chrono::nanoseconds deadline_budget{0};
  /// Occupancy floor: a tenant may always have at least this many
  /// requests queued regardless of how small its weighted share gets.
  std::size_t min_share = 1;
};

/// Per-tenant mirror of ServeStatsSnapshot's counter identities:
///   submitted == accepted + rejected_overload + rejected_shed
///                + rejected_shutdown
/// and, once drained,
///   accepted == completed_ok + expired + failed + cancelled
///               + shutdown_drained   (and in_queue == 0).
struct TenantCounters {
  TenantId tenant = 0;
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_shed = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t shutdown_drained = 0;
  /// Admission gauge: +1 Accepted, -1 Completed (admitted). This is the
  /// occupancy weighted-fair admission compares against the share.
  /// Signed and order-tolerant: a shard worker can pop and complete a
  /// request before the submitting thread's Accepted event is observed,
  /// so the gauge may transiently read -1 for that request; the late
  /// Accepted restores it, and a drained front always reads 0.
  std::int64_t in_queue = 0;

  std::uint64_t rejected() const noexcept {
    return rejected_overload + rejected_shed + rejected_shutdown;
  }
  std::uint64_t terminal() const noexcept {
    return completed_ok + expired + failed + cancelled + shutdown_drained;
  }
  /// submitted == accepted + rejected_* (holds at every instant).
  bool admission_balanced() const noexcept {
    return submitted == accepted + rejected();
  }
  /// accepted == terminal buckets and nothing in flight (holds once the
  /// front is drained).
  bool drained_balanced() const noexcept {
    return accepted == terminal() && in_queue == 0;
  }

  TenantCounters& operator+=(const TenantCounters& o) noexcept;
};

/// Thread-safe registry: policies, per-tenant counters, and the
/// weighted-fair admission decision. Tenants materialize lazily (first
/// policy write or first request) with the default policy.
///
/// Counting protocol (the front + shard observers drive it):
///  - RequestEvent::Submitted   -> submitted++
///  - RequestEvent::Accepted    -> accepted++, in_queue++
///  - RequestEvent::Completed   -> terminal bucket++; in_queue-- when
///                                 admitted (rejections never occupied)
/// The front's own QoS rejections synthesize the Submitted + Completed
/// pair via observe(), so per-tenant identities hold whether a request
/// died at the front, at a shard's admission, or after execution.
class TenantRegistry {
 public:
  /// `capacity` is the front's total queue capacity (sum over shards) —
  /// the denominator shares are carved from. `enforce` = false turns
  /// the registry into pure accounting: admit() never rejects and never
  /// clamps deadlines (the qos_enforcement=false mode of the front).
  explicit TenantRegistry(std::size_t capacity, bool enforce = true);

  /// Throws std::invalid_argument on weight <= 0 or NaN.
  void set_policy(TenantId tenant, const TenantPolicy& policy);
  TenantPolicy policy(TenantId tenant) const;

  /// The tenant's current occupancy allowance:
  ///   max(min_share, floor(capacity * weight / total_weight))
  /// where total_weight sums over every known tenant. More tenants =>
  /// thinner slices; one tenant owns the whole capacity.
  std::size_t share(TenantId tenant) const;

  /// Weighted-fair admission check. Returns std::nullopt to admit —
  /// clamping *deadline to now + deadline_budget when the tenant has a
  /// budget tighter than the request — or RequestStatus::Overloaded
  /// when the tenant's in-queue occupancy already fills its share.
  /// Does NOT count anything; callers report the outcome via observe().
  std::optional<RequestStatus> admit(TenantId tenant, Clock::time_point now,
                                     Clock::time_point* deadline);

  /// Feed one lifecycle event (see the counting protocol above).
  void observe(const RequestEvent& event);

  /// Snapshot of one tenant (zeroes for a never-seen tenant).
  TenantCounters counters(TenantId tenant) const;
  /// All known tenants, ascending by id.
  std::vector<TenantCounters> all() const;
  /// Sum over all tenants — by construction equals the front-wide
  /// counters, which is the cross-check the fuzzer asserts.
  TenantCounters aggregate() const;

  std::size_t capacity() const noexcept { return capacity_; }
  bool enforcing() const noexcept { return enforce_; }

 private:
  struct Entry {
    TenantPolicy policy;
    TenantCounters counters;
  };

  Entry& entry_locked(TenantId tenant);
  std::size_t share_locked(const Entry& e) const;

  const std::size_t capacity_;
  const bool enforce_;
  mutable std::mutex mutex_;
  std::map<TenantId, Entry> tenants_;
  double total_weight_ = 0;  ///< sum of known tenants' weights
};

}  // namespace tvmec::serve
