#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

/// Latency accounting for the serving layer.
///
/// LatencyHistogram is a log-bucketed (HdrHistogram-style) counter array:
/// each power-of-two octave is split into kSubBuckets linear sub-buckets,
/// bounding the relative error of any reported quantile by
/// 1/kSubBuckets (12.5%) while keeping the whole structure a few KB of
/// plain counters — recording is one index computation and one
/// increment, cheap enough for every request on the hot path. The same
/// structure records any nonnegative integer distribution (batch widths,
/// GEMM thread counts), not just nanoseconds.
namespace tvmec::serve {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per power-of-two octave.
  static constexpr std::size_t kSubBuckets = 8;
  static constexpr std::size_t kSubBits = 3;  // log2(kSubBuckets)
  /// Index space: values below kSubBuckets map to themselves; a value
  /// with most-significant bit b maps into octave (b - kSubBits + 1).
  static constexpr std::size_t kNumBuckets = (64 - kSubBits + 1) * kSubBuckets;

  /// Bucket index of a value; monotone in `value`.
  static constexpr std::size_t bucket_index(std::uint64_t value) noexcept {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - static_cast<int>(kSubBits);
    return ((static_cast<std::size_t>(msb) - kSubBits + 1) << kSubBits) |
           static_cast<std::size_t>((value >> shift) & (kSubBuckets - 1));
  }

  /// Largest value mapping to bucket `index` (the reported quantile
  /// value, so reported percentiles never under-state the latency).
  static constexpr std::uint64_t bucket_upper_bound(
      std::size_t index) noexcept {
    if (index < 2 * kSubBuckets) return index;  // exact region
    const std::size_t octave = index >> kSubBits;
    const std::uint64_t sub = index & (kSubBuckets - 1);
    const int shift = static_cast<int>(octave) - 1;
    return ((kSubBuckets + sub + 1) << shift) - 1;
  }

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)] += 1;
    count_ += 1;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Value at percentile p in [0, 100]: the upper bound of the bucket
  /// holding the ceil(p/100 * count)-th smallest sample (clamped to the
  /// recorded max, so p=100 reports the true maximum). 0 when empty.
  std::uint64_t percentile(double p) const noexcept;

  void merge(const LatencyHistogram& other) noexcept;
  void reset() noexcept { *this = LatencyHistogram{}; }

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// Order-statistic percentile of a raw sample vector via nth_element
/// (partially reorders `samples`). Index convention: p=50 selects the
/// element at index size/2 — the upper-median rule the benchmark
/// binaries have always used, extracted here so every bench shares one
/// implementation. Returns 0 on an empty vector.
double sample_percentile(std::vector<double>& samples, double p) noexcept;

/// Convenience: the p=50 case (the benches' original median).
inline double sample_median(std::vector<double>& samples) noexcept {
  return sample_percentile(samples, 50.0);
}

}  // namespace tvmec::serve
