#include "serve/autotune.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "core/tvmec.h"
#include "tune/tuner.h"

namespace tvmec::serve {

// ---------------------------------------------------------------------------
// TrafficProfile

bool TrafficProfile::record(const CodecKey& key, std::size_t unit_size) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = counts_.try_emplace(Pair{key, unit_size}, 0);
  ++it->second;
  ++total_;
  return inserted;
}

std::vector<HotPair> TrafficProfile::top(std::size_t n,
                                         std::uint64_t min_requests) const {
  std::vector<HotPair> out;
  {
    std::lock_guard lock(mutex_);
    out.reserve(counts_.size());
    for (const auto& [pair, count] : counts_) {
      if (count < min_requests) continue;
      out.push_back(HotPair{pair.first, pair.second, count});
    }
  }
  // Map order is ascending (key, unit); a stable sort by count keeps
  // that as the deterministic tiebreak.
  std::stable_sort(out.begin(), out.end(),
                   [](const HotPair& a, const HotPair& b) {
                     return a.requests > b.requests;
                   });
  if (out.size() > n) out.resize(n);
  return out;
}

void TrafficProfile::decay() {
  std::lock_guard lock(mutex_);
  total_ = 0;
  for (auto it = counts_.begin(); it != counts_.end();) {
    it->second /= 2;
    if (it->second == 0) {
      it = counts_.erase(it);
    } else {
      total_ += it->second;
      ++it;
    }
  }
}

std::uint64_t TrafficProfile::total() const {
  std::lock_guard lock(mutex_);
  return total_;
}

std::size_t TrafficProfile::distinct_pairs() const {
  std::lock_guard lock(mutex_);
  return counts_.size();
}

// ---------------------------------------------------------------------------
// ScheduleCache

std::optional<ScheduleCache::Entry> ScheduleCache::lookup(
    const tune::TaskShape& shape) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(shape);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void ScheduleCache::install(const tune::TaskShape& shape,
                            const Entry& entry) {
  std::lock_guard lock(mutex_);
  entries_[shape] = entry;
  ++stats_.installs;
}

std::size_t ScheduleCache::load(const std::string& path,
                                tune::LoadLogStats* stats) {
  tune::LoadLogStats local;
  const std::vector<tune::LogRecord> records =
      tune::load_log_all(path, &local);
  if (stats != nullptr)
    stats->dropped_unavailable_variant += local.dropped_unavailable_variant;

  std::lock_guard lock(mutex_);
  stats_.loaded_records += records.size();
  stats_.dropped_unavailable_variant += local.dropped_unavailable_variant;
  std::size_t merged = 0;
  for (const tune::LogRecord& rec : records) {
    const auto it = entries_.find(rec.shape);
    if (it == entries_.end()) {
      entries_.emplace(rec.shape, Entry{rec.schedule, rec.throughput});
      ++merged;
    } else if (rec.throughput > it->second.throughput) {
      it->second = Entry{rec.schedule, rec.throughput};
      ++merged;
    }
  }
  return merged;
}

void ScheduleCache::save(const std::string& path) const {
  std::vector<std::pair<tune::TaskShape, Entry>> snapshot;
  {
    std::lock_guard lock(mutex_);
    snapshot.assign(entries_.begin(), entries_.end());
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out)
      throw std::runtime_error("ScheduleCache::save: cannot open " + tmp);
    out << "# tvmec schedule cache: best schedule per GEMM task shape "
           "(tuning-log format)\n";
    for (const auto& [shape, entry] : snapshot) {
      out << shape.m << "x" << shape.n << "x" << shape.k << " | "
          << entry.schedule.to_string() << " | " << entry.throughput << "\n";
    }
    if (!out)
      throw std::runtime_error("ScheduleCache::save: write failed on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("ScheduleCache::save: rename failed for " +
                             path);
  std::lock_guard lock(mutex_);
  ++stats_.saves;
}

std::size_t ScheduleCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

ScheduleCache::Stats ScheduleCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

// ---------------------------------------------------------------------------
// ContinuousAutotuner

ContinuousAutotuner::ContinuousAutotuner(const AutotunePolicy& policy,
                                         TrafficProfile& traffic,
                                         ScheduleCache& cache,
                                         InstallFn install)
    : policy_(policy),
      traffic_(traffic),
      cache_(cache),
      install_(std::move(install)) {
  if (!install_)
    throw std::invalid_argument("ContinuousAutotuner: null install fn");
  if (policy.trials == 0)
    throw std::invalid_argument("ContinuousAutotuner: trials must be >= 1");
  if (policy.max_pairs_per_cycle == 0)
    throw std::invalid_argument(
        "ContinuousAutotuner: max_pairs_per_cycle must be >= 1");
}

ContinuousAutotuner::~ContinuousAutotuner() { stop(); }

void ContinuousAutotuner::start() {
  if (!policy_.background || thread_.joinable()) return;
  {
    std::lock_guard lock(stop_mutex_);
    stop_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void ContinuousAutotuner::stop() {
  {
    std::lock_guard lock(stop_mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ContinuousAutotuner::loop() {
  std::unique_lock lock(stop_mutex_);
  for (;;) {
    if (stop_cv_.wait_for(lock, policy_.interval, [&] { return stop_; }))
      return;
    lock.unlock();
    try {
      run_cycle();
    } catch (const std::exception& e) {
      // Tuning is advisory: a failed cycle (I/O error persisting, an
      // unexpected measurement throw) must never take the serving path
      // down with it.
      std::fprintf(stderr, "tvmec: autotune cycle failed: %s\n", e.what());
    }
    lock.lock();
  }
}

std::size_t ContinuousAutotuner::run_cycle() {
  const std::vector<HotPair> hot =
      traffic_.top(policy_.max_pairs_per_cycle, policy_.min_requests);
  std::size_t published_now = 0;
  bool cache_changed = false;

  for (const HotPair& pair : hot) {
    {
      std::lock_guard lock(stop_mutex_);
      if (stop_ && thread_.joinable()) break;  // shutting down mid-cycle
    }
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.pairs_considered;
    }
    // Scratch codec: tuning trials mutate *its* schedule, never a
    // serving slot's. Publishing goes through install_.
    core::Codec scratch(
        ec::CodeParams{pair.key.k, pair.key.r, pair.key.w},
        pair.key.family);
    const tune::TaskShape shape =
        scratch.encoder().task_shape(pair.unit_size);

    const std::optional<ScheduleCache::Entry> cached = cache_.lookup(shape);
    const auto pub_key = std::make_pair(pair.key, pair.unit_size);
    bool already_published;
    {
      std::lock_guard lock(published_mutex_);
      already_published = published_.count(pub_key) != 0;
    }
    // Warm start: a cached best (from a previous run's log, or an
    // earlier cycle) is published immediately — the serving path gets
    // yesterday's tuned schedule now, refined measurements later.
    if (cached && !already_published) {
      install_(pair.key, cached->schedule);
      {
        std::lock_guard lock(published_mutex_);
        published_[pub_key] = true;
      }
      std::lock_guard lock(stats_mutex_);
      ++stats_.warm_start_installs;
      ++published_now;
    }

    tune::TuneOptions options;
    options.trials = policy_.trials;
    options.seed = policy_.seed ^ (shape.m * 1000003 + shape.n * 10007 +
                                   shape.k * 101);
    const tune::TuneResult result =
        scratch.tune(pair.unit_size, options, policy_.tune_threads);
    {
      std::lock_guard lock(stats_mutex_);
      stats_.trials_run += result.history.size();
    }
    const double baseline = cached ? cached->throughput : 0.0;
    if (result.best_throughput > policy_.min_gain * baseline &&
        result.best_throughput > 0.0) {
      cache_.install(shape,
                     {result.best_schedule, result.best_throughput});
      install_(pair.key, result.best_schedule);
      {
        std::lock_guard lock(published_mutex_);
        published_[pub_key] = true;
      }
      cache_changed = true;
      std::lock_guard lock(stats_mutex_);
      ++stats_.installs;
      ++published_now;
    }
  }

  traffic_.decay();
  if (cache_changed && !policy_.log_path.empty())
    cache_.save(policy_.log_path);
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.cycles;
  }
  return published_now;
}

AutotuneStats ContinuousAutotuner::stats() const {
  std::lock_guard lock(stats_mutex_);
  AutotuneStats out = stats_;
  out.cache = cache_.stats();
  return out;
}

}  // namespace tvmec::serve
