#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ec/reed_solomon.h"

/// Request/result types of the serving layer.
///
/// A submission is asynchronous: submit() enqueues the request and
/// returns an EcFuture immediately; the batch-forming workers complete
/// it later (or the admission controller completes it on the spot with a
/// rejection). The caller owns every buffer a request references and
/// must keep them alive and untouched until the future is ready — the
/// standard async-I/O contract, chosen so the service can pack payloads
/// straight from caller memory into the batched GEMM without an extra
/// copy per request.
namespace tvmec::serve {

using Clock = std::chrono::steady_clock;

enum class RequestKind : std::uint8_t { Encode, Decode };

enum class RequestStatus : std::uint8_t {
  Pending,     ///< not yet completed (only observable via EcFuture::ready)
  Ok,          ///< executed successfully
  Overloaded,  ///< rejected at admission: the bounded queue was full
  Expired,     ///< deadline passed before the request reached a batch
  Shutdown,    ///< service stopped before the request executed
  Failed,      ///< execution threw; see EcResult::error
};

const char* to_string(RequestStatus s) noexcept;

/// Identifies the codec a request runs against. The service instantiates
/// (and caches) one Codec per distinct key; only requests with equal
/// keys and equal kinds coalesce into a batch.
struct CodecKey {
  std::size_t k = 4;
  std::size_t r = 2;
  unsigned w = 8;
  ec::RsFamily family = ec::RsFamily::CauchyGood;

  std::size_t n() const noexcept { return k + r; }
  friend auto operator<=>(const CodecKey&, const CodecKey&) = default;
};

/// Completion record of one request, including its latency breakdown.
struct EcResult {
  RequestStatus status = RequestStatus::Pending;
  std::string error;  ///< exception text when status == Failed
  /// submit() -> the batch former handed the request to a worker.
  std::chrono::nanoseconds queue_wait{0};
  /// Batch execution time (shared by every request of the batch).
  std::chrono::nanoseconds service_time{0};
  /// submit() -> completion (queue_wait + service_time for served
  /// requests; ~0 for admission rejections).
  std::chrono::nanoseconds total{0};
  /// Requests coalesced into the batch that served this one (1 when the
  /// request ran alone; 0 when it never reached execution).
  std::size_t batch_size = 0;
};

namespace detail {

/// Shared completion state behind EcFuture: one mutex/cv pair per
/// in-flight request, touched twice (complete, wait).
class Completion {
 public:
  void complete(EcResult result) {
    {
      std::lock_guard lock(mutex_);
      result_ = std::move(result);
      done_ = true;
    }
    cv_.notify_all();
  }

  const EcResult& wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return done_; });
    return result_;
  }

  bool wait_for(std::chrono::nanoseconds timeout) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return done_; });
  }

  bool ready() const {
    std::lock_guard lock(mutex_);
    return done_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  EcResult result_;
};

}  // namespace detail

/// Handle to an asynchronous submission. Copyable (shared state);
/// default-constructed futures are invalid.
class EcFuture {
 public:
  EcFuture() = default;
  explicit EcFuture(std::shared_ptr<detail::Completion> state)
      : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }
  bool ready() const { return state_ && state_->ready(); }

  /// Blocks until the request completes; the reference stays valid for
  /// the future's lifetime.
  const EcResult& wait() { return state_->wait(); }

  /// Bounded wait; true when the result is ready.
  bool wait_for(std::chrono::nanoseconds timeout) {
    return state_->wait_for(timeout);
  }

 private:
  std::shared_ptr<detail::Completion> state_;
};

/// The internal request record. Encode requests use (in, out); decode
/// requests use (stripe, erased) and repair in place.
struct EcRequest {
  RequestKind kind = RequestKind::Encode;
  CodecKey key;
  std::size_t unit_size = 0;
  std::span<const std::uint8_t> in;   ///< encode: k contiguous data units
  std::span<std::uint8_t> out;        ///< encode: r contiguous parity units
  std::span<std::uint8_t> stripe;     ///< decode: n contiguous units
  std::vector<std::size_t> erased;    ///< decode: loss pattern (verbatim)
  Clock::time_point deadline = Clock::time_point::max();
};

/// A queued request: the request plus its completion handle and the
/// accounting fields the batch former fills at admission.
struct PendingRequest {
  EcRequest req;
  std::shared_ptr<detail::Completion> completion;
  Clock::time_point submitted{};
  std::uint64_t seq = 0;           ///< admission order (FIFO across classes)
  std::size_t payload_bytes = 0;   ///< for the batch byte cap
};

}  // namespace tvmec::serve
