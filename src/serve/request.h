#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ec/reed_solomon.h"
#include "tensor/cancel.h"

/// Request/result types of the serving layer.
///
/// A submission is asynchronous: submit() enqueues the request and
/// returns an EcFuture immediately; the batch-forming workers complete
/// it later (or the admission controller completes it on the spot with a
/// rejection). The caller owns every buffer a request references and
/// must keep them alive and untouched until the future is ready — the
/// standard async-I/O contract, chosen so the service can pack payloads
/// straight from caller memory into the batched GEMM without an extra
/// copy per request.
namespace tvmec::serve {

using Clock = std::chrono::steady_clock;

enum class RequestKind : std::uint8_t { Encode, Decode };

/// Identifies the tenant a request is billed to (QoS accounting and
/// weighted fair shares in the sharded front). Tenant 0 is the default
/// tenant every plain submission lands on; ids are opaque otherwise.
using TenantId = std::uint64_t;

enum class RequestStatus : std::uint8_t {
  Pending,     ///< not yet completed (only observable via EcFuture::ready)
  Ok,          ///< executed successfully
  Overloaded,  ///< rejected at admission: the bounded queue was full
  Expired,     ///< deadline passed before the request reached a batch
  Shutdown,    ///< service stopped before the request executed
  Failed,      ///< execution threw; see EcResult::error
  Cancelled,   ///< client cancelled via EcFuture::cancel before completion
  Shed,        ///< rejected at admission: queue-wait estimate implied a
               ///< deadline miss (BatchPolicy::deadline_shedding)
};

const char* to_string(RequestStatus s) noexcept;

/// Identifies the codec a request runs against. The service instantiates
/// (and caches) one Codec per distinct key; only requests with equal
/// keys and equal kinds coalesce into a batch.
struct CodecKey {
  std::size_t k = 4;
  std::size_t r = 2;
  unsigned w = 8;
  ec::RsFamily family = ec::RsFamily::CauchyGood;

  std::size_t n() const noexcept { return k + r; }
  friend auto operator<=>(const CodecKey&, const CodecKey&) = default;
};

/// Completion record of one request, including its latency breakdown.
struct EcResult {
  RequestStatus status = RequestStatus::Pending;
  std::string error;  ///< exception text when status == Failed
  /// submit() -> the batch former handed the request to a worker.
  std::chrono::nanoseconds queue_wait{0};
  /// Batch execution time (shared by every request of the batch).
  std::chrono::nanoseconds service_time{0};
  /// submit() -> completion (queue_wait + service_time for served
  /// requests; ~0 for admission rejections).
  std::chrono::nanoseconds total{0};
  /// Requests coalesced into the batch that served this one (1 when the
  /// request ran alone; 0 when it never reached execution).
  std::size_t batch_size = 0;
};

namespace detail {

/// Shared completion state behind EcFuture: one mutex/cv pair per
/// in-flight request, touched twice (complete, wait). Also hosts the
/// request's cancel flag so a CancelToken aliasing this object costs no
/// extra allocation per request.
class Completion {
 public:
  void complete(EcResult result) {
    {
      std::lock_guard lock(mutex_);
      result_ = std::move(result);
      done_ = true;
    }
    cv_.notify_all();
  }

  /// Raises the cancel flag (sticky; checked cooperatively by workers).
  void request_cancel() noexcept {
    cancel_flag_.store(true, std::memory_order_release);
  }
  bool cancel_requested() const noexcept {
    return cancel_flag_.load(std::memory_order_relaxed);
  }
  const std::atomic<bool>* cancel_flag() const noexcept {
    return &cancel_flag_;
  }

  const EcResult& wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return done_; });
    return result_;
  }

  bool wait_for(std::chrono::nanoseconds timeout) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return done_; });
  }

  bool ready() const {
    std::lock_guard lock(mutex_);
    return done_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  EcResult result_;
  std::atomic<bool> cancel_flag_{false};
};

/// CancelToken viewing a Completion's embedded flag: the aliasing
/// shared_ptr keeps the whole Completion alive for the token's lifetime.
inline tensor::CancelToken token_for(
    const std::shared_ptr<Completion>& completion) {
  return tensor::CancelToken(std::shared_ptr<const std::atomic<bool>>(
      completion, completion->cancel_flag()));
}

}  // namespace detail

/// Handle to an asynchronous submission. Copyable (shared state);
/// default-constructed futures are invalid.
class EcFuture {
 public:
  EcFuture() = default;
  explicit EcFuture(std::shared_ptr<detail::Completion> state)
      : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }
  bool ready() const { return state_ && state_->ready(); }

  /// Blocks until the request completes; the reference stays valid for
  /// the future's lifetime.
  const EcResult& wait() { return state_->wait(); }

  /// Bounded wait; true when the result is ready.
  bool wait_for(std::chrono::nanoseconds timeout) {
    return state_->wait_for(timeout);
  }

  /// Requests cooperative cancellation. Best-effort and non-blocking:
  /// a queued request completes as Cancelled at batch formation; a
  /// request already inside a kernel stops at the next tile-chunk poll.
  /// A request that already completed (or wins the race) keeps its
  /// original status — callers must still wait() for the result.
  void cancel() {
    if (state_) state_->request_cancel();
  }

  /// True once cancel() has been called (even if the request completed
  /// first).
  bool cancel_requested() const {
    return state_ && state_->cancel_requested();
  }

 private:
  std::shared_ptr<detail::Completion> state_;
};

/// The internal request record. Encode requests use (in, out); decode
/// requests use (stripe, erased) and repair in place.
struct EcRequest {
  RequestKind kind = RequestKind::Encode;
  CodecKey key;
  std::size_t unit_size = 0;
  std::span<const std::uint8_t> in;   ///< encode: k contiguous data units
  std::span<std::uint8_t> out;        ///< encode: r contiguous parity units
  std::span<std::uint8_t> stripe;     ///< decode: n contiguous units
  std::vector<std::size_t> erased;    ///< decode: loss pattern (verbatim)
  Clock::time_point deadline = Clock::time_point::max();
  /// Optional caller-supplied cancellation token (e.g. from a
  /// CancelSource shared by a whole RPC). Invalid (default) means the
  /// only cancel channel is EcFuture::cancel(). Both are honored.
  tensor::CancelToken cancel;
  /// QoS accounting identity. Carried through admission and completion
  /// so an observer (the sharded front's TenantRegistry) can keep
  /// per-tenant counters whose identities mirror the service-wide ones.
  TenantId tenant = 0;
};

/// One accounting event on a request's lifecycle, delivered to
/// ServiceConfig::request_observer. Submitted fires once per valid
/// submission (after argument validation — malformed submissions throw
/// and are nobody's traffic); Accepted fires when admission succeeds;
/// Completed fires exactly once per submission with the terminal status
/// (including admission rejections, where admitted == false). Per
/// tenant, the PR-4/5 identities follow:
///   submitted == accepted + rejected_*   and
///   accepted  == ok + expired + failed + cancelled + shutdown_drained.
struct RequestEvent {
  enum class Kind : std::uint8_t { Submitted, Accepted, Completed };
  Kind kind = Kind::Completed;
  TenantId tenant = 0;
  RequestStatus status = RequestStatus::Pending;  ///< Completed only
  /// Completed only: true when the request had been admitted (its
  /// terminal status counts against `accepted`), false for admission
  /// rejections. Distinguishes shutdown_drained from rejected_shutdown.
  bool admitted = false;
};

/// A queued request: the request plus its completion handle and the
/// accounting fields the batch former fills at admission.
struct PendingRequest {
  EcRequest req;
  std::shared_ptr<detail::Completion> completion;
  Clock::time_point submitted{};
  std::uint64_t seq = 0;           ///< admission order (FIFO across classes)
  std::size_t payload_bytes = 0;   ///< for the batch byte cap
};

}  // namespace tvmec::serve
