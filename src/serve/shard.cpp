#include "serve/shard.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tvmec::serve {

namespace {

std::size_t resolve_shards(const ShardedServiceConfig& config) {
  if (config.num_shards != 0) return config.num_shards;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Counter+histogram sum of two service snapshots (the front-wide view).
void merge_stats(ServeStatsSnapshot& into, const ServeStatsSnapshot& from) {
  into.submitted += from.submitted;
  into.accepted += from.accepted;
  into.rejected_overload += from.rejected_overload;
  into.rejected_shed += from.rejected_shed;
  into.rejected_shutdown += from.rejected_shutdown;
  into.completed_ok += from.completed_ok;
  into.expired += from.expired;
  into.failed += from.failed;
  into.cancelled += from.cancelled;
  into.shutdown_drained += from.shutdown_drained;
  into.batches += from.batches;
  into.empty_flushes += from.empty_flushes;
  into.degraded_batches += from.degraded_batches;
  into.breaker_trips += from.breaker_trips;
  into.breaker_recoveries += from.breaker_recoveries;
  into.breaker_probes += from.breaker_probes;
  into.watchdog_aborts += from.watchdog_aborts;
  into.watchdog_stuck += from.watchdog_stuck;
  into.plan_cache_hits += from.plan_cache_hits;
  into.plan_cache_misses += from.plan_cache_misses;
  into.queue_wait_ns.merge(from.queue_wait_ns);
  into.service_ns.merge(from.service_ns);
  into.total_ns.merge(from.total_ns);
  into.batch_width.merge(from.batch_width);
  into.gemm_threads.merge(from.gemm_threads);
}

}  // namespace

std::size_t ShardedEcService::shard_of(std::uint64_t client_id,
                                       std::size_t num_shards) noexcept {
  if (num_shards <= 1) return 0;
  // splitmix64 finalizer: client ids are often sequential, and a raw
  // modulo would then stripe neighbors across shards in lockstep with
  // any stride in the id allocator.
  std::uint64_t x = client_id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % num_shards);
}

ShardedEcService::ShardedEcService(const ShardedServiceConfig& config)
    : config_(config),
      tenants_(resolve_shards(config) * config.shard.batch.queue_capacity,
               config.qos_enforcement) {
  const std::size_t num_shards = resolve_shards(config);

  for (const auto& [tenant, policy] : config.tenant_policies)
    tenants_.set_policy(tenant, policy);

  // Warm start: merge the previous run's best-known schedules before
  // any traffic arrives, so the first request of a known shape already
  // runs tuned.
  if (!config.autotune.log_path.empty())
    schedule_cache_.load(config.autotune.log_path, &warm_start_load_);

  std::shared_ptr<core::PlanCache> shared_plans;
  if (config.share_plan_cache)
    shared_plans = config.shard.plan_cache
                       ? config.shard.plan_cache
                       : std::make_shared<core::PlanCache>();

  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    ServiceConfig sc = config.shard;
    sc.num_workers = 0;  // the front owns the threads (they must steal)
    // Every shard worker is a potential concurrent batch executor
    // against the one shared GEMM pool; without the hint each
    // manual-pump shard would assume it executes alone and
    // oversubscribe.
    sc.executor_hint = std::max<std::size_t>(
        1, num_shards * std::max<std::size_t>(1, config.workers_per_shard));
    sc.buffer_pool =
        config.pool_bytes_per_shard > 0
            ? std::make_shared<BufferPool>(config.pool_bytes_per_shard)
            : nullptr;
    sc.plan_cache = shared_plans;  // null = EcService makes a private one
    if (config.shard.request_observer) {
      // Chain: tenant accounting first, then the caller's hook.
      sc.request_observer = [this, user = config.shard.request_observer](
                                const RequestEvent& event) {
        tenants_.observe(event);
        user(event);
      };
    } else {
      sc.request_observer = [this](const RequestEvent& event) {
        tenants_.observe(event);
      };
    }
    shards_.push_back(std::make_unique<EcService>(sc));
  }

  if (config.autotune.enabled) {
    autotuner_ = std::make_unique<ContinuousAutotuner>(
        config.autotune, traffic_, schedule_cache_,
        [this](const CodecKey& key, const tensor::Schedule& schedule) {
          install_everywhere(key, schedule);
        });
    autotuner_->start();  // no-op unless policy.background
  }

  if (config.workers_per_shard > 0) {
    workers_.reserve(num_shards * config.workers_per_shard);
    for (std::size_t s = 0; s < num_shards; ++s)
      for (std::size_t j = 0; j < config.workers_per_shard; ++j)
        workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardedEcService::~ShardedEcService() { shutdown(true); }

void ShardedEcService::install_everywhere(const CodecKey& key,
                                          const tensor::Schedule& schedule) {
  for (const auto& shard : shards_) shard->install_schedule(key, schedule);
}

void ShardedEcService::maybe_warm_start(const CodecKey& key,
                                        std::size_t unit_size) {
  // The encode task shape, computed directly (GemmCoder::task_shape
  // with out_units = r, in_units = k) — building a Codec just to ask
  // would cost a bitmatrix on the submit path.
  tune::TaskShape shape;
  shape.m = key.r * key.w;
  shape.n = unit_size / (std::size_t{8} * key.w);
  shape.k = key.k * key.w;
  const std::optional<ScheduleCache::Entry> cached =
      schedule_cache_.lookup(shape);
  if (!cached) return;
  install_everywhere(key, cached->schedule);
  warm_start_installs_.fetch_add(1, std::memory_order_relaxed);
}

EcFuture ShardedEcService::submit_request(TenantId tenant,
                                          std::uint64_t client_id,
                                          EcRequest request) {
  request.tenant = tenant;
  // Malformed submissions throw before any accounting (programming
  // errors are not tenant traffic) — same contract as EcService.
  EcService::validate_request(request);

  if (traffic_.record(request.key, request.unit_size))
    maybe_warm_start(request.key, request.unit_size);

  const auto now = Clock::now();
  const std::optional<RequestStatus> verdict =
      tenants_.admit(tenant, now, &request.deadline);
  if (verdict) {
    // Front-level QoS rejection: never reaches a shard, so the front
    // synthesizes the Submitted+Completed pair itself and completes the
    // future on the spot.
    qos_rejected_.fetch_add(1, std::memory_order_relaxed);
    tenants_.observe({RequestEvent::Kind::Submitted, tenant,
                      RequestStatus::Pending, /*admitted=*/false});
    tenants_.observe({RequestEvent::Kind::Completed, tenant, *verdict,
                      /*admitted=*/false});
    auto completion = std::make_shared<detail::Completion>();
    EcResult result;
    result.status = *verdict;
    completion->complete(std::move(result));
    return EcFuture(std::move(completion));
  }
  return shards_[shard_of(client_id, shards_.size())]->submit_request(
      std::move(request));
}

EcFuture ShardedEcService::submit_encode(TenantId tenant,
                                         std::uint64_t client_id,
                                         const CodecKey& key,
                                         std::span<const std::uint8_t> data,
                                         std::span<std::uint8_t> parity,
                                         std::size_t unit_size,
                                         std::chrono::nanoseconds timeout) {
  EcRequest req;
  req.kind = RequestKind::Encode;
  req.key = key;
  req.unit_size = unit_size;
  req.in = data;
  req.out = parity;
  if (timeout != std::chrono::nanoseconds{0})
    req.deadline = Clock::now() + timeout;
  return submit_request(tenant, client_id, std::move(req));
}

EcFuture ShardedEcService::submit_decode(TenantId tenant,
                                         std::uint64_t client_id,
                                         const CodecKey& key,
                                         std::span<std::uint8_t> stripe,
                                         std::span<const std::size_t> erased_ids,
                                         std::size_t unit_size,
                                         std::chrono::nanoseconds timeout) {
  EcRequest req;
  req.kind = RequestKind::Decode;
  req.key = key;
  req.unit_size = unit_size;
  req.stripe = stripe;
  req.erased.assign(erased_ids.begin(), erased_ids.end());
  if (timeout != std::chrono::nanoseconds{0})
    req.deadline = Clock::now() + timeout;
  return submit_request(tenant, client_id, std::move(req));
}

std::size_t ShardedEcService::run_pending() {
  std::size_t total = 0;
  bool progressed = true;
  // Round-robin until a full pass completes nothing: batches executed
  // on one shard can complete futures whose waiters submit to another,
  // but a quiescent pass means the queues this call was asked to drain
  // are drained.
  while (progressed) {
    progressed = false;
    for (const auto& shard : shards_) {
      const std::size_t done = shard->run_pending();
      total += done;
      if (done != 0) progressed = true;
    }
  }
  return total;
}

std::size_t ShardedEcService::run_autotune_cycle() {
  return autotuner_ ? autotuner_->run_cycle() : 0;
}

std::size_t ShardedEcService::try_steal(std::size_t thief) {
  const StealPolicy& policy = config_.steal;
  const auto own_wait = shards_[thief]->queue_wait_ewma();
  const auto threshold = std::max<std::chrono::nanoseconds>(
      policy.min_victim_wait,
      std::chrono::nanoseconds(static_cast<std::int64_t>(
          policy.wait_ratio * static_cast<double>(own_wait.count()))));

  std::size_t victim = thief;
  std::chrono::nanoseconds worst{0};
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i == thief) continue;
    if (shards_[i]->pending() == 0) continue;
    const auto wait = shards_[i]->queue_wait_ewma();
    if (wait < threshold) continue;
    if (victim == thief || wait > worst) {
      victim = i;
      worst = wait;
    }
  }
  if (victim == thief) return 0;

  steal_scans_.fetch_add(1, std::memory_order_relaxed);
  std::size_t requests = 0;
  std::size_t batches = 0;
  for (std::size_t b = 0; b < policy.max_batches; ++b) {
    const std::size_t done = shards_[victim]->run_pending(1);
    if (done == 0) break;
    requests += done;
    ++batches;
  }
  steal_batches_.fetch_add(batches, std::memory_order_relaxed);
  steal_requests_.fetch_add(requests, std::memory_order_relaxed);
  return requests;
}

void ShardedEcService::worker_loop(std::size_t shard_index) {
  EcService& own = *shards_[shard_index];
  while (!stop_workers_.load(std::memory_order_acquire)) {
    std::size_t did = own.run_pending();
    if (stop_workers_.load(std::memory_order_acquire)) break;
    if (did == 0 && config_.steal.enabled && shards_.size() > 1)
      did += try_steal(shard_index);
    // Bounded idle wait: wake on own work, or time out and rescan
    // neighbors (a parked worker must still notice a hot neighbor).
    if (did == 0) own.wait_for_work(config_.steal.idle_wait);
  }
}

void ShardedEcService::shutdown(bool drain) {
  {
    std::lock_guard lock(shutdown_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (autotuner_) autotuner_->stop();
  stop_workers_.store(true, std::memory_order_release);
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  for (const auto& shard : shards_) shard->shutdown(drain);
}

std::size_t ShardedEcService::pending() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending();
  return total;
}

ShardedStatsSnapshot ShardedEcService::stats() const {
  ShardedStatsSnapshot out;
  out.shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardStatsSnapshot s;
    s.shard = i;
    s.stats = shards_[i]->stats();
    s.queue_wait_ewma = shards_[i]->queue_wait_ewma();
    if (const auto& pool = shards_[i]->buffer_pool()) {
      s.has_pool = true;
      s.pool = pool->stats();
    }
    merge_stats(out.aggregate, s.stats);
    out.shards.push_back(std::move(s));
  }
  if (config_.share_plan_cache && !out.shards.empty()) {
    // Every shard reported the same shared cache; summing overcounted.
    out.aggregate.plan_cache_hits = out.shards.front().stats.plan_cache_hits;
    out.aggregate.plan_cache_misses =
        out.shards.front().stats.plan_cache_misses;
  }
  // Front-level QoS rejections happened before any shard saw the
  // request; fold them in so the aggregate keeps the admission
  // identity.
  const std::uint64_t qos = qos_rejected_.load(std::memory_order_relaxed);
  out.qos_rejected = qos;
  out.aggregate.submitted += qos;
  out.aggregate.rejected_overload += qos;

  out.tenants = tenants_.all();
  out.tenant_aggregate = tenants_.aggregate();
  out.steal_scans = steal_scans_.load(std::memory_order_relaxed);
  out.steal_batches = steal_batches_.load(std::memory_order_relaxed);
  out.steal_requests = steal_requests_.load(std::memory_order_relaxed);
  if (autotuner_) {
    out.autotune = autotuner_->stats();
  } else {
    out.autotune.cache = schedule_cache_.stats();
  }
  out.autotune.warm_start_installs +=
      warm_start_installs_.load(std::memory_order_relaxed);
  return out;
}

ShardedHealthSnapshot ShardedEcService::health() const {
  ShardedHealthSnapshot out;
  out.shards.reserve(shards_.size());
  std::size_t unhealthy = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    HealthSnapshot h = shards_[i]->health();
    if (h.state == HealthState::Unhealthy) ++unhealthy;
    for (const std::string& reason : h.reasons)
      out.reasons.push_back("shard " + std::to_string(i) + ": " + reason);
    out.shards.push_back(std::move(h));
  }
  if (unhealthy == shards_.size() && !shards_.empty())
    out.state = HealthState::Unhealthy;
  else if (!out.reasons.empty())
    out.state = HealthState::Degraded;
  return out;
}

}  // namespace tvmec::serve
