#include "serve/batch_former.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tvmec::serve {

BatchFormer::BatchFormer(const BatchPolicy& policy) : policy_(policy) {
  if (policy.queue_capacity == 0)
    throw std::invalid_argument("BatchFormer: queue_capacity must be >= 1");
  if (policy.max_batch_requests == 0)
    throw std::invalid_argument(
        "BatchFormer: max_batch_requests must be >= 1");
  if (policy.max_batch_bytes == 0)
    throw std::invalid_argument("BatchFormer: max_batch_bytes must be >= 1");
}

PushResult BatchFormer::push(PendingRequest request) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return PushResult::Closed;
    // Shedding before the capacity checks: a doomed request should not
    // even contend for a queue slot. now + wait ewma + service ewma is
    // the predicted moment this request would *complete*; if that is
    // already past its deadline, queueing it only manufactures an
    // Expired later (or worse, an Ok that arrives after the client
    // stopped caring). Predicting completion rather than
    // start-of-service matters under sustained overload: the queue
    // settles exactly at the admission margin, so a predictor without
    // the service term admits requests that then systematically finish
    // one batch-service time late.
    if (policy_.deadline_shedding &&
        request.req.deadline != Clock::time_point::max()) {
      const auto now = Clock::now();
      if (now > request.req.deadline) return PushResult::Shed;
      if (now + wait_ewma_ + service_ewma_ > request.req.deadline) {
        // Liveness probe: the wait EWMA only refreshes at pop time, so
        // if the estimates ever predict doom for everyone, nothing
        // queues, nothing pops, and a stale estimate sheds forever even
        // after the backlog is long gone. A not-yet-expired request
        // arriving at an *empty* queue is admitted as a probe (at most
        // one per service interval); its pop observes the true ~zero
        // wait and walks the estimate back down.
        if (total_ != 0 || now - last_probe_ < service_ewma_)
          return PushResult::Shed;
        last_probe_ = now;
      }
    }
    if (total_ >= policy_.queue_capacity) return PushResult::QueueFull;
    const BatchClass cls{request.req.kind, request.req.key};
    // Fairness cap: look the lane up before creating it so a rejected
    // push cannot leave an empty lane behind.
    if (policy_.lane_capacity > 0) {
      const auto it = lanes_.find(cls);
      if (it != lanes_.end() &&
          it->second.queue.size() >= policy_.lane_capacity)
        return PushResult::QueueFull;
    }
    request.seq = next_seq_++;
    Lane& lane = lanes_[cls];
    lane.bytes += request.payload_bytes;
    lane.queue.push_back(std::move(request));
    ++total_;
  }
  work_cv_.notify_one();
  return PushResult::Accepted;
}

BatchFormer::LaneMap::iterator BatchFormer::oldest_lane_locked() {
  // O(lanes) scan; a service typically serves a handful of codec shapes,
  // so lanes_ stays tiny. Every lane queue is FIFO, so the lane with the
  // smallest head seq holds the globally oldest request.
  auto oldest = lanes_.end();
  for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
    if (it->second.queue.empty()) continue;
    if (oldest == lanes_.end() ||
        it->second.queue.front().seq < oldest->second.queue.front().seq)
      oldest = it;
  }
  return oldest;
}

bool BatchFormer::lane_batch_ready_locked(const Lane& lane) const {
  return lane.queue.size() >= policy_.max_batch_requests ||
         lane.bytes >= policy_.max_batch_bytes;
}

std::vector<PendingRequest> BatchFormer::pop_batch_locked(
    LaneMap::iterator it) {
  Lane& lane = it->second;
  std::vector<PendingRequest> batch;
  std::size_t bytes = 0;
  while (!lane.queue.empty() && batch.size() < policy_.max_batch_requests) {
    const std::size_t next_bytes = lane.queue.front().payload_bytes;
    // The head request is always taken — an oversized request bypasses
    // coalescing as a batch of one rather than being unservable.
    if (!batch.empty() && bytes + next_bytes > policy_.max_batch_bytes) break;
    bytes += next_bytes;
    lane.bytes -= next_bytes;
    batch.push_back(std::move(lane.queue.front()));
    lane.queue.pop_front();
  }
  total_ -= batch.size();
  if (lane.queue.empty()) lanes_.erase(it);
  // Feed the shedding signal: one clock read per batch, one EWMA step
  // per popped request (so a batch of n moves the estimate n steps, the
  // same weight n sequential pops would have).
  if (!batch.empty()) {
    const auto now = Clock::now();
    for (const PendingRequest& p : batch) {
      const std::chrono::nanoseconds wait = now - p.submitted;
      wait_ewma_ += (wait - wait_ewma_) / 8;
    }
  }
  return batch;
}

std::vector<PendingRequest> BatchFormer::next_batch() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return total_ > 0 || closed_; });
    if (total_ == 0) return {};  // closed and drained
    const auto it = oldest_lane_locked();
    // Linger: give the oldest lane a bounded window to fill before
    // dispatching a small batch. Re-evaluated from scratch after every
    // wakeup — another consumer may have taken the lane meanwhile.
    if (policy_.linger > std::chrono::nanoseconds{0} && !closed_ &&
        !lane_batch_ready_locked(it->second)) {
      const auto until = it->second.queue.front().submitted + policy_.linger;
      if (Clock::now() < until) {
        work_cv_.wait_until(lock, until);
        continue;
      }
    }
    return pop_batch_locked(it);
  }
}

bool BatchFormer::wait_for_work(std::chrono::nanoseconds timeout) const {
  std::unique_lock lock(mutex_);
  work_cv_.wait_for(lock, timeout, [&] { return total_ > 0 || closed_; });
  return total_ > 0;
}

bool BatchFormer::try_next_batch(std::vector<PendingRequest>& out) {
  std::lock_guard lock(mutex_);
  if (total_ == 0) return false;
  out = pop_batch_locked(oldest_lane_locked());
  return true;
}

void BatchFormer::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  work_cv_.notify_all();
}

bool BatchFormer::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::vector<PendingRequest> BatchFormer::drain_all() {
  std::lock_guard lock(mutex_);
  std::vector<PendingRequest> out;
  out.reserve(total_);
  for (auto& [cls, lane] : lanes_) {
    for (PendingRequest& p : lane.queue) out.push_back(std::move(p));
  }
  lanes_.clear();
  total_ = 0;
  // Preserve admission order across lanes for deterministic accounting.
  std::sort(out.begin(), out.end(),
            [](const PendingRequest& a, const PendingRequest& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::size_t BatchFormer::pending() const {
  std::lock_guard lock(mutex_);
  return total_;
}

std::chrono::nanoseconds BatchFormer::queue_wait_ewma() const {
  std::lock_guard lock(mutex_);
  return wait_ewma_;
}

void BatchFormer::note_service_time(std::chrono::nanoseconds observed) {
  std::lock_guard lock(mutex_);
  service_ewma_ += (observed - service_ewma_) / 8;
}

std::chrono::nanoseconds BatchFormer::service_time_ewma() const {
  std::lock_guard lock(mutex_);
  return service_ewma_;
}

}  // namespace tvmec::serve
