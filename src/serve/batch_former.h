#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "serve/request.h"

/// Admission control + batch formation: the queue between submitters and
/// the service workers.
///
/// The structure is a bounded multi-producer multi-consumer queue that
/// is *class-aware*: requests land in per-(kind, codec-key) FIFO lanes,
/// and a consumer drains a contiguous run of the oldest lane — up to the
/// request/byte caps — as one batch. Compatible small requests therefore
/// leave as a single enlarged-N GEMM while order across lanes stays
/// admission-FIFO (the lane whose head request is oldest is always
/// served first, so no class can be starved).
///
/// Lock-light by design rather than lock-free: producers take the mutex
/// once per push (no waiting — a full queue rejects immediately, which
/// is the backpressure contract), and consumers take it once per *batch*
/// rather than once per request, so the lock is touched O(batches) not
/// O(requests) on the drain side.
namespace tvmec::serve {

struct BatchPolicy {
  /// Total queued requests across all lanes; pushes beyond this are
  /// rejected (admission control).
  std::size_t queue_capacity = 1024;
  /// Coalescing caps: a batch never exceeds this many requests...
  std::size_t max_batch_requests = 32;
  /// ...nor this many payload bytes — except that the head request is
  /// always taken, so a single oversized request bypasses coalescing and
  /// forms a batch of one.
  std::size_t max_batch_bytes = std::size_t{8} << 20;
  /// How long a forming batch may wait for more compatible requests
  /// after its head arrived (0 = dispatch immediately). Bounded by each
  /// request's deadline at execution time, not here.
  std::chrono::nanoseconds linger{0};
  /// Per-lane queued-request cap (fairness): one hot (kind, key) class
  /// cannot occupy more than this many queue slots, so other classes
  /// always find room under sustained single-class overload.
  /// 0 = unlimited (only the global queue_capacity applies).
  std::size_t lane_capacity = 0;
  /// CoDel-style deadline shedding: when enabled, a request whose
  /// deadline is already unmeetable given the current estimates — now +
  /// queue-wait EWMA + service-time EWMA > deadline, i.e. the predicted
  /// *completion* moment, not just the predicted start of service — is
  /// rejected at admission (PushResult::Shed) instead of queueing, doing
  /// dead work, and expiring later. Under sustained overload this
  /// converts would-be-expired work into cheap early rejections, which
  /// is what keeps goodput up.
  bool deadline_shedding = false;
};

enum class PushResult {
  Accepted,   ///< queued
  QueueFull,  ///< rejected: capacity reached (complete as Overloaded)
  Closed,     ///< rejected: former closed (complete as Shutdown)
  Shed,       ///< rejected: predicted deadline miss (complete as Shed)
};

class BatchFormer {
 public:
  /// Throws std::invalid_argument on a zero capacity or zero caps.
  explicit BatchFormer(const BatchPolicy& policy);

  /// Admission: O(log lanes) under the mutex, never blocks.
  PushResult push(PendingRequest request);

  /// Blocks until work is available (or the former closes), then forms
  /// and returns one batch from the oldest lane. All requests of a batch
  /// share (kind, key). Returns an empty vector exactly when the former
  /// is closed *and* drained — the worker-loop exit condition.
  std::vector<PendingRequest> next_batch();

  /// Non-blocking variant (ignores linger): false when nothing is
  /// queued. The manual-pump mode of EcService uses this, which is what
  /// makes rejection/deadline accounting deterministic under test.
  bool try_next_batch(std::vector<PendingRequest>& out);

  /// Blocks until at least one request is queued, the former closes, or
  /// `timeout` elapses; true when work is available. The sharded front's
  /// shard workers use this as their idle wait — bounded, so a worker
  /// whose own queue is empty still wakes up to scan neighbors for
  /// stealable load instead of parking forever.
  bool wait_for_work(std::chrono::nanoseconds timeout) const;

  /// Closes the queue: subsequent pushes fail with Closed, blocked
  /// consumers wake. Queued requests stay poppable (drain-on-shutdown).
  void close();
  bool closed() const;

  /// Removes and returns everything still queued (shutdown-without-drain
  /// completes these as Shutdown).
  std::vector<PendingRequest> drain_all();

  std::size_t pending() const;
  const BatchPolicy& policy() const noexcept { return policy_; }

  /// Current queue-wait estimate (EWMA over popped requests, alpha=1/8).
  /// This is half the signal deadline shedding compares against.
  std::chrono::nanoseconds queue_wait_ewma() const;

  /// Feed one observed batch-service time (formation to completion).
  /// The owner (EcService) reports each executed batch here; without it
  /// the shedder would admit requests predicted to *start* service just
  /// before their deadline and then systematically finish one
  /// batch-service time late.
  void note_service_time(std::chrono::nanoseconds observed);

  /// Current batch-service estimate (EWMA, alpha=1/8).
  std::chrono::nanoseconds service_time_ewma() const;

 private:
  /// One coalescing lane: requests of equal (kind, key).
  struct BatchClass {
    RequestKind kind;
    CodecKey key;
    friend auto operator<=>(const BatchClass&, const BatchClass&) = default;
  };
  struct Lane {
    std::deque<PendingRequest> queue;
    std::size_t bytes = 0;  ///< sum of queued payload_bytes
  };

  using LaneMap = std::map<BatchClass, Lane>;

  LaneMap::iterator oldest_lane_locked();
  bool lane_batch_ready_locked(const Lane& lane) const;
  std::vector<PendingRequest> pop_batch_locked(LaneMap::iterator it);

  const BatchPolicy policy_;
  mutable std::mutex mutex_;
  mutable std::condition_variable work_cv_;  ///< wait_for_work is const
  LaneMap lanes_;
  std::size_t total_ = 0;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
  /// Queue-wait EWMA in integer nanoseconds, updated at pop time:
  /// ewma += (wait - ewma) / 8. Signed so the delta math stays exact.
  std::chrono::nanoseconds wait_ewma_{0};
  /// Batch-service EWMA, fed by the owner via note_service_time().
  std::chrono::nanoseconds service_ewma_{0};
  /// When the last empty-queue liveness probe was admitted past a
  /// shed-predicting estimate (see push()).
  Clock::time_point last_probe_{};
};

}  // namespace tvmec::serve
