#include "serve/ec_service.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "ec/code_params.h"
#include "ec/encoder.h"
#include "tensor/threadpool.h"

namespace tvmec::serve {

using std::chrono::duration_cast;
using std::chrono::nanoseconds;

namespace {

/// The ablation switch: batching=false turns the service into a
/// one-request-at-a-time executor without touching any other policy.
BatchPolicy effective_policy(const ServiceConfig& config) {
  BatchPolicy p = config.batch;
  if (!config.batching) p.max_batch_requests = 1;
  return p;
}

ec::CodeParams params_of(const CodecKey& key) {
  return ec::CodeParams{key.k, key.r, key.w};
}

}  // namespace

const char* to_string(RequestStatus s) noexcept {
  switch (s) {
    case RequestStatus::Pending:
      return "pending";
    case RequestStatus::Ok:
      return "ok";
    case RequestStatus::Overloaded:
      return "overloaded";
    case RequestStatus::Expired:
      return "expired";
    case RequestStatus::Shutdown:
      return "shutdown";
    case RequestStatus::Failed:
      return "failed";
  }
  return "?";
}

tensor::Schedule default_service_schedule() {
  tensor::Schedule s = tensor::default_schedule();
  // The representative tuned shape from the encode benches: a wide
  // register tile with cache blocking over the (long, batched) N axis.
  s.tile_m = 8;
  s.tile_n = 16;
  s.block_n = 512;
  s.par_axis = tensor::ParAxis::N;
  // Open the thread knob to the whole pool; effective_gemm_threads()
  // narrows it per batch.
  s.num_threads = static_cast<int>(
      std::min<std::size_t>(tensor::ThreadPool::shared().size(), 256));
  return s;
}

int EcService::effective_gemm_threads(std::size_t batch_words,
                                      std::size_t pool_width,
                                      std::size_t service_workers) noexcept {
  if (pool_width == 0) pool_width = 1;
  if (service_workers == 0) service_workers = 1;  // manual pump = one driver
  const std::size_t fair_share =
      std::max<std::size_t>(1, pool_width / service_workers);
  const std::size_t by_work =
      std::max<std::size_t>(1, batch_words / kMinWordsPerGemmThread);
  return static_cast<int>(
      std::min({fair_share, by_work, std::size_t{256}}));
}

EcService::EcService(const ServiceConfig& config)
    : config_(config), former_(effective_policy(config)) {
  if (!config_.schedule.valid())
    throw std::invalid_argument("EcService: invalid schedule");
  config_.batch = former_.policy();
  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

EcService::~EcService() { shutdown(true); }

EcFuture EcService::submit_encode(const CodecKey& key,
                                  std::span<const std::uint8_t> data,
                                  std::span<std::uint8_t> parity,
                                  std::size_t unit_size,
                                  std::chrono::nanoseconds timeout) {
  const ec::CodeParams params = params_of(key);
  params.validate();
  ec::packet_bytes(params, unit_size);  // throws on a bad unit size
  if (data.size() != params.k * unit_size)
    throw std::invalid_argument("submit_encode: data span must be k units");
  if (parity.size() != params.r * unit_size)
    throw std::invalid_argument("submit_encode: parity span must be r units");

  EcRequest req;
  req.kind = RequestKind::Encode;
  req.key = key;
  req.unit_size = unit_size;
  req.in = data;
  req.out = parity;
  if (timeout != nanoseconds{0}) req.deadline = Clock::now() + timeout;
  return submit(std::move(req), data.size() + parity.size());
}

EcFuture EcService::submit_decode(const CodecKey& key,
                                  std::span<std::uint8_t> stripe,
                                  std::span<const std::size_t> erased_ids,
                                  std::size_t unit_size,
                                  std::chrono::nanoseconds timeout) {
  const ec::CodeParams params = params_of(key);
  params.validate();
  ec::packet_bytes(params, unit_size);
  if (stripe.size() != params.n() * unit_size)
    throw std::invalid_argument("submit_decode: stripe span must be n units");
  for (std::size_t id : erased_ids)
    if (id >= params.n())
      throw std::invalid_argument("submit_decode: erased id out of range");

  EcRequest req;
  req.kind = RequestKind::Decode;
  req.key = key;
  req.unit_size = unit_size;
  req.stripe = stripe;
  req.erased.assign(erased_ids.begin(), erased_ids.end());
  if (timeout != nanoseconds{0}) req.deadline = Clock::now() + timeout;
  return submit(std::move(req), stripe.size());
}

EcFuture EcService::submit(EcRequest request, std::size_t payload_bytes) {
  submitted_.fetch_add(1, std::memory_order_relaxed);

  PendingRequest pending;
  pending.req = std::move(request);
  pending.completion = std::make_shared<detail::Completion>();
  pending.submitted = Clock::now();
  pending.payload_bytes = payload_bytes;
  // Kept aside: push() consumes `pending`, and a rejection must still be
  // able to complete the caller's future.
  std::shared_ptr<detail::Completion> completion = pending.completion;
  const Clock::time_point submitted = pending.submitted;
  EcFuture future(completion);

  if (!accepting_.load(std::memory_order_acquire)) {
    complete(pending, RequestStatus::Shutdown, {}, submitted, submitted, 0);
    return future;
  }

  switch (former_.push(std::move(pending))) {
    case PushResult::Accepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      break;
    case PushResult::QueueFull: {
      PendingRequest rejected;
      rejected.completion = std::move(completion);
      rejected.submitted = submitted;
      const auto now = Clock::now();
      complete(rejected, RequestStatus::Overloaded, {}, now, now, 0);
      break;
    }
    case PushResult::Closed: {
      PendingRequest rejected;
      rejected.completion = std::move(completion);
      rejected.submitted = submitted;
      const auto now = Clock::now();
      complete(rejected, RequestStatus::Shutdown, {}, now, now, 0);
      break;
    }
  }
  return future;
}

void EcService::shutdown(bool drain) {
  std::lock_guard lock(shutdown_mutex_);
  if (stopped_) return;
  stopped_ = true;
  accepting_.store(false, std::memory_order_release);

  if (config_.num_workers == 0) {
    if (drain) run_pending();
    former_.close();
  } else if (drain) {
    // Workers keep popping batches after close() until the queue is
    // empty, then see the empty batch and exit.
    former_.close();
  } else {
    // Snatch everything still queued before closing so it completes as
    // Shutdown instead of being executed. A worker mid-pop may still win
    // a final batch; that batch simply executes — the guarantee is that
    // nothing *newly* dequeues for execution after this.
    auto abandoned = former_.drain_all();
    former_.close();
    const auto now = Clock::now();
    for (PendingRequest& p : abandoned)
      complete(p, RequestStatus::Shutdown, {}, now, now, 0);
  }

  for (std::thread& t : workers_) t.join();
  workers_.clear();

  // Manual-pump leftovers (shutdown(false), or requests pushed between
  // the last run_pending() and close()).
  auto left = former_.drain_all();
  const auto now = Clock::now();
  for (PendingRequest& p : left)
    complete(p, RequestStatus::Shutdown, {}, now, now, 0);
}

std::size_t EcService::run_pending() {
  std::size_t completed = 0;
  std::vector<PendingRequest> batch;
  while (former_.try_next_batch(batch)) {
    completed += batch.size();
    execute_batch(batch);
    batch.clear();
  }
  return completed;
}

void EcService::worker_loop() {
  for (;;) {
    std::vector<PendingRequest> batch = former_.next_batch();
    if (batch.empty()) return;  // closed and drained
    execute_batch(batch);
  }
}

EcService::CodecSlot& EcService::codec_slot(const CodecKey& key) {
  std::lock_guard lock(codecs_mutex_);
  auto it = codecs_.find(key);
  if (it == codecs_.end()) {
    auto slot = std::make_unique<CodecSlot>(params_of(key), key.family);
    slot->codec.set_schedule(config_.schedule);
    it = codecs_.emplace(key, std::move(slot)).first;
  }
  return *it->second;
}

void EcService::execute_batch(std::vector<PendingRequest>& batch) {
  const auto formed = Clock::now();

  // Deadline enforcement happens here, not at completion: an expired
  // request must never spend kernel time.
  std::vector<PendingRequest*> live;
  live.reserve(batch.size());
  for (PendingRequest& p : batch) {
    if (p.req.deadline < formed)
      complete(p, RequestStatus::Expired, {}, formed, formed, 0);
    else
      live.push_back(&p);
  }
  if (live.empty()) {
    empty_flushes_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  std::size_t batch_bytes = 0;
  for (const PendingRequest* p : live) batch_bytes += p->payload_bytes;
  const int gemm_threads = effective_gemm_threads(
      batch_bytes / sizeof(std::uint64_t), tensor::ThreadPool::shared().size(),
      std::max<std::size_t>(1, config_.num_workers));

  batches_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(stats_mutex_);
    hist_.batch_width.record(live.size());
    hist_.gemm_threads.record(static_cast<std::uint64_t>(gemm_threads));
  }

  // All requests of a batch share (kind, key) — the batch former's lane
  // invariant — so one codec serves the whole batch.
  CodecSlot& slot = codec_slot(live.front()->req.key);
  std::vector<RequestStatus> status(live.size(), RequestStatus::Ok);
  std::vector<std::string> error(live.size());

  const auto run_singly = [&](auto&& one) {
    // Isolation fallback: a failing request must not poison batchmates.
    for (std::size_t i = 0; i < live.size(); ++i) {
      try {
        one(*live[i]);
      } catch (const std::exception& e) {
        status[i] = RequestStatus::Failed;
        error[i] = e.what();
      }
    }
  };

  if (live.front()->req.kind == RequestKind::Encode) {
    std::vector<ec::CoderBatchItem> items;
    items.reserve(live.size());
    for (const PendingRequest* p : live)
      items.push_back({p->req.in, p->req.out, p->req.unit_size});
    try {
      slot.codec.encode_batch(items, gemm_threads);
    } catch (const std::exception&) {
      run_singly([&](PendingRequest& p) {
        slot.codec.encode(p.req.in, p.req.out, p.req.unit_size);
      });
    }
  } else {
    std::vector<core::Codec::DecodeBatchItem> items;
    items.reserve(live.size());
    for (const PendingRequest* p : live)
      items.push_back({p->req.stripe, p->req.erased, p->req.unit_size});
    // decode mutates the per-codec plan cache; serialize per key.
    std::lock_guard decode_lock(slot.decode_mutex);
    try {
      slot.codec.decode_batch(items, gemm_threads);
    } catch (const std::exception&) {
      run_singly([&](PendingRequest& p) {
        slot.codec.decode(p.req.stripe, p.req.erased, p.req.unit_size);
      });
    }
  }

  const auto end = Clock::now();
  for (std::size_t i = 0; i < live.size(); ++i)
    complete(*live[i], status[i], std::move(error[i]), formed, end,
             live.size());
}

void EcService::complete(PendingRequest& p, RequestStatus status,
                         std::string error, Clock::time_point formed,
                         Clock::time_point end, std::size_t batch_size) {
  EcResult result;
  result.status = status;
  result.error = std::move(error);
  result.queue_wait = duration_cast<nanoseconds>(formed - p.submitted);
  result.service_time = duration_cast<nanoseconds>(end - formed);
  result.total = duration_cast<nanoseconds>(end - p.submitted);
  result.batch_size = batch_size;

  switch (status) {
    case RequestStatus::Ok:
      completed_ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Expired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Failed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Overloaded:
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Shutdown:
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Pending:
      break;  // unreachable: completions always carry a terminal status
  }

  // Latency histograms describe the served path; admission rejections
  // (sub-microsecond by design) would only distort the low buckets.
  if (status == RequestStatus::Ok || status == RequestStatus::Failed ||
      status == RequestStatus::Expired) {
    std::lock_guard lock(stats_mutex_);
    hist_.queue_wait_ns.record(
        static_cast<std::uint64_t>(result.queue_wait.count()));
    hist_.total_ns.record(static_cast<std::uint64_t>(result.total.count()));
    if (status != RequestStatus::Expired)
      hist_.service_ns.record(
          static_cast<std::uint64_t>(result.service_time.count()));
  }

  p.completion->complete(std::move(result));
}

ServeStatsSnapshot EcService::stats() const {
  ServeStatsSnapshot out;
  {
    std::lock_guard lock(stats_mutex_);
    out = hist_;
  }
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  out.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  out.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  out.expired = expired_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.empty_flushes = empty_flushes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace tvmec::serve
