#include "serve/ec_service.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/backends.h"
#include "ec/code_params.h"
#include "ec/decoder.h"
#include "ec/encoder.h"
#include "tensor/threadpool.h"
#include "tensor/variant.h"

namespace tvmec::serve {

using std::chrono::duration_cast;
using std::chrono::nanoseconds;

namespace {

/// The ablation switch: batching=false turns the service into a
/// one-request-at-a-time executor without touching any other policy.
BatchPolicy effective_policy(const ServiceConfig& config) {
  BatchPolicy p = config.batch;
  if (!config.batching) p.max_batch_requests = 1;
  return p;
}

ec::CodeParams params_of(const CodecKey& key) {
  return ec::CodeParams{key.k, key.r, key.w};
}

std::string describe_key(const CodecKey& key) {
  return "k=" + std::to_string(key.k) + ",r=" + std::to_string(key.r) +
         ",w=" + std::to_string(key.w);
}

std::int64_t to_epoch_ns(Clock::time_point t) {
  return duration_cast<nanoseconds>(t.time_since_epoch()).count();
}

}  // namespace

const char* to_string(RequestStatus s) noexcept {
  switch (s) {
    case RequestStatus::Pending:
      return "pending";
    case RequestStatus::Ok:
      return "ok";
    case RequestStatus::Overloaded:
      return "overloaded";
    case RequestStatus::Expired:
      return "expired";
    case RequestStatus::Shutdown:
      return "shutdown";
    case RequestStatus::Failed:
      return "failed";
    case RequestStatus::Cancelled:
      return "cancelled";
    case RequestStatus::Shed:
      return "shed";
  }
  return "?";
}

const char* to_string(HealthState s) noexcept {
  switch (s) {
    case HealthState::Ok:
      return "ok";
    case HealthState::Degraded:
      return "degraded";
    case HealthState::Unhealthy:
      return "unhealthy";
  }
  return "?";
}

tensor::Schedule default_service_schedule() {
  tensor::Schedule s = tensor::default_schedule();
  // The representative tuned shape from the encode benches: a wide
  // register tile with cache blocking over the (long, batched) N axis.
  s.tile_m = 8;
  s.tile_n = 16;
  s.block_n = 512;
  s.par_axis = tensor::ParAxis::N;
  // Open the thread knob to the whole pool; effective_gemm_threads()
  // narrows it per batch.
  s.num_threads = static_cast<int>(
      std::min<std::size_t>(tensor::ThreadPool::shared().size(), 256));
  return s;
}

int EcService::effective_gemm_threads(std::size_t batch_words,
                                      std::size_t pool_width,
                                      std::size_t service_workers) noexcept {
  if (pool_width == 0) pool_width = 1;
  if (service_workers == 0) service_workers = 1;  // manual pump = one driver
  const std::size_t fair_share =
      std::max<std::size_t>(1, pool_width / service_workers);
  const std::size_t by_work =
      std::max<std::size_t>(1, batch_words / kMinWordsPerGemmThread);
  return static_cast<int>(
      std::min({fair_share, by_work, std::size_t{256}}));
}

EcService::EcService(const ServiceConfig& config)
    : config_(config),
      plan_cache_(config.plan_cache ? config.plan_cache
                                    : std::make_shared<core::PlanCache>()),
      former_(effective_policy(config)) {
  if (!config_.schedule.valid())
    throw std::invalid_argument("EcService: invalid schedule");
  config_.batch = former_.policy();

  const std::size_t slots = std::max<std::size_t>(1, config_.num_workers);
  busy_since_ = std::make_unique<std::atomic<std::int64_t>[]>(slots);
  worker_stuck_ = std::make_unique<std::atomic<bool>[]>(slots);

  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
  if (config_.watchdog.enabled)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

EcService::~EcService() { shutdown(true); }

EcFuture EcService::submit_encode(const CodecKey& key,
                                  std::span<const std::uint8_t> data,
                                  std::span<std::uint8_t> parity,
                                  std::size_t unit_size,
                                  std::chrono::nanoseconds timeout) {
  EcRequest req;
  req.kind = RequestKind::Encode;
  req.key = key;
  req.unit_size = unit_size;
  req.in = data;
  req.out = parity;
  if (timeout != nanoseconds{0}) req.deadline = Clock::now() + timeout;
  return submit_request(std::move(req));
}

EcFuture EcService::submit_decode(const CodecKey& key,
                                  std::span<std::uint8_t> stripe,
                                  std::span<const std::size_t> erased_ids,
                                  std::size_t unit_size,
                                  std::chrono::nanoseconds timeout) {
  EcRequest req;
  req.kind = RequestKind::Decode;
  req.key = key;
  req.unit_size = unit_size;
  req.stripe = stripe;
  req.erased.assign(erased_ids.begin(), erased_ids.end());
  if (timeout != nanoseconds{0}) req.deadline = Clock::now() + timeout;
  return submit_request(std::move(req));
}

std::size_t EcService::validate_request(const EcRequest& request) {
  const ec::CodeParams params = params_of(request.key);
  params.validate();
  ec::packet_bytes(params, request.unit_size);  // throws on a bad unit size

  std::size_t payload_bytes = 0;
  if (request.kind == RequestKind::Encode) {
    if (request.in.size() != params.k * request.unit_size)
      throw std::invalid_argument("submit_encode: data span must be k units");
    if (request.out.size() != params.r * request.unit_size)
      throw std::invalid_argument(
          "submit_encode: parity span must be r units");
    payload_bytes = request.in.size() + request.out.size();
  } else {
    if (request.stripe.size() != params.n() * request.unit_size)
      throw std::invalid_argument(
          "submit_decode: stripe span must be n units");
    for (std::size_t id : request.erased)
      if (id >= params.n())
        throw std::invalid_argument("submit_decode: erased id out of range");
    payload_bytes = request.stripe.size();
  }
  return payload_bytes;
}

EcFuture EcService::submit_request(EcRequest request) {
  const std::size_t payload_bytes = validate_request(request);
  return submit(std::move(request), payload_bytes);
}

EcFuture EcService::submit(EcRequest request, std::size_t payload_bytes) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (config_.request_observer)
    config_.request_observer({RequestEvent::Kind::Submitted, request.tenant,
                              RequestStatus::Pending, /*admitted=*/false});

  PendingRequest pending;
  pending.req = std::move(request);
  pending.completion = std::make_shared<detail::Completion>();
  pending.submitted = Clock::now();
  pending.payload_bytes = payload_bytes;
  // Kept aside: push() consumes `pending`, and a rejection must still be
  // able to complete the caller's future (and bill the right tenant).
  std::shared_ptr<detail::Completion> completion = pending.completion;
  const Clock::time_point submitted = pending.submitted;
  const TenantId tenant = pending.req.tenant;
  EcFuture future(completion);

  if (!accepting_.load(std::memory_order_acquire)) {
    complete(pending, RequestStatus::Shutdown, {}, submitted, submitted, 0,
             /*admitted=*/false);
    return future;
  }

  const auto reject = [&](RequestStatus status) {
    PendingRequest rejected;
    rejected.completion = std::move(completion);
    rejected.submitted = submitted;
    rejected.req.tenant = tenant;
    const auto now = Clock::now();
    complete(rejected, status, {}, now, now, 0, /*admitted=*/false);
  };

  switch (former_.push(std::move(pending))) {
    case PushResult::Accepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      if (config_.request_observer)
        config_.request_observer(
            {RequestEvent::Kind::Accepted, tenant, RequestStatus::Pending,
             /*admitted=*/true});
      break;
    case PushResult::QueueFull:
      reject(RequestStatus::Overloaded);
      break;
    case PushResult::Shed:
      reject(RequestStatus::Shed);
      break;
    case PushResult::Closed:
      reject(RequestStatus::Shutdown);
      break;
  }
  return future;
}

void EcService::shutdown(bool drain) {
  std::lock_guard lock(shutdown_mutex_);
  if (stopped_) return;
  stopped_ = true;
  accepting_.store(false, std::memory_order_release);
  stopped_flag_.store(true, std::memory_order_release);

  if (!drain) {
    // Abort in-flight batches at their next tile-chunk poll; their live
    // members complete as Shutdown (the drained bucket).
    aborting_.store(true, std::memory_order_release);
    std::lock_guard il(inflight_mutex_);
    for (auto& [id, batch] : inflight_) {
      batch.source.request_cancel();
      batch.aborted = true;
    }
  }

  if (config_.num_workers == 0) {
    if (drain) run_pending();
    former_.close();
  } else if (drain) {
    // Workers keep popping batches after close() until the queue is
    // empty, then see the empty batch and exit.
    former_.close();
  } else {
    // Snatch everything still queued before closing so it completes as
    // Shutdown instead of being executed. A worker mid-pop may still win
    // a final batch; that batch simply executes — the guarantee is that
    // nothing *newly* dequeues for execution after this.
    auto abandoned = former_.drain_all();
    former_.close();
    const auto now = Clock::now();
    for (PendingRequest& p : abandoned)
      complete(p, RequestStatus::Shutdown, {}, now, now, 0,
               /*admitted=*/true);
  }

  for (std::thread& t : workers_) t.join();
  workers_.clear();

  if (watchdog_.joinable()) {
    {
      std::lock_guard wl(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }

  // Manual-pump leftovers (shutdown(false), or requests pushed between
  // the last run_pending() and close()).
  auto left = former_.drain_all();
  const auto now = Clock::now();
  for (PendingRequest& p : left)
    complete(p, RequestStatus::Shutdown, {}, now, now, 0, /*admitted=*/true);
}

std::size_t EcService::run_pending() {
  return run_pending(static_cast<std::size_t>(-1));
}

std::size_t EcService::run_pending(std::size_t max_batches) {
  std::size_t completed = 0;
  std::vector<PendingRequest> batch;
  for (std::size_t b = 0; b < max_batches && former_.try_next_batch(batch);
       ++b) {
    completed += batch.size();
    execute_batch(batch, kNoWorker);
    batch.clear();
  }
  return completed;
}

void EcService::install_schedule(const CodecKey& key,
                                 const tensor::Schedule& schedule) {
  if (!schedule.valid())
    throw std::invalid_argument("install_schedule: invalid schedule");
  CodecSlot& slot = codec_slot(key);
  // Exclusive against the shared locks every executing batch holds: the
  // install waits for in-flight batches on this codec, and no kernel
  // ever reads a half-written schedule.
  std::unique_lock lock(slot.schedule_mutex);
  slot.codec.set_schedule(schedule);
}

void EcService::worker_loop(std::size_t index) {
  for (;;) {
    std::vector<PendingRequest> batch = former_.next_batch();
    if (batch.empty()) return;  // closed and drained
    execute_batch(batch, index);
  }
}

EcService::CodecSlot& EcService::codec_slot(const CodecKey& key) {
  std::lock_guard lock(codecs_mutex_);
  auto it = codecs_.find(key);
  if (it == codecs_.end()) {
    auto slot = std::make_unique<CodecSlot>(params_of(key), key.family,
                                            config_.breaker);
    slot->codec.set_schedule(config_.schedule);
    // Every slot shares the service's plan cache: a loss pattern planned
    // for any key/consumer is an inversion nobody pays again.
    slot->codec.set_plan_cache(plan_cache_);
    it = codecs_.emplace(key, std::move(slot)).first;
  }
  return *it->second;
}

void EcService::watchdog_loop() {
  const auto poll = std::max<std::chrono::nanoseconds>(
      config_.watchdog.poll, std::chrono::microseconds(100));
  std::unique_lock lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, poll);
    if (watchdog_stop_) break;
    lock.unlock();

    const auto now = Clock::now();
    {
      // Abort batches nobody is waiting for anymore: every member is
      // client-cancelled or past its deadline. A batch with even one
      // live member runs to completion (its output is still wanted).
      std::lock_guard il(inflight_mutex_);
      for (auto& [id, batch] : inflight_) {
        if (batch.aborted || batch.members.empty()) continue;
        bool all_dead = true;
        for (const InflightBatch::Member& m : batch.members)
          if (!member_dead(m, now)) {
            all_dead = false;
            break;
          }
        if (all_dead) {
          batch.source.request_cancel();
          batch.aborted = true;
          watchdog_aborts_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }

    // Stuck-worker scan: a worker heartbeat older than the budget flags
    // the worker (and degrades health()) until its batch completes.
    const std::int64_t now_ns = to_epoch_ns(now);
    const std::int64_t budget = config_.watchdog.stuck_budget.count();
    for (std::size_t i = 0; i < config_.num_workers; ++i) {
      const std::int64_t busy =
          busy_since_[i].load(std::memory_order_acquire);
      const bool stuck = busy != 0 && now_ns - busy > budget;
      if (stuck && !worker_stuck_[i].load(std::memory_order_relaxed))
        watchdog_stuck_.fetch_add(1, std::memory_order_relaxed);
      worker_stuck_[i].store(stuck, std::memory_order_release);
    }

    lock.lock();
  }
}

void EcService::execute_batch(std::vector<PendingRequest>& batch,
                              std::size_t worker) {
  const auto formed = Clock::now();

  // Heartbeat for the watchdog's stuck scan (worker threads only; a
  // manual pump has no slot).
  std::atomic<std::int64_t>* heartbeat =
      worker != kNoWorker ? &busy_since_[worker] : nullptr;
  if (heartbeat) heartbeat->store(to_epoch_ns(formed), std::memory_order_release);
  struct HeartbeatClear {
    std::atomic<std::int64_t>* slot;
    std::atomic<bool>* stuck;
    ~HeartbeatClear() {
      if (slot) slot->store(0, std::memory_order_release);
      if (stuck) stuck->store(false, std::memory_order_release);
    }
  } heartbeat_clear{heartbeat,
                    worker != kNoWorker ? &worker_stuck_[worker] : nullptr};

  // Deadline and cancellation enforcement happens here, not at
  // completion: a dead request must never spend kernel time.
  std::vector<PendingRequest*> live;
  live.reserve(batch.size());
  for (PendingRequest& p : batch) {
    if (p.completion->cancel_requested() || p.req.cancel.cancelled())
      complete(p, RequestStatus::Cancelled, {}, formed, formed, 0,
               /*admitted=*/true);
    else if (p.req.deadline < formed)
      complete(p, RequestStatus::Expired, {}, formed, formed, 0,
               /*admitted=*/true);
    else
      live.push_back(&p);
  }
  if (live.empty()) {
    empty_flushes_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  std::size_t batch_bytes = 0;
  for (const PendingRequest* p : live) batch_bytes += p->payload_bytes;
  // executor_hint lets the sharded front divide the fork-join pool by
  // the fleet-wide number of concurrent batch executors, not just this
  // service's own workers.
  const std::size_t executors = config_.executor_hint != 0
                                    ? config_.executor_hint
                                    : std::max<std::size_t>(
                                          1, config_.num_workers);
  const int gemm_threads = effective_gemm_threads(
      batch_bytes / sizeof(std::uint64_t), tensor::ThreadPool::shared().size(),
      executors);

  batches_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(stats_mutex_);
    hist_.batch_width.record(live.size());
    hist_.gemm_threads.record(static_cast<std::uint64_t>(gemm_threads));
  }

  // All requests of a batch share (kind, key) — the batch former's lane
  // invariant — so one codec serves the whole batch.
  const RequestKind kind = live.front()->req.kind;
  const CodecKey& key = live.front()->req.key;
  CodecSlot& slot = codec_slot(key);
  std::vector<RequestStatus> status(live.size(), RequestStatus::Ok);
  std::vector<std::string> error(live.size());
  std::vector<char> done(live.size(), 0);

  // Register with the watchdog: the batch-wide token the kernel polls,
  // plus each member's death criteria (client flags + deadline).
  std::uint64_t batch_id;
  tensor::CancelToken batch_token;
  {
    std::lock_guard il(inflight_mutex_);
    batch_id = next_batch_id_++;
    InflightBatch& inflight = inflight_[batch_id];
    inflight.members.reserve(live.size());
    for (const PendingRequest* p : live)
      inflight.members.push_back(
          {p->completion, p->req.cancel, p->req.deadline});
    batch_token = inflight.source.token();
    if (aborting_.load(std::memory_order_acquire)) {
      inflight.source.request_cancel();
      inflight.aborted = true;
    }
  }

  // Per-item executors: the primary codec for the singly-rescue and
  // defensive paths (uncancellable — one item is the smallest work unit).
  const auto encode_one = [&](PendingRequest& p) {
    slot.codec.encode(p.req.in, p.req.out, p.req.unit_size);
  };
  const auto decode_one = [&](PendingRequest& p) {
    slot.codec.decode(p.req.stripe, p.req.erased, p.req.unit_size);
  };
  const auto run_one = [&](std::size_t i) {
    try {
      if (kind == RequestKind::Encode)
        encode_one(*live[i]);
      else
        decode_one(*live[i]);
    } catch (const std::exception& e) {
      status[i] = RequestStatus::Failed;
      error[i] = e.what();
    }
    done[i] = 1;
  };

  // Isolation fallback: a failing request must not poison batchmates.
  // Polls the batch token between items so an abandoned batch stops
  // mid-rescue too.
  bool aborted = false;
  const auto run_singly = [&] {
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (done[i]) continue;
      if (batch_token.cancelled()) {
        aborted = true;
        return;
      }
      run_one(i);
    }
  };

  // Degraded executor: the naive reference backend — byte-identical to
  // the GEMM path (same bitpacket embedding), only slower. Per-item, so
  // one bad request cannot poison batchmates, with the same token poll.
  const auto run_degraded = [&] {
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (batch_token.cancelled()) {
        aborted = true;
        return;
      }
      PendingRequest& p = *live[i];
      try {
        if (kind == RequestKind::Encode) {
          ec::MatrixCoder* naive;
          {
            std::lock_guard gl(slot.degraded_mutex);
            if (!slot.naive_encoder)
              slot.naive_encoder = core::make_coder(
                  core::Backend::NaiveBitmatrix,
                  slot.codec.code().parity_matrix());
            naive = slot.naive_encoder.get();
          }
          naive->apply(p.req.in, p.req.out, p.req.unit_size);
        } else {
          // Plan + naive recovery coder per erasure pattern, cached.
          // Caller already holds decode_mutex for decode batches.
          std::vector<std::size_t> erased(p.req.erased.begin(),
                                          p.req.erased.end());
          std::sort(erased.begin(), erased.end());
          erased.erase(std::unique(erased.begin(), erased.end()),
                       erased.end());
          if (erased.empty()) {
            done[i] = 1;
            continue;
          }
          auto it = slot.naive_decode_cache.find(erased);
          if (it == slot.naive_decode_cache.end()) {
            // Plans come from the shared cache (same plans the primary
            // path uses — the breaker degrades the *executor*, not the
            // math); only the naive coder stays slot-local.
            auto plan = plan_cache_->get_or_build(
                core::PlanKey{p.req.key.k, p.req.key.r, p.req.key.w,
                              p.req.key.family, false, erased},
                [&]() {
                  return ec::make_decode_plan(slot.codec.code().generator(),
                                              erased);
                });
            if (!plan)
              throw std::runtime_error(
                  "decode: erasure pattern is unrecoverable");
            auto coder = core::make_coder(core::Backend::NaiveBitmatrix,
                                          plan->recovery);
            it = slot.naive_decode_cache
                     .emplace(erased, CodecSlot::NaivePlan{
                                          std::move(plan), std::move(coder)})
                     .first;
          }
          const ec::DecodePlan& plan = *it->second.plan;
          const std::size_t unit = p.req.unit_size;
          std::vector<std::uint8_t> in(plan.survivors.size() * unit);
          std::vector<std::uint8_t> out(plan.erased.size() * unit);
          for (std::size_t s = 0; s < plan.survivors.size(); ++s)
            std::copy_n(p.req.stripe.data() + plan.survivors[s] * unit, unit,
                        in.data() + s * unit);
          it->second.coder->apply(in, out, unit);
          for (std::size_t s = 0; s < plan.erased.size(); ++s)
            std::copy_n(out.data() + s * unit,  unit,
                        p.req.stripe.data() + plan.erased[s] * unit);
        }
      } catch (const std::exception& e) {
        status[i] = RequestStatus::Failed;
        error[i] = e.what();
      }
      done[i] = 1;
    }
  };

  CircuitBreaker& breaker =
      kind == RequestKind::Encode ? slot.encode_breaker : slot.decode_breaker;
  const BreakerDecision decision = breaker.allow_primary(formed);

  {
    // Shared against install_schedule()'s exclusive lock: batches of one
    // codec may run concurrently with each other, never with a schedule
    // swap on that codec.
    std::shared_lock sched_lock(slot.schedule_mutex);
    // decode mutates the per-codec plan cache (primary and naive);
    // serialize per key. Encode paths are immutable-state and take no
    // lock beyond the schedule guard.
    std::unique_lock<std::mutex> decode_lock;
    if (kind == RequestKind::Decode)
      decode_lock = std::unique_lock(slot.decode_mutex);

    if (decision == BreakerDecision::Degrade) {
      degraded_batches_.fetch_add(1, std::memory_order_relaxed);
      run_degraded();
    } else {
      try {
        if (config_.fault_injector &&
            config_.fault_injector(kind, key, live.size()))
          throw std::runtime_error("injected backend fault");
        if (kind == RequestKind::Encode) {
          std::vector<ec::CoderBatchItem> items;
          items.reserve(live.size());
          for (const PendingRequest* p : live)
            items.push_back({p->req.in, p->req.out, p->req.unit_size});
          slot.codec.encode_batch(items, gemm_threads, batch_token);
        } else {
          std::vector<core::Codec::DecodeBatchItem> items;
          items.reserve(live.size());
          for (const PendingRequest* p : live)
            items.push_back({p->req.stripe, p->req.erased, p->req.unit_size});
          slot.codec.decode_batch(items, gemm_threads, batch_token);
        }
        breaker.record(decision, true, Clock::now());
        std::fill(done.begin(), done.end(), 1);
      } catch (const tensor::Cancelled&) {
        // An aborted batch is not a backend verdict: release any probe
        // reservation without recording success or failure.
        breaker.abandon(decision);
        aborted = true;
      } catch (const std::exception&) {
        breaker.record(decision, false, Clock::now());
        run_singly();
      }
    }

    if (aborted) {
      // The kernel stopped mid-batch. Classify every unexecuted member:
      // shutdown abort, client cancel, or deadline expiry. The defensive
      // arm (a live member in an aborted batch — only reachable through
      // races with shutdown) re-runs the request to completion so no
      // accepted request is ever dropped.
      const auto now = Clock::now();
      const bool shutting_down = aborting_.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (done[i]) continue;
        PendingRequest& p = *live[i];
        if (p.completion->cancel_requested() || p.req.cancel.cancelled())
          status[i] = RequestStatus::Cancelled;
        else if (now > p.req.deadline)
          status[i] = RequestStatus::Expired;
        else if (shutting_down)
          status[i] = RequestStatus::Shutdown;
        else
          run_one(i);
      }
    }
  }

  {
    std::lock_guard il(inflight_mutex_);
    inflight_.erase(batch_id);
  }

  const auto end = Clock::now();
  // Feed the shedder's service-time estimate from batches that ran to
  // completion; aborted batches stopped mid-kernel, so their truncated
  // duration would bias the prediction low and under-shed.
  if (!aborted) former_.note_service_time(end - formed);
  for (std::size_t i = 0; i < live.size(); ++i)
    complete(*live[i], status[i], std::move(error[i]), formed, end,
             live.size(), /*admitted=*/true);
}

void EcService::complete(PendingRequest& p, RequestStatus status,
                         std::string error, Clock::time_point formed,
                         Clock::time_point end, std::size_t batch_size,
                         bool admitted) {
  EcResult result;
  result.status = status;
  result.error = std::move(error);
  result.queue_wait = duration_cast<nanoseconds>(formed - p.submitted);
  result.service_time = duration_cast<nanoseconds>(end - formed);
  result.total = duration_cast<nanoseconds>(end - p.submitted);
  result.batch_size = batch_size;

  switch (status) {
    case RequestStatus::Ok:
      completed_ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Expired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Failed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Cancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Overloaded:
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Shed:
      rejected_shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Shutdown:
      // Two buckets keep both counter identities exact: an admitted
      // request abandoned by shutdown is drained (it counts against
      // `accepted`), a request rejected at submit never was.
      if (admitted)
        shutdown_drained_.fetch_add(1, std::memory_order_relaxed);
      else
        rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::Pending:
      break;  // unreachable: completions always carry a terminal status
  }

  // Latency histograms describe the served path; admission rejections
  // (sub-microsecond by design) would only distort the low buckets.
  if (status == RequestStatus::Ok || status == RequestStatus::Failed ||
      status == RequestStatus::Expired) {
    std::lock_guard lock(stats_mutex_);
    hist_.queue_wait_ns.record(
        static_cast<std::uint64_t>(result.queue_wait.count()));
    hist_.total_ns.record(static_cast<std::uint64_t>(result.total.count()));
    if (status != RequestStatus::Expired)
      hist_.service_ns.record(
          static_cast<std::uint64_t>(result.service_time.count()));
  }

  // Observer fires before the future unblocks so a caller that waits on
  // the result always observes tenant counters that already include it.
  if (config_.request_observer)
    config_.request_observer(
        {RequestEvent::Kind::Completed, p.req.tenant, status, admitted});

  p.completion->complete(std::move(result));
}

ServeStatsSnapshot EcService::stats() const {
  ServeStatsSnapshot out;
  {
    std::lock_guard lock(stats_mutex_);
    out = hist_;
  }
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  out.rejected_shed = rejected_shed_.load(std::memory_order_relaxed);
  out.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  out.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  out.expired = expired_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.cancelled = cancelled_.load(std::memory_order_relaxed);
  out.shutdown_drained = shutdown_drained_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.empty_flushes = empty_flushes_.load(std::memory_order_relaxed);
  out.degraded_batches = degraded_batches_.load(std::memory_order_relaxed);
  out.watchdog_aborts = watchdog_aborts_.load(std::memory_order_relaxed);
  out.watchdog_stuck = watchdog_stuck_.load(std::memory_order_relaxed);
  {
    const core::PlanCacheStats pc = plan_cache_->stats();
    out.plan_cache_hits = pc.hits;
    out.plan_cache_misses = pc.misses;
  }
  {
    std::lock_guard lock(codecs_mutex_);
    for (const auto& [key, slot] : codecs_) {
      for (const CircuitBreaker* b :
           {&slot->encode_breaker, &slot->decode_breaker}) {
        const CircuitBreaker::Counters c = b->counters();
        out.breaker_trips += c.trips;
        out.breaker_recoveries += c.recoveries;
        out.breaker_probes += c.probes;
      }
    }
  }
  return out;
}

HealthSnapshot EcService::health() const {
  HealthSnapshot h;
  h.kernel_variant = tensor::to_string(tensor::active_variant());
  if (config_.buffer_pool) {
    h.has_pool = true;
    h.pool = config_.buffer_pool->stats();
  }
  if (stopped_flag_.load(std::memory_order_acquire)) {
    h.state = HealthState::Unhealthy;
    h.reasons.push_back("service is shut down");
    return h;
  }

  std::size_t stuck = 0;
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    if (worker_stuck_[i].load(std::memory_order_acquire)) {
      ++stuck;
      h.reasons.push_back("worker " + std::to_string(i) +
                          " stuck past watchdog budget");
    }
  }

  {
    std::lock_guard lock(codecs_mutex_);
    for (const auto& [key, slot] : codecs_) {
      const BreakerState enc = slot->encode_breaker.state();
      const BreakerState dec = slot->decode_breaker.state();
      if (enc != BreakerState::Closed)
        h.reasons.push_back("codec " + describe_key(key) +
                            " encode breaker " + to_string(enc));
      if (dec != BreakerState::Closed)
        h.reasons.push_back("codec " + describe_key(key) +
                            " decode breaker " + to_string(dec));
    }
  }

  if (config_.num_workers > 0 && stuck == config_.num_workers)
    h.state = HealthState::Unhealthy;
  else if (!h.reasons.empty())
    h.state = HealthState::Degraded;
  return h;
}

}  // namespace tvmec::serve
