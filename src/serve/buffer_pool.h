#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "tensor/buffer.h"

/// Registered buffer pool for zero-copy serving.
///
/// The serving stack's buffer contract (see request.h) already lets the
/// kernels read client payloads in place — but only buffers that satisfy
/// the word fast path's preconditions (8-byte alignment; in practice the
/// whole buffer 64-byte aligned) avoid the staged fallback. A
/// RegisteredBuffer is a pooled, 64-byte-aligned allocation that
/// guarantees those preconditions by construction, so a payload written
/// into one flows submit → batch formation → scattered kernel → result
/// with zero intermediate copies. Pooling also recycles the allocations:
/// a serving loop acquires and releases one buffer per request, and the
/// free-list hit means no allocator round trip and no page faulting on
/// the hot path.
///
/// Leases are RAII and keep the pool's state alive: a RegisteredBuffer
/// may safely outlive the BufferPool that issued it (its memory is then
/// simply freed on release instead of recycled).
namespace tvmec::serve {

struct BufferPoolStats {
  std::uint64_t acquires = 0;
  std::uint64_t pool_hits = 0;    ///< served from the free list
  std::uint64_t pool_misses = 0;  ///< required a fresh allocation
  std::uint64_t releases = 0;     ///< returned to the free list
  std::uint64_t discarded = 0;    ///< freed on release (cache full/closed)
  std::size_t bytes_cached = 0;   ///< free-list bytes held right now
  std::size_t bytes_out = 0;      ///< bytes currently leased
  std::size_t high_water_bytes_out = 0;

  double hit_rate() const noexcept {
    return acquires == 0
               ? 0.0
               : static_cast<double>(pool_hits) /
                     static_cast<double>(acquires);
  }
};

class BufferPool;

/// An RAII lease of one registered buffer. Movable, not copyable. The
/// buffer is 64-byte aligned and at least size() bytes; contents of a
/// recycled buffer are whatever the previous tenant left (callers write
/// before they read, and kernel outputs are always fully overwritten).
class RegisteredBuffer {
 public:
  RegisteredBuffer() = default;
  RegisteredBuffer(RegisteredBuffer&&) noexcept = default;
  RegisteredBuffer& operator=(RegisteredBuffer&& other) noexcept {
    if (this != &other) {
      release();
      state_ = std::move(other.state_);
      buf_ = std::move(other.buf_);
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }
  RegisteredBuffer(const RegisteredBuffer&) = delete;
  RegisteredBuffer& operator=(const RegisteredBuffer&) = delete;
  ~RegisteredBuffer() { release(); }

  bool valid() const noexcept { return buf_.data() != nullptr; }
  std::uint8_t* data() noexcept { return buf_.data(); }
  const std::uint8_t* data() const noexcept { return buf_.data(); }
  /// The size requested from acquire() (the capacity may be larger).
  std::size_t size() const noexcept { return size_; }
  std::span<std::uint8_t> span() noexcept { return {buf_.data(), size_}; }
  std::span<const std::uint8_t> span() const noexcept {
    return {buf_.data(), size_};
  }

  /// Returns the buffer to the pool early (also called by the
  /// destructor). Safe on an empty lease.
  void release() noexcept;

 private:
  friend class BufferPool;
  struct State;
  RegisteredBuffer(std::shared_ptr<State> state,
                   tensor::AlignedBuffer<std::uint8_t> buf, std::size_t size)
      : state_(std::move(state)), buf_(std::move(buf)), size_(size) {}

  std::shared_ptr<State> state_;
  tensor::AlignedBuffer<std::uint8_t> buf_;
  std::size_t size_ = 0;
};

class BufferPool {
 public:
  /// `max_cached_bytes` bounds the free list; buffers released past it
  /// are freed instead of recycled.
  explicit BufferPool(std::size_t max_cached_bytes = std::size_t{64} << 20);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Leases a buffer of at least `bytes` bytes (rounded up to a
  /// power-of-two size class, minimum one cache line). Thread-safe.
  /// Throws std::invalid_argument on bytes == 0.
  RegisteredBuffer acquire(std::size_t bytes);

  BufferPoolStats stats() const;

 private:
  std::shared_ptr<RegisteredBuffer::State> state_;
};

}  // namespace tvmec::serve
