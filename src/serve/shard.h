#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/autotune.h"
#include "serve/buffer_pool.h"
#include "serve/ec_service.h"
#include "serve/request.h"
#include "serve/tenant.h"

/// The sharded multi-tenant front: per-core EC service shards with
/// bounded work stealing, tenant QoS, and warm-start continuous
/// autotuning.
///
/// Why shard at all: a single EcService funnels every submitter through
/// one batch-former mutex and one stats block. At per-core request
/// rates that lock (and the cache line ping-pong behind it) becomes the
/// ceiling long before the GEMM does — the same reason ML serving
/// systems run one request queue per worker rather than one global one.
/// The front hashes each client to a shard; a client's requests stay on
/// one shard (affinity keeps its codec slots, buffer pool, and plan
/// cache warm), while different clients spread across shards and never
/// share a queue lock.
///
/// Sharding alone is vulnerable to skew: hash one hot client to shard 3
/// and shard 3 queues while the others idle. The corrective is bounded
/// work stealing — an idle shard worker drains a *bounded* number of
/// batches from the neighbor whose queue-wait EWMA says it is hurting —
/// so the steady state is per-shard locality with skew smoothed at the
/// edges, not a global queue re-invented badly.
namespace tvmec::serve {

/// When and how much an idle shard worker steals.
struct StealPolicy {
  bool enabled = true;
  /// A victim qualifies when its queue-wait EWMA exceeds the thief's
  /// own by this factor (and the absolute floor below) — stealing is
  /// for *relieving pressure*, not for perfectly levelling noise.
  double wait_ratio = 2.0;
  /// Absolute floor: victims waiting less than this are never stolen
  /// from (steal setup costs more than the wait it would save).
  std::chrono::nanoseconds min_victim_wait = std::chrono::microseconds(50);
  /// Batches taken per steal — bounded so a thief relieves a hot shard
  /// without abandoning its own queue.
  std::size_t max_batches = 1;
  /// Idle wait between a worker's own-queue drain and its next steal
  /// scan (bounded so workers notice neighbors' backlogs promptly
  /// without spinning).
  std::chrono::nanoseconds idle_wait = std::chrono::microseconds(500);
};

struct ShardedServiceConfig {
  /// Service shards. 0 = one per hardware thread.
  std::size_t num_shards = 0;
  /// Worker threads *per shard* (owned by the front, so they can steal
  /// across shards). 0 = manual-pump mode: no threads anywhere, the
  /// owner drives all shards via run_pending() — deterministic, used by
  /// tests and the fuzzer.
  std::size_t workers_per_shard = 1;
  /// Template for every shard's EcService. num_workers, buffer_pool,
  /// plan_cache (unless shared, below), executor_hint and
  /// request_observer are overridden per shard; everything else
  /// (batch policy, breaker, watchdog, schedule, fault injector)
  /// applies to each shard as written.
  ServiceConfig shard;
  StealPolicy steal;
  AutotunePolicy autotune;
  /// false turns TenantRegistry into pure accounting: no share
  /// enforcement, no deadline budgets, but per-tenant counters still
  /// balance.
  bool qos_enforcement = true;
  /// Initial tenant policies (tenants not listed here materialize with
  /// the default policy on first use; policies can also be set later
  /// via tenants().set_policy()).
  std::map<TenantId, TenantPolicy> tenant_policies;
  /// Registered-buffer pool bytes per shard (shard-local by default so
  /// payload staging never contends on a cross-shard free-list lock).
  /// 0 = no pools.
  std::size_t pool_bytes_per_shard = std::size_t{32} << 20;
  /// true = one decode-plan cache shared by every shard (a loss pattern
  /// planned anywhere is planned everywhere); false = per-shard caches
  /// (no cross-shard lock, plans warm per shard). The default favors
  /// isolation, matching the shard-local buffer pools.
  bool share_plan_cache = false;
};

/// One shard's view in the front-wide snapshot.
struct ShardStatsSnapshot {
  std::size_t shard = 0;
  ServeStatsSnapshot stats;
  std::chrono::nanoseconds queue_wait_ewma{0};
  bool has_pool = false;
  BufferPoolStats pool;
};

struct ShardedStatsSnapshot {
  /// Sum over shards plus front-level QoS rejections — satisfies the
  /// same identities as a single service's snapshot.
  ServeStatsSnapshot aggregate;
  std::vector<ShardStatsSnapshot> shards;
  /// Per-tenant counters (ascending tenant id) and their sum; the sum
  /// matches `aggregate`'s admission counters by construction.
  std::vector<TenantCounters> tenants;
  TenantCounters tenant_aggregate;
  /// Front-level QoS rejections (also folded into `aggregate`).
  std::uint64_t qos_rejected = 0;
  /// Work stealing: scans that found a qualifying victim, batches
  /// actually stolen, and requests completed by thieves.
  std::uint64_t steal_scans = 0;
  std::uint64_t steal_batches = 0;
  std::uint64_t steal_requests = 0;
  AutotuneStats autotune;
};

struct ShardedHealthSnapshot {
  HealthState state = HealthState::Ok;
  std::vector<std::string> reasons;  ///< prefixed "shard <i>: "
  std::vector<HealthSnapshot> shards;
};

class ShardedEcService {
 public:
  /// Throws std::invalid_argument on an invalid config.
  explicit ShardedEcService(const ShardedServiceConfig& config);
  /// Graceful: shutdown(true).
  ~ShardedEcService();

  ShardedEcService(const ShardedEcService&) = delete;
  ShardedEcService& operator=(const ShardedEcService&) = delete;

  /// Which shard a client hashes to (stable across the front's
  /// lifetime; exposed so tests and clients can reason about
  /// placement).
  static std::size_t shard_of(std::uint64_t client_id,
                              std::size_t num_shards) noexcept;

  std::size_t num_shards() const noexcept { return shards_.size(); }

  /// Tenant-attributed submissions. `client_id` picks the shard (use a
  /// stable per-connection id for affinity); `tenant` is billed.
  /// Validation and buffer-lifetime contracts match EcService. The QoS
  /// layer may reject at the front (Overloaded future, never queued)
  /// when the tenant's occupancy exceeds its weighted share.
  EcFuture submit_encode(TenantId tenant, std::uint64_t client_id,
                         const CodecKey& key,
                         std::span<const std::uint8_t> data,
                         std::span<std::uint8_t> parity,
                         std::size_t unit_size,
                         std::chrono::nanoseconds timeout = {});
  EcFuture submit_decode(TenantId tenant, std::uint64_t client_id,
                         const CodecKey& key, std::span<std::uint8_t> stripe,
                         std::span<const std::size_t> erased_ids,
                         std::size_t unit_size,
                         std::chrono::nanoseconds timeout = {});
  /// Fully-formed request (request.tenant is overwritten with `tenant`).
  EcFuture submit_request(TenantId tenant, std::uint64_t client_id,
                          EcRequest request);

  /// Manual-pump mode: drains every shard's queue on the calling
  /// thread, round-robin, until all are empty; returns requests
  /// completed. Legal alongside worker threads too.
  std::size_t run_pending();

  /// One background-autotuner cycle on the calling thread (works in
  /// any mode; the background thread, when enabled, calls the same).
  /// Returns schedules published. Present so manual-pump tests and the
  /// fuzzer can drive tuning deterministically.
  std::size_t run_autotune_cycle();

  /// One steal scan on behalf of shard `thief` on the calling thread:
  /// exactly what an idle worker does between its own drains. Returns
  /// requests completed from the chosen victim (0 when no neighbor
  /// qualifies under the steal policy). Public so manual-pump tests can
  /// exercise the policy deterministically.
  std::size_t steal_for(std::size_t thief) { return try_steal(thief); }

  /// Stops workers, the autotuner, and every shard. drain=true executes
  /// everything admitted first. Idempotent.
  void shutdown(bool drain = true);

  ShardedStatsSnapshot stats() const;

  /// Front-wide readiness: worst shard state wins (one degraded shard
  /// degrades the front; the front is Unhealthy when shut down or when
  /// every shard is Unhealthy). Per-shard snapshots ride along, each
  /// carrying its shard-local pool stats.
  ShardedHealthSnapshot health() const;

  std::size_t pending() const;

  EcService& shard(std::size_t i) { return *shards_.at(i); }
  const EcService& shard(std::size_t i) const { return *shards_.at(i); }
  /// Shard-local pool (null when pool_bytes_per_shard == 0).
  const std::shared_ptr<BufferPool>& pool(std::size_t i) const {
    return shards_.at(i)->buffer_pool();
  }

  TenantRegistry& tenants() noexcept { return tenants_; }
  const TenantRegistry& tenants() const noexcept { return tenants_; }
  ScheduleCache& schedule_cache() noexcept { return schedule_cache_; }
  TrafficProfile& traffic() noexcept { return traffic_; }
  /// Null when autotuning is disabled.
  ContinuousAutotuner* autotuner() noexcept { return autotuner_.get(); }

  /// What ScheduleCache::load dropped/kept at construction (warm start).
  const tune::LoadLogStats& warm_start_load_stats() const noexcept {
    return warm_start_load_;
  }

 private:
  void worker_loop(std::size_t shard_index);
  std::size_t try_steal(std::size_t thief);
  /// Publishes a schedule into every shard (the autotuner's InstallFn).
  void install_everywhere(const CodecKey& key,
                          const tensor::Schedule& schedule);
  /// Warm start: on the first sighting of a (key, unit) pair, install
  /// the cached best schedule for its task shape, if any.
  void maybe_warm_start(const CodecKey& key, std::size_t unit_size);

  ShardedServiceConfig config_;
  std::vector<std::unique_ptr<EcService>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_workers_{false};

  TenantRegistry tenants_;
  TrafficProfile traffic_;
  ScheduleCache schedule_cache_;
  std::unique_ptr<ContinuousAutotuner> autotuner_;
  tune::LoadLogStats warm_start_load_;

  std::mutex shutdown_mutex_;
  bool stopped_ = false;  // under shutdown_mutex_

  std::atomic<std::uint64_t> qos_rejected_{0};
  std::atomic<std::uint64_t> steal_scans_{0};
  std::atomic<std::uint64_t> steal_batches_{0};
  std::atomic<std::uint64_t> steal_requests_{0};
  std::atomic<std::uint64_t> warm_start_installs_{0};
};

}  // namespace tvmec::serve
