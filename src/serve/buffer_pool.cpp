#include "serve/buffer_pool.h"

#include <algorithm>
#include <stdexcept>

namespace tvmec::serve {

/// Shared between the pool handle and every outstanding lease, so leases
/// stay valid (and release cleanly) after the pool itself is destroyed.
struct RegisteredBuffer::State {
  mutable std::mutex mutex;
  std::map<std::size_t, std::vector<tensor::AlignedBuffer<std::uint8_t>>>
      free_lists;  // size class -> buffers
  std::size_t max_cached_bytes = 0;
  bool closed = false;
  BufferPoolStats stats;
};

namespace {

std::size_t size_class(std::size_t bytes) {
  std::size_t c = tensor::kBufferAlignment;
  while (c < bytes) c *= 2;
  return c;
}

}  // namespace

void RegisteredBuffer::release() noexcept {
  if (!state_ || buf_.data() == nullptr) {
    state_.reset();
    return;
  }
  const std::size_t cls = buf_.size();
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    BufferPoolStats& st = state_->stats;
    st.bytes_out -= cls;
    if (!state_->closed && st.bytes_cached + cls <= state_->max_cached_bytes) {
      state_->free_lists[cls].push_back(std::move(buf_));
      st.bytes_cached += cls;
      ++st.releases;
    } else {
      ++st.discarded;  // buf_ freed below, outside the lock
    }
  }
  buf_ = tensor::AlignedBuffer<std::uint8_t>();
  size_ = 0;
  state_.reset();
}

BufferPool::BufferPool(std::size_t max_cached_bytes)
    : state_(std::make_shared<RegisteredBuffer::State>()) {
  state_->max_cached_bytes = max_cached_bytes;
}

BufferPool::~BufferPool() {
  // Outstanding leases hold the state alive; mark it closed so their
  // releases free instead of caching into a pool nobody can drain.
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->closed = true;
  state_->free_lists.clear();
  state_->stats.bytes_cached = 0;
}

RegisteredBuffer BufferPool::acquire(std::size_t bytes) {
  if (bytes == 0)
    throw std::invalid_argument("BufferPool: cannot acquire 0 bytes");
  const std::size_t cls = size_class(bytes);
  tensor::AlignedBuffer<std::uint8_t> buf;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    BufferPoolStats& st = state_->stats;
    ++st.acquires;
    auto it = state_->free_lists.find(cls);
    if (it != state_->free_lists.end() && !it->second.empty()) {
      buf = std::move(it->second.back());
      it->second.pop_back();
      st.bytes_cached -= cls;
      ++st.pool_hits;
    } else {
      ++st.pool_misses;
    }
    st.bytes_out += cls;
    st.high_water_bytes_out = std::max(st.high_water_bytes_out, st.bytes_out);
  }
  if (buf.data() == nullptr)
    buf = tensor::AlignedBuffer<std::uint8_t>(cls);  // outside the lock
  return RegisteredBuffer(state_, std::move(buf), bytes);
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->stats;
}

}  // namespace tvmec::serve
