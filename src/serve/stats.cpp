#include "serve/stats.h"

#include <cmath>

namespace tvmec::serve {

std::uint64_t LatencyHistogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(std::clamp(
      std::ceil(p / 100.0 * static_cast<double>(count_)), 1.0,
      static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(bucket_upper_bound(i), max_);
  }
  return max_;  // unreachable: counts sum to count_
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kNumBuckets; ++i)
    buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double sample_percentile(std::vector<double>& samples, double p) noexcept {
  if (samples.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const std::size_t index = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(p / 100.0 *
                               static_cast<double>(samples.size())));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(index),
                   samples.end());
  return samples[index];
}

}  // namespace tvmec::serve
