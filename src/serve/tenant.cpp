#include "serve/tenant.h"

#include <cmath>
#include <stdexcept>

namespace tvmec::serve {

TenantCounters& TenantCounters::operator+=(const TenantCounters& o) noexcept {
  submitted += o.submitted;
  accepted += o.accepted;
  rejected_overload += o.rejected_overload;
  rejected_shed += o.rejected_shed;
  rejected_shutdown += o.rejected_shutdown;
  completed_ok += o.completed_ok;
  expired += o.expired;
  failed += o.failed;
  cancelled += o.cancelled;
  shutdown_drained += o.shutdown_drained;
  in_queue += o.in_queue;
  return *this;
}

TenantRegistry::TenantRegistry(std::size_t capacity, bool enforce)
    : capacity_(capacity), enforce_(enforce) {
  if (capacity == 0)
    throw std::invalid_argument("TenantRegistry: capacity must be >= 1");
}

TenantRegistry::Entry& TenantRegistry::entry_locked(TenantId tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    it->second.counters.tenant = tenant;
    total_weight_ += it->second.policy.weight;
  }
  return it->second;
}

std::size_t TenantRegistry::share_locked(const Entry& e) const {
  // total_weight_ >= this entry's weight > 0, so the division is safe.
  const double fraction = e.policy.weight / total_weight_;
  const auto carved =
      static_cast<std::size_t>(static_cast<double>(capacity_) * fraction);
  return std::max(e.policy.min_share, carved);
}

void TenantRegistry::set_policy(TenantId tenant, const TenantPolicy& policy) {
  if (!(policy.weight > 0.0) || !std::isfinite(policy.weight))
    throw std::invalid_argument(
        "TenantRegistry: weight must be finite and > 0");
  std::lock_guard lock(mutex_);
  Entry& e = entry_locked(tenant);
  total_weight_ += policy.weight - e.policy.weight;
  e.policy = policy;
}

TenantPolicy TenantRegistry::policy(TenantId tenant) const {
  std::lock_guard lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.policy : TenantPolicy{};
}

std::size_t TenantRegistry::share(TenantId tenant) const {
  std::lock_guard lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    // A never-seen tenant would join the weight pool on first touch;
    // report the share it would get.
    const TenantPolicy def;
    const double total = total_weight_ + def.weight;
    const auto carved = static_cast<std::size_t>(
        static_cast<double>(capacity_) * (def.weight / total));
    return std::max(def.min_share, carved);
  }
  return share_locked(it->second);
}

std::optional<RequestStatus> TenantRegistry::admit(
    TenantId tenant, Clock::time_point now, Clock::time_point* deadline) {
  std::lock_guard lock(mutex_);
  Entry& e = entry_locked(tenant);
  if (!enforce_) return std::nullopt;
  if (e.counters.in_queue >= static_cast<std::int64_t>(share_locked(e)))
    return RequestStatus::Overloaded;
  if (deadline != nullptr &&
      e.policy.deadline_budget > std::chrono::nanoseconds{0}) {
    const Clock::time_point budget_deadline = now + e.policy.deadline_budget;
    if (budget_deadline < *deadline) *deadline = budget_deadline;
  }
  return std::nullopt;
}

void TenantRegistry::observe(const RequestEvent& event) {
  std::lock_guard lock(mutex_);
  TenantCounters& c = entry_locked(event.tenant).counters;
  switch (event.kind) {
    case RequestEvent::Kind::Submitted:
      ++c.submitted;
      return;
    case RequestEvent::Kind::Accepted:
      ++c.accepted;
      ++c.in_queue;
      return;
    case RequestEvent::Kind::Completed:
      break;
  }
  // Unconditional: clamping at 0 would strand the gauge at +1 whenever
  // a worker's Completed lands before the submitter's Accepted (the
  // decrement would be skipped, the late increment never paired).
  if (event.admitted) --c.in_queue;
  switch (event.status) {
    case RequestStatus::Ok:
      ++c.completed_ok;
      break;
    case RequestStatus::Overloaded:
      ++c.rejected_overload;
      break;
    case RequestStatus::Expired:
      ++c.expired;
      break;
    case RequestStatus::Shutdown:
      // The same split EcService's counters make: an admitted request
      // abandoned at shutdown drains; one never admitted was rejected.
      if (event.admitted)
        ++c.shutdown_drained;
      else
        ++c.rejected_shutdown;
      break;
    case RequestStatus::Failed:
      ++c.failed;
      break;
    case RequestStatus::Cancelled:
      ++c.cancelled;
      break;
    case RequestStatus::Shed:
      ++c.rejected_shed;
      break;
    case RequestStatus::Pending:
      break;  // not a terminal status; ignore defensively
  }
}

TenantCounters TenantRegistry::counters(TenantId tenant) const {
  std::lock_guard lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantCounters zero;
    zero.tenant = tenant;
    return zero;
  }
  return it->second.counters;
}

std::vector<TenantCounters> TenantRegistry::all() const {
  std::lock_guard lock(mutex_);
  std::vector<TenantCounters> out;
  out.reserve(tenants_.size());
  for (const auto& [id, e] : tenants_) out.push_back(e.counters);
  return out;
}

TenantCounters TenantRegistry::aggregate() const {
  std::lock_guard lock(mutex_);
  TenantCounters sum;
  for (const auto& [id, e] : tenants_) sum += e.counters;
  return sum;
}

}  // namespace tvmec::serve
