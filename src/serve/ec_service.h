#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/tvmec.h"
#include "ec/encoder.h"
#include "serve/batch_former.h"
#include "serve/buffer_pool.h"
#include "serve/circuit_breaker.h"
#include "serve/request.h"
#include "serve/stats.h"
#include "tensor/cancel.h"
#include "tensor/schedule.h"

/// The in-process EC service: asynchronous encode/decode with request
/// coalescing.
///
/// Why it exists: bitmatrix EC is a GEMM, and GEMM efficiency grows with
/// operand size — but a front-end workload is many small concurrent
/// requests, each of which alone runs the kernel at starvation-level N.
/// Borrowing the batching discipline of ML serving stacks, the service
/// queues submissions, coalesces compatible ones (same kind + codec key)
/// into one enlarged-N GEMM, and executes batches on the existing
/// persistent ThreadPool — per-stripe microbenchmark throughput becomes
/// multi-client serving throughput.
///
/// Policies:
///  - Admission: the queue is bounded; a full queue rejects immediately
///    with RequestStatus::Overloaded (backpressure, never unbounded
///    buffering). With deadline shedding enabled, a request whose
///    deadline the current queue-wait estimate already dooms is rejected
///    as Shed instead of queueing dead work.
///  - Deadlines: enforced at batch formation — an expired request is
///    completed as Expired and never reaches the kernel (wasted work on
///    a request nobody is waiting for would only delay live ones).
///  - Cancellation: EcFuture::cancel() (or a caller-supplied
///    EcRequest::cancel token) completes a queued request as Cancelled at
///    formation; once a batch whose members are *all* dead (cancelled or
///    past deadline) is executing, the watchdog aborts its kernel at the
///    next tile-chunk poll.
///  - Degradation: per-(codec, direction) circuit breakers; persistent
///    primary-path failures reroute batches to the naive reference
///    backend (byte-identical output, slower) until probes recover.
///  - Pool sharing: each batch's GEMM thread count is capped by
///    effective_gemm_threads() so concurrent batches from multiple
///    service workers cannot oversubscribe the shared pool.
///  - Accounting: per-request queue-wait/service/total latency and
///    per-batch width land in log-bucketed histograms (serve/stats.h).
namespace tvmec::serve {

/// The GEMM schedule service codecs start from: the representative tuned
/// tile shape with the thread knob opened to the shared pool's width
/// (effective_gemm_threads() then caps it per batch).
tensor::Schedule default_service_schedule();

/// Watchdog configuration: a background thread that (a) aborts in-flight
/// batches every member of which is already dead (cancelled or past
/// deadline) — the mechanism bounding deadline overshoot to one
/// batch-service time — and (b) flags workers busy on one batch for
/// longer than `stuck_budget`, degrading health().
struct WatchdogPolicy {
  bool enabled = true;
  /// Scan period. The cancellation latency for an abandoned batch is at
  /// most one poll plus one tile-chunk.
  std::chrono::nanoseconds poll = std::chrono::milliseconds(2);
  /// A worker busy on a single batch past this is considered stuck.
  std::chrono::nanoseconds stuck_budget = std::chrono::seconds(2);
};

enum class HealthState : std::uint8_t { Ok, Degraded, Unhealthy };

const char* to_string(HealthState s) noexcept;

/// Readiness-probe snapshot: the aggregate state plus one human-readable
/// reason per contributing condition (empty when Ok).
struct HealthSnapshot {
  HealthState state = HealthState::Ok;
  std::vector<std::string> reasons;
  /// The SIMD microkernel tier encodes are currently dispatching to
  /// ("scalar", "avx2", "avx512", "neon") — runtime CPUID truth, after
  /// any TVMEC_FORCE_VARIANT override. Surfaced here so an operator can
  /// answer "which kernel is this replica actually running?" from the
  /// readiness endpoint instead of rebuilding with different flags.
  std::string kernel_variant;
  /// Registered-buffer pool attached via ServiceConfig::buffer_pool
  /// (the sharded front gives every shard its own). has_pool == false
  /// when the service runs without one; `pool` is then all zeros.
  bool has_pool = false;
  BufferPoolStats pool;
};

struct ServiceConfig {
  /// Service worker threads executing batches. 0 = manual-pump mode: no
  /// threads are created and the owner drives execution via
  /// run_pending() — fully deterministic, used by tests and the fuzzer.
  std::size_t num_workers = 1;
  BatchPolicy batch;
  /// false = the one-request-at-a-time ablation: batches are capped at a
  /// single request (admission control and deadlines still apply).
  bool batching = true;
  /// Base schedule for every codec the service instantiates.
  tensor::Schedule schedule = default_service_schedule();
  /// Per-(codec, direction) circuit breakers (set enabled=false for the
  /// PR-4 behavior of re-dispatching a failing backend forever).
  BreakerPolicy breaker;
  WatchdogPolicy watchdog;
  /// Test/chaos hook: when set, called before each *primary-path* batch
  /// dispatch with (kind, key, batch size); returning true makes the
  /// dispatch throw. The singly-rescue fallback and the degraded path do
  /// not consult it, so injected faults cost latency, never bytes —
  /// which is what lets the chaos fuzzer keep a byte-exact oracle.
  std::function<bool(RequestKind, const CodecKey&, std::size_t)>
      fault_injector;
  /// Decode-plan cache shared by every codec slot (and the degraded
  /// naive-decode path). Null = the service creates a private one.
  /// Passing the same cache to several services — or to StripeStore /
  /// Codec instances the scrubber drives — lets all of them skip matrix
  /// inversion for loss patterns any one of them has already planned.
  std::shared_ptr<core::PlanCache> plan_cache;
  /// Registered-buffer pool this service advertises (health() surfaces
  /// its stats; the sharded front attaches one per shard so shard
  /// payload buffers never contend on a cross-shard free-list lock).
  /// Null = the service runs without a pool; it never allocates from it
  /// itself, clients do via buffer_pool().
  std::shared_ptr<BufferPool> buffer_pool;
  /// How many executors systemwide concurrently run batches against the
  /// shared fork-join pool. 0 = this service's own workers (the
  /// single-service default). The sharded front sets the fleet-wide
  /// worker count here so effective_gemm_threads() divides the pool by
  /// *all* concurrent batch executors, not just this shard's.
  std::size_t executor_hint = 0;
  /// QoS accounting hook: called with an Accepted event at successful
  /// admission and exactly one Completed event per submission (terminal
  /// status, including admission rejections). Called on submitter /
  /// worker threads with no service lock held beyond the stats mutex —
  /// keep it cheap. Null = no accounting.
  std::function<void(const RequestEvent&)> request_observer;
};

/// Point-in-time copy of the service's counters and histograms. The
/// counter identities are load-bearing for tests and the fuzzer's
/// oracle:
///   submitted == accepted + rejected_overload + rejected_shed
///                + rejected_shutdown
/// and, once drained,
///   accepted == completed_ok + expired + failed + cancelled
///               + shutdown_drained.
/// (rejected_shutdown counts requests that were never admitted;
/// shutdown_drained counts admitted requests abandoned by a
/// non-draining shutdown — keeping the two identities exact.)
struct ServeStatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_shed = 0;      ///< admission-time deadline sheds
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t shutdown_drained = 0;   ///< admitted, then shut down
  std::uint64_t batches = 0;        ///< executed (non-empty) batches
  std::uint64_t empty_flushes = 0;  ///< batches fully dead before work
  std::uint64_t degraded_batches = 0;  ///< served by the naive backend
  std::uint64_t breaker_trips = 0;       ///< summed over all breakers
  std::uint64_t breaker_recoveries = 0;
  std::uint64_t breaker_probes = 0;
  std::uint64_t watchdog_aborts = 0;  ///< all-members-dead batch aborts
  std::uint64_t watchdog_stuck = 0;   ///< stuck-worker episodes flagged
  /// Decode-plan cache traffic (the service's shared core::PlanCache;
  /// includes other consumers when the cache is shared externally).
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  LatencyHistogram queue_wait_ns;
  LatencyHistogram service_ns;
  LatencyHistogram total_ns;
  LatencyHistogram batch_width;    ///< requests per executed batch
  LatencyHistogram gemm_threads;   ///< capped thread knob per batch
};

class EcService {
 public:
  /// Throws std::invalid_argument on an invalid config (bad policy or
  /// schedule).
  explicit EcService(const ServiceConfig& config);
  /// Graceful: shutdown(true).
  ~EcService();

  EcService(const EcService&) = delete;
  EcService& operator=(const EcService&) = delete;

  /// Submits an encode: k contiguous data units in, r contiguous parity
  /// units out. `timeout` bounds how long the request may wait for a
  /// batch (zero = no deadline; negative = already expired, useful for
  /// tests). Buffers must stay alive and untouched until the future is
  /// ready. Throws std::invalid_argument on malformed arguments (span
  /// sizes, unsupported key) — malformed submissions are programming
  /// errors, operational outcomes come back in the EcResult.
  EcFuture submit_encode(const CodecKey& key,
                         std::span<const std::uint8_t> data,
                         std::span<std::uint8_t> parity,
                         std::size_t unit_size,
                         std::chrono::nanoseconds timeout = {});

  /// Submits a decode: the full n-unit stripe is repaired in place.
  /// Erased ids may be unsorted/duplicated (the Codec contract); an
  /// unrecoverable pattern completes as Failed.
  EcFuture submit_decode(const CodecKey& key, std::span<std::uint8_t> stripe,
                         std::span<const std::size_t> erased_ids,
                         std::size_t unit_size,
                         std::chrono::nanoseconds timeout = {});

  /// Variants taking a fully-formed request (the cancel-token path: set
  /// EcRequest::cancel before submitting). Validation matches the
  /// convenience overloads.
  EcFuture submit_request(EcRequest request);

  /// Validates a request's key/unit/span geometry exactly as
  /// submit_request() does; throws std::invalid_argument on malformed
  /// arguments and returns the payload byte count otherwise. The sharded
  /// front calls this *before* its QoS admission so a malformed
  /// submission throws (a programming error) instead of being billed as
  /// tenant traffic.
  static std::size_t validate_request(const EcRequest& request);

  /// Stops the service. drain=true executes everything already admitted
  /// before returning; drain=false completes queued requests with
  /// RequestStatus::Shutdown and aborts in-flight batches via their
  /// cancel tokens (their members complete as Shutdown too). Either way,
  /// submissions from this point complete as Shutdown. Idempotent.
  void shutdown(bool drain = true);

  /// Manual-pump mode (num_workers == 0): executes queued batches on the
  /// calling thread until the queue is empty; returns requests
  /// completed. Also legal alongside worker threads (the caller just
  /// acts as an extra worker).
  std::size_t run_pending();

  /// Bounded variant: executes at most `max_batches` batches. This is
  /// the work-stealing entry point — a neighbor shard's worker drains a
  /// *bounded* amount of this service's backlog so stealing relieves a
  /// hot shard without starving the thief's own queue. Returns requests
  /// completed (0 when nothing was queued).
  std::size_t run_pending(std::size_t max_batches);

  /// Blocks until work is queued, the service shuts down, or `timeout`
  /// elapses; true when a batch is available. The sharded front's
  /// workers use this as their bounded idle wait between steal scans.
  bool wait_for_work(std::chrono::nanoseconds timeout) const {
    return former_.wait_for_work(timeout);
  }

  /// Current queue-wait EWMA (the batch former's pop-time estimate).
  /// The sharded front compares shards' estimates to decide when a
  /// neighbor is hot enough to steal from.
  std::chrono::nanoseconds queue_wait_ewma() const {
    return former_.queue_wait_ewma();
  }

  /// Atomically installs a new GEMM schedule for one codec key (the
  /// continuous autotuner's publish step). Takes the slot's schedule
  /// lock exclusively, so the install waits for in-flight batches on
  /// that codec and no batch ever observes a half-written schedule.
  /// Affects the encode path and decode plans built afterwards.
  /// Throws std::invalid_argument on an invalid schedule.
  void install_schedule(const CodecKey& key,
                        const tensor::Schedule& schedule);

  /// The pool configured via ServiceConfig::buffer_pool (may be null).
  const std::shared_ptr<BufferPool>& buffer_pool() const noexcept {
    return config_.buffer_pool;
  }

  ServeStatsSnapshot stats() const;

  /// Readiness probe. Degraded when any circuit breaker is not Closed or
  /// a worker is flagged stuck; Unhealthy when the service is shut down
  /// or every worker is stuck. Reasons name the conditions.
  HealthSnapshot health() const;

  std::size_t pending() const { return former_.pending(); }
  std::size_t num_workers() const noexcept { return config_.num_workers; }

  /// The per-batch GEMM thread cap: at most the pool's width divided by
  /// the number of concurrent service workers (so two concurrent batches
  /// cannot oversubscribe the pool), and at most one thread per
  /// kMinWordsPerGemmThread 64-bit words of batch payload (so tiny
  /// batches do not pay fork-join overhead for no work). Always >= 1.
  static int effective_gemm_threads(std::size_t batch_words,
                                    std::size_t pool_width,
                                    std::size_t service_workers) noexcept;

  /// Below this many words per thread, adding workers costs more in
  /// dispatch than it wins in parallelism (16 KiB per thread).
  static constexpr std::size_t kMinWordsPerGemmThread = 2048;

 private:
  struct CodecSlot {
    core::Codec codec;
    /// Batches hold this shared; install_schedule() takes it exclusive
    /// so a schedule swap can never race a kernel reading the knobs.
    std::shared_mutex schedule_mutex;
    std::mutex decode_mutex;  ///< decode mutates the plan cache
    CircuitBreaker encode_breaker;
    CircuitBreaker decode_breaker;
    /// Degraded path (lazily built): the naive reference coder for
    /// encode, plus per-erasure-pattern naive recovery coders for
    /// decode. Guarded by degraded_mutex (encode) / decode_mutex
    /// (decode, shared with the plan cache).
    std::mutex degraded_mutex;
    std::unique_ptr<ec::MatrixCoder> naive_encoder;
    struct NaivePlan {
      std::shared_ptr<const ec::DecodePlan> plan;  // from the shared cache
      std::unique_ptr<ec::MatrixCoder> coder;
    };
    std::map<std::vector<std::size_t>, NaivePlan> naive_decode_cache;
    CodecSlot(const ec::CodeParams& params, ec::RsFamily family,
              const BreakerPolicy& breaker)
        : codec(params, family),
          encode_breaker(breaker),
          decode_breaker(breaker) {}
  };

  /// One executing batch, visible to the watchdog: the batch-wide cancel
  /// source the kernel polls, plus each member's death criteria.
  struct InflightBatch {
    tensor::CancelSource source;
    struct Member {
      std::shared_ptr<detail::Completion> completion;
      tensor::CancelToken client;  ///< caller-supplied token (may be invalid)
      Clock::time_point deadline;
    };
    std::vector<Member> members;
    bool aborted = false;  ///< watchdog already fired for this batch
  };

  EcFuture submit(EcRequest request, std::size_t payload_bytes);
  void worker_loop(std::size_t index);
  /// `worker` indexes the heartbeat slot; kNoWorker for manual pumps.
  static constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);
  void execute_batch(std::vector<PendingRequest>& batch, std::size_t worker);
  CodecSlot& codec_slot(const CodecKey& key);
  void watchdog_loop();
  /// True when the request can no longer want its result.
  static bool member_dead(const InflightBatch::Member& m,
                          Clock::time_point now) {
    return m.completion->cancel_requested() || m.client.cancelled() ||
           now > m.deadline;
  }
  /// Completes one request and records its counters/latency. `formed` /
  /// `end` bracket batch execution (formed == end for requests that
  /// never executed: rejections, expiries, shutdown). `admitted`
  /// selects the Shutdown bucket: true = shutdown_drained (the request
  /// was accepted first), false = rejected_shutdown.
  void complete(PendingRequest& p, RequestStatus status, std::string error,
                Clock::time_point formed, Clock::time_point end,
                std::size_t batch_size, bool admitted);

  ServiceConfig config_;
  std::shared_ptr<core::PlanCache> plan_cache_;  // never null after ctor
  BatchFormer former_;
  std::vector<std::thread> workers_;

  mutable std::mutex codecs_mutex_;  ///< stats()/health() aggregate breakers
  std::map<CodecKey, std::unique_ptr<CodecSlot>> codecs_;

  std::mutex shutdown_mutex_;
  std::atomic<bool> accepting_{true};
  bool stopped_ = false;          // under shutdown_mutex_
  std::atomic<bool> stopped_flag_{false};  // health() view of stopped_
  std::atomic<bool> aborting_{false};      // shutdown(false) in progress

  // In-flight batch registry (watchdog's worklist).
  std::mutex inflight_mutex_;
  std::map<std::uint64_t, InflightBatch> inflight_;
  std::uint64_t next_batch_id_ = 0;

  // Watchdog thread + per-worker heartbeats. busy_since is the batch
  // start in steady-clock ns (0 = idle); stuck flags are set/cleared by
  // the watchdog and read by health().
  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // under watchdog_mutex_
  std::unique_ptr<std::atomic<std::int64_t>[]> busy_since_;
  std::unique_ptr<std::atomic<bool>[]> worker_stuck_;

  // Counters are atomics (hot submit path); histograms live under a
  // mutex and are only touched at completion time.
  mutable std::mutex stats_mutex_;
  ServeStatsSnapshot hist_;  // histogram part; counters below
  std::atomic<std::uint64_t> submitted_{0}, accepted_{0},
      rejected_overload_{0}, rejected_shed_{0}, rejected_shutdown_{0},
      completed_ok_{0}, expired_{0}, failed_{0}, cancelled_{0},
      shutdown_drained_{0}, batches_{0}, empty_flushes_{0},
      degraded_batches_{0}, watchdog_aborts_{0}, watchdog_stuck_{0};
};

}  // namespace tvmec::serve
