#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/tvmec.h"
#include "serve/batch_former.h"
#include "serve/request.h"
#include "serve/stats.h"
#include "tensor/schedule.h"

/// The in-process EC service: asynchronous encode/decode with request
/// coalescing.
///
/// Why it exists: bitmatrix EC is a GEMM, and GEMM efficiency grows with
/// operand size — but a front-end workload is many small concurrent
/// requests, each of which alone runs the kernel at starvation-level N.
/// Borrowing the batching discipline of ML serving stacks, the service
/// queues submissions, coalesces compatible ones (same kind + codec key)
/// into one enlarged-N GEMM, and executes batches on the existing
/// persistent ThreadPool — per-stripe microbenchmark throughput becomes
/// multi-client serving throughput.
///
/// Policies:
///  - Admission: the queue is bounded; a full queue rejects immediately
///    with RequestStatus::Overloaded (backpressure, never unbounded
///    buffering).
///  - Deadlines: enforced at batch formation — an expired request is
///    completed as Expired and never reaches the kernel (wasted work on
///    a request nobody is waiting for would only delay live ones).
///  - Pool sharing: each batch's GEMM thread count is capped by
///    effective_gemm_threads() so concurrent batches from multiple
///    service workers cannot oversubscribe the shared pool.
///  - Accounting: per-request queue-wait/service/total latency and
///    per-batch width land in log-bucketed histograms (serve/stats.h).
namespace tvmec::serve {

/// The GEMM schedule service codecs start from: the representative tuned
/// tile shape with the thread knob opened to the shared pool's width
/// (effective_gemm_threads() then caps it per batch).
tensor::Schedule default_service_schedule();

struct ServiceConfig {
  /// Service worker threads executing batches. 0 = manual-pump mode: no
  /// threads are created and the owner drives execution via
  /// run_pending() — fully deterministic, used by tests and the fuzzer.
  std::size_t num_workers = 1;
  BatchPolicy batch;
  /// false = the one-request-at-a-time ablation: batches are capped at a
  /// single request (admission control and deadlines still apply).
  bool batching = true;
  /// Base schedule for every codec the service instantiates.
  tensor::Schedule schedule = default_service_schedule();
};

/// Point-in-time copy of the service's counters and histograms. The
/// counter identities are load-bearing for tests and the fuzzer's
/// oracle: submitted == accepted + rejected_overload + rejected_shutdown,
/// and, once drained, accepted == completed_ok + expired + failed.
struct ServeStatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;        ///< executed (non-empty) batches
  std::uint64_t empty_flushes = 0;  ///< batches fully expired before work
  LatencyHistogram queue_wait_ns;
  LatencyHistogram service_ns;
  LatencyHistogram total_ns;
  LatencyHistogram batch_width;    ///< requests per executed batch
  LatencyHistogram gemm_threads;   ///< capped thread knob per batch
};

class EcService {
 public:
  /// Throws std::invalid_argument on an invalid config (bad policy or
  /// schedule).
  explicit EcService(const ServiceConfig& config);
  /// Graceful: shutdown(true).
  ~EcService();

  EcService(const EcService&) = delete;
  EcService& operator=(const EcService&) = delete;

  /// Submits an encode: k contiguous data units in, r contiguous parity
  /// units out. `timeout` bounds how long the request may wait for a
  /// batch (zero = no deadline; negative = already expired, useful for
  /// tests). Buffers must stay alive and untouched until the future is
  /// ready. Throws std::invalid_argument on malformed arguments (span
  /// sizes, unsupported key) — malformed submissions are programming
  /// errors, operational outcomes come back in the EcResult.
  EcFuture submit_encode(const CodecKey& key,
                         std::span<const std::uint8_t> data,
                         std::span<std::uint8_t> parity,
                         std::size_t unit_size,
                         std::chrono::nanoseconds timeout = {});

  /// Submits a decode: the full n-unit stripe is repaired in place.
  /// Erased ids may be unsorted/duplicated (the Codec contract); an
  /// unrecoverable pattern completes as Failed.
  EcFuture submit_decode(const CodecKey& key, std::span<std::uint8_t> stripe,
                         std::span<const std::size_t> erased_ids,
                         std::size_t unit_size,
                         std::chrono::nanoseconds timeout = {});

  /// Stops the service. drain=true executes everything already admitted
  /// before returning; drain=false completes queued requests with
  /// RequestStatus::Shutdown. Either way, submissions from this point
  /// complete as Shutdown. Idempotent.
  void shutdown(bool drain = true);

  /// Manual-pump mode (num_workers == 0): executes queued batches on the
  /// calling thread until the queue is empty; returns requests
  /// completed. Also legal alongside worker threads (the caller just
  /// acts as an extra worker).
  std::size_t run_pending();

  ServeStatsSnapshot stats() const;
  std::size_t pending() const { return former_.pending(); }
  std::size_t num_workers() const noexcept { return config_.num_workers; }

  /// The per-batch GEMM thread cap: at most the pool's width divided by
  /// the number of concurrent service workers (so two concurrent batches
  /// cannot oversubscribe the pool), and at most one thread per
  /// kMinWordsPerGemmThread 64-bit words of batch payload (so tiny
  /// batches do not pay fork-join overhead for no work). Always >= 1.
  static int effective_gemm_threads(std::size_t batch_words,
                                    std::size_t pool_width,
                                    std::size_t service_workers) noexcept;

  /// Below this many words per thread, adding workers costs more in
  /// dispatch than it wins in parallelism (16 KiB per thread).
  static constexpr std::size_t kMinWordsPerGemmThread = 2048;

 private:
  struct CodecSlot {
    core::Codec codec;
    std::mutex decode_mutex;  ///< decode mutates the plan cache
    CodecSlot(const ec::CodeParams& params, ec::RsFamily family)
        : codec(params, family) {}
  };

  EcFuture submit(EcRequest request, std::size_t payload_bytes);
  void worker_loop();
  void execute_batch(std::vector<PendingRequest>& batch);
  CodecSlot& codec_slot(const CodecKey& key);
  /// Completes one request and records its counters/latency. `formed` /
  /// `end` bracket batch execution (formed == end for requests that
  /// never executed: rejections, expiries, shutdown).
  void complete(PendingRequest& p, RequestStatus status, std::string error,
                Clock::time_point formed, Clock::time_point end,
                std::size_t batch_size);

  ServiceConfig config_;
  BatchFormer former_;
  std::vector<std::thread> workers_;

  std::mutex codecs_mutex_;
  std::map<CodecKey, std::unique_ptr<CodecSlot>> codecs_;

  std::mutex shutdown_mutex_;
  std::atomic<bool> accepting_{true};
  bool stopped_ = false;  // under shutdown_mutex_

  // Counters are atomics (hot submit path); histograms live under a
  // mutex and are only touched at completion time.
  mutable std::mutex stats_mutex_;
  ServeStatsSnapshot hist_;  // histogram part; counters below
  std::atomic<std::uint64_t> submitted_{0}, accepted_{0},
      rejected_overload_{0}, rejected_shutdown_{0}, completed_ok_{0},
      expired_{0}, failed_{0}, batches_{0}, empty_flushes_{0};
};

}  // namespace tvmec::serve
