#include "serve/circuit_breaker.h"

namespace tvmec::serve {

const char* to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::Closed:
      return "closed";
    case BreakerState::Open:
      return "open";
    case BreakerState::HalfOpen:
      return "half-open";
  }
  return "?";
}

BreakerDecision CircuitBreaker::allow_primary(Clock::time_point now) {
  if (!policy_.enabled) return BreakerDecision::Primary;
  std::lock_guard lock(mutex_);
  switch (state_) {
    case BreakerState::Closed:
      return BreakerDecision::Primary;
    case BreakerState::Open:
      if (now - opened_at_ < policy_.cooldown) return BreakerDecision::Degrade;
      state_ = BreakerState::HalfOpen;
      half_open_successes_ = 0;
      [[fallthrough]];
    case BreakerState::HalfOpen:
      if (probe_inflight_) return BreakerDecision::Degrade;
      probe_inflight_ = true;
      ++counters_.probes;
      return BreakerDecision::Probe;
  }
  return BreakerDecision::Primary;
}

void CircuitBreaker::record(BreakerDecision decision, bool success,
                            Clock::time_point now) {
  if (!policy_.enabled || decision == BreakerDecision::Degrade) return;
  std::lock_guard lock(mutex_);
  if (decision == BreakerDecision::Probe) {
    probe_inflight_ = false;
    // A probe verdict only matters while we are still HalfOpen; a
    // concurrent transition (e.g. another probe already closed the
    // breaker) makes this one stale.
    if (state_ != BreakerState::HalfOpen) return;
    if (success) {
      if (++half_open_successes_ >= policy_.success_threshold) {
        state_ = BreakerState::Closed;
        consecutive_failures_ = 0;
        ++counters_.recoveries;
      }
    } else {
      state_ = BreakerState::Open;
      opened_at_ = now;
      ++counters_.trips;
    }
    return;
  }
  // Primary verdict: only meaningful while Closed (a late verdict from a
  // batch dispatched before a trip must not re-trip or reset anything).
  if (state_ != BreakerState::Closed) return;
  if (success) {
    consecutive_failures_ = 0;
  } else if (++consecutive_failures_ >= policy_.failure_threshold) {
    state_ = BreakerState::Open;
    opened_at_ = now;
    consecutive_failures_ = 0;
    ++counters_.trips;
  }
}

void CircuitBreaker::abandon(BreakerDecision decision) {
  if (!policy_.enabled || decision != BreakerDecision::Probe) return;
  std::lock_guard lock(mutex_);
  probe_inflight_ = false;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

CircuitBreaker::Counters CircuitBreaker::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

}  // namespace tvmec::serve
