#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/request.h"
#include "tensor/schedule.h"
#include "tune/search_space.h"
#include "tune/tuning_log.h"

/// Warm-start continuous autotuning for the sharded front.
///
/// The offline story (tune once, load the log) assumes you knew the
/// workload before deployment. A serving front does not: codec keys and
/// unit sizes arrive with the traffic. This module closes the loop the
/// way ML serving systems re-profile hot models: the front samples
/// which (codec key, unit size) pairs are actually hot
/// (TrafficProfile), a background thread runs *bounded* tuning trials
/// for the hottest pairs off the serving path (ContinuousAutotuner),
/// winners are installed atomically into every shard's codec slot
/// (EcService::install_schedule), and the best-known schedule per GEMM
/// task shape persists in the existing tuning-log format
/// (ScheduleCache::save/load) so a restarted front warm-starts instead
/// of re-tuning from scratch.
namespace tvmec::serve {

/// One traffic-hot (codec key, unit size) pair and its sampled count.
struct HotPair {
  CodecKey key;
  std::size_t unit_size = 0;
  std::uint64_t requests = 0;
};

/// Thread-safe request-mix sampler: the sharded front calls record()
/// once per submission; the autotuner asks for the top pairs each
/// cycle. decay() halves every count (dropping zeros) so the profile
/// tracks the *current* mix rather than all of history.
class TrafficProfile {
 public:
  /// Counts one request; true the first time this (key, unit) pair is
  /// ever seen (the front's warm-start trigger).
  bool record(const CodecKey& key, std::size_t unit_size);

  /// The `n` highest-count pairs with at least `min_requests` samples,
  /// descending by count (ties broken by key order, deterministically).
  std::vector<HotPair> top(std::size_t n, std::uint64_t min_requests) const;

  /// Exponential decay step: every count is halved, zeroed pairs are
  /// forgotten (they re-register as first_seen if they return).
  void decay();

  std::uint64_t total() const;
  std::size_t distinct_pairs() const;

 private:
  using Pair = std::pair<CodecKey, std::size_t>;
  mutable std::mutex mutex_;
  std::map<Pair, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// tune::TaskShape has no ordering of its own; the cache keys on it.
struct TaskShapeLess {
  bool operator()(const tune::TaskShape& a,
                  const tune::TaskShape& b) const noexcept {
    if (a.m != b.m) return a.m < b.m;
    if (a.n != b.n) return a.n < b.n;
    return a.k < b.k;
  }
};

/// The best-known schedule per GEMM task shape, shared by warm-start
/// (front) and the tuner (background). Persistence speaks the existing
/// tuning-log format — one `MxNxK | schedule | throughput` line per
/// shape — so cache files interoperate with tune::load_log and the
/// offline tuning tools.
class ScheduleCache {
 public:
  struct Entry {
    tensor::Schedule schedule;
    double throughput = 0.0;
  };
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t installs = 0;
    std::uint64_t saves = 0;
    std::uint64_t loaded_records = 0;
    std::uint64_t dropped_unavailable_variant = 0;
  };

  /// Best-known entry for the shape (counted as a hit/miss).
  std::optional<Entry> lookup(const tune::TaskShape& shape) const;

  /// Installs/overwrites the entry for a shape.
  void install(const tune::TaskShape& shape, const Entry& entry);

  /// Merges a tuning log into the cache (best record per shape wins —
  /// both within the file and against anything already cached).
  /// A missing file loads zero records; a malformed one throws
  /// std::runtime_error (load_log's contract). Records for kernel
  /// variants this host lacks are dropped and counted, both in `stats`
  /// (when given) and in this cache's own Stats.
  std::size_t load(const std::string& path,
                   tune::LoadLogStats* stats = nullptr);

  /// Writes the whole cache to `path` in the tuning-log format —
  /// snapshot under the lock, write to `path + ".tmp"`, rename — so a
  /// concurrently restarting front never reads a half-written file.
  /// Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  std::size_t size() const;
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::map<tune::TaskShape, Entry, TaskShapeLess> entries_;
  mutable Stats stats_;  ///< hits/misses mutate under lookup() const
};

/// Bounds for the background tuner. Deliberately tiny defaults: a cycle
/// is a handful of trials for a couple of pairs, because the tuner
/// shares the machine with the serving path it is trying to speed up.
struct AutotunePolicy {
  bool enabled = false;
  /// Sleep between background cycles.
  std::chrono::nanoseconds interval = std::chrono::milliseconds(250);
  /// Measurement budget per (key, unit) pair per cycle.
  std::size_t trials = 12;
  /// Hottest pairs examined per cycle.
  std::size_t max_pairs_per_cycle = 2;
  /// A pair is tunable only once this many samples accumulate.
  std::uint64_t min_requests = 16;
  /// A freshly-tuned schedule replaces the cached one only when its
  /// measured throughput beats the cached record by this factor
  /// (hysteresis against measurement noise flapping installs).
  double min_gain = 1.05;
  /// Tuning-log path for persistence ("" = no persistence). Loaded at
  /// front construction (warm start), rewritten after any cycle that
  /// installed a new winner.
  std::string log_path;
  /// Thread-knob cap for tuning trials (keep at 1 so trials never fork
  /// the shared GEMM pool out from under live batches).
  int tune_threads = 1;
  std::uint64_t seed = 42;
  /// false = no background thread; the owner drives run_cycle()
  /// manually (tests, manual-pump fuzzing).
  bool background = true;
};

struct AutotuneStats {
  std::uint64_t cycles = 0;
  std::uint64_t pairs_considered = 0;
  std::uint64_t trials_run = 0;
  std::uint64_t installs = 0;             ///< tuned winners published
  std::uint64_t warm_start_installs = 0;  ///< cache hits published
  ScheduleCache::Stats cache;
};

/// The background tuning loop. Owns no shards: publishing goes through
/// `install`, which the sharded front binds to "install into every
/// shard for this key". Trials run on a scratch Codec, never a serving
/// one.
class ContinuousAutotuner {
 public:
  using InstallFn =
      std::function<void(const CodecKey&, const tensor::Schedule&)>;

  /// `traffic` and `cache` must outlive the autotuner. Throws
  /// std::invalid_argument on a null install fn or zero trials.
  ContinuousAutotuner(const AutotunePolicy& policy, TrafficProfile& traffic,
                      ScheduleCache& cache, InstallFn install);
  ~ContinuousAutotuner();

  ContinuousAutotuner(const ContinuousAutotuner&) = delete;
  ContinuousAutotuner& operator=(const ContinuousAutotuner&) = delete;

  /// Spawns the background thread (no-op when policy.background is
  /// false or already started).
  void start();
  /// Stops and joins the background thread. Idempotent.
  void stop();

  /// One tuning cycle on the calling thread: examine the hottest pairs,
  /// warm-start-install any cached schedule not yet published for its
  /// key, run bounded trials, publish and cache winners, persist when
  /// something changed. Returns the number of schedules published this
  /// cycle (warm starts + tuned winners). Safe to call concurrently
  /// with the serving path; not reentrant with itself.
  std::size_t run_cycle();

  AutotuneStats stats() const;

 private:
  void loop();

  const AutotunePolicy policy_;
  TrafficProfile& traffic_;
  ScheduleCache& cache_;
  InstallFn install_;

  std::thread thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;  // under stop_mutex_

  /// Keys whose cached schedule was already published (warm-start is
  /// install-once per key+shape; re-publishing happens only when tuning
  /// finds a better winner).
  std::mutex published_mutex_;
  std::map<std::pair<CodecKey, std::size_t>, bool> published_;

  mutable std::mutex stats_mutex_;
  AutotuneStats stats_;
};

}  // namespace tvmec::serve
