#include "storage/chunk_accumulator.h"

#include <cstring>
#include <stdexcept>

namespace tvmec::storage {

ChunkAccumulator::ChunkAccumulator(std::size_t k, std::size_t chunk_size)
    : k_(k),
      chunk_size_(chunk_size),
      filled_(k, false),
      region_(k * chunk_size) {
  if (k == 0 || chunk_size == 0)
    throw std::invalid_argument("ChunkAccumulator: zero k or chunk size");
}

void ChunkAccumulator::add_chunk(std::size_t index,
                                 std::span<const std::uint8_t> chunk) {
  if (index >= k_)
    throw std::invalid_argument("ChunkAccumulator: chunk index out of range");
  if (chunk.size() > chunk_size_)
    throw std::invalid_argument("ChunkAccumulator: chunk too large");
  if (filled_[index])
    throw std::invalid_argument("ChunkAccumulator: slot already filled");
  std::uint8_t* dst = region_.data() + index * chunk_size_;
  if (!chunk.empty())  // empty spans may carry a null data()
    std::memcpy(dst, chunk.data(), chunk.size());
  if (chunk.size() < chunk_size_)
    std::memset(dst + chunk.size(), 0, chunk_size_ - chunk.size());
  filled_[index] = true;
  ++received_;
}

std::span<const std::uint8_t> ChunkAccumulator::data() const {
  if (!ready())
    throw std::logic_error(
        "ChunkAccumulator: region requested before all chunks arrived");
  return region_.span();
}

void ChunkAccumulator::reset() noexcept {
  std::fill(filled_.begin(), filled_.end(), false);
  received_ = 0;
}

}  // namespace tvmec::storage
