#include "storage/crc32c.h"

#include <array>

namespace tvmec::storage {

namespace {

constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

struct Tables {
  // slice[j][b]: CRC contribution of byte b seen j positions ago.
  std::array<std::array<std::uint32_t, 256>, 8> slice{};

  Tables() {
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1u) ? kPolyReflected : 0u);
      slice[0][b] = crc;
    }
    for (std::size_t j = 1; j < 8; ++j)
      for (std::uint32_t b = 0; b < 256; ++b)
        slice[j][b] =
            (slice[j - 1][b] >> 8) ^ slice[0][slice[j - 1][b] & 0xFF];
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc,
                            std::span<const std::uint8_t> data) noexcept {
  const Tables& t = tables();
  crc = ~crc;
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  // Slicing-by-8 main loop.
  while (len >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    (static_cast<std::uint32_t>(p[1]) << 8) |
                                    (static_cast<std::uint32_t>(p[2]) << 16) |
                                    (static_cast<std::uint32_t>(p[3]) << 24));
    crc = t.slice[7][lo & 0xFF] ^ t.slice[6][(lo >> 8) & 0xFF] ^
          t.slice[5][(lo >> 16) & 0xFF] ^ t.slice[4][lo >> 24] ^
          t.slice[3][p[4]] ^ t.slice[2][p[5]] ^ t.slice[1][p[6]] ^
          t.slice[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) crc = (crc >> 8) ^ t.slice[0][(crc ^ *p++) & 0xFF];
  return ~crc;
}

std::uint32_t crc32c(std::span<const std::uint8_t> data) noexcept {
  return crc32c_extend(0, data);
}

}  // namespace tvmec::storage
