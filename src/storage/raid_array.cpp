#include "storage/raid_array.h"

#include <cstring>
#include <stdexcept>

#include "tensor/buffer.h"

namespace tvmec::storage {

RaidArray::RaidArray(const ec::CodeParams& params, std::size_t block_size,
                     std::size_t stripes)
    : params_(params),
      block_size_(block_size),
      stripes_(stripes),
      codec_(params) {
  ec::packet_bytes(params, block_size);  // validates block_size
  if (stripes == 0) throw std::invalid_argument("RaidArray: zero stripes");
  devices_.resize(params_.n());
  for (Device& d : devices_) {
    d.blocks.assign(stripes * block_size, 0);
    d.valid.assign(stripes, true);  // zero blocks of zero data are valid
  }
}

bool RaidArray::read_stripe(std::size_t stripe, std::span<std::uint8_t> out) {
  std::vector<std::size_t> erased;
  for (std::size_t u = 0; u < params_.n(); ++u) {
    const std::size_t dev = device_of(stripe, u);
    const Device& d = devices_[dev];
    if (d.failed || !d.valid[stripe]) {
      erased.push_back(u);
      continue;
    }
    std::memcpy(out.data() + u * block_size_,
                d.blocks.data() + stripe * block_size_, block_size_);
  }
  if (erased.empty()) return false;
  codec_.decode(out, erased, block_size_);  // throws when > r missing
  return true;
}

void RaidArray::write_stripe(std::size_t stripe,
                             std::span<const std::uint8_t> in) {
  for (std::size_t u = 0; u < params_.n(); ++u) {
    const std::size_t dev = device_of(stripe, u);
    Device& d = devices_[dev];
    if (d.failed) continue;
    std::memcpy(d.blocks.data() + stripe * block_size_,
                in.data() + u * block_size_, block_size_);
    d.valid[stripe] = true;
  }
}

void RaidArray::write_block(std::size_t lba,
                            std::span<const std::uint8_t> data) {
  if (lba >= capacity_blocks())
    throw std::invalid_argument("write_block: lba out of range");
  if (data.size() != block_size_)
    throw std::invalid_argument("write_block: data must be one block");
  ++stats_.block_writes;

  const std::size_t stripe = lba / params_.k;
  const std::size_t unit = lba % params_.k;

  // Fast path: the data device and all parity devices are online and
  // hold valid contents -> RAID small write via parity patching.
  bool fast = true;
  const std::size_t data_dev = device_of(stripe, unit);
  if (devices_[data_dev].failed || !devices_[data_dev].valid[stripe])
    fast = false;
  for (std::size_t p = 0; fast && p < params_.r; ++p) {
    const std::size_t dev = device_of(stripe, params_.k + p);
    if (devices_[dev].failed || !devices_[dev].valid[stripe]) fast = false;
  }

  if (fast) {
    ++stats_.small_write_patches;
    // Gather the r parity blocks contiguously, patch, scatter back.
    tensor::AlignedBuffer<std::uint8_t> parity(params_.r * block_size_);
    tensor::AlignedBuffer<std::uint8_t> old_block(block_size_);
    tensor::AlignedBuffer<std::uint8_t> new_block(block_size_);
    std::memcpy(old_block.data(), slot(data_dev, stripe), block_size_);
    std::memcpy(new_block.data(), data.data(), block_size_);
    for (std::size_t p = 0; p < params_.r; ++p)
      std::memcpy(parity.data() + p * block_size_,
                  slot(device_of(stripe, params_.k + p), stripe),
                  block_size_);
    codec_.patch_parity(unit, old_block.span(), new_block.span(),
                        parity.span(), block_size_);
    std::memcpy(slot(data_dev, stripe), data.data(), block_size_);
    for (std::size_t p = 0; p < params_.r; ++p)
      std::memcpy(slot(device_of(stripe, params_.k + p), stripe),
                  parity.data() + p * block_size_, block_size_);
    return;
  }

  // Degraded path: reconstruct the stripe, replace the block, re-encode.
  ++stats_.full_stripe_writes;
  tensor::AlignedBuffer<std::uint8_t> full(params_.n() * block_size_);
  read_stripe(stripe, full.span());
  std::memcpy(full.data() + unit * block_size_, data.data(), block_size_);
  codec_.encode(
      std::span<const std::uint8_t>(full.data(), params_.k * block_size_),
      std::span<std::uint8_t>(full.data() + params_.k * block_size_,
                              params_.r * block_size_),
      block_size_);
  write_stripe(stripe, full.span());
}

std::vector<std::uint8_t> RaidArray::read_block(std::size_t lba) {
  if (lba >= capacity_blocks())
    throw std::invalid_argument("read_block: lba out of range");
  const std::size_t stripe = lba / params_.k;
  const std::size_t unit = lba % params_.k;
  const std::size_t dev = device_of(stripe, unit);
  if (!devices_[dev].failed && devices_[dev].valid[stripe]) {
    const std::uint8_t* src = slot(dev, stripe);
    return std::vector<std::uint8_t>(src, src + block_size_);
  }
  ++stats_.degraded_reads;
  tensor::AlignedBuffer<std::uint8_t> full(params_.n() * block_size_);
  read_stripe(stripe, full.span());
  const std::uint8_t* src = full.data() + unit * block_size_;
  return std::vector<std::uint8_t>(src, src + block_size_);
}

void RaidArray::fail_device(std::size_t device) {
  if (device >= devices_.size())
    throw std::invalid_argument("fail_device: device out of range");
  Device& d = devices_[device];
  d.failed = true;
  std::fill(d.blocks.begin(), d.blocks.end(), std::uint8_t{0});
  std::fill(d.valid.begin(), d.valid.end(), false);
}

void RaidArray::replace_device(std::size_t device) {
  if (device >= devices_.size())
    throw std::invalid_argument("replace_device: device out of range");
  devices_[device].failed = false;  // blank: valid[] stays false
}

bool RaidArray::device_failed(std::size_t device) const {
  if (device >= devices_.size())
    throw std::invalid_argument("device_failed: device out of range");
  return devices_[device].failed;
}

std::size_t RaidArray::rebuild() {
  std::size_t rebuilt = 0;
  tensor::AlignedBuffer<std::uint8_t> full(params_.n() * block_size_);
  for (std::size_t s = 0; s < stripes_; ++s) {
    bool missing = false;
    for (std::size_t u = 0; u < params_.n() && !missing; ++u) {
      const Device& d = devices_[device_of(s, u)];
      if (!d.failed && !d.valid[s]) missing = true;
    }
    if (!missing) continue;
    read_stripe(s, full.span());
    for (std::size_t u = 0; u < params_.n(); ++u) {
      Device& d = devices_[device_of(s, u)];
      if (d.failed || d.valid[s]) continue;
      std::memcpy(d.blocks.data() + s * block_size_,
                  full.data() + u * block_size_, block_size_);
      d.valid[s] = true;
      ++rebuilt;
    }
  }
  stats_.blocks_rebuilt += rebuilt;
  return rebuilt;
}

std::size_t RaidArray::verify() {
  std::size_t bad = 0;
  tensor::AlignedBuffer<std::uint8_t> full(params_.n() * block_size_);
  tensor::AlignedBuffer<std::uint8_t> expect(params_.r * block_size_);
  for (std::size_t s = 0; s < stripes_; ++s) {
    try {
      read_stripe(s, full.span());
    } catch (const std::runtime_error&) {
      ++bad;
      continue;
    }
    codec_.encode(
        std::span<const std::uint8_t>(full.data(), params_.k * block_size_),
        expect.span(), block_size_);
    if (std::memcmp(expect.data(), full.data() + params_.k * block_size_,
                    params_.r * block_size_) != 0)
      ++bad;
  }
  return bad;
}

}  // namespace tvmec::storage
