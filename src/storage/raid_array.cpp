#include "storage/raid_array.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "storage/crc32c.h"
#include "tensor/buffer.h"

namespace tvmec::storage {

RaidArray::RaidArray(const ec::CodeParams& params, std::size_t block_size,
                     std::size_t stripes)
    : params_(params),
      block_size_(block_size),
      stripes_(stripes),
      codec_(params) {
  ec::packet_bytes(params, block_size);  // validates block_size
  if (stripes == 0) throw std::invalid_argument("RaidArray: zero stripes");
  devices_.resize(params_.n());
  for (Device& d : devices_) {
    d.blocks.assign(stripes * block_size, 0);
    d.valid.assign(stripes, true);  // zero blocks of zero data are valid
  }
  const std::vector<std::uint8_t> zero(block_size, 0);
  crcs_.assign(stripes * params_.n(), crc32c(zero));
}

void RaidArray::mark_device_failed(std::size_t device) {
  Device& d = devices_[device];
  if (d.failed) return;
  d.failed = true;
  std::fill(d.blocks.begin(), d.blocks.end(), std::uint8_t{0});
  std::fill(d.valid.begin(), d.valid.end(), false);
}

bool RaidArray::write_unit(std::size_t stripe, std::size_t u,
                           const std::uint8_t* src) {
  // The metadata table always records the intended contents, even when
  // the device is down — that is what lets rebuild() verify its work.
  unit_crc(stripe, u) = crc32c({src, block_size_});
  const std::size_t dev = device_of(stripe, u);
  if (injector_ && injector_->crashed(dev)) mark_device_failed(dev);
  Device& d = devices_[dev];
  if (d.failed) return false;
  std::memcpy(slot(dev, stripe), src, block_size_);
  if (injector_ &&
      !injector_->on_write(dev, FaultInjector::key(stripe, u),
                           {slot(dev, stripe), block_size_})) {
    mark_device_failed(dev);
    return false;
  }
  d.valid[stripe] = true;
  return true;
}

RaidArray::UnitRead RaidArray::read_unit(std::size_t stripe, std::size_t u,
                                         std::uint8_t* dest) {
  const std::size_t dev = device_of(stripe, u);
  const std::uint64_t key = FaultInjector::key(stripe, u);
  UnitRead verdict = UnitRead::Missing;
  with_retries(retry_, retry_stats_, key, [&]() -> Attempt {
    if (injector_ && injector_->crashed(dev)) {
      mark_device_failed(dev);
      verdict = UnitRead::Missing;
      return Attempt::Abort;
    }
    Device& d = devices_[dev];
    if (d.failed || !d.valid[stripe]) {
      verdict = UnitRead::Missing;
      return Attempt::Abort;
    }
    std::memcpy(dest, slot(dev, stripe), block_size_);
    if (injector_) {
      switch (injector_->on_read(dev, key, {dest, block_size_})) {
        case ReadFault::Crash:
          mark_device_failed(dev);
          verdict = UnitRead::Missing;
          return Attempt::Abort;
        case ReadFault::Transient:
          verdict = UnitRead::Missing;
          return Attempt::Retry;
        case ReadFault::None:
          break;
      }
    }
    if (crc32c({dest, block_size_}) != unit_crc(stripe, u)) {
      verdict = UnitRead::Corrupt;  // re-read in case it was a read flip
      return Attempt::Retry;
    }
    verdict = UnitRead::Ok;
    return Attempt::Success;
  });
  if (verdict == UnitRead::Corrupt) ++stats_.corruptions_detected;
  return verdict;
}

bool RaidArray::read_stripe(std::size_t stripe, std::span<std::uint8_t> out) {
  std::vector<std::size_t> erased;
  for (std::size_t u = 0; u < params_.n(); ++u) {
    if (read_unit(stripe, u, out.data() + u * block_size_) != UnitRead::Ok)
      erased.push_back(u);
  }
  if (erased.empty()) return false;
  codec_.decode(out, erased, block_size_);  // throws when > r missing
  // CRC-verify the reconstruction against the metadata table before any
  // caller sees (or persists) it.
  for (const std::size_t u : erased) {
    if (crc32c({out.data() + u * block_size_, block_size_}) !=
        unit_crc(stripe, u)) {
      ++stats_.corruptions_detected;
      throw std::runtime_error(
          "RaidArray: reconstructed unit failed checksum verification");
    }
  }
  return true;
}

void RaidArray::write_stripe(std::size_t stripe,
                             std::span<const std::uint8_t> in) {
  for (std::size_t u = 0; u < params_.n(); ++u)
    write_unit(stripe, u, in.data() + u * block_size_);
}

void RaidArray::write_block(std::size_t lba,
                            std::span<const std::uint8_t> data) {
  if (lba >= capacity_blocks())
    throw std::invalid_argument("write_block: lba out of range");
  if (data.size() != block_size_)
    throw std::invalid_argument("write_block: data must be one block");
  ++stats_.block_writes;

  const std::size_t stripe = lba / params_.k;
  const std::size_t unit = lba % params_.k;

  // Fast path: the old data block and all r parity blocks read back
  // clean -> RAID small write via parity patching. Any missing or
  // corrupt operand falls back to the full-stripe path, which repairs
  // through the decode machinery instead of patching garbage forward.
  tensor::AlignedBuffer<std::uint8_t> parity(params_.r * block_size_);
  tensor::AlignedBuffer<std::uint8_t> old_block(block_size_);
  bool fast = read_unit(stripe, unit, old_block.data()) == UnitRead::Ok;
  for (std::size_t p = 0; fast && p < params_.r; ++p) {
    fast = read_unit(stripe, params_.k + p,
                     parity.data() + p * block_size_) == UnitRead::Ok;
  }

  if (fast) {
    ++stats_.small_write_patches;
    tensor::AlignedBuffer<std::uint8_t> new_block(block_size_);
    std::memcpy(new_block.data(), data.data(), block_size_);
    codec_.patch_parity(unit, old_block.span(), new_block.span(),
                        parity.span(), block_size_);
    write_unit(stripe, unit, data.data());
    for (std::size_t p = 0; p < params_.r; ++p)
      write_unit(stripe, params_.k + p, parity.data() + p * block_size_);
    return;
  }

  // Degraded path: reconstruct the stripe, replace the block, re-encode.
  ++stats_.full_stripe_writes;
  tensor::AlignedBuffer<std::uint8_t> full(params_.n() * block_size_);
  read_stripe(stripe, full.span());
  std::memcpy(full.data() + unit * block_size_, data.data(), block_size_);
  codec_.encode(
      std::span<const std::uint8_t>(full.data(), params_.k * block_size_),
      std::span<std::uint8_t>(full.data() + params_.k * block_size_,
                              params_.r * block_size_),
      block_size_);
  write_stripe(stripe, full.span());
}

std::vector<std::uint8_t> RaidArray::read_block(std::size_t lba) {
  if (lba >= capacity_blocks())
    throw std::invalid_argument("read_block: lba out of range");
  const std::size_t stripe = lba / params_.k;
  const std::size_t unit = lba % params_.k;
  std::vector<std::uint8_t> block(block_size_);
  if (read_unit(stripe, unit, block.data()) == UnitRead::Ok) return block;
  ++stats_.degraded_reads;
  tensor::AlignedBuffer<std::uint8_t> full(params_.n() * block_size_);
  read_stripe(stripe, full.span());
  std::memcpy(block.data(), full.data() + unit * block_size_, block_size_);
  return block;
}

void RaidArray::fail_device(std::size_t device) {
  if (device >= devices_.size())
    throw std::invalid_argument("fail_device: device out of range");
  mark_device_failed(device);
}

void RaidArray::replace_device(std::size_t device) {
  if (device >= devices_.size())
    throw std::invalid_argument("replace_device: device out of range");
  if (injector_) injector_->repair_node(device);
  devices_[device].failed = false;  // blank: valid[] stays false
}

bool RaidArray::device_failed(std::size_t device) const {
  if (device >= devices_.size())
    throw std::invalid_argument("device_failed: device out of range");
  return devices_[device].failed;
}

std::size_t RaidArray::rebuild() {
  std::size_t rebuilt = 0;
  tensor::AlignedBuffer<std::uint8_t> full(params_.n() * block_size_);
  for (std::size_t s = 0; s < stripes_; ++s) {
    bool missing = false;
    for (std::size_t u = 0; u < params_.n() && !missing; ++u) {
      const Device& d = devices_[device_of(s, u)];
      if (!d.failed && !d.valid[s]) missing = true;
    }
    if (!missing) continue;
    read_stripe(s, full.span());
    for (std::size_t u = 0; u < params_.n(); ++u) {
      Device& d = devices_[device_of(s, u)];
      if (d.failed || d.valid[s]) continue;
      if (write_unit(s, u, full.data() + u * block_size_)) ++rebuilt;
    }
  }
  stats_.blocks_rebuilt += rebuilt;
  return rebuilt;
}

std::size_t RaidArray::verify() {
  std::size_t bad = 0;
  tensor::AlignedBuffer<std::uint8_t> full(params_.n() * block_size_);
  tensor::AlignedBuffer<std::uint8_t> expect(params_.r * block_size_);
  for (std::size_t s = 0; s < stripes_; ++s) {
    try {
      read_stripe(s, full.span());
    } catch (const std::runtime_error&) {
      ++bad;
      continue;
    }
    codec_.encode(
        std::span<const std::uint8_t>(full.data(), params_.k * block_size_),
        expect.span(), block_size_);
    if (std::memcmp(expect.data(), full.data() + params_.k * block_size_,
                    params_.r * block_size_) != 0)
      ++bad;
  }
  return bad;
}

StripeScrubResult RaidArray::scrub_stripe(std::size_t stripe) {
  if (stripe >= stripes_)
    throw std::invalid_argument("scrub_stripe: stripe out of range");
  const std::size_t n = params_.n();
  StripeScrubResult res;
  tensor::AlignedBuffer<std::uint8_t> full(n * block_size_);
  std::vector<std::size_t> erased;
  for (std::size_t u = 0; u < n; ++u) {
    switch (read_unit(stripe, u, full.data() + u * block_size_)) {
      case UnitRead::Ok:
        ++res.units_verified;
        break;
      case UnitRead::Corrupt:
        ++res.crc_errors;
        erased.push_back(u);
        break;
      case UnitRead::Missing:
        erased.push_back(u);
        break;
    }
  }

  if (!erased.empty()) {
    if (erased.size() > params_.r) {
      res.unrecoverable = true;
      return res;
    }
    codec_.decode(full.span(), erased, block_size_);
    for (const std::size_t u : erased) {
      if (crc32c({full.data() + u * block_size_, block_size_}) !=
          unit_crc(stripe, u)) {
        ++stats_.corruptions_detected;
        res.unrecoverable = true;  // survivors are lying; don't persist
        return res;
      }
    }
  }

  // Parity cross-check on the assembled stripe.
  tensor::AlignedBuffer<std::uint8_t> expect(params_.r * block_size_);
  codec_.encode(
      std::span<const std::uint8_t>(full.data(), params_.k * block_size_),
      expect.span(), block_size_);
  std::vector<std::size_t> heal(erased);
  for (std::size_t p = 0; p < params_.r; ++p) {
    const std::size_t u = params_.k + p;
    if (std::find(erased.begin(), erased.end(), u) != erased.end()) continue;
    if (std::memcmp(full.data() + u * block_size_,
                    expect.data() + p * block_size_, block_size_) != 0) {
      ++res.parity_errors;
      std::memcpy(full.data() + u * block_size_,
                  expect.data() + p * block_size_, block_size_);
      heal.push_back(u);
    }
  }

  for (const std::size_t u : heal) {
    // Only rewrite slots that live on an online device; blank replaced
    // devices are rebuild()'s job, dead ones have nowhere to write.
    const Device& d = devices_[device_of(stripe, u)];
    if (d.failed) continue;
    if (write_unit(stripe, u, full.data() + u * block_size_))
      ++res.units_repaired;
  }
  stats_.units_repaired += res.units_repaired;
  return res;
}

bool RaidArray::corrupt_unit(std::size_t stripe, std::size_t unit) {
  if (stripe >= stripes_ || unit >= params_.n()) return false;
  const std::size_t dev = device_of(stripe, unit);
  Device& d = devices_[dev];
  if (d.failed || !d.valid[stripe]) return false;
  slot(dev, stripe)[block_size_ / 2] ^= 0x40;  // flip one bit
  return true;
}

}  // namespace tvmec::storage
