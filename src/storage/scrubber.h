#pragma once

#include <cstdint>
#include <string>

#include "storage/raid_array.h"
#include "storage/scrub_types.h"
#include "storage/stripe_store.h"

/// Background scrubbing: the maintenance loop real deployments run
/// continuously so latent corruption is found (and repaired through the
/// erasure code) before a second fault turns it into data loss. Wraps
/// the per-stripe scrub hooks of StripeStore and RaidArray with a
/// resumable cursor, so a pass can proceed in small increments
/// interleaved with foreground traffic — call step() with a stripe
/// budget from wherever your event loop has slack, and the cursor picks
/// up where it left off, tolerating objects added or removed in between.
namespace tvmec::storage {

/// Aggregate counters for one scrub pass (or the running partial pass).
struct ScrubStats {
  std::size_t stripes_scanned = 0;
  std::size_t units_verified = 0;
  std::uint64_t bytes_verified = 0;
  std::size_t crc_errors = 0;
  std::size_t parity_errors = 0;
  std::size_t units_repaired = 0;
  std::size_t unrecoverable_stripes = 0;

  std::size_t errors() const noexcept { return crc_errors + parity_errors; }
  void add(const StripeScrubResult& r, std::size_t unit_size) noexcept {
    ++stripes_scanned;
    units_verified += r.units_verified;
    bytes_verified += static_cast<std::uint64_t>(r.units_verified) * unit_size;
    crc_errors += r.crc_errors;
    parity_errors += r.parity_errors;
    units_repaired += r.units_repaired;
    if (r.unrecoverable) ++unrecoverable_stripes;
  }
};

class Scrubber {
 public:
  /// Non-owning: the target must outlive the scrubber.
  explicit Scrubber(StripeStore& store) : store_(&store) {}
  explicit Scrubber(RaidArray& array) : array_(&array) {}

  /// Scrubs up to `max_stripes` stripes from the cursor. Returns the
  /// stats of *this increment*. When the increment reaches the end of
  /// the target, the pass completes: pass stats are latched into
  /// last_pass(), passes_completed() ticks, and the cursor rewinds.
  ScrubStats step(std::size_t max_stripes);

  /// Runs from the cursor to the end of the target (completing the
  /// current pass) and returns the stats of everything scanned by this
  /// call.
  ScrubStats run();

  /// Restarts the current pass from the beginning, discarding partial
  /// progress (completed-pass history is kept).
  void reset_cursor();

  std::size_t passes_completed() const noexcept { return passes_; }
  /// Aggregate stats of the most recently *completed* pass.
  const ScrubStats& last_pass() const noexcept { return last_; }
  /// Stats accumulated by the in-progress pass so far.
  const ScrubStats& current_pass() const noexcept { return current_; }

 private:
  /// Scrubs one stripe at the cursor and advances it. Returns false when
  /// the target is exhausted (pass complete) without scrubbing anything.
  bool scrub_next(ScrubStats& increment);
  void finish_pass();

  StripeStore* store_ = nullptr;
  RaidArray* array_ = nullptr;
  // Cursor: for a StripeStore, the object (by name) and stripe index the
  // next step resumes at; for a RaidArray, just the stripe index.
  std::string cursor_object_;
  std::size_t cursor_stripe_ = 0;
  bool cursor_started_ = false;
  ScrubStats current_;
  ScrubStats last_;
  std::size_t passes_ = 0;
};

}  // namespace tvmec::storage
