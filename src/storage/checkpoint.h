#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/tvmec.h"
#include "ec/code_params.h"
#include "tensor/buffer.h"

/// In-memory erasure-coded checkpointing for accelerator-native training —
/// the motivating application of the paper's §3: "High-performance
/// checkpointing libraries often leverage in-memory erasure coding across
/// multiple nodes to reduce the time-overhead of writing checkpoints to
/// stable storage."
///
/// Each of k training ranks contributes its state shard; the manager
/// encodes r parity shards so training survives up to r simultaneous rank
/// failures without touching stable storage. Checkpoints are versioned;
/// recovery reconstructs exactly the bytes a lost rank contributed.
namespace tvmec::storage {

class CheckpointManager {
 public:
  /// `params.k` = number of training ranks. `shard_capacity` is the
  /// fixed per-rank shard buffer size (a multiple of 8*w; shorter shards
  /// are zero-padded). Throws std::invalid_argument on bad sizes.
  CheckpointManager(const ec::CodeParams& params, std::size_t shard_capacity);

  const ec::CodeParams& params() const noexcept { return params_; }
  std::size_t shard_capacity() const noexcept { return shard_capacity_; }

  /// Takes a checkpoint from all k ranks (shards[i] is rank i's state,
  /// size <= shard_capacity). Returns the new checkpoint version.
  /// Throws std::invalid_argument on a wrong shard count or oversize.
  std::uint64_t checkpoint(
      const std::vector<std::span<const std::uint8_t>>& shards);

  std::optional<std::uint64_t> latest_version() const noexcept;

  /// Simulates losing a rank's in-memory state for the latest checkpoint.
  void lose_rank(std::size_t rank);
  bool rank_lost(std::size_t rank) const;
  std::size_t ranks_lost() const noexcept;

  /// Reconstructs the exact bytes rank `rank` checkpointed last, whether
  /// or not its shard is lost (lost shards are rebuilt via parity).
  /// Throws std::runtime_error when more than r ranks are lost, or
  /// std::logic_error when no checkpoint was ever taken.
  std::vector<std::uint8_t> recover_shard(std::size_t rank);

 private:
  struct Version {
    std::uint64_t id = 0;
    std::vector<std::size_t> shard_sizes;        // original per-rank sizes
    tensor::AlignedBuffer<std::uint8_t> stripe;  // k data + r parity units
    std::vector<bool> lost;                      // per data rank
    bool recovered = false;  // decode already re-ran on this stripe
  };

  ec::CodeParams params_;
  std::size_t shard_capacity_;
  core::Codec codec_;
  std::optional<Version> latest_;
  std::uint64_t next_id_ = 1;
};

}  // namespace tvmec::storage
