#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/tvmec.h"
#include "ec/code_params.h"
#include "storage/fault_injector.h"
#include "storage/retry.h"
#include "tensor/buffer.h"

/// In-memory erasure-coded checkpointing for accelerator-native training —
/// the motivating application of the paper's §3: "High-performance
/// checkpointing libraries often leverage in-memory erasure coding across
/// multiple nodes to reduce the time-overhead of writing checkpoints to
/// stable storage."
///
/// Each of k training ranks contributes its state shard; the manager
/// encodes r parity shards so training survives up to r simultaneous rank
/// failures without touching stable storage. Checkpoints are versioned;
/// recovery reconstructs exactly the bytes a lost rank contributed.
///
/// Fault model: an attached FaultInjector is consulted when each of the
/// n shard units is written at checkpoint time and read at recovery time
/// (rank `u` plays the role of node `u`). Every unit carries a CRC-32C
/// of its intended contents, so silently corrupted shards are detected
/// at recovery, rebuilt through parity, and the rebuild itself verified.
namespace tvmec::storage {

struct CheckpointStats {
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t shards_recovered = 0;      ///< recover_shard calls served
  std::uint64_t corruptions_detected = 0;  ///< checksum mismatches caught
  std::uint64_t units_repaired = 0;        ///< shard units rebuilt in place
};

class CheckpointManager {
 public:
  /// `params.k` = number of training ranks. `shard_capacity` is the
  /// fixed per-rank shard buffer size (a multiple of 8*w; shorter shards
  /// are zero-padded). Throws std::invalid_argument on bad sizes.
  CheckpointManager(const ec::CodeParams& params, std::size_t shard_capacity);

  const ec::CodeParams& params() const noexcept { return params_; }
  std::size_t shard_capacity() const noexcept { return shard_capacity_; }
  const CheckpointStats& stats() const noexcept { return stats_; }

  /// Non-owning fault injector consulted on shard unit writes/reads.
  void attach_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return injector_; }

  void set_retry_policy(const RetryPolicy& policy) noexcept {
    retry_ = policy;
  }
  const RetryPolicy& retry_policy() const noexcept { return retry_; }
  const RetryStats& retry_stats() const noexcept { return retry_stats_; }

  /// Takes a checkpoint from all k ranks (shards[i] is rank i's state,
  /// size <= shard_capacity). Returns the new checkpoint version. Any
  /// rank losses recorded against the previous checkpoint are cleared —
  /// a fresh checkpoint is a fresh failure domain. Throws
  /// std::invalid_argument on a wrong shard count or oversize.
  std::uint64_t checkpoint(
      const std::vector<std::span<const std::uint8_t>>& shards);

  std::optional<std::uint64_t> latest_version() const noexcept;

  /// Simulates losing a rank's in-memory state for the latest checkpoint.
  /// Losing more than r ranks is permitted (failures don't consult
  /// quotas); the unrecoverable condition is reported by recover_shard.
  void lose_rank(std::size_t rank);
  bool rank_lost(std::size_t rank) const;
  std::size_t ranks_lost() const noexcept;

  /// Reconstructs the exact bytes rank `rank` checkpointed last, whether
  /// or not its shard is lost (lost or corrupt shards are rebuilt via
  /// parity, and the rebuild is CRC-verified, healing the stored stripe
  /// in place). Throws std::runtime_error with a clear message when more
  /// than r units are lost/corrupt, or std::logic_error when no
  /// checkpoint was ever taken.
  std::vector<std::uint8_t> recover_shard(std::size_t rank);

 private:
  struct Version {
    std::uint64_t id = 0;
    std::vector<std::size_t> shard_sizes;        // original per-rank sizes
    tensor::AlignedBuffer<std::uint8_t> stripe;  // k data + r parity units
    std::vector<std::uint32_t> unit_crcs;        // intended CRC per unit (n)
    std::vector<bool> lost;                      // per unit (n), not just k
  };

  std::uint8_t* unit(std::size_t u) noexcept {
    return latest_->stripe.data() + u * shard_capacity_;
  }

  ec::CodeParams params_;
  std::size_t shard_capacity_;
  core::Codec codec_;
  std::optional<Version> latest_;
  std::uint64_t next_id_ = 1;
  CheckpointStats stats_;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_;
  RetryStats retry_stats_;
};

}  // namespace tvmec::storage
