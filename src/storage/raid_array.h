#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/tvmec.h"
#include "ec/code_params.h"
#include "storage/fault_injector.h"
#include "storage/retry.h"
#include "storage/scrub_types.h"

/// A RAID-6-style erasure-coded block array over simulated devices — the
/// classic block-layer integration of erasure coding (Patterson/Gibson/
/// Katz RAID, cited by the paper as the origin story).
///
/// n = k + r devices hold fixed-size blocks. Logical block `lba` lives in
/// stripe lba/k at stripe-position lba%k; units are rotated across
/// devices per stripe (left-symmetric layout) so parity traffic spreads
/// evenly. Small writes use the I/O-minimal parity patch (read old block
/// + r parities, GEMM the delta, write back) instead of re-encoding the
/// stripe; reads reconstruct through parity when devices are failed; a
/// replaced device is rebuilt stripe by stripe.
///
/// Fault model: every device block read/write consults an attached
/// FaultInjector. An array-level CRC-32C table (RAID metadata, separate
/// from device contents) records the intended checksum of every unit, so
/// silent device corruption is caught on read, retried (read-side flips
/// and transient errors are transient), and finally reconstructed
/// through parity — with the reconstruction itself CRC-verified.
namespace tvmec::storage {

struct RaidStats {
  std::uint64_t block_writes = 0;
  std::uint64_t small_write_patches = 0;  ///< writes served by parity delta
  std::uint64_t full_stripe_writes = 0;   ///< writes that re-encoded a stripe
  std::uint64_t degraded_reads = 0;
  std::uint64_t blocks_rebuilt = 0;
  std::uint64_t corruptions_detected = 0;  ///< checksum mismatches caught
  std::uint64_t units_repaired = 0;        ///< units rewritten by scrub
};

class RaidArray {
 public:
  /// block_size must be a positive multiple of 8*w. Throws
  /// std::invalid_argument on bad geometry.
  RaidArray(const ec::CodeParams& params, std::size_t block_size,
            std::size_t stripes);

  std::size_t num_devices() const noexcept { return params_.n(); }
  std::size_t block_size() const noexcept { return block_size_; }
  /// Logical capacity in blocks (k per stripe).
  std::size_t capacity_blocks() const noexcept {
    return params_.k * stripes_;
  }
  std::size_t num_stripes() const noexcept { return stripes_; }
  const RaidStats& stats() const noexcept { return stats_; }

  /// Non-owning fault injector consulted on every device read/write.
  void attach_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return injector_; }

  void set_retry_policy(const RetryPolicy& policy) noexcept {
    retry_ = policy;
  }
  const RetryPolicy& retry_policy() const noexcept { return retry_; }
  const RetryStats& retry_stats() const noexcept { return retry_stats_; }

  /// Shares a decode-plan cache (see StripeStore::set_plan_cache):
  /// degraded reads and rebuilds skip inversion for already-planned loss
  /// patterns. Null detaches.
  void set_plan_cache(std::shared_ptr<core::PlanCache> cache) {
    codec_.set_plan_cache(std::move(cache));
  }

  /// Writes one logical block. When every device is online this is a
  /// RAID small write (1 data read + 1 data write + r parity
  /// read-modify-writes); with failures it falls back to a full-stripe
  /// read-reconstruct-re-encode. Throws std::invalid_argument on a bad
  /// lba or size, std::runtime_error when the stripe is unrecoverable.
  void write_block(std::size_t lba, std::span<const std::uint8_t> data);

  /// Reads one logical block, reconstructing if its device is down or
  /// its contents fail the checksum after retries.
  std::vector<std::uint8_t> read_block(std::size_t lba);

  /// Takes a device offline, losing its contents.
  void fail_device(std::size_t device);
  /// Installs a blank replacement for a failed device (does not rebuild).
  /// Also clears any crash the attached fault injector recorded.
  void replace_device(std::size_t device);
  bool device_failed(std::size_t device) const;

  /// Reconstructs every block of every online-but-blank device.
  /// Returns blocks rebuilt. Throws std::runtime_error if some stripe
  /// has more than r unavailable units.
  std::size_t rebuild();

  /// Verifies parity of every stripe; returns the number of inconsistent
  /// stripes (0 on a healthy array).
  std::size_t verify();

  /// Verifies and repairs one stripe (CRC per unit, parity consistency,
  /// GEMM reconstruction of bad units, verified rewrite). Driven
  /// incrementally by the Scrubber. Throws std::invalid_argument on a
  /// bad stripe index.
  StripeScrubResult scrub_stripe(std::size_t stripe);

  /// Test/chaos hook: flips one byte of the stored copy of unit `unit`
  /// in `stripe` without touching the CRC table. Returns false if the
  /// device is failed or the slot invalid.
  bool corrupt_unit(std::size_t stripe, std::size_t unit);

 private:
  struct Device {
    bool failed = false;
    std::vector<std::uint8_t> blocks;    // stripes * block_size bytes
    std::vector<bool> valid;             // per stripe-slot
  };

  enum class UnitRead { Ok, Missing, Corrupt };

  /// Device holding unit `u` of stripe `s` (rotated layout).
  std::size_t device_of(std::size_t stripe, std::size_t unit) const noexcept {
    return (unit + stripe) % params_.n();
  }
  std::uint8_t* slot(std::size_t device, std::size_t stripe) noexcept {
    return devices_[device].blocks.data() + stripe * block_size_;
  }
  std::uint32_t& unit_crc(std::size_t stripe, std::size_t unit) noexcept {
    return crcs_[stripe * params_.n() + unit];
  }

  /// Reads unit u of `stripe` into dest through faults/retries/CRC.
  UnitRead read_unit(std::size_t stripe, std::size_t u, std::uint8_t* dest);
  /// Persists `src` as unit u of `stripe` (records the intended CRC in
  /// the metadata table even when the device is down, so a later rebuild
  /// can be verified). Returns false when nothing was persisted.
  bool write_unit(std::size_t stripe, std::size_t u, const std::uint8_t* src);
  void mark_device_failed(std::size_t device);

  /// Reads the full stripe into `out` (n units), reconstructing missing/
  /// corrupt units (CRC-verified); returns true if reconstruction ran.
  bool read_stripe(std::size_t stripe, std::span<std::uint8_t> out);
  /// Writes stripe units from `in` to every online device.
  void write_stripe(std::size_t stripe, std::span<const std::uint8_t> in);

  ec::CodeParams params_;
  std::size_t block_size_;
  std::size_t stripes_;
  core::Codec codec_;
  std::vector<Device> devices_;
  /// Array-level metadata: intended CRC-32C of every (stripe, unit).
  std::vector<std::uint32_t> crcs_;
  RaidStats stats_;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_;
  RetryStats retry_stats_;
};

}  // namespace tvmec::storage
