#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/tvmec.h"
#include "ec/code_params.h"

/// A RAID-6-style erasure-coded block array over simulated devices — the
/// classic block-layer integration of erasure coding (Patterson/Gibson/
/// Katz RAID, cited by the paper as the origin story).
///
/// n = k + r devices hold fixed-size blocks. Logical block `lba` lives in
/// stripe lba/k at stripe-position lba%k; units are rotated across
/// devices per stripe (left-symmetric layout) so parity traffic spreads
/// evenly. Small writes use the I/O-minimal parity patch (read old block
/// + r parities, GEMM the delta, write back) instead of re-encoding the
/// stripe; reads reconstruct through parity when devices are failed; a
/// replaced device is rebuilt stripe by stripe.
namespace tvmec::storage {

struct RaidStats {
  std::uint64_t block_writes = 0;
  std::uint64_t small_write_patches = 0;  ///< writes served by parity delta
  std::uint64_t full_stripe_writes = 0;   ///< writes that re-encoded a stripe
  std::uint64_t degraded_reads = 0;
  std::uint64_t blocks_rebuilt = 0;
};

class RaidArray {
 public:
  /// block_size must be a positive multiple of 8*w. Throws
  /// std::invalid_argument on bad geometry.
  RaidArray(const ec::CodeParams& params, std::size_t block_size,
            std::size_t stripes);

  std::size_t num_devices() const noexcept { return params_.n(); }
  std::size_t block_size() const noexcept { return block_size_; }
  /// Logical capacity in blocks (k per stripe).
  std::size_t capacity_blocks() const noexcept {
    return params_.k * stripes_;
  }
  const RaidStats& stats() const noexcept { return stats_; }

  /// Writes one logical block. When every device is online this is a
  /// RAID small write (1 data read + 1 data write + r parity
  /// read-modify-writes); with failures it falls back to a full-stripe
  /// read-reconstruct-re-encode. Throws std::invalid_argument on a bad
  /// lba or size, std::runtime_error when the stripe is unrecoverable.
  void write_block(std::size_t lba, std::span<const std::uint8_t> data);

  /// Reads one logical block, reconstructing if its device is down.
  std::vector<std::uint8_t> read_block(std::size_t lba);

  /// Takes a device offline, losing its contents.
  void fail_device(std::size_t device);
  /// Installs a blank replacement for a failed device (does not rebuild).
  void replace_device(std::size_t device);
  bool device_failed(std::size_t device) const;

  /// Reconstructs every block of every online-but-blank device.
  /// Returns blocks rebuilt. Throws std::runtime_error if some stripe
  /// has more than r unavailable units.
  std::size_t rebuild();

  /// Verifies parity of every stripe; returns the number of inconsistent
  /// stripes (0 on a healthy array).
  std::size_t verify();

 private:
  struct Device {
    bool failed = false;
    std::vector<std::uint8_t> blocks;    // stripes * block_size bytes
    std::vector<bool> valid;             // per stripe-slot
  };

  /// Device holding unit `u` of stripe `s` (rotated layout).
  std::size_t device_of(std::size_t stripe, std::size_t unit) const noexcept {
    return (unit + stripe) % params_.n();
  }
  std::uint8_t* slot(std::size_t device, std::size_t stripe) noexcept {
    return devices_[device].blocks.data() + stripe * block_size_;
  }
  /// Reads the full stripe into `out` (n units), reconstructing missing
  /// units; returns true if reconstruction was needed.
  bool read_stripe(std::size_t stripe, std::span<std::uint8_t> out);
  /// Writes stripe units from `in` to every online device.
  void write_stripe(std::size_t stripe, std::span<const std::uint8_t> in);

  ec::CodeParams params_;
  std::size_t block_size_;
  std::size_t stripes_;
  core::Codec codec_;
  std::vector<Device> devices_;
  RaidStats stats_;
};

}  // namespace tvmec::storage
