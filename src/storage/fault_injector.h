#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <span>
#include <string_view>

/// Deterministic, seeded fault injection for the simulated storage
/// layers. The paper motivates erasure coding with failure-driven
/// workloads (RAID, object stores, in-memory checkpointing, §3); this is
/// the failure side of that story. The node/device layers of
/// StripeStore, RaidArray, and CheckpointManager consult an attached
/// FaultInjector on *every* simulated read and write, so chaos tests can
/// subject the whole stack to the classic taxonomy:
///
///  - silent bit flips     (persisted payload corrupted, checksum not)
///  - torn writes          (only a prefix persists; the tail is stale
///                          garbage, as on a powered-off sector)
///  - transient read errors (an op fails N times, then succeeds — the
///                          retry-with-backoff target)
///  - permanent crashes    (a node/device dies mid-op and stays dead
///                          until explicitly repaired)
///  - injected latency     (slow-node simulation; accounted, and
///                          optionally actually slept)
///
/// The simulated cluster's network layer consults the same injector for
/// link-level faults, so one seeded fault source drives both disk and
/// wire chaos (no second injector to keep in sync for reruns):
///
///  - message drops        (a send vanishes; the retry layer's problem)
///  - duplicate delivery   (the message arrives twice — consumers must
///                          be idempotent)
///  - partition windows    (a link blackholes every send for N ops,
///                          then heals — the transient-burst discipline
///                          applied to links)
///
/// Everything is driven by one seeded mt19937_64, so the same seed and
/// the same op sequence reproduce the same faults byte for byte — the
/// property the chaos tests assert.
namespace tvmec::storage {

/// Per-op fault probabilities. All default to zero (a no-op injector).
struct FaultPolicy {
  double write_bit_flip = 0.0;  ///< P[flip one stored bit] per write
  double torn_write = 0.0;      ///< P[tail replaced by garbage] per write
  double read_bit_flip = 0.0;   ///< P[flip one bit of the returned copy]
  double transient_read = 0.0;  ///< P[start a transient-error burst]
  std::size_t transient_failures = 2;  ///< burst length: fail N, then ok
  double crash = 0.0;           ///< P[node dies permanently] per op
  double delay = 0.0;           ///< P[op is slowed] per op
  std::chrono::microseconds delay_amount{0};
  bool sleep_on_delay = false;  ///< actually sleep (benches), or account only

  // Link-level fault kinds, consulted by the cluster's network model on
  // every send. Same seeded stream as the disk faults above.
  double link_drop = 0.0;       ///< P[a send silently vanishes]
  double link_duplicate = 0.0;  ///< P[a send is delivered twice]
  double link_partition = 0.0;  ///< P[a send opens a partition window]
  std::size_t partition_ops = 16;  ///< window length: drop N sends, then heal

  /// True when every probability is zero (fast-path check).
  bool quiet() const noexcept {
    return write_bit_flip == 0.0 && torn_write == 0.0 &&
           read_bit_flip == 0.0 && transient_read == 0.0 && crash == 0.0 &&
           delay == 0.0 && link_drop == 0.0 && link_duplicate == 0.0 &&
           link_partition == 0.0;
  }
};

struct FaultStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t write_bit_flips = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t writes_corrupted = 0;  ///< writes hit by >=1 flip/tear
  std::uint64_t read_bit_flips = 0;
  std::uint64_t transient_bursts = 0;  ///< bursts started
  std::uint64_t transient_errors = 0;  ///< individual failed read attempts
  std::uint64_t crashes = 0;
  std::uint64_t delays = 0;
  std::chrono::microseconds delay_injected{0};
  std::uint64_t link_sends = 0;        ///< on_send calls
  std::uint64_t link_drops = 0;        ///< random drops (not partition drops)
  std::uint64_t link_duplicates = 0;
  std::uint64_t partitions_opened = 0;
  std::uint64_t partition_drops = 0;   ///< sends eaten by an open window
};

/// What on_read did to the attempt.
enum class ReadFault {
  None,      ///< read served (payload may still have been bit-flipped)
  Transient, ///< this attempt failed; retrying may succeed
  Crash,     ///< the node died; its contents are gone
};

/// What on_send did to the message.
enum class LinkFault {
  None,       ///< delivered once
  Drop,       ///< never arrives (random drop or open partition window)
  Duplicate,  ///< delivered twice; receivers must be idempotent
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPolicy& policy = {},
                         std::uint64_t seed = 0xFA17);

  const FaultPolicy& policy() const noexcept { return policy_; }
  /// Swaps the active policy (e.g. fault phase -> clean heal phase).
  /// Crashed nodes and in-flight transient bursts are kept.
  void set_policy(const FaultPolicy& policy) noexcept { policy_ = policy; }

  /// Called with the bytes about to be persisted on `node`; may corrupt
  /// them in place (bit flip / torn tail). Returns false when the node
  /// crashed — the write is lost and the node is dead from now on.
  /// `unit_key` identifies the logical unit (see key()).
  bool on_write(std::size_t node, std::uint64_t unit_key,
                std::span<std::uint8_t> bytes);

  /// Called with a freshly read *copy* of a unit's stored bytes; may
  /// corrupt the copy (read-side flip, caught by checksums and healed by
  /// a re-read), fail the attempt (Transient), or kill the node (Crash).
  ReadFault on_read(std::size_t node, std::uint64_t unit_key,
                    std::span<std::uint8_t> bytes);

  /// Called by the network model for every message on `link_key` (use
  /// key(src, dst) for a directed link). An open partition window eats
  /// the send and shortens by one op; otherwise the drop / duplicate /
  /// partition-open probabilities roll in that order.
  LinkFault on_send(std::uint64_t link_key);

  bool link_partitioned(std::uint64_t link_key) const {
    return partitioned_left_.contains(link_key);
  }
  /// Chaos hook: blackhole `link_key` for the next `ops` sends.
  void partition_link(std::uint64_t link_key, std::size_t ops);
  /// Chaos hook: heal a partition window early.
  void heal_link(std::uint64_t link_key) { partitioned_left_.erase(link_key); }

  bool crashed(std::size_t node) const { return crashed_.contains(node); }
  /// Chaos hook: kill a node now, deterministically.
  void crash_node(std::size_t node);
  /// The operator replaced the hardware: ops on `node` may succeed again.
  void repair_node(std::size_t node) { crashed_.erase(node); }

  const FaultStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = FaultStats{}; }

  /// Stable unit keys for transient-burst tracking.
  static std::uint64_t key(std::string_view name, std::size_t a,
                           std::size_t b) noexcept;
  static std::uint64_t key(std::size_t a, std::size_t b,
                           std::size_t c = 0) noexcept;

 private:
  bool roll(double p);
  void delay_op();

  FaultPolicy policy_;
  std::mt19937_64 rng_;
  std::set<std::size_t> crashed_;
  /// Remaining failures of an active transient burst, per unit key.
  std::map<std::uint64_t, std::size_t> transient_left_;
  /// Remaining dropped sends of an open partition window, per link key.
  std::map<std::uint64_t, std::size_t> partitioned_left_;
  FaultStats stats_;
};

}  // namespace tvmec::storage
