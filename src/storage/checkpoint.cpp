#include "storage/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "storage/crc32c.h"

namespace tvmec::storage {

CheckpointManager::CheckpointManager(const ec::CodeParams& params,
                                     std::size_t shard_capacity)
    : params_(params), shard_capacity_(shard_capacity), codec_(params) {
  ec::packet_bytes(params, shard_capacity);  // validates the capacity
}

std::uint64_t CheckpointManager::checkpoint(
    const std::vector<std::span<const std::uint8_t>>& shards) {
  if (shards.size() != params_.k)
    throw std::invalid_argument("checkpoint: expected one shard per rank");
  Version v;
  v.id = next_id_++;
  v.shard_sizes.resize(params_.k);
  v.stripe = tensor::AlignedBuffer<std::uint8_t>(params_.n() * shard_capacity_);
  v.unit_crcs.resize(params_.n());
  v.lost.assign(params_.n(), false);
  for (std::size_t i = 0; i < params_.k; ++i) {
    if (shards[i].size() > shard_capacity_)
      throw std::invalid_argument("checkpoint: shard exceeds capacity");
    v.shard_sizes[i] = shards[i].size();
    if (!shards[i].empty())  // empty spans may carry a null data()
      std::memcpy(v.stripe.data() + i * shard_capacity_, shards[i].data(),
                  shards[i].size());
    // Padding is already zero (AlignedBuffer zero-initializes).
  }
  codec_.encode(
      std::span<const std::uint8_t>(v.stripe.data(),
                                    params_.k * shard_capacity_),
      std::span<std::uint8_t>(v.stripe.data() + params_.k * shard_capacity_,
                              params_.r * shard_capacity_),
      shard_capacity_);
  // Persist each unit into "rank memory": checksum the intended bytes,
  // then let the injector corrupt the stored copy or crash the rank.
  for (std::size_t u = 0; u < params_.n(); ++u) {
    std::uint8_t* bytes = v.stripe.data() + u * shard_capacity_;
    v.unit_crcs[u] = crc32c({bytes, shard_capacity_});
    if (injector_ &&
        !injector_->on_write(u, FaultInjector::key("ckpt", v.id, u),
                             {bytes, shard_capacity_}))
      v.lost[u] = true;  // the rank died mid-checkpoint; its unit is gone
  }
  latest_ = std::move(v);
  ++stats_.checkpoints_taken;
  return latest_->id;
}

std::optional<std::uint64_t> CheckpointManager::latest_version()
    const noexcept {
  if (!latest_) return std::nullopt;
  return latest_->id;
}

void CheckpointManager::lose_rank(std::size_t rank) {
  if (!latest_) throw std::logic_error("lose_rank: no checkpoint taken");
  if (rank >= params_.k)
    throw std::invalid_argument("lose_rank: rank out of range");
  if (latest_->lost[rank]) return;
  latest_->lost[rank] = true;
  // The rank's memory is gone: scrub its shard to make the loss real.
  std::memset(unit(rank), 0xDD, shard_capacity_);
}

bool CheckpointManager::rank_lost(std::size_t rank) const {
  if (!latest_) return false;
  if (rank >= params_.k)
    throw std::invalid_argument("rank_lost: rank out of range");
  return latest_->lost[rank];
}

std::size_t CheckpointManager::ranks_lost() const noexcept {
  if (!latest_) return 0;
  return static_cast<std::size_t>(std::count(
      latest_->lost.begin(), latest_->lost.begin() + params_.k, true));
}

std::vector<std::uint8_t> CheckpointManager::recover_shard(std::size_t rank) {
  if (!latest_) throw std::logic_error("recover_shard: no checkpoint taken");
  if (rank >= params_.k)
    throw std::invalid_argument("recover_shard: rank out of range");

  // Survey every unit: lost ones are erased; present ones are read
  // through the injector with retries and CRC-verified.
  std::vector<std::size_t> erased;
  std::vector<std::uint8_t> copy(shard_capacity_);
  for (std::size_t u = 0; u < params_.n(); ++u) {
    if (latest_->lost[u]) {
      erased.push_back(u);
      continue;
    }
    if (!injector_) {
      if (crc32c({unit(u), shard_capacity_}) != latest_->unit_crcs[u]) {
        ++stats_.corruptions_detected;
        erased.push_back(u);
      }
      continue;
    }
    const std::uint64_t key = FaultInjector::key("ckpt", latest_->id, u);
    bool corrupt = false;
    const bool ok =
        with_retries(retry_, retry_stats_, key, [&]() -> Attempt {
          if (injector_->crashed(u)) return Attempt::Abort;
          std::memcpy(copy.data(), unit(u), shard_capacity_);
          switch (injector_->on_read(u, key, copy)) {
            case ReadFault::Crash:
              return Attempt::Abort;
            case ReadFault::Transient:
              corrupt = false;
              return Attempt::Retry;
            case ReadFault::None:
              break;
          }
          corrupt = crc32c(copy) != latest_->unit_crcs[u];
          return corrupt ? Attempt::Retry : Attempt::Success;
        });
    if (!ok) {
      if (corrupt) ++stats_.corruptions_detected;
      latest_->lost[u] = true;  // crash / exhausted: treat the unit as gone
      erased.push_back(u);
    }
  }

  if (erased.size() > params_.r)
    throw std::runtime_error(
        "CheckpointManager::recover_shard: " + std::to_string(erased.size()) +
        " shard units lost or corrupt, but the code only tolerates r=" +
        std::to_string(params_.r));

  if (!erased.empty()) {
    codec_.decode(latest_->stripe.span(), erased, shard_capacity_);
    // CRC-verify the reconstruction before trusting or keeping it.
    for (const std::size_t u : erased) {
      if (crc32c({unit(u), shard_capacity_}) != latest_->unit_crcs[u]) {
        ++stats_.corruptions_detected;
        throw std::runtime_error(
            "CheckpointManager: reconstructed shard failed checksum "
            "verification");
      }
    }
    // The stripe is whole again: clear the loss records (self-healing).
    std::fill(latest_->lost.begin(), latest_->lost.end(), false);
    stats_.units_repaired += erased.size();
  }

  ++stats_.shards_recovered;
  const std::uint8_t* shard = unit(rank);
  return std::vector<std::uint8_t>(shard, shard + latest_->shard_sizes[rank]);
}

}  // namespace tvmec::storage
