#include "storage/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace tvmec::storage {

CheckpointManager::CheckpointManager(const ec::CodeParams& params,
                                     std::size_t shard_capacity)
    : params_(params), shard_capacity_(shard_capacity), codec_(params) {
  ec::packet_bytes(params, shard_capacity);  // validates the capacity
}

std::uint64_t CheckpointManager::checkpoint(
    const std::vector<std::span<const std::uint8_t>>& shards) {
  if (shards.size() != params_.k)
    throw std::invalid_argument("checkpoint: expected one shard per rank");
  Version v;
  v.id = next_id_++;
  v.shard_sizes.resize(params_.k);
  v.stripe = tensor::AlignedBuffer<std::uint8_t>(params_.n() * shard_capacity_);
  v.lost.assign(params_.k, false);
  for (std::size_t i = 0; i < params_.k; ++i) {
    if (shards[i].size() > shard_capacity_)
      throw std::invalid_argument("checkpoint: shard exceeds capacity");
    v.shard_sizes[i] = shards[i].size();
    std::memcpy(v.stripe.data() + i * shard_capacity_, shards[i].data(),
                shards[i].size());
    // Padding is already zero (AlignedBuffer zero-initializes).
  }
  codec_.encode(
      std::span<const std::uint8_t>(v.stripe.data(),
                                    params_.k * shard_capacity_),
      std::span<std::uint8_t>(v.stripe.data() + params_.k * shard_capacity_,
                              params_.r * shard_capacity_),
      shard_capacity_);
  latest_ = std::move(v);
  return latest_->id;
}

std::optional<std::uint64_t> CheckpointManager::latest_version()
    const noexcept {
  if (!latest_) return std::nullopt;
  return latest_->id;
}

void CheckpointManager::lose_rank(std::size_t rank) {
  if (!latest_) throw std::logic_error("lose_rank: no checkpoint taken");
  if (rank >= params_.k)
    throw std::invalid_argument("lose_rank: rank out of range");
  if (latest_->lost[rank]) return;
  latest_->lost[rank] = true;
  latest_->recovered = false;
  // The rank's memory is gone: scrub its shard to make the loss real.
  std::memset(latest_->stripe.data() + rank * shard_capacity_, 0xDD,
              shard_capacity_);
}

bool CheckpointManager::rank_lost(std::size_t rank) const {
  if (!latest_) return false;
  if (rank >= params_.k)
    throw std::invalid_argument("rank_lost: rank out of range");
  return latest_->lost[rank];
}

std::size_t CheckpointManager::ranks_lost() const noexcept {
  if (!latest_) return 0;
  return static_cast<std::size_t>(
      std::count(latest_->lost.begin(), latest_->lost.end(), true));
}

std::vector<std::uint8_t> CheckpointManager::recover_shard(std::size_t rank) {
  if (!latest_) throw std::logic_error("recover_shard: no checkpoint taken");
  if (rank >= params_.k)
    throw std::invalid_argument("recover_shard: rank out of range");

  if (!latest_->recovered && ranks_lost() > 0) {
    std::vector<std::size_t> erased;
    for (std::size_t i = 0; i < params_.k; ++i)
      if (latest_->lost[i]) erased.push_back(i);
    codec_.decode(latest_->stripe.span(), erased, shard_capacity_);
    latest_->recovered = true;
  }
  const std::uint8_t* shard = latest_->stripe.data() + rank * shard_capacity_;
  return std::vector<std::uint8_t>(shard, shard + latest_->shard_sizes[rank]);
}

}  // namespace tvmec::storage
