#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/tvmec.h"
#include "ec/code_params.h"
#include "storage/crc32c.h"

/// An in-memory erasure-coded object store: the "real storage system"
/// integration target the paper's future work calls for ("integrate our
/// prototype into real storage systems"). Objects are striped over k
/// data units + r parity units, placed across simulated storage nodes
/// with rotation, and survive up to r node failures per stripe.
///
/// All coding runs through the GEMM-backed Codec, exercising exactly the
/// contiguous-layout integration path §5 prescribes.
namespace tvmec::storage {

/// Health/state counters exposed for tests and examples.
struct StoreStats {
  std::size_t objects = 0;
  std::size_t stripes_written = 0;
  std::size_t degraded_reads = 0;     ///< reads that needed reconstruction
  std::size_t units_repaired = 0;     ///< units rebuilt by repair()
  std::size_t failed_nodes = 0;
  std::size_t corruptions_detected = 0;  ///< checksum mismatches caught
};

class StripeStore {
 public:
  /// num_nodes must be >= k + r so each stripe's units land on distinct
  /// nodes (throws std::invalid_argument otherwise). unit_size must be a
  /// positive multiple of 8*w.
  StripeStore(const ec::CodeParams& params, std::size_t unit_size,
              std::size_t num_nodes);

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  std::size_t unit_size() const noexcept { return unit_size_; }
  const ec::CodeParams& params() const noexcept { return params_; }
  const StoreStats& stats() const noexcept { return stats_; }

  /// Stores (or overwrites) an object: splits it into stripes of
  /// k*unit_size bytes (last stripe zero-padded), encodes, places units.
  /// Empty objects are allowed.
  void put(const std::string& name, std::span<const std::uint8_t> bytes);

  /// Retrieves an object, reconstructing through parities when nodes are
  /// down (degraded read). Returns nullopt if the object does not exist;
  /// throws std::runtime_error if too many of a stripe's nodes are down.
  std::optional<std::vector<std::uint8_t>> get(const std::string& name);

  bool exists(const std::string& name) const;
  void remove(const std::string& name);

  /// Marks a node failed and drops everything it stored.
  void fail_node(std::size_t node);
  /// Brings a failed node back empty (a replacement disk).
  void revive_node(std::size_t node);
  bool node_failed(std::size_t node) const;

  /// Rebuilds every unit lost to failed-then-revived nodes onto the
  /// revived nodes. Returns the number of units reconstructed. Throws
  /// std::runtime_error if some stripe is unrecoverable.
  std::size_t repair();

  /// Full integrity pass: verifies every unit's CRC-32C and every
  /// stripe's parity consistency, rebuilding any unit that fails either
  /// check from the stripe's survivors. Returns the number of corrupt
  /// units found (0 on a healthy store).
  std::size_t scrub();

  /// Test/chaos hook: silently flips one byte of a stored unit without
  /// updating its checksum (a simulated latent disk error). Returns
  /// false if that unit is not currently stored on a live node.
  bool corrupt_unit(const std::string& name, std::size_t stripe,
                    std::size_t unit);

 private:
  struct StripeLocation {
    /// Node holding each of the stripe's n units.
    std::vector<std::size_t> nodes;
  };
  struct ObjectMeta {
    std::size_t size = 0;
    std::vector<StripeLocation> stripes;
  };
  /// A stored unit: payload plus the checksum that guards it. Parities
  /// protect against loss; the CRC catches silent corruption.
  struct StoredUnit {
    std::vector<std::uint8_t> bytes;
    std::uint32_t crc = 0;
  };
  struct Node {
    bool failed = false;
    /// Unit payloads keyed by (object, stripe index, unit index).
    std::map<std::tuple<std::string, std::size_t, std::size_t>, StoredUnit>
        units;
  };

  /// Reads stripe `s` of `meta`, reconstructing erased units; returns the
  /// full n-unit stripe buffer.
  std::vector<std::uint8_t> read_stripe(const std::string& name,
                                        const ObjectMeta& meta,
                                        std::size_t s, bool* degraded);

  ec::CodeParams params_;
  std::size_t unit_size_;
  core::Codec codec_;
  std::vector<Node> nodes_;
  std::map<std::string, ObjectMeta> objects_;
  StoreStats stats_;
  std::size_t next_rotation_ = 0;
};

}  // namespace tvmec::storage
