#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/tvmec.h"
#include "ec/code_params.h"
#include "storage/crc32c.h"
#include "storage/fault_injector.h"
#include "storage/retry.h"
#include "storage/scrub_types.h"

/// An in-memory erasure-coded object store: the "real storage system"
/// integration target the paper's future work calls for ("integrate our
/// prototype into real storage systems"). Objects are striped over k
/// data units + r parity units, placed across simulated storage nodes
/// with rotation, and survive up to r node failures per stripe.
///
/// All coding runs through the GEMM-backed Codec, exercising exactly the
/// contiguous-layout integration path §5 prescribes.
///
/// Fault model: every simulated unit read/write consults an attached
/// FaultInjector (silent bit flips, torn writes, transient read errors,
/// crashes, latency). Unit payloads carry CRC-32C checksums both on the
/// node and in object metadata, so corruption is detected on read,
/// transient errors are retried with exponential backoff (RetryPolicy),
/// and reconstruction is itself checksum-verified before any bytes are
/// returned or persisted.
namespace tvmec::storage {

/// Health/state counters exposed for tests and examples.
struct StoreStats {
  std::size_t objects = 0;
  std::size_t stripes_written = 0;
  std::size_t degraded_reads = 0;     ///< reads that needed reconstruction
  std::size_t units_repaired = 0;     ///< units rebuilt by repair()/scrub
  std::size_t failed_nodes = 0;
  std::size_t corruptions_detected = 0;  ///< checksum mismatches caught
};

class StripeStore {
 public:
  /// num_nodes must be >= k + r so each stripe's units land on distinct
  /// nodes (throws std::invalid_argument otherwise). unit_size must be a
  /// positive multiple of 8*w.
  StripeStore(const ec::CodeParams& params, std::size_t unit_size,
              std::size_t num_nodes);

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  std::size_t unit_size() const noexcept { return unit_size_; }
  const ec::CodeParams& params() const noexcept { return params_; }
  const StoreStats& stats() const noexcept { return stats_; }

  /// Attaches (or detaches, with nullptr) a fault injector consulted on
  /// every simulated unit read and write. Non-owning; the injector must
  /// outlive the store.
  void attach_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return injector_; }

  /// Retry policy applied to transiently failing unit reads before the
  /// store falls back to degraded reconstruction.
  void set_retry_policy(const RetryPolicy& policy) noexcept {
    retry_ = policy;
  }
  const RetryPolicy& retry_policy() const noexcept { return retry_; }
  const RetryStats& retry_stats() const noexcept { return retry_stats_; }

  /// Shares a decode-plan cache with other plan consumers (the serve
  /// workers, other stores, direct Codec users): degraded reads and the
  /// scrubber's repair path skip matrix inversion for loss patterns any
  /// of them has already planned. Null detaches.
  void set_plan_cache(std::shared_ptr<core::PlanCache> cache) {
    codec_.set_plan_cache(std::move(cache));
  }

  /// Stores (or overwrites) an object: splits it into stripes of
  /// k*unit_size bytes (last stripe zero-padded), encodes, places units.
  /// Empty objects are allowed.
  void put(const std::string& name, std::span<const std::uint8_t> bytes);

  /// Retrieves an object, reconstructing through parities when nodes are
  /// down (degraded read). Returns nullopt if the object does not exist;
  /// throws std::runtime_error if too many of a stripe's nodes are down.
  std::optional<std::vector<std::uint8_t>> get(const std::string& name);

  bool exists(const std::string& name) const;
  void remove(const std::string& name);

  /// Marks a node failed and drops everything it stored.
  void fail_node(std::size_t node);
  /// Brings a failed node back empty (a replacement disk). Also clears
  /// any crash the attached fault injector recorded for the node.
  void revive_node(std::size_t node);
  bool node_failed(std::size_t node) const;

  /// Rebuilds every unit lost to failed-then-revived nodes (or found
  /// corrupt) onto live nodes. Returns the number of units rebuilt.
  /// Throws std::runtime_error if some stripe is unrecoverable.
  std::size_t repair();

  /// Full integrity pass over every stripe (CRC-32C per unit + parity
  /// consistency), rebuilding any unit that fails either check from the
  /// stripe's survivors. Returns the number of corrupt units found (0 on
  /// a healthy store). Unrecoverable stripes are skipped, not thrown.
  std::size_t scrub();

  /// Verifies and repairs one stripe of one object: reads every unit
  /// (through faults and retries), CRC-checks, rebuilds missing/corrupt
  /// units via the GEMM decode path, cross-checks parity consistency,
  /// and rewrites bad units onto live nodes. The Scrubber drives this
  /// incrementally. Throws std::invalid_argument on an unknown object
  /// or stripe index.
  StripeScrubResult scrub_stripe(const std::string& name, std::size_t s);

  /// Cursor helpers for resumable scrub passes (objects iterate in name
  /// order).
  std::optional<std::string> object_at_or_after(const std::string& name) const;
  std::optional<std::string> object_after(const std::string& name) const;
  /// Stripe count of an object (0 when absent or empty).
  std::size_t object_stripe_count(const std::string& name) const;
  /// Total stripes across all objects (scrub-progress denominator).
  std::size_t total_stripes() const noexcept;

  /// Test/chaos hook: silently flips one byte of a stored unit without
  /// updating its checksum (a simulated latent disk error). Returns
  /// false if that unit is not currently stored on a live node.
  bool corrupt_unit(const std::string& name, std::size_t stripe,
                    std::size_t unit);

 private:
  struct StripeLocation {
    /// Node holding each of the stripe's n units.
    std::vector<std::size_t> nodes;
    /// Metadata-level checksum of each unit's intended contents, kept
    /// with the object (not the node) so even a unit that is *gone* can
    /// have its reconstruction verified.
    std::vector<std::uint32_t> unit_crcs;
  };
  struct ObjectMeta {
    std::size_t size = 0;
    std::vector<StripeLocation> stripes;
  };
  /// A stored unit: payload plus the checksum that guards it. Parities
  /// protect against loss; the CRC catches silent corruption.
  struct StoredUnit {
    std::vector<std::uint8_t> bytes;
    std::uint32_t crc = 0;
  };
  struct Node {
    bool failed = false;
    /// Unit payloads keyed by (object, stripe index, unit index).
    std::map<std::tuple<std::string, std::size_t, std::size_t>, StoredUnit>
        units;
  };

  /// Per-unit read outcome after faults, retries, and CRC verification.
  enum class UnitRead {
    Ok,       ///< bytes in dest, checksum verified
    Missing,  ///< node down/crashed, unit absent, or retries exhausted
    Corrupt,  ///< present but checksum-bad even after re-reads
  };

  /// Reads unit u of stripe s into dest (unit_size_ bytes) through the
  /// fault injector with retries. Counts corruption in stats_.
  UnitRead read_unit(const std::string& name, const StripeLocation& loc,
                     std::size_t s, std::size_t u, std::uint8_t* dest);

  /// Persists `src` (unit_size_ bytes) as unit u of stripe s on its
  /// node, through the fault injector (which may corrupt the stored copy
  /// or crash the node). The recorded checksum is always of the
  /// *intended* bytes, so injected write faults stay detectable.
  /// Returns false when the node is down and nothing was stored.
  bool store_unit(const std::string& name, const StripeLocation& loc,
                  std::size_t s, std::size_t u, const std::uint8_t* src);

  /// fail_node without range checks, for crash handling mid-operation.
  void mark_node_failed(std::size_t node);

  /// Reads stripe `s` of `meta`, reconstructing erased units (verified
  /// against metadata CRCs); returns the full n-unit stripe buffer.
  std::vector<std::uint8_t> read_stripe(const std::string& name,
                                        const ObjectMeta& meta,
                                        std::size_t s, bool* degraded);

  ec::CodeParams params_;
  std::size_t unit_size_;
  core::Codec codec_;
  std::vector<Node> nodes_;
  std::map<std::string, ObjectMeta> objects_;
  StoreStats stats_;
  std::size_t next_rotation_ = 0;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_;
  RetryStats retry_stats_;
};

}  // namespace tvmec::storage
