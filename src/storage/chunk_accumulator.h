#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/buffer.h"

/// The §5 integration pattern, verbatim: "A system can easily allocate a
/// contiguous region of memory sufficient for hosting k chunks, and copy
/// incoming data chunks to different pointer offsets in this region. The
/// contiguous region of memory can then be passed to the ML library once
/// all k chunks have arrived."
///
/// The accumulator owns the staging memory (the §5 requirement that the
/// storage system, not the producer, manage chunk lifetime) and hands out
/// a contiguous view only once every chunk has landed.
namespace tvmec::storage {

class ChunkAccumulator {
 public:
  /// Region for k chunks of chunk_size bytes each.
  /// Throws std::invalid_argument on zero k or chunk_size.
  ChunkAccumulator(std::size_t k, std::size_t chunk_size);

  std::size_t k() const noexcept { return k_; }
  std::size_t chunk_size() const noexcept { return chunk_size_; }
  std::size_t chunks_received() const noexcept { return received_; }
  bool ready() const noexcept { return received_ == k_; }

  /// Copies a chunk into slot `index`. Short chunks are zero-padded
  /// (the last chunk of an object); oversized chunks throw
  /// std::invalid_argument, as does re-adding a filled slot.
  void add_chunk(std::size_t index, std::span<const std::uint8_t> chunk);

  /// The contiguous k*chunk_size region. Throws std::logic_error until
  /// ready() — handing out a partially filled region is the §5 bug class
  /// this type exists to prevent.
  std::span<const std::uint8_t> data() const;

  /// Forgets all chunks; the region is reused for the next stripe.
  void reset() noexcept;

 private:
  std::size_t k_;
  std::size_t chunk_size_;
  std::size_t received_ = 0;
  std::vector<bool> filled_;
  tensor::AlignedBuffer<std::uint8_t> region_;
};

}  // namespace tvmec::storage
