#include "storage/retry.h"

#include <algorithm>
#include <thread>

namespace tvmec::storage {

namespace {
/// splitmix64: the standard cheap stateless mixer.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

std::chrono::microseconds RetryPolicy::backoff(
    std::size_t attempt, std::uint64_t salt) const noexcept {
  if (attempt <= 1) return std::chrono::microseconds{0};
  // base * 2^(attempt-2), saturating well before overflow.
  const std::size_t shift = std::min<std::size_t>(attempt - 2, 40);
  const auto exp =
      std::chrono::microseconds{base_delay.count() << shift};
  const auto capped = std::min(exp, max_delay);
  if (jitter <= 0.0 || capped.count() == 0) return capped;
  // Deterministic jitter: scale by a factor in [1 - jitter, 1].
  const double unit = static_cast<double>(mix64(salt ^ attempt) >> 11) /
                      static_cast<double>(1ull << 53);
  const double factor = 1.0 - std::min(jitter, 1.0) * unit;
  return std::chrono::microseconds{
      static_cast<std::int64_t>(static_cast<double>(capped.count()) * factor)};
}

bool with_retries(const RetryPolicy& policy, RetryStats& stats,
                  std::uint64_t salt,
                  const std::function<Attempt()>& attempt) {
  const std::size_t budget = std::max<std::size_t>(policy.max_attempts, 1);
  for (std::size_t i = 1; i <= budget; ++i) {
    if (i > 1) {
      const auto wait = policy.backoff(i, salt);
      stats.backoff_total += wait;
      if (policy.sleep && wait.count() > 0) std::this_thread::sleep_for(wait);
      ++stats.retries;
    }
    ++stats.attempts;
    switch (attempt()) {
      case Attempt::Success:
        return true;
      case Attempt::Abort:
        return false;
      case Attempt::Retry:
        break;
    }
  }
  ++stats.exhausted;
  return false;
}

}  // namespace tvmec::storage
