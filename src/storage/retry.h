#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

/// Retry with exponential backoff and deterministic jitter — the standard
/// client-side answer to transient storage errors. Wraps the unit reads
/// of StripeStore::get/repair, RaidArray::read_block, and
/// CheckpointManager::recover_shard: a read that fails transiently is
/// re-attempted up to `max_attempts` times with exponentially growing,
/// jittered, capped delays; only after the budget is exhausted does the
/// caller fall back to degraded (parity) reconstruction.
///
/// Jitter is derived from a splitmix64 hash of (salt, attempt), not a
/// shared RNG, so retry timing is reproducible per unit and independent
/// of what other ops did — the same determinism contract as
/// FaultInjector.
namespace tvmec::storage {

struct RetryPolicy {
  std::size_t max_attempts = 4;  ///< total attempts, including the first
  std::chrono::microseconds base_delay{50};   ///< backoff before attempt 2
  std::chrono::microseconds max_delay{5000};  ///< backoff cap
  double jitter = 0.5;  ///< fraction of each delay that is randomized
  bool sleep = false;   ///< actually sleep between attempts (benches)

  /// Backoff before attempt `attempt` (attempts are 1-based; attempt 1
  /// has no backoff): min(base * 2^(attempt-2), cap), jittered down by up
  /// to `jitter` deterministically from `salt`.
  std::chrono::microseconds backoff(std::size_t attempt,
                                    std::uint64_t salt) const noexcept;
};

struct RetryStats {
  std::uint64_t attempts = 0;   ///< individual attempts made
  std::uint64_t retries = 0;    ///< attempts beyond the first
  std::uint64_t exhausted = 0;  ///< ops that failed every attempt
  std::chrono::microseconds backoff_total{0};  ///< injected wait (virtual)
};

/// One attempt's verdict: succeed, retry after backoff, or give up now
/// (the failure is known to be permanent — e.g. the unit is gone).
enum class Attempt { Success, Retry, Abort };

/// Runs `attempt` up to policy.max_attempts times, accumulating `stats`
/// and backing off between tries (slept only when policy.sleep).
/// Returns true on Success; false on Abort or an exhausted budget.
bool with_retries(const RetryPolicy& policy, RetryStats& stats,
                  std::uint64_t salt, const std::function<Attempt()>& attempt);

}  // namespace tvmec::storage
