#pragma once

#include <cstddef>

/// Shared result types for stripe-granular scrubbing, used by the
/// per-stripe scrub hooks of StripeStore / RaidArray and aggregated by
/// the Scrubber driver.
namespace tvmec::storage {

/// Outcome of verifying (and repairing) one stripe.
struct StripeScrubResult {
  std::size_t units_verified = 0;  ///< units read and checked this stripe
  std::size_t crc_errors = 0;      ///< units whose checksum disagreed
  std::size_t parity_errors = 0;   ///< consistent-CRC units that failed
                                   ///< the parity re-encode cross-check
  std::size_t units_repaired = 0;  ///< units rewritten with good bytes
  bool unrecoverable = false;      ///< > r units lost/corrupt: left as-is

  std::size_t errors() const noexcept { return crc_errors + parity_errors; }
};

}  // namespace tvmec::storage
