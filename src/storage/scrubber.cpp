#include "storage/scrubber.h"

namespace tvmec::storage {

bool Scrubber::scrub_next(ScrubStats& increment) {
  if (array_) {
    if (cursor_stripe_ >= array_->num_stripes()) return false;
    const StripeScrubResult r = array_->scrub_stripe(cursor_stripe_++);
    increment.add(r, array_->block_size());
    current_.add(r, array_->block_size());
    return true;
  }

  // StripeStore: resume at (object, stripe), tolerating objects having
  // been added or removed since the last step.
  std::optional<std::string> obj;
  if (!cursor_started_) {
    cursor_started_ = true;
    cursor_stripe_ = 0;
    obj = store_->object_at_or_after("");
  } else {
    obj = store_->object_at_or_after(cursor_object_);
    if (!obj || *obj != cursor_object_)
      cursor_stripe_ = 0;  // our object vanished; start its successor
  }
  while (obj && cursor_stripe_ >= store_->object_stripe_count(*obj)) {
    obj = store_->object_after(*obj);
    cursor_stripe_ = 0;
  }
  if (!obj) return false;
  cursor_object_ = *obj;
  const StripeScrubResult r = store_->scrub_stripe(*obj, cursor_stripe_++);
  increment.add(r, store_->unit_size());
  current_.add(r, store_->unit_size());
  return true;
}

void Scrubber::finish_pass() {
  last_ = current_;
  ++passes_;
  reset_cursor();
}

void Scrubber::reset_cursor() {
  cursor_object_.clear();
  cursor_stripe_ = 0;
  cursor_started_ = false;
  current_ = ScrubStats{};
}

ScrubStats Scrubber::step(std::size_t max_stripes) {
  ScrubStats increment;
  for (std::size_t i = 0; i < max_stripes; ++i) {
    if (!scrub_next(increment)) {
      finish_pass();
      break;
    }
  }
  return increment;
}

ScrubStats Scrubber::run() {
  ScrubStats increment;
  while (scrub_next(increment)) {
  }
  finish_pass();
  return increment;
}

}  // namespace tvmec::storage
