#include "storage/fault_injector.h"

#include <thread>

namespace tvmec::storage {

FaultInjector::FaultInjector(const FaultPolicy& policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {}

bool FaultInjector::roll(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
}

void FaultInjector::delay_op() {
  if (!roll(policy_.delay)) return;
  ++stats_.delays;
  stats_.delay_injected += policy_.delay_amount;
  if (policy_.sleep_on_delay && policy_.delay_amount.count() > 0)
    std::this_thread::sleep_for(policy_.delay_amount);
}

bool FaultInjector::on_write(std::size_t node, std::uint64_t /*unit_key*/,
                             std::span<std::uint8_t> bytes) {
  ++stats_.writes;
  if (crashed_.contains(node)) return false;
  if (policy_.quiet()) return true;
  delay_op();
  if (roll(policy_.crash)) {
    crash_node(node);
    return false;
  }
  bool corrupted = false;
  if (!bytes.empty() && roll(policy_.write_bit_flip)) {
    const std::size_t byte = std::uniform_int_distribution<std::size_t>(
        0, bytes.size() - 1)(rng_);
    const unsigned bit =
        std::uniform_int_distribution<unsigned>(0, 7)(rng_);
    bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
    ++stats_.write_bit_flips;
    corrupted = true;
  }
  // Torn write: a prefix persists, the tail holds stale garbage. The
  // garbage tail is >= 8 bytes so it is corrupt with overwhelming
  // probability (chaos tests rely on every tear being detectable).
  if (bytes.size() >= 16 && roll(policy_.torn_write)) {
    const std::size_t off = std::uniform_int_distribution<std::size_t>(
        0, bytes.size() - 8)(rng_);
    for (std::size_t i = off; i < bytes.size(); ++i)
      bytes[i] = static_cast<std::uint8_t>(rng_());
    ++stats_.torn_writes;
    corrupted = true;
  }
  if (corrupted) ++stats_.writes_corrupted;
  return true;
}

ReadFault FaultInjector::on_read(std::size_t node, std::uint64_t unit_key,
                                 std::span<std::uint8_t> bytes) {
  ++stats_.reads;
  if (crashed_.contains(node)) return ReadFault::Crash;
  // An in-flight transient burst keeps failing regardless of the active
  // policy, so a policy swap cannot strand a half-consumed burst.
  if (const auto it = transient_left_.find(unit_key);
      it != transient_left_.end()) {
    ++stats_.transient_errors;
    if (--it->second == 0) transient_left_.erase(it);
    return ReadFault::Transient;
  }
  if (policy_.quiet()) return ReadFault::None;
  delay_op();
  if (roll(policy_.crash)) {
    crash_node(node);
    return ReadFault::Crash;
  }
  if (policy_.transient_failures > 0 && roll(policy_.transient_read)) {
    ++stats_.transient_bursts;
    ++stats_.transient_errors;
    if (policy_.transient_failures > 1)
      transient_left_[unit_key] = policy_.transient_failures - 1;
    return ReadFault::Transient;
  }
  if (!bytes.empty() && roll(policy_.read_bit_flip)) {
    const std::size_t byte = std::uniform_int_distribution<std::size_t>(
        0, bytes.size() - 1)(rng_);
    const unsigned bit =
        std::uniform_int_distribution<unsigned>(0, 7)(rng_);
    bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
    ++stats_.read_bit_flips;
  }
  return ReadFault::None;
}

LinkFault FaultInjector::on_send(std::uint64_t link_key) {
  ++stats_.link_sends;
  // An open partition window eats every send until it expires, matching
  // the transient-burst discipline: a policy swap mid-window cannot
  // strand a half-consumed partition.
  if (const auto it = partitioned_left_.find(link_key);
      it != partitioned_left_.end()) {
    ++stats_.partition_drops;
    if (--it->second == 0) partitioned_left_.erase(it);
    return LinkFault::Drop;
  }
  if (policy_.quiet()) return LinkFault::None;
  if (roll(policy_.link_drop)) {
    ++stats_.link_drops;
    return LinkFault::Drop;
  }
  if (roll(policy_.link_duplicate)) {
    ++stats_.link_duplicates;
    return LinkFault::Duplicate;
  }
  if (policy_.partition_ops > 0 && roll(policy_.link_partition)) {
    ++stats_.partitions_opened;
    ++stats_.partition_drops;
    if (policy_.partition_ops > 1)
      partitioned_left_[link_key] = policy_.partition_ops - 1;
    return LinkFault::Drop;
  }
  return LinkFault::None;
}

void FaultInjector::partition_link(std::uint64_t link_key, std::size_t ops) {
  if (ops == 0) return;
  ++stats_.partitions_opened;
  partitioned_left_[link_key] = ops;
}

void FaultInjector::crash_node(std::size_t node) {
  if (crashed_.insert(node).second) ++stats_.crashes;
}

namespace {
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

std::uint64_t FaultInjector::key(std::string_view name, std::size_t a,
                                 std::size_t b) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return fnv_mix(fnv_mix(h, a), b);
}

std::uint64_t FaultInjector::key(std::size_t a, std::size_t b,
                                 std::size_t c) noexcept {
  return fnv_mix(fnv_mix(fnv_mix(kFnvOffset, a), b), c);
}

}  // namespace tvmec::storage
