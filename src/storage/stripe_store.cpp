#include "storage/stripe_store.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tensor/buffer.h"

namespace tvmec::storage {

StripeStore::StripeStore(const ec::CodeParams& params, std::size_t unit_size,
                         std::size_t num_nodes)
    : params_(params), unit_size_(unit_size), codec_(params) {
  ec::packet_bytes(params, unit_size);  // validates unit_size
  if (num_nodes < params.n())
    throw std::invalid_argument("StripeStore: need at least k+r nodes");
  nodes_.resize(num_nodes);
}

void StripeStore::put(const std::string& name,
                      std::span<const std::uint8_t> bytes) {
  remove(name);

  ObjectMeta meta;
  meta.size = bytes.size();
  const std::size_t stripe_data = params_.k * unit_size_;
  const std::size_t num_stripes =
      bytes.empty() ? 0 : (bytes.size() + stripe_data - 1) / stripe_data;

  tensor::AlignedBuffer<std::uint8_t> data_buf(stripe_data);
  tensor::AlignedBuffer<std::uint8_t> parity_buf(params_.r * unit_size_);

  for (std::size_t s = 0; s < num_stripes; ++s) {
    const std::size_t off = s * stripe_data;
    const std::size_t len = std::min(stripe_data, bytes.size() - off);
    std::memcpy(data_buf.data(), bytes.data() + off, len);
    if (len < stripe_data)
      std::memset(data_buf.data() + len, 0, stripe_data - len);
    codec_.encode(data_buf.span(), parity_buf.span(), unit_size_);

    // Rotate placement so load (and failure impact) spreads over nodes.
    StripeLocation loc;
    loc.nodes.resize(params_.n());
    for (std::size_t u = 0; u < params_.n(); ++u) {
      const std::size_t node = (next_rotation_ + u) % nodes_.size();
      loc.nodes[u] = node;
      const std::uint8_t* src = u < params_.k
                                    ? data_buf.data() + u * unit_size_
                                    : parity_buf.data() +
                                          (u - params_.k) * unit_size_;
      if (!nodes_[node].failed) {
        StoredUnit stored;
        stored.bytes.assign(src, src + unit_size_);
        stored.crc = crc32c(stored.bytes);
        nodes_[node].units[{name, s, u}] = std::move(stored);
      }
      // Units destined to failed nodes are simply lost, as they would be
      // on real hardware; repair() can rebuild them after revive.
    }
    next_rotation_ = (next_rotation_ + 1) % nodes_.size();
    meta.stripes.push_back(std::move(loc));
  }

  objects_[name] = std::move(meta);
  ++stats_.objects;
  stats_.stripes_written += num_stripes;
}

bool StripeStore::exists(const std::string& name) const {
  return objects_.contains(name);
}

void StripeStore::remove(const std::string& name) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) return;
  for (std::size_t s = 0; s < it->second.stripes.size(); ++s)
    for (std::size_t u = 0; u < params_.n(); ++u)
      nodes_[it->second.stripes[s].nodes[u]].units.erase({name, s, u});
  objects_.erase(it);
  --stats_.objects;
}

std::vector<std::uint8_t> StripeStore::read_stripe(const std::string& name,
                                                   const ObjectMeta& meta,
                                                   std::size_t s,
                                                   bool* degraded) {
  const StripeLocation& loc = meta.stripes[s];
  const std::size_t n = params_.n();
  tensor::AlignedBuffer<std::uint8_t> stripe(n * unit_size_);
  std::vector<std::size_t> erased;
  for (std::size_t u = 0; u < n; ++u) {
    const Node& node = nodes_[loc.nodes[u]];
    const auto it = node.failed
                        ? node.units.end()
                        : node.units.find({name, s, u});
    if (node.failed || it == node.units.end()) {
      erased.push_back(u);
    } else if (crc32c(it->second.bytes) != it->second.crc) {
      // Silent corruption: the checksum disagrees. Treat the unit as
      // erased so parity rebuilds it.
      ++stats_.corruptions_detected;
      erased.push_back(u);
    } else {
      std::memcpy(stripe.data() + u * unit_size_, it->second.bytes.data(),
                  unit_size_);
    }
  }
  if (!erased.empty()) {
    *degraded = true;
    codec_.decode(stripe.span(), erased, unit_size_);  // throws if > r lost
  }
  return std::vector<std::uint8_t>(stripe.data(),
                                   stripe.data() + n * unit_size_);
}

std::optional<std::vector<std::uint8_t>> StripeStore::get(
    const std::string& name) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) return std::nullopt;
  const ObjectMeta& meta = it->second;

  std::vector<std::uint8_t> out;
  out.reserve(meta.size);
  bool degraded = false;
  for (std::size_t s = 0; s < meta.stripes.size(); ++s) {
    const std::vector<std::uint8_t> stripe =
        read_stripe(name, meta, s, &degraded);
    const std::size_t want =
        std::min(params_.k * unit_size_, meta.size - out.size());
    out.insert(out.end(), stripe.begin(),
               stripe.begin() + static_cast<std::ptrdiff_t>(want));
  }
  if (degraded) ++stats_.degraded_reads;
  return out;
}

void StripeStore::fail_node(std::size_t node) {
  if (node >= nodes_.size())
    throw std::invalid_argument("fail_node: node out of range");
  if (nodes_[node].failed) return;
  nodes_[node].failed = true;
  nodes_[node].units.clear();  // data is gone with the node
  ++stats_.failed_nodes;
}

void StripeStore::revive_node(std::size_t node) {
  if (node >= nodes_.size())
    throw std::invalid_argument("revive_node: node out of range");
  if (!nodes_[node].failed) return;
  nodes_[node].failed = false;
  --stats_.failed_nodes;
}

bool StripeStore::node_failed(std::size_t node) const {
  if (node >= nodes_.size())
    throw std::invalid_argument("node_failed: node out of range");
  return nodes_[node].failed;
}

std::size_t StripeStore::repair() {
  std::size_t repaired = 0;
  for (const auto& [name, meta] : objects_) {
    for (std::size_t s = 0; s < meta.stripes.size(); ++s) {
      const StripeLocation& loc = meta.stripes[s];
      // Find units missing from live nodes.
      std::vector<std::size_t> missing;
      for (std::size_t u = 0; u < params_.n(); ++u) {
        const Node& node = nodes_[loc.nodes[u]];
        if (node.failed) continue;
        const auto it = node.units.find({name, s, u});
        if (it == node.units.end() ||
            crc32c(it->second.bytes) != it->second.crc)
          missing.push_back(u);
      }
      if (missing.empty()) continue;
      bool degraded = false;
      const std::vector<std::uint8_t> stripe =
          read_stripe(name, meta, s, &degraded);
      for (const std::size_t u : missing) {
        StoredUnit stored;
        stored.bytes.assign(
            stripe.begin() + static_cast<std::ptrdiff_t>(u * unit_size_),
            stripe.begin() + static_cast<std::ptrdiff_t>((u + 1) * unit_size_));
        stored.crc = crc32c(stored.bytes);
        nodes_[loc.nodes[u]].units[{name, s, u}] = std::move(stored);
        ++repaired;
      }
    }
  }
  stats_.units_repaired += repaired;
  return repaired;
}

std::size_t StripeStore::scrub() {
  std::size_t corrupt = 0;
  tensor::AlignedBuffer<std::uint8_t> expect(params_.r * unit_size_);
  for (const auto& [name, meta] : objects_) {
    for (std::size_t s = 0; s < meta.stripes.size(); ++s) {
      const StripeLocation& loc = meta.stripes[s];
      bool degraded = false;
      std::vector<std::uint8_t> stripe;
      try {
        // read_stripe checks every CRC and reconstructs units that fail.
        stripe = read_stripe(name, meta, s, &degraded);
      } catch (const std::runtime_error&) {
        continue;  // unrecoverable stripes are repair()'s problem
      }
      codec_.encode(
          std::span<const std::uint8_t>(stripe.data(),
                                        params_.k * unit_size_),
          expect.span(), unit_size_);
      for (std::size_t u = 0; u < params_.n(); ++u) {
        Node& node = nodes_[loc.nodes[u]];
        if (node.failed) continue;
        const auto it = node.units.find({name, s, u});
        if (it == node.units.end()) continue;  // missing: repair()'s job
        const std::uint8_t* good =
            u < params_.k ? stripe.data() + u * unit_size_
                          : expect.data() + (u - params_.k) * unit_size_;
        const bool crc_bad = crc32c(it->second.bytes) != it->second.crc;
        const bool bytes_bad =
            std::memcmp(it->second.bytes.data(), good, unit_size_) != 0;
        if (crc_bad || bytes_bad) {
          ++corrupt;
          it->second.bytes.assign(good, good + unit_size_);
          it->second.crc = crc32c(it->second.bytes);
        }
      }
    }
  }
  return corrupt;
}

bool StripeStore::corrupt_unit(const std::string& name, std::size_t stripe,
                               std::size_t unit) {
  const auto obj = objects_.find(name);
  if (obj == objects_.end()) return false;
  if (stripe >= obj->second.stripes.size() || unit >= params_.n())
    return false;
  Node& node = nodes_[obj->second.stripes[stripe].nodes[unit]];
  if (node.failed) return false;
  const auto it = node.units.find({name, stripe, unit});
  if (it == node.units.end()) return false;
  it->second.bytes[it->second.bytes.size() / 2] ^= 0x40;  // flip one bit
  return true;
}

}  // namespace tvmec::storage
