#include "storage/stripe_store.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tensor/buffer.h"

namespace tvmec::storage {

StripeStore::StripeStore(const ec::CodeParams& params, std::size_t unit_size,
                         std::size_t num_nodes)
    : params_(params), unit_size_(unit_size), codec_(params) {
  ec::packet_bytes(params, unit_size);  // validates unit_size
  if (num_nodes < params.n())
    throw std::invalid_argument("StripeStore: need at least k+r nodes");
  nodes_.resize(num_nodes);
}

void StripeStore::mark_node_failed(std::size_t node) {
  if (nodes_[node].failed) return;
  nodes_[node].failed = true;
  nodes_[node].units.clear();  // data is gone with the node
  ++stats_.failed_nodes;
}

bool StripeStore::store_unit(const std::string& name,
                             const StripeLocation& loc, std::size_t s,
                             std::size_t u, const std::uint8_t* src) {
  const std::size_t node_id = loc.nodes[u];
  if (injector_ && injector_->crashed(node_id)) mark_node_failed(node_id);
  Node& node = nodes_[node_id];
  if (node.failed) return false;

  StoredUnit stored;
  stored.bytes.assign(src, src + unit_size_);
  // Checksum the intended bytes *before* fault injection: a torn or
  // flipped persisted copy must disagree with its own checksum.
  stored.crc = crc32c({src, unit_size_});
  if (injector_ &&
      !injector_->on_write(node_id, FaultInjector::key(name, s, u),
                           stored.bytes)) {
    mark_node_failed(node_id);  // crash: the write (and the node) is lost
    return false;
  }
  node.units[{name, s, u}] = std::move(stored);
  return true;
}

StripeStore::UnitRead StripeStore::read_unit(const std::string& name,
                                             const StripeLocation& loc,
                                             std::size_t s, std::size_t u,
                                             std::uint8_t* dest) {
  const std::size_t node_id = loc.nodes[u];
  const std::uint64_t key = FaultInjector::key(name, s, u);
  UnitRead verdict = UnitRead::Missing;
  with_retries(retry_, retry_stats_, key, [&]() -> Attempt {
    if (injector_ && injector_->crashed(node_id)) {
      mark_node_failed(node_id);
      verdict = UnitRead::Missing;
      return Attempt::Abort;
    }
    Node& node = nodes_[node_id];
    if (node.failed) {
      verdict = UnitRead::Missing;
      return Attempt::Abort;
    }
    const auto it = node.units.find({name, s, u});
    if (it == node.units.end()) {
      verdict = UnitRead::Missing;
      return Attempt::Abort;
    }
    std::memcpy(dest, it->second.bytes.data(), unit_size_);
    if (injector_) {
      switch (injector_->on_read(node_id, key, {dest, unit_size_})) {
        case ReadFault::Crash:
          mark_node_failed(node_id);
          verdict = UnitRead::Missing;
          return Attempt::Abort;
        case ReadFault::Transient:
          verdict = UnitRead::Missing;  // if the budget runs out here
          return Attempt::Retry;
        case ReadFault::None:
          break;
      }
    }
    if (crc32c({dest, unit_size_}) != it->second.crc) {
      // Could be a transient read-side flip: re-read. If it keeps
      // mismatching, the stored copy itself is corrupt.
      verdict = UnitRead::Corrupt;
      return Attempt::Retry;
    }
    verdict = UnitRead::Ok;
    return Attempt::Success;
  });
  if (verdict == UnitRead::Corrupt) ++stats_.corruptions_detected;
  return verdict;
}

void StripeStore::put(const std::string& name,
                      std::span<const std::uint8_t> bytes) {
  remove(name);

  ObjectMeta meta;
  meta.size = bytes.size();
  const std::size_t stripe_data = params_.k * unit_size_;
  const std::size_t num_stripes =
      bytes.empty() ? 0 : (bytes.size() + stripe_data - 1) / stripe_data;

  tensor::AlignedBuffer<std::uint8_t> data_buf(stripe_data);
  tensor::AlignedBuffer<std::uint8_t> parity_buf(params_.r * unit_size_);

  for (std::size_t s = 0; s < num_stripes; ++s) {
    const std::size_t off = s * stripe_data;
    const std::size_t len = std::min(stripe_data, bytes.size() - off);
    std::memcpy(data_buf.data(), bytes.data() + off, len);
    if (len < stripe_data)
      std::memset(data_buf.data() + len, 0, stripe_data - len);
    codec_.encode(data_buf.span(), parity_buf.span(), unit_size_);

    // Rotate placement so load (and failure impact) spreads over nodes.
    StripeLocation loc;
    loc.nodes.resize(params_.n());
    loc.unit_crcs.resize(params_.n());
    for (std::size_t u = 0; u < params_.n(); ++u) {
      loc.nodes[u] = (next_rotation_ + u) % nodes_.size();
      const std::uint8_t* src = u < params_.k
                                    ? data_buf.data() + u * unit_size_
                                    : parity_buf.data() +
                                          (u - params_.k) * unit_size_;
      loc.unit_crcs[u] = crc32c({src, unit_size_});
      // Units destined to failed/crashed nodes are simply lost, as they
      // would be on real hardware; repair() can rebuild them later.
      store_unit(name, loc, s, u, src);
    }
    next_rotation_ = (next_rotation_ + 1) % nodes_.size();
    meta.stripes.push_back(std::move(loc));
  }

  objects_[name] = std::move(meta);
  ++stats_.objects;
  stats_.stripes_written += num_stripes;
}

bool StripeStore::exists(const std::string& name) const {
  return objects_.contains(name);
}

void StripeStore::remove(const std::string& name) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) return;
  for (std::size_t s = 0; s < it->second.stripes.size(); ++s)
    for (std::size_t u = 0; u < params_.n(); ++u)
      nodes_[it->second.stripes[s].nodes[u]].units.erase({name, s, u});
  objects_.erase(it);
  --stats_.objects;
}

std::vector<std::uint8_t> StripeStore::read_stripe(const std::string& name,
                                                   const ObjectMeta& meta,
                                                   std::size_t s,
                                                   bool* degraded) {
  const StripeLocation& loc = meta.stripes[s];
  const std::size_t n = params_.n();
  tensor::AlignedBuffer<std::uint8_t> stripe(n * unit_size_);
  std::vector<std::size_t> erased;
  for (std::size_t u = 0; u < n; ++u) {
    if (read_unit(name, loc, s, u, stripe.data() + u * unit_size_) !=
        UnitRead::Ok)
      erased.push_back(u);
  }
  if (!erased.empty()) {
    *degraded = true;
    codec_.decode(stripe.span(), erased, unit_size_);  // throws if > r lost
    // Never hand back unverified reconstruction: every rebuilt unit must
    // match the checksum recorded in object metadata.
    for (const std::size_t u : erased) {
      if (crc32c({stripe.data() + u * unit_size_, unit_size_}) !=
          loc.unit_crcs[u]) {
        ++stats_.corruptions_detected;
        throw std::runtime_error(
            "StripeStore: reconstructed unit failed checksum verification");
      }
    }
  }
  return std::vector<std::uint8_t>(stripe.data(),
                                   stripe.data() + n * unit_size_);
}

std::optional<std::vector<std::uint8_t>> StripeStore::get(
    const std::string& name) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) return std::nullopt;
  const ObjectMeta& meta = it->second;

  std::vector<std::uint8_t> out;
  out.reserve(meta.size);
  bool degraded = false;
  for (std::size_t s = 0; s < meta.stripes.size(); ++s) {
    const std::vector<std::uint8_t> stripe =
        read_stripe(name, meta, s, &degraded);
    const std::size_t want =
        std::min(params_.k * unit_size_, meta.size - out.size());
    out.insert(out.end(), stripe.begin(),
               stripe.begin() + static_cast<std::ptrdiff_t>(want));
  }
  if (degraded) ++stats_.degraded_reads;
  return out;
}

void StripeStore::fail_node(std::size_t node) {
  if (node >= nodes_.size())
    throw std::invalid_argument("fail_node: node out of range");
  mark_node_failed(node);
}

void StripeStore::revive_node(std::size_t node) {
  if (node >= nodes_.size())
    throw std::invalid_argument("revive_node: node out of range");
  if (injector_) injector_->repair_node(node);
  if (!nodes_[node].failed) return;
  nodes_[node].failed = false;
  --stats_.failed_nodes;
}

bool StripeStore::node_failed(std::size_t node) const {
  if (node >= nodes_.size())
    throw std::invalid_argument("node_failed: node out of range");
  return nodes_[node].failed;
}

StripeScrubResult StripeStore::scrub_stripe(const std::string& name,
                                            std::size_t s) {
  const auto it = objects_.find(name);
  if (it == objects_.end())
    throw std::invalid_argument("scrub_stripe: unknown object " + name);
  ObjectMeta& meta = it->second;
  if (s >= meta.stripes.size())
    throw std::invalid_argument("scrub_stripe: stripe index out of range");
  StripeLocation& loc = meta.stripes[s];
  const std::size_t n = params_.n();

  StripeScrubResult res;
  tensor::AlignedBuffer<std::uint8_t> stripe(n * unit_size_);
  // Transient read errors must not defeat the scrubber: a unit whose
  // retry budget ran out (chained transient bursts can exhaust it) is
  // re-attempted in a fresh pass before the stripe is declared
  // unrecoverable. Without this, one latent corruption plus one
  // transient burst pushes the apparent erasure count past r, scrub
  // skips the stripe, and the corruption stays on disk — found by the
  // cross-backend differential fuzzer (see DESIGN.md §6).
  constexpr int kReadPasses = 3;
  std::vector<UnitRead> state(n, UnitRead::Missing);
  for (int pass = 0; pass < kReadPasses; ++pass) {
    bool any_missing = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (pass > 0 && state[u] != UnitRead::Missing) continue;
      state[u] = read_unit(name, loc, s, u, stripe.data() + u * unit_size_);
      any_missing |= state[u] == UnitRead::Missing;
    }
    if (!any_missing) break;
  }
  std::vector<std::size_t> erased;  // missing or corrupt: needs rebuild
  for (std::size_t u = 0; u < n; ++u) {
    switch (state[u]) {
      case UnitRead::Ok:
        ++res.units_verified;
        break;
      case UnitRead::Corrupt:
        ++res.crc_errors;
        erased.push_back(u);
        break;
      case UnitRead::Missing:
        erased.push_back(u);
        break;
    }
  }

  // Node-local disk check for units that read clean. A clean read only
  // proves the *returned* bytes: an injected read-side flip can land on
  // the very bit that is corrupt on disk and cancel it, so the CRC
  // passes while the persisted copy stays bad — and the latent
  // corruption later stacks with node failures past the r budget. CRC
  // the stored copy directly and rewrite it from the verified read when
  // it is stale. Found by the differential fuzzer
  // (s=store-fault w=16 u=16 seed=10867058663792815222 loss=3,5).
  std::vector<std::size_t> stale_disk;
  for (std::size_t u = 0; u < n; ++u) {
    if (state[u] != UnitRead::Ok) continue;
    Node& node = nodes_[loc.nodes[u]];
    const auto uit = node.units.find({name, s, u});
    if (uit == node.units.end()) continue;
    if (crc32c(uit->second.bytes) != uit->second.crc) {
      ++res.crc_errors;
      ++stats_.corruptions_detected;
      stale_disk.push_back(u);
    }
  }

  if (!erased.empty()) {
    if (erased.size() > params_.r) {
      res.unrecoverable = true;
      return res;
    }
    codec_.decode(stripe.span(), erased, unit_size_);
    // CRC-verify the reconstruction before persisting anything.
    for (const std::size_t u : erased) {
      if (crc32c({stripe.data() + u * unit_size_, unit_size_}) !=
          loc.unit_crcs[u]) {
        ++stats_.corruptions_detected;
        res.unrecoverable = true;  // survivors are lying; don't persist
        return res;
      }
    }
  }

  // Parity cross-check: the assembled stripe must be self-consistent.
  // (CRCs guard unit payloads; this guards against stale-but-valid units
  // and coder bugs.)
  tensor::AlignedBuffer<std::uint8_t> expect(params_.r * unit_size_);
  codec_.encode(
      std::span<const std::uint8_t>(stripe.data(), params_.k * unit_size_),
      expect.span(), unit_size_);
  std::vector<std::size_t> heal(erased);
  heal.insert(heal.end(), stale_disk.begin(), stale_disk.end());
  for (std::size_t p = 0; p < params_.r; ++p) {
    const std::size_t u = params_.k + p;
    if (std::find(erased.begin(), erased.end(), u) != erased.end()) continue;
    if (std::memcmp(stripe.data() + u * unit_size_,
                    expect.data() + p * unit_size_, unit_size_) != 0) {
      ++res.parity_errors;
      std::memcpy(stripe.data() + u * unit_size_,
                  expect.data() + p * unit_size_, unit_size_);
      loc.unit_crcs[u] = crc32c({expect.data() + p * unit_size_, unit_size_});
      heal.push_back(u);
    }
  }

  for (const std::size_t u : heal) {
    if (store_unit(name, loc, s, u, stripe.data() + u * unit_size_))
      ++res.units_repaired;
  }
  stats_.units_repaired += res.units_repaired;
  return res;
}

std::size_t StripeStore::repair() {
  std::size_t repaired = 0;
  for (const auto& [name, meta] : objects_) {
    for (std::size_t s = 0; s < meta.stripes.size(); ++s) {
      const StripeScrubResult res = scrub_stripe(name, s);
      if (res.unrecoverable)
        throw std::runtime_error("StripeStore::repair: stripe " +
                                 std::to_string(s) + " of " + name +
                                 " is unrecoverable");
      repaired += res.units_repaired;
    }
  }
  return repaired;
}

std::size_t StripeStore::scrub() {
  std::size_t corrupt = 0;
  for (const auto& [name, meta] : objects_)
    for (std::size_t s = 0; s < meta.stripes.size(); ++s)
      corrupt += scrub_stripe(name, s).errors();
  return corrupt;
}

std::optional<std::string> StripeStore::object_at_or_after(
    const std::string& name) const {
  const auto it = objects_.lower_bound(name);
  if (it == objects_.end()) return std::nullopt;
  return it->first;
}

std::optional<std::string> StripeStore::object_after(
    const std::string& name) const {
  const auto it = objects_.upper_bound(name);
  if (it == objects_.end()) return std::nullopt;
  return it->first;
}

std::size_t StripeStore::object_stripe_count(const std::string& name) const {
  const auto it = objects_.find(name);
  return it == objects_.end() ? 0 : it->second.stripes.size();
}

std::size_t StripeStore::total_stripes() const noexcept {
  std::size_t total = 0;
  for (const auto& [name, meta] : objects_) total += meta.stripes.size();
  return total;
}

bool StripeStore::corrupt_unit(const std::string& name, std::size_t stripe,
                               std::size_t unit) {
  const auto obj = objects_.find(name);
  if (obj == objects_.end()) return false;
  if (stripe >= obj->second.stripes.size() || unit >= params_.n())
    return false;
  Node& node = nodes_[obj->second.stripes[stripe].nodes[unit]];
  if (node.failed) return false;
  const auto it = node.units.find({name, stripe, unit});
  if (it == node.units.end()) return false;
  it->second.bytes[it->second.bytes.size() / 2] ^= 0x40;  // flip one bit
  return true;
}

}  // namespace tvmec::storage
