#pragma once

#include <cstdint>
#include <span>

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum storage systems pair with erasure coding: parities
/// protect against *loss*, checksums against *silent corruption*, and a
/// scrubber uses the checksum to decide which unit to rebuild.
///
/// Software slicing-by-8 implementation (tables built once at first
/// use); matches the iSCSI/ext4/RocksDB CRC-32C test vectors.
namespace tvmec::storage {

/// CRC of a whole buffer.
std::uint32_t crc32c(std::span<const std::uint8_t> data) noexcept;

/// Incremental form: feed `data` into a running CRC (start with 0).
std::uint32_t crc32c_extend(std::uint32_t crc,
                            std::span<const std::uint8_t> data) noexcept;

}  // namespace tvmec::storage
