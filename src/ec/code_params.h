#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "gf/gf.h"

/// Erasure-code parameters shared by every encoder and decoder in the
/// library: k data units, r parity units, arithmetic over GF(2^w).
namespace tvmec::ec {

struct CodeParams {
  std::size_t k = 0;  ///< number of data units
  std::size_t r = 0;  ///< number of parity units
  unsigned w = 8;     ///< Galois-field word size

  std::size_t n() const noexcept { return k + r; }

  /// Throws std::invalid_argument unless the parameters describe a valid
  /// code: k >= 1, r >= 0, supported w, and k + r <= 2^w (needed for MDS
  /// generator constructions). r == 0 is the degenerate "striping only"
  /// code: encode produces no parity and no erasure is recoverable, but
  /// every operation on intact data still round-trips.
  void validate() const {
    if (k == 0) throw std::invalid_argument("CodeParams: k must be >= 1");
    if (!gf::is_supported_w(w))
      throw std::invalid_argument("CodeParams: unsupported w=" +
                                  std::to_string(w));
    if (n() > (std::size_t{1} << w))
      throw std::invalid_argument("CodeParams: k + r exceeds field size");
  }

  bool operator==(const CodeParams&) const = default;
};

/// Bitmatrix encoders slice each unit into w packets, so the unit size
/// must be a multiple of w bytes (packets down to a single byte are
/// legal: MatrixCoder::apply pads them to whole 64-bit words through an
/// internal staging copy when needed). Throws std::invalid_argument
/// otherwise; returns the packet size in bytes.
inline std::size_t packet_bytes(const CodeParams& p, std::size_t unit_size) {
  if (unit_size == 0 || unit_size % p.w != 0)
    throw std::invalid_argument(
        "unit size must be a nonzero multiple of w bytes (got " +
        std::to_string(unit_size) + " with w=" + std::to_string(p.w) + ")");
  return unit_size / p.w;
}

}  // namespace tvmec::ec
