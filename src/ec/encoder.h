#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

/// The backend-neutral coding interface.
///
/// Every encoding library in this repo — the naive reference, the three
/// custom-library baselines, and the GEMM-backed TVM-EC core — implements
/// MatrixCoder: "apply an arbitrary coefficient matrix to input units".
/// Encoding applies the parity block; decoding applies a DecodePlan's
/// recovery matrix. This uniformity is itself a paper point (§2: decoding
/// mirrors encoding), and it lets benchmarks and integration tests drive
/// all backends identically.
namespace tvmec::ec {

/// Word-oriented backends reinterpret byte buffers as uint64 words; this
/// guards the required 8-byte alignment (AlignedBuffer satisfies it).
/// Throws std::invalid_argument when violated.
inline void require_word_aligned(const void* p, const char* what) {
  if (reinterpret_cast<std::uintptr_t>(p) % 8 != 0)
    throw std::invalid_argument(std::string(what) +
                                ": buffer must be 8-byte aligned");
}

class MatrixCoder {
 public:
  virtual ~MatrixCoder() = default;

  /// Applies the coefficient matrix: reads in_units() contiguous units
  /// from `in`, writes out_units() contiguous units to `out`, each unit
  /// being `unit_size` bytes. Throws std::invalid_argument on size
  /// mismatch or a unit size the backend cannot handle.
  virtual void apply(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out,
                     std::size_t unit_size) const = 0;

  virtual std::size_t in_units() const noexcept = 0;
  virtual std::size_t out_units() const noexcept = 0;

  /// Short backend name for logs and benchmark rows (e.g. "isal-like").
  virtual std::string name() const = 0;
};

}  // namespace tvmec::ec
