#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <stdexcept>

#include "tensor/cancel.h"

/// The backend-neutral coding interface.
///
/// Every encoding library in this repo — the naive reference, the three
/// custom-library baselines, and the GEMM-backed TVM-EC core — implements
/// MatrixCoder: "apply an arbitrary coefficient matrix to input units".
/// Encoding applies the parity block; decoding applies a DecodePlan's
/// recovery matrix. This uniformity is itself a paper point (§2: decoding
/// mirrors encoding), and it lets benchmarks and integration tests drive
/// all backends identically.
namespace tvmec::ec {

/// Word-oriented fast paths reinterpret byte buffers as uint64 words; this
/// guards the required 8-byte alignment for the raw-pointer entry points
/// (AlignedBuffer satisfies it). The span-based MatrixCoder::apply no
/// longer requires alignment — it stages unaligned buffers through aligned
/// scratch instead. Throws std::invalid_argument when violated.
inline void require_word_aligned(const void* p, const char* what) {
  if (reinterpret_cast<std::uintptr_t>(p) % 8 != 0)
    throw std::invalid_argument(std::string(what) +
                                ": buffer must be 8-byte aligned");
}

/// One request of a batched apply: its own operand pair and unit size
/// (unit sizes may differ across a batch; the coefficient matrix — and
/// therefore in_units/out_units — is the coder's and shared).
struct CoderBatchItem {
  std::span<const std::uint8_t> in;
  std::span<std::uint8_t> out;
  std::size_t unit_size = 0;
};

class MatrixCoder {
 public:
  virtual ~MatrixCoder() = default;

  /// Applies the coefficient matrix: reads in_units() contiguous units
  /// from `in`, writes out_units() contiguous units to `out`, each unit
  /// being `unit_size` bytes. Throws std::invalid_argument on size
  /// mismatch or a unit size the backend cannot handle.
  ///
  /// Buffer contract: any byte span of the right size works. Bit-sliced
  /// backends (bit_sliced_w() > 0) require unit_size to be a multiple of
  /// w; unaligned buffers and unit sizes whose packets are not whole
  /// 64-bit words (anything between w and 8*w granularity) are staged
  /// through an internal aligned, packet-padded scratch copy — the
  /// backend's fast path always sees 8-byte-aligned operands and
  /// word-multiple packets. Byte-oriented backends (bit_sliced_w() == 0)
  /// accept any positive unit_size directly.
  void apply(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
             std::size_t unit_size) const;

  /// Applies the coefficient matrix to a whole batch of independent
  /// requests in one call (the serving-layer entry point). Semantically
  /// identical to calling apply() per item — and that is the default
  /// implementation — but backends may execute the batch as a single
  /// enlarged kernel invocation (GemmCoder packs the payloads into one
  /// wide-N GEMM). `max_threads` > 0 caps the thread knob of whatever
  /// schedule the backend would use, so concurrent batches can share a
  /// thread pool without oversubscribing; 0 leaves it unchanged.
  /// Validation and the buffer contract are exactly apply()'s, per item.
  /// `cancel`, when valid, is polled between items (and, for GemmCoder,
  /// at tile-chunk granularity inside the fused kernel); an observed
  /// flag throws tensor::Cancelled and leaves the remaining outputs
  /// unwritten — outputs of the aborted batch are indeterminate.
  virtual void apply_batch(std::span<const CoderBatchItem> items,
                           int max_threads = 0,
                           const tensor::CancelToken& cancel = {}) const;

  virtual std::size_t in_units() const noexcept = 0;
  virtual std::size_t out_units() const noexcept = 0;

  /// Short backend name for logs and benchmark rows (e.g. "isal-like").
  virtual std::string name() const = 0;

 protected:
  /// apply()'s argument validation alone (sizes, unit-size granularity),
  /// shared with apply_batch overrides. Throws std::invalid_argument.
  void validate_apply_args(std::span<const std::uint8_t> in,
                           std::span<std::uint8_t> out,
                           std::size_t unit_size) const;

  /// Backend kernel. Called with pre-validated operands: sizes match,
  /// and for bit-sliced backends the buffers are 8-byte aligned with
  /// unit_size a multiple of 8*w. Never called with an empty output
  /// (out_units() == 0 returns from apply() before dispatch).
  virtual void do_apply(std::span<const std::uint8_t> in,
                        std::span<std::uint8_t> out,
                        std::size_t unit_size) const = 0;

  /// The field word size w for backends using the bit-sliced packet
  /// embedding (units are w packets processed as 64-bit words); 0 for
  /// byte-oriented backends with no packet structure or alignment needs.
  virtual unsigned bit_sliced_w() const noexcept { return 0; }
};

}  // namespace tvmec::ec
