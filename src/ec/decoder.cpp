#include "ec/decoder.h"

#include <algorithm>
#include <stdexcept>

#include "gf/bitmatrix.h"

namespace tvmec::ec {

namespace {

/// Incremental row-reduction helper: tracks a reduced basis over GF(2^w)
/// and reports whether a new row adds rank.
class RankTracker {
 public:
  explicit RankTracker(const gf::Field& field, std::size_t cols)
      : field_(&field), cols_(cols) {}

  std::size_t rank() const noexcept { return basis_.size(); }

  /// Returns true (and absorbs the row) if it is independent of the basis.
  bool try_add(std::span<const gf::elem_t> row) {
    std::vector<gf::elem_t> v(row.begin(), row.end());
    for (const auto& b : basis_) reduce(v, b);
    const auto lead = leading(v);
    if (!lead) return false;
    normalize(v, *lead);
    basis_.push_back({std::move(v), *lead});
    return true;
  }

 private:
  struct BasisRow {
    std::vector<gf::elem_t> row;  // normalized: row[lead] == 1
    std::size_t lead;
  };

  std::optional<std::size_t> leading(const std::vector<gf::elem_t>& v) const {
    for (std::size_t c = 0; c < cols_; ++c)
      if (v[c] != 0) return c;
    return std::nullopt;
  }

  void normalize(std::vector<gf::elem_t>& v, std::size_t lead) const {
    const gf::elem_t inv = field_->inv(v[lead]);
    for (auto& x : v) x = field_->mul(inv, x);
  }

  void reduce(std::vector<gf::elem_t>& v, const BasisRow& b) const {
    const gf::elem_t f = v[b.lead];
    if (f == 0) return;
    for (std::size_t c = 0; c < cols_; ++c)
      v[c] = gf::Field::add(v[c], field_->mul(f, b.row[c]));
  }

  const gf::Field* field_;
  std::size_t cols_;
  std::vector<BasisRow> basis_;
};

}  // namespace

std::optional<DecodePlan> make_decode_plan(
    const gf::Matrix& generator, std::span<const std::size_t> erased_ids) {
  const std::size_t n = generator.rows();
  const std::size_t k = generator.cols();
  if (erased_ids.empty())
    throw std::invalid_argument("make_decode_plan: nothing erased");

  std::vector<bool> erased_mask(n, false);
  for (const std::size_t id : erased_ids) {
    if (id >= n)
      throw std::invalid_argument("make_decode_plan: erased id out of range");
    if (erased_mask[id])
      throw std::invalid_argument("make_decode_plan: duplicate erased id " +
                                  std::to_string(id));
    erased_mask[id] = true;
  }

  // Greedily pick k linearly independent survivor rows; for MDS codes
  // this is simply the first k survivors, and for LRC-style codes the
  // dependence check skips redundant local parities.
  RankTracker tracker(generator.field(), k);
  std::vector<std::size_t> chosen;
  for (std::size_t id = 0; id < n && chosen.size() < k; ++id) {
    if (erased_mask[id]) continue;
    if (tracker.try_add(generator.row(id))) chosen.push_back(id);
  }
  if (chosen.size() < k) return std::nullopt;

  const gf::Matrix survivor_rows = generator.select_rows(chosen);
  const auto inv = survivor_rows.inverted();
  if (!inv) return std::nullopt;  // cannot happen after the rank check

  std::vector<std::size_t> erased_vec(erased_ids.begin(), erased_ids.end());
  gf::Matrix recovery = generator.select_rows(erased_vec).mul(*inv);
  return DecodePlan{std::move(chosen), std::move(erased_vec),
                    std::move(recovery)};
}

namespace {

/// Total bitmatrix ones of a coefficient matrix (the XOR-work measure).
std::size_t matrix_bitmatrix_ones(const gf::Matrix& m) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < m.rows(); ++i)
    total += gf::row_bitmatrix_ones(m, i);
  return total;
}

}  // namespace

std::optional<DecodePlan> make_decode_plan_optimized(
    const gf::Matrix& generator, std::span<const std::size_t> erased_ids,
    std::size_t max_subsets) {
  auto fallback = make_decode_plan(generator, erased_ids);
  if (!fallback) return std::nullopt;

  const std::size_t k = generator.cols();
  std::vector<std::size_t> survivors_all;
  {
    std::vector<bool> erased_mask(generator.rows(), false);
    for (const std::size_t id : erased_ids) erased_mask[id] = true;
    for (std::size_t id = 0; id < generator.rows(); ++id)
      if (!erased_mask[id]) survivors_all.push_back(id);
  }
  if (survivors_all.size() <= k) return fallback;  // no choice to make

  // Enumerate k-subsets of the survivors up to the budget.
  std::size_t best_ones = matrix_bitmatrix_ones(fallback->recovery);
  std::optional<DecodePlan> best = std::move(fallback);
  std::vector<std::size_t> pick(k);
  std::size_t visited = 0;
  const auto recurse = [&](auto&& self, std::size_t start,
                           std::size_t depth) -> void {
    if (visited >= max_subsets) return;
    if (depth == k) {
      ++visited;
      const gf::Matrix rows = generator.select_rows(pick);
      const auto inv = rows.inverted();
      if (!inv) return;  // dependent subset (possible for non-MDS codes)
      std::vector<std::size_t> erased_vec(erased_ids.begin(),
                                          erased_ids.end());
      gf::Matrix recovery = generator.select_rows(erased_vec).mul(*inv);
      const std::size_t ones = matrix_bitmatrix_ones(recovery);
      if (ones < best_ones) {
        best_ones = ones;
        best = DecodePlan{pick, std::move(erased_vec), std::move(recovery)};
      }
      return;
    }
    for (std::size_t i = start;
         i + (k - depth) <= survivors_all.size() && visited < max_subsets;
         ++i) {
      pick[depth] = survivors_all[i];
      self(self, i + 1, depth + 1);
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

std::optional<DecodePlan> make_decode_plan_with_survivors(
    const gf::Matrix& generator, std::span<const std::size_t> erased_ids,
    std::span<const std::size_t> survivor_ids) {
  const std::size_t n = generator.rows();
  const std::size_t k = generator.cols();
  if (erased_ids.empty())
    throw std::invalid_argument("make_decode_plan: nothing erased");

  std::vector<bool> erased_mask(n, false);
  for (const std::size_t id : erased_ids) {
    if (id >= n)
      throw std::invalid_argument("make_decode_plan: erased id out of range");
    if (erased_mask[id])
      throw std::invalid_argument("make_decode_plan: duplicate erased id " +
                                  std::to_string(id));
    erased_mask[id] = true;
  }

  // Consume the caller's survivors in preference order; unlike
  // make_decode_plan we never look outside the given set, so a
  // domain-local plan stays domain-local or fails loudly.
  RankTracker tracker(generator.field(), k);
  std::vector<std::size_t> chosen;
  std::vector<bool> used(n, false);
  for (const std::size_t id : survivor_ids) {
    if (chosen.size() == k) break;
    if (id >= n)
      throw std::invalid_argument(
          "make_decode_plan: survivor id out of range");
    if (erased_mask[id] || used[id]) continue;
    used[id] = true;
    if (tracker.try_add(generator.row(id))) chosen.push_back(id);
  }
  if (chosen.size() < k) return std::nullopt;

  // The plan's survivor list is kept ascending (like make_decode_plan)
  // so plans cached under the same key compare equal regardless of the
  // caller's preference ordering of an identical chosen set.
  std::sort(chosen.begin(), chosen.end());
  const gf::Matrix survivor_rows = generator.select_rows(chosen);
  const auto inv = survivor_rows.inverted();
  if (!inv) return std::nullopt;
  std::vector<std::size_t> erased_vec(erased_ids.begin(), erased_ids.end());
  gf::Matrix recovery = generator.select_rows(erased_vec).mul(*inv);
  return DecodePlan{std::move(chosen), std::move(erased_vec),
                    std::move(recovery)};
}

}  // namespace tvmec::ec
