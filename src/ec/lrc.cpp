#include "ec/lrc.h"

#include <stdexcept>
#include <string>

#include "ec/reed_solomon.h"

namespace tvmec::ec {

void LrcParams::validate() const {
  if (k == 0 || l == 0 || g == 0)
    throw std::invalid_argument("LrcParams: k, l, g must be >= 1");
  if (k % l != 0)
    throw std::invalid_argument("LrcParams: l must divide k");
  if (!gf::is_supported_w(w))
    throw std::invalid_argument("LrcParams: unsupported w=" +
                                std::to_string(w));
  if (k + g > (std::size_t{1} << w))
    throw std::invalid_argument("LrcParams: k + g exceeds field size");
}

namespace {

gf::Matrix build_lrc_generator(const LrcParams& p) {
  p.validate();
  const gf::Field& field = gf::Field::of(p.w);
  gf::Matrix gen(field, p.n(), p.k);
  // Identity block: data units pass through.
  for (std::size_t i = 0; i < p.k; ++i) gen.set(i, i, 1);
  // Local parities: plain XOR (coefficient 1) over each group.
  const std::size_t gs = p.group_size();
  for (std::size_t grp = 0; grp < p.l; ++grp)
    for (std::size_t j = 0; j < gs; ++j)
      gen.set(p.k + grp, grp * gs + j, 1);
  // Global parities: Cauchy rows over all k data units; any gxg
  // submatrix of a Cauchy matrix is invertible, so any <= g failures of
  // data units are recoverable from the globals alone.
  const gf::Matrix globals = gf::Matrix::cauchy(field, p.g, p.k);
  for (std::size_t i = 0; i < p.g; ++i)
    for (std::size_t j = 0; j < p.k; ++j)
      gen.set(p.k + p.l + i, j, globals.at(i, j));
  return gen;
}

}  // namespace

Lrc::Lrc(const LrcParams& params)
    : params_(params), generator_(build_lrc_generator(params)) {}

gf::Matrix Lrc::parity_matrix() const {
  std::vector<std::size_t> ids(params_.l + params_.g);
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = params_.k + i;
  return generator_.select_rows(ids);
}

std::optional<std::size_t> Lrc::group_of(std::size_t unit) const {
  if (unit < params_.k) return unit / params_.group_size();
  if (unit < params_.k + params_.l) return unit - params_.k;
  return std::nullopt;  // global parity
}

void Lrc::encode_reference(std::span<const std::uint8_t> data,
                           std::span<std::uint8_t> parity,
                           std::size_t unit_size) const {
  if (data.size() != params_.k * unit_size)
    throw std::invalid_argument("Lrc::encode_reference: bad data size");
  if (parity.size() != (params_.l + params_.g) * unit_size)
    throw std::invalid_argument("Lrc::encode_reference: bad parity size");
  apply_matrix_reference(parity_matrix(), data, parity, unit_size);
}

std::optional<DecodePlan> Lrc::local_repair_plan(
    std::size_t failed_unit) const {
  if (failed_unit >= params_.n())
    throw std::invalid_argument("local_repair_plan: unit out of range");
  const auto grp = group_of(failed_unit);
  if (!grp) return std::nullopt;  // global parity: no local group
  // Group members: the group's data units plus its local parity; the
  // failed unit is the XOR of the other group_size() members.
  const std::size_t gs = params_.group_size();
  std::vector<std::size_t> members;
  for (std::size_t j = 0; j < gs; ++j) members.push_back(*grp * gs + j);
  members.push_back(params_.k + *grp);

  std::vector<std::size_t> survivors;
  for (const std::size_t m : members)
    if (m != failed_unit) survivors.push_back(m);

  gf::Matrix recovery(field(), 1, survivors.size());
  for (std::size_t j = 0; j < survivors.size(); ++j) recovery.set(0, j, 1);
  return DecodePlan{std::move(survivors), {failed_unit}, std::move(recovery)};
}

}  // namespace tvmec::ec
