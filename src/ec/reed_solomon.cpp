#include "ec/reed_solomon.h"

#include <stdexcept>

namespace tvmec::ec {

namespace {

gf::Matrix build_generator(const CodeParams& p, RsFamily family) {
  p.validate();
  const gf::Field& field = gf::Field::of(p.w);
  switch (family) {
    case RsFamily::VandermondeSystematic:
      return gf::rs_generator_vandermonde(field, p.k, p.r);
    case RsFamily::Cauchy:
      return gf::rs_generator_cauchy(field, p.k, p.r, /*minimize_ones=*/false);
    case RsFamily::CauchyGood:
      return gf::rs_generator_cauchy(field, p.k, p.r, /*minimize_ones=*/true);
    case RsFamily::CauchyBest:
      return gf::Matrix::identity(field, p.k)
          .vstack(gf::Matrix::cauchy_best(field, p.r, p.k));
  }
  throw std::invalid_argument("ReedSolomon: unknown family");
}

}  // namespace

const char* to_string(RsFamily f) noexcept {
  switch (f) {
    case RsFamily::VandermondeSystematic:
      return "vandermonde";
    case RsFamily::Cauchy:
      return "cauchy";
    case RsFamily::CauchyGood:
      return "cauchy-good";
    case RsFamily::CauchyBest:
      return "cauchy-best";
  }
  return "?";
}

ReedSolomon::ReedSolomon(const CodeParams& params, RsFamily family)
    : params_(params), family_(family), generator_(build_generator(params, family)) {}

gf::Matrix ReedSolomon::parity_matrix() const {
  std::vector<std::size_t> ids(params_.r);
  for (std::size_t i = 0; i < params_.r; ++i) ids[i] = params_.k + i;
  return generator_.select_rows(ids);
}

void ReedSolomon::encode_reference(std::span<const std::uint8_t> data,
                                   std::span<std::uint8_t> parity,
                                   std::size_t unit_size) const {
  if (data.size() != params_.k * unit_size)
    throw std::invalid_argument("encode_reference: bad data size");
  if (parity.size() != params_.r * unit_size)
    throw std::invalid_argument("encode_reference: bad parity size");
  apply_matrix_reference(parity_matrix(), data, parity, unit_size);
}

void apply_matrix_reference(const gf::Matrix& m,
                            std::span<const std::uint8_t> src_units,
                            std::span<std::uint8_t> dst_units,
                            std::size_t unit_size) {
  const std::size_t k = m.cols();
  const std::size_t rows = m.rows();
  if (src_units.size() != k * unit_size)
    throw std::invalid_argument("apply_matrix_reference: bad source size");
  if (dst_units.size() != rows * unit_size)
    throw std::invalid_argument("apply_matrix_reference: bad dest size");
  const gf::Field& field = m.field();
  std::fill(dst_units.begin(), dst_units.end(), std::uint8_t{0});
  for (std::size_t i = 0; i < rows; ++i) {
    const std::span<std::uint8_t> dst = dst_units.subspan(i * unit_size, unit_size);
    for (std::size_t j = 0; j < k; ++j) {
      const gf::elem_t c = m.at(i, j);
      if (c == 0) continue;
      field.region_mul_xor(c, src_units.subspan(j * unit_size, unit_size), dst);
    }
  }
}

namespace {

bool get_bit(const std::uint8_t* p, std::size_t bit) {
  return (p[bit >> 3] >> (bit & 7)) & 1u;
}

void xor_bit(std::uint8_t* p, std::size_t bit, bool v) {
  p[bit >> 3] = static_cast<std::uint8_t>(p[bit >> 3] ^
                                          (static_cast<std::uint8_t>(v)
                                           << (bit & 7)));
}

}  // namespace

void apply_matrix_reference_bitpacket(const gf::Matrix& m,
                                      std::span<const std::uint8_t> src_units,
                                      std::span<std::uint8_t> dst_units,
                                      std::size_t unit_size) {
  const gf::Field& field = m.field();
  const unsigned w = field.w();
  const std::size_t k = m.cols();
  const std::size_t rows = m.rows();
  if (unit_size == 0 || unit_size % w != 0)
    throw std::invalid_argument(
        "apply_matrix_reference_bitpacket: unit size must be multiple of w");
  if (src_units.size() != k * unit_size)
    throw std::invalid_argument(
        "apply_matrix_reference_bitpacket: bad source size");
  if (dst_units.size() != rows * unit_size)
    throw std::invalid_argument(
        "apply_matrix_reference_bitpacket: bad dest size");

  const std::size_t packet_bytes = unit_size / w;
  const std::size_t packet_bits = packet_bytes * 8;

  // Gather every unit into element-major form once: element t of unit j
  // collects bit-position t of each of the unit's w packets.
  std::vector<std::vector<gf::elem_t>> elems(
      k, std::vector<gf::elem_t>(packet_bits, 0));
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint8_t* unit = src_units.data() + j * unit_size;
    for (std::size_t t = 0; t < packet_bits; ++t) {
      gf::elem_t e = 0;
      for (unsigned b = 0; b < w; ++b)
        e = static_cast<gf::elem_t>(
            e | (static_cast<gf::elem_t>(get_bit(unit + b * packet_bytes, t))
                 << b));
      elems[j][t] = e;
    }
  }

  std::fill(dst_units.begin(), dst_units.end(), std::uint8_t{0});
  std::vector<gf::elem_t> acc(packet_bits);
  for (std::size_t i = 0; i < rows; ++i) {
    std::fill(acc.begin(), acc.end(), 0);
    for (std::size_t j = 0; j < k; ++j) {
      const gf::elem_t c = m.at(i, j);
      if (c == 0) continue;
      for (std::size_t t = 0; t < packet_bits; ++t)
        acc[t] = gf::Field::add(acc[t], field.mul(c, elems[j][t]));
    }
    // Scatter the element vector back into packet-major bits.
    std::uint8_t* unit = dst_units.data() + i * unit_size;
    for (std::size_t t = 0; t < packet_bits; ++t) {
      const gf::elem_t e = acc[t];
      if (e == 0) continue;
      for (unsigned b = 0; b < w; ++b)
        xor_bit(unit + b * packet_bytes, t, (e >> b) & 1u);
    }
  }
}

}  // namespace tvmec::ec
