#include "ec/bitmatrix_code.h"

namespace tvmec::ec {

BitmatrixCode::BitmatrixCode(const gf::Matrix& coeffs)
    : w_(coeffs.field().w()),
      out_units_(coeffs.rows()),
      in_units_(coeffs.cols()),
      bits_(gf::BitMatrix::from_gf_matrix(coeffs)) {}

double BitmatrixCode::density() const noexcept {
  return static_cast<double>(bits_.ones()) /
         static_cast<double>(bits_.rows() * bits_.cols());
}

std::vector<std::vector<std::size_t>> BitmatrixCode::xor_equations() const {
  std::vector<std::vector<std::size_t>> eqs(bits_.rows());
  for (std::size_t i = 0; i < bits_.rows(); ++i) {
    for (std::size_t j = 0; j < bits_.cols(); ++j)
      if (bits_.get(i, j)) eqs[i].push_back(j);
  }
  return eqs;
}

}  // namespace tvmec::ec
