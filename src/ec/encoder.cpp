#include "ec/encoder.h"

#include <cstring>
#include <stdexcept>

#include "tensor/buffer.h"
#include "tensor/kernel.h"

namespace tvmec::ec {

namespace {

bool word_aligned(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % 8 == 0;
}

}  // namespace

void MatrixCoder::validate_apply_args(std::span<const std::uint8_t> in,
                                      std::span<std::uint8_t> out,
                                      std::size_t unit_size) const {
  const unsigned w = bit_sliced_w();
  if (unit_size == 0)
    throw std::invalid_argument(name() + ": unit size must be positive");
  if (w > 0 && unit_size % w != 0)
    throw std::invalid_argument(name() +
                                ": unit size must be a multiple of w=" +
                                std::to_string(w) + " (got " +
                                std::to_string(unit_size) + ")");
  if (in.size() != in_units() * unit_size)
    throw std::invalid_argument(name() + ": bad input size");
  if (out.size() != out_units() * unit_size)
    throw std::invalid_argument(name() + ": bad output size");
}

void MatrixCoder::apply_batch(std::span<const CoderBatchItem> items,
                              int max_threads,
                              const tensor::CancelToken& cancel) const {
  // Reference semantics: a batch is the sequence of its requests. Only
  // backends with a schedule knob (GemmCoder) interpret max_threads;
  // cancellation is polled at item granularity here (an item is the
  // smallest unit a sequential backend can skip).
  (void)max_threads;
  for (const CoderBatchItem& item : items) {
    cancel.throw_if_cancelled();
    apply(item.in, item.out, item.unit_size);
  }
}

void MatrixCoder::apply(std::span<const std::uint8_t> in,
                        std::span<std::uint8_t> out,
                        std::size_t unit_size) const {
  const unsigned w = bit_sliced_w();
  validate_apply_args(in, out, unit_size);
  if (out.empty()) return;  // r == 0: nothing to compute

  if (w == 0) {
    do_apply(in, out, unit_size);
    return;
  }

  const std::size_t pb = unit_size / w;  // packet bytes, >= 1
  if (pb % 8 == 0 && word_aligned(in.data()) && word_aligned(out.data())) {
    do_apply(in, out, unit_size);
    return;
  }

  // Degenerate-buffer staging: pad every packet to a whole number of
  // 64-bit words and copy through 64-byte-aligned scratch. In the
  // bit-sliced embedding every bit position of a packet is an independent
  // GF(2^w) element, so zero-padding the packet tail only appends
  // elements whose value is 0 — the bytes in the real region are
  // unchanged. This is what lets unaligned user spans and unit sizes
  // down to w bytes (1-byte packets) run through the word kernels.
  const std::size_t pb_pad = (pb + 7) / 8 * 8;
  const std::size_t unit_pad = pb_pad * w;
  tensor::AlignedBuffer<std::uint8_t> in_stage(in_units() * unit_pad);
  tensor::AlignedBuffer<std::uint8_t> out_stage(out_units() * unit_pad);
  for (std::size_t u = 0; u < in_units(); ++u)
    for (unsigned p = 0; p < w; ++p) {
      std::memcpy(in_stage.data() + u * unit_pad + p * pb_pad,
                  in.data() + u * unit_size + p * pb, pb);
      tensor::note_staging_copy(pb);
    }
  do_apply(std::span<const std::uint8_t>(in_stage.data(), in_stage.size()),
           std::span<std::uint8_t>(out_stage.data(), out_stage.size()),
           unit_pad);
  for (std::size_t u = 0; u < out_units(); ++u)
    for (unsigned p = 0; p < w; ++p) {
      std::memcpy(out.data() + u * unit_size + p * pb,
                  out_stage.data() + u * unit_pad + p * pb_pad, pb);
      tensor::note_staging_copy(pb);
    }
}

}  // namespace tvmec::ec
