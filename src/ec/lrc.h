#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ec/code_params.h"
#include "ec/decoder.h"
#include "gf/gf_matrix.h"

/// Local Reconstruction Codes (Azure-style; Huang et al. ATC'12), the
/// first code family the paper's future-work section commits to adding:
/// "we plan to include other classes of codes in our prototype, such as
/// local reconstruction codes (LRCs)".
///
/// An LRC(k, l, g) splits k data units into l equal groups, adds one
/// local XOR parity per group, and g global Reed-Solomon parities over
/// all k data units. A single lost unit is repaired from its group alone
/// (k/l reads instead of k), while any g simultaneous failures remain
/// recoverable via the global parities. Because every parity is still a
/// linear combination of the data, the whole code is one coefficient
/// matrix — so LRC encoding runs through the same GEMM path as RS,
/// exactly the "all linear codes can be developed via a highly optimized
/// GEMM routine" claim of the paper.
namespace tvmec::ec {

struct LrcParams {
  std::size_t k = 0;  ///< data units
  std::size_t l = 0;  ///< local groups (one local parity each)
  std::size_t g = 0;  ///< global parities
  unsigned w = 8;

  std::size_t n() const noexcept { return k + l + g; }
  std::size_t group_size() const noexcept { return k / l; }

  /// Throws std::invalid_argument unless k, l, g >= 1, l divides k, the
  /// field supports k + g distinct points, and w is supported.
  void validate() const;
};

/// Unit layout: [0, k) data, [k, k+l) local parities (group order),
/// [k+l, k+l+g) global parities.
class Lrc {
 public:
  explicit Lrc(const LrcParams& params);

  const LrcParams& params() const noexcept { return params_; }
  const gf::Field& field() const noexcept { return generator_.field(); }

  /// Full n x k generator: identity, then local rows, then global rows.
  const gf::Matrix& generator() const noexcept { return generator_; }

  /// (l + g) x k parity block (everything below the identity).
  gf::Matrix parity_matrix() const;

  /// Group index of a data or local-parity unit; nullopt for globals.
  std::optional<std::size_t> group_of(std::size_t unit) const;

  /// Reference encoder over contiguous buffers (k units in, l+g out).
  void encode_reference(std::span<const std::uint8_t> data,
                        std::span<std::uint8_t> parity,
                        std::size_t unit_size) const;

  /// Locality-aware repair plan for a single failed data or local-parity
  /// unit: reads only the group_size() surviving members of its group.
  /// Falls back to nullopt for global parities (use decode_plan).
  std::optional<DecodePlan> local_repair_plan(std::size_t failed_unit) const;

  /// General (possibly multi-failure) decode plan; nullopt when the
  /// pattern is unrecoverable. Any pattern with at most g failures is
  /// always recoverable (Cauchy global parities), as is one failure per
  /// group via locals.
  std::optional<DecodePlan> decode_plan(
      std::span<const std::size_t> erased_ids) const {
    return make_decode_plan(generator_, erased_ids);
  }

 private:
  LrcParams params_;
  gf::Matrix generator_;
};

}  // namespace tvmec::ec
