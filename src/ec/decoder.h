#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gf/gf_matrix.h"

/// Decode planning: turning "these units are lost" into a coefficient
/// matrix over the survivors. Because decoding an erasure code is "encode
/// with a different matrix" (paper §2: "the decoding process is very
/// similar to that of encoding"), every backend — including the GEMM one —
/// executes a DecodePlan through its ordinary encoding path.
namespace tvmec::ec {

/// A plan for recovering erased units from surviving ones.
struct DecodePlan {
  /// The unit ids (rows of the generator) the plan reads, ascending.
  /// make_decode_plan always chooses exactly k linearly independent
  /// survivors; locality-aware planners (LRC) may read fewer.
  std::vector<std::size_t> survivors;
  /// The erased unit ids the plan reconstructs, in input order.
  std::vector<std::size_t> erased;
  /// erased.size() x survivors.size() matrix:
  /// erased units = recovery * survivor units.
  gf::Matrix recovery;
};

/// Builds a decode plan against an arbitrary (n x k) generator matrix
/// whose row i generates unit i.
///
/// Works for MDS codes (any k survivors suffice) and for non-MDS codes
/// such as LRCs (a linearly independent survivor subset is searched for).
/// Returns nullopt when the erasure pattern is unrecoverable. Throws
/// std::invalid_argument on out-of-range or duplicate erased ids.
std::optional<DecodePlan> make_decode_plan(
    const gf::Matrix& generator, std::span<const std::size_t> erased_ids);

/// Repair-optimized planning: for small erasure counts, *which* k
/// survivors are read changes the density of the recovery matrix and
/// thus the XOR work of the repair (the schedule-selection idea of Luo
/// et al., applied to survivor choice). Enumerates survivor subsets (up
/// to `max_subsets`, default exhaustive for e <= 2 at storage-system n)
/// and returns the plan whose recovery bitmatrix has the fewest ones.
/// Falls back to make_decode_plan's greedy choice when enumeration is
/// too large. Same recoverability semantics as make_decode_plan.
std::optional<DecodePlan> make_decode_plan_optimized(
    const gf::Matrix& generator, std::span<const std::size_t> erased_ids,
    std::size_t max_subsets = 2048);

/// Placement-aware planning: builds a plan that reads *only* from
/// `survivor_ids`, in the caller's preference order (the cluster passes
/// failure-domain-local helpers first, so repair traffic stays inside a
/// domain when rank allows). Survivors are consumed greedily in the
/// given order until k independent rows are found; returns nullopt when
/// the preferred set cannot recover the pattern — callers then widen
/// the set rather than getting a silently different plan. Ids appearing
/// in `erased_ids` are skipped. Same validation as make_decode_plan.
std::optional<DecodePlan> make_decode_plan_with_survivors(
    const gf::Matrix& generator, std::span<const std::size_t> erased_ids,
    std::span<const std::size_t> survivor_ids);

}  // namespace tvmec::ec
