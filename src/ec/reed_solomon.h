#pragma once

#include <cstdint>
#include <span>

#include "ec/code_params.h"
#include "gf/gf_matrix.h"

/// Reed-Solomon code construction: the code family used throughout the
/// paper's evaluation ("the most commonly used erasure code method").
namespace tvmec::ec {

/// Generator-matrix family.
enum class RsFamily {
  VandermondeSystematic,  ///< evaluation-style RS systematized (ISA-L-like)
  Cauchy,                 ///< plain Cauchy parity block (CRS)
  CauchyGood,             ///< Cauchy with bitmatrix-ones row scaling
  CauchyBest,             ///< randomized low-density Cauchy point search
};

const char* to_string(RsFamily f) noexcept;

/// A systematic Reed-Solomon code: units 0..k-1 are the data verbatim,
/// units k..k+r-1 are parities given by the bottom r x k block of the
/// generator. The full generator is (k+r) x k with an identity top block;
/// any k of its rows are invertible (MDS).
class ReedSolomon {
 public:
  /// Builds the generator. Throws std::invalid_argument on bad params.
  explicit ReedSolomon(const CodeParams& params,
                       RsFamily family = RsFamily::CauchyGood);

  const CodeParams& params() const noexcept { return params_; }
  RsFamily family() const noexcept { return family_; }
  const gf::Field& field() const noexcept { return generator_.field(); }

  /// Full (k+r) x k generator (identity on top).
  const gf::Matrix& generator() const noexcept { return generator_; }

  /// The r x k parity block (rows k..k+r-1 of the generator).
  gf::Matrix parity_matrix() const;

  /// Reference encoder: element-wise GF arithmetic over contiguous unit
  /// buffers. `data` holds k units of `unit_size` bytes back to back;
  /// `parity` receives r units likewise. Slow; every optimized backend is
  /// validated against this. Throws std::invalid_argument on size
  /// mismatch (unit_size must be a multiple of 2 for w=16).
  void encode_reference(std::span<const std::uint8_t> data,
                        std::span<std::uint8_t> parity,
                        std::size_t unit_size) const;

 private:
  CodeParams params_;
  RsFamily family_;
  gf::Matrix generator_;
};

/// Applies an arbitrary rows(M) x k coefficient matrix to k source units,
/// producing rows(M) output units — the shared primitive behind reference
/// encoding (M = parity block) and reference decoding (M = recovery
/// matrix).
///
/// Uses the *byte embedding* of units into field elements: for w=8,
/// element t of a unit is byte t (pairs of bytes for w=16, nibbles for
/// w=4). This is the convention of ISA-L and of classic table-based
/// GF(2^w) encoders.
void apply_matrix_reference(const gf::Matrix& m,
                            std::span<const std::uint8_t> src_units,
                            std::span<std::uint8_t> dst_units,
                            std::size_t unit_size);

/// Same operation under the *bitpacket embedding* used by bitmatrix
/// (Cauchy-Reed-Solomon-style) encoders: a unit is sliced into w packets
/// of unit_size/w bytes, and element t of the unit is the w bits found at
/// bit-position t of packets 0..w-1. This is what makes bitmatrix
/// encoding pure packet-wide XOR (paper §2.1): bit b of every element is
/// contiguous in memory.
///
/// The two embeddings yield *different parity bytes* for the same
/// coefficient matrix — both are valid, mutually non-interchangeable
/// encodings of the same code, exactly as real Jerasure bitmatrix output
/// differs from real ISA-L output. All bitmatrix backends in this repo
/// (naive, jerasure, uezato, tvm-ec GEMM) share the bitpacket embedding
/// and are validated against this reference; the ISA-L backend uses the
/// byte embedding and is validated against apply_matrix_reference.
/// unit_size must be a multiple of w (throws std::invalid_argument).
void apply_matrix_reference_bitpacket(const gf::Matrix& m,
                                      std::span<const std::uint8_t> src_units,
                                      std::span<std::uint8_t> dst_units,
                                      std::size_t unit_size);

}  // namespace tvmec::ec
