#pragma once

#include <cstddef>
#include <vector>

#include "ec/code_params.h"
#include "gf/bitmatrix.h"
#include "gf/gf_matrix.h"

/// The bitmatrix form of a linear code (paper §2.1): the GF(2^w)
/// coefficient matrix expanded to binary so encoding becomes pure
/// XOR/AND — the representation both the GEMM backend and the
/// XOR-scheduling baselines execute.
namespace tvmec::ec {

/// A coefficient matrix (rows x k over GF(2^w)) in bitmatrix form
/// (rows*w x k*w over GF(2)). "Coefficient matrix" is either a parity
/// block (encoding) or a recovery matrix (decoding).
class BitmatrixCode {
 public:
  /// Expands `coeffs`. `w` is taken from the matrix's field.
  explicit BitmatrixCode(const gf::Matrix& coeffs);

  unsigned w() const noexcept { return w_; }
  /// Output units (rows of the coefficient matrix).
  std::size_t out_units() const noexcept { return out_units_; }
  /// Input units (columns of the coefficient matrix).
  std::size_t in_units() const noexcept { return in_units_; }

  /// The rows*w x k*w binary matrix.
  const gf::BitMatrix& bits() const noexcept { return bits_; }

  /// Total ones — proportional to the XOR work of a schedule-free encode.
  std::size_t ones() const noexcept { return bits_.ones(); }

  /// Average ones per output bit-row; the "density" metric low-density
  /// code searches minimize.
  double density() const noexcept;

  /// For each output bit-row, the list of input bit-row indices XORed
  /// into it — the raw XOR equations every scheduling baseline starts
  /// from.
  std::vector<std::vector<std::size_t>> xor_equations() const;

 private:
  unsigned w_;
  std::size_t out_units_;
  std::size_t in_units_;
  gf::BitMatrix bits_;
};

}  // namespace tvmec::ec
