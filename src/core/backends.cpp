#include "core/backends.h"

#include <stdexcept>

#include "baselines/isal_like.h"
#include "baselines/jerasure_like.h"
#include "baselines/naive.h"
#include "baselines/xor_schedule.h"
#include "core/gemm_coder.h"

namespace tvmec::core {

const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::NaiveBitmatrix:
      return "naive";
    case Backend::JerasureDumb:
      return "jerasure-dumb";
    case Backend::JerasureSmart:
      return "jerasure-smart";
    case Backend::Uezato:
      return "uezato";
    case Backend::Isal:
      return "isal";
    case Backend::Gemm:
      return "tvm-ec";
  }
  return "?";
}

std::optional<Backend> backend_from_name(std::string_view name) noexcept {
  for (const Backend b : {Backend::NaiveBitmatrix, Backend::JerasureDumb,
                          Backend::JerasureSmart, Backend::Uezato,
                          Backend::Isal, Backend::Gemm})
    if (name == to_string(b)) return b;
  return std::nullopt;
}

bool is_bitpacket_backend(Backend b) noexcept { return b != Backend::Isal; }

std::vector<Backend> all_backends() {
  return {Backend::NaiveBitmatrix, Backend::JerasureDumb,
          Backend::JerasureSmart, Backend::Uezato,
          Backend::Isal,           Backend::Gemm};
}

std::vector<Backend> backends_for_w(unsigned w) {
  std::vector<Backend> out;
  for (const Backend b : all_backends())
    if (b != Backend::Isal || w == 8) out.push_back(b);
  return out;
}

std::unique_ptr<ec::MatrixCoder> make_coder(Backend backend,
                                            const gf::Matrix& coeffs) {
  switch (backend) {
    case Backend::NaiveBitmatrix:
      return std::make_unique<baseline::NaiveBitmatrixCoder>(coeffs);
    case Backend::JerasureDumb:
      return std::make_unique<baseline::JerasureCoder>(
          coeffs, baseline::JerasureSchedule::Dumb);
    case Backend::JerasureSmart:
      return std::make_unique<baseline::JerasureCoder>(
          coeffs, baseline::JerasureSchedule::Smart);
    case Backend::Uezato:
      return std::make_unique<baseline::UezatoCoder>(coeffs);
    case Backend::Isal:
      return std::make_unique<baseline::IsalCoder>(coeffs);
    case Backend::Gemm:
      return std::make_unique<GemmCoder>(coeffs);
  }
  throw std::invalid_argument("make_coder: unknown backend");
}

std::unique_ptr<ec::MatrixCoder> make_gemm_coder(
    const gf::Matrix& coeffs, const tensor::Schedule& schedule) {
  return std::make_unique<GemmCoder>(coeffs, schedule);
}

}  // namespace tvmec::core
