#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/gemm_coder.h"
#include "core/plan_cache.h"
#include "ec/code_params.h"
#include "ec/decoder.h"
#include "ec/reed_solomon.h"
#include "tensor/buffer.h"

/// The public TVM-EC API: a complete systematic Reed-Solomon codec whose
/// encode and decode both execute as autotuned GEMMs.
///
/// Layout contract (paper §5): the codec works on *contiguous* unit
/// buffers — k units back to back for encode, n units back to back for a
/// stripe being decoded. Two Jerasure-style pointer APIs exist alongside:
/// encode_ptrs stages scattered units into an internal contiguous buffer
/// first — exactly the memcpy overhead the paper quantifies (up to 84%) —
/// while encode_scattered hands the pointers to the scattered GEMM kernel,
/// which folds the gather into its panel packing and touches no staging
/// buffer at all (the zero-copy path; encode_ptrs is kept as the measured
/// baseline). Decode reads survivors and writes recovered units in place
/// in the stripe the same way.
/// Not thread-safe: decode caches per-erasure-pattern coders.
namespace tvmec::core {

class Codec {
 public:
  /// Builds the generator and the GEMM encoder.
  /// Throws std::invalid_argument on invalid parameters.
  explicit Codec(const ec::CodeParams& params,
                 ec::RsFamily family = ec::RsFamily::CauchyGood);

  const ec::CodeParams& params() const noexcept { return params_; }
  const ec::ReedSolomon& code() const noexcept { return rs_; }
  const GemmCoder& encoder() const noexcept { return encode_coder_; }

  /// Encodes k contiguous data units into r contiguous parity units.
  /// unit_size must be a positive multiple of 8*w bytes.
  void encode(std::span<const std::uint8_t> data,
              std::span<std::uint8_t> parity, std::size_t unit_size) const;

  /// Batched encode (the serving-layer entry point): each item is an
  /// independent (data, parity, unit_size) request; the whole batch runs
  /// as one wide-N GEMM (GemmCoder::apply_batch). `max_threads` > 0 caps
  /// the schedule's thread knob for this batch so concurrent batches can
  /// share the pool. Thread-safe: encode state is immutable.
  /// `cancel`, when valid, is polled at tile-chunk granularity inside
  /// the kernel; an observed flag throws tensor::Cancelled and leaves
  /// the batch's parity outputs indeterminate.
  void encode_batch(std::span<const ec::CoderBatchItem> items,
                    int max_threads = 0,
                    const tensor::CancelToken& cancel = {}) const;

  /// Jerasure-shaped convenience API: units live behind k + r separate
  /// pointers. Data is first gathered into an internal contiguous staging
  /// area (the §5 integration cost), encoded, and parities scattered out.
  void encode_ptrs(const std::vector<const std::uint8_t*>& data,
                   const std::vector<std::uint8_t*>& parity,
                   std::size_t unit_size);

  /// Zero-copy counterpart of encode_ptrs: the scattered GEMM kernel
  /// consumes the units in place, so no staging buffer exists between the
  /// caller's memory and the microkernels. Pointers that do not satisfy
  /// the word fast path (8-byte alignment, whole-word packets) fall back
  /// to a staged copy per unit (visible in tensor::kernel_stage_stats).
  /// Thread-safe: encode state is immutable.
  void encode_scattered(const std::vector<const std::uint8_t*>& data,
                        const std::vector<std::uint8_t*>& parity,
                        std::size_t unit_size) const;

  /// Recovers the erased units of a full stripe (n contiguous units) in
  /// place. Erased ids may name data and/or parity units; at most r.
  /// Throws std::invalid_argument on bad ids, std::runtime_error if the
  /// pattern is unrecoverable (more than r erasures).
  void decode(std::span<std::uint8_t> stripe,
              std::span<const std::size_t> erased_ids, std::size_t unit_size);

  /// One request of a batched decode: a full stripe repaired in place.
  struct DecodeBatchItem {
    std::span<std::uint8_t> stripe;
    std::span<const std::size_t> erased_ids;
    std::size_t unit_size = 0;
  };

  /// Batched decode: items are grouped by (normalized) erasure pattern,
  /// and each group's recoveries execute as a single batched GEMM over
  /// the shared recovery matrix. decode() is the single-item special
  /// case. Error contract per item matches decode(); a throwing item
  /// aborts the batch (callers wanting isolation run items singly).
  /// Not thread-safe (shares the decode-plan cache).
  /// Cancellation (tensor::Cancelled) may abort between or inside
  /// pattern groups: completed groups' stripes are repaired, the
  /// aborted group's stripes are left with their holes.
  void decode_batch(std::span<const DecodeBatchItem> items,
                    int max_threads = 0,
                    const tensor::CancelToken& cancel = {});

  /// Small-write optimization: replaces data unit `unit_id` and patches
  /// every parity in place using the code's linearity,
  ///   P'_i = P_i xor C[i][unit] (x) (old xor new),
  /// reading only the changed unit and the r parities instead of all k
  /// data units. The delta itself runs through the GEMM path (an r*w x w
  /// bitmatrix against the delta unit). Throws std::invalid_argument on
  /// a parity unit_id or size mismatch.
  void update_unit(std::span<std::uint8_t> stripe, std::size_t unit_id,
                   std::span<const std::uint8_t> new_data,
                   std::size_t unit_size);

  /// The I/O-minimal form of update_unit for block-layer callers (RAID
  /// small writes): given only the old and new contents of data unit
  /// `unit_id` and the r parity units, patches the parities in place.
  /// The caller is responsible for storing new_data itself.
  void patch_parity(std::size_t unit_id, std::span<const std::uint8_t> old_data,
                    std::span<const std::uint8_t> new_data,
                    std::span<std::uint8_t> parity, std::size_t unit_size);

  /// Log-backed tuning (TVM's tuning-records workflow): if `log_path`
  /// already holds records for this task shape, installs the best logged
  /// schedule and returns the logged history without measuring anything;
  /// otherwise runs `tune` and appends the results to the log.
  tune::TuneResult tune_cached(std::size_t unit_size,
                               const tune::TuneOptions& options,
                               int max_threads, const std::string& log_path);

  /// Autotunes the encode schedule (see GemmCoder::tune).
  tune::TuneResult tune(std::size_t unit_size,
                        const tune::TuneOptions& options, int max_threads);

  /// Installs a schedule directly (e.g. a single-thread schedule for
  /// CPU-utilization experiments).
  void set_schedule(const tensor::Schedule& schedule) {
    encode_coder_.set_schedule(schedule);
  }

  /// Routes scattered operands below `bytes` to the staged accumulator
  /// path (the E21 crossover; default GemmCoder::kScatteredStageMaxBytes,
  /// 0 forces zero-copy for every qualified item). Applies to
  /// encode_scattered and to decode_batch's per-pattern coders.
  void set_scattered_staging_threshold(std::size_t bytes) {
    encode_coder_.set_scattered_staging_threshold(bytes);
    for (auto& [pattern, entry] : decode_cache_)
      entry.coder->set_scattered_staging_threshold(bytes);
  }
  std::size_t scattered_staging_threshold() const noexcept {
    return encode_coder_.scattered_staging_threshold();
  }

  /// Number of distinct erasure patterns with cached decode coders.
  std::size_t decode_cache_size() const noexcept {
    return decode_cache_.size();
  }

  /// When enabled, decode planning searches survivor subsets for the
  /// sparsest recovery matrix (make_decode_plan_optimized) instead of
  /// taking the first k survivors. Plans are cached, so the search cost
  /// is paid once per erasure pattern. Clears existing cached plans.
  void set_plan_optimization(bool enabled) {
    if (optimize_plans_ != enabled) decode_cache_.clear();
    optimize_plans_ = enabled;
  }
  bool plan_optimization() const noexcept { return optimize_plans_; }

  /// Installs a shared decode-plan cache: decode planning consults it
  /// before inverting, so repeated loss patterns — across this codec,
  /// other codecs of the same code, the serve workers, and the scrubber's
  /// repair path — skip matrix inversion entirely. Per-pattern GemmCoders
  /// stay local (they carry this codec's schedule); only the expensive
  /// plan is shared. Null detaches. Clears locally cached entries so the
  /// shared cache sees subsequent patterns.
  void set_plan_cache(std::shared_ptr<PlanCache> cache) {
    plan_cache_ = std::move(cache);
    decode_cache_.clear();
  }
  const std::shared_ptr<PlanCache>& plan_cache() const noexcept {
    return plan_cache_;
  }

 private:
  struct DecodeEntry {
    std::shared_ptr<const ec::DecodePlan> plan;
    std::unique_ptr<GemmCoder> coder;
  };

  const DecodeEntry& decode_entry(const std::vector<std::size_t>& erased);

  /// Decode coders are cached per (loss pattern, kernel-variant knob of
  /// the current schedule): a schedule switch between variant tiers —
  /// e.g. a differential test pinning scalar, then avx2 — must rebuild
  /// the per-pattern coders rather than reuse ones carrying the old
  /// tier. Auto-variant schedules share one entry (they re-resolve at
  /// every kernel call, so a force toggle reaches them without a
  /// rebuild).
  using DecodeCacheKey =
      std::pair<std::vector<std::size_t>, tensor::KernelVariant>;

  /// Sorted, deduplicated, range-checked loss pattern (the canonical
  /// decode-cache key). Throws invalid_argument on out-of-range ids,
  /// runtime_error when > r distinct erasures.
  std::vector<std::size_t> normalize_erasures(
      std::span<const std::size_t> erased_ids) const;

  ec::CodeParams params_;
  ec::ReedSolomon rs_;
  GemmCoder encode_coder_;
  std::map<DecodeCacheKey, DecodeEntry> decode_cache_;
  std::shared_ptr<PlanCache> plan_cache_;
  bool optimize_plans_ = false;
  /// Per-data-unit r x 1 delta coders for update_unit (lazy).
  std::vector<std::unique_ptr<GemmCoder>> delta_coders_;
  tensor::AlignedBuffer<std::uint8_t> staging_;
};

}  // namespace tvmec::core
