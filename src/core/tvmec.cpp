#include "core/tvmec.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tune/tuning_log.h"

namespace tvmec::core {

namespace {

/// dst[i] = a[i] ^ b[i] for n bytes, word-wide where possible. memcpy
/// loads/stores keep it alignment-safe (dst may alias a or b exactly).
void xor_bytes(std::uint8_t* dst, const std::uint8_t* a,
               const std::uint8_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t x, y;
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    x ^= y;
    std::memcpy(dst + i, &x, 8);
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
}

}  // namespace

Codec::Codec(const ec::CodeParams& params, ec::RsFamily family)
    : params_(params),
      rs_(params, family),
      encode_coder_(rs_.parity_matrix()) {}

void Codec::encode(std::span<const std::uint8_t> data,
                   std::span<std::uint8_t> parity,
                   std::size_t unit_size) const {
  encode_coder_.apply(data, parity, unit_size);
}

void Codec::encode_ptrs(const std::vector<const std::uint8_t*>& data,
                        const std::vector<std::uint8_t*>& parity,
                        std::size_t unit_size) {
  if (data.size() != params_.k || parity.size() != params_.r)
    throw std::invalid_argument("encode_ptrs: wrong number of unit pointers");
  const std::size_t needed = (params_.k + params_.r) * unit_size;
  if (staging_.size() < needed)
    staging_ = tensor::AlignedBuffer<std::uint8_t>(needed);

  // Gather scattered units into the contiguous layout the GEMM expects —
  // the memcpy overhead the paper's §5 measures.
  std::uint8_t* const data_stage = staging_.data();
  std::uint8_t* const parity_stage = staging_.data() + params_.k * unit_size;
  for (std::size_t i = 0; i < params_.k; ++i) {
    if (data[i] == nullptr)
      throw std::invalid_argument("encode_ptrs: null data pointer");
    std::memcpy(data_stage + i * unit_size, data[i], unit_size);
  }
  encode(std::span<const std::uint8_t>(data_stage, params_.k * unit_size),
         std::span<std::uint8_t>(parity_stage, params_.r * unit_size),
         unit_size);
  for (std::size_t i = 0; i < params_.r; ++i) {
    if (parity[i] == nullptr)
      throw std::invalid_argument("encode_ptrs: null parity pointer");
    std::memcpy(parity[i], parity_stage + i * unit_size, unit_size);
  }
}

const Codec::DecodeEntry& Codec::decode_entry(
    const std::vector<std::size_t>& erased) {
  const auto it = decode_cache_.find(erased);
  if (it != decode_cache_.end()) return it->second;

  auto plan = optimize_plans_
                  ? ec::make_decode_plan_optimized(rs_.generator(), erased)
                  : ec::make_decode_plan(rs_.generator(), erased);
  if (!plan)
    throw std::runtime_error("decode: erasure pattern is unrecoverable");
  auto coder = std::make_unique<GemmCoder>(plan->recovery,
                                           encode_coder_.schedule());
  const auto [pos, inserted] = decode_cache_.emplace(
      erased, DecodeEntry{std::move(*plan), std::move(coder)});
  return pos->second;
}

std::vector<std::size_t> Codec::normalize_erasures(
    std::span<const std::size_t> erased_ids) const {
  const std::size_t n = params_.n();
  // Callers pass loss sets in whatever order (and with whatever
  // duplication) their failure detector produced; normalize here so the
  // plan cache keys stay canonical and duplicates cannot reach
  // make_decode_plan. {3,1} and {2,2} are both legitimate inputs.
  std::vector<std::size_t> erased(erased_ids.begin(), erased_ids.end());
  std::sort(erased.begin(), erased.end());
  erased.erase(std::unique(erased.begin(), erased.end()), erased.end());
  for (const std::size_t id : erased)
    if (id >= n)
      throw std::invalid_argument("decode: erased id " + std::to_string(id) +
                                  " out of range (n=" + std::to_string(n) +
                                  ")");
  if (erased.size() > params_.r)
    throw std::runtime_error("decode: " + std::to_string(erased.size()) +
                             " distinct erasures exceed r=" +
                             std::to_string(params_.r) + " parities");
  return erased;
}

void Codec::decode(std::span<std::uint8_t> stripe,
                   std::span<const std::size_t> erased_ids,
                   std::size_t unit_size) {
  const DecodeBatchItem item{stripe, erased_ids, unit_size};
  decode_batch(std::span<const DecodeBatchItem>(&item, 1));
}

void Codec::encode_batch(std::span<const ec::CoderBatchItem> items,
                         int max_threads,
                         const tensor::CancelToken& cancel) const {
  encode_coder_.apply_batch(items, max_threads, cancel);
}

void Codec::decode_batch(std::span<const DecodeBatchItem> items,
                         int max_threads, const tensor::CancelToken& cancel) {
  const std::size_t n = params_.n();
  // Group item indices by canonical erasure pattern: every member of a
  // group shares the recovery matrix, so the group's recoveries run as
  // one batched GEMM (enlarged N) instead of one call per stripe.
  std::map<std::vector<std::size_t>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const DecodeBatchItem& item = items[i];
    if (item.stripe.size() != n * item.unit_size)
      throw std::invalid_argument("decode: stripe must hold k+r units");
    if (item.erased_ids.empty()) continue;
    std::vector<std::size_t> erased = normalize_erasures(item.erased_ids);
    groups[std::move(erased)].push_back(i);
  }

  for (const auto& [erased, members] : groups) {
    cancel.throw_if_cancelled();
    const DecodeEntry& entry = decode_entry(erased);
    const std::size_t k = entry.plan.survivors.size();
    const std::size_t e = entry.plan.erased.size();

    // Gather every member's survivor units into contiguous staging (one
    // slot per stripe), run the whole group as one batched recovery
    // GEMM, then scatter the recovered units back into the stripes.
    std::size_t needed = 0;
    for (const std::size_t i : members)
      needed += (k + e) * items[i].unit_size;
    if (staging_.size() < needed)
      staging_ = tensor::AlignedBuffer<std::uint8_t>(needed);

    std::vector<ec::CoderBatchItem> batch;
    batch.reserve(members.size());
    std::size_t offset = 0;
    for (const std::size_t i : members) {
      const DecodeBatchItem& item = items[i];
      const std::size_t unit = item.unit_size;
      std::uint8_t* const in_stage = staging_.data() + offset;
      std::uint8_t* const out_stage = in_stage + k * unit;
      for (std::size_t s = 0; s < k; ++s)
        std::memcpy(in_stage + s * unit,
                    item.stripe.data() + entry.plan.survivors[s] * unit, unit);
      batch.push_back(ec::CoderBatchItem{
          std::span<const std::uint8_t>(in_stage, k * unit),
          std::span<std::uint8_t>(out_stage, e * unit), unit});
      offset += (k + e) * unit;
    }
    entry.coder->apply_batch(batch, max_threads, cancel);
    for (std::size_t b = 0; b < members.size(); ++b) {
      const DecodeBatchItem& item = items[members[b]];
      for (std::size_t s = 0; s < e; ++s)
        std::memcpy(item.stripe.data() + entry.plan.erased[s] * item.unit_size,
                    batch[b].out.data() + s * item.unit_size, item.unit_size);
    }
  }
}

void Codec::patch_parity(std::size_t unit_id,
                         std::span<const std::uint8_t> old_data,
                         std::span<const std::uint8_t> new_data,
                         std::span<std::uint8_t> parity,
                         std::size_t unit_size) {
  if (unit_id >= params_.k)
    throw std::invalid_argument("patch_parity: only data units have deltas");
  if (old_data.size() != unit_size || new_data.size() != unit_size)
    throw std::invalid_argument("patch_parity: old/new must be one unit");
  if (parity.size() != params_.r * unit_size)
    throw std::invalid_argument("patch_parity: parity must hold r units");

  if (delta_coders_.empty()) delta_coders_.resize(params_.k);
  auto& coder = delta_coders_[unit_id];
  if (!coder) {
    // The parity column of this unit: P_i picks up C[i][unit] * delta.
    gf::Matrix column(rs_.field(), params_.r, 1);
    for (std::size_t i = 0; i < params_.r; ++i)
      column.set(i, 0, rs_.generator().at(params_.k + i, unit_id));
    coder = std::make_unique<GemmCoder>(column, encode_coder_.schedule());
  }

  const std::size_t needed = (1 + params_.r) * unit_size;
  if (staging_.size() < needed)
    staging_ = tensor::AlignedBuffer<std::uint8_t>(needed);
  std::uint8_t* const delta = staging_.data();
  std::uint8_t* const parity_delta = staging_.data() + unit_size;

  // Word-wide XOR via memcpy loads/stores: alignment-safe for arbitrary
  // user spans (compilers lower this to plain vector loads), with a byte
  // tail for unit sizes that are not word multiples.
  xor_bytes(delta, old_data.data(), new_data.data(), unit_size);
  coder->apply(std::span<const std::uint8_t>(delta, unit_size),
               std::span<std::uint8_t>(parity_delta, params_.r * unit_size),
               unit_size);
  xor_bytes(parity.data(), parity.data(), parity_delta,
            params_.r * unit_size);
}

void Codec::update_unit(std::span<std::uint8_t> stripe, std::size_t unit_id,
                        std::span<const std::uint8_t> new_data,
                        std::size_t unit_size) {
  if (stripe.size() != params_.n() * unit_size)
    throw std::invalid_argument("update_unit: stripe must hold k+r units");
  if (unit_id >= params_.k)
    throw std::invalid_argument("update_unit: only data units can be updated");
  if (new_data.size() != unit_size)
    throw std::invalid_argument("update_unit: new data must be one unit");

  std::uint8_t* const old_unit = stripe.data() + unit_id * unit_size;
  patch_parity(unit_id,
               std::span<const std::uint8_t>(old_unit, unit_size), new_data,
               stripe.subspan(params_.k * unit_size, params_.r * unit_size),
               unit_size);
  std::memcpy(old_unit, new_data.data(), unit_size);
}

tune::TuneResult Codec::tune(std::size_t unit_size,
                             const tune::TuneOptions& options,
                             int max_threads) {
  tune::TuneResult result =
      encode_coder_.tune(unit_size, options, max_threads);
  // Coders built later inherit the tuned schedule; drop stale ones.
  decode_cache_.clear();
  delta_coders_.clear();
  return result;
}

tune::TuneResult Codec::tune_cached(std::size_t unit_size,
                                    const tune::TuneOptions& options,
                                    int max_threads,
                                    const std::string& log_path) {
  const tune::TaskShape shape = encode_coder_.task_shape(unit_size);
  if (auto logged = tune::load_log(log_path, shape)) {
    encode_coder_.set_schedule(logged->best_schedule);
    decode_cache_.clear();
    delta_coders_.clear();
    return std::move(*logged);
  }
  tune::TuneResult result = tune(unit_size, options, max_threads);
  tune::append_log(log_path, shape, result);
  return result;
}

}  // namespace tvmec::core
