#include "core/tvmec.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tensor/kernel.h"
#include "tune/tuning_log.h"

namespace tvmec::core {

namespace {

/// dst[i] = a[i] ^ b[i] for n bytes, word-wide where possible. memcpy
/// loads/stores keep it alignment-safe (dst may alias a or b exactly).
void xor_bytes(std::uint8_t* dst, const std::uint8_t* a,
               const std::uint8_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t x, y;
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    x ^= y;
    std::memcpy(dst + i, &x, 8);
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
}

}  // namespace

Codec::Codec(const ec::CodeParams& params, ec::RsFamily family)
    : params_(params),
      rs_(params, family),
      encode_coder_(rs_.parity_matrix()) {}

void Codec::encode(std::span<const std::uint8_t> data,
                   std::span<std::uint8_t> parity,
                   std::size_t unit_size) const {
  encode_coder_.apply(data, parity, unit_size);
}

void Codec::encode_ptrs(const std::vector<const std::uint8_t*>& data,
                        const std::vector<std::uint8_t*>& parity,
                        std::size_t unit_size) {
  if (data.size() != params_.k || parity.size() != params_.r)
    throw std::invalid_argument("encode_ptrs: wrong number of unit pointers");
  const std::size_t needed = (params_.k + params_.r) * unit_size;
  if (staging_.size() < needed)
    staging_ = tensor::AlignedBuffer<std::uint8_t>(needed);

  // Gather scattered units into the contiguous layout the GEMM expects —
  // the memcpy overhead the paper's §5 measures.
  std::uint8_t* const data_stage = staging_.data();
  std::uint8_t* const parity_stage = staging_.data() + params_.k * unit_size;
  for (std::size_t i = 0; i < params_.k; ++i) {
    if (data[i] == nullptr)
      throw std::invalid_argument("encode_ptrs: null data pointer");
    std::memcpy(data_stage + i * unit_size, data[i], unit_size);
    tensor::note_staging_copy(unit_size);
  }
  encode(std::span<const std::uint8_t>(data_stage, params_.k * unit_size),
         std::span<std::uint8_t>(parity_stage, params_.r * unit_size),
         unit_size);
  for (std::size_t i = 0; i < params_.r; ++i) {
    if (parity[i] == nullptr)
      throw std::invalid_argument("encode_ptrs: null parity pointer");
    std::memcpy(parity[i], parity_stage + i * unit_size, unit_size);
    tensor::note_staging_copy(unit_size);
  }
}

const Codec::DecodeEntry& Codec::decode_entry(
    const std::vector<std::size_t>& erased) {
  const tensor::KernelVariant variant = encode_coder_.schedule().variant;
  const DecodeCacheKey cache_key{erased, variant};
  const auto it = decode_cache_.find(cache_key);
  if (it != decode_cache_.end()) return it->second;

  const auto build = [&]() -> std::optional<ec::DecodePlan> {
    return optimize_plans_
               ? ec::make_decode_plan_optimized(rs_.generator(), erased)
               : ec::make_decode_plan(rs_.generator(), erased);
  };

  std::shared_ptr<const ec::DecodePlan> plan;
  if (plan_cache_) {
    // The shared cache holds the inversion result; on a hit the costly
    // planning is skipped entirely and only this codec's GemmCoder (which
    // carries its schedule) is built locally.
    plan = plan_cache_->get_or_build(
        PlanKey{params_.k, params_.r, params_.w, rs_.family(),
                optimize_plans_, erased, /*locality=*/0, variant},
        build);
  } else if (auto built = build()) {
    plan = std::make_shared<const ec::DecodePlan>(std::move(*built));
  }
  if (!plan)
    throw std::runtime_error("decode: erasure pattern is unrecoverable");
  auto coder =
      std::make_unique<GemmCoder>(plan->recovery, encode_coder_.schedule());
  coder->set_scattered_staging_threshold(
      encode_coder_.scattered_staging_threshold());
  const auto [pos, inserted] = decode_cache_.emplace(
      cache_key, DecodeEntry{std::move(plan), std::move(coder)});
  return pos->second;
}

std::vector<std::size_t> Codec::normalize_erasures(
    std::span<const std::size_t> erased_ids) const {
  const std::size_t n = params_.n();
  // Callers pass loss sets in whatever order (and with whatever
  // duplication) their failure detector produced; normalize here so the
  // plan cache keys stay canonical and duplicates cannot reach
  // make_decode_plan. {3,1} and {2,2} are both legitimate inputs.
  std::vector<std::size_t> erased(erased_ids.begin(), erased_ids.end());
  std::sort(erased.begin(), erased.end());
  erased.erase(std::unique(erased.begin(), erased.end()), erased.end());
  for (const std::size_t id : erased)
    if (id >= n)
      throw std::invalid_argument("decode: erased id " + std::to_string(id) +
                                  " out of range (n=" + std::to_string(n) +
                                  ")");
  if (erased.size() > params_.r)
    throw std::runtime_error("decode: " + std::to_string(erased.size()) +
                             " distinct erasures exceed r=" +
                             std::to_string(params_.r) + " parities");
  return erased;
}

void Codec::decode(std::span<std::uint8_t> stripe,
                   std::span<const std::size_t> erased_ids,
                   std::size_t unit_size) {
  const DecodeBatchItem item{stripe, erased_ids, unit_size};
  decode_batch(std::span<const DecodeBatchItem>(&item, 1));
}

void Codec::encode_batch(std::span<const ec::CoderBatchItem> items,
                         int max_threads,
                         const tensor::CancelToken& cancel) const {
  encode_coder_.apply_batch(items, max_threads, cancel);
}

void Codec::decode_batch(std::span<const DecodeBatchItem> items,
                         int max_threads, const tensor::CancelToken& cancel) {
  const std::size_t n = params_.n();
  // Group item indices by canonical erasure pattern: every member of a
  // group shares the recovery matrix, so the group's recoveries run as
  // one batched GEMM (enlarged N) instead of one call per stripe.
  std::map<std::vector<std::size_t>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const DecodeBatchItem& item = items[i];
    if (item.stripe.size() != n * item.unit_size)
      throw std::invalid_argument("decode: stripe must hold k+r units");
    if (item.erased_ids.empty()) continue;
    std::vector<std::size_t> erased = normalize_erasures(item.erased_ids);
    groups[std::move(erased)].push_back(i);
  }

  for (const auto& [erased, members] : groups) {
    cancel.throw_if_cancelled();
    const DecodeEntry& entry = decode_entry(erased);
    const std::size_t k = entry.plan->survivors.size();
    const std::size_t e = entry.plan->erased.size();

    // Zero-copy group recovery: each member's survivor units are read in
    // place inside its stripe and the recovered units are written
    // directly into the erased positions — the scattered kernel's panel
    // packing replaces the survivor-gather staging this loop used to do.
    // Survivor and erased unit ranges are disjoint, so in-place repair
    // cannot alias reads with writes.
    std::vector<const std::uint8_t*> in_ptrs(members.size() * k);
    std::vector<std::uint8_t*> out_ptrs(members.size() * e);
    std::vector<ScatteredCoderItem> batch;
    batch.reserve(members.size());
    for (std::size_t b = 0; b < members.size(); ++b) {
      const DecodeBatchItem& item = items[members[b]];
      const std::size_t unit = item.unit_size;
      for (std::size_t s = 0; s < k; ++s)
        in_ptrs[b * k + s] =
            item.stripe.data() + entry.plan->survivors[s] * unit;
      for (std::size_t s = 0; s < e; ++s)
        out_ptrs[b * e + s] =
            item.stripe.data() + entry.plan->erased[s] * unit;
      batch.push_back(ScatteredCoderItem{
          std::span<const std::uint8_t* const>(in_ptrs.data() + b * k, k),
          std::span<std::uint8_t* const>(out_ptrs.data() + b * e, e), unit});
    }
    entry.coder->apply_scattered(batch, max_threads, cancel);
  }
}

void Codec::encode_scattered(const std::vector<const std::uint8_t*>& data,
                             const std::vector<std::uint8_t*>& parity,
                             std::size_t unit_size) const {
  if (data.size() != params_.k || parity.size() != params_.r)
    throw std::invalid_argument(
        "encode_scattered: wrong number of unit pointers");
  const ScatteredCoderItem item{
      std::span<const std::uint8_t* const>(data.data(), data.size()),
      std::span<std::uint8_t* const>(parity.data(), parity.size()),
      unit_size};
  encode_coder_.apply_scattered(std::span<const ScatteredCoderItem>(&item, 1));
}

void Codec::patch_parity(std::size_t unit_id,
                         std::span<const std::uint8_t> old_data,
                         std::span<const std::uint8_t> new_data,
                         std::span<std::uint8_t> parity,
                         std::size_t unit_size) {
  if (unit_id >= params_.k)
    throw std::invalid_argument("patch_parity: only data units have deltas");
  if (old_data.size() != unit_size || new_data.size() != unit_size)
    throw std::invalid_argument("patch_parity: old/new must be one unit");
  if (parity.size() != params_.r * unit_size)
    throw std::invalid_argument("patch_parity: parity must hold r units");

  if (delta_coders_.empty()) delta_coders_.resize(params_.k);
  auto& coder = delta_coders_[unit_id];
  if (!coder) {
    // The parity column of this unit: P_i picks up C[i][unit] * delta.
    gf::Matrix column(rs_.field(), params_.r, 1);
    for (std::size_t i = 0; i < params_.r; ++i)
      column.set(i, 0, rs_.generator().at(params_.k + i, unit_id));
    coder = std::make_unique<GemmCoder>(column, encode_coder_.schedule());
  }

  const std::size_t needed = (1 + params_.r) * unit_size;
  if (staging_.size() < needed)
    staging_ = tensor::AlignedBuffer<std::uint8_t>(needed);
  std::uint8_t* const delta = staging_.data();
  std::uint8_t* const parity_delta = staging_.data() + unit_size;

  // Word-wide XOR via memcpy loads/stores: alignment-safe for arbitrary
  // user spans (compilers lower this to plain vector loads), with a byte
  // tail for unit sizes that are not word multiples.
  xor_bytes(delta, old_data.data(), new_data.data(), unit_size);
  coder->apply(std::span<const std::uint8_t>(delta, unit_size),
               std::span<std::uint8_t>(parity_delta, params_.r * unit_size),
               unit_size);
  xor_bytes(parity.data(), parity.data(), parity_delta,
            params_.r * unit_size);
}

void Codec::update_unit(std::span<std::uint8_t> stripe, std::size_t unit_id,
                        std::span<const std::uint8_t> new_data,
                        std::size_t unit_size) {
  if (stripe.size() != params_.n() * unit_size)
    throw std::invalid_argument("update_unit: stripe must hold k+r units");
  if (unit_id >= params_.k)
    throw std::invalid_argument("update_unit: only data units can be updated");
  if (new_data.size() != unit_size)
    throw std::invalid_argument("update_unit: new data must be one unit");

  std::uint8_t* const old_unit = stripe.data() + unit_id * unit_size;
  patch_parity(unit_id,
               std::span<const std::uint8_t>(old_unit, unit_size), new_data,
               stripe.subspan(params_.k * unit_size, params_.r * unit_size),
               unit_size);
  std::memcpy(old_unit, new_data.data(), unit_size);
}

tune::TuneResult Codec::tune(std::size_t unit_size,
                             const tune::TuneOptions& options,
                             int max_threads) {
  tune::TuneResult result =
      encode_coder_.tune(unit_size, options, max_threads);
  // Coders built later inherit the tuned schedule; drop stale ones.
  decode_cache_.clear();
  delta_coders_.clear();
  return result;
}

tune::TuneResult Codec::tune_cached(std::size_t unit_size,
                                    const tune::TuneOptions& options,
                                    int max_threads,
                                    const std::string& log_path) {
  const tune::TaskShape shape = encode_coder_.task_shape(unit_size);
  if (auto logged = tune::load_log(log_path, shape)) {
    encode_coder_.set_schedule(logged->best_schedule);
    decode_cache_.clear();
    delta_coders_.clear();
    return std::move(*logged);
  }
  tune::TuneResult result = tune(unit_size, options, max_threads);
  tune::append_log(log_path, shape, result);
  return result;
}

}  // namespace tvmec::core
