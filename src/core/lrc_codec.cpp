#include "core/lrc_codec.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace tvmec::core {

LrcCodec::LrcCodec(const ec::LrcParams& params)
    : params_(params), lrc_(params), encode_coder_(lrc_.parity_matrix()) {}

void LrcCodec::encode(std::span<const std::uint8_t> data,
                      std::span<std::uint8_t> parity,
                      std::size_t unit_size) const {
  encode_coder_.apply(data, parity, unit_size);
}

void LrcCodec::set_schedule(const tensor::Schedule& schedule) {
  encode_coder_.set_schedule(schedule);
  decode_cache_.clear();
  local_cache_.clear();
}

void LrcCodec::run_plan(const PlanEntry& entry, std::span<std::uint8_t> stripe,
                        std::size_t unit_size) {
  // Zero-copy plan execution: survivors are read in place and recovered
  // units written straight into their stripe slots through the scattered
  // kernel — no staging buffer. Survivor and erased unit ranges are
  // disjoint, so the in-place repair cannot alias. Misaligned stripes
  // fall back to apply_scattered's internal staging.
  const std::size_t reads = entry.plan.survivors.size();
  const std::size_t writes = entry.plan.erased.size();
  std::vector<const std::uint8_t*> in_ptrs(reads);
  std::vector<std::uint8_t*> out_ptrs(writes);
  for (std::size_t i = 0; i < reads; ++i)
    in_ptrs[i] = stripe.data() + entry.plan.survivors[i] * unit_size;
  for (std::size_t i = 0; i < writes; ++i)
    out_ptrs[i] = stripe.data() + entry.plan.erased[i] * unit_size;
  const ScatteredCoderItem item{
      std::span<const std::uint8_t* const>(in_ptrs.data(), reads),
      std::span<std::uint8_t* const>(out_ptrs.data(), writes), unit_size};
  entry.coder->apply_scattered(std::span<const ScatteredCoderItem>(&item, 1));
}

void LrcCodec::decode(std::span<std::uint8_t> stripe,
                      std::span<const std::size_t> erased_ids,
                      std::size_t unit_size) {
  if (stripe.size() != params_.n() * unit_size)
    throw std::invalid_argument("LrcCodec::decode: stripe must hold n units");
  if (erased_ids.empty()) return;

  // Normalize the loss set (sort + dedup) so unsorted or duplicated ids
  // from a failure detector hit the same cached plan and never reach
  // make_decode_plan's duplicate check.
  std::vector<std::size_t> erased(erased_ids.begin(), erased_ids.end());
  std::sort(erased.begin(), erased.end());
  erased.erase(std::unique(erased.begin(), erased.end()), erased.end());
  for (const std::size_t id : erased)
    if (id >= params_.n())
      throw std::invalid_argument("LrcCodec::decode: erased id " +
                                  std::to_string(id) + " out of range (n=" +
                                  std::to_string(params_.n()) + ")");
  auto it = decode_cache_.find(erased);
  if (it == decode_cache_.end()) {
    auto plan = lrc_.decode_plan(erased);
    if (!plan)
      throw std::runtime_error(
          "LrcCodec::decode: erasure pattern is unrecoverable");
    auto coder = std::make_unique<GemmCoder>(plan->recovery,
                                             encode_coder_.schedule());
    it = decode_cache_
             .emplace(erased, PlanEntry{std::move(*plan), std::move(coder)})
             .first;
  }
  run_plan(it->second, stripe, unit_size);
}

std::size_t LrcCodec::repair_local(std::span<std::uint8_t> stripe,
                                   std::size_t failed_unit,
                                   std::size_t unit_size) {
  if (stripe.size() != params_.n() * unit_size)
    throw std::invalid_argument(
        "LrcCodec::repair_local: stripe must hold n units");
  if (failed_unit >= params_.n())
    throw std::invalid_argument("LrcCodec::repair_local: unit out of range");

  if (local_cache_.empty()) local_cache_.resize(params_.k + params_.l);
  if (failed_unit >= params_.k + params_.l)
    throw std::invalid_argument(
        "LrcCodec::repair_local: global parities have no local group");
  auto& entry = local_cache_[failed_unit];
  if (!entry) {
    auto plan = lrc_.local_repair_plan(failed_unit);
    if (!plan)
      throw std::logic_error("LrcCodec::repair_local: missing local plan");
    auto coder = std::make_unique<GemmCoder>(plan->recovery,
                                             encode_coder_.schedule());
    entry = std::make_unique<PlanEntry>(
        PlanEntry{std::move(*plan), std::move(coder)});
  }
  run_plan(*entry, stripe, unit_size);
  return entry->plan.survivors.size();
}

}  // namespace tvmec::core
