#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "ec/decoder.h"
#include "ec/reed_solomon.h"
#include "tensor/variant.h"

/// A process-wide decode-plan cache.
///
/// Building a DecodePlan means inverting a survivor submatrix (and, with
/// plan optimization on, searching survivor subsets) — orders of magnitude
/// more work than the GEMM that executes it at serving unit sizes. Loss
/// patterns repeat heavily in practice: a failed disk erases the same unit
/// id in every stripe, so the scrubber, the serve workers, and direct
/// Codec::decode callers keep asking for the same handful of plans. This
/// cache generalizes the per-codec-slot `naive_decode_cache` the serving
/// layer grew: one shared, thread-safe, LRU-bounded map from
/// (code identity, sorted loss pattern) to an immutable plan that every
/// consumer can hold by shared_ptr. Unrecoverable patterns are cached
/// negatively (a null plan), so repeated hopeless repairs don't re-run the
/// rank computation either.
namespace tvmec::core {

/// Cache key: the code's identity plus the canonical (sorted, deduplicated)
/// loss pattern. `optimized` distinguishes sparse-searched plans from
/// greedy ones — the two produce different recovery matrices for the same
/// pattern and must not alias. `locality` distinguishes plans built
/// against a constrained survivor set (the cluster's repair DAGs prefer
/// failure-domain-local helpers, so the same loss pattern can yield
/// different recovery matrices per placement); 0 means "any survivors",
/// the single-process default. `variant` is the kernel-variant knob of
/// the consumer the plan was requested for: the recovery matrix itself
/// is pure field math and identical across variants, but variant-pinned
/// consumers (differential tests and tuning sweeps that rebuild coders
/// per SIMD tier) must not alias each other's entries, so the key keeps
/// them apart. Auto — the default, and what every variant-agnostic call
/// site passes — shares one entry.
struct PlanKey {
  std::size_t k = 0;
  std::size_t r = 0;
  unsigned w = 0;
  ec::RsFamily family = ec::RsFamily::CauchyGood;
  bool optimized = false;
  std::vector<std::size_t> erased;
  std::uint64_t locality = 0;
  tensor::KernelVariant variant = tensor::KernelVariant::Auto;

  friend auto operator<=>(const PlanKey&, const PlanKey&) = default;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class PlanCache {
 public:
  /// `max_entries` bounds the cache; the least recently used entry is
  /// evicted past it. Disk-failure workloads touch O(n) patterns per
  /// incident, so the default is generous without being unbounded.
  explicit PlanCache(std::size_t max_entries = 4096);

  /// Returns nullopt for unrecoverable patterns; the result is cached
  /// either way.
  using Builder = std::function<std::optional<ec::DecodePlan>()>;

  /// Returns the cached plan for `key`, or invokes `build` and caches the
  /// result. A null return means the pattern is unrecoverable (negative
  /// result — also cached). The builder runs under the cache mutex, which
  /// deduplicates concurrent builds of the same pattern: the first caller
  /// inverts, everyone else hits.
  std::shared_ptr<const ec::DecodePlan> get_or_build(const PlanKey& key,
                                                     const Builder& build);

  PlanCacheStats stats() const;
  void clear();

 private:
  struct Entry {
    PlanKey key;
    std::shared_ptr<const ec::DecodePlan> plan;  // null = unrecoverable
  };

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<PlanKey, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace tvmec::core
