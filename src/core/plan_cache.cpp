#include "core/plan_cache.h"

#include <stdexcept>
#include <utility>

namespace tvmec::core {

PlanCache::PlanCache(std::size_t max_entries) : max_entries_(max_entries) {
  if (max_entries_ == 0)
    throw std::invalid_argument("PlanCache: max_entries must be positive");
}

std::shared_ptr<const ec::DecodePlan> PlanCache::get_or_build(
    const PlanKey& key, const Builder& build) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->plan;
  }

  ++misses_;
  std::optional<ec::DecodePlan> built = build();
  std::shared_ptr<const ec::DecodePlan> plan;
  if (built.has_value())
    plan = std::make_shared<const ec::DecodePlan>(std::move(*built));

  lru_.push_front(Entry{key, plan});
  index_.emplace(key, lru_.begin());
  if (index_.size() > max_entries_) {
    ++evictions_;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return plan;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return PlanCacheStats{hits_, misses_, evictions_, index_.size()};
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace tvmec::core
