#include "core/gemm_coder.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include <cstring>

#include "tensor/kernel.h"
#include "tensor/scattered.h"

namespace tvmec::core {

namespace {

tensor::AlignedBuffer<std::uint64_t> build_masks(const gf::Matrix& coeffs) {
  const ec::BitmatrixCode code(coeffs);
  const gf::BitMatrix& bits = code.bits();
  tensor::AlignedBuffer<std::uint64_t> masks(bits.rows() * bits.cols());
  for (std::size_t i = 0; i < bits.rows(); ++i)
    for (std::size_t j = 0; j < bits.cols(); ++j)
      masks[i * bits.cols() + j] =
          bits.get(i, j) ? ~std::uint64_t{0} : std::uint64_t{0};
  return masks;
}

}  // namespace

GemmCoder::GemmCoder(const gf::Matrix& coeffs)
    : GemmCoder(coeffs, tensor::default_schedule()) {}

GemmCoder::GemmCoder(const gf::Matrix& coeffs, const tensor::Schedule& schedule)
    : w_(coeffs.field().w()),
      in_units_(coeffs.cols()),
      out_units_(coeffs.rows()),
      masks_(build_masks(coeffs)),
      schedule_(schedule) {
  if (!schedule_.valid())
    throw std::invalid_argument("GemmCoder: invalid schedule");
}

void GemmCoder::set_schedule(const tensor::Schedule& schedule) {
  if (!schedule.valid())
    throw std::invalid_argument("GemmCoder: invalid schedule");
  schedule_ = schedule;
}

void GemmCoder::do_apply(std::span<const std::uint8_t> in,
                         std::span<std::uint8_t> out,
                         std::size_t unit_size) const {
  // MatrixCoder::apply guarantees aligned operands and a word-multiple
  // packet size before dispatching here.
  const std::size_t packet_words = unit_size / w_ / 8;
  const std::size_t kw = in_units_ * w_;
  const std::size_t rw = out_units_ * w_;
  // The contiguous unit buffer *is* the packed B matrix: packet p of unit
  // u is row u*w + p, and rows are exactly packet_words apart.
  const tensor::MatView<const std::uint64_t> a{masks_.data(), rw, kw, kw};
  const tensor::MatView<const std::uint64_t> b{
      reinterpret_cast<const std::uint64_t*>(in.data()), kw, packet_words,
      packet_words};
  const tensor::MatView<std::uint64_t> c{
      reinterpret_cast<std::uint64_t*>(out.data()), rw, packet_words,
      packet_words};
  tensor::gemm_xorand(a, b, c, schedule_);
}

void GemmCoder::apply_batch(std::span<const ec::CoderBatchItem> items,
                            int max_threads,
                            const tensor::CancelToken& cancel) const {
  const auto word_aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % 8 == 0;
  };
  const std::size_t kw = in_units_ * w_;
  const std::size_t rw = out_units_ * w_;

  std::vector<tensor::XorAndBatch> fast;
  std::vector<const ec::CoderBatchItem*> slow;
  fast.reserve(items.size());
  for (const ec::CoderBatchItem& item : items) {
    validate_apply_args(item.in, item.out, item.unit_size);
    if (item.out.empty()) continue;  // r == 0: nothing to compute
    const std::size_t pb = item.unit_size / w_;
    if (pb % 8 != 0 || !word_aligned(item.in.data()) ||
        !word_aligned(item.out.data())) {
      slow.push_back(&item);  // the staging path of apply() handles it
      continue;
    }
    const std::size_t packet_words = pb / 8;
    fast.push_back(tensor::XorAndBatch{
        {reinterpret_cast<const std::uint64_t*>(item.in.data()), kw,
         packet_words, packet_words},
        {reinterpret_cast<std::uint64_t*>(item.out.data()), rw, packet_words,
         packet_words}});
  }

  if (!fast.empty()) {
    tensor::Schedule s = schedule_;
    if (max_threads > 0) s.num_threads = std::min(s.num_threads, max_threads);
    const tensor::MatView<const std::uint64_t> a{masks_.data(), rw, kw, kw};
    tensor::gemm_xorand_batched(a, fast, s, cancel);
  }
  for (const ec::CoderBatchItem* item : slow) {
    cancel.throw_if_cancelled();
    apply(item->in, item->out, item->unit_size);
  }
}

void GemmCoder::apply_scattered(std::span<const ScatteredCoderItem> items,
                                int max_threads,
                                const tensor::CancelToken& cancel) const {
  const auto word_aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % 8 == 0;
  };
  const std::size_t kw = in_units_ * w_;
  const std::size_t rw = out_units_ * w_;

  std::vector<const ScatteredCoderItem*> fast;
  std::vector<const ScatteredCoderItem*> slow;
  fast.reserve(items.size());
  std::size_t n_total = 0;
  for (const ScatteredCoderItem& item : items) {
    if (item.unit_size == 0 || item.unit_size % w_ != 0)
      throw std::invalid_argument(
          "apply_scattered: unit size must be a positive multiple of w");
    if (item.in.size() != in_units_ || item.out.size() != out_units_)
      throw std::invalid_argument("apply_scattered: wrong unit pointer count");
    for (const std::uint8_t* p : item.in)
      if (p == nullptr)
        throw std::invalid_argument("apply_scattered: null input unit");
    for (std::uint8_t* p : item.out)
      if (p == nullptr)
        throw std::invalid_argument("apply_scattered: null output unit");
    if (out_units_ == 0) continue;  // r == 0: nothing to compute
    const std::size_t pb = item.unit_size / w_;
    // Sub-threshold units take the staged road on purpose (the E21
    // crossover): the fragment walk's per-panel overhead beats one bulk
    // memcpy only once units are big enough to amortize it.
    const bool qualified =
        pb % 8 == 0 && item.unit_size >= scattered_staging_threshold_ &&
        std::all_of(item.in.begin(), item.in.end(), word_aligned) &&
        std::all_of(item.out.begin(), item.out.end(), word_aligned);
    if (qualified) {
      fast.push_back(&item);
      n_total += pb / 8;
    } else {
      slow.push_back(&item);
    }
  }

  if (!fast.empty()) {
    // Every qualified item contributes one fragment per packet row: row
    // u*w + p of the logical wide B matrix is, per item, packet p of unit
    // u in place in the caller's buffer. The scattered kernel gathers
    // these per cache panel — submit → kernel with zero staging copies.
    std::vector<tensor::Fragment<const std::uint64_t>> b_frags;
    std::vector<tensor::Fragment<std::uint64_t>> c_frags;
    b_frags.reserve(kw * fast.size());
    c_frags.reserve(rw * fast.size());
    for (std::size_t row = 0; row < kw; ++row) {
      const std::size_t u = row / w_;
      const std::size_t p = row % w_;
      for (const ScatteredCoderItem* item : fast) {
        const std::size_t pb = item->unit_size / w_;
        b_frags.push_back(
            {reinterpret_cast<const std::uint64_t*>(item->in[u] + p * pb),
             pb / 8});
      }
    }
    for (std::size_t row = 0; row < rw; ++row) {
      const std::size_t u = row / w_;
      const std::size_t p = row % w_;
      for (const ScatteredCoderItem* item : fast) {
        const std::size_t pb = item->unit_size / w_;
        c_frags.push_back(
            {reinterpret_cast<std::uint64_t*>(item->out[u] + p * pb), pb / 8});
      }
    }
    tensor::Schedule s = schedule_;
    if (max_threads > 0) s.num_threads = std::min(s.num_threads, max_threads);
    const tensor::MatView<const std::uint64_t> a{masks_.data(), rw, kw, kw};
    tensor::gemm_xorand_scattered(
        a,
        tensor::ScatteredView<const std::uint64_t>(kw, n_total,
                                                   std::move(b_frags)),
        tensor::ScatteredView<std::uint64_t>(rw, n_total, std::move(c_frags)),
        s, cancel);
  }

  // Degenerate items (misaligned pointers or sub-word packets) take the
  // staging road they always took: gather into contiguous scratch, apply,
  // scatter back — every memcpy visible in kernel_stage_stats.
  for (const ScatteredCoderItem* item : slow) {
    cancel.throw_if_cancelled();
    const std::size_t unit = item->unit_size;
    tensor::AlignedBuffer<std::uint8_t> in_stage(in_units_ * unit);
    tensor::AlignedBuffer<std::uint8_t> out_stage(out_units_ * unit);
    for (std::size_t u = 0; u < in_units_; ++u) {
      std::memcpy(in_stage.data() + u * unit, item->in[u], unit);
      tensor::note_staging_copy(unit);
    }
    apply(in_stage.span(), out_stage.span(), unit);
    for (std::size_t u = 0; u < out_units_; ++u) {
      std::memcpy(item->out[u], out_stage.data() + u * unit, unit);
      tensor::note_staging_copy(unit);
    }
  }
}

tune::TaskShape GemmCoder::task_shape(std::size_t unit_size) const {
  return tune::TaskShape{out_units_ * w_, unit_size / w_ / 8, in_units_ * w_};
}

tune::TuneResult GemmCoder::tune(std::size_t unit_size,
                                 const tune::TuneOptions& options,
                                 int max_threads) {
  const std::size_t quantum = std::size_t{8} * w_;
  if (unit_size == 0 || unit_size % quantum != 0)
    throw std::invalid_argument("tune: unit size must be multiple of 8*w");

  // Synthetic operands; contents do not affect timing (data-oblivious
  // kernel), but use real random bytes anyway.
  tensor::AlignedBuffer<std::uint8_t> data(in_units_ * unit_size);
  tensor::AlignedBuffer<std::uint8_t> parity(out_units_ * unit_size);
  std::mt19937_64 rng(0xEC);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(rng());

  const tune::SearchSpace space(task_shape(unit_size), max_threads);
  const double bytes = static_cast<double>(in_units_ * unit_size);
  tensor::Schedule saved = schedule_;
  const tune::MeasureFn measure = [&](const tensor::Schedule& s) {
    schedule_ = s;
    // One warmup, then median of five timed runs (this box is noisy).
    apply(data.span(), parity.span(), unit_size);
    const double secs = tune::measure_seconds_median(
        [&] { apply(data.span(), parity.span(), unit_size); }, 5);
    return bytes / secs;
  };
  tune::TuneResult result = tune::tune(space, measure, options);
  schedule_ = result.best_throughput > 0 ? result.best_schedule : saved;
  return result;
}

}  // namespace tvmec::core
