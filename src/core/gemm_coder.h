#pragma once

#include "ec/bitmatrix_code.h"
#include "ec/encoder.h"
#include "gf/gf_matrix.h"
#include "tensor/buffer.h"
#include "tensor/schedule.h"
#include "tune/tuner.h"

/// The paper's contribution: erasure coding executed as a GEMM through
/// the ML-library substrate.
///
/// A coefficient matrix over GF(2^w) is expanded to its bitmatrix and
/// stored as broadcast masks (0 / ~0 per 64-bit lane); input units are
/// viewed, without copying, as a packed (k*w) x d/(8w) word matrix; and
/// the whole encode is one gemm_xorand call whose schedule (register
/// tiles, cache blocks, threads) comes from the autotuner — the direct
/// analogue of the paper's 40-line TVM implementation.
namespace tvmec::core {

/// One scattered-operand coding request: every unit lives behind its own
/// pointer (the Jerasure calling convention, and the natural shape of
/// survivors inside a stripe or payloads in unrelated client buffers).
/// `in` holds in_units() unit pointers, `out` holds out_units() unit
/// pointers, each pointing at `unit_size` bytes.
struct ScatteredCoderItem {
  std::span<const std::uint8_t* const> in;
  std::span<std::uint8_t* const> out;
  std::size_t unit_size = 0;
};

class GemmCoder final : public ec::MatrixCoder {
 public:
  /// Scattered items with units smaller than this are routed to the
  /// staged accumulator path even when their pointers qualify for the
  /// zero-copy kernel: E21 measured the per-fragment panel walk costing
  /// more than one bulk memcpy below ~16 KB units. Settable per coder
  /// (0 disables routing — every qualified item goes zero-copy).
  static constexpr std::size_t kScatteredStageMaxBytes = 16 * 1024;

  /// Expands the coefficient matrix; starts with the default schedule.
  explicit GemmCoder(const gf::Matrix& coeffs);
  GemmCoder(const gf::Matrix& coeffs, const tensor::Schedule& schedule);

  std::size_t in_units() const noexcept override { return in_units_; }
  std::size_t out_units() const noexcept override { return out_units_; }
  std::string name() const override { return "tvm-ec"; }

  const tensor::Schedule& schedule() const noexcept { return schedule_; }
  /// Throws std::invalid_argument if the schedule is not supported.
  void set_schedule(const tensor::Schedule& schedule);

  /// Batched multi-request entry: items whose buffers qualify for the
  /// word fast path (8-byte aligned, whole-word packets) are packed into
  /// a single gemm_xorand_batched call with an enlarged N dimension —
  /// the kernel sees one big GEMM instead of many tiny ones — while
  /// degenerate items fall back to the per-item staging path of apply().
  /// `max_threads` > 0 caps the schedule's thread knob for this batch.
  /// `cancel` reaches the fused kernel (tile-chunk polling granularity).
  void apply_batch(std::span<const ec::CoderBatchItem> items,
                   int max_threads = 0,
                   const tensor::CancelToken& cancel = {}) const override;

  /// Zero-copy scattered entry: consumes pointer-per-unit operands
  /// directly. Items whose packets are whole 64-bit words and whose unit
  /// pointers are all 8-byte aligned become fragments of one wide-N
  /// scattered GEMM — the kernel's panel packing performs the gather in
  /// cache, no staging buffer exists at any layer. Degenerate items are
  /// gathered into contiguous scratch and run through apply() (counted by
  /// tensor::kernel_stage_stats). Semantically identical to gathering
  /// every item into contiguous buffers and calling apply_batch.
  /// `max_threads`/`cancel` follow apply_batch's contract.
  void apply_scattered(std::span<const ScatteredCoderItem> items,
                       int max_threads = 0,
                       const tensor::CancelToken& cancel = {}) const;

  /// Autotunes the encode for the given unit size on synthetic data and
  /// installs the best schedule found (the paper's §6.1 measurement
  /// setup, with a configurable trial budget instead of 20 000).
  /// `max_threads` caps the thread knob of the search space.
  /// Returns the full tuning history for analysis.
  tune::TuneResult tune(std::size_t unit_size,
                        const tune::TuneOptions& options, int max_threads);

  /// The GEMM task shape this coder executes for a given unit size:
  /// m = out_units*w, n = unit_size/(8w) words, k = in_units*w.
  tune::TaskShape task_shape(std::size_t unit_size) const;

  unsigned w() const noexcept { return w_; }

  /// See kScatteredStageMaxBytes. Units strictly below the threshold
  /// stage; at or above it they ride the zero-copy fragment path.
  void set_scattered_staging_threshold(std::size_t bytes) noexcept {
    scattered_staging_threshold_ = bytes;
  }
  std::size_t scattered_staging_threshold() const noexcept {
    return scattered_staging_threshold_;
  }

 protected:
  void do_apply(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                std::size_t unit_size) const override;
  unsigned bit_sliced_w() const noexcept override { return w_; }

 private:
  unsigned w_;
  std::size_t in_units_;
  std::size_t out_units_;
  tensor::AlignedBuffer<std::uint64_t> masks_;  // (out*w) x (in*w) broadcast
  tensor::Schedule schedule_;
  std::size_t scattered_staging_threshold_ = kScatteredStageMaxBytes;
};

}  // namespace tvmec::core
