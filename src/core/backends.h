#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ec/encoder.h"
#include "gf/gf_matrix.h"
#include "tensor/schedule.h"

/// Uniform construction of every coding backend in the repository — the
/// GEMM-based TVM-EC core plus the custom-library baselines the paper
/// compares against. Benchmarks and cross-backend equivalence tests use
/// this factory so each backend receives the identical coefficient
/// matrix.
namespace tvmec::core {

enum class Backend {
  NaiveBitmatrix,  ///< unoptimized Listing-2 triple loop
  JerasureDumb,    ///< pointer-based bitmatrix, straightforward schedule
  JerasureSmart,   ///< pointer-based bitmatrix, row-difference schedule
  Uezato,          ///< XOR-program CSE + 2 KB cache blocking (SC'21)
  Isal,            ///< split-table GF(2^8) dot products (Intel ISA-L)
  Gemm,            ///< TVM-EC: bitmatrix GEMM via the tensor library
};

const char* to_string(Backend b) noexcept;

/// Every backend, in a stable order (Gemm last).
std::vector<Backend> all_backends();

/// Backends applicable to a code over GF(2^w): Isal requires w == 8.
std::vector<Backend> backends_for_w(unsigned w);

/// Instantiates a coder for the coefficient matrix. The Gemm backend is
/// created with the default schedule (tune or set_schedule afterwards via
/// the returned pointer's concrete type if needed).
/// Throws std::invalid_argument for Isal with w != 8.
std::unique_ptr<ec::MatrixCoder> make_coder(Backend backend,
                                            const gf::Matrix& coeffs);

/// Gemm-backend variant with an explicit schedule.
std::unique_ptr<ec::MatrixCoder> make_gemm_coder(
    const gf::Matrix& coeffs, const tensor::Schedule& schedule);

}  // namespace tvmec::core
