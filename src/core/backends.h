#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ec/encoder.h"
#include "gf/gf_matrix.h"
#include "tensor/schedule.h"

/// Uniform construction of every coding backend in the repository — the
/// GEMM-based TVM-EC core plus the custom-library baselines the paper
/// compares against. Benchmarks and cross-backend equivalence tests use
/// this factory so each backend receives the identical coefficient
/// matrix.
namespace tvmec::core {

enum class Backend {
  NaiveBitmatrix,  ///< unoptimized Listing-2 triple loop
  JerasureDumb,    ///< pointer-based bitmatrix, straightforward schedule
  JerasureSmart,   ///< pointer-based bitmatrix, row-difference schedule
  Uezato,          ///< XOR-program CSE + 2 KB cache blocking (SC'21)
  Isal,            ///< split-table GF(2^8) dot products (Intel ISA-L)
  Gemm,            ///< TVM-EC: bitmatrix GEMM via the tensor library
};

const char* to_string(Backend b) noexcept;

/// Inverse of to_string: resolves a backend by its stable name
/// ("naive", "jerasure-dumb", "jerasure-smart", "uezato", "isal",
/// "tvm-ec"). Returns nullopt for unknown names. This is the lookup the
/// differential fuzzer's reproducer strings and CLI flags go through.
std::optional<Backend> backend_from_name(std::string_view name) noexcept;

/// Every backend, in a stable order (Gemm last).
std::vector<Backend> all_backends();

/// True when the backend shares the bitpacket byte-embedding (validated
/// against apply_matrix_reference_bitpacket); false for byte-embedding
/// backends (Isal, validated against apply_matrix_reference). The two
/// families produce different — individually valid — parity bytes, so
/// differential comparisons must stay within a family (DESIGN.md §4b).
bool is_bitpacket_backend(Backend b) noexcept;

/// Backends applicable to a code over GF(2^w): Isal requires w == 8.
std::vector<Backend> backends_for_w(unsigned w);

/// Instantiates a coder for the coefficient matrix. The Gemm backend is
/// created with the default schedule (tune or set_schedule afterwards via
/// the returned pointer's concrete type if needed).
/// Throws std::invalid_argument for Isal with w != 8.
std::unique_ptr<ec::MatrixCoder> make_coder(Backend backend,
                                            const gf::Matrix& coeffs);

/// Gemm-backend variant with an explicit schedule.
std::unique_ptr<ec::MatrixCoder> make_gemm_coder(
    const gf::Matrix& coeffs, const tensor::Schedule& schedule);

}  // namespace tvmec::core
