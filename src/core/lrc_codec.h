#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/gemm_coder.h"
#include "ec/lrc.h"

/// The LRC counterpart of Codec — the paper's §8 commitment ("we plan to
/// include other classes of codes in our prototype, such as local
/// reconstruction codes") carried to the public API: encode, general
/// decode, and locality-aware single-failure repair, all executed as
/// GEMMs ("theoretically, all linear codes can be developed via a highly
/// optimized GEMM routine").
namespace tvmec::core {

class LrcCodec {
 public:
  explicit LrcCodec(const ec::LrcParams& params);

  const ec::LrcParams& params() const noexcept { return params_; }
  const ec::Lrc& code() const noexcept { return lrc_; }

  /// Encodes k contiguous data units into l + g contiguous parity units.
  void encode(std::span<const std::uint8_t> data,
              std::span<std::uint8_t> parity, std::size_t unit_size) const;

  /// Recovers the erased units of a full stripe (k + l + g contiguous
  /// units) in place. Throws std::runtime_error when the pattern is
  /// unrecoverable (LRCs are not MDS: some patterns within l + g
  /// erasures cannot be decoded).
  void decode(std::span<std::uint8_t> stripe,
              std::span<const std::size_t> erased_ids, std::size_t unit_size);

  /// Locality-aware repair of one failed data or local-parity unit:
  /// reads only the group_size() surviving members of its group (the
  /// whole point of an LRC). Returns the number of units read. Throws
  /// std::invalid_argument for a global-parity unit (use decode).
  std::size_t repair_local(std::span<std::uint8_t> stripe,
                           std::size_t failed_unit, std::size_t unit_size);

  /// Installs the kernel schedule for all coders (existing plan caches
  /// are rebuilt lazily with the new schedule).
  void set_schedule(const tensor::Schedule& schedule);

 private:
  struct PlanEntry {
    ec::DecodePlan plan;
    std::unique_ptr<GemmCoder> coder;
  };

  /// Executes the plan's coder zero-copy over the stripe: survivors are
  /// consumed in place and recovered units written straight into their
  /// slots through the scattered kernel.
  void run_plan(const PlanEntry& entry, std::span<std::uint8_t> stripe,
                std::size_t unit_size);

  ec::LrcParams params_;
  ec::Lrc lrc_;
  GemmCoder encode_coder_;
  std::map<std::vector<std::size_t>, PlanEntry> decode_cache_;
  std::vector<std::unique_ptr<PlanEntry>> local_cache_;  // per unit, lazy
};

}  // namespace tvmec::core
