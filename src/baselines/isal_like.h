#pragma once

#include <vector>

#include "ec/encoder.h"
#include "gf/gf.h"
#include "gf/gf_matrix.h"

/// An ISA-L-style encoder (Intel Intelligent Storage Acceleration
/// Library): the paper's production-grade baseline. Unlike the bitmatrix
/// encoders, ISA-L keeps full GF(2^8) arithmetic and implements the
/// parity dot products with split 4-bit lookup tables, which map onto
/// byte-shuffle instructions (pshufb/vpshufb).
///
/// This reproduction mirrors ISA-L's design: an `ec_init_tables`-style
/// precomputation of per-(output, input) split tables at construction,
/// then a `gf_vect_dot_prod`-style encode that fuses several outputs per
/// streaming pass over the data. On AVX2 hardware the inner loop uses
/// vpshufb exactly as ISA-L's assembly does; elsewhere a portable
/// byte-table loop stands in.
namespace tvmec::baseline {

class IsalCoder final : public ec::MatrixCoder {
 public:
  /// Requires the coefficient matrix to be over GF(2^8) (ISA-L's field);
  /// throws std::invalid_argument otherwise.
  explicit IsalCoder(const gf::Matrix& coeffs);

  std::size_t in_units() const noexcept override { return in_units_; }
  std::size_t out_units() const noexcept override { return out_units_; }
  std::string name() const override { return "isal"; }

  /// True when this build executes the vpshufb fast path.
  static bool has_simd_path() noexcept;

 protected:
  void do_apply(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                std::size_t unit_size) const override;

 private:
  std::size_t in_units_;
  std::size_t out_units_;
  /// Split tables indexed [out * in_units_ + in].
  std::vector<gf::SplitTables8> tables_;
};

}  // namespace tvmec::baseline
