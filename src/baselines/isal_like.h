#pragma once

#include <vector>

#include "baselines/isal_kernels.h"
#include "ec/encoder.h"
#include "gf/gf.h"
#include "gf/gf_matrix.h"

/// An ISA-L-style encoder (Intel Intelligent Storage Acceleration
/// Library): the paper's production-grade baseline. Unlike the bitmatrix
/// encoders, ISA-L keeps full GF(2^8) arithmetic and implements the
/// parity dot products with split 4-bit lookup tables, which map onto
/// byte-shuffle instructions (pshufb/vpshufb).
///
/// This reproduction mirrors ISA-L's design: an `ec_init_tables`-style
/// precomputation of per-(output, input) split tables at construction,
/// then a `gf_vect_dot_prod`-style encode that fuses several outputs per
/// streaming pass over the data. Like real ISA-L — and unlike the
/// pre-variant-tier version of this file — the inner loop is chosen at
/// RUNTIME from CPUID: GFNI's gf2p8affineqb where available, AVX2
/// vpshufb next, a portable byte-table loop otherwise. The choice tracks
/// the library-wide kernel variant (tensor/variant.h), so
/// TVMEC_FORCE_VARIANT=scalar pins this baseline to the portable loop
/// too.
namespace tvmec::baseline {

class IsalCoder final : public ec::MatrixCoder {
 public:
  /// Requires the coefficient matrix to be over GF(2^8) (ISA-L's field);
  /// throws std::invalid_argument otherwise.
  explicit IsalCoder(const gf::Matrix& coeffs);

  std::size_t in_units() const noexcept override { return in_units_; }
  std::size_t out_units() const noexcept override { return out_units_; }
  std::string name() const override { return "isal"; }

  /// True when encode currently executes a SIMD inner loop. Runtime
  /// truth: reflects CPUID detection and any TVMEC_FORCE_VARIANT
  /// override at the moment of the call, not the build's compile flags.
  static bool has_simd_path() noexcept;

  /// The inner loop an encode issued right now would run.
  static IsalPath active_path() noexcept;

 protected:
  void do_apply(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                std::size_t unit_size) const override;

 private:
  std::size_t in_units_;
  std::size_t out_units_;
  /// Split tables indexed [out * in_units_ + in] (scalar + vpshufb paths).
  std::vector<gf::SplitTables8> tables_;
  /// gf2p8affineqb matrices, same indexing (GFNI path). Precomputed
  /// unconditionally — 8 bytes per coefficient — so a force-override
  /// flip mid-run never finds them missing.
  std::vector<std::uint64_t> gfni_matrices_;
};

}  // namespace tvmec::baseline
