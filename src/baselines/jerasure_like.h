#pragma once

#include <vector>

#include "ec/bitmatrix_code.h"
#include "ec/encoder.h"
#include "gf/gf_matrix.h"

/// A Jerasure-style bitmatrix encoder (Plank & Greenan): the classic
/// pointer-per-unit C library design the paper cites as the popular
/// baseline and uses to motivate the §5 contiguity discussion ("Jerasure
/// represents the k data units to be encoded as k pointers to separate
/// allocations in memory").
///
/// Two XOR schedules are provided, mirroring Jerasure's:
///  - Dumb:  each output bit-row XORs every source packet its bitmatrix
///           row selects.
///  - Smart: consecutive bit-rows reuse the previous row's result when
///           the rows differ in fewer places than the new row has ones
///           (Jerasure's jerasure_smart_bitmatrix_to_schedule).
namespace tvmec::baseline {

enum class JerasureSchedule { Dumb, Smart };

class JerasureCoder final : public ec::MatrixCoder {
 public:
  JerasureCoder(const gf::Matrix& coeffs,
                JerasureSchedule schedule = JerasureSchedule::Smart);

  /// The native Jerasure-shaped API: one pointer per unit, units need not
  /// be contiguous or ordered in memory. Each pointer must reference
  /// unit_size bytes, 8-byte aligned.
  void apply_ptrs(const std::vector<const std::uint8_t*>& in,
                  const std::vector<std::uint8_t*>& out,
                  std::size_t unit_size) const;

  std::size_t in_units() const noexcept override { return code_.in_units(); }
  std::size_t out_units() const noexcept override { return code_.out_units(); }
  std::string name() const override {
    return schedule_ == JerasureSchedule::Smart ? "jerasure-smart"
                                                : "jerasure-dumb";
  }

  /// Number of packet-XOR operations one apply() performs (schedule cost).

  std::size_t xor_ops() const noexcept { return xor_ops_; }

 protected:
  void do_apply(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                std::size_t unit_size) const override;
  unsigned bit_sliced_w() const noexcept override { return code_.w(); }

 private:
  /// One scheduled operation: XOR (or copy) source packet into dest.
  struct Op {
    std::size_t dst_row;  ///< output bit-row index
    std::size_t src_row;  ///< input bit-row if src_is_input, else output row
    bool src_is_input;
    bool is_copy;  ///< first op of a row overwrites instead of XORs
  };

  void build_dumb();
  void build_smart();

  ec::BitmatrixCode code_;
  JerasureSchedule schedule_;
  std::vector<Op> ops_;
  std::size_t xor_ops_ = 0;
};

}  // namespace tvmec::baseline
