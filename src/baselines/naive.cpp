#include "baselines/naive.h"

#include <stdexcept>

#include "ec/code_params.h"

namespace tvmec::baseline {

NaiveBitmatrixCoder::NaiveBitmatrixCoder(const gf::Matrix& coeffs)
    : code_(coeffs) {}

void NaiveBitmatrixCoder::do_apply(std::span<const std::uint8_t> in,
                                   std::span<std::uint8_t> out,
                                   std::size_t unit_size) const {
  const unsigned w = code_.w();
  // MatrixCoder::apply guarantees aligned operands and a word-multiple
  // packet size before dispatching here.

  // Units are sliced into w packets; packet row l of the "data matrix"
  // starts at byte l * packet_bytes of the contiguous buffer (packets of
  // a unit are adjacent, units are adjacent), so the whole input is one
  // (in_units*w) x packet_words word matrix — Listing 2's B operand.
  const std::size_t packet_bytes = unit_size / w;
  const std::size_t packet_words = packet_bytes / 8;
  const auto* b = reinterpret_cast<const std::uint64_t*>(in.data());
  auto* c = reinterpret_cast<std::uint64_t*>(out.data());
  const gf::BitMatrix& bits = code_.bits();

  for (std::size_t i = 0; i < bits.rows(); ++i) {
    for (std::size_t j = 0; j < packet_words; ++j) {
      std::uint64_t acc = 0;
      for (std::size_t l = 0; l < bits.cols(); ++l) {
        const std::uint64_t mask =
            bits.get(i, l) ? ~std::uint64_t{0} : std::uint64_t{0};
        acc ^= mask & b[l * packet_words + j];
      }
      c[i * packet_words + j] = acc;
    }
  }
}

}  // namespace tvmec::baseline
