// AVX2 vpshufb variant of the ISA-L-style dot product: 32 bytes per
// iteration, one byte-shuffle per nibble table, exactly as ISA-L's
// gf_vect_dot_prod assembly does it. Compiled with per-file -mavx2;
// everything stays in an anonymous namespace so no AVX2-codegen symbol
// can be comdat-folded over portable code.

#include "baselines/isal_kernels.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <cstring>

#include <immintrin.h>

namespace tvmec::baseline {

namespace {

void accumulate_tail(const gf::SplitTables8& t, const std::uint8_t* src,
                     std::uint8_t* dst, std::size_t len) {
  for (std::size_t b = 0; b < len; ++b) dst[b] ^= t.mul(src[b]);
}

void dot_vpshufb(const gf::SplitTables8* tables, std::size_t in_units,
                 const std::uint8_t* in, std::size_t src_stride,
                 std::uint8_t* dst, std::size_t len) {
  const __m256i low_nibble_mask = _mm256_set1_epi8(0x0F);
  const std::size_t vec_len = len / 32 * 32;
  for (std::size_t pos = 0; pos < vec_len; pos += 32) {
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t j = 0; j < in_units; ++j) {
      const gf::SplitTables8& t = tables[j];
      const __m128i lo128 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo.data()));
      const __m128i hi128 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi.data()));
      const __m256i lo_tbl = _mm256_broadcastsi128_si256(lo128);
      const __m256i hi_tbl = _mm256_broadcastsi128_si256(hi128);
      const __m256i data = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(in + j * src_stride + pos));
      const __m256i lo_idx = _mm256_and_si256(data, low_nibble_mask);
      const __m256i hi_idx =
          _mm256_and_si256(_mm256_srli_epi64(data, 4), low_nibble_mask);
      acc = _mm256_xor_si256(acc, _mm256_shuffle_epi8(lo_tbl, lo_idx));
      acc = _mm256_xor_si256(acc, _mm256_shuffle_epi8(hi_tbl, hi_idx));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + pos), acc);
  }
  if (vec_len < len) {
    std::memset(dst + vec_len, 0, len - vec_len);
    for (std::size_t j = 0; j < in_units; ++j)
      accumulate_tail(tables[j], in + j * src_stride + vec_len, dst + vec_len,
                      len - vec_len);
  }
}

}  // namespace

IsalShufFn isal_vpshufb_kernel() noexcept { return &dot_vpshufb; }

}  // namespace tvmec::baseline

#else  // compiler lacked AVX2 target support, or non-x86 architecture

namespace tvmec::baseline {
IsalShufFn isal_vpshufb_kernel() noexcept { return nullptr; }
}  // namespace tvmec::baseline

#endif
