#include "baselines/jerasure_like.h"

#include <cstring>
#include <stdexcept>

namespace tvmec::baseline {

namespace {

void xor_words(std::uint64_t* dst, const std::uint64_t* src,
               std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) dst[i] ^= src[i];
}

}  // namespace

JerasureCoder::JerasureCoder(const gf::Matrix& coeffs,
                             JerasureSchedule schedule)
    : code_(coeffs), schedule_(schedule) {
  if (schedule_ == JerasureSchedule::Smart) {
    build_smart();
  } else {
    build_dumb();
  }
  for (const Op& op : ops_)
    if (!op.is_copy) ++xor_ops_;
}

void JerasureCoder::build_dumb() {
  const gf::BitMatrix& bits = code_.bits();
  for (std::size_t i = 0; i < bits.rows(); ++i) {
    bool first = true;
    for (std::size_t l = 0; l < bits.cols(); ++l) {
      if (!bits.get(i, l)) continue;
      ops_.push_back({i, l, /*src_is_input=*/true, /*is_copy=*/first});
      first = false;
    }
  }
}

void JerasureCoder::build_smart() {
  const gf::BitMatrix& bits = code_.bits();
  for (std::size_t i = 0; i < bits.rows(); ++i) {
    // Option A (dumb): XOR this row's own sources.
    std::vector<std::size_t> own;
    for (std::size_t l = 0; l < bits.cols(); ++l)
      if (bits.get(i, l)) own.push_back(l);

    // Option B (smart): start from the previous output row and patch the
    // differing sources.
    std::vector<std::size_t> diff;
    if (i > 0) {
      for (std::size_t l = 0; l < bits.cols(); ++l)
        if (bits.get(i, l) != bits.get(i - 1, l)) diff.push_back(l);
    }

    const bool use_smart = i > 0 && diff.size() + 1 < own.size();
    if (use_smart) {
      ops_.push_back({i, i - 1, /*src_is_input=*/false, /*is_copy=*/true});
      for (const std::size_t l : diff)
        ops_.push_back({i, l, /*src_is_input=*/true, /*is_copy=*/false});
    } else {
      bool first = true;
      for (const std::size_t l : own) {
        ops_.push_back({i, l, /*src_is_input=*/true, /*is_copy=*/first});
        first = false;
      }
    }
  }
}

void JerasureCoder::apply_ptrs(const std::vector<const std::uint8_t*>& in,
                               const std::vector<std::uint8_t*>& out,
                               std::size_t unit_size) const {
  const unsigned w = code_.w();
  const std::size_t quantum = std::size_t{8} * w;
  if (unit_size == 0 || unit_size % quantum != 0)
    throw std::invalid_argument("jerasure: unit size must be multiple of 8*w");
  if (in.size() != code_.in_units() || out.size() != code_.out_units())
    throw std::invalid_argument("jerasure: wrong number of unit pointers");
  for (const auto* p : in) ec::require_word_aligned(p, "jerasure input");
  for (auto* p : out) ec::require_word_aligned(p, "jerasure output");

  const std::size_t packet_bytes = unit_size / w;
  const std::size_t packet_words = packet_bytes / 8;

  const auto in_packet = [&](std::size_t bit_row) {
    return reinterpret_cast<const std::uint64_t*>(
        in[bit_row / w] + (bit_row % w) * packet_bytes);
  };
  const auto out_packet = [&](std::size_t bit_row) {
    return reinterpret_cast<std::uint64_t*>(out[bit_row / w] +
                                            (bit_row % w) * packet_bytes);
  };

  // Rows with no sources (possible in pathological coefficient matrices)
  // must still be defined: zero everything first is wasteful, so instead
  // track which rows the schedule writes via copies.
  std::vector<bool> written(code_.out_units() * w, false);
  for (const Op& op : ops_)
    if (op.is_copy) written[op.dst_row] = true;
  for (std::size_t row = 0; row < written.size(); ++row)
    if (!written[row]) std::memset(out_packet(row), 0, packet_bytes);

  for (const Op& op : ops_) {
    std::uint64_t* dst = out_packet(op.dst_row);
    const std::uint64_t* src =
        op.src_is_input ? in_packet(op.src_row) : out_packet(op.src_row);
    if (op.is_copy) {
      std::memcpy(dst, src, packet_bytes);
    } else {
      xor_words(dst, src, packet_words);
    }
  }
}

void JerasureCoder::do_apply(std::span<const std::uint8_t> in,
                             std::span<std::uint8_t> out,
                             std::size_t unit_size) const {
  std::vector<const std::uint8_t*> in_ptrs(code_.in_units());
  std::vector<std::uint8_t*> out_ptrs(code_.out_units());
  for (std::size_t i = 0; i < in_ptrs.size(); ++i)
    in_ptrs[i] = in.data() + i * unit_size;
  for (std::size_t i = 0; i < out_ptrs.size(); ++i)
    out_ptrs[i] = out.data() + i * unit_size;
  apply_ptrs(in_ptrs, out_ptrs, unit_size);
}

}  // namespace tvmec::baseline
