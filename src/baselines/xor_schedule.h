#pragma once

#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "ec/bitmatrix_code.h"
#include "ec/encoder.h"
#include "gf/gf_matrix.h"

/// A Uezato-style (SC'21) bitmatrix encoder: "accelerating XOR-based
/// erasure coding using program optimization techniques". The paper uses
/// this library as its strongest custom-CPU baseline.
///
/// Two of Uezato's ingredients are reproduced:
///  1. Common-subexpression elimination over the XOR program: the most
///     frequent packet pair across all parity equations is materialized
///     as a temporary and reused, repeatedly, shrinking the total XOR
///     count below the bitmatrix ones count (compiler-theory view of the
///     scheduling problem).
///  2. Cache blocking: packets are processed in blocks of a configurable
///     byte size so temporaries stay cache-resident. The paper's
///     evaluation found a 2 KB blocking factor fastest, which is the
///     default here (bench E4 reproduces that ablation).
namespace tvmec::baseline {

class UezatoCoder final : public ec::MatrixCoder {
 public:
  struct Options {
    /// Cache blocking factor in bytes (must be a positive multiple of 8).
    std::size_t block_bytes = 2048;
    /// Cap on CSE temporaries (mostly for experiments; default unbounded).
    std::size_t max_temps = std::numeric_limits<std::size_t>::max();
    /// Disable CSE to isolate the blocking contribution.
    bool enable_cse = true;
  };

  /// Default options: 2 KB blocking, CSE enabled.
  explicit UezatoCoder(const gf::Matrix& coeffs);
  UezatoCoder(const gf::Matrix& coeffs, const Options& opts);

  std::size_t in_units() const noexcept override { return code_.in_units(); }
  std::size_t out_units() const noexcept override { return code_.out_units(); }
  std::string name() const override { return "uezato"; }

  /// CSE temporaries materialized.
  std::size_t num_temps() const noexcept { return temps_.size(); }
  /// Packet-wide XOR operations per full apply() pass (copies excluded);
  /// with CSE this drops below the bitmatrix ones-based cost.
  std::size_t xor_ops() const noexcept;
  /// XOR ops the dumb (no-CSE) schedule would need, for speedup ratios.
  std::size_t xor_ops_without_cse() const noexcept { return dumb_xor_ops_; }

 protected:
  void do_apply(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                std::size_t unit_size) const override;
  unsigned bit_sliced_w() const noexcept override { return code_.w(); }

 private:
  void run_cse(std::vector<std::vector<int>>& equations, std::size_t max_temps);

  ec::BitmatrixCode code_;
  Options opts_;
  /// Temp node t (id = num_inputs + t) = nodes temps_[t].first ^ .second.
  std::vector<std::pair<int, int>> temps_;
  /// Per output bit-row: node ids XORed together to form it.
  std::vector<std::vector<int>> outputs_;
  std::size_t dumb_xor_ops_ = 0;
};

}  // namespace tvmec::baseline
