#pragma once

#include <cstddef>
#include <cstdint>

#include "gf/gf.h"

/// Runtime-dispatched inner kernels for the ISA-L-style baseline.
///
/// Mirrors the XorAnd variant tier (tensor/xorand_kernels.h): each ISA
/// flavor of the `gf_vect_dot_prod`-style loop lives in its own
/// translation unit compiled with per-file target flags, exporting only
/// a function-pointer getter. Getters return nullptr when the variant
/// was not compiled (non-x86 target, compiler without the flag), and the
/// dispatcher in isal_like.cpp additionally checks CPUID before ever
/// calling one — the same two-level "compiled AND supported" gate as the
/// tensor tier.
///
/// All kernels share one contract: produce ONE output unit as the
/// GF(2^8) dot product of `in_units` inputs. Inputs start at `in` and
/// are `src_stride` bytes apart; `dst` is fully overwritten over
/// [0, len), including any non-vector tail.
namespace tvmec::baseline {

/// Which inner loop an IsalCoder encode executes. Vpshufb is ISA-L's
/// classic split-table byte shuffle; Gfni evaluates the same constant
/// multiply as an 8x8 GF(2) bit-matrix product in one gf2p8affineqb.
enum class IsalPath : std::uint8_t { Scalar, Vpshufb, Gfni };

const char* to_string(IsalPath path) noexcept;

/// Split-table kernel: `tables[j]` holds the lo/hi nibble tables for
/// input j's coefficient.
using IsalShufFn = void (*)(const gf::SplitTables8* tables,
                            std::size_t in_units, const std::uint8_t* in,
                            std::size_t src_stride, std::uint8_t* dst,
                            std::size_t len);

/// Bit-matrix kernel: `matrices[j]` is the gf2p8affineqb qword encoding
/// multiplication by input j's coefficient (see gfni_matrix()).
using IsalGfniFn = void (*)(const std::uint64_t* matrices,
                            std::size_t in_units, const std::uint8_t* in,
                            std::size_t src_stride, std::uint8_t* dst,
                            std::size_t len);

/// AVX2 vpshufb kernel; nullptr when the TU compiled to its stub.
IsalShufFn isal_vpshufb_kernel() noexcept;

/// GFNI (VEX, 256-bit) kernel; nullptr when the TU compiled to its stub.
IsalGfniFn isal_gfni_kernel() noexcept;

/// Builds the gf2p8affineqb matrix operand for multiply-by-c in GF(2^8)
/// under `field`'s primitive polynomial. Bit order per the ISA: result
/// bit i of each byte is parity(matrix byte [7-i] AND source byte), so
/// row i (bit j set iff bit i of c * x^j) lands in qword byte 7-i.
std::uint64_t gfni_matrix(const gf::Field& field, std::uint8_t c);

}  // namespace tvmec::baseline
