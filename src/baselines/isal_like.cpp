#include "baselines/isal_like.h"

#include <cstring>
#include <stdexcept>

#include "tensor/variant.h"

namespace tvmec::baseline {

const char* to_string(IsalPath path) noexcept {
  switch (path) {
    case IsalPath::Scalar:
      return "scalar";
    case IsalPath::Vpshufb:
      return "vpshufb";
    case IsalPath::Gfni:
      return "gfni";
  }
  return "?";
}

std::uint64_t gfni_matrix(const gf::Field& field, std::uint8_t c) {
  // Row i of the GF(2) matrix: bit j set iff bit i of c * x^j. The ISA
  // reads row i from qword byte 7-i (result bit i = parity(row & src)).
  std::uint64_t m = 0;
  for (int i = 0; i < 8; ++i) {
    std::uint8_t row = 0;
    for (int j = 0; j < 8; ++j) {
      const auto prod = field.mul(c, static_cast<gf::elem_t>(1u << j));
      row = static_cast<std::uint8_t>(row | (((prod >> i) & 1u) << j));
    }
    m |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
  }
  return m;
}

IsalCoder::IsalCoder(const gf::Matrix& coeffs)
    : in_units_(coeffs.cols()), out_units_(coeffs.rows()) {
  if (coeffs.field().w() != 8)
    throw std::invalid_argument("isal-like: requires GF(2^8) coefficients");
  tables_.reserve(out_units_ * in_units_);
  gfni_matrices_.reserve(out_units_ * in_units_);
  for (std::size_t i = 0; i < out_units_; ++i) {
    for (std::size_t j = 0; j < in_units_; ++j) {
      const auto c = static_cast<std::uint8_t>(coeffs.at(i, j));
      tables_.push_back(coeffs.field().split_tables(c));
      gfni_matrices_.push_back(gfni_matrix(coeffs.field(), c));
    }
  }
}

IsalPath IsalCoder::active_path() noexcept {
  // Follow the library-wide variant tier so one TVMEC_FORCE_VARIANT knob
  // pins baseline and tensor kernels alike. The Avx512 tier maps to GFNI
  // when the host has it (GFNI ships on every AVX-512 server part this
  // baseline targets); otherwise it degrades to vpshufb.
  const tensor::CpuFeatures& f = tensor::cpu_features();
  const bool vpshufb_ok = f.avx2 && isal_vpshufb_kernel() != nullptr;
  const bool gfni_ok = f.gfni && f.avx2 && isal_gfni_kernel() != nullptr;
  switch (tensor::active_variant()) {
    case tensor::KernelVariant::Avx512:
      if (gfni_ok) return IsalPath::Gfni;
      [[fallthrough]];
    case tensor::KernelVariant::Avx2:
      if (vpshufb_ok) return IsalPath::Vpshufb;
      return IsalPath::Scalar;
    case tensor::KernelVariant::Auto:
    case tensor::KernelVariant::Scalar:
    case tensor::KernelVariant::Neon:
      return IsalPath::Scalar;
  }
  return IsalPath::Scalar;
}

bool IsalCoder::has_simd_path() noexcept {
  return active_path() != IsalPath::Scalar;
}

namespace {

/// Portable split-table dot-product accumulation for one (out, in) pair.
void accumulate_scalar(const gf::SplitTables8& t, const std::uint8_t* src,
                       std::uint8_t* dst, std::size_t len) {
  for (std::size_t b = 0; b < len; ++b) dst[b] ^= t.mul(src[b]);
}

}  // namespace

void IsalCoder::do_apply(std::span<const std::uint8_t> in,
                         std::span<std::uint8_t> out,
                         std::size_t unit_size) const {
  const IsalPath path = active_path();
  if (path == IsalPath::Gfni) {
    const IsalGfniFn fn = isal_gfni_kernel();
    for (std::size_t i = 0; i < out_units_; ++i)
      fn(gfni_matrices_.data() + i * in_units_, in_units_, in.data(),
         unit_size, out.data() + i * unit_size, unit_size);
    return;
  }
  if (path == IsalPath::Vpshufb) {
    const IsalShufFn fn = isal_vpshufb_kernel();
    for (std::size_t i = 0; i < out_units_; ++i)
      fn(tables_.data() + i * in_units_, in_units_, in.data(), unit_size,
         out.data() + i * unit_size, unit_size);
    return;
  }
  for (std::size_t i = 0; i < out_units_; ++i) {
    std::uint8_t* dst = out.data() + i * unit_size;
    std::memset(dst, 0, unit_size);
    for (std::size_t j = 0; j < in_units_; ++j)
      accumulate_scalar(tables_[i * in_units_ + j],
                        in.data() + j * unit_size, dst, unit_size);
  }
}

}  // namespace tvmec::baseline
