#include "baselines/isal_like.h"

#include <cstring>
#include <stdexcept>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace tvmec::baseline {

IsalCoder::IsalCoder(const gf::Matrix& coeffs)
    : in_units_(coeffs.cols()), out_units_(coeffs.rows()) {
  if (coeffs.field().w() != 8)
    throw std::invalid_argument("isal-like: requires GF(2^8) coefficients");
  tables_.reserve(out_units_ * in_units_);
  for (std::size_t i = 0; i < out_units_; ++i)
    for (std::size_t j = 0; j < in_units_; ++j)
      tables_.push_back(coeffs.field().split_tables(
          static_cast<std::uint8_t>(coeffs.at(i, j))));
}

bool IsalCoder::has_simd_path() noexcept {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

namespace {

/// Portable split-table dot-product accumulation for one (out, in) pair
/// over [begin, end) of the unit.
void accumulate_scalar(const gf::SplitTables8& t, const std::uint8_t* src,
                       std::uint8_t* dst, std::size_t len) {
  for (std::size_t b = 0; b < len; ++b)
    dst[b] ^= static_cast<std::uint8_t>(t.lo[src[b] & 0x0F] ^
                                        t.hi[src[b] >> 4]);
}

}  // namespace

void IsalCoder::do_apply(std::span<const std::uint8_t> in,
                         std::span<std::uint8_t> out,
                         std::size_t unit_size) const {
#if defined(__AVX2__)
  // ISA-L-style fast path: one streaming pass per output, 32 bytes per
  // iteration, vpshufb performing both 16-entry lookups per lane.
  const __m256i low_nibble_mask = _mm256_set1_epi8(0x0F);
  const std::size_t vec_len = unit_size / 32 * 32;
  for (std::size_t i = 0; i < out_units_; ++i) {
    std::uint8_t* dst = out.data() + i * unit_size;
    for (std::size_t pos = 0; pos < vec_len; pos += 32) {
      __m256i acc = _mm256_setzero_si256();
      for (std::size_t j = 0; j < in_units_; ++j) {
        const gf::SplitTables8& t = tables_[i * in_units_ + j];
        const __m128i lo128 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo.data()));
        const __m128i hi128 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi.data()));
        const __m256i lo_tbl = _mm256_broadcastsi128_si256(lo128);
        const __m256i hi_tbl = _mm256_broadcastsi128_si256(hi128);
        const __m256i data = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            in.data() + j * unit_size + pos));
        const __m256i lo_idx = _mm256_and_si256(data, low_nibble_mask);
        const __m256i hi_idx = _mm256_and_si256(
            _mm256_srli_epi64(data, 4), low_nibble_mask);
        acc = _mm256_xor_si256(acc, _mm256_shuffle_epi8(lo_tbl, lo_idx));
        acc = _mm256_xor_si256(acc, _mm256_shuffle_epi8(hi_tbl, hi_idx));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + pos), acc);
    }
    // Scalar tail.
    if (vec_len < unit_size) {
      std::memset(dst + vec_len, 0, unit_size - vec_len);
      for (std::size_t j = 0; j < in_units_; ++j)
        accumulate_scalar(tables_[i * in_units_ + j],
                          in.data() + j * unit_size + vec_len, dst + vec_len,
                          unit_size - vec_len);
    }
  }
#else
  for (std::size_t i = 0; i < out_units_; ++i) {
    std::uint8_t* dst = out.data() + i * unit_size;
    std::memset(dst, 0, unit_size);
    for (std::size_t j = 0; j < in_units_; ++j)
      accumulate_scalar(tables_[i * in_units_ + j],
                        in.data() + j * unit_size, dst, unit_size);
  }
#endif
}

}  // namespace tvmec::baseline
