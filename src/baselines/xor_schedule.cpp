#include "baselines/xor_schedule.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

#include "tensor/buffer.h"

namespace tvmec::baseline {

UezatoCoder::UezatoCoder(const gf::Matrix& coeffs)
    : UezatoCoder(coeffs, Options{}) {}

UezatoCoder::UezatoCoder(const gf::Matrix& coeffs, const Options& opts)
    : code_(coeffs), opts_(opts) {
  if (opts_.block_bytes == 0 || opts_.block_bytes % 8 != 0)
    throw std::invalid_argument(
        "uezato: block_bytes must be a positive multiple of 8");

  // Start from the raw XOR equations of the bitmatrix.
  std::vector<std::vector<int>> equations;
  for (const auto& eq : code_.xor_equations()) {
    std::vector<int> nodes;
    nodes.reserve(eq.size());
    for (const std::size_t src : eq) nodes.push_back(static_cast<int>(src));
    dumb_xor_ops_ += eq.empty() ? 0 : eq.size() - 1;
    equations.push_back(std::move(nodes));
  }

  if (opts_.enable_cse) run_cse(equations, opts_.max_temps);
  outputs_ = std::move(equations);
}

void UezatoCoder::run_cse(std::vector<std::vector<int>>& equations,
                          std::size_t max_temps) {
  const int num_inputs = static_cast<int>(code_.bits().cols());
  while (temps_.size() < max_temps) {
    // Count every unordered node pair that co-occurs in an equation.
    std::map<std::pair<int, int>, int> pair_count;
    for (const auto& eq : equations) {
      for (std::size_t a = 0; a < eq.size(); ++a)
        for (std::size_t b = a + 1; b < eq.size(); ++b)
          ++pair_count[{std::min(eq[a], eq[b]), std::max(eq[a], eq[b])}];
    }
    std::pair<int, int> best{-1, -1};
    int best_count = 1;  // a pair must appear at least twice to pay off
    for (const auto& [pair, count] : pair_count) {
      if (count > best_count) {
        best_count = count;
        best = pair;
      }
    }
    if (best.first < 0) break;

    // Materialize the pair as a temporary and rewrite the equations.
    const int temp_id = num_inputs + static_cast<int>(temps_.size());
    temps_.push_back(best);
    for (auto& eq : equations) {
      const auto ia = std::find(eq.begin(), eq.end(), best.first);
      if (ia == eq.end()) continue;
      const auto ib = std::find(eq.begin(), eq.end(), best.second);
      if (ib == eq.end()) continue;
      // Remove the higher iterator first so the lower stays valid.
      if (ia < ib) {
        eq.erase(ib);
        eq.erase(std::find(eq.begin(), eq.end(), best.first));
      } else {
        eq.erase(ia);
        eq.erase(std::find(eq.begin(), eq.end(), best.second));
      }
      eq.push_back(temp_id);
    }
  }
}

std::size_t UezatoCoder::xor_ops() const noexcept {
  std::size_t ops = temps_.size();  // each temp is one packet-wide XOR
  for (const auto& eq : outputs_)
    if (!eq.empty()) ops += eq.size() - 1;
  return ops;
}

void UezatoCoder::do_apply(std::span<const std::uint8_t> in,
                           std::span<std::uint8_t> out,
                           std::size_t unit_size) const {
  const unsigned w = code_.w();
  // MatrixCoder::apply guarantees aligned operands and a word-multiple
  // packet size before dispatching here.
  const std::size_t packet_bytes = unit_size / w;
  const int num_inputs = static_cast<int>(code_.bits().cols());

  // Temp storage for one block; reused across blocks so it stays hot.
  tensor::AlignedBuffer<std::uint64_t> temp_buf(
      temps_.size() * (opts_.block_bytes / 8));

  for (std::size_t off = 0; off < packet_bytes; off += opts_.block_bytes) {
    const std::size_t block = std::min(opts_.block_bytes, packet_bytes - off);
    const std::size_t block_words = block / 8;

    // Resolves a node id to its value pointer within this block.
    const auto node_ptr = [&](int id) -> const std::uint64_t* {
      if (id < num_inputs) {
        return reinterpret_cast<const std::uint64_t*>(
            in.data() + static_cast<std::size_t>(id) * packet_bytes + off);
      }
      return temp_buf.data() +
             static_cast<std::size_t>(id - num_inputs) *
                 (opts_.block_bytes / 8);
    };

    // Phase 1: materialize temporaries (in dependency order).
    for (std::size_t t = 0; t < temps_.size(); ++t) {
      std::uint64_t* dst = temp_buf.data() + t * (opts_.block_bytes / 8);
      const std::uint64_t* a = node_ptr(temps_[t].first);
      const std::uint64_t* b = node_ptr(temps_[t].second);
      for (std::size_t i = 0; i < block_words; ++i) dst[i] = a[i] ^ b[i];
    }

    // Phase 2: combine into outputs.
    for (std::size_t row = 0; row < outputs_.size(); ++row) {
      std::uint64_t* dst = reinterpret_cast<std::uint64_t*>(
          out.data() + row * packet_bytes + off);
      const auto& eq = outputs_[row];
      if (eq.empty()) {
        std::memset(dst, 0, block);
        continue;
      }
      std::memcpy(dst, node_ptr(eq[0]), block);
      for (std::size_t s = 1; s < eq.size(); ++s) {
        const std::uint64_t* src = node_ptr(eq[s]);
        for (std::size_t i = 0; i < block_words; ++i) dst[i] ^= src[i];
      }
    }
  }
}

}  // namespace tvmec::baseline
