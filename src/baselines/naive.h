#pragma once

#include "ec/bitmatrix_code.h"
#include "ec/encoder.h"
#include "gf/gf_matrix.h"

/// The unoptimized bitmatrix encoder — a literal transcription of the
/// paper's Listing 2 triple loop (XOR of ANDs over broadcast masks).
/// It is the correctness reference the optimized backends are tested
/// against, and the "no ML library, no hand optimization" floor in the
/// benchmarks.
namespace tvmec::baseline {

class NaiveBitmatrixCoder final : public ec::MatrixCoder {
 public:
  /// Expands `coeffs` (rows x cols over GF(2^w)) to bitmatrix form.
  explicit NaiveBitmatrixCoder(const gf::Matrix& coeffs);

  std::size_t in_units() const noexcept override { return code_.in_units(); }
  std::size_t out_units() const noexcept override { return code_.out_units(); }
  std::string name() const override { return "naive"; }

 protected:
  void do_apply(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                std::size_t unit_size) const override;
  unsigned bit_sliced_w() const noexcept override { return code_.w(); }

 private:
  ec::BitmatrixCode code_;
};

}  // namespace tvmec::baseline
