// GFNI variant of the ISA-L-style dot product: gf2p8affineqb evaluates
// the multiply-by-constant as an 8x8 GF(2) bit-matrix product, replacing
// the two vpshufb lookups (and their table broadcasts) with a single
// instruction per input. Compiled with per-file -mgfni -mavx2 (VEX
// encoding, 256-bit); selected only when CPUID reports GFNI + AVX2.
//
// Note gf2p8affineqb works for ANY GF(2^8) representation — the field's
// primitive polynomial is baked into the precomputed matrix (see
// gfni_matrix() in isal_like.cpp), not into the instruction.
// Only gf2p8mulb hardwires the AES polynomial; we deliberately avoid it.

#include "baselines/isal_kernels.h"

#if defined(__GFNI__) && defined(__AVX2__) && \
    (defined(__x86_64__) || defined(__i386__))

#include <cstring>

#include <immintrin.h>

namespace tvmec::baseline {

namespace {

/// Software gf2p8affineqb for the sub-32-byte tail: result bit i is the
/// parity of (matrix byte [7-i] AND source).
std::uint8_t affine_byte(std::uint64_t matrix, std::uint8_t src) {
  std::uint8_t r = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint8_t row =
        static_cast<std::uint8_t>(matrix >> (8 * (7 - i)));
    r = static_cast<std::uint8_t>(
        r | (__builtin_parity(static_cast<unsigned>(row & src)) << i));
  }
  return r;
}

void dot_gfni(const std::uint64_t* matrices, std::size_t in_units,
              const std::uint8_t* in, std::size_t src_stride,
              std::uint8_t* dst, std::size_t len) {
  const std::size_t vec_len = len / 32 * 32;
  for (std::size_t pos = 0; pos < vec_len; pos += 32) {
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t j = 0; j < in_units; ++j) {
      const __m256i mat =
          _mm256_set1_epi64x(static_cast<long long>(matrices[j]));
      const __m256i data = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(in + j * src_stride + pos));
      acc = _mm256_xor_si256(acc,
                             _mm256_gf2p8affine_epi64_epi8(data, mat, 0));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + pos), acc);
  }
  if (vec_len < len) {
    std::memset(dst + vec_len, 0, len - vec_len);
    for (std::size_t j = 0; j < in_units; ++j) {
      const std::uint64_t m = matrices[j];
      const std::uint8_t* src = in + j * src_stride + vec_len;
      for (std::size_t b = 0; b < len - vec_len; ++b)
        dst[vec_len + b] ^= affine_byte(m, src[b]);
    }
  }
}

}  // namespace

IsalGfniFn isal_gfni_kernel() noexcept { return &dot_gfni; }

}  // namespace tvmec::baseline

#else  // compiler lacked GFNI target support, or non-x86 architecture

namespace tvmec::baseline {
IsalGfniFn isal_gfni_kernel() noexcept { return nullptr; }
}  // namespace tvmec::baseline

#endif
