#pragma once

#include <cstddef>
#include <vector>

#include "tensor/schedule.h"
#include "tune/search_space.h"

/// A learned cost model in the spirit of TVM Ansor's: featurize a
/// (schedule, task shape) pair, fit a regularized linear regressor on
/// measured throughputs, and use predictions to pick which candidates are
/// worth measuring. Deliberately simple (ridge regression on hand-rolled
/// features) — the reproduction point is the sample -> predict -> measure
/// -> retrain loop, not gradient-boosted trees.
namespace tvmec::tune {

/// Number of features produced by `featurize`.
inline constexpr std::size_t kNumFeatures = 18;

/// Schedule/shape features: tile geometry, estimated cache footprints of
/// the blocked operands relative to typical L1/L2 sizes, pass counts,
/// parallelism (thread count, partitioned axis, and how much parallel
/// slack the partitioning leaves per thread), and the SIMD variant
/// (vector width of the tier the schedule resolves to, and whether the
/// N tile fills whole vectors of it). All scaled to be O(1).
std::vector<double> featurize(const tensor::Schedule& s,
                              const TaskShape& shape);

class CostModel {
 public:
  /// lambda: ridge regularization strength.
  explicit CostModel(double lambda = 1e-3) : lambda_(lambda) {}

  /// Adds a measurement (throughput in arbitrary consistent units).
  void add_sample(const tensor::Schedule& s, const TaskShape& shape,
                  double throughput);

  /// Refits the regressor on all samples. No-op with < 2 samples.
  void fit();

  /// Predicted throughput; 0 until fitted.
  double predict(const tensor::Schedule& s, const TaskShape& shape) const;

  bool fitted() const noexcept { return fitted_; }
  std::size_t num_samples() const noexcept { return targets_.size(); }

 private:
  double lambda_;
  bool fitted_ = false;
  std::vector<std::vector<double>> features_;
  std::vector<double> targets_;
  std::vector<double> weights_;  // kNumFeatures + 1 (bias last)
};

}  // namespace tvmec::tune
