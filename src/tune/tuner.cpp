#include "tune/tuner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tvmec::tune {

const char* to_string(Policy p) noexcept {
  switch (p) {
    case Policy::Grid:
      return "grid";
    case Policy::Random:
      return "random";
    case Policy::Evolutionary:
      return "evolutionary";
    case Policy::ModelGuided:
      return "model-guided";
  }
  return "?";
}

double TuneResult::best_after(std::size_t n) const {
  double best = 0.0;
  const std::size_t limit = std::min(n, history.size());
  for (std::size_t i = 0; i < limit; ++i)
    best = std::max(best, history[i].throughput);
  return best;
}

namespace {

/// Shared measurement bookkeeping: records the trial (absorbing
/// measurement failures as failed trials) and tracks the best.
class Recorder {
 public:
  Recorder(const MeasureFn& measure, std::size_t budget)
      : measure_(measure), budget_(budget) {}

  bool exhausted() const noexcept { return result_.history.size() >= budget_; }

  const TrialRecord& run(const tensor::Schedule& s) {
    TrialRecord rec{s, 0.0, false};
    try {
      rec.throughput = measure_(s);
    } catch (...) {
      rec.failed = true;  // a crashed measurement is a failed trial
    }
    if (!rec.failed &&
        (!std::isfinite(rec.throughput) || rec.throughput <= 0.0)) {
      rec.failed = true;  // NaN/Inf/non-positive: unusable measurement
      rec.throughput = 0.0;
    }
    if (rec.failed) ++result_.failed_trials;
    result_.history.push_back(rec);
    if (result_.history.size() == 1) result_.best_schedule = s;
    if (!rec.failed && rec.throughput > result_.best_throughput) {
      result_.best_throughput = rec.throughput;
      result_.best_schedule = s;
    }
    return result_.history.back();
  }

  TuneResult take() && { return std::move(result_); }

 private:
  const MeasureFn& measure_;
  std::size_t budget_;
  TuneResult result_;
};

void run_grid(const SearchSpace& space, Recorder& rec) {
  for (std::size_t i = 0; i < space.size() && !rec.exhausted(); ++i)
    rec.run(space.at(i));
}

void run_random(const SearchSpace& space, Recorder& rec,
                std::mt19937_64& rng) {
  while (!rec.exhausted()) rec.run(space.sample(rng));
}

void run_evolutionary(const SearchSpace& space, Recorder& rec,
                      std::mt19937_64& rng, std::size_t population) {
  population = std::max<std::size_t>(population, 4);
  std::vector<TrialRecord> pool;
  for (std::size_t i = 0; i < population && !rec.exhausted(); ++i) {
    const tensor::Schedule s = space.sample(rng);
    // Failed trials enter the pool at throughput 0, so selection culls
    // them on the next generation.
    pool.push_back(rec.run(s));
  }
  while (!rec.exhausted()) {
    // Keep the fitter half, refill by mutating survivors.
    std::sort(pool.begin(), pool.end(),
              [](const TrialRecord& a, const TrialRecord& b) {
                return a.throughput > b.throughput;
              });
    pool.resize(std::max<std::size_t>(population / 2, 2));
    const std::size_t survivors = pool.size();
    for (std::size_t i = 0; pool.size() < population && !rec.exhausted();
         ++i) {
      const tensor::Schedule child =
          space.mutate(pool[i % survivors].schedule, rng);
      pool.push_back(rec.run(child));
    }
  }
}

void run_model_guided(const SearchSpace& space, Recorder& rec,
                      std::mt19937_64& rng, const TuneOptions& opt) {
  CostModel model;
  // Bootstrap with random measurements so the model has signal.
  const std::size_t bootstrap = std::max<std::size_t>(opt.measure_per_round, 4);
  for (std::size_t i = 0; i < bootstrap && !rec.exhausted(); ++i) {
    const tensor::Schedule s = space.sample(rng);
    const TrialRecord& trial = rec.run(s);
    // Failed trials are skipped, not fed to the model: a NaN or zero
    // sample would poison the ridge fit for the whole session.
    if (!trial.failed) model.add_sample(s, space.shape(), trial.throughput);
  }
  while (!rec.exhausted()) {
    model.fit();
    // Propose candidates, score them with the model...
    std::vector<tensor::Schedule> candidates;
    candidates.reserve(opt.candidates_per_round);
    for (std::size_t i = 0; i < opt.candidates_per_round; ++i)
      candidates.push_back(space.sample(rng));
    std::sort(candidates.begin(), candidates.end(),
              [&](const tensor::Schedule& a, const tensor::Schedule& b) {
                return model.predict(a, space.shape()) >
                       model.predict(b, space.shape());
              });
    // ...then spend real measurements only on the most promising ones.
    const std::size_t to_measure =
        std::max<std::size_t>(opt.measure_per_round, 1);
    for (std::size_t i = 0; i < to_measure && i < candidates.size() &&
                            !rec.exhausted();
         ++i) {
      const TrialRecord& trial = rec.run(candidates[i]);
      if (!trial.failed)
        model.add_sample(candidates[i], space.shape(), trial.throughput);
    }
  }
}

}  // namespace

TuneResult tune(const SearchSpace& space, const MeasureFn& measure,
                const TuneOptions& options) {
  if (options.trials == 0)
    throw std::invalid_argument("tune: zero trial budget");
  Recorder rec(measure, options.trials);
  std::mt19937_64 rng(options.seed);
  switch (options.policy) {
    case Policy::Grid:
      run_grid(space, rec);
      break;
    case Policy::Random:
      run_random(space, rec, rng);
      break;
    case Policy::Evolutionary:
      run_evolutionary(space, rec, rng, options.population);
      break;
    case Policy::ModelGuided:
      run_model_guided(space, rec, rng, options);
      break;
  }
  return std::move(rec).take();
}

double measure_seconds_median(const std::function<void()>& fn,
                              std::size_t repeats) {
  if (repeats == 0)
    throw std::invalid_argument("measure_seconds_median: zero repeats");
  std::vector<double> samples;
  samples.reserve(repeats);
  for (std::size_t i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(end - start).count());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

}  // namespace tvmec::tune
