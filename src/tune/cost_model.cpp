#include "tune/cost_model.h"

#include <cmath>
#include <stdexcept>

namespace tvmec::tune {

namespace {

constexpr double kL1Bytes = 32.0 * 1024;
constexpr double kL2Bytes = 1024.0 * 1024;

/// Solves the symmetric positive-definite system M x = b in place via
/// Gaussian elimination with partial pivoting (dimension is tiny).
std::vector<double> solve(std::vector<std::vector<double>> m,
                          std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
    std::swap(m[col], m[pivot]);
    std::swap(b[col], b[pivot]);
    if (std::abs(m[col][col]) < 1e-12) continue;  // ridge keeps this rare
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = m[r][col] / m[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) m[r][c] -= f * m[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::abs(m[i][i]) < 1e-12 ? 0.0 : b[i] / m[i][i];
  return x;
}

}  // namespace

std::vector<double> featurize(const tensor::Schedule& s,
                              const TaskShape& shape) {
  const double tm = s.tile_m;
  const double tn = s.tile_n;
  const double bk = s.block_k == 0 ? static_cast<double>(shape.k)
                                   : static_cast<double>(s.block_k);
  const double bn = s.block_n == 0 ? static_cast<double>(shape.n)
                                   : static_cast<double>(s.block_n);
  const double threads = s.num_threads;

  // Operand footprints of one blocked pass, in bytes (8-byte elements).
  const double b_block_bytes = bk * bn * 8.0;
  const double c_strip_bytes = tm * bn * 8.0;

  std::vector<double> f;
  f.reserve(kNumFeatures);
  f.push_back(std::log2(tm));                       // 0 tile height
  f.push_back(std::log2(tn));                       // 1 tile width
  f.push_back(std::log2(tm * tn));                  // 2 register-tile area
  f.push_back(tm * tn / 16.0);                      // 3 accumulator pressure
  f.push_back(std::log2(1.0 + b_block_bytes / kL1Bytes));   // 4 B vs L1
  f.push_back(b_block_bytes <= kL1Bytes ? 1.0 : 0.0);       // 5 L1-resident
  f.push_back(std::log2(1.0 + b_block_bytes / kL2Bytes));   // 6 B vs L2
  f.push_back(std::log2(1.0 + c_strip_bytes / kL1Bytes));   // 7 C strip
  f.push_back(static_cast<double>(shape.k) / bk / 8.0);     // 8 k passes
  f.push_back(static_cast<double>(shape.n) / bn / 8.0);     // 9 n passes
  f.push_back(std::log2(threads));                          // 10 parallelism
  f.push_back(threads > 1 ? 1.0 : 0.0);                     // 11 parallel flag

  // Parallel-axis strategy. The decisive signal for EC shapes: register
  // tiles available along the partitioned axis per thread — M-partitioned
  // EC encodes have ~1 (starved), N-partitioned ones have thousands.
  const double m_tiles = std::ceil(static_cast<double>(shape.m) / tm);
  const double n_tiles = std::ceil(static_cast<double>(shape.n) / tn);
  const double axis_tiles = s.par_axis == tensor::ParAxis::M
                                ? m_tiles
                                : s.par_axis == tensor::ParAxis::N
                                      ? n_tiles
                                      : m_tiles * n_tiles;
  f.push_back(s.par_axis == tensor::ParAxis::N ? 1.0 : 0.0);   // 12 par n
  f.push_back(s.par_axis == tensor::ParAxis::MN ? 1.0 : 0.0);  // 13 par mn
  f.push_back(std::log2(1.0 + axis_tiles / threads));  // 14 tiles/thread
  f.push_back(std::log2(1.0 + static_cast<double>(s.par_grain)));  // 15 grain

  // SIMD variant tier. Featurize what the schedule would EXECUTE on this
  // host (Auto and unavailable tiers resolve), since that is what the
  // measured target reflects. Lanes = 64-bit words per vector register.
  const tensor::KernelVariant v = tensor::resolve_variant(s.variant);
  const double lanes = v == tensor::KernelVariant::Avx512 ? 8.0
                       : v == tensor::KernelVariant::Avx2 ? 4.0
                       : v == tensor::KernelVariant::Neon ? 2.0
                                                          : 1.0;
  f.push_back(std::log2(lanes));                               // 16 width
  f.push_back(std::fmod(tn, lanes) == 0.0 ? 1.0 : 0.0);        // 17 tn fills
  return f;
}

void CostModel::add_sample(const tensor::Schedule& s, const TaskShape& shape,
                           double throughput) {
  if (throughput < 0)
    throw std::invalid_argument("CostModel: negative throughput");
  features_.push_back(featurize(s, shape));
  targets_.push_back(throughput);
}

void CostModel::fit() {
  const std::size_t n = targets_.size();
  if (n < 2) return;
  const std::size_t d = kNumFeatures + 1;  // + bias
  std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> x = features_[s];
    x.push_back(1.0);  // bias
    for (std::size_t i = 0; i < d; ++i) {
      xty[i] += x[i] * targets_[s];
      for (std::size_t j = 0; j < d; ++j) xtx[i][j] += x[i] * x[j];
    }
  }
  for (std::size_t i = 0; i < d; ++i) xtx[i][i] += lambda_;
  weights_ = solve(std::move(xtx), std::move(xty));
  fitted_ = true;
}

double CostModel::predict(const tensor::Schedule& s,
                          const TaskShape& shape) const {
  if (!fitted_) return 0.0;
  std::vector<double> x = featurize(s, shape);
  x.push_back(1.0);
  double y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) y += weights_[i] * x[i];
  return y;
}

}  // namespace tvmec::tune
