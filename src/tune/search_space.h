#pragma once

#include <cstddef>
#include <random>
#include <vector>

#include "tensor/schedule.h"

/// The schedule search space an autotuner explores for one GEMM-shaped
/// task. Mirrors the role of TVM Autoscheduler's sketch+annotation space:
/// register-tile extents, cache-block sizes over K and N, thread count,
/// and — as in TVM, where which loop axis gets the `parallel` annotation
/// is itself a schedule decision — the parallel axis and chunk grain.
/// The SIMD kernel variant is an axis too: only the tiers the RUNNING
/// host actually offers are enumerated, because a measured trial on an
/// unavailable tier would silently benchmark the fallback and poison the
/// log. A lower tier genuinely can win (e.g. AVX2 beating AVX-512 where
/// zmm use drops the core's frequency license), which is why it is
/// searched rather than hardwired to best-available.
namespace tvmec::tune {

/// The problem shape being tuned for (C is m x n, reduction extent k;
/// element = one 64-bit word).
struct TaskShape {
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
};

class SearchSpace {
 public:
  /// Builds the knob menu for a task. `max_threads` caps the thread knob
  /// (pass 1 to restrict tuning to serial schedules).
  SearchSpace(const TaskShape& shape, int max_threads);

  const TaskShape& shape() const noexcept { return shape_; }

  /// Total number of distinct schedules.
  std::size_t size() const noexcept;

  /// The i-th schedule in lexicographic knob order (i < size()).
  tensor::Schedule at(std::size_t i) const;

  /// All schedules, in order. Small enough to materialize (a few hundred).
  std::vector<tensor::Schedule> all() const;

  /// Uniformly random schedule.
  tensor::Schedule sample(std::mt19937_64& rng) const;

  /// Randomly perturbs one knob of `s` (evolutionary-search mutation).
  tensor::Schedule mutate(const tensor::Schedule& s,
                          std::mt19937_64& rng) const;

  const std::vector<int>& tile_m_options() const noexcept { return tile_ms_; }
  const std::vector<int>& tile_n_options() const noexcept { return tile_ns_; }
  const std::vector<std::size_t>& block_k_options() const noexcept {
    return block_ks_;
  }
  const std::vector<std::size_t>& block_n_options() const noexcept {
    return block_ns_;
  }
  const std::vector<int>& thread_options() const noexcept { return threads_; }
  const std::vector<tensor::ParAxis>& par_axis_options() const noexcept {
    return par_axes_;
  }
  const std::vector<std::size_t>& grain_options() const noexcept {
    return grains_;
  }
  const std::vector<tensor::KernelVariant>& variant_options() const noexcept {
    return variants_;
  }

 private:
  TaskShape shape_;
  std::vector<int> tile_ms_;
  std::vector<int> tile_ns_;
  std::vector<std::size_t> block_ks_;
  std::vector<std::size_t> block_ns_;
  std::vector<int> threads_;
  std::vector<tensor::ParAxis> par_axes_;
  std::vector<std::size_t> grains_;
  std::vector<tensor::KernelVariant> variants_;
};

}  // namespace tvmec::tune
