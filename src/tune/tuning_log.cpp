#include "tune/tuning_log.h"

#include <fstream>
#include <sstream>

namespace tvmec::tune {

namespace {

std::string shape_key(const TaskShape& shape) {
  return std::to_string(shape.m) + "x" + std::to_string(shape.n) + "x" +
         std::to_string(shape.k);
}

}  // namespace

void append_log(const std::string& path, const TaskShape& shape,
                const TuneResult& result) {
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("append_log: cannot open " + path);
  const std::string key = shape_key(shape);
  for (const TrialRecord& rec : result.history) {
    out << key << " | " << rec.schedule.to_string() << " | "
        << rec.throughput << "\n";
  }
  if (!out) throw std::runtime_error("append_log: write failed on " + path);
}

std::optional<TuneResult> load_log(const std::string& path,
                                   const TaskShape& shape) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  const std::string key = shape_key(shape);
  TuneResult result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string rec_key, sep1, schedule_text, sep2;
    double throughput = 0;
    // key | mtAxB kbC nbD tE | throughput
    std::string mt, kb, nb, t;
    if (!(fields >> rec_key >> sep1 >> mt >> kb >> nb >> t >> sep2 >>
          throughput) ||
        sep1 != "|" || sep2 != "|")
      throw std::runtime_error("load_log: malformed record at " + path +
                               ":" + std::to_string(line_no));
    if (rec_key != key) continue;
    TrialRecord rec;
    rec.schedule =
        tensor::Schedule::parse(mt + " " + kb + " " + nb + " " + t);
    rec.throughput = throughput;
    if (rec.throughput > result.best_throughput) {
      result.best_throughput = rec.throughput;
      result.best_schedule = rec.schedule;
    }
    result.history.push_back(std::move(rec));
  }
  if (result.history.empty()) return std::nullopt;
  return result;
}

}  // namespace tvmec::tune
