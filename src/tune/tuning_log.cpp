#include "tune/tuning_log.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/variant.h"

namespace tvmec::tune {

namespace {

std::string shape_key(const TaskShape& shape) {
  return std::to_string(shape.m) + "x" + std::to_string(shape.n) + "x" +
         std::to_string(shape.k);
}

TaskShape parse_shape_key(const std::string& key, const std::string& path,
                          std::size_t line_no) {
  TaskShape shape;
  char x1 = 0, x2 = 0;
  std::istringstream in(key);
  if (!(in >> shape.m >> x1 >> shape.n >> x2 >> shape.k) || x1 != 'x' ||
      x2 != 'x')
    throw std::runtime_error("load_log: malformed shape key at " + path +
                             ":" + std::to_string(line_no));
  return shape;
}

}  // namespace

void append_log(const std::string& path, const TaskShape& shape,
                const TuneResult& result) {
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("append_log: cannot open " + path);
  const std::string key = shape_key(shape);
  for (const TrialRecord& rec : result.history) {
    if (rec.failed) continue;  // only real measurements belong in the log
    out << key << " | " << rec.schedule.to_string() << " | "
        << rec.throughput << "\n";
  }
  if (!out) throw std::runtime_error("append_log: write failed on " + path);
}

std::optional<TuneResult> load_log(const std::string& path,
                                   const TaskShape& shape,
                                   LoadLogStats* stats) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  const std::string key = shape_key(shape);
  TuneResult result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    // key | <schedule string, token count era-dependent> | throughput
    const std::size_t bar1 = line.find('|');
    const std::size_t bar2 =
        bar1 == std::string::npos ? std::string::npos : line.find('|', bar1 + 1);
    if (bar2 == std::string::npos)
      throw std::runtime_error("load_log: malformed record at " + path +
                               ":" + std::to_string(line_no));
    std::string rec_key;
    double throughput = 0;
    std::istringstream key_field(line.substr(0, bar1));
    std::istringstream value_field(line.substr(bar2 + 1));
    if (!(key_field >> rec_key) || !(value_field >> throughput))
      throw std::runtime_error("load_log: malformed record at " + path +
                               ":" + std::to_string(line_no));
    if (rec_key != key) continue;
    std::string schedule_text = line.substr(bar1 + 1, bar2 - bar1 - 1);
    const std::size_t first = schedule_text.find_first_not_of(' ');
    const std::size_t last = schedule_text.find_last_not_of(' ');
    if (first == std::string::npos)
      throw std::runtime_error("load_log: malformed record at " + path +
                               ":" + std::to_string(line_no));
    schedule_text = schedule_text.substr(first, last - first + 1);
    TrialRecord rec;
    try {
      rec.schedule = tensor::Schedule::parse(schedule_text);
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("load_log: bad schedule at " + path + ":" +
                               std::to_string(line_no));
    }
    if (rec.schedule.variant != tensor::KernelVariant::Auto &&
        !tensor::variant_available(rec.schedule.variant)) {
      // Tuned on a machine with a tier this host lacks; its measurement
      // is meaningless here. Skip it, keep the rest of the log.
      std::fprintf(stderr,
                   "tvmec: load_log: %s:%zu: dropping record tuned for "
                   "unavailable kernel variant '%s'\n",
                   path.c_str(), line_no,
                   tensor::to_string(rec.schedule.variant));
      if (stats != nullptr) ++stats->dropped_unavailable_variant;
      continue;
    }
    rec.throughput = throughput;
    if (rec.throughput > result.best_throughput) {
      result.best_throughput = rec.throughput;
      result.best_schedule = rec.schedule;
    }
    result.history.push_back(std::move(rec));
  }
  if (result.history.empty()) return std::nullopt;
  return result;
}

std::vector<LogRecord> load_log_all(const std::string& path,
                                    LoadLogStats* stats) {
  std::ifstream in(path);
  if (!in) return {};
  std::vector<LogRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t bar1 = line.find('|');
    const std::size_t bar2 =
        bar1 == std::string::npos ? std::string::npos : line.find('|', bar1 + 1);
    if (bar2 == std::string::npos)
      throw std::runtime_error("load_log: malformed record at " + path +
                               ":" + std::to_string(line_no));
    std::string rec_key;
    double throughput = 0;
    std::istringstream key_field(line.substr(0, bar1));
    std::istringstream value_field(line.substr(bar2 + 1));
    if (!(key_field >> rec_key) || !(value_field >> throughput))
      throw std::runtime_error("load_log: malformed record at " + path +
                               ":" + std::to_string(line_no));
    LogRecord rec;
    rec.shape = parse_shape_key(rec_key, path, line_no);
    std::string schedule_text = line.substr(bar1 + 1, bar2 - bar1 - 1);
    const std::size_t first = schedule_text.find_first_not_of(' ');
    const std::size_t last = schedule_text.find_last_not_of(' ');
    if (first == std::string::npos)
      throw std::runtime_error("load_log: malformed record at " + path +
                               ":" + std::to_string(line_no));
    schedule_text = schedule_text.substr(first, last - first + 1);
    try {
      rec.schedule = tensor::Schedule::parse(schedule_text);
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("load_log: bad schedule at " + path + ":" +
                               std::to_string(line_no));
    }
    if (rec.schedule.variant != tensor::KernelVariant::Auto &&
        !tensor::variant_available(rec.schedule.variant)) {
      std::fprintf(stderr,
                   "tvmec: load_log: %s:%zu: dropping record tuned for "
                   "unavailable kernel variant '%s'\n",
                   path.c_str(), line_no,
                   tensor::to_string(rec.schedule.variant));
      if (stats != nullptr) ++stats->dropped_unavailable_variant;
      continue;
    }
    rec.throughput = throughput;
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace tvmec::tune
