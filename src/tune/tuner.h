#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "tensor/schedule.h"
#include "tune/cost_model.h"
#include "tune/search_space.h"

/// Autotuning drivers, standing in for TVM's Autoscheduler (§6.1 of the
/// paper: "TVM-EC uses TVM's learning-based Autoscheduler ... tunes for
/// 20000 trials, and uses the best configuration found").
///
/// A *trial* is one measured execution of a candidate schedule. Four
/// policies are provided so the benefit of learned search can itself be
/// evaluated (bench E5): exhaustive grid, uniform random, evolutionary,
/// and cost-model-guided (Ansor-style sample -> predict -> measure ->
/// retrain).
namespace tvmec::tune {

/// Measures a candidate schedule; returns achieved throughput (any
/// consistent higher-is-better unit; encoders use bytes/second).
using MeasureFn = std::function<double(const tensor::Schedule&)>;

enum class Policy { Grid, Random, Evolutionary, ModelGuided };

const char* to_string(Policy p) noexcept;

struct TuneOptions {
  Policy policy = Policy::ModelGuided;
  std::size_t trials = 128;       ///< measurement budget
  std::uint64_t seed = 42;        ///< rng seed (deterministic search)
  // Evolutionary knobs.
  std::size_t population = 16;
  // Model-guided knobs.
  std::size_t candidates_per_round = 64;  ///< proposals scored by the model
  std::size_t measure_per_round = 8;      ///< top predictions measured
};

struct TrialRecord {
  tensor::Schedule schedule;
  double throughput = 0.0;
  /// The MeasureFn threw, or returned NaN/Inf/<= 0 — a failed trial.
  /// Failed trials still consume budget but never become the best and
  /// are never fed to the cost model.
  bool failed = false;
};

struct TuneResult {
  tensor::Schedule best_schedule;
  double best_throughput = 0.0;
  std::vector<TrialRecord> history;  ///< in measurement order
  std::size_t failed_trials = 0;     ///< trials whose measurement failed

  /// Best throughput among the first `n` trials (tuning-curve helper).
  double best_after(std::size_t n) const;
};

/// Runs the requested search policy for `options.trials` measurements.
/// Throws std::invalid_argument on a zero trial budget.
///
/// Measurement is fallible: a MeasureFn that throws or returns a
/// non-finite or non-positive value marks that trial failed (recorded in
/// failed_trials and per-record `failed`) and the search continues — a
/// flaky measurement environment degrades tuning quality, it does not
/// abort it or poison the cost model. If every trial fails, the first
/// candidate tried is returned as best_schedule (a valid point of the
/// space) with best_throughput 0.
TuneResult tune(const SearchSpace& space, const MeasureFn& measure,
                const TuneOptions& options);

/// Times `fn` (already-warm) `repeats` times and returns the *median*
/// seconds per invocation — the standard robust estimator for
/// microbenchmark-style measurement.
double measure_seconds_median(const std::function<void()>& fn,
                              std::size_t repeats);

}  // namespace tvmec::tune
