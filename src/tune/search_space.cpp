#include "tune/search_space.h"

#include <algorithm>
#include <stdexcept>

namespace tvmec::tune {

SearchSpace::SearchSpace(const TaskShape& shape, int max_threads)
    : shape_(shape) {
  if (shape.m == 0 || shape.n == 0 || shape.k == 0)
    throw std::invalid_argument("SearchSpace: zero task dimension");
  if (max_threads < 1)
    throw std::invalid_argument("SearchSpace: max_threads < 1");

  tile_ms_ = {1, 2, 4, 8};
  // Wide N tiles map onto the SIMD-specialized microkernels; cap at the
  // problem width.
  for (const int t : {4, 8, 16, 32, 64})
    if (static_cast<std::size_t>(t) <= shape.n) tile_ns_.push_back(t);
  if (tile_ns_.empty()) tile_ns_.push_back(1);

  // K is small for erasure codes (k*w rows), so offer fractions of it.
  block_ks_ = {0};
  for (const std::size_t b : {8u, 16u, 32u, 64u, 128u})
    if (b < shape.k) block_ks_.push_back(b);

  // N blocks sized around L1/L2-resident strips of B.
  block_ns_ = {0};
  for (const std::size_t b : {256u, 512u, 1024u, 2048u, 4096u, 8192u})
    if (b < shape.n) block_ns_.push_back(b);

  for (int t = 1; t <= max_threads; t *= 2) threads_.push_back(t);

  // Parallelization strategy only matters with real parallelism; a serial
  // space keeps the canonical single entry so serial tuning sessions do
  // not waste trials on nine perf-identical duplicates per point.
  if (max_threads > 1) {
    par_axes_ = {tensor::ParAxis::N, tensor::ParAxis::M, tensor::ParAxis::MN};
    grains_ = {0, 1, 4};
  } else {
    par_axes_ = {tensor::ParAxis::N};
    grains_ = {0};
  }

  // Concrete variants this host can actually measure (Scalar always,
  // then whatever CPUID detection offers). Deliberately no Auto entry:
  // every trial must pin the tier it timed, or the log would not
  // reproduce on a host whose "best" differs.
  variants_ = tensor::available_variants();
}

std::size_t SearchSpace::size() const noexcept {
  return tile_ms_.size() * tile_ns_.size() * block_ks_.size() *
         block_ns_.size() * threads_.size() * par_axes_.size() *
         grains_.size() * variants_.size();
}

tensor::Schedule SearchSpace::at(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("SearchSpace::at");
  tensor::Schedule s;
  s.tile_m = tile_ms_[i % tile_ms_.size()];
  i /= tile_ms_.size();
  s.tile_n = tile_ns_[i % tile_ns_.size()];
  i /= tile_ns_.size();
  s.block_k = block_ks_[i % block_ks_.size()];
  i /= block_ks_.size();
  s.block_n = block_ns_[i % block_ns_.size()];
  i /= block_ns_.size();
  s.num_threads = threads_[i % threads_.size()];
  i /= threads_.size();
  s.par_axis = par_axes_[i % par_axes_.size()];
  i /= par_axes_.size();
  s.par_grain = grains_[i % grains_.size()];
  i /= grains_.size();
  s.variant = variants_[i % variants_.size()];
  return s;
}

std::vector<tensor::Schedule> SearchSpace::all() const {
  std::vector<tensor::Schedule> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(at(i));
  return out;
}

tensor::Schedule SearchSpace::sample(std::mt19937_64& rng) const {
  std::uniform_int_distribution<std::size_t> dist(0, size() - 1);
  return at(dist(rng));
}

tensor::Schedule SearchSpace::mutate(const tensor::Schedule& s,
                                     std::mt19937_64& rng) const {
  tensor::Schedule out = s;
  std::uniform_int_distribution<int> knob_dist(0, 7);
  const auto pick = [&rng](const auto& options) {
    std::uniform_int_distribution<std::size_t> d(0, options.size() - 1);
    return options[d(rng)];
  };
  switch (knob_dist(rng)) {
    case 0:
      out.tile_m = pick(tile_ms_);
      break;
    case 1:
      out.tile_n = pick(tile_ns_);
      break;
    case 2:
      out.block_k = pick(block_ks_);
      break;
    case 3:
      out.block_n = pick(block_ns_);
      break;
    case 4:
      out.num_threads = pick(threads_);
      break;
    case 5:
      out.par_axis = pick(par_axes_);
      break;
    case 6:
      out.par_grain = pick(grains_);
      break;
    default:
      out.variant = pick(variants_);
      break;
  }
  return out;
}

}  // namespace tvmec::tune
