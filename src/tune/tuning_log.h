#pragma once

#include <optional>
#include <string>

#include "tune/tuner.h"

/// Persistence for tuning results, mirroring TVM's tuning-record files:
/// measure once, reuse the best schedule forever (the paper's §6.1 setup
/// tunes for 20 000 trials precisely because the result is cached).
///
/// File format: one record per line,
///   `<task m>x<task n>x<task k> | <schedule to_string> | <throughput>`
/// Lines starting with '#' are comments. The format is stable and
/// human-diffable, like TVM's JSON logs but simpler.
namespace tvmec::tune {

/// Appends every trial of `result` for `shape` to the log at `path`
/// (creating the file if needed). Throws std::runtime_error on I/O
/// failure.
void append_log(const std::string& path, const TaskShape& shape,
                const TuneResult& result);

/// Reads all records for the exact task shape and returns the recorded
/// history (in file order) as a TuneResult whose best_* fields are the
/// best recorded entry. Returns nullopt if the file does not exist or
/// holds no matching record. Throws std::runtime_error on a malformed
/// record line (corrupt log files should fail loudly, not silently
/// detune a production encoder).
std::optional<TuneResult> load_log(const std::string& path,
                                   const TaskShape& shape);

}  // namespace tvmec::tune
