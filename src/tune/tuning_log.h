#pragma once

#include <optional>
#include <string>

#include "tune/tuner.h"

/// Persistence for tuning results, mirroring TVM's tuning-record files:
/// measure once, reuse the best schedule forever (the paper's §6.1 setup
/// tunes for 20 000 trials precisely because the result is cached).
///
/// File format: one record per line,
///   `<task m>x<task n>x<task k> | <schedule to_string> | <throughput>`
/// Lines starting with '#' are comments. The format is stable and
/// human-diffable, like TVM's JSON logs but simpler. Older logs whose
/// schedule strings predate the parallel-axis or kernel-variant knobs
/// parse with those knobs defaulted (see Schedule::parse), so a log
/// survives library upgrades.
namespace tvmec::tune {

/// What load_log skipped and why (logs travel between machines, so some
/// records may not apply to the loading host).
struct LoadLogStats {
  /// Records whose schedule names a concrete kernel variant this host
  /// cannot execute (e.g. an avx512-tuned record loaded on an AVX2-only
  /// box). Dropped with a stderr warning rather than rejected: the rest
  /// of the log is still valid history here.
  std::size_t dropped_unavailable_variant = 0;
};

/// Appends every trial of `result` for `shape` to the log at `path`
/// (creating the file if needed). Throws std::runtime_error on I/O
/// failure.
void append_log(const std::string& path, const TaskShape& shape,
                const TuneResult& result);

/// Reads all records for the exact task shape and returns the recorded
/// history (in file order) as a TuneResult whose best_* fields are the
/// best recorded entry. Returns nullopt if the file does not exist or
/// holds no matching record. Throws std::runtime_error on a malformed
/// record line (corrupt log files should fail loudly, not silently
/// detune a production encoder). Records tuned for a kernel variant the
/// running host lacks are NOT an error: they are skipped with a counted
/// warning (`stats`, optional) — a cross-machine log is partially
/// usable, a corrupt one is not.
std::optional<TuneResult> load_log(const std::string& path,
                                   const TaskShape& shape,
                                   LoadLogStats* stats = nullptr);

/// One parsed log line, shape included.
struct LogRecord {
  TaskShape shape;
  tensor::Schedule schedule;
  double throughput = 0.0;
};

/// Reads *every* record in the log, in file order, regardless of task
/// shape — the warm-start path of the serving-layer schedule cache,
/// which wants the whole file in one pass instead of one load_log()
/// scan per shape it might ever see. Same error contract as load_log:
/// a missing file returns an empty vector, a malformed line throws,
/// and records tuned for a kernel variant this host lacks are skipped
/// with a counted warning.
std::vector<LogRecord> load_log_all(const std::string& path,
                                    LoadLogStats* stats = nullptr);

}  // namespace tvmec::tune
