#include "testing/fuzz_config.h"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "gf/gf.h"

namespace tvmec::testing {

namespace {

constexpr std::string_view kMagic = "fuzz:v1";

const Scenario kScenarios[] = {
    Scenario::RsEncode,         Scenario::RsDecode,
    Scenario::LrcRoundTrip,     Scenario::StorageRoundTrip,
    Scenario::StorageFaulted,   Scenario::Serve,
    Scenario::ServeChaos,       Scenario::ServeShard,
    Scenario::Cluster,          Scenario::ClusterRepair,
    Scenario::ClusterHeal};

const ec::RsFamily kFamilies[] = {
    ec::RsFamily::VandermondeSystematic, ec::RsFamily::Cauchy,
    ec::RsFamily::CauchyGood, ec::RsFamily::CauchyBest};

Scenario scenario_from_name(std::string_view name) {
  for (const Scenario s : kScenarios)
    if (name == to_string(s)) return s;
  throw std::invalid_argument("parse_repro: unknown scenario '" +
                              std::string(name) + "'");
}

ec::RsFamily family_from_name(std::string_view name) {
  for (const ec::RsFamily f : kFamilies)
    if (name == to_string(f)) return f;
  throw std::invalid_argument("parse_repro: unknown family '" +
                              std::string(name) + "'");
}

std::uint64_t parse_u64(std::string_view text, std::string_view key) {
  std::uint64_t value = 0;
  const auto [ptr, err] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (err != std::errc{} || ptr != text.data() + text.size())
    throw std::invalid_argument("parse_repro: bad number '" +
                                std::string(text) + "' for key " +
                                std::string(key));
  return value;
}

std::vector<std::size_t> parse_losses(std::string_view text) {
  std::vector<std::size_t> out;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    const std::string_view item = text.substr(0, comma);
    out.push_back(static_cast<std::size_t>(parse_u64(item, "loss")));
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  return out;
}

}  // namespace

const char* to_string(Scenario s) noexcept {
  switch (s) {
    case Scenario::RsEncode:
      return "rs-encode";
    case Scenario::RsDecode:
      return "rs-decode";
    case Scenario::LrcRoundTrip:
      return "lrc";
    case Scenario::StorageRoundTrip:
      return "store";
    case Scenario::StorageFaulted:
      return "store-fault";
    case Scenario::Serve:
      return "serve";
    case Scenario::ServeChaos:
      return "serve-chaos";
    case Scenario::ServeShard:
      return "serve-shard";
    case Scenario::Cluster:
      return "cluster";
    case Scenario::ClusterRepair:
      return "cluster-repair";
    case Scenario::ClusterHeal:
      return "cluster-heal";
  }
  return "?";
}

void FuzzConfig::validate() const {
  if (k == 0) throw std::invalid_argument("FuzzConfig: k must be >= 1");
  if (!gf::is_supported_w(w))
    throw std::invalid_argument("FuzzConfig: unsupported w=" +
                                std::to_string(w));
  if (unit_size == 0 || unit_size % w != 0)
    throw std::invalid_argument(
        "FuzzConfig: unit_size must be a nonzero multiple of w");
  if (scenario == Scenario::LrcRoundTrip) {
    if (l == 0 || k % l != 0)
      throw std::invalid_argument("FuzzConfig: LRC needs l >= 1 dividing k");
    if (r == 0)
      throw std::invalid_argument("FuzzConfig: LRC needs g (= r) >= 1");
  } else if (l != 0) {
    throw std::invalid_argument("FuzzConfig: l only applies to scenario lrc");
  }
  if (frag != 0 && scenario != Scenario::RsEncode)
    throw std::invalid_argument(
        "FuzzConfig: frag only applies to scenario rs-encode");
  if (variant != tensor::KernelVariant::Auto &&
      scenario != Scenario::RsEncode)
    throw std::invalid_argument(
        "FuzzConfig: var only applies to scenario rs-encode");
  // LRC local parities are plain XOR rows; only the k data points plus g
  // global parities need distinct field points. MDS codes need all n.
  const std::size_t field_points =
      scenario == Scenario::LrcRoundTrip ? k + r : n();
  if (field_points > (std::size_t{1} << w))
    throw std::invalid_argument("FuzzConfig: code shape exceeds field size");
  // Storage and cluster scenarios place n units over n + 2 nodes;
  // losses name nodes.
  const std::size_t loss_space =
      (scenario == Scenario::StorageRoundTrip ||
       scenario == Scenario::StorageFaulted ||
       scenario == Scenario::Cluster ||
       scenario == Scenario::ClusterRepair ||
       scenario == Scenario::ClusterHeal)
          ? n() + 2
          : n();
  for (const std::size_t id : losses)
    if (id >= loss_space)
      throw std::invalid_argument("FuzzConfig: loss id " + std::to_string(id) +
                                  " out of range");
}

std::string format_repro(const FuzzConfig& config) {
  std::ostringstream out;
  out << kMagic << " s=" << to_string(config.scenario)
      << " f=" << to_string(config.family) << " k=" << config.k
      << " r=" << config.r;
  if (config.l != 0) out << " l=" << config.l;
  out << " w=" << config.w << " u=" << config.unit_size
      << " seed=" << config.seed;
  if (!config.losses.empty()) {
    out << " loss=";
    for (std::size_t i = 0; i < config.losses.size(); ++i)
      out << (i ? "," : "") << config.losses[i];
  }
  if (config.sched != 0) out << " sched=" << config.sched;
  if (config.frag != 0) out << " frag=" << config.frag;
  if (config.variant != tensor::KernelVariant::Auto)
    out << " var=" << tensor::to_string(config.variant);
  return out.str();
}

FuzzConfig parse_repro(const std::string& text) {
  std::istringstream in(text);
  std::string token;
  if (!(in >> token) || token != kMagic)
    throw std::invalid_argument(
        "parse_repro: reproducer must start with 'fuzz:v1'");
  FuzzConfig config;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("parse_repro: token '" + token +
                                  "' is not key=value");
    const std::string_view key = std::string_view(token).substr(0, eq);
    const std::string_view value = std::string_view(token).substr(eq + 1);
    if (key == "s") {
      config.scenario = scenario_from_name(value);
    } else if (key == "f") {
      config.family = family_from_name(value);
    } else if (key == "k") {
      config.k = static_cast<std::size_t>(parse_u64(value, key));
    } else if (key == "r") {
      config.r = static_cast<std::size_t>(parse_u64(value, key));
    } else if (key == "l") {
      config.l = static_cast<std::size_t>(parse_u64(value, key));
    } else if (key == "w") {
      config.w = static_cast<unsigned>(parse_u64(value, key));
    } else if (key == "u") {
      config.unit_size = static_cast<std::size_t>(parse_u64(value, key));
    } else if (key == "seed") {
      config.seed = parse_u64(value, key);
    } else if (key == "loss") {
      config.losses = parse_losses(value);
    } else if (key == "sched") {
      config.sched = static_cast<std::size_t>(parse_u64(value, key));
    } else if (key == "frag") {
      config.frag = parse_u64(value, key);
    } else if (key == "var") {
      const auto v = tensor::variant_from_string(value);
      if (!v)
        throw std::invalid_argument("parse_repro: unknown variant '" +
                                    std::string(value) + "'");
      config.variant = *v;
    } else {
      throw std::invalid_argument("parse_repro: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  config.validate();
  return config;
}

FuzzConfig random_config(std::mt19937_64& rng) {
  const auto pick = [&](std::size_t lo, std::size_t hi) {
    return lo + rng() % (hi - lo + 1);
  };
  FuzzConfig c;
  c.scenario = kScenarios[rng() % std::size(kScenarios)];
  c.family = kFamilies[rng() % std::size(kFamilies)];
  const unsigned ws[] = {4, 8, 16};
  c.w = ws[rng() % 3];
  c.seed = rng();
  c.sched = pick(0, 5);

  if (c.scenario == Scenario::LrcRoundTrip) {
    // k with a nontrivial divisor lattice; l | k; g (stored in r) small.
    const std::size_t ks[] = {2, 4, 6, 8, 9, 12};
    c.k = ks[rng() % std::size(ks)];
    std::vector<std::size_t> divisors;
    for (std::size_t d = 1; d <= c.k; ++d)
      if (c.k % d == 0) divisors.push_back(d);
    c.l = divisors[rng() % divisors.size()];
    c.r = pick(1, 3);
  } else {
    // Over-weight the k == 1 and r == 0 degenerate shapes.
    c.k = rng() % 4 == 0 ? 1 : pick(1, 10);
    if (c.scenario == Scenario::RsEncode)
      c.r = rng() % 6 == 0 ? 0 : pick(1, 4);
    else
      c.r = pick(1, c.scenario == Scenario::RsDecode ? 4 : 3);
  }

  // Over-weight unit_size == w: single-byte packets, the padding path.
  c.unit_size = rng() % 5 == 0 ? c.w : c.w * pick(1, 32);

  // About a quarter of encode iterations also run the scattered arms.
  if (c.scenario == Scenario::RsEncode && rng() % 4 == 0)
    c.frag = rng() | 1;  // any nonzero seed

  // About a third of encode iterations pin a SIMD tier this host offers
  // (drawn uniformly, so scalar is exercised as a forced tier too).
  if (c.scenario == Scenario::RsEncode && rng() % 3 == 0) {
    const std::vector<tensor::KernelVariant> menu =
        tensor::available_variants();
    c.variant = menu[rng() % menu.size()];
  }

  // Loss pattern. Decode scenarios erase units; storage fails nodes.
  // The serve scenario feeds its losses to decode submissions (empty =
  // an encode-only request mix).
  if (c.scenario == Scenario::RsDecode ||
      c.scenario == Scenario::LrcRoundTrip ||
      c.scenario == Scenario::Serve || c.scenario == Scenario::ServeChaos ||
      c.scenario == Scenario::ServeShard) {
    const std::size_t budget =
        c.scenario == Scenario::LrcRoundTrip ? c.l + c.r + 1 : c.r;
    const std::size_t lo = c.scenario == Scenario::Serve ||
                                   c.scenario == Scenario::ServeChaos ||
                                   c.scenario == Scenario::ServeShard
                               ? 0
                               : 1;
    const std::size_t e = std::min(pick(lo, std::max<std::size_t>(budget, lo)),
                                   c.n());
    std::vector<std::size_t> ids(c.n());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    std::shuffle(ids.begin(), ids.end(), rng);
    ids.resize(e);
    // Usually sorted; sometimes left shuffled, sometimes with a
    // duplicate appended — decoders must tolerate both.
    if (rng() % 4 != 0) std::sort(ids.begin(), ids.end());
    if (!ids.empty() && rng() % 8 == 0)
      ids.push_back(ids[rng() % ids.size()]);
    c.losses = std::move(ids);
  } else if (c.scenario == Scenario::StorageRoundTrip ||
             c.scenario == Scenario::StorageFaulted ||
             c.scenario == Scenario::Cluster ||
             c.scenario == Scenario::ClusterRepair ||
             c.scenario == Scenario::ClusterHeal) {
    const std::size_t num_nodes = c.n() + 2;
    const std::size_t e = pick(0, c.r);
    std::vector<std::size_t> nodes(num_nodes);
    for (std::size_t i = 0; i < nodes.size(); ++i) nodes[i] = i;
    std::shuffle(nodes.begin(), nodes.end(), rng);
    nodes.resize(e);
    std::sort(nodes.begin(), nodes.end());
    c.losses = std::move(nodes);
  }
  c.validate();
  return c;
}

}  // namespace tvmec::testing
