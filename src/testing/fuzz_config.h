#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "ec/reed_solomon.h"
#include "tensor/variant.h"

/// Configuration space of the cross-backend differential fuzzer: one
/// FuzzConfig pins down everything a fuzz iteration does — the scenario,
/// the code shape, the unit size, the payload seed, the loss pattern and
/// the GEMM schedule — so a single short string reproduces any failure
/// byte for byte on any machine.
namespace tvmec::testing {

/// What one fuzz iteration exercises.
enum class Scenario {
  RsEncode,        ///< every backend's encode vs the embedding oracles
  RsDecode,        ///< every backend executing a DecodePlan vs originals
  LrcRoundTrip,    ///< LrcCodec encode/decode vs the bitpacket reference
  StorageRoundTrip,///< StripeStore put / fail_node / get, fault-free
  StorageFaulted,  ///< same under a seeded FaultInjector + scrub
  Serve,           ///< random request mix through EcService (manual pump)
                   ///< vs a sequential per-request Codec oracle, including
                   ///< queue-capacity admission accounting
  ServeChaos,      ///< Serve plus chaos: random cancels, pre-expired
                   ///< deadlines, shedding, and injected backend faults
                   ///< with the circuit breaker enabled — completed bytes
                   ///< must still match the oracle (faults may only cost
                   ///< latency), and the widened counter identities must
                   ///< balance exactly
  ServeShard,      ///< random tenant/client mixes through the sharded
                   ///< multi-tenant front (ShardedEcService, manual pump)
                   ///< vs the sequential per-request Codec oracle: client
                   ///< hashing, front-level QoS shares, and bounded work
                   ///< stealing may only decide *where* a request runs or
                   ///< whether it is admitted — completed bytes must match
                   ///< the oracle, rejected/expired requests must leave
                   ///< their buffers untouched, and the per-tenant counter
                   ///< identities must balance unconditionally (each
                   ///< tenant, the tenant aggregate vs the front
                   ///< aggregate, and the per-shard decomposition)
  Cluster,         ///< simulated multi-node cluster put / fail_node / get
                   ///< under seeded disk + link chaos (drops, duplicates,
                   ///< partition windows): returned bytes must match the
                   ///< original payload (degraded reads and hedging may
                   ///< only cost latency), and the network byte ledger
                   ///< must balance
  ClusterRepair,   ///< cluster DAG repair under chaos with mid-repair
                   ///< faults (helper crashes, partitions): repair
                   ///< counter identity and network ledger must balance,
                   ///< and a healed cluster must read back byte-identical
                   ///< to the single-process oracle (the original bytes)
  ClusterHeal,     ///< the self-healing control plane under a seeded
                   ///< campaign of node crashes/revives, partitions, and
                   ///< disk corruption against a *running* healer
                   ///< (membership heartbeats + risk-prioritized queue +
                   ///< token bucket): after convergence every stripe must
                   ///< be fully redundant, reads must match the original
                   ///< payloads byte for byte, and the membership, queue,
                   ///< repair, and network-ledger identities must balance
                   ///< unconditionally
};

const char* to_string(Scenario s) noexcept;

/// One point in the fuzz space. Defaults form a small valid RS config.
struct FuzzConfig {
  Scenario scenario = Scenario::RsEncode;
  ec::RsFamily family = ec::RsFamily::CauchyGood;
  std::size_t k = 4;  ///< data units (LrcRoundTrip: data units, l must divide)
  std::size_t r = 2;  ///< parities (LrcRoundTrip: g, the global parities)
  std::size_t l = 0;  ///< LrcRoundTrip only: local groups (0 otherwise)
  unsigned w = 8;
  std::size_t unit_size = 64;  ///< bytes per unit; any multiple of w
  std::uint64_t seed = 1;      ///< drives payload bytes and fault injection
  /// Losses: erased unit ids (decode scenarios), failed node ids
  /// (storage scenarios), empty for pure-encode runs. Kept verbatim —
  /// deliberately allowed to be unsorted or to hold duplicates, because
  /// tolerating such inputs is part of the decode contract under test.
  std::vector<std::size_t> losses;
  /// Index into the fuzzer's fixed GEMM schedule menu (0 = default
  /// schedule). See DiffFuzzer::schedule_menu().
  std::size_t sched = 0;
  /// Scattered-operand axis (RsEncode only): when nonzero, seeds the
  /// random fragmentation of two extra arms — Codec::encode_scattered
  /// over separately allocated per-unit buffers (aligned and misaligned
  /// mixed), and gemm_xorand_scattered over operands split at random
  /// word boundaries — both compared byte-for-byte against the
  /// contiguous result. 0 = contiguous-only iteration.
  std::uint64_t frag = 0;
  /// Kernel-variant axis (RsEncode only): when not Auto, the iteration
  /// forces this SIMD tier (via the TVMEC_FORCE_VARIANT machinery) for
  /// its GEMM arms and additionally diffs the forced result against a
  /// forced-scalar run of the same config — the cross-variant
  /// byte-equality contract. On a host lacking the tier the force is
  /// ignored with a warning (the repro still runs, on what the host
  /// has). Auto = no forcing, the default dispatch.
  tensor::KernelVariant variant = tensor::KernelVariant::Auto;

  /// Total units in the code (k + r, or k + l + g for LRC).
  std::size_t n() const noexcept {
    return scenario == Scenario::LrcRoundTrip ? k + l + r : k + r;
  }

  /// Throws std::invalid_argument when the config does not describe a
  /// runnable iteration (bad code shape, unit size, or loss ids).
  void validate() const;

  bool operator==(const FuzzConfig&) const = default;
};

/// Serializes a config as a one-line reproducer, e.g.
///   fuzz:v1 s=rs-decode f=cauchy-good k=6 r=3 w=8 u=128 seed=42
///       loss=1,3 sched=2
/// (single line; loss/sched/frag/var omitted when empty/zero/auto).
/// parse_repro is the exact inverse: parse_repro(format_repro(c)) == c
/// for every valid c.
std::string format_repro(const FuzzConfig& config);

/// Parses a reproducer string. Throws std::invalid_argument on malformed
/// input (bad magic, unknown key, unparsable number) — with a message
/// naming the offending token.
FuzzConfig parse_repro(const std::string& text);

/// Draws a uniformly-ish random valid config. The generator deliberately
/// over-weights edge cases the bug sweep targeted: k == 1, r == 0,
/// unit_size == w (one-byte packets), and unsorted/duplicate loss ids.
FuzzConfig random_config(std::mt19937_64& rng);

}  // namespace tvmec::testing
