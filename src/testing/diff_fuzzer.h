#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tensor/schedule.h"
#include "testing/fuzz_config.h"

/// Cross-backend differential fuzzing (the correctness analogue of the
/// paper's cross-backend performance comparison): every registered
/// encoder/decoder backend is run on the same randomized configuration
/// and compared byte-for-byte against the embedding-appropriate
/// reference oracle — apply_matrix_reference_bitpacket for the bitmatrix
/// family, apply_matrix_reference for the byte-embedding family
/// (DESIGN.md §4b/§6). Storage scenarios round-trip whole objects
/// through StripeStore, fault-free and fault-injected.
///
/// Everything is deterministic in the FuzzConfig: a failure is reported
/// as a one-line reproducer string (format_repro) that replays the exact
/// divergence via `fuzz_repro` on any machine, after greedy shrinking to
/// a minimal failing config.
namespace tvmec::testing {

/// Result of one fuzz iteration or one campaign.
struct FuzzOutcome {
  bool ok = true;
  /// The failing config, formatted (minimized when from a campaign).
  std::string repro;
  /// First divergent byte: backend, unit, offset, got vs want — or the
  /// unexpected exception text.
  std::string detail;
  /// Configs executed (1 for run_one; campaign count otherwise).
  std::size_t iterations = 0;
};

class DiffFuzzer {
 public:
  /// The fixed GEMM schedule menu FuzzConfig::sched indexes (entry 0 is
  /// the default schedule). Kept small and stable so reproducer strings
  /// stay meaningful across versions.
  static const std::vector<tensor::Schedule>& schedule_menu();

  /// Executes one config against every applicable backend. Never throws
  /// for a valid config: unexpected exceptions come back as ok == false
  /// with the exception text in `detail`.
  static FuzzOutcome run_one(const FuzzConfig& config);

  /// Seeded random campaign: draws configs from random_config until
  /// `iterations` have run or `deadline_ms` elapses (0 = no deadline).
  /// Stops at the first divergence, shrinks it with minimize(), and
  /// returns the minimized reproducer.
  static FuzzOutcome run_campaign(std::uint64_t seed, std::size_t iterations,
                                  std::uint64_t deadline_ms = 0);

  /// Greedy config shrinking: repeatedly tries dropping loss ids,
  /// halving/decrementing the code shape, shrinking the unit size, and
  /// resetting schedule/family to defaults, accepting any reduction for
  /// which `still_fails` holds; returns the fixed point. The predicate
  /// is injected (rather than hard-wired to run_one) so the shrinking
  /// logic itself is unit-testable against synthetic bugs.
  static FuzzConfig minimize(
      const FuzzConfig& start,
      const std::function<bool(const FuzzConfig&)>& still_fails);
};

}  // namespace tvmec::testing
