#include "testing/diff_fuzzer.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "cluster/cluster.h"
#include "cluster/healer.h"
#include "cluster/membership.h"
#include "cluster/repair.h"
#include "core/backends.h"
#include "core/lrc_codec.h"
#include "core/tvmec.h"
#include "ec/decoder.h"
#include "ec/lrc.h"
#include "ec/reed_solomon.h"
#include "serve/ec_service.h"
#include "serve/shard.h"
#include "serve/tenant.h"
#include "storage/fault_injector.h"
#include "storage/stripe_store.h"
#include "tensor/buffer.h"
#include "tensor/kernel.h"
#include "tensor/scattered.h"

namespace tvmec::testing {

namespace {

using Bytes = tensor::AlignedBuffer<std::uint8_t>;

Bytes seeded_bytes(std::size_t size, std::uint64_t seed) {
  Bytes buf(size);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < size; ++i)
    buf[i] = static_cast<std::uint8_t>(rng());
  return buf;
}

std::string hex_byte(std::uint8_t b) {
  static const char* digits = "0123456789abcdef";
  return std::string{'0', 'x', digits[b >> 4], digits[b & 0xF]};
}

/// First divergent byte between two equal-length unit arrays, reported
/// as "<label>: unit U byte B: got 0xGG want 0xWW"; nullopt when equal.
std::optional<std::string> first_divergence(std::span<const std::uint8_t> got,
                                            std::span<const std::uint8_t> want,
                                            std::size_t unit_size,
                                            const std::string& label) {
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] == want[i]) continue;
    std::ostringstream out;
    out << label << ": unit " << i / unit_size << " byte " << i % unit_size
        << ": got " << hex_byte(got[i]) << " want " << hex_byte(want[i]);
    return out.str();
  }
  return std::nullopt;
}

/// Pins the process-wide kernel-variant force for one scope, restoring
/// whatever force (or absence of one) was active before. Forcing an
/// Auto variant is a no-op; forcing a tier this host lacks warns and is
/// ignored inside set_forced_variant, so repro strings from bigger
/// machines still run here.
class ForcedVariantGuard {
 public:
  explicit ForcedVariantGuard(tensor::KernelVariant v)
      : prev_(tensor::forced_variant()) {
    if (v != tensor::KernelVariant::Auto) tensor::set_forced_variant(v);
  }
  ~ForcedVariantGuard() { tensor::set_forced_variant(prev_); }
  ForcedVariantGuard(const ForcedVariantGuard&) = delete;
  ForcedVariantGuard& operator=(const ForcedVariantGuard&) = delete;

 private:
  std::optional<tensor::KernelVariant> prev_;
};

/// Instantiates a backend coder, honoring the config's schedule-menu
/// index for the Gemm backend (other backends have no schedule knob).
std::unique_ptr<ec::MatrixCoder> make_backend_coder(core::Backend backend,
                                                    const gf::Matrix& coeffs,
                                                    std::size_t sched) {
  if (backend == core::Backend::Gemm && sched != 0)
    return core::make_gemm_coder(
        coeffs, DiffFuzzer::schedule_menu().at(sched));
  return core::make_coder(backend, coeffs);
}

/// Sorted, deduplicated copy of a loss pattern.
std::vector<std::size_t> distinct(const std::vector<std::size_t>& ids) {
  std::vector<std::size_t> out(ids);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Runs `coder` on `in` twice — once directly and once from a +1-offset
/// copy of the input — and reports a divergence if the unaligned path
/// does not reproduce the aligned result (the satellite regression the
/// sweep fixed: unaligned buffers must stage, not diverge or throw).
std::optional<std::string> check_unaligned_matches(
    const ec::MatrixCoder& coder, std::span<const std::uint8_t> in,
    std::span<const std::uint8_t> aligned_out, std::size_t unit_size,
    const std::string& label) {
  Bytes shifted(in.size() + 1);
  std::memcpy(shifted.data() + 1, in.data(), in.size());
  Bytes out(aligned_out.size());
  coder.apply(shifted.span().subspan(1), out.span(), unit_size);
  return first_divergence(out.span(), aligned_out, unit_size,
                          label + " (+1-offset input)");
}

FuzzOutcome fail(const FuzzConfig& config, std::string detail) {
  return FuzzOutcome{false, format_repro(config), std::move(detail), 1};
}

/// Scattered arm 1 (config.frag != 0): Codec::encode_scattered over
/// separately allocated per-unit buffers — a random mix of word-aligned
/// and deliberately misaligned units — must reproduce the bitpacket
/// oracle byte for byte (aligned units ride the zero-copy kernel,
/// misaligned ones the staged fallback; both must agree).
std::optional<std::string> check_scattered_codec(
    const FuzzConfig& c, std::span<const std::uint8_t> data,
    std::span<const std::uint8_t> oracle_bitpacket) {
  if (c.r == 0) return std::nullopt;
  core::Codec codec(ec::CodeParams{c.k, c.r, c.w}, c.family);
  std::mt19937_64 rng(c.frag ^ 0x5CA77E4EDull);
  std::vector<Bytes> units;
  std::vector<const std::uint8_t*> in_ptrs;
  std::vector<std::uint8_t*> out_ptrs;
  units.reserve(c.k + c.r);
  for (std::size_t u = 0; u < c.k + c.r; ++u) {
    const std::size_t offset = rng() % 2 == 0 ? 0 : 1 + rng() % 7;
    units.emplace_back(c.unit_size + offset);
    std::uint8_t* p = units.back().data() + offset;
    if (u < c.k) {
      std::memcpy(p, data.data() + u * c.unit_size, c.unit_size);
      in_ptrs.push_back(p);
    } else {
      out_ptrs.push_back(p);
    }
  }
  codec.encode_scattered(in_ptrs, out_ptrs, c.unit_size);
  for (std::size_t u = 0; u < c.r; ++u) {
    if (auto d = first_divergence(
            std::span<const std::uint8_t>(out_ptrs[u], c.unit_size),
            oracle_bitpacket.subspan(u * c.unit_size, c.unit_size),
            c.unit_size, "encode_scattered parity " + std::to_string(u)))
      return d;
  }
  return std::nullopt;
}

/// Scattered arm 2 (config.frag != 0): the kernel itself. Random
/// broadcast masks A and random B, with B and C split into fragments at
/// random word boundaries; gemm_xorand_scattered must match
/// gemm_naive_xorand on the contiguous copies.
std::optional<std::string> check_scattered_kernel(const FuzzConfig& c) {
  std::mt19937_64 rng(c.frag);
  const std::size_t m = std::max<std::size_t>(1, c.r) * c.w;
  const std::size_t kdim = c.k * c.w;
  const std::size_t n =
      c.k * std::max<std::size_t>(1, c.unit_size / c.w / 8);
  tensor::AlignedBuffer<std::uint64_t> a(m * kdim);
  tensor::AlignedBuffer<std::uint64_t> b(kdim * n);
  tensor::AlignedBuffer<std::uint64_t> ref(m * n);
  tensor::AlignedBuffer<std::uint64_t> got(m * n);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = rng() % 2 == 0 ? ~std::uint64_t{0} : 0;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng();

  const tensor::MatView<const std::uint64_t> av{a.data(), m, kdim, kdim};
  tensor::gemm_naive_xorand(av, {b.data(), kdim, n, n},
                            {ref.data(), m, n, n});

  const auto split = [&rng](auto* base, std::size_t words) {
    using T = std::remove_reference_t<decltype(*base)>;
    std::vector<tensor::Fragment<T>> frags;
    std::size_t pos = 0;
    while (pos < words) {
      const std::size_t len =
          std::min<std::size_t>(words - pos, 1 + rng() % 97);
      frags.push_back({base + pos, len});
      pos += len;
    }
    return frags;
  };
  const tensor::ScatteredView<const std::uint64_t> bs(
      kdim, n, split(static_cast<const std::uint64_t*>(b.data()), kdim * n));
  const tensor::ScatteredView<std::uint64_t> cs(m, n,
                                                split(got.data(), m * n));
  tensor::gemm_xorand_scattered(av, bs, cs,
                                DiffFuzzer::schedule_menu().at(c.sched));
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (got[i] == ref[i]) continue;
    std::ostringstream out;
    out << "scattered kernel: word " << i << ": got 0x" << std::hex << got[i]
        << " want 0x" << ref[i];
    return out.str();
  }
  return std::nullopt;
}

FuzzOutcome run_rs_encode(const FuzzConfig& c) {
  // The variant axis pins every kernel in this iteration (all backend
  // arms, the scattered arms) to one SIMD tier; the scalar oracles below
  // are reference code untouched by dispatch, so each forced tier is
  // byte-diffed against scalar truth.
  const ForcedVariantGuard variant_guard(c.variant);
  const ec::CodeParams params{c.k, c.r, c.w};
  const ec::ReedSolomon rs(params, c.family);
  const gf::Matrix parity_matrix = rs.parity_matrix();
  const Bytes data = seeded_bytes(c.k * c.unit_size, c.seed);

  // Oracles: one per byte-embedding family (DESIGN.md §4b).
  Bytes oracle_bitpacket(c.r * c.unit_size);
  Bytes oracle_byte(c.r * c.unit_size);
  ec::apply_matrix_reference_bitpacket(parity_matrix, data.span(),
                                       oracle_bitpacket.span(), c.unit_size);
  ec::apply_matrix_reference(parity_matrix, data.span(), oracle_byte.span(),
                             c.unit_size);

  for (const core::Backend backend : core::backends_for_w(c.w)) {
    const auto coder = make_backend_coder(backend, parity_matrix, c.sched);
    const std::string label =
        std::string("backend ") + core::to_string(backend);
    Bytes out(c.r * c.unit_size);
    coder->apply(data.span(), out.span(), c.unit_size);
    const Bytes& oracle = core::is_bitpacket_backend(backend)
                              ? oracle_bitpacket
                              : oracle_byte;
    if (auto d = first_divergence(out.span(), oracle.span(), c.unit_size,
                                  label))
      return fail(c, *d);
    if (auto d = check_unaligned_matches(*coder, data.span(), out.span(),
                                         c.unit_size, label))
      return fail(c, *d);
    // Cross-variant arm: the same backend under a forced-scalar run must
    // reproduce the forced-tier output byte for byte.
    if (c.variant != tensor::KernelVariant::Auto &&
        c.variant != tensor::KernelVariant::Scalar) {
      const ForcedVariantGuard scalar_guard(tensor::KernelVariant::Scalar);
      Bytes scalar_out(c.r * c.unit_size);
      coder->apply(data.span(), scalar_out.span(), c.unit_size);
      if (auto d = first_divergence(
              out.span(), scalar_out.span(), c.unit_size,
              label + " forced " +
                  std::string(tensor::to_string(c.variant)) +
                  " vs forced scalar"))
        return fail(c, *d);
    }
  }
  if (c.frag != 0) {
    if (auto d = check_scattered_codec(c, data.span(),
                                       oracle_bitpacket.span()))
      return fail(c, *d);
    if (auto d = check_scattered_kernel(c)) return fail(c, *d);
  }
  return FuzzOutcome{true, {}, {}, 1};
}

FuzzOutcome run_rs_decode(const FuzzConfig& c) {
  const ec::CodeParams params{c.k, c.r, c.w};
  const ec::ReedSolomon rs(params, c.family);
  const std::size_t n = params.n();
  const std::size_t unit = c.unit_size;
  if (c.losses.empty()) return FuzzOutcome{true, {}, {}, 1};

  // Full stripes under both embeddings: data verbatim, then parity.
  const Bytes data = seeded_bytes(c.k * unit, c.seed);
  Bytes stripe_bitpacket(n * unit), stripe_byte(n * unit);
  std::memcpy(stripe_bitpacket.data(), data.data(), c.k * unit);
  std::memcpy(stripe_byte.data(), data.data(), c.k * unit);
  const gf::Matrix parity_matrix = rs.parity_matrix();
  ec::apply_matrix_reference_bitpacket(
      parity_matrix, data.span(),
      stripe_bitpacket.span().subspan(c.k * unit), unit);
  ec::apply_matrix_reference(parity_matrix, data.span(),
                             stripe_byte.span().subspan(c.k * unit), unit);

  const std::vector<std::size_t> erased = distinct(c.losses);
  const bool out_of_range = erased.back() >= n;
  const bool too_many = erased.size() > c.r;

  // The Codec front door must tolerate the raw (unsorted / duplicated)
  // loss pattern, and must reject out-of-range or excess patterns with
  // invalid_argument rather than garbage output.
  {
    core::Codec codec(params, c.family);
    Bytes work = stripe_bitpacket;
    for (const std::size_t id : erased)
      if (id < n) std::memset(work.data() + id * unit, 0xEE, unit);
    if (out_of_range || too_many) {
      try {
        codec.decode(work.span(), c.losses, unit);
        return fail(c, "codec.decode accepted an invalid loss pattern");
      } catch (const std::invalid_argument&) {
        if (!out_of_range)
          return fail(c,
                      "codec.decode: excess erasures should be runtime_error "
                      "(unrecoverable), not invalid_argument");
      } catch (const std::runtime_error&) {
        // expected for > r distinct erasures (unrecoverable pattern)
        if (out_of_range)
          return fail(c,
                      "codec.decode: out-of-range id should be "
                      "invalid_argument, not runtime_error");
      }
      return FuzzOutcome{true, {}, {}, 1};
    }
    codec.decode(work.span(), c.losses, unit);
    if (auto d = first_divergence(work.span(), stripe_bitpacket.span(), unit,
                                  "codec.decode"))
      return fail(c, *d);
  }

  // Every backend executes the same DecodePlan as an encode over the
  // survivors; recovered units must match the originals byte for byte
  // within the backend's embedding family.
  const auto plan = ec::make_decode_plan(rs.generator(), erased);
  if (!plan)
    return fail(c, "make_decode_plan failed on an MDS-decodable pattern");
  const std::size_t s = plan->survivors.size();
  for (const core::Backend backend : core::backends_for_w(c.w)) {
    const Bytes& stripe = core::is_bitpacket_backend(backend)
                              ? stripe_bitpacket
                              : stripe_byte;
    Bytes survivors(s * unit);
    for (std::size_t i = 0; i < s; ++i)
      std::memcpy(survivors.data() + i * unit,
                  stripe.data() + plan->survivors[i] * unit, unit);
    const auto coder = make_backend_coder(backend, plan->recovery, c.sched);
    Bytes recovered(erased.size() * unit);
    coder->apply(survivors.span(), recovered.span(), unit);
    for (std::size_t i = 0; i < plan->erased.size(); ++i) {
      const std::span<const std::uint8_t> want(
          stripe.data() + plan->erased[i] * unit, unit);
      const std::span<const std::uint8_t> got(recovered.data() + i * unit,
                                              unit);
      if (auto d = first_divergence(
              got, want, unit,
              std::string("backend ") + core::to_string(backend) +
                  " decode of unit " + std::to_string(plan->erased[i])))
        return fail(c, *d);
    }
  }
  return FuzzOutcome{true, {}, {}, 1};
}

FuzzOutcome run_lrc(const FuzzConfig& c) {
  const ec::LrcParams params{c.k, c.l, c.r, c.w};
  const ec::Lrc lrc(params);
  core::LrcCodec codec(params);
  const std::size_t n = params.n();
  const std::size_t unit = c.unit_size;
  if (c.sched != 0)
    codec.set_schedule(DiffFuzzer::schedule_menu().at(c.sched));

  const Bytes data = seeded_bytes(c.k * unit, c.seed);
  Bytes stripe(n * unit);
  std::memcpy(stripe.data(), data.data(), c.k * unit);
  codec.encode(data.span(), stripe.span().subspan(c.k * unit), unit);

  // The GEMM LRC encode must match the bitpacket reference applied to
  // the same parity matrix.
  Bytes oracle((c.l + c.r) * unit);
  ec::apply_matrix_reference_bitpacket(lrc.parity_matrix(), data.span(),
                                       oracle.span(), unit);
  if (auto d = first_divergence(stripe.span().subspan(c.k * unit),
                                oracle.span(), unit, "lrc encode"))
    return fail(c, *d);

  if (c.losses.empty()) return FuzzOutcome{true, {}, {}, 1};
  const std::vector<std::size_t> erased = distinct(c.losses);
  if (erased.back() >= n) {
    Bytes work = stripe;
    try {
      codec.decode(work.span(), c.losses, unit);
      return fail(c, "lrc decode accepted an out-of-range loss id");
    } catch (const std::invalid_argument&) {
      return FuzzOutcome{true, {}, {}, 1};
    }
  }

  Bytes work = stripe;
  for (const std::size_t id : erased)
    std::memset(work.data() + id * unit, 0xEE, unit);
  const bool recoverable = lrc.decode_plan(erased).has_value();
  try {
    codec.decode(work.span(), c.losses, unit);
  } catch (const std::runtime_error&) {
    if (recoverable)
      return fail(c, "lrc decode refused a recoverable pattern");
    return FuzzOutcome{true, {}, {}, 1};
  }
  if (!recoverable)
    return fail(c, "lrc decode claimed success on an unrecoverable pattern");
  if (auto d =
          first_divergence(work.span(), stripe.span(), unit, "lrc decode"))
    return fail(c, *d);
  return FuzzOutcome{true, {}, {}, 1};
}

FuzzOutcome run_storage(const FuzzConfig& c, bool faulted) {
  const ec::CodeParams params{c.k, c.r, c.w};
  const std::size_t unit = c.unit_size;
  storage::StripeStore store(params, unit, params.n() + 2);

  storage::FaultInjector injector(
      storage::FaultPolicy{
          .read_bit_flip = 0.05,  // healed by CRC-triggered re-reads
          .transient_read = 0.1,  // healed by retry-with-backoff
          .transient_failures = 2,
      },
      c.seed ^ 0xFA17);
  if (faulted) {
    store.attach_fault_injector(&injector);
    store.set_retry_policy(storage::RetryPolicy{.max_attempts = 6});
  }

  const std::size_t object_size = 1 + c.seed % (3 * c.k * unit);
  const Bytes object = seeded_bytes(object_size, c.seed + 1);
  store.put("fuzz-object", object.span());

  if (faulted && c.r >= 1) {
    // One deterministic latent corruption, then a scrub to heal it.
    store.corrupt_unit("fuzz-object", 0, c.seed % params.n());
    store.scrub();
  }

  const std::vector<std::size_t> failed = distinct(c.losses);
  for (const std::size_t node : failed) store.fail_node(node);

  const auto check_bytes =
      [&](const std::optional<std::vector<std::uint8_t>>& read,
          const char* label) -> std::optional<FuzzOutcome> {
    if (!read) return fail(c, std::string(label) + " lost the object");
    if (read->size() != object_size)
      return fail(c, std::string(label) + " returned " +
                         std::to_string(read->size()) + " bytes, want " +
                         std::to_string(object_size));
    if (auto d = first_divergence(*read, object.span(), unit, label))
      return fail(c, *d);
    return std::nullopt;
  };

  try {
    const auto read = store.get("fuzz-object");
    // Whatever the fault storm did, returned bytes must be exact:
    // silent corruption is never acceptable.
    if (auto failure = check_bytes(read, "store.get")) return *failure;
  } catch (const std::runtime_error&) {
    // An unrecoverable read is legal when more nodes failed than the
    // code has parities — or when injected transient bursts chained past
    // the retry budget and made further units unavailable (visible as
    // exhausted retry ops). Anything else is a divergence.
    const bool transiently_unavailable =
        faulted && store.retry_stats().exhausted > 0;
    if (failed.size() <= c.r && !transiently_unavailable)
      return fail(c, "store.get unrecoverable within the failure budget");
  }

  // Durability: transient unavailability must not have become data loss.
  // With the injector detached and at most r failed nodes, a clean
  // re-read must succeed and match byte for byte.
  if (faulted && failed.size() <= c.r) {
    store.attach_fault_injector(nullptr);
    std::optional<std::vector<std::uint8_t>> clean;
    try {
      clean = store.get("fuzz-object");
    } catch (const std::runtime_error& e) {
      return fail(c, std::string("clean re-read unrecoverable: ") + e.what());
    }
    if (auto failure = check_bytes(clean, "clean re-read")) return *failure;
  }
  return FuzzOutcome{true, {}, {}, 1};
}

/// Cluster scenarios: the simulated multi-node cluster vs the
/// single-process oracle (the original payload bytes). `repair` shifts
/// the chaos from the read path (degraded reads, hedging) to DAG repair
/// with mid-repair faults (helper crashes, partitions, drops). Whatever
/// the seeded disk + link chaos did, three things must hold: the network
/// byte ledger balances, the repair counter identity balances, and any
/// bytes returned are exactly the original payload — chaos may cost
/// latency or availability, never integrity.
FuzzOutcome run_cluster(const FuzzConfig& c, bool repair) {
  const ec::CodeParams params{c.k, c.r, c.w};
  const std::size_t unit = c.unit_size;
  const std::size_t num_nodes = params.n() + 2;

  cluster::ClusterConfig cc;
  cc.num_nodes = num_nodes;
  cc.num_domains = 1 + c.seed % 3;  // num_nodes >= 3 always
  cc.retry.max_attempts = 6;
  cc.hedge.min_samples = 2;
  cc.hedge.multiplier = 2.0;
  cc.seed = c.seed ^ 0xC1A5;
  cluster::Cluster cl(params, unit, cc);

  const std::size_t object_size = 1 + c.seed % (3 * c.k * unit);
  const Bytes object = seeded_bytes(object_size, c.seed + 1);

  storage::FaultPolicy policy;
  policy.read_bit_flip = 0.05;   // healed by CRC-triggered re-reads
  policy.transient_read = 0.08;  // healed by retry-with-backoff
  policy.transient_failures = 2;
  policy.link_drop = 0.05;       // healed by RPC retries
  policy.link_duplicate = 0.05;  // aggregation must stay idempotent
  policy.link_partition = 0.01;
  policy.partition_ops = 3;
  if (repair) policy.crash = 0.005;  // mid-repair helper crashes
  storage::FaultInjector injector(policy, c.seed ^ 0xC7A05);

  if (repair) {
    cl.put("fuzz-object", object.span());  // store clean; chaos the repair
  } else {
    cl.attach_fault_injector(&injector);
    cl.put("fuzz-object", object.span());
  }

  const std::vector<std::size_t> failed = distinct(c.losses);
  for (const std::size_t node : failed) cl.fail_node(node);

  bool corrupted = false;
  if (repair) {
    cl.attach_fault_injector(&injector);
    if (c.r >= 1)
      corrupted = cl.corrupt_unit("fuzz-object", 0, c.seed % params.n());
    cl.repair();
    if (!cl.repair_stats().identity_holds())
      return fail(c, "repair counter identity violated under chaos");
    // Heal phase: quiet faults, scrub out what the chaos run left
    // behind. Chaos-crashed nodes stay dead — the durability check
    // below is exactly the question of whether repair preserved the
    // stripes within the code's budget anyway.
    injector.set_policy(storage::FaultPolicy{});
    cl.scrub();
    if (!cl.repair_stats().identity_holds())
      return fail(c, "repair counter identity violated after scrub");
  }

  if (!cl.net().stats().balanced())
    return fail(c, "network byte ledger does not balance");

  // Every loss source that can still cost a stripe a unit: explicitly
  // failed nodes plus chaos crashes (each stripe holds at most one unit
  // per node), plus the one latent corruption if it was planted.
  std::size_t dead = 0;
  for (std::size_t node = 0; node < num_nodes; ++node)
    if (cl.node_failed(node)) ++dead;
  const std::size_t loss_budget = dead + (corrupted ? 1 : 0);

  const auto check_bytes =
      [&](const std::optional<std::vector<std::uint8_t>>& read,
          const char* label) -> std::optional<FuzzOutcome> {
    if (!read) return fail(c, std::string(label) + " lost the object");
    if (read->size() != object_size)
      return fail(c, std::string(label) + " returned " +
                         std::to_string(read->size()) + " bytes, want " +
                         std::to_string(object_size));
    if (auto d = first_divergence(*read, object.span(), unit, label))
      return fail(c, *d);
    return std::nullopt;
  };

  try {
    const auto read = cl.get("fuzz-object");
    if (auto failure = check_bytes(read, "cluster.get")) return *failure;
  } catch (const std::runtime_error&) {
    // Legal only past the code's budget — or when transient bursts and
    // drops chained past the retry budget (visible as exhausted ops,
    // including puts that could not place every unit).
    const bool transiently_unavailable = cl.retry_stats().exhausted > 0;
    if (loss_budget <= c.r && !transiently_unavailable)
      return fail(c, "cluster.get unrecoverable within the failure budget");
  }

  // Durability: transient unavailability must not have become data
  // loss. With the injector detached, every op fully retried during the
  // faulted phase, and at most r units of damage per stripe, a clean
  // re-read must succeed and match byte for byte.
  if (loss_budget <= c.r && cl.retry_stats().exhausted == 0) {
    cl.attach_fault_injector(nullptr);
    std::optional<std::vector<std::uint8_t>> clean;
    try {
      clean = cl.get("fuzz-object");
    } catch (const std::runtime_error& e) {
      return fail(c, std::string("clean re-read unrecoverable: ") + e.what());
    }
    if (auto failure = check_bytes(clean, "clean re-read")) return *failure;
    if (!cl.net().stats().balanced())
      return fail(c, "network byte ledger does not balance after clean read");
  }
  return FuzzOutcome{true, {}, {}, 1};
}

/// The self-healing control plane under scripted chaos: a seeded
/// campaign of node crashes, revives, foreground reads/writes, and disk
/// corruption runs against a *live* healer (membership heartbeats,
/// risk-prioritized repair queue, token bucket), with probabilistic
/// link faults layered on top. The campaign keeps persistent damage
/// within the code's budget — at most min(2, r) dark nodes at a time,
/// corruption only while a parity of slack remains — so convergence is
/// always reachable: once the healer drains under a quiet fault policy,
/// every stripe must be fully redundant on the routing view, every
/// object must read back byte-identical to its payload, and the
/// membership, healer, repair, and network-ledger identities must
/// balance unconditionally.
FuzzOutcome run_cluster_heal(const FuzzConfig& c) {
  const ec::CodeParams params{c.k, c.r, c.w};
  const std::size_t unit = c.unit_size;
  const std::size_t num_nodes = params.n() + 2;

  cluster::ClusterConfig cc;
  cc.num_nodes = num_nodes;
  cc.num_domains = 1 + c.seed % 3;
  cc.retry.max_attempts = 6;
  cc.hedge.min_samples = 2;
  cc.hedge.multiplier = 2.0;
  cc.seed = c.seed ^ 0xC1A5;
  cluster::Cluster cl(params, unit, cc);

  // Two objects so repairs interleave across namespaces; sizes (and so
  // stripe counts) stay fixed for the whole campaign.
  const std::size_t stripe_bytes = c.k * unit;
  std::map<std::string, std::size_t> sizes;
  sizes["heal-a"] = 1 + c.seed % (3 * stripe_bytes);
  sizes["heal-b"] = 1 + (c.seed >> 8) % (2 * stripe_bytes);
  std::map<std::string, Bytes> payloads;
  for (const auto& [name, size] : sizes) {
    payloads.emplace(name, seeded_bytes(size, c.seed ^ size));
    cl.put(name, payloads.at(name).span());  // stored clean; chaos follows
  }
  const auto stripes_of = [&](const std::string& name) {
    return (sizes.at(name) + stripe_bytes - 1) / stripe_bytes;
  };

  storage::FaultPolicy policy;
  policy.read_bit_flip = 0.02;   // healed by CRC-triggered re-reads
  policy.transient_read = 0.04;  // healed by retry-with-backoff
  policy.transient_failures = 2;
  policy.link_drop = 0.02;       // lands on heartbeats and data alike
  policy.link_duplicate = 0.03;
  policy.link_partition = 0.005;  // short windows: Suspect, rarely Dead
  policy.partition_ops = 3;
  storage::FaultInjector injector(policy, c.seed ^ 0x4EA1);
  cl.attach_fault_injector(&injector);

  cluster::Membership membership(cl);
  cluster::HealerConfig hc;
  hc.max_requeues = 16;  // chaos makes individual attempts flaky
  hc.max_repairs_per_tick = 2 + c.seed % 3;
  hc.repair_bytes_per_sec = c.seed % 3 == 0 ? 0 : 512 * 1024;
  hc.burst_bytes = 64 * 1024;
  cluster::Healer healer(cl, &membership, hc);
  for (int t = 0; t < 16; ++t) healer.tick();  // warm the gap estimators

  // Scripted dark nodes: config losses seed the campaign, capped so
  // every stripe keeps at least one spare node for re-placement and the
  // persistent damage stays within the parity budget.
  const std::size_t dark_cap = std::min<std::size_t>(2, c.r);
  std::vector<std::size_t> dark;
  for (const std::size_t node : distinct(c.losses)) {
    if (dark.size() == dark_cap) break;
    injector.crash_node(node);
    dark.push_back(node);
  }
  std::mt19937_64 rng(c.seed ^ 0x8EA1D00D);
  if (dark.empty() && dark_cap > 0) {
    const std::size_t node = rng() % num_nodes;
    injector.crash_node(node);
    dark.push_back(node);
  }

  const auto check_bytes =
      [&](const std::optional<std::vector<std::uint8_t>>& read,
          const std::string& name,
          const char* label) -> std::optional<FuzzOutcome> {
    const Bytes& want = payloads.at(name);
    const std::string what = std::string(label) + " " + name;
    if (!read) return fail(c, what + " lost the object");
    if (read->size() != want.span().size())
      return fail(c, what + " returned " + std::to_string(read->size()) +
                         " bytes, want " +
                         std::to_string(want.span().size()));
    if (auto d = first_divergence(*read, want.span(), unit, what.c_str()))
      return fail(c, *d);
    return std::nullopt;
  };

  for (int round = 0; round < 6; ++round) {
    switch (rng() % 4) {
      case 0: {  // crash another node, honoring the dark cap. Fresh
                 // damage waits for a drained queue: outstanding revive
                 // debt or corruption still counts against the parity
                 // budget until the healer clears it.
        if (dark.size() < dark_cap && healer.pending() == 0 &&
            healer.parked_now() == 0) {
          const std::size_t node = rng() % num_nodes;
          if (std::find(dark.begin(), dark.end(), node) == dark.end()) {
            injector.crash_node(node);
            dark.push_back(node);
          }
        }
        break;
      }
      case 1: {  // revive a dark node: rejoin + re-replication debt
        if (!dark.empty()) {
          const std::size_t i = rng() % dark.size();
          cl.revive_node(dark[i]);
          dark.erase(dark.begin() + i);
        }
        break;
      }
      case 2: {  // plant corruption only while a parity of slack remains
                 // (and, as above, only on a drained queue)
        if (dark.size() + 1 <= c.r && healer.pending() == 0 &&
            healer.parked_now() == 0) {
          const std::string name = rng() % 2 ? "heal-a" : "heal-b";
          cl.corrupt_unit(name, rng() % stripes_of(name),
                          rng() % params.n());
        }
        break;
      }
      case 3: {  // foreground traffic against whatever is currently dark
        const std::string name = rng() % 2 ? "heal-a" : "heal-b";
        if (rng() % 2 == 0) {
          // A rewrite against undetected-dark nodes surfaces
          // WriteFailure damage; the healer owes the missing units.
          Bytes fresh = seeded_bytes(sizes.at(name), rng());
          cl.put(name, fresh.span());
          payloads.at(name) = std::move(fresh);
        } else {
          try {
            const auto read = cl.get(name);
            if (auto failure = check_bytes(read, name, "mid-campaign get"))
              return *failure;
          } catch (const std::runtime_error&) {
            // Mid-campaign unavailability is tolerated: undetected dark
            // nodes, retry exhaustion, and spurious partition verdicts
            // can all starve a single read. Integrity and availability
            // are gated deterministically after convergence below.
          }
        }
        break;
      }
    }
    // Let the control plane catch up: detector ticks, scrub converts
    // latent corruption into damage events, the queue partially drains.
    for (int t = 0; t < 8; ++t) healer.tick();
    cl.scrub();
    healer.run_until_idle(400);
  }

  // If every scripted crash was revived before the detector could rule,
  // plant one final dark node so the campaign always exercises at least
  // one full crash -> Dead -> re-placement cycle.
  if (dark.empty() && dark_cap > 0 &&
      healer.stats().nodes_declared_dead == 0) {
    healer.run_until_idle(400);  // plant only against a drained queue
    if (healer.pending() == 0 && healer.parked_now() == 0) {
      const std::size_t node = rng() % num_nodes;
      injector.crash_node(node);
      dark.push_back(node);
    }
  }
  // A node dark at quiet-phase entry is guaranteed a Dead verdict: under
  // a quiet policy every probe to it goes unanswered, so phi crosses
  // dead_phi within the settling ticks below.
  const bool expect_dead_verdict = !dark.empty();

  // Quiet the probabilistic faults (scripted crashes stay), let every
  // remaining verdict land, surface anything latent, and drain.
  injector.set_policy(storage::FaultPolicy{});
  for (int t = 0; t < 64; ++t) healer.tick();
  cl.scrub();
  for (int t = 0;
       t < 4000 && (healer.pending() != 0 || healer.parked_now() != 0); ++t)
    healer.tick();
  if (healer.pending() != 0 || healer.parked_now() != 0)
    return fail(c, "healer did not converge: pending=" +
                       std::to_string(healer.pending()) + " parked=" +
                       std::to_string(healer.parked_now()));

  // Zero unhealed recoverable damage: every stripe fully redundant on
  // the routing view, dark nodes re-placed around.
  for (const auto& [name, size] : sizes) {
    for (std::size_t s = 0; s < stripes_of(name); ++s) {
      const cluster::StripeHealth h = cl.repairer().stripe_health(name, s);
      if (!h.exists)
        return fail(c, "stripe " + name + "/" + std::to_string(s) +
                           " vanished during the campaign");
      if (h.erased != 0)
        return fail(c, "stripe " + name + "/" + std::to_string(s) +
                           " left with " + std::to_string(h.erased) +
                           " erasures after convergence");
    }
  }

  // Availability and integrity after convergence are unconditional.
  for (const auto& [name, size] : sizes) {
    std::optional<std::vector<std::uint8_t>> read;
    try {
      read = cl.get(name);
    } catch (const std::runtime_error& e) {
      return fail(c, "converged get(" + name + ") unrecoverable: " +
                         e.what());
    }
    if (auto failure = check_bytes(read, name, "converged get"))
      return *failure;
  }

  // The identity sweep — every counter family must balance, always.
  if (!healer.identity_holds())
    return fail(c, "healer accounting identity violated");
  if (!membership.probe_identity_holds())
    return fail(c, "membership probe identity violated");
  if (!membership.transitions_balance())
    return fail(c, "membership transition counters do not balance");
  if (!cl.repair_stats().identity_holds())
    return fail(c, "repair counter identity violated");
  if (!cl.net().stats().balanced())
    return fail(c, "network byte ledger does not balance");
  if (expect_dead_verdict && healer.stats().nodes_declared_dead == 0)
    return fail(c, "campaign crashed a node but no Dead verdict landed");
  return FuzzOutcome{true, {}, {}, 1};
}

/// Serving-layer differential: a random mix of encode/decode requests
/// (some pre-expired) through EcService in manual-pump mode, checked
/// against a sequential per-request Codec oracle running the *default*
/// schedule — so batched wide-N execution under the menu schedule is
/// differentially compared with one-at-a-time execution, byte for byte.
/// Manual pump makes admission deterministic: nothing is consumed while
/// submitting, so exactly the first `queue_capacity` submissions are
/// accepted and the rest must be rejected Overloaded, and the stats
/// counters must balance exactly.
FuzzOutcome run_serve(const FuzzConfig& c) {
  const ec::CodeParams params{c.k, c.r, c.w};
  const std::size_t unit = c.unit_size;
  const std::size_t n = params.n();

  std::mt19937_64 rng(c.seed ^ 0x5E54E11CE);
  serve::ServiceConfig sc;
  sc.num_workers = 0;  // manual pump
  sc.batch.queue_capacity = 1 + rng() % 8;
  sc.batch.max_batch_requests = 1 + rng() % 4;
  sc.schedule = DiffFuzzer::schedule_menu().at(c.sched);
  serve::EcService service(sc);
  const serve::CodecKey key{c.k, c.r, c.w, c.family};

  core::Codec oracle(params, c.family);  // default schedule, sequential

  struct ServeReq {
    bool decode = false;
    bool expired = false;
    bool expect_failed = false;  // unrecoverable decode pattern
    bool accepted = false;
    Bytes in{0}, out{0}, stripe{0}, want{0};
    serve::EcFuture future;
  };
  const bool can_decode = !c.losses.empty() && c.r > 0;
  const std::size_t num_requests = 2 + rng() % 10;
  std::vector<ServeReq> reqs(num_requests);
  std::size_t expected_accepted = 0;

  for (std::size_t i = 0; i < num_requests; ++i) {
    ServeReq& r = reqs[i];
    r.decode = can_decode && rng() % 2 == 0;
    r.expired = rng() % 5 == 0;
    const auto timeout =
        r.expired ? std::chrono::nanoseconds{-1} : std::chrono::nanoseconds{0};
    const Bytes data = seeded_bytes(c.k * unit, c.seed + 31 * i);

    if (r.decode) {
      r.stripe = Bytes(n * unit);
      std::memcpy(r.stripe.data(), data.data(), c.k * unit);
      oracle.encode(data.span(), r.stripe.span().subspan(c.k * unit), unit);
      for (const std::size_t id : distinct(c.losses))
        std::memset(r.stripe.data() + id * unit, 0xEE, unit);
      r.want = r.stripe;  // expired decodes must leave the holes untouched
      if (!r.expired) {
        try {
          oracle.decode(r.want.span(), c.losses, unit);
        } catch (const std::runtime_error&) {
          r.expect_failed = true;  // > r distinct erasures
        }
      }
      r.future = service.submit_decode(key, r.stripe.span(), c.losses, unit,
                                       timeout);
    } else {
      r.in = data;
      r.out = Bytes(c.r * unit);  // zero-initialized
      r.want = Bytes(c.r * unit);
      if (!r.expired) oracle.encode(r.in.span(), r.want.span(), unit);
      r.future = service.submit_encode(key, r.in.span(), r.out.span(), unit,
                                       timeout);
    }

    // Deterministic admission: accept iff the queue still had room.
    const bool should_accept = expected_accepted < sc.batch.queue_capacity;
    r.accepted = should_accept;
    if (should_accept) {
      ++expected_accepted;
      if (r.future.ready())
        return fail(c, "serve: request " + std::to_string(i) +
                           " completed before any pump ran");
    } else {
      if (!r.future.ready())
        return fail(c, "serve: request " + std::to_string(i) +
                           " should have been rejected at admission");
      if (r.future.wait().status != serve::RequestStatus::Overloaded)
        return fail(c, std::string("serve: over-capacity request got ") +
                           serve::to_string(r.future.wait().status) +
                           ", want overloaded");
    }
  }

  service.run_pending();

  for (std::size_t i = 0; i < num_requests; ++i) {
    ServeReq& r = reqs[i];
    if (!r.accepted) continue;
    if (!r.future.ready())
      return fail(c, "serve: accepted request " + std::to_string(i) +
                         " not completed by run_pending");
    const serve::EcResult& result = r.future.wait();
    const serve::RequestStatus want_status =
        r.expired ? serve::RequestStatus::Expired
        : r.expect_failed ? serve::RequestStatus::Failed
                          : serve::RequestStatus::Ok;
    if (result.status != want_status)
      return fail(c, "serve: request " + std::to_string(i) + " got status " +
                         serve::to_string(result.status) + ", want " +
                         serve::to_string(want_status));
    if (r.expect_failed) continue;  // no byte contract after a failure
    const auto got = r.decode ? r.stripe.span() : r.out.span();
    if (auto d = first_divergence(
            got, r.want.span(), unit,
            "serve request " + std::to_string(i) +
                (r.decode ? " (decode)" : " (encode)") +
                (r.expired ? " expired-untouched" : "")))
      return fail(c, *d);
  }

  // Counter identities (the queue-capacity accounting contract).
  const serve::ServeStatsSnapshot s = service.stats();
  const auto check = [&](bool ok, const std::string& what)
      -> std::optional<FuzzOutcome> {
    if (ok) return std::nullopt;
    return fail(c, "serve stats: " + what);
  };
  if (auto f = check(s.submitted == num_requests, "submitted != requests"))
    return *f;
  if (auto f = check(s.accepted == expected_accepted,
                     "accepted != min(requests, capacity)"))
    return *f;
  if (auto f = check(s.submitted == s.accepted + s.rejected_overload +
                                        s.rejected_shutdown,
                     "submitted != accepted + rejected"))
    return *f;
  if (auto f = check(s.accepted == s.completed_ok + s.expired + s.failed,
                     "accepted != completed + expired + failed (drained)"))
    return *f;

  // Post-shutdown submissions must complete as Shutdown, not hang.
  service.shutdown();
  Bytes late_in(c.k * unit), late_out(c.r * unit);
  serve::EcFuture late =
      service.submit_encode(key, late_in.span(), late_out.span(), unit);
  if (!late.ready() ||
      late.wait().status != serve::RequestStatus::Shutdown)
    return fail(c, "serve: post-shutdown submit did not complete as shutdown");
  return FuzzOutcome{true, {}, {}, 1};
}

/// Chaos variant of the serve differential: the same manual-pump service
/// and sequential Codec oracle, plus the overload-protection machinery —
/// random client cancels, pre-expired deadlines with admission shedding,
/// and injected primary-backend faults with the circuit breaker enabled.
/// The invariant stays byte-exact: faults and breaker trips may only move
/// requests onto slower paths (singly-rescue, degraded naive backend),
/// never change completed bytes; cancelled/expired/shed requests leave
/// their buffers untouched; and the widened counter identities balance
/// exactly against a mirror of the admission rules.
FuzzOutcome run_serve_chaos(const FuzzConfig& c) {
  const ec::CodeParams params{c.k, c.r, c.w};
  const std::size_t unit = c.unit_size;
  const std::size_t n = params.n();

  std::mt19937_64 rng(c.seed ^ 0xC4A05C4A05ULL);
  serve::ServiceConfig sc;
  sc.num_workers = 0;  // manual pump: admission and faults deterministic
  sc.batch.queue_capacity = 2 + rng() % 8;
  sc.batch.max_batch_requests = 1 + rng() % 4;
  sc.batch.deadline_shedding = rng() % 2 == 0;
  sc.schedule = DiffFuzzer::schedule_menu().at(c.sched);
  sc.breaker.failure_threshold = 1 + rng() % 2;
  sc.breaker.success_threshold = 1 + rng() % 2;
  // Either probe immediately (exercises recovery) or never this run
  // (exercises the steady degraded path).
  sc.breaker.cooldown = rng() % 2 == 0 ? std::chrono::nanoseconds{0}
                                       : std::chrono::hours(1);
  // Deterministic fault sequence: the pump is single-threaded, so the
  // injector call order — hence the exact fault pattern — replays.
  const auto fault_rng = std::make_shared<std::mt19937_64>(c.seed ^ 0xFA017);
  std::size_t injected = 0;
  sc.fault_injector = [fault_rng, &injected](serve::RequestKind,
                                             const serve::CodecKey&,
                                             std::size_t) {
    const bool fire = (*fault_rng)() % 3 == 0;
    if (fire) ++injected;
    return fire;
  };
  serve::EcService service(sc);
  const serve::CodecKey key{c.k, c.r, c.w, c.family};

  core::Codec oracle(params, c.family);  // default schedule, sequential

  struct ChaosReq {
    bool decode = false;
    bool expired = false;        // submitted with an already-passed deadline
    bool cancelled = false;      // client cancel while queued
    bool expect_failed = false;  // unrecoverable decode pattern
    bool accepted = false;
    bool shed = false;
    Bytes in{0}, out{0}, stripe{0};
    Bytes want{0};  // oracle result (valid unless expect_failed)
    Bytes pre{0};   // decode pre-state: what dead requests leave behind
    serve::EcFuture future;
  };
  const bool can_decode = !c.losses.empty() && c.r > 0;
  const std::size_t num_requests = 4 + rng() % 10;
  std::vector<ChaosReq> reqs(num_requests);
  std::size_t expected_accepted = 0, expected_shed = 0, expected_overload = 0;

  for (std::size_t i = 0; i < num_requests; ++i) {
    ChaosReq& r = reqs[i];
    r.decode = can_decode && rng() % 2 == 0;
    r.expired = rng() % 4 == 0;
    const auto timeout =
        r.expired ? std::chrono::nanoseconds{-1} : std::chrono::nanoseconds{0};
    const Bytes data = seeded_bytes(c.k * unit, c.seed + 131 * i);

    if (r.decode) {
      r.stripe = Bytes(n * unit);
      std::memcpy(r.stripe.data(), data.data(), c.k * unit);
      oracle.encode(data.span(), r.stripe.span().subspan(c.k * unit), unit);
      for (const std::size_t id : distinct(c.losses))
        std::memset(r.stripe.data() + id * unit, 0xEE, unit);
      r.pre = r.stripe;  // dead decodes must leave the holes untouched
      r.want = r.stripe;
      try {
        oracle.decode(r.want.span(), c.losses, unit);
      } catch (const std::runtime_error&) {
        r.expect_failed = true;  // > r distinct erasures
      }
      r.future = service.submit_decode(key, r.stripe.span(), c.losses, unit,
                                       timeout);
    } else {
      r.in = data;
      r.out = Bytes(c.r * unit);  // zero-initialized
      r.want = Bytes(c.r * unit);
      oracle.encode(r.in.span(), r.want.span(), unit);
      r.future = service.submit_encode(key, r.in.span(), r.out.span(), unit,
                                       timeout);
    }

    // Mirror of the admission rules, in push order: shedding first (a
    // doomed request is shed even when the queue is full), then global
    // capacity. The pump consumes nothing while we submit, so the mirror
    // is exact.
    if (sc.batch.deadline_shedding && r.expired) {
      r.shed = true;
      ++expected_shed;
      if (!r.future.ready() ||
          r.future.wait().status != serve::RequestStatus::Shed)
        return fail(c, "serve-chaos: doomed request " + std::to_string(i) +
                           " was not shed at admission");
    } else if (expected_accepted < sc.batch.queue_capacity) {
      r.accepted = true;
      ++expected_accepted;
      if (r.future.ready())
        return fail(c, "serve-chaos: request " + std::to_string(i) +
                           " completed before any pump ran");
    } else {
      ++expected_overload;
      if (!r.future.ready() ||
          r.future.wait().status != serve::RequestStatus::Overloaded)
        return fail(c, "serve-chaos: over-capacity request " +
                           std::to_string(i) + " was not rejected overloaded");
    }
  }

  // Client cancels land while everything is still queued; cancellation
  // must win over deadline expiry at formation time.
  for (ChaosReq& r : reqs)
    if (r.accepted && rng() % 4 == 0) {
      r.cancelled = true;
      r.future.cancel();
    }

  service.run_pending();

  std::size_t want_ok = 0, want_expired = 0, want_cancelled = 0,
              want_failed = 0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    ChaosReq& r = reqs[i];
    if (!r.accepted) continue;
    if (!r.future.ready())
      return fail(c, "serve-chaos: accepted request " + std::to_string(i) +
                         " not completed by run_pending");
    const serve::RequestStatus want_status =
        r.cancelled        ? serve::RequestStatus::Cancelled
        : r.expired        ? serve::RequestStatus::Expired
        : r.expect_failed  ? serve::RequestStatus::Failed
                           : serve::RequestStatus::Ok;
    switch (want_status) {
      case serve::RequestStatus::Ok: ++want_ok; break;
      case serve::RequestStatus::Expired: ++want_expired; break;
      case serve::RequestStatus::Cancelled: ++want_cancelled; break;
      case serve::RequestStatus::Failed: ++want_failed; break;
      default: break;
    }
    const serve::EcResult& result = r.future.wait();
    if (result.status != want_status)
      return fail(c, "serve-chaos: request " + std::to_string(i) +
                         " got status " + serve::to_string(result.status) +
                         ", want " + serve::to_string(want_status));
    if (want_status == serve::RequestStatus::Failed)
      continue;  // no byte contract after a failure
    // Ok requests must match the oracle; dead ones must be untouched —
    // encode outputs stay zero, decode stripes keep their holes.
    const bool ok = want_status == serve::RequestStatus::Ok;
    const auto got = r.decode ? r.stripe.span() : r.out.span();
    if (!ok && !r.decode) {
      for (const std::uint8_t b : got)
        if (b != 0)
          return fail(c, "serve-chaos: dead encode request " +
                             std::to_string(i) + " wrote to its output");
    } else if (auto d = first_divergence(
                   got, ok ? r.want.span() : r.pre.span(), unit,
                   "serve-chaos request " + std::to_string(i) +
                       (r.decode ? " (decode)" : " (encode)") +
                       (r.cancelled  ? " cancelled-untouched"
                        : r.expired  ? " expired-untouched"
                                     : "")))
      return fail(c, *d);
  }

  // Widened counter identities, balanced exactly against the mirror.
  const serve::ServeStatsSnapshot s = service.stats();
  const auto check = [&](bool ok, const std::string& what)
      -> std::optional<FuzzOutcome> {
    if (ok) return std::nullopt;
    return fail(c, "serve-chaos stats: " + what);
  };
  if (auto f = check(s.submitted == num_requests, "submitted != requests"))
    return *f;
  if (auto f = check(s.accepted == expected_accepted, "accepted mismatch"))
    return *f;
  if (auto f = check(s.rejected_shed == expected_shed, "shed mismatch"))
    return *f;
  if (auto f = check(s.rejected_overload == expected_overload,
                     "overload mismatch"))
    return *f;
  if (auto f = check(s.completed_ok == want_ok, "completed_ok mismatch"))
    return *f;
  if (auto f = check(s.expired == want_expired, "expired mismatch")) return *f;
  if (auto f = check(s.cancelled == want_cancelled, "cancelled mismatch"))
    return *f;
  if (auto f = check(s.failed == want_failed, "failed mismatch")) return *f;
  if (auto f = check(s.submitted == s.accepted + s.rejected_overload +
                                        s.rejected_shed + s.rejected_shutdown,
                     "submitted != accepted + rejected"))
    return *f;
  if (auto f = check(s.accepted == s.completed_ok + s.expired + s.failed +
                                       s.cancelled + s.shutdown_drained,
                     "accepted != terminal outcomes (drained)"))
    return *f;
  // Breaker accounting sanity: every trip was caused by an injected
  // fault, and degraded batches only exist after a trip.
  if (auto f = check(s.breaker_trips <= injected, "trips > injected faults"))
    return *f;
  if (auto f = check(s.breaker_trips > 0 || s.degraded_batches == 0,
                     "degraded batches without a breaker trip"))
    return *f;

  service.shutdown();
  Bytes late_in(c.k * unit), late_out(c.r * unit);
  serve::EcFuture late =
      service.submit_encode(key, late_in.span(), late_out.span(), unit);
  if (!late.ready() ||
      late.wait().status != serve::RequestStatus::Shutdown)
    return fail(c,
                "serve-chaos: post-shutdown submit did not complete as "
                "shutdown");
  return FuzzOutcome{true, {}, {}, 1};
}

/// Sharded multi-tenant differential: random tenant/client mixes through
/// ShardedEcService in manual-pump mode — client hashing across shards,
/// front-level tenant QoS (sometimes with hard weight skew so shares
/// bind), shard-local pools, shared or per-shard plan caches, and an
/// opportunistic steal scan — against the same sequential per-request
/// Codec oracle. Sharding, stealing, and QoS may only decide *where* a
/// request runs or whether it is admitted: completed bytes must match
/// the oracle exactly, and rejected/expired requests must leave their
/// buffers untouched (encode outputs stay zero, decode stripes keep
/// their holes). The per-tenant counter identities are asserted
/// unconditionally — every tenant balances, the tenant aggregate equals
/// the front aggregate bucket for bucket, and the per-shard sums plus
/// front-level QoS rejections reproduce the aggregate admission counts.
FuzzOutcome run_serve_shard(const FuzzConfig& c) {
  const ec::CodeParams params{c.k, c.r, c.w};
  const std::size_t unit = c.unit_size;
  const std::size_t n = params.n();

  std::mt19937_64 rng(c.seed ^ 0x54A2DED5ULL);
  serve::ShardedServiceConfig sc;
  sc.num_shards = 1 + rng() % 3;
  sc.workers_per_shard = 0;  // manual pump: admission deterministic
  sc.shard.batch.queue_capacity = 1 + rng() % 6;
  sc.shard.batch.max_batch_requests = 1 + rng() % 4;
  sc.shard.schedule = DiffFuzzer::schedule_menu().at(c.sched);
  sc.pool_bytes_per_shard = rng() % 2 == 0 ? std::size_t{1} << 20 : 0;
  sc.share_plan_cache = rng() % 2 == 0;
  const std::size_t num_tenants = 1 + rng() % 3;
  // Sometimes skew the weights hard, so shares bind and front-level QoS
  // rejections fire alongside the shards' queue-capacity ones.
  if (rng() % 2 == 0) sc.tenant_policies[1] = serve::TenantPolicy{8.0, {}, 1};
  serve::ShardedEcService service(sc);
  const serve::CodecKey key{c.k, c.r, c.w, c.family};

  core::Codec oracle(params, c.family);  // default schedule, sequential

  struct ShardReq {
    serve::TenantId tenant = 0;
    bool decode = false;
    bool expired = false;
    bool expect_failed = false;  // unrecoverable decode pattern
    bool accepted = false;
    Bytes in{0}, out{0}, stripe{0}, want{0};
    Bytes pre{0};  // decode pre-state: what dead requests leave behind
    serve::EcFuture future;
  };
  const bool can_decode = !c.losses.empty() && c.r > 0;
  const std::size_t num_requests = 3 + rng() % 12;
  std::vector<ShardReq> reqs(num_requests);
  std::size_t expected_accepted = 0, expected_rejected = 0;
  // Our own per-tenant ledger, mirrored against the registry at the end.
  std::map<serve::TenantId, serve::TenantCounters> mirror;

  for (std::size_t i = 0; i < num_requests; ++i) {
    ShardReq& r = reqs[i];
    r.tenant = 1 + rng() % num_tenants;
    const std::uint64_t client = rng() % (2 * sc.num_shards + 1);
    r.decode = can_decode && rng() % 2 == 0;
    r.expired = rng() % 5 == 0;
    const auto timeout =
        r.expired ? std::chrono::nanoseconds{-1} : std::chrono::nanoseconds{0};
    const Bytes data = seeded_bytes(c.k * unit, c.seed + 61 * i);

    if (r.decode) {
      r.stripe = Bytes(n * unit);
      std::memcpy(r.stripe.data(), data.data(), c.k * unit);
      oracle.encode(data.span(), r.stripe.span().subspan(c.k * unit), unit);
      for (const std::size_t id : distinct(c.losses))
        std::memset(r.stripe.data() + id * unit, 0xEE, unit);
      r.pre = r.stripe;  // dead decodes must leave the holes untouched
      r.want = r.stripe;
      if (!r.expired) {
        try {
          oracle.decode(r.want.span(), c.losses, unit);
        } catch (const std::runtime_error&) {
          r.expect_failed = true;  // > r distinct erasures
        }
      }
      r.future = service.submit_decode(r.tenant, client, key, r.stripe.span(),
                                       c.losses, unit, timeout);
    } else {
      r.in = data;
      r.out = Bytes(c.r * unit);  // zero-initialized
      r.want = Bytes(c.r * unit);
      if (!r.expired) oracle.encode(r.in.span(), r.want.span(), unit);
      r.future = service.submit_encode(r.tenant, client, key, r.in.span(),
                                       r.out.span(), unit, timeout);
    }

    // The admission verdict is whatever the front decided — a tenant
    // over its share and a full shard queue both land as an
    // immediately-ready Overloaded future; everything else must still
    // be pending (manual pump: nothing can have run yet).
    serve::TenantCounters& t = mirror[r.tenant];
    ++t.submitted;
    if (r.future.ready()) {
      if (r.future.wait().status != serve::RequestStatus::Overloaded)
        return fail(c, std::string("serve-shard: rejected request got ") +
                           serve::to_string(r.future.wait().status) +
                           ", want overloaded");
      ++expected_rejected;
      ++t.rejected_overload;
    } else {
      r.accepted = true;
      ++expected_accepted;
      ++t.accepted;
    }
  }

  // Exercise the steal path opportunistically: a bounded steal scan is
  // byte-neutral — it may only complete queued work on the thief's
  // thread, never change results or admission verdicts.
  if (sc.num_shards > 1 && rng() % 2 == 0)
    service.steal_for(rng() % sc.num_shards);

  service.run_pending();

  std::size_t want_ok = 0, want_expired = 0, want_failed = 0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    ShardReq& r = reqs[i];
    serve::TenantCounters& t = mirror[r.tenant];
    if (!r.accepted) {
      // Rejections must have left the buffers alone: encode outputs
      // stay zero, decode stripes keep their holes.
      if (!r.decode) {
        for (const std::uint8_t b : r.out.span())
          if (b != 0)
            return fail(c, "serve-shard: rejected encode request " +
                               std::to_string(i) + " wrote to its output");
      } else if (auto d = first_divergence(
                     r.stripe.span(), r.pre.span(), unit,
                     "serve-shard rejected request " + std::to_string(i))) {
        return fail(c, *d);
      }
      continue;
    }
    if (!r.future.ready())
      return fail(c, "serve-shard: accepted request " + std::to_string(i) +
                         " not completed by run_pending");
    const serve::RequestStatus want_status =
        r.expired ? serve::RequestStatus::Expired
        : r.expect_failed ? serve::RequestStatus::Failed
                          : serve::RequestStatus::Ok;
    switch (want_status) {
      case serve::RequestStatus::Ok: ++want_ok; ++t.completed_ok; break;
      case serve::RequestStatus::Expired: ++want_expired; ++t.expired; break;
      default: ++want_failed; ++t.failed; break;
    }
    const serve::EcResult& result = r.future.wait();
    if (result.status != want_status)
      return fail(c, "serve-shard: request " + std::to_string(i) +
                         " got status " + serve::to_string(result.status) +
                         ", want " + serve::to_string(want_status));
    if (r.expect_failed) continue;  // no byte contract after a failure
    // Ok requests must match the oracle; expired ones must be untouched
    // (encode outputs stay zero — `want` was never written — and decode
    // stripes keep their holes).
    const auto got = r.decode ? r.stripe.span() : r.out.span();
    const auto want = r.decode && r.expired ? r.pre.span() : r.want.span();
    if (auto d = first_divergence(
            got, want, unit,
            "serve-shard request " + std::to_string(i) +
                (r.decode ? " (decode)" : " (encode)") +
                (r.expired ? " expired-untouched" : "")))
      return fail(c, *d);
  }

  const serve::ShardedStatsSnapshot s = service.stats();
  const serve::ServeStatsSnapshot& a = s.aggregate;
  const auto check = [&](bool ok, const std::string& what)
      -> std::optional<FuzzOutcome> {
    if (ok) return std::nullopt;
    return fail(c, "serve-shard stats: " + what);
  };
  if (auto f = check(a.submitted == num_requests, "submitted != requests"))
    return *f;
  if (auto f = check(a.accepted == expected_accepted, "accepted mismatch"))
    return *f;
  if (auto f = check(a.rejected_overload == expected_rejected,
                     "overload mismatch"))
    return *f;
  if (auto f = check(a.completed_ok == want_ok, "completed_ok mismatch"))
    return *f;
  if (auto f = check(a.expired == want_expired, "expired mismatch")) return *f;
  if (auto f = check(a.failed == want_failed, "failed mismatch")) return *f;
  if (auto f = check(a.submitted == a.accepted + a.rejected_overload +
                                        a.rejected_shed + a.rejected_shutdown,
                     "submitted != accepted + rejected"))
    return *f;
  if (auto f = check(a.accepted == a.completed_ok + a.expired + a.failed +
                                       a.cancelled + a.shutdown_drained,
                     "accepted != terminal outcomes (drained)"))
    return *f;

  // Per-shard decomposition: shard sums plus front-level QoS rejections
  // reproduce the aggregate admission counts.
  std::uint64_t shard_submitted = 0, shard_accepted = 0;
  for (const serve::ShardStatsSnapshot& sh : s.shards) {
    shard_submitted += sh.stats.submitted;
    shard_accepted += sh.stats.accepted;
  }
  if (auto f = check(shard_submitted + s.qos_rejected == a.submitted,
                     "shard submitted + qos_rejected != aggregate submitted"))
    return *f;
  if (auto f = check(shard_accepted == a.accepted,
                     "shard accepted sum != aggregate accepted"))
    return *f;

  // Per-tenant identities, unconditional — each tenant balances and
  // matches our ledger exactly; the tenant aggregate equals the front
  // aggregate bucket for bucket.
  for (const serve::TenantCounters& t : s.tenants) {
    if (auto f = check(t.admission_balanced() && t.drained_balanced(),
                       "tenant " + std::to_string(t.tenant) +
                           " identities do not balance"))
      return *f;
    const serve::TenantCounters& m = mirror[t.tenant];
    const bool exact = t.submitted == m.submitted &&
                       t.accepted == m.accepted &&
                       t.rejected_overload == m.rejected_overload &&
                       t.completed_ok == m.completed_ok &&
                       t.expired == m.expired && t.failed == m.failed &&
                       t.rejected_shed == 0 && t.cancelled == 0;
    if (auto f = check(exact, "tenant " + std::to_string(t.tenant) +
                                  " counters diverge from the mirror"))
      return *f;
  }
  const serve::TenantCounters& ta = s.tenant_aggregate;
  const bool agg_equal =
      ta.submitted == a.submitted && ta.accepted == a.accepted &&
      ta.rejected_overload == a.rejected_overload &&
      ta.rejected_shed == a.rejected_shed &&
      ta.rejected_shutdown == a.rejected_shutdown &&
      ta.completed_ok == a.completed_ok && ta.expired == a.expired &&
      ta.failed == a.failed && ta.cancelled == a.cancelled &&
      ta.shutdown_drained == a.shutdown_drained && ta.in_queue == 0;
  if (auto f = check(agg_equal, "tenant aggregate != front aggregate"))
    return *f;

  // Post-shutdown submissions must complete as Shutdown — and the late
  // rejection must stay on the books with the identities still balanced.
  service.shutdown();
  Bytes late_in(c.k * unit), late_out(c.r * unit);
  serve::EcFuture late = service.submit_encode(1, 0, key, late_in.span(),
                                               late_out.span(), unit);
  if (!late.ready() ||
      late.wait().status != serve::RequestStatus::Shutdown)
    return fail(c,
                "serve-shard: post-shutdown submit did not complete as "
                "shutdown");
  const serve::ShardedStatsSnapshot s2 = service.stats();
  if (auto f = check(s2.aggregate.submitted == num_requests + 1 &&
                         s2.aggregate.rejected_shutdown == 1 &&
                         s2.tenant_aggregate.submitted ==
                             s2.aggregate.submitted &&
                         s2.tenant_aggregate.rejected_shutdown == 1,
                     "post-shutdown rejection not accounted"))
    return *f;
  return FuzzOutcome{true, {}, {}, 1};
}

}  // namespace

const std::vector<tensor::Schedule>& DiffFuzzer::schedule_menu() {
  static const std::vector<tensor::Schedule> menu = [] {
    std::vector<tensor::Schedule> m;
    m.push_back(tensor::default_schedule());
    m.push_back({.tile_m = 1, .tile_n = 1});                    // scalar
    m.push_back({.tile_m = 8, .tile_n = 64, .block_k = 8,
                 .block_n = 256});                              // big tiles
    m.push_back({.tile_m = 2, .tile_n = 16, .num_threads = 2,
                 .par_axis = tensor::ParAxis::N});              // parallel N
    m.push_back({.tile_m = 4, .tile_n = 4, .num_threads = 2,
                 .par_axis = tensor::ParAxis::MN,
                 .par_grain = 1});                              // 2D grid
    m.push_back({.tile_m = 4, .tile_n = 16,
                 .variant = tensor::KernelVariant::Scalar});    // pinned tier
    return m;
  }();
  return menu;
}

FuzzOutcome DiffFuzzer::run_one(const FuzzConfig& config) {
  try {
    config.validate();
    if (config.sched >= schedule_menu().size())
      throw std::invalid_argument("FuzzConfig: sched index out of range");
    switch (config.scenario) {
      case Scenario::RsEncode:
        return run_rs_encode(config);
      case Scenario::RsDecode:
        return run_rs_decode(config);
      case Scenario::LrcRoundTrip:
        return run_lrc(config);
      case Scenario::StorageRoundTrip:
        return run_storage(config, /*faulted=*/false);
      case Scenario::StorageFaulted:
        return run_storage(config, /*faulted=*/true);
      case Scenario::Serve:
        return run_serve(config);
      case Scenario::ServeChaos:
        return run_serve_chaos(config);
      case Scenario::ServeShard:
        return run_serve_shard(config);
      case Scenario::Cluster:
        return run_cluster(config, /*repair=*/false);
      case Scenario::ClusterRepair:
        return run_cluster(config, /*repair=*/true);
      case Scenario::ClusterHeal:
        return run_cluster_heal(config);
    }
    return fail(config, "unknown scenario");
  } catch (const std::exception& e) {
    return fail(config, std::string("unexpected exception: ") + e.what());
  }
}

FuzzOutcome DiffFuzzer::run_campaign(std::uint64_t seed,
                                     std::size_t iterations,
                                     std::uint64_t deadline_ms) {
  const auto start = std::chrono::steady_clock::now();
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < iterations; ++i) {
    if (deadline_ms != 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
      if (static_cast<std::uint64_t>(elapsed.count()) >= deadline_ms)
        return FuzzOutcome{true, {}, {}, i};
    }
    const FuzzConfig config = random_config(rng);
    FuzzOutcome outcome = run_one(config);
    if (!outcome.ok) {
      const FuzzConfig smallest = minimize(
          config, [](const FuzzConfig& c) { return !run_one(c).ok; });
      outcome = run_one(smallest);  // refresh detail for the minimized form
      outcome.ok = false;
      outcome.repro = format_repro(smallest);
      outcome.iterations = i + 1;
      return outcome;
    }
  }
  return FuzzOutcome{true, {}, {}, iterations};
}

namespace {

/// Drops loss ids that a shrunken shape can no longer address (they are
/// re-checked against still_fails, so semantics-changing clamps are only
/// ever *kept* when the failure survives them).
FuzzConfig clamp_losses(FuzzConfig c) {
  const std::size_t space =
      (c.scenario == Scenario::StorageRoundTrip ||
       c.scenario == Scenario::StorageFaulted ||
       c.scenario == Scenario::Cluster ||
       c.scenario == Scenario::ClusterRepair ||
       c.scenario == Scenario::ClusterHeal)
          ? c.n() + 2
          : c.n();
  std::erase_if(c.losses, [&](std::size_t id) { return id >= space; });
  return c;
}

bool is_valid(const FuzzConfig& c) {
  try {
    c.validate();
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

/// Simpler variants of `c`, most aggressive first.
std::vector<FuzzConfig> reductions(const FuzzConfig& c) {
  std::vector<FuzzConfig> out;
  const auto add = [&](FuzzConfig cand) {
    cand = clamp_losses(std::move(cand));
    if (cand != c && is_valid(cand)) out.push_back(std::move(cand));
  };
  for (std::size_t i = 0; i < c.losses.size(); ++i) {
    FuzzConfig cand = c;
    cand.losses.erase(cand.losses.begin() + static_cast<std::ptrdiff_t>(i));
    add(std::move(cand));
  }
  for (const std::size_t k : {c.k / 2, c.k - 1}) {
    FuzzConfig cand = c;
    cand.k = k;
    if (cand.scenario == Scenario::LrcRoundTrip)
      cand.l = std::min(cand.l, std::max<std::size_t>(cand.k, 1));
    add(std::move(cand));
  }
  if (c.r > 0) {
    FuzzConfig cand = c;
    cand.r = c.r - 1;
    add(std::move(cand));
  }
  if (c.scenario == Scenario::LrcRoundTrip && c.l > 1) {
    FuzzConfig cand = c;
    cand.l = 1;
    add(std::move(cand));
  }
  for (const std::size_t u : {static_cast<std::size_t>(c.w),
                              c.unit_size / 2 / c.w * c.w}) {
    FuzzConfig cand = c;
    cand.unit_size = u;
    add(std::move(cand));
  }
  if (c.sched != 0) {
    FuzzConfig cand = c;
    cand.sched = 0;
    add(std::move(cand));
  }
  if (c.frag != 0) {
    // Try the contiguous-only iteration first; if the failure persists,
    // the scattered arms were not the trigger. A fixed small seed keeps
    // the reproducer short when fragmentation does matter.
    FuzzConfig cand = c;
    cand.frag = 0;
    add(std::move(cand));
    if (c.frag > 9) {
      cand = c;
      cand.frag = c.frag % 7 + 1;
      add(std::move(cand));
    }
  }
  if (c.family != ec::RsFamily::CauchyGood) {
    FuzzConfig cand = c;
    cand.family = ec::RsFamily::CauchyGood;
    add(std::move(cand));
  }
  if (c.variant != tensor::KernelVariant::Auto) {
    // If the failure survives without the pinned tier, the variant was
    // irrelevant and the repro drops back to the dispatch default.
    FuzzConfig cand = c;
    cand.variant = tensor::KernelVariant::Auto;
    add(std::move(cand));
  }
  return out;
}

}  // namespace

FuzzConfig DiffFuzzer::minimize(
    const FuzzConfig& start,
    const std::function<bool(const FuzzConfig&)>& still_fails) {
  FuzzConfig best = start;
  // Greedy descent: accept the first reduction that still fails and
  // restart from it; stop at a fixed point. The step bound is a safety
  // net (every acceptance strictly shrinks some component).
  for (int step = 0; step < 1000; ++step) {
    bool improved = false;
    for (const FuzzConfig& cand : reductions(best)) {
      if (still_fails(cand)) {
        best = cand;
        improved = true;
        break;
      }
    }
    if (!improved) break;
  }
  return best;
}

}  // namespace tvmec::testing
