#include "tensor/scattered.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "tensor/buffer.h"
#include "tensor/kernel.h"
#include "tensor/schedule.h"

namespace tvmec::tensor {
namespace {

AlignedBuffer<std::uint64_t> random_words(std::size_t count,
                                          std::uint64_t seed) {
  AlignedBuffer<std::uint64_t> buf(count);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < count; ++i) buf[i] = rng();
  return buf;
}

AlignedBuffer<std::uint64_t> random_masks(std::size_t count,
                                          std::uint64_t seed) {
  AlignedBuffer<std::uint64_t> buf(count);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < count; ++i)
    buf[i] = (rng() & 1) ? ~std::uint64_t{0} : 0;
  return buf;
}

/// Splits [data, data+words) into fragments at random word boundaries —
/// deliberately ignoring row and tile boundaries, which is the hardest
/// layout the view must handle.
template <typename T>
std::vector<Fragment<T>> random_split(T* data, std::size_t words,
                                      std::uint64_t seed,
                                      std::size_t max_frag) {
  std::mt19937_64 rng(seed);
  std::vector<Fragment<T>> frags;
  std::size_t pos = 0;
  while (pos < words) {
    const std::size_t len =
        std::min<std::size_t>(words - pos, 1 + rng() % max_frag);
    frags.push_back({data + pos, len});
    pos += len;
  }
  return frags;
}

struct Shape {
  std::size_t m, n, k;
};

/// Runs the scattered kernel over randomly fragmented copies of B/C and
/// checks byte identity against the contiguous gemm_xorand result.
void check_scattered_matches_contiguous(const Shape& shape, const Schedule& s,
                                        std::uint64_t frag_seed,
                                        std::size_t max_frag) {
  const auto a = random_masks(shape.m * shape.k, 11 + shape.m);
  const auto b = random_words(shape.k * shape.n, 22 + shape.n);
  AlignedBuffer<std::uint64_t> ref(shape.m * shape.n);
  AlignedBuffer<std::uint64_t> out(shape.m * shape.n);

  const MatView<const std::uint64_t> av{a.data(), shape.m, shape.k, shape.k};
  gemm_xorand(av, {b.data(), shape.k, shape.n, shape.n},
              {ref.data(), shape.m, shape.n, shape.n}, s);

  const ScatteredView<const std::uint64_t> bs(
      shape.k, shape.n,
      random_split<const std::uint64_t>(b.data(), shape.k * shape.n,
                                        frag_seed, max_frag));
  const ScatteredView<std::uint64_t> cs(
      shape.m, shape.n,
      random_split<std::uint64_t>(out.data(), shape.m * shape.n,
                                  frag_seed ^ 0x9E3779B9, max_frag));
  gemm_xorand_scattered(av, bs, cs, s);

  ASSERT_EQ(0, std::memcmp(ref.data(), out.data(),
                           shape.m * shape.n * sizeof(std::uint64_t)))
      << "m=" << shape.m << " n=" << shape.n << " k=" << shape.k
      << " frag_seed=" << frag_seed;
}

TEST(ScatteredView, ValidatesFragments) {
  AlignedBuffer<std::uint64_t> buf(8);
  using V = ScatteredView<std::uint64_t>;
  EXPECT_THROW(V(0, 4, {{buf.data(), 4}}), std::invalid_argument);
  EXPECT_THROW(V(2, 4, {{buf.data(), 4}}), std::invalid_argument);  // != 8
  EXPECT_THROW(V(2, 4, {{nullptr, 8}}), std::invalid_argument);
  EXPECT_THROW(V(2, 4, {{buf.data(), 0}, {buf.data(), 8}}),
               std::invalid_argument);
  EXPECT_NO_THROW(V(2, 4, {{buf.data(), 3}, {buf.data() + 3, 5}}));
}

TEST(ScatteredView, GatherScatterRoundTripAcrossBoundaries) {
  auto src = random_words(257, 7);
  auto split = random_split<std::uint64_t>(src.data(), 257, 99, 10);
  const ScatteredView<std::uint64_t> view(1, 257, std::move(split));
  std::vector<std::uint64_t> tmp(257);
  view.gather(0, 257, tmp.data());
  EXPECT_EQ(0, std::memcmp(tmp.data(), src.data(), 257 * 8));

  // Ranges that straddle several fragments.
  std::vector<std::uint64_t> mid(100);
  view.gather(57, 100, mid.data());
  EXPECT_EQ(0, std::memcmp(mid.data(), src.data() + 57, 100 * 8));
  for (auto& w : mid) w = ~w;
  view.scatter(57, 100, mid.data());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(src[57 + i], mid[i]);
}

TEST(ScatteredGemm, SingleFragmentMatchesContiguousFastPath) {
  const Shape shape{8, 96, 24};
  const auto a = random_masks(shape.m * shape.k, 1);
  const auto b = random_words(shape.k * shape.n, 2);
  AlignedBuffer<std::uint64_t> ref(shape.m * shape.n);
  AlignedBuffer<std::uint64_t> out(shape.m * shape.n);
  const MatView<const std::uint64_t> av{a.data(), shape.m, shape.k, shape.k};
  const Schedule s = default_schedule();
  gemm_xorand(av, {b.data(), shape.k, shape.n, shape.n},
              {ref.data(), shape.m, shape.n, shape.n}, s);

  const ScatteredView<const std::uint64_t> bs(
      shape.k, shape.n, {{b.data(), shape.k * shape.n}});
  const ScatteredView<std::uint64_t> cs(shape.m, shape.n,
                                        {{out.data(), shape.m * shape.n}});
  EXPECT_TRUE(bs.contiguous());
  gemm_xorand_scattered(av, bs, cs, s);
  EXPECT_EQ(0, std::memcmp(ref.data(), out.data(),
                           shape.m * shape.n * sizeof(std::uint64_t)));
}

TEST(ScatteredGemm, WordMisalignedFragmentBoundaries) {
  // Fragment boundaries at arbitrary (odd, prime, non-tile) word offsets
  // that never line up with rows or register tiles.
  check_scattered_matches_contiguous({8, 131, 24}, default_schedule(),
                                     /*frag_seed=*/3, /*max_frag=*/7);
  check_scattered_matches_contiguous({5, 97, 17}, default_schedule(),
                                     /*frag_seed=*/5, /*max_frag=*/13);
}

TEST(ScatteredGemm, DegenerateShapes) {
  // k == 1 (single input row) and m == 1 (single output row — the r == 0
  // analogue at kernel level is "no call at all", so m == 1 is the
  // smallest computable C).
  check_scattered_matches_contiguous({1, 64, 1}, default_schedule(), 17, 5);
  check_scattered_matches_contiguous({1, 33, 7}, default_schedule(), 19, 3);
  check_scattered_matches_contiguous({9, 1, 4}, default_schedule(), 23, 2);
}

TEST(ScatteredGemm, FragmentsSmallerThanATile) {
  // Every fragment is 1..3 words while tiles are tile_n = 8..64 wide:
  // each panel gather crosses many fragments per register tile.
  Schedule s = default_schedule();
  s.tile_n = 16;
  check_scattered_matches_contiguous({8, 160, 24}, s, 29, 3);
  Schedule wide = default_schedule();
  wide.tile_n = 64;
  check_scattered_matches_contiguous({4, 256, 16}, wide, 31, 2);
}

TEST(ScatteredGemm, BlockedSchedulesAndRaggedEdges) {
  Schedule s = default_schedule();
  s.block_k = 8;
  s.block_n = 48;
  check_scattered_matches_contiguous({7, 133, 21}, s, 37, 11);
  s.block_n = 0;  // auto panel sizing
  s.block_k = 0;
  check_scattered_matches_contiguous({33, 130, 80}, s, 41, 19);
}

TEST(ScatteredGemm, ThreadedMatchesSerial) {
  for (const int threads : {2, 4}) {
    Schedule s = default_schedule();
    s.num_threads = threads;
    check_scattered_matches_contiguous({8, 1024, 40}, s, 43 + threads, 23);
    check_scattered_matches_contiguous({16, 517, 32}, s, 47 + threads, 9);
  }
}

TEST(ScatteredGemm, ShapeMismatchThrows) {
  const Shape shape{4, 16, 8};
  const auto a = random_masks(shape.m * shape.k, 3);
  auto b = random_words(shape.k * shape.n, 4);
  AlignedBuffer<std::uint64_t> out(shape.m * shape.n);
  const MatView<const std::uint64_t> av{a.data(), shape.m, shape.k, shape.k};
  const ScatteredView<const std::uint64_t> bs(
      shape.k, shape.n, {{b.data(), shape.k * shape.n}});
  const ScatteredView<std::uint64_t> c_wrong(
      shape.m, shape.n / 2, {{out.data(), shape.m * shape.n / 2}});
  EXPECT_THROW(gemm_xorand_scattered(av, bs, c_wrong, default_schedule()),
               std::invalid_argument);
}

TEST(ScatteredGemm, BatchedPathIsZeroCopy) {
  // The serving batched primitive must not stage: submit a multi-item
  // threaded batch (the path that used to memcpy through b_scratch /
  // c_scratch) and assert the staging counter does not move.
  const std::size_t k = 24, m = 8, n_i = 512;
  const auto a = random_masks(m * k, 51);
  std::vector<AlignedBuffer<std::uint64_t>> bs, cs;
  std::vector<XorAndBatch> items;
  for (int i = 0; i < 4; ++i) {
    bs.push_back(random_words(k * n_i, 60 + i));
    cs.emplace_back(m * n_i);
  }
  for (int i = 0; i < 4; ++i)
    items.push_back(XorAndBatch{{bs[i].data(), k, n_i, n_i},
                                {cs[i].data(), m, n_i, n_i}});
  Schedule s = default_schedule();
  s.num_threads = 2;

  const std::uint64_t before = kernel_stage_stats().stage_copies;
  gemm_xorand_batched({a.data(), m, k, k}, items, s);
  EXPECT_EQ(before, kernel_stage_stats().stage_copies);

  // Byte-identical to the per-item sequential oracle.
  for (int i = 0; i < 4; ++i) {
    AlignedBuffer<std::uint64_t> ref(m * n_i);
    gemm_xorand({a.data(), m, k, k}, {bs[i].data(), k, n_i, n_i},
                {ref.data(), m, n_i, n_i}, default_schedule());
    EXPECT_EQ(0, std::memcmp(ref.data(), cs[i].data(),
                             m * n_i * sizeof(std::uint64_t)))
        << "item " << i;
  }
}

TEST(ScatteredScratch, RetentionIsCappedAndHighWaterMarkMoves) {
  // A schedule demanding a panel beyond the retention cap must be served
  // (overflow allocation) without pinning that much scratch on the
  // thread afterwards.
  const std::size_t k = 16, m = 8, n = 40000;
  const auto a = random_masks(m * k, 71);
  const auto b = random_words(k * n, 72);
  AlignedBuffer<std::uint64_t> out(m * n);
  Schedule s = default_schedule();
  s.block_n = 32768;  // panel (k + m) * 32768 words = 6 MiB >> cap

  const ScatteredView<const std::uint64_t> bs(
      k, n, random_split<const std::uint64_t>(b.data(), k * n, 73, 1000));
  const ScatteredView<std::uint64_t> cs(
      m, n, random_split<std::uint64_t>(out.data(), m * n, 74, 1000));
  gemm_xorand_scattered({a.data(), m, k, k}, bs, cs, s);

  EXPECT_LE(kernel_scratch_retained_bytes(), kScratchRetainBytes);
  EXPECT_GE(kernel_stage_stats().scratch_high_water_bytes,
            (k + m) * std::size_t{32768} * 8);

  // And the result is still right.
  AlignedBuffer<std::uint64_t> ref(m * n);
  gemm_xorand({a.data(), m, k, k}, {b.data(), k, n, n},
              {ref.data(), m, n, n}, default_schedule());
  EXPECT_EQ(0, std::memcmp(ref.data(), out.data(), m * n * 8));
}

}  // namespace
}  // namespace tvmec::tensor
