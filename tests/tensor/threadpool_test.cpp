#include "tensor/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tvmec::tensor {
namespace {

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 200;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, ParallelSumIsCorrect) {
  ThreadPool pool(3);
  constexpr std::size_t kCount = 1000;
  std::atomic<long long> sum{0};
  pool.parallel_for(kCount, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(kCount * (kCount - 1) / 2));
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 5)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(10, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 10);
  }
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

}  // namespace
}  // namespace tvmec::tensor
