#include "tensor/threadpool.h"

#include <gtest/gtest.h>

#include "tensor/cancel.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace tvmec::tensor {
namespace {

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 200;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

// Regression: dispatching fewer items than workers must run each item
// exactly once with the surplus threads idling — not dispatch empty
// ranges or divide by zero when carving chunks.
TEST(ThreadPool, FewerItemsThanThreadsRunsEachOnce) {
  ThreadPool pool(8);
  for (const std::size_t count : {2u, 3u, 7u}) {
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i], 1);
  }
}

TEST(ThreadPool, ParallelSumIsCorrect) {
  ThreadPool pool(3);
  constexpr std::size_t kCount = 1000;
  std::atomic<long long> sum{0};
  pool.parallel_for(kCount, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(kCount * (kCount - 1) / 2));
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 5)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(10, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 10);
  }
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

TEST(ThreadPool, CallerParticipatesInWork) {
  // Fork-join semantics: the dispatching thread is a worker, so even a
  // width-1 pool (zero helpers) executes the whole range.
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 12;
  constexpr std::size_t kInner = 9;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t o) {
    // Same pool from inside a job: must execute inline, not block.
    pool.parallel_for(kInner, [&](std::size_t i) { ++hits[o * kInner + i]; });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, DeeplyNestedStillCompletes) {
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(3, [&](std::size_t) {
      pool.parallel_for(2, [&](std::size_t) { ++leaves; });
    });
  });
  EXPECT_EQ(leaves.load(), 4 * 3 * 2);
}

TEST(ThreadPool, NestedExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(6,
                                 [&](std::size_t o) {
                                   pool.parallel_for(4, [&](std::size_t i) {
                                     if (o == 3 && i == 2)
                                       throw std::runtime_error("inner");
                                   });
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ExceptionStressManyRounds) {
  // The pool must stay healthy across repeated throwing dispatches —
  // completion/error state is pool-owned, never a dangling stack slot.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    EXPECT_THROW(pool.parallel_for(32,
                                   [&](std::size_t i) {
                                     if (i % 3 == 0)
                                       throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // A clean job right after must still run everything exactly once.
    std::atomic<int> count{0};
    pool.parallel_for(32, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 32);
  }
}

TEST(ThreadPool, MaxWorkersCapsParticipants) {
  ThreadPool pool(8);
  std::mutex mu;
  std::set<std::thread::id> seen;
  // Long enough chunks that an uncapped pool would certainly use >2
  // threads; the cap must keep participation to at most 2.
  pool.parallel_for(
      64,
      [&](std::size_t) {
        std::lock_guard lock(mu);
        seen.insert(std::this_thread::get_id());
      },
      /*max_workers=*/2);
  EXPECT_LE(seen.size(), 2u);
  EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPool, ConcurrentDispatchersSerializeSafely) {
  // Multiple external threads hammering one pool: jobs serialize through
  // the dispatch lock and every index of every job runs exactly once.
  ThreadPool pool(4);
  constexpr int kDispatchers = 6;
  constexpr std::size_t kCount = 128;
  std::vector<std::atomic<int>> totals(kDispatchers);
  std::vector<std::thread> dispatchers;
  dispatchers.reserve(kDispatchers);
  for (int d = 0; d < kDispatchers; ++d) {
    dispatchers.emplace_back([&, d] {
      for (int round = 0; round < 10; ++round)
        pool.parallel_for(kCount, [&](std::size_t) { ++totals[d]; });
    });
  }
  for (auto& t : dispatchers) t.join();
  for (int d = 0; d < kDispatchers; ++d)
    EXPECT_EQ(totals[d].load(), static_cast<int>(kCount) * 10);
}

TEST(ThreadPool, RawDispatchAvoidsCallables) {
  // The raw fn+ctx entry point used by hot kernel paths.
  ThreadPool pool(2);
  std::atomic<long long> sum{0};
  const auto raw = [](void* ctx, std::size_t i) {
    static_cast<std::atomic<long long>*>(ctx)->fetch_add(
        static_cast<long long>(i), std::memory_order_relaxed);
  };
  pool.parallel_for(100, +raw, &sum);
  EXPECT_EQ(sum.load(), 100LL * 99 / 2);
}

TEST(ThreadPool, PreCancelledRunsNoIterations) {
  ThreadPool pool(4);
  CancelSource source;
  source.request_cancel();
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(
          1000, [&](std::size_t) { ++ran; }, 0, source.token().raw()),
      Cancelled);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, MidRunCancelStopsClaimingChunksPromptly) {
  ThreadPool pool(4);
  CancelSource source;
  std::atomic<int> ran{0};
  constexpr std::size_t kCount = 1 << 20;
  // Iteration 0 (claimed by someone early) raises the flag; the claim
  // loop must stop long before draining the full index space.
  EXPECT_THROW(pool.parallel_for(
                   kCount,
                   [&](std::size_t i) {
                     if (i == 0) source.request_cancel();
                     ++ran;
                   },
                   0, source.token().raw()),
               Cancelled);
  // "Promptly" = bounded by the chunks already claimed when the flag
  // rose, far below the total. The bound is loose on purpose (chunk
  // sizes are an implementation detail); the point is it cannot be the
  // whole range.
  EXPECT_LT(ran.load(), static_cast<int>(kCount / 2));
}

TEST(ThreadPool, CancelledNestedInnerDoesNotDeadlockOuter) {
  ThreadPool pool(4);
  CancelSource source;
  source.request_cancel();
  std::atomic<int> outer_done{0};
  std::atomic<int> inner_cancelled{0};
  // The inner call runs inline on each participant (nested dispatch);
  // its Cancelled must unwind into the outer body — where we absorb it —
  // without abandoning any pool state or wedging the outer join.
  pool.parallel_for(16, [&](std::size_t) {
    try {
      pool.parallel_for(
          64, [](std::size_t) {}, 0, source.token().raw());
    } catch (const Cancelled&) {
      ++inner_cancelled;
    }
    ++outer_done;
  });
  EXPECT_EQ(outer_done.load(), 16);
  EXPECT_EQ(inner_cancelled.load(), 16);
}

TEST(ThreadPool, CancelledOuterWithNestedInnerUnwinds) {
  ThreadPool pool(4);
  CancelSource source;
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(
                   256,
                   [&](std::size_t i) {
                     if (i == 0) source.request_cancel();
                     pool.parallel_for(8, [&](std::size_t) { ++ran; });
                   },
                   0, source.token().raw()),
               Cancelled);
  EXPECT_GT(ran.load(), 0);  // at least the flag-raising iteration ran
}

TEST(ThreadPool, PoolHealthyAfterCancellation) {
  ThreadPool pool(4);
  CancelSource source;
  source.request_cancel();
  EXPECT_THROW(pool.parallel_for(
                   100, [](std::size_t) {}, 0, source.token().raw()),
               Cancelled);
  // The pool must be fully reusable: no stale job slot, no lost worker.
  std::vector<std::atomic<int>> hits(200);
  pool.parallel_for(200, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 200; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, CancellationDominatesOverBodyException) {
  // When both a body exception and the cancel flag are observed, the
  // call reports Cancelled — the caller asked for the stop, the partial
  // work's failure is moot.
  ThreadPool pool(2);
  CancelSource source;
  EXPECT_THROW(pool.parallel_for(
                   100,
                   [&](std::size_t i) {
                     if (i == 0) {
                       source.request_cancel();
                       throw std::runtime_error("body failure");
                     }
                   },
                   0, source.token().raw()),
               Cancelled);
}

TEST(ThreadPool, NullCancelFlagIsFree) {
  // The defaulted-parameter path: behavior identical to no cancellation.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.parallel_for(
      50, [&](std::size_t) { ++ran; }, 0, nullptr);
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, CancelStressManyRounds) {
  // Repeated cancelled dispatches from alternating flags: exercises the
  // job-slot reset path under contention (the TSan job runs this too).
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    CancelSource source;
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(
          1024,
          [&](std::size_t i) {
            if (i % 7 == 0) source.request_cancel();
            ++ran;
          },
          0, source.token().raw());
    } catch (const Cancelled&) {
    }
    std::atomic<int> ok{0};
    pool.parallel_for(32, [&](std::size_t) { ++ok; });
    ASSERT_EQ(ok.load(), 32);
  }
}

TEST(ThreadPool, DynamicBalancingDrainsSkewedWork) {
  // One chunk is 100x the others; the atomic claim counter must let the
  // other workers drain the rest meanwhile. (Correctness check here;
  // bench_thread_scaling measures the balance win.)
  ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.parallel_for(40, [&](std::size_t i) {
    volatile std::uint64_t x = 0;
    const std::uint64_t spins = (i == 0) ? 2'000'000 : 20'000;
    for (std::uint64_t s = 0; s < spins; ++s) x = x + s;
    ++done;
  });
  EXPECT_EQ(done.load(), 40);
}

}  // namespace
}  // namespace tvmec::tensor
