#include "tensor/variant.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "tensor/buffer.h"
#include "tensor/kernel.h"
#include "tensor/microkernel.h"
#include "tensor/scattered.h"
#include "tensor/xorand_kernels.h"

namespace tvmec::tensor {
namespace {

/// Every test that touches the process-wide force restores the prior
/// state on exit, so test order can't leak a pinned tier.
class ForceRestorer {
 public:
  ForceRestorer() : prev_(forced_variant()) {}
  ~ForceRestorer() { set_forced_variant(prev_); }

 private:
  std::optional<KernelVariant> prev_;
};

TEST(Variant, NamesRoundTrip) {
  for (const KernelVariant v :
       {KernelVariant::Auto, KernelVariant::Scalar, KernelVariant::Avx2,
        KernelVariant::Avx512, KernelVariant::Neon}) {
    const auto back = variant_from_string(to_string(v));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
  EXPECT_FALSE(variant_from_string("sse9").has_value());
  EXPECT_FALSE(variant_from_string("").has_value());
  EXPECT_FALSE(variant_from_string("AVX2").has_value());  // case-sensitive
}

TEST(Variant, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(variant_available(KernelVariant::Scalar));
  ASSERT_NE(xorand_table(KernelVariant::Scalar), nullptr);
}

TEST(Variant, AvailableVariantsStartAtScalarAndEndAtBest) {
  const std::vector<KernelVariant> menu = available_variants();
  ASSERT_FALSE(menu.empty());
  EXPECT_EQ(menu.front(), KernelVariant::Scalar);
  EXPECT_EQ(menu.back(), best_variant());
  for (const KernelVariant v : menu) EXPECT_TRUE(variant_available(v));
}

TEST(Variant, DetectionMatchesCompiledTables) {
  // variant_available means BOTH the CPU supports the tier and this
  // build compiled it; either side alone must not offer the variant.
  const CpuFeatures& f = cpu_features();
  if (variant_available(KernelVariant::Avx2)) {
    EXPECT_TRUE(f.avx2);
    EXPECT_NE(xorand_table_avx2(), nullptr);
  }
  if (variant_available(KernelVariant::Avx512)) {
    EXPECT_TRUE(f.avx512f && f.avx512bw && f.avx512vl);
    EXPECT_NE(xorand_table_avx512(), nullptr);
  }
  if (variant_available(KernelVariant::Neon)) {
    EXPECT_TRUE(f.neon);
    EXPECT_NE(xorand_table_neon(), nullptr);
  }
}

TEST(Variant, EveryAvailableTableIsFullyPopulated) {
  for (const KernelVariant v : available_variants()) {
    const XorAndKernelTable* table = xorand_table(v);
    ASSERT_NE(table, nullptr) << to_string(v);
    for (int mi = 0; mi < 4; ++mi)
      for (int ni = 0; ni < 7; ++ni)
        EXPECT_NE(table->fn[mi][ni], nullptr)
            << to_string(v) << " tile index " << mi << "," << ni;
  }
}

TEST(Variant, ResolveHonorsAvailableRequestAndFallsBackOtherwise) {
  ForceRestorer restore;
  set_forced_variant(std::nullopt);
  EXPECT_EQ(resolve_variant(KernelVariant::Auto), best_variant());
  EXPECT_EQ(resolve_variant(KernelVariant::Scalar), KernelVariant::Scalar);
  for (const KernelVariant v :
       {KernelVariant::Avx2, KernelVariant::Avx512, KernelVariant::Neon}) {
    if (variant_available(v))
      EXPECT_EQ(resolve_variant(v), v);
    else
      EXPECT_EQ(resolve_variant(v), best_variant());
  }
}

TEST(Variant, ForceBeatsScheduleRequest) {
  ForceRestorer restore;
  set_forced_variant(KernelVariant::Scalar);
  EXPECT_EQ(active_variant(), KernelVariant::Scalar);
  EXPECT_EQ(resolve_variant(best_variant()), KernelVariant::Scalar);
  set_forced_variant(std::nullopt);
  EXPECT_EQ(active_variant(), best_variant());
}

TEST(Variant, ForcingUnavailableTierIsIgnoredNotFatal) {
  ForceRestorer restore;
  set_forced_variant(std::nullopt);
  // At most one of NEON / AVX-512 exists on any real host; force the
  // missing one and expect dispatch to keep running on best-available.
  for (const KernelVariant v : {KernelVariant::Neon, KernelVariant::Avx512,
                                KernelVariant::Avx2}) {
    if (variant_available(v)) continue;
    set_forced_variant(v);
    EXPECT_EQ(active_variant(), best_variant()) << to_string(v);
  }
}

TEST(Variant, EnvOverrideRoundTrips) {
  ForceRestorer restore;
  ASSERT_EQ(setenv("TVMEC_FORCE_VARIANT", "scalar", 1), 0);
  EXPECT_EQ(reload_forced_variant_from_env(), KernelVariant::Scalar);
  EXPECT_EQ(active_variant(), KernelVariant::Scalar);

  ASSERT_EQ(setenv("TVMEC_FORCE_VARIANT", "not-a-variant", 1), 0);
  EXPECT_EQ(reload_forced_variant_from_env(), std::nullopt);
  EXPECT_EQ(active_variant(), best_variant());

  ASSERT_EQ(unsetenv("TVMEC_FORCE_VARIANT"), 0);
  EXPECT_EQ(reload_forced_variant_from_env(), std::nullopt);
}

TEST(Variant, SimdCodegenReportsRuntimeTruth) {
  ForceRestorer restore;
  set_forced_variant(KernelVariant::Scalar);
  EXPECT_FALSE(xorand_simd_codegen());
  set_forced_variant(std::nullopt);
  EXPECT_EQ(xorand_simd_codegen(),
            best_variant() != KernelVariant::Scalar);
}

/// Fills a matrix with a seeded pattern; A gets XorAnd broadcast masks
/// (0 or ~0), B gets arbitrary words.
void fill_mask(std::uint64_t* p, std::size_t n, std::mt19937_64& rng) {
  for (std::size_t i = 0; i < n; ++i)
    p[i] = rng() % 2 == 0 ? ~std::uint64_t{0} : 0;
}
void fill_words(std::uint64_t* p, std::size_t n, std::mt19937_64& rng) {
  for (std::size_t i = 0; i < n; ++i) p[i] = rng();
}

/// Runs gemm_xorand for one (shape, schedule) under the scalar tier and
/// under `v`, expecting byte-identical C. `misalign` shifts every
/// operand one word off the allocation start, denying the kernels any
/// 64-byte-alignment assumption.
void expect_variant_matches_scalar(KernelVariant v, std::size_t m,
                                   std::size_t n, std::size_t k,
                                   const Schedule& base, bool misalign) {
  std::mt19937_64 rng(m * 1000003 + n * 1009 + k);
  const std::size_t pad = misalign ? 1 : 0;
  AlignedBuffer<std::uint64_t> a(m * k + pad), b(k * n + pad);
  AlignedBuffer<std::uint64_t> c_scalar(m * n + pad), c_variant(m * n + pad);
  fill_mask(a.data() + pad, m * k, rng);
  fill_words(b.data() + pad, k * n, rng);

  const MatView<const std::uint64_t> av{a.data() + pad, m, k, k};
  const MatView<const std::uint64_t> bv{b.data() + pad, k, n, n};

  Schedule s = base;
  s.variant = KernelVariant::Scalar;
  gemm_xorand(av, bv, {c_scalar.data() + pad, m, n, n}, s);
  s.variant = v;
  gemm_xorand(av, bv, {c_variant.data() + pad, m, n, n}, s);

  for (std::size_t i = 0; i < m * n; ++i)
    ASSERT_EQ(c_variant[pad + i], c_scalar[pad + i])
        << to_string(v) << " diverged at word " << i << " (m=" << m
        << " n=" << n << " k=" << k << " sched=" << base.to_string()
        << " misalign=" << misalign << ")";
}

TEST(VariantDifferential, GemmMatchesScalarAcrossShapesAndTiles) {
  ForceRestorer restore;
  set_forced_variant(std::nullopt);
  const struct {
    std::size_t m, n, k;
  } shapes[] = {{1, 1, 1},   {3, 5, 7},    {8, 64, 16},
                {16, 100, 9}, {4, 257, 33}, {2, 31, 80}};
  for (const KernelVariant v : available_variants()) {
    if (v == KernelVariant::Scalar) continue;
    for (const auto& sh : shapes) {
      for (const int tm : {1, 4, 8}) {
        for (const int tn : {1, 4, 16, 64}) {
          Schedule s;
          s.tile_m = tm;
          s.tile_n = tn;
          s.block_n = 64;
          expect_variant_matches_scalar(v, sh.m, sh.n, sh.k, s, false);
        }
      }
    }
  }
}

TEST(VariantDifferential, GemmMatchesScalarOnMisalignedBuffers) {
  ForceRestorer restore;
  set_forced_variant(std::nullopt);
  for (const KernelVariant v : available_variants()) {
    if (v == KernelVariant::Scalar) continue;
    Schedule s;
    s.tile_m = 4;
    s.tile_n = 16;
    expect_variant_matches_scalar(v, 6, 77, 13, s, true);
    s.tile_n = 64;
    expect_variant_matches_scalar(v, 8, 130, 24, s, true);
  }
}

TEST(VariantDifferential, BatchedWideNMatchesScalar) {
  ForceRestorer restore;
  set_forced_variant(std::nullopt);
  const std::size_t m = 8, k = 16;
  const std::size_t widths[] = {3, 64, 17, 256, 1};
  std::mt19937_64 rng(42);

  AlignedBuffer<std::uint64_t> a(m * k);
  fill_mask(a.data(), m * k, rng);
  const MatView<const std::uint64_t> av{a.data(), m, k, k};

  std::vector<AlignedBuffer<std::uint64_t>> bs, cs_scalar, cs_variant;
  for (const std::size_t n : widths) {
    bs.emplace_back(k * n);
    fill_words(bs.back().data(), k * n, rng);
    cs_scalar.emplace_back(m * n);
    cs_variant.emplace_back(m * n);
  }

  const auto run = [&](KernelVariant v,
                       std::vector<AlignedBuffer<std::uint64_t>>& cs) {
    std::vector<XorAndBatch> items;
    for (std::size_t i = 0; i < std::size(widths); ++i)
      items.push_back({{bs[i].data(), k, widths[i], widths[i]},
                       {cs[i].data(), m, widths[i], widths[i]}});
    Schedule s;
    s.tile_m = 4;
    s.tile_n = 16;
    s.variant = v;
    gemm_xorand_batched(av, items, s);
  };

  for (const KernelVariant v : available_variants()) {
    if (v == KernelVariant::Scalar) continue;
    run(KernelVariant::Scalar, cs_scalar);
    run(v, cs_variant);
    for (std::size_t i = 0; i < std::size(widths); ++i)
      for (std::size_t w = 0; w < m * widths[i]; ++w)
        ASSERT_EQ(cs_variant[i][w], cs_scalar[i][w])
            << to_string(v) << " batched item " << i << " word " << w;
  }
}

TEST(VariantDifferential, ScatteredFragmentsMatchScalar) {
  ForceRestorer restore;
  set_forced_variant(std::nullopt);
  const std::size_t m = 6, n = 143, k = 21;
  std::mt19937_64 rng(7);

  AlignedBuffer<std::uint64_t> a(m * k), b(k * n);
  AlignedBuffer<std::uint64_t> c_scalar(m * n), c_variant(m * n);
  fill_mask(a.data(), m * k, rng);
  fill_words(b.data(), k * n, rng);
  const MatView<const std::uint64_t> av{a.data(), m, k, k};

  const auto split = [&rng](auto* base, std::size_t words) {
    using T = std::remove_reference_t<decltype(*base)>;
    std::vector<Fragment<T>> frags;
    std::size_t pos = 0;
    while (pos < words) {
      const std::size_t len = std::min<std::size_t>(words - pos,
                                                    1 + rng() % 23);
      frags.push_back({base + pos, len});
      pos += len;
    }
    return frags;
  };
  // One fragmentation shared by both runs so the operands are identical.
  const auto b_frags =
      split(static_cast<const std::uint64_t*>(b.data()), k * n);
  const auto cs_frags = split(c_scalar.data(), m * n);
  const auto cv_frags = split(c_variant.data(), m * n);

  Schedule s;
  s.tile_m = 4;
  s.tile_n = 16;
  for (const KernelVariant v : available_variants()) {
    if (v == KernelVariant::Scalar) continue;
    s.variant = KernelVariant::Scalar;
    gemm_xorand_scattered(av, {k, n, b_frags}, {m, n, cs_frags}, s);
    s.variant = v;
    gemm_xorand_scattered(av, {k, n, b_frags}, {m, n, cv_frags}, s);
    for (std::size_t i = 0; i < m * n; ++i)
      ASSERT_EQ(c_variant[i], c_scalar[i])
          << to_string(v) << " scattered word " << i;
  }
}

TEST(VariantDifferential, EnvForcedRunMatchesUnforced) {
  // The env knob must select the same code the schedule knob selects:
  // force the best tier via env, compare against a schedule-pinned run.
  ForceRestorer restore;
  const KernelVariant best = best_variant();
  const std::size_t m = 4, n = 96, k = 12;
  std::mt19937_64 rng(11);
  AlignedBuffer<std::uint64_t> a(m * k), b(k * n);
  AlignedBuffer<std::uint64_t> c_env(m * n), c_sched(m * n);
  fill_mask(a.data(), m * k, rng);
  fill_words(b.data(), k * n, rng);
  const MatView<const std::uint64_t> av{a.data(), m, k, k};
  const MatView<const std::uint64_t> bv{b.data(), k, n, n};

  Schedule s;
  s.tile_m = 4;
  s.tile_n = 16;

  ASSERT_EQ(setenv("TVMEC_FORCE_VARIANT", to_string(best), 1), 0);
  reload_forced_variant_from_env();
  ASSERT_EQ(active_variant(), best);
  gemm_xorand(av, bv, {c_env.data(), m, n, n}, s);

  ASSERT_EQ(unsetenv("TVMEC_FORCE_VARIANT"), 0);
  reload_forced_variant_from_env();
  s.variant = best;
  gemm_xorand(av, bv, {c_sched.data(), m, n, n}, s);

  for (std::size_t i = 0; i < m * n; ++i)
    ASSERT_EQ(c_env[i], c_sched[i]) << "word " << i;
}

}  // namespace
}  // namespace tvmec::tensor
