#include "tensor/buffer.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace tvmec::tensor {
namespace {

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  AlignedBuffer<std::uint64_t> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kBufferAlignment,
            0u);
  EXPECT_EQ(buf.size(), 1000u);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0u);
}

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer<std::uint8_t> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
  AlignedBuffer<std::uint8_t> zero(0);
  EXPECT_TRUE(zero.empty());
}

TEST(AlignedBuffer, CopyIsDeep) {
  AlignedBuffer<int> a(8);
  a[3] = 42;
  AlignedBuffer<int> b(a);
  EXPECT_EQ(b[3], 42);
  b[3] = 7;
  EXPECT_EQ(a[3], 42);
  a = b;
  EXPECT_EQ(a[3], 7);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(8);
  a[0] = 5;
  const int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 5);
  AlignedBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
}

TEST(AlignedBuffer, SelfAssignmentSafe) {
  AlignedBuffer<int> a(4);
  a[1] = 9;
  a = a;
  EXPECT_EQ(a[1], 9);
}

TEST(AlignedBuffer, FillZero) {
  AlignedBuffer<int> a(16);
  a[5] = 3;
  a.fill_zero();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], 0);
}

TEST(AlignedBuffer, SpanCoversWholeBuffer) {
  AlignedBuffer<std::uint8_t> a(17);
  EXPECT_EQ(a.span().size(), 17u);
  EXPECT_EQ(a.span().data(), a.data());
}

TEST(MatView, ValidateRejectsMalformedViews) {
  std::uint64_t storage[16] = {};
  MatView<std::uint64_t> ok{storage, 4, 4, 4};
  EXPECT_NO_THROW(ok.validate());
  MatView<std::uint64_t> null_data{nullptr, 4, 4, 4};
  EXPECT_THROW(null_data.validate(), std::invalid_argument);
  MatView<std::uint64_t> zero_dim{storage, 0, 4, 4};
  EXPECT_THROW(zero_dim.validate(), std::invalid_argument);
  MatView<std::uint64_t> short_stride{storage, 4, 4, 3};
  EXPECT_THROW(short_stride.validate(), std::invalid_argument);
}

TEST(MatView, StridedIndexing) {
  std::uint64_t storage[12];
  for (int i = 0; i < 12; ++i) storage[i] = static_cast<std::uint64_t>(i);
  MatView<std::uint64_t> v{storage, 3, 2, 4};  // 2 cols, stride 4
  EXPECT_EQ(v.at(0, 1), 1u);
  EXPECT_EQ(v.at(2, 0), 8u);
  EXPECT_EQ(v.row(1), storage + 4);
}

}  // namespace
}  // namespace tvmec::tensor
