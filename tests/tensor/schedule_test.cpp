#include "tensor/schedule.h"

#include <gtest/gtest.h>

namespace tvmec::tensor {
namespace {

TEST(ScheduleParse, RoundTripsEverySupportedSchedule) {
  for (const int tm : {1, 2, 4, 8}) {
    for (const int tn : {1, 2, 4, 8, 16, 32, 64}) {
      for (const std::size_t bk : {0u, 16u, 64u}) {
        for (const int t : {1, 4}) {
          Schedule s;
          s.tile_m = tm;
          s.tile_n = tn;
          s.block_k = bk;
          s.block_n = 2048;
          s.num_threads = t;
          EXPECT_EQ(Schedule::parse(s.to_string()), s) << s.to_string();
        }
      }
    }
  }
}

TEST(ScheduleParse, RoundTripsParallelAxisKnobs) {
  for (const ParAxis axis : {ParAxis::M, ParAxis::N, ParAxis::MN}) {
    for (const std::size_t grain : {0u, 1u, 4u, 64u}) {
      for (const int t : {1, 2, 8}) {
        Schedule s;
        s.tile_m = 8;
        s.tile_n = 16;
        s.block_n = 512;
        s.num_threads = t;
        s.par_axis = axis;
        s.par_grain = grain;
        EXPECT_EQ(Schedule::parse(s.to_string()), s) << s.to_string();
      }
    }
  }
}

TEST(ScheduleParse, RoundTripsVariantKnob) {
  for (const KernelVariant v :
       {KernelVariant::Auto, KernelVariant::Scalar, KernelVariant::Avx2,
        KernelVariant::Avx512, KernelVariant::Neon}) {
    Schedule s;
    s.tile_m = 4;
    s.tile_n = 16;
    s.variant = v;
    EXPECT_EQ(Schedule::parse(s.to_string()), s) << s.to_string();
  }
}

TEST(ScheduleParse, LegacyFiveFieldFormStillParses) {
  // Pre-parallel-axis logs partitioned rows of C; the legacy form maps
  // to exactly that so old tuning logs keep their meaning.
  const Schedule s = Schedule::parse("mt4x8 kb64 nb2048 t4");
  EXPECT_EQ(s.tile_m, 4);
  EXPECT_EQ(s.tile_n, 8);
  EXPECT_EQ(s.block_k, 64u);
  EXPECT_EQ(s.block_n, 2048u);
  EXPECT_EQ(s.num_threads, 4);
  EXPECT_EQ(s.par_axis, ParAxis::M);
  EXPECT_EQ(s.par_grain, 0u);
  EXPECT_EQ(s.variant, KernelVariant::Auto);
}

TEST(ScheduleParse, LegacySevenFieldFormMapsToAutoVariant) {
  // Pre-variant logs ran whatever ISA the build was compiled for; Auto
  // ("best this host offers") is the faithful replay of that.
  const Schedule s = Schedule::parse("mt4x8 kb64 nb2048 t4 pn g2");
  EXPECT_EQ(s.par_axis, ParAxis::N);
  EXPECT_EQ(s.par_grain, 2u);
  EXPECT_EQ(s.variant, KernelVariant::Auto);
}

TEST(ScheduleParse, RejectsBadVariant) {
  EXPECT_THROW(Schedule::parse("mt4x8 kb0 nb0 t4 pn g0 vsse9"),
               std::invalid_argument);
  EXPECT_THROW(Schedule::parse("mt4x8 kb0 nb0 t4 pn g0 v"),
               std::invalid_argument);
}

TEST(ScheduleParse, RejectsBadParallelAxis) {
  EXPECT_THROW(Schedule::parse("mt4x8 kb0 nb0 t4 pz g0"),
               std::invalid_argument);
  EXPECT_THROW(Schedule::parse("mt4x8 kb0 nb0 t4 pn"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("mt4x8 kb0 nb0 t4 pn g0 junk"),
               std::invalid_argument);
}

TEST(ScheduleValidity, GrainCapEnforced) {
  Schedule s = default_schedule();
  s.par_grain = std::size_t{1} << 20;
  EXPECT_TRUE(s.valid());
  s.par_grain = (std::size_t{1} << 20) + 1;
  EXPECT_FALSE(s.valid());
}

TEST(Schedule, DefaultPartitionsTheLongAxis) {
  EXPECT_EQ(default_schedule().par_axis, ParAxis::N);
}

TEST(ScheduleParse, RejectsMalformedText) {
  EXPECT_THROW(Schedule::parse(""), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("mt4x4"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("tile4x4 kb0 nb0 t1"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("garbage"), std::invalid_argument);
}

TEST(ScheduleParse, RejectsInvalidSchedules) {
  // Parses syntactically but fails validity (tile 3 unsupported).
  EXPECT_THROW(Schedule::parse("mt3x4 kb0 nb0 t1"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("mt4x4 kb0 nb0 t0"), std::invalid_argument);
}

TEST(ScheduleValidity, WideTilesSupported) {
  Schedule s;
  s.tile_m = 8;
  s.tile_n = 64;
  EXPECT_TRUE(s.valid());
  s.tile_n = 48;  // not in the menu
  EXPECT_FALSE(s.valid());
}

}  // namespace
}  // namespace tvmec::tensor
