#include "tensor/schedule.h"

#include <gtest/gtest.h>

namespace tvmec::tensor {
namespace {

TEST(ScheduleParse, RoundTripsEverySupportedSchedule) {
  for (const int tm : {1, 2, 4, 8}) {
    for (const int tn : {1, 2, 4, 8, 16, 32, 64}) {
      for (const std::size_t bk : {0u, 16u, 64u}) {
        for (const int t : {1, 4}) {
          Schedule s;
          s.tile_m = tm;
          s.tile_n = tn;
          s.block_k = bk;
          s.block_n = 2048;
          s.num_threads = t;
          EXPECT_EQ(Schedule::parse(s.to_string()), s) << s.to_string();
        }
      }
    }
  }
}

TEST(ScheduleParse, RejectsMalformedText) {
  EXPECT_THROW(Schedule::parse(""), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("mt4x4"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("tile4x4 kb0 nb0 t1"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("garbage"), std::invalid_argument);
}

TEST(ScheduleParse, RejectsInvalidSchedules) {
  // Parses syntactically but fails validity (tile 3 unsupported).
  EXPECT_THROW(Schedule::parse("mt3x4 kb0 nb0 t1"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("mt4x4 kb0 nb0 t0"), std::invalid_argument);
}

TEST(ScheduleValidity, WideTilesSupported) {
  Schedule s;
  s.tile_m = 8;
  s.tile_n = 64;
  EXPECT_TRUE(s.valid());
  s.tile_n = 48;  // not in the menu
  EXPECT_FALSE(s.valid());
}

}  // namespace
}  // namespace tvmec::tensor
