#include "tensor/kernel.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "tensor/buffer.h"
#include "tensor/cancel.h"
#include "tensor/schedule.h"

namespace tvmec::tensor {
namespace {

struct Shape {
  std::size_t m, n, k;
};

AlignedBuffer<std::uint64_t> random_words(std::size_t count,
                                          std::uint64_t seed) {
  AlignedBuffer<std::uint64_t> buf(count);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < count; ++i) buf[i] = rng();
  return buf;
}

/// Masks matrix for the XorAnd semiring: entries are 0 or ~0.
AlignedBuffer<std::uint64_t> random_masks(std::size_t count,
                                          std::uint64_t seed) {
  AlignedBuffer<std::uint64_t> buf(count);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < count; ++i)
    buf[i] = (rng() & 1) ? ~std::uint64_t{0} : 0;
  return buf;
}

/// Sweep: every schedule in a representative grid must agree with the
/// naive kernel on awkward (non-tile-aligned) shapes.
class XorAndScheduleTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(XorAndScheduleTest, MatchesNaiveOnUnevenShapes) {
  const auto [tile_m, tile_n, block_k, threads] = GetParam();
  Schedule s;
  s.tile_m = tile_m;
  s.tile_n = tile_n;
  s.block_k = static_cast<std::size_t>(block_k);
  s.block_n = 48;
  s.num_threads = threads;
  ASSERT_TRUE(s.valid());

  for (const Shape shape : {Shape{7, 53, 19}, Shape{16, 64, 32},
                            Shape{1, 1, 1}, Shape{33, 130, 80}}) {
    const auto a = random_masks(shape.m * shape.k, 1000 + shape.m);
    const auto b = random_words(shape.k * shape.n, 2000 + shape.n);
    AlignedBuffer<std::uint64_t> c(shape.m * shape.n);
    AlignedBuffer<std::uint64_t> ref(shape.m * shape.n);

    const MatView<const std::uint64_t> av{a.data(), shape.m, shape.k, shape.k};
    const MatView<const std::uint64_t> bv{b.data(), shape.k, shape.n, shape.n};
    gemm_xorand(av, bv, {c.data(), shape.m, shape.n, shape.n}, s);
    gemm_naive_xorand(av, bv, {ref.data(), shape.m, shape.n, shape.n});
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(c[i], ref[i]) << "shape " << shape.m << "x" << shape.n << "x"
                              << shape.k << " at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScheduleGrid, XorAndScheduleTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),   // tile_m
                       ::testing::Values(1, 4, 8),      // tile_n
                       ::testing::Values(0, 16),        // block_k
                       ::testing::Values(1, 3)),        // threads
    [](const auto& info) {
      return "tm" + std::to_string(std::get<0>(info.param)) + "tn" +
             std::to_string(std::get<1>(info.param)) + "bk" +
             std::to_string(std::get<2>(info.param)) + "t" +
             std::to_string(std::get<3>(info.param));
    });

/// Multithreaded equivalence: every parallel-axis mode must match the
/// naive kernel on ragged shapes (M not divisible by tile_m, N not by
/// tile_n), across thread counts and grains.
class ParAxisTest
    : public ::testing::TestWithParam<std::tuple<ParAxis, int, int>> {};

TEST_P(ParAxisTest, MatchesNaiveOnRaggedShapes) {
  const auto [axis, threads, grain] = GetParam();
  std::mt19937_64 rng(0xA57 + static_cast<unsigned>(threads));
  for (int trial = 0; trial < 12; ++trial) {
    // Ragged by construction: one past a tile multiple, or prime-ish.
    const std::size_t m = 1 + rng() % 37;
    const std::size_t n = 1 + rng() % 300;
    const std::size_t k = 1 + rng() % 90;
    Schedule s;
    s.tile_m = 8;  // m % tile_m != 0 for most draws
    s.tile_n = 16;
    s.block_k = (trial % 2) ? 16 : 0;
    s.block_n = (trial % 3) ? 96 : 0;
    s.num_threads = threads;
    s.par_axis = axis;
    s.par_grain = static_cast<std::size_t>(grain);
    ASSERT_TRUE(s.valid());

    const auto a = random_masks(m * k, rng());
    const auto b = random_words(k * n, rng());
    AlignedBuffer<std::uint64_t> c(m * n), ref(m * n);
    const MatView<const std::uint64_t> av{a.data(), m, k, k};
    const MatView<const std::uint64_t> bv{b.data(), k, n, n};
    gemm_xorand(av, bv, {c.data(), m, n, n}, s);
    gemm_naive_xorand(av, bv, {ref.data(), m, n, n});
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(c[i], ref[i])
          << "axis " << to_string(axis) << " shape " << m << "x" << n << "x"
          << k << " schedule " << s.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AxisGrid, ParAxisTest,
    ::testing::Combine(::testing::Values(ParAxis::M, ParAxis::N, ParAxis::MN),
                       ::testing::Values(2, 3, 8),  // threads
                       ::testing::Values(0, 1, 4)),  // grain
    [](const auto& info) {
      return std::string("p") + to_string(std::get<0>(info.param)) + "t" +
             std::to_string(std::get<1>(info.param)) + "g" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ParAxis, MoreThreadsThanTilesIsCorrect) {
  // M smaller than one tile and fewer N tiles than threads: extra workers
  // must idle, not touch out-of-range rows/columns.
  const std::size_t m = 3, n = 10, k = 5;
  auto a = random_masks(m * k, 21);
  auto b = random_words(k * n, 22);
  AlignedBuffer<std::uint64_t> c(m * n), ref(m * n);
  const MatView<const std::uint64_t> av{a.data(), m, k, k};
  const MatView<const std::uint64_t> bv{b.data(), k, n, n};
  gemm_naive_xorand(av, bv, {ref.data(), m, n, n});
  for (const ParAxis axis : {ParAxis::M, ParAxis::N, ParAxis::MN}) {
    Schedule s;
    s.tile_m = 8;
    s.tile_n = 8;
    s.num_threads = 16;
    s.par_axis = axis;
    gemm_xorand(av, bv, {c.data(), m, n, n}, s);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(c[i], ref[i]) << "axis " << to_string(axis);
  }
}

TEST(ParAxis, GrainLargerThanTileCountIsCorrect) {
  // par_grain far above the available tile count collapses the whole
  // axis into one chunk: the dispatch must degrade to a single worker
  // doing everything, never round chunk counts down to zero.
  const std::size_t m = 5, n = 17, k = 9;
  auto a = random_masks(m * k, 31);
  auto b = random_words(k * n, 32);
  AlignedBuffer<std::uint64_t> c(m * n), ref(m * n);
  const MatView<const std::uint64_t> av{a.data(), m, k, k};
  const MatView<const std::uint64_t> bv{b.data(), k, n, n};
  gemm_naive_xorand(av, bv, {ref.data(), m, n, n});
  for (const ParAxis axis : {ParAxis::M, ParAxis::N, ParAxis::MN}) {
    Schedule s;
    s.tile_m = 4;
    s.tile_n = 4;
    s.num_threads = 4;
    s.par_axis = axis;
    s.par_grain = 1000;  // >> number of tiles on any axis
    ASSERT_TRUE(s.valid());
    gemm_xorand(av, bv, {c.data(), m, n, n}, s);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(c[i], ref[i]) << "axis " << to_string(axis);
  }
}

TEST(SumProdKernel, MatchesNaive) {
  const std::size_t m = 9, n = 31, k = 17;
  AlignedBuffer<std::int64_t> a(m * k), b(k * n), c(m * n), ref(m * n);
  std::mt19937_64 rng(3);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<std::int64_t>(rng() % 1000) - 500;
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::int64_t>(rng() % 1000) - 500;

  Schedule s;
  s.tile_m = 4;
  s.tile_n = 8;
  const MatView<const std::int64_t> av{a.data(), m, k, k};
  const MatView<const std::int64_t> bv{b.data(), k, n, n};
  gemm_sumprod_i64(av, bv, {c.data(), m, n, n}, s);
  gemm_naive_sumprod_i64(av, bv, {ref.data(), m, n, n});
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_EQ(c[i], ref[i]);
}

TEST(SumProdKernel, FloatMatchesNaive) {
  const std::size_t m = 13, n = 37, k = 21;
  AlignedBuffer<float> a(m * k), b(k * n), c(m * n), ref(m * n);
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = dist(rng);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = dist(rng);

  const MatView<const float> av{a.data(), m, k, k};
  const MatView<const float> bv{b.data(), k, n, n};
  gemm_naive_sumprod_f32(av, bv, {ref.data(), m, n, n});
  for (const int tile : {1, 4, 16}) {
    Schedule s;
    s.tile_m = 4;
    s.tile_n = tile;
    s.block_k = 8;
    gemm_sumprod_f32(av, bv, {c.data(), m, n, n}, s);
    // Blocked execution keeps the k-summation order, but allow for FP
    // contraction differences between the two compilations.
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c[i], ref[i], 1e-4f) << "tile " << tile;
  }
}

/// Randomized fuzz across shapes and schedules: schedules must never
/// change results, only speed. 150 random (shape, schedule) pairs.
TEST(KernelFuzz, RandomShapesAndSchedulesMatchNaive) {
  std::mt19937_64 rng(99);
  const int tile_ms[] = {1, 2, 4, 8};
  const int tile_ns[] = {1, 2, 4, 8, 16, 32, 64};
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t m = 1 + rng() % 40;
    const std::size_t n = 1 + rng() % 150;
    const std::size_t k = 1 + rng() % 100;
    Schedule s;
    s.tile_m = tile_ms[rng() % 4];
    s.tile_n = tile_ns[rng() % 7];
    s.block_k = (rng() % 2) ? 0 : 1 + rng() % k;
    s.block_n = (rng() % 2) ? 0 : 1 + rng() % n;
    s.num_threads = 1 + static_cast<int>(rng() % 4);
    const ParAxis axes[] = {ParAxis::M, ParAxis::N, ParAxis::MN};
    s.par_axis = axes[rng() % 3];
    s.par_grain = rng() % 5;

    auto a = random_masks(m * k, rng());
    auto b = random_words(k * n, rng());
    AlignedBuffer<std::uint64_t> c(m * n), ref(m * n);
    const MatView<const std::uint64_t> av{a.data(), m, k, k};
    const MatView<const std::uint64_t> bv{b.data(), k, n, n};
    gemm_xorand(av, bv, {c.data(), m, n, n}, s);
    gemm_naive_xorand(av, bv, {ref.data(), m, n, n});
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(c[i], ref[i])
          << "trial " << trial << " shape " << m << "x" << n << "x" << k
          << " schedule " << s.to_string();
  }
}

TEST(Kernel, StridedViewsWork) {
  // Operate on views embedded in larger allocations (stride > cols).
  const std::size_t m = 6, n = 20, k = 12;
  const std::size_t stride = 40;
  auto a = random_masks(m * stride, 7);
  auto b = random_words(k * stride, 8);
  AlignedBuffer<std::uint64_t> c(m * stride), ref(m * n);
  const MatView<const std::uint64_t> av{a.data(), m, k, stride};
  const MatView<const std::uint64_t> bv{b.data(), k, n, stride};
  Schedule s = default_schedule();
  gemm_xorand(av, bv, {c.data(), m, n, stride}, s);

  // Reference with compacted operands.
  AlignedBuffer<std::uint64_t> ac(m * k), bc(k * n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < k; ++j) ac[i * k + j] = a[i * stride + j];
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < n; ++j) bc[i * n + j] = b[i * stride + j];
  gemm_naive_xorand({ac.data(), m, k, k}, {bc.data(), k, n, n},
                    {ref.data(), m, n, n});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_EQ(c[i * stride + j], ref[i * n + j]);
}

TEST(Kernel, ShapeMismatchThrows) {
  AlignedBuffer<std::uint64_t> a(12), b(12), c(12);
  const MatView<const std::uint64_t> av{a.data(), 3, 4, 4};
  const MatView<const std::uint64_t> bv{b.data(), 3, 4, 4};  // K mismatch
  Schedule s = default_schedule();
  EXPECT_THROW(gemm_xorand(av, bv, {c.data(), 3, 4, 4}, s),
               std::invalid_argument);
}

TEST(Kernel, InvalidScheduleThrows) {
  AlignedBuffer<std::uint64_t> a(16), b(16), c(16);
  const MatView<const std::uint64_t> av{a.data(), 4, 4, 4};
  const MatView<const std::uint64_t> bv{b.data(), 4, 4, 4};
  Schedule s;
  s.tile_m = 3;  // unsupported tile
  EXPECT_THROW(gemm_xorand(av, bv, {c.data(), 4, 4, 4}, s),
               std::invalid_argument);
}

TEST(Kernel, OverwritesPreviousOutput) {
  // C must be overwritten, not accumulated into.
  auto a = random_masks(16, 11);
  auto b = random_words(16, 12);
  AlignedBuffer<std::uint64_t> c(16), ref(16);
  for (std::size_t i = 0; i < 16; ++i) c[i] = 0xDEADBEEF;
  const MatView<const std::uint64_t> av{a.data(), 4, 4, 4};
  const MatView<const std::uint64_t> bv{b.data(), 4, 4, 4};
  Schedule s = default_schedule();
  gemm_xorand(av, bv, {c.data(), 4, 4, 4}, s);
  gemm_naive_xorand(av, bv, {ref.data(), 4, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) ASSERT_EQ(c[i], ref[i]);
}

TEST(KernelCancel, PreCancelledSerialThrowsBeforeWriting) {
  auto a = random_masks(16, 21);
  auto b = random_words(16, 22);
  AlignedBuffer<std::uint64_t> c(16);
  for (std::size_t i = 0; i < 16; ++i) c[i] = 0xABAB;
  Schedule s = default_schedule();
  s.num_threads = 1;
  CancelSource source;
  source.request_cancel();
  const MatView<const std::uint64_t> av{a.data(), 4, 4, 4};
  const MatView<const std::uint64_t> bv{b.data(), 4, 4, 4};
  EXPECT_THROW(gemm_xorand(av, bv, {c.data(), 4, 4, 4}, s, source.token()),
               Cancelled);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(c[i], 0xABAB);
}

TEST(KernelCancel, PreCancelledParallelThrows) {
  auto a = random_masks(64 * 64, 23);
  auto b = random_words(64 * 64, 24);
  AlignedBuffer<std::uint64_t> c(64 * 64);
  Schedule s = default_schedule();
  s.num_threads = 4;
  s.par_axis = ParAxis::N;
  CancelSource source;
  source.request_cancel();
  const MatView<const std::uint64_t> av{a.data(), 64, 64, 64};
  const MatView<const std::uint64_t> bv{b.data(), 64, 64, 64};
  EXPECT_THROW(gemm_xorand(av, bv, {c.data(), 64, 64, 64}, s, source.token()),
               Cancelled);
}

TEST(KernelCancel, InvalidTokenComputesNormally) {
  auto a = random_masks(16, 25);
  auto b = random_words(16, 26);
  AlignedBuffer<std::uint64_t> c(16), ref(16);
  Schedule s = default_schedule();
  const MatView<const std::uint64_t> av{a.data(), 4, 4, 4};
  const MatView<const std::uint64_t> bv{b.data(), 4, 4, 4};
  gemm_xorand(av, bv, {c.data(), 4, 4, 4}, s, CancelToken{});
  gemm_naive_xorand(av, bv, {ref.data(), 4, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) ASSERT_EQ(c[i], ref[i]);
}

TEST(KernelCancel, BatchedPreCancelledThrows) {
  auto a = random_masks(8 * 8, 27);
  auto b0 = random_words(8 * 32, 28);
  auto b1 = random_words(8 * 32, 29);
  AlignedBuffer<std::uint64_t> c0(8 * 32), c1(8 * 32);
  Schedule s = default_schedule();
  s.num_threads = 1;
  std::vector<XorAndBatch> items{
      {{b0.data(), 8, 32, 32}, {c0.data(), 8, 32, 32}},
      {{b1.data(), 8, 32, 32}, {c1.data(), 8, 32, 32}}};
  CancelSource source;
  source.request_cancel();
  EXPECT_THROW(
      gemm_xorand_batched({a.data(), 8, 8, 8}, items, s, source.token()),
      Cancelled);
}

TEST(KernelCancel, UncancelledTokenMatchesNaive) {
  // A live-but-never-fired token must not change results (the overhead
  // path: one relaxed load per tile chunk).
  auto a = random_masks(16 * 24, 31);
  auto b = random_words(24 * 40, 32);
  AlignedBuffer<std::uint64_t> c(16 * 40), ref(16 * 40);
  Schedule s = default_schedule();
  s.num_threads = 2;
  s.par_axis = ParAxis::N;
  CancelSource source;
  const MatView<const std::uint64_t> av{a.data(), 16, 24, 24};
  const MatView<const std::uint64_t> bv{b.data(), 24, 40, 40};
  gemm_xorand(av, bv, {c.data(), 16, 40, 40}, s, source.token());
  gemm_naive_xorand(av, bv, {ref.data(), 16, 40, 40});
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_EQ(c[i], ref[i]);
}

TEST(Schedule, ValidityAndToString) {
  Schedule s = default_schedule();
  EXPECT_TRUE(s.valid());
  EXPECT_FALSE((Schedule{3, 4, 0, 0, 1}).valid());
  EXPECT_FALSE((Schedule{4, 4, 0, 0, 0}).valid());
  EXPECT_NE(s.to_string().find("mt4x4"), std::string::npos);
  EXPECT_TRUE(is_supported_tile(8, 1));
  EXPECT_FALSE(is_supported_tile(8, 5));
}

}  // namespace
}  // namespace tvmec::tensor
