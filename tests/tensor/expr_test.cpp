#include "tensor/expr.h"

#include <gtest/gtest.h>

#include <random>

#include "tensor/buffer.h"
#include "tensor/kernel.h"

namespace tvmec::tensor::te {
namespace {

AlignedBuffer<Value> random_values(std::size_t count, std::uint64_t seed) {
  AlignedBuffer<Value> buf(count);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < count; ++i) buf[i] = rng();
  return buf;
}

/// The paper's Listing 3 pair, built through our te mirror.
struct Listing3 {
  static constexpr std::size_t M = 12, N = 40, K = 24;
  Placeholder A = placeholder(M, K, "A");
  Placeholder B = placeholder(K, N, "B");
  IterVar k = reduce_axis(K, "k");

  ComputeDef gemm() {
    return compute(M, N, [&](IterVar i, IterVar j) {
      return reduce(BinOp::Add, A(i, k) * B(k, j), k);
    });
  }
  ComputeDef bitmatrix_ec() {
    return compute(M, N, [&](IterVar i, IterVar j) {
      return reduce(BinOp::Xor, A(i, k) & B(k, j), k);
    });
  }
};

TEST(Expr, EvaluateGemmMatchesNaiveKernel) {
  Listing3 l;
  const ComputeDef def = l.gemm();
  const auto a = random_values(Listing3::M * Listing3::K, 1);
  const auto b = random_values(Listing3::K * Listing3::N, 2);
  AlignedBuffer<Value> out(Listing3::M * Listing3::N);
  evaluate(def,
           {{l.A.id(), {a.data(), Listing3::M, Listing3::K, Listing3::K}},
            {l.B.id(), {b.data(), Listing3::K, Listing3::N, Listing3::N}}},
           {out.data(), Listing3::M, Listing3::N, Listing3::N});

  AlignedBuffer<std::int64_t> ref(Listing3::M * Listing3::N);
  gemm_naive_sumprod_i64(
      {reinterpret_cast<const std::int64_t*>(a.data()), Listing3::M,
       Listing3::K, Listing3::K},
      {reinterpret_cast<const std::int64_t*>(b.data()), Listing3::K,
       Listing3::N, Listing3::N},
      {ref.data(), Listing3::M, Listing3::N, Listing3::N});
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], static_cast<Value>(ref[i]));
}

TEST(Expr, EvaluateXorAndMatchesNaiveKernel) {
  Listing3 l;
  const ComputeDef def = l.bitmatrix_ec();
  const auto a = random_values(Listing3::M * Listing3::K, 3);
  const auto b = random_values(Listing3::K * Listing3::N, 4);
  AlignedBuffer<Value> out(Listing3::M * Listing3::N);
  evaluate(def,
           {{l.A.id(), {a.data(), Listing3::M, Listing3::K, Listing3::K}},
            {l.B.id(), {b.data(), Listing3::K, Listing3::N, Listing3::N}}},
           {out.data(), Listing3::M, Listing3::N, Listing3::N});

  AlignedBuffer<Value> ref(Listing3::M * Listing3::N);
  gemm_naive_xorand(
      {a.data(), Listing3::M, Listing3::K, Listing3::K},
      {b.data(), Listing3::K, Listing3::N, Listing3::N},
      {ref.data(), Listing3::M, Listing3::N, Listing3::N});
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], ref[i]);
}

class LoweredRunTest : public ::testing::TestWithParam<bool> {};

/// Lowered (scheduled-kernel) execution agrees with direct interpretation
/// for both semirings — the TVM "declare once, codegen fast" contract.
TEST_P(LoweredRunTest, LoweredMatchesInterpreter) {
  const bool xor_mode = GetParam();
  Listing3 l;
  const ComputeDef def = xor_mode ? l.bitmatrix_ec() : l.gemm();
  const LoweredGemm lowered = lower(def);
  EXPECT_EQ(lowered.kind(), xor_mode ? LoweredGemm::Kind::XorAnd
                                     : LoweredGemm::Kind::SumProd);

  const auto a = random_values(Listing3::M * Listing3::K, 5);
  const auto b = random_values(Listing3::K * Listing3::N, 6);
  const std::vector<Binding> bindings = {
      {l.A.id(), {a.data(), Listing3::M, Listing3::K, Listing3::K}},
      {l.B.id(), {b.data(), Listing3::K, Listing3::N, Listing3::N}}};

  AlignedBuffer<Value> interp(Listing3::M * Listing3::N);
  evaluate(def, bindings,
           {interp.data(), Listing3::M, Listing3::N, Listing3::N});

  for (const int tile : {1, 4, 8}) {
    Schedule s;
    s.tile_m = tile;
    s.tile_n = tile;
    AlignedBuffer<Value> fast(Listing3::M * Listing3::N);
    lowered.run(bindings, {fast.data(), Listing3::M, Listing3::N, Listing3::N},
                s);
    for (std::size_t i = 0; i < fast.size(); ++i)
      ASSERT_EQ(fast[i], interp[i]) << "tile=" << tile;
  }
}

INSTANTIATE_TEST_SUITE_P(BothSemirings, LoweredRunTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "XorAnd" : "SumProd";
                         });

TEST(Lower, RejectsMixedSemiring) {
  Listing3 l;
  // XOR-reduce of products is not a supported semiring.
  const ComputeDef def =
      compute(Listing3::M, Listing3::N, [&](IterVar i, IterVar j) {
        return reduce(BinOp::Xor, l.A(i, l.k) * l.B(l.k, j), l.k);
      });
  EXPECT_THROW(lower(def), std::invalid_argument);
}

TEST(Lower, RejectsNonGemmAccessPattern) {
  Listing3 l;
  // A indexed (k, i) instead of (i, k): not the GEMM pattern.
  EXPECT_THROW(
      lower(compute(Listing3::K, Listing3::N,
                    [&](IterVar i, IterVar j) {
                      return reduce(BinOp::Add, l.A(l.k, i) * l.B(l.k, j),
                                    l.k);
                    })),
      std::invalid_argument);
}

TEST(Lower, RejectsNonReduction) {
  Listing3 l;
  EXPECT_THROW(lower(compute(Listing3::M, Listing3::N,
                             [&](IterVar i, IterVar j) {
                               return l.A(i, j) + l.B(i, j);
                             })),
               std::invalid_argument);
}

/// The interpreter handles arbitrary expression trees, not just the
/// GEMM shape the lowerer accepts — e.g. a fused masked-accumulate.
TEST(Expr, InterpreterHandlesNonGemmExpressions) {
  const std::size_t m = 6, n = 10, kk = 4;
  const Placeholder A = placeholder(m, kk, "A");
  const Placeholder B = placeholder(kk, n, "B");
  const Placeholder C = placeholder(m, n, "C");
  const IterVar k = reduce_axis(kk, "k");
  // out(i,j) = C(i,j) ^ reduce_xor_k(A(i,k) & B(k,j))
  const ComputeDef def = compute(m, n, [&](IterVar i, IterVar j) {
    return C(i, j) ^ reduce(BinOp::Xor, A(i, k) & B(k, j), k);
  });
  // Not lowerable (body is Binary, not Reduce)...
  EXPECT_THROW(lower(def), std::invalid_argument);

  // ...but evaluable, and it must match a hand-written loop.
  const auto a = random_values(m * kk, 11);
  const auto b = random_values(kk * n, 12);
  const auto c = random_values(m * n, 13);
  AlignedBuffer<Value> out(m * n);
  evaluate(def,
           {{A.id(), {a.data(), m, kk, kk}},
            {B.id(), {b.data(), kk, n, n}},
            {C.id(), {c.data(), m, n, n}}},
           {out.data(), m, n, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Value acc = 0;
      for (std::size_t l = 0; l < kk; ++l)
        acc ^= a[i * kk + l] & b[l * n + j];
      ASSERT_EQ(out[i * n + j], c[i * n + j] ^ acc);
    }
  }
}

TEST(Expr, ReducerMustBeCommutativeIdentityOp) {
  Listing3 l;
  EXPECT_THROW(reduce(BinOp::Mul, l.A(l.k, l.k), l.k), std::invalid_argument);
  EXPECT_THROW(reduce(BinOp::And, l.A(l.k, l.k), l.k), std::invalid_argument);
}

TEST(Expr, EvaluateChecksBindings) {
  Listing3 l;
  const ComputeDef def = l.gemm();
  AlignedBuffer<Value> out(Listing3::M * Listing3::N);
  const MatView<Value> out_view{out.data(), Listing3::M, Listing3::N,
                                Listing3::N};
  // Missing B binding.
  const auto a = random_values(Listing3::M * Listing3::K, 7);
  EXPECT_THROW(
      evaluate(def, {{l.A.id(), {a.data(), Listing3::M, Listing3::K,
                                 Listing3::K}}},
               out_view),
      std::invalid_argument);
}

TEST(Expr, PlaceholderValidation) {
  EXPECT_THROW(placeholder(0, 4, "bad"), std::invalid_argument);
  EXPECT_THROW(reduce_axis(0, "bad"), std::invalid_argument);
}

}  // namespace
}  // namespace tvmec::tensor::te
