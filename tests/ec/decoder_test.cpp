#include "ec/decoder.h"

#include <gtest/gtest.h>

#include "ec/reed_solomon.h"
#include "gf/bitmatrix.h"

namespace tvmec::ec {
namespace {

const gf::Matrix& generator_10_4() {
  static const ReedSolomon rs(CodeParams{10, 4, 8});
  return rs.generator();
}

TEST(DecodePlan, ValidatesErasedIds) {
  const auto& gen = generator_10_4();
  EXPECT_THROW(make_decode_plan(gen, std::vector<std::size_t>{}),
               std::invalid_argument);
  EXPECT_THROW(make_decode_plan(gen, std::vector<std::size_t>{14}),
               std::invalid_argument);
  EXPECT_THROW(make_decode_plan(gen, std::vector<std::size_t>{1, 1}),
               std::invalid_argument);
}

TEST(DecodePlan, SurvivorsExcludeErased) {
  const auto& gen = generator_10_4();
  const std::vector<std::size_t> erased = {2, 7, 13};
  const auto plan = make_decode_plan(gen, erased);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->survivors.size(), 10u);
  for (const std::size_t s : plan->survivors)
    for (const std::size_t e : erased) EXPECT_NE(s, e);
  EXPECT_EQ(plan->erased, erased);
  EXPECT_EQ(plan->recovery.rows(), 3u);
  EXPECT_EQ(plan->recovery.cols(), 10u);
}

TEST(DecodePlan, MdsPicksFirstKSurvivors) {
  const auto& gen = generator_10_4();
  const std::vector<std::size_t> erased = {0, 5};
  const auto plan = make_decode_plan(gen, erased);
  ASSERT_TRUE(plan.has_value());
  // For an MDS code every survivor adds rank, so the greedy choice is
  // simply the first k survivors in id order.
  const std::vector<std::size_t> expect = {1, 2, 3, 4, 6, 7, 8, 9, 10, 11};
  EXPECT_EQ(plan->survivors, expect);
}

TEST(DecodePlan, TooManyErasuresUnrecoverable) {
  const auto& gen = generator_10_4();
  const std::vector<std::size_t> erased = {0, 1, 2, 3, 4};  // 5 > r=4
  EXPECT_FALSE(make_decode_plan(gen, erased).has_value());
}

/// Algebraic identity: recovery * G[survivors] must equal G[erased]
/// (both map data -> erased units), for every erasure pattern size.
TEST(DecodePlan, RecoveryMatrixIsAlgebraicallyConsistent) {
  const auto& gen = generator_10_4();
  for (const std::vector<std::size_t>& erased :
       {std::vector<std::size_t>{0}, {13}, {0, 13}, {1, 2, 3}, {9, 10, 11, 12}}) {
    const auto plan = make_decode_plan(gen, erased);
    ASSERT_TRUE(plan.has_value());
    const gf::Matrix survivor_rows = gen.select_rows(plan->survivors);
    const gf::Matrix erased_rows = gen.select_rows(plan->erased);
    EXPECT_EQ(plan->recovery.mul(survivor_rows), erased_rows);
  }
}

TEST(DecodePlan, ParityOnlyErasureRecoversViaReencode) {
  // Erasing only parities: the recovery rows must equal the parity rows
  // of the generator restricted to surviving data (here all data lives).
  const auto& gen = generator_10_4();
  const std::vector<std::size_t> erased = {10, 12};
  const auto plan = make_decode_plan(gen, erased);
  ASSERT_TRUE(plan.has_value());
  // Survivors 0..9 are exactly the data units; the recovery matrix must
  // then be the corresponding parity coefficient rows.
  EXPECT_EQ(plan->recovery, gen.select_rows(erased));
}

TEST(DecodePlanOptimized, NeverDenserThanGreedyPlan) {
  const auto& gen = generator_10_4();
  for (const std::vector<std::size_t>& erased :
       {std::vector<std::size_t>{0}, {7}, {13}, {0, 5}, {2, 11}}) {
    const auto greedy = make_decode_plan(gen, erased);
    const auto opt = make_decode_plan_optimized(gen, erased);
    ASSERT_TRUE(greedy.has_value());
    ASSERT_TRUE(opt.has_value());
    std::size_t greedy_ones = 0, opt_ones = 0;
    for (std::size_t i = 0; i < erased.size(); ++i) {
      greedy_ones += gf::row_bitmatrix_ones(greedy->recovery, i);
      opt_ones += gf::row_bitmatrix_ones(opt->recovery, i);
    }
    EXPECT_LE(opt_ones, greedy_ones);
  }
}

TEST(DecodePlanOptimized, FindsStrictlyCheaperSingleFailureRepair) {
  // For single-data-unit repair of a (10,4) Cauchy code, survivor choice
  // genuinely matters; the exhaustive search must beat the greedy pick.
  const auto& gen = generator_10_4();
  const std::vector<std::size_t> erased = {0};
  const auto greedy = make_decode_plan(gen, erased);
  const auto opt =
      make_decode_plan_optimized(gen, erased, /*max_subsets=*/100000);
  ASSERT_TRUE(opt.has_value());
  EXPECT_LT(gf::row_bitmatrix_ones(opt->recovery, 0),
            gf::row_bitmatrix_ones(greedy->recovery, 0));
}

TEST(DecodePlanOptimized, PlanIsStillAlgebraicallyConsistent) {
  const auto& gen = generator_10_4();
  const std::vector<std::size_t> erased = {3, 12};
  const auto plan = make_decode_plan_optimized(gen, erased);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->recovery.mul(gen.select_rows(plan->survivors)),
            gen.select_rows(plan->erased));
}

TEST(DecodePlanOptimized, NoChoiceMeansGreedyPlan) {
  // Erase r units: exactly k survivors remain, so there is nothing to
  // optimize and the plans coincide.
  const auto& gen = generator_10_4();
  const std::vector<std::size_t> erased = {0, 1, 2, 3};
  const auto greedy = make_decode_plan(gen, erased);
  const auto opt = make_decode_plan_optimized(gen, erased);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(opt->survivors, greedy->survivors);
  EXPECT_EQ(opt->recovery, greedy->recovery);
}

TEST(DecodePlanOptimized, UnrecoverableStaysUnrecoverable) {
  const auto& gen = generator_10_4();
  const std::vector<std::size_t> erased = {0, 1, 2, 3, 4};
  EXPECT_FALSE(make_decode_plan_optimized(gen, erased).has_value());
}

TEST(DecodePlan, WorksOnRankDeficientGenerators) {
  // A generator with a duplicated row (non-MDS): the tracker must skip
  // the dependent row and still find an invertible set when one exists.
  const gf::Field& f = gf::Field::of(8);
  gf::Matrix gen(f, 5, 3);
  // rows: e0, e1, e1 (duplicate), e2, sum
  gen.set(0, 0, 1);
  gen.set(1, 1, 1);
  gen.set(2, 1, 1);
  gen.set(3, 2, 1);
  gen.set(4, 0, 1);
  gen.set(4, 1, 1);
  gen.set(4, 2, 1);

  // Erase unit 0: survivors {1,2,3,4}; rows 1 and 2 are dependent, so the
  // plan must use rows {1,3,4}.
  const auto plan = make_decode_plan(gen, std::vector<std::size_t>{0});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->survivors, (std::vector<std::size_t>{1, 3, 4}));

  // Erase units 0 and 4: survivors {1,2,3} have rank 2 -> unrecoverable.
  EXPECT_FALSE(
      make_decode_plan(gen, std::vector<std::size_t>{0, 4}).has_value());
}

}  // namespace
}  // namespace tvmec::ec
