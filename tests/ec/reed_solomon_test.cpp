#include "ec/reed_solomon.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "ec/decoder.h"

namespace tvmec::ec {
namespace {

using testutil::random_bytes;

TEST(CodeParams, Validation) {
  EXPECT_NO_THROW((CodeParams{10, 4, 8}).validate());
  EXPECT_THROW((CodeParams{0, 4, 8}).validate(), std::invalid_argument);
  // r == 0 is the degenerate striping-only code: legal, nothing to encode.
  EXPECT_NO_THROW((CodeParams{10, 0, 8}).validate());
  EXPECT_THROW((CodeParams{10, 4, 7}).validate(), std::invalid_argument);
  EXPECT_THROW((CodeParams{14, 4, 4}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((CodeParams{12, 4, 4}).validate());
}

TEST(CodeParams, PacketBytes) {
  const CodeParams p{10, 4, 8};
  EXPECT_EQ(packet_bytes(p, 1024), 128u);
  // Any multiple of w is a valid unit size; packets need not fill whole
  // 64-bit words (coders pad internally).
  EXPECT_EQ(packet_bytes(p, 1000), 125u);
  EXPECT_EQ(packet_bytes(p, 8), 1u);
  EXPECT_THROW(packet_bytes(p, 1001), std::invalid_argument);
  EXPECT_THROW(packet_bytes(p, 0), std::invalid_argument);
  const CodeParams p16{10, 4, 16};
  EXPECT_EQ(packet_bytes(p16, 2048), 128u);
  EXPECT_EQ(packet_bytes(p16, 1024 + 64), 68u);
  EXPECT_THROW(packet_bytes(p16, 1024 + 8), std::invalid_argument);
}

struct RsCase {
  CodeParams params;
  RsFamily family;
};

class ReedSolomonTest : public ::testing::TestWithParam<RsCase> {};

TEST_P(ReedSolomonTest, GeneratorIsSystematic) {
  const ReedSolomon rs(GetParam().params, GetParam().family);
  const auto& gen = rs.generator();
  const auto& p = GetParam().params;
  ASSERT_EQ(gen.rows(), p.n());
  ASSERT_EQ(gen.cols(), p.k);
  for (std::size_t i = 0; i < p.k; ++i)
    for (std::size_t j = 0; j < p.k; ++j)
      ASSERT_EQ(gen.at(i, j), i == j ? 1 : 0) << "not systematic";
}

TEST_P(ReedSolomonTest, ParityMatrixIsBottomBlock) {
  const ReedSolomon rs(GetParam().params, GetParam().family);
  const auto parity = rs.parity_matrix();
  const auto& p = GetParam().params;
  ASSERT_EQ(parity.rows(), p.r);
  for (std::size_t i = 0; i < p.r; ++i)
    for (std::size_t j = 0; j < p.k; ++j)
      ASSERT_EQ(parity.at(i, j), rs.generator().at(p.k + i, j));
}

/// Encode, erase every possible pattern of up to r units, decode with the
/// recovery plan and the reference applier, and demand exact recovery.
/// This is the fundamental erasure-code contract, checked exhaustively.
TEST_P(ReedSolomonTest, AllErasurePatternsRecoverExactly) {
  const auto& p = GetParam().params;
  const ReedSolomon rs(p, GetParam().family);
  const std::size_t unit = 8 * p.w;  // one word per packet: small but real
  const auto data = random_bytes(p.k * unit, 0xABC + p.k);

  // Build the full stripe: data + parity.
  std::vector<std::uint8_t> stripe(p.n() * unit);
  std::copy(data.span().begin(), data.span().end(), stripe.begin());
  rs.encode_reference(data.span(),
                      std::span<std::uint8_t>(stripe).subspan(p.k * unit),
                      unit);

  for (std::size_t e = 1; e <= p.r; ++e) {
    for (const auto& pattern : testutil::erasure_patterns(p.n(), e)) {
      const auto plan = make_decode_plan(rs.generator(), pattern);
      ASSERT_TRUE(plan.has_value()) << "MDS code failed a <= r pattern";
      // Gather survivors, apply the recovery matrix.
      std::vector<std::uint8_t> survivors(plan->survivors.size() * unit);
      for (std::size_t i = 0; i < plan->survivors.size(); ++i)
        std::copy_n(stripe.begin() +
                        static_cast<std::ptrdiff_t>(plan->survivors[i] * unit),
                    unit, survivors.begin() + static_cast<std::ptrdiff_t>(i * unit));
      std::vector<std::uint8_t> recovered(pattern.size() * unit);
      apply_matrix_reference(plan->recovery, survivors, recovered, unit);
      for (std::size_t i = 0; i < pattern.size(); ++i)
        ASSERT_TRUE(std::equal(
            recovered.begin() + static_cast<std::ptrdiff_t>(i * unit),
            recovered.begin() + static_cast<std::ptrdiff_t>((i + 1) * unit),
            stripe.begin() + static_cast<std::ptrdiff_t>(pattern[i] * unit)))
            << "unit " << pattern[i] << " not recovered";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, ReedSolomonTest,
    ::testing::Values(RsCase{{4, 2, 8}, RsFamily::CauchyGood},
                      RsCase{{4, 2, 8}, RsFamily::Cauchy},
                      RsCase{{4, 2, 8}, RsFamily::VandermondeSystematic},
                      RsCase{{4, 2, 8}, RsFamily::CauchyBest},
                      RsCase{{6, 3, 8}, RsFamily::CauchyGood},
                      RsCase{{6, 3, 8}, RsFamily::CauchyBest},
                      RsCase{{10, 4, 8}, RsFamily::CauchyGood},
                      RsCase{{5, 2, 4}, RsFamily::Cauchy},
                      RsCase{{6, 2, 16}, RsFamily::VandermondeSystematic}),
    [](const auto& info) {
      std::string name = to_string(info.param.family);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name + "_k" + std::to_string(info.param.params.k) + "r" +
             std::to_string(info.param.params.r) + "w" +
             std::to_string(info.param.params.w);
    });

TEST(ReedSolomon, EncodeReferenceSizeChecks) {
  const ReedSolomon rs(CodeParams{4, 2, 8});
  std::vector<std::uint8_t> data(4 * 64), parity(2 * 64);
  EXPECT_NO_THROW(rs.encode_reference(data, parity, 64));
  EXPECT_THROW(rs.encode_reference(data, parity, 32), std::invalid_argument);
  std::vector<std::uint8_t> short_parity(64);
  EXPECT_THROW(rs.encode_reference(data, short_parity, 64),
               std::invalid_argument);
}

TEST(ReedSolomon, EncodingIsLinear) {
  // encode(a ^ b) == encode(a) ^ encode(b): linearity over GF(2).
  const CodeParams p{5, 3, 8};
  const ReedSolomon rs(p);
  const std::size_t unit = 128;
  const auto a = random_bytes(p.k * unit, 1);
  const auto b = random_bytes(p.k * unit, 2);
  std::vector<std::uint8_t> ab(p.k * unit);
  for (std::size_t i = 0; i < ab.size(); ++i) ab[i] = a[i] ^ b[i];

  std::vector<std::uint8_t> pa(p.r * unit), pb(p.r * unit), pab(p.r * unit);
  rs.encode_reference(a.span(), pa, unit);
  rs.encode_reference(b.span(), pb, unit);
  rs.encode_reference(ab, pab, unit);
  for (std::size_t i = 0; i < pab.size(); ++i)
    ASSERT_EQ(pab[i], pa[i] ^ pb[i]);
}

TEST(ReedSolomon, ZeroDataGivesZeroParity) {
  const CodeParams p{4, 2, 8};
  const ReedSolomon rs(p);
  std::vector<std::uint8_t> data(4 * 64, 0), parity(2 * 64, 0xFF);
  rs.encode_reference(data, parity, 64);
  for (const auto b : parity) EXPECT_EQ(b, 0);
}

TEST(ApplyMatrixReference, IdentityPassesThrough) {
  const gf::Field& f = gf::Field::of(8);
  const auto id = gf::Matrix::identity(f, 3);
  const auto src = random_bytes(3 * 32, 5);
  std::vector<std::uint8_t> dst(3 * 32);
  apply_matrix_reference(id, src.span(), dst, 32);
  EXPECT_TRUE(std::equal(dst.begin(), dst.end(), src.span().begin()));
}

}  // namespace
}  // namespace tvmec::ec
