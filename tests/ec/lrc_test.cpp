#include "ec/lrc.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "ec/reed_solomon.h"

namespace tvmec::ec {
namespace {

using testutil::random_bytes;

LrcParams azure_style() { return LrcParams{12, 2, 2, 8}; }

TEST(LrcParams, Validation) {
  EXPECT_NO_THROW(azure_style().validate());
  EXPECT_THROW((LrcParams{12, 5, 2, 8}).validate(), std::invalid_argument);
  EXPECT_THROW((LrcParams{0, 1, 1, 8}).validate(), std::invalid_argument);
  EXPECT_THROW((LrcParams{12, 2, 2, 7}).validate(), std::invalid_argument);
  EXPECT_THROW((LrcParams{15, 3, 2, 4}).validate(), std::invalid_argument);
}

TEST(Lrc, GeneratorStructure) {
  const Lrc lrc(azure_style());
  const auto& gen = lrc.generator();
  ASSERT_EQ(gen.rows(), 16u);
  ASSERT_EQ(gen.cols(), 12u);
  // Identity top.
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j)
      ASSERT_EQ(gen.at(i, j), i == j ? 1 : 0);
  // Local parity rows: coefficient 1 on the group, 0 elsewhere.
  for (std::size_t grp = 0; grp < 2; ++grp)
    for (std::size_t j = 0; j < 12; ++j)
      ASSERT_EQ(gen.at(12 + grp, j), j / 6 == grp ? 1 : 0);
  // Global rows: all nonzero (Cauchy).
  for (std::size_t i = 14; i < 16; ++i)
    for (std::size_t j = 0; j < 12; ++j) ASSERT_NE(gen.at(i, j), 0);
}

TEST(Lrc, GroupAssignment) {
  const Lrc lrc(azure_style());
  EXPECT_EQ(lrc.group_of(0), 0u);
  EXPECT_EQ(lrc.group_of(5), 0u);
  EXPECT_EQ(lrc.group_of(6), 1u);
  EXPECT_EQ(lrc.group_of(12), 0u);  // local parity of group 0
  EXPECT_EQ(lrc.group_of(13), 1u);
  EXPECT_FALSE(lrc.group_of(14).has_value());  // global parity
}

TEST(Lrc, LocalParityIsGroupXor) {
  const LrcParams p = azure_style();
  const Lrc lrc(p);
  const std::size_t unit = 64;
  const auto data = random_bytes(p.k * unit, 77);
  std::vector<std::uint8_t> parity((p.l + p.g) * unit);
  lrc.encode_reference(data.span(), parity, unit);
  for (std::size_t grp = 0; grp < p.l; ++grp) {
    for (std::size_t b = 0; b < unit; ++b) {
      std::uint8_t expect = 0;
      for (std::size_t j = 0; j < p.group_size(); ++j)
        expect ^= data[(grp * p.group_size() + j) * unit + b];
      ASSERT_EQ(parity[grp * unit + b], expect);
    }
  }
}

/// A single failed unit (data or local parity) is repaired reading only
/// its group — the defining locality property.
TEST(Lrc, LocalRepairReadsOnlyTheGroup) {
  const LrcParams p = azure_style();
  const Lrc lrc(p);
  const std::size_t unit = 64;
  const auto data = random_bytes(p.k * unit, 78);
  std::vector<std::uint8_t> stripe(p.n() * unit);
  std::copy(data.span().begin(), data.span().end(), stripe.begin());
  lrc.encode_reference(data.span(),
                       std::span<std::uint8_t>(stripe).subspan(p.k * unit),
                       unit);

  for (std::size_t failed = 0; failed < p.k + p.l; ++failed) {
    const auto plan = lrc.local_repair_plan(failed);
    ASSERT_TRUE(plan.has_value()) << "unit " << failed;
    // Locality: exactly group_size() reads instead of k.
    EXPECT_EQ(plan->survivors.size(), p.group_size());
    const auto grp = lrc.group_of(failed);
    for (const std::size_t s : plan->survivors) {
      EXPECT_NE(s, failed);
      EXPECT_EQ(lrc.group_of(s), grp) << "read outside the group";
    }
    // Correctness of the rebuilt unit.
    std::vector<std::uint8_t> survivors(plan->survivors.size() * unit);
    for (std::size_t i = 0; i < plan->survivors.size(); ++i)
      std::copy_n(
          stripe.begin() + static_cast<std::ptrdiff_t>(plan->survivors[i] * unit),
          unit, survivors.begin() + static_cast<std::ptrdiff_t>(i * unit));
    std::vector<std::uint8_t> rebuilt(unit);
    apply_matrix_reference(plan->recovery, survivors, rebuilt, unit);
    ASSERT_TRUE(std::equal(rebuilt.begin(), rebuilt.end(),
                           stripe.begin() +
                               static_cast<std::ptrdiff_t>(failed * unit)));
  }
}

TEST(Lrc, GlobalParityHasNoLocalPlan) {
  const Lrc lrc(azure_style());
  EXPECT_FALSE(lrc.local_repair_plan(14).has_value());
  EXPECT_FALSE(lrc.local_repair_plan(15).has_value());
  EXPECT_THROW(lrc.local_repair_plan(16), std::invalid_argument);
}

/// Guaranteed-decodable classes: any <= g failures anywhere, and one
/// failure per group handled by locals.
TEST(Lrc, AnyUpToGFailuresDecodable) {
  const LrcParams p = azure_style();
  const Lrc lrc(p);
  for (const auto& pattern : testutil::erasure_patterns(p.n(), p.g)) {
    EXPECT_TRUE(lrc.decode_plan(pattern).has_value())
        << "pattern {" << pattern[0] << "," << pattern[1] << "}";
  }
}

TEST(Lrc, DecodePlansRecoverExactBytes) {
  const LrcParams p{8, 2, 2, 8};
  const Lrc lrc(p);
  const std::size_t unit = 64;
  const auto data = random_bytes(p.k * unit, 79);
  std::vector<std::uint8_t> stripe(p.n() * unit);
  std::copy(data.span().begin(), data.span().end(), stripe.begin());
  lrc.encode_reference(data.span(),
                       std::span<std::uint8_t>(stripe).subspan(p.k * unit),
                       unit);

  // Sample patterns of size up to g + l = 4 and verify every decodable one.
  std::size_t decodable = 0;
  for (std::size_t e = 1; e <= p.g + p.l; ++e) {
    for (const auto& pattern : testutil::erasure_patterns(p.n(), e)) {
      const auto plan = lrc.decode_plan(pattern);
      if (!plan) continue;
      ++decodable;
      std::vector<std::uint8_t> survivors(plan->survivors.size() * unit);
      for (std::size_t i = 0; i < plan->survivors.size(); ++i)
        std::copy_n(stripe.begin() + static_cast<std::ptrdiff_t>(
                                         plan->survivors[i] * unit),
                    unit,
                    survivors.begin() + static_cast<std::ptrdiff_t>(i * unit));
      std::vector<std::uint8_t> recovered(pattern.size() * unit);
      apply_matrix_reference(plan->recovery, survivors, recovered, unit);
      for (std::size_t i = 0; i < pattern.size(); ++i)
        ASSERT_TRUE(std::equal(
            recovered.begin() + static_cast<std::ptrdiff_t>(i * unit),
            recovered.begin() + static_cast<std::ptrdiff_t>((i + 1) * unit),
            stripe.begin() + static_cast<std::ptrdiff_t>(pattern[i] * unit)));
    }
  }
  EXPECT_GT(decodable, 100u);  // most small patterns are decodable
}

/// The storage-efficiency motivation: an LRC repairs a single failure
/// with fewer reads than the RS code of equal fault tolerance.
TEST(Lrc, LocalityBeatsRs) {
  const LrcParams p = azure_style();
  const Lrc lrc(p);
  const auto plan = lrc.local_repair_plan(3);
  ASSERT_TRUE(plan.has_value());
  const ReedSolomon rs(CodeParams{p.k, p.g + p.l, 8});
  const auto rs_plan =
      make_decode_plan(rs.generator(), std::vector<std::size_t>{3});
  ASSERT_TRUE(rs_plan.has_value());
  EXPECT_LT(plan->survivors.size(), rs_plan->survivors.size());
}

}  // namespace
}  // namespace tvmec::ec
