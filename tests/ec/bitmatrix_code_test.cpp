#include "ec/bitmatrix_code.h"

#include <gtest/gtest.h>

#include "ec/reed_solomon.h"

namespace tvmec::ec {
namespace {

TEST(BitmatrixCode, ShapeFollowsCoefficients) {
  const ReedSolomon rs(CodeParams{6, 3, 8});
  const BitmatrixCode code(rs.parity_matrix());
  EXPECT_EQ(code.w(), 8u);
  EXPECT_EQ(code.out_units(), 3u);
  EXPECT_EQ(code.in_units(), 6u);
  EXPECT_EQ(code.bits().rows(), 24u);
  EXPECT_EQ(code.bits().cols(), 48u);
}

TEST(BitmatrixCode, OnesMatchesBitsAndDensity) {
  const ReedSolomon rs(CodeParams{4, 2, 8});
  const BitmatrixCode code(rs.parity_matrix());
  EXPECT_EQ(code.ones(), code.bits().ones());
  EXPECT_GT(code.ones(), 0u);
  const double density = code.density();
  EXPECT_GT(density, 0.0);
  EXPECT_LT(density, 1.0);
  EXPECT_DOUBLE_EQ(density, static_cast<double>(code.ones()) /
                                (code.bits().rows() * code.bits().cols()));
}

TEST(BitmatrixCode, XorEquationsMatchBits) {
  const ReedSolomon rs(CodeParams{5, 2, 8});
  const BitmatrixCode code(rs.parity_matrix());
  const auto eqs = code.xor_equations();
  ASSERT_EQ(eqs.size(), code.bits().rows());
  std::size_t total = 0;
  for (std::size_t i = 0; i < eqs.size(); ++i) {
    total += eqs[i].size();
    for (const std::size_t j : eqs[i])
      EXPECT_TRUE(code.bits().get(i, j));
    // Sources must be sorted and unique.
    for (std::size_t s = 1; s < eqs[i].size(); ++s)
      EXPECT_LT(eqs[i][s - 1], eqs[i][s]);
  }
  EXPECT_EQ(total, code.ones());
}

TEST(BitmatrixCode, NoEmptyEquationForMdsParity) {
  // Every parity bit-row of an MDS code depends on at least one input.
  for (const unsigned w : {4u, 8u, 16u}) {
    const ReedSolomon rs(CodeParams{4, 2, w});
    const BitmatrixCode code(rs.parity_matrix());
    for (const auto& eq : code.xor_equations()) EXPECT_FALSE(eq.empty());
  }
}

TEST(BitmatrixCode, CauchyGoodIsSparserThanPlainCauchy) {
  const CodeParams p{10, 4, 8};
  const BitmatrixCode good(
      ReedSolomon(p, RsFamily::CauchyGood).parity_matrix());
  const BitmatrixCode plain(ReedSolomon(p, RsFamily::Cauchy).parity_matrix());
  EXPECT_LT(good.ones(), plain.ones());
}

}  // namespace
}  // namespace tvmec::ec
