#include "testing/diff_fuzzer.h"

#include <gtest/gtest.h>

#include <random>

#include "testing/fuzz_config.h"

/// Tier-1 fuzz smoke: fixed seeds, small iteration budget (~2 s), zero
/// divergences expected across every backend and scenario. The
/// open-ended randomized campaign lives in CI's scheduled job
/// (fuzz_repro --random), not here — ctest must stay fast and
/// deterministic.
namespace tvmec::testing {
namespace {

TEST(FuzzRepro, FormatParseRoundTrip) {
  std::mt19937_64 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const FuzzConfig config = random_config(rng);
    const std::string text = format_repro(config);
    EXPECT_EQ(parse_repro(text), config) << text;
  }
}

TEST(FuzzRepro, FormatIsStable) {
  FuzzConfig config;
  config.scenario = Scenario::RsDecode;
  config.family = ec::RsFamily::CauchyGood;
  config.k = 6;
  config.r = 3;
  config.w = 8;
  config.unit_size = 128;
  config.seed = 42;
  config.losses = {1, 3};
  config.sched = 2;
  EXPECT_EQ(format_repro(config),
            "fuzz:v1 s=rs-decode f=cauchy-good k=6 r=3 w=8 u=128 seed=42 "
            "loss=1,3 sched=2");

  FuzzConfig scattered;
  scattered.scenario = Scenario::RsEncode;
  scattered.k = 4;
  scattered.r = 2;
  scattered.unit_size = 64;
  scattered.seed = 7;
  scattered.frag = 12345;
  EXPECT_EQ(format_repro(scattered),
            "fuzz:v1 s=rs-encode f=cauchy-good k=4 r=2 w=8 u=64 seed=7 "
            "frag=12345");
  EXPECT_EQ(parse_repro(format_repro(scattered)), scattered);
}

TEST(FuzzRepro, VariantAxisRoundTripsAndDefaultsStayImplicit) {
  FuzzConfig config;
  config.scenario = Scenario::RsEncode;
  config.k = 4;
  config.r = 2;
  config.unit_size = 64;
  config.seed = 7;
  config.variant = tensor::KernelVariant::Scalar;
  EXPECT_EQ(format_repro(config),
            "fuzz:v1 s=rs-encode f=cauchy-good k=4 r=2 w=8 u=64 seed=7 "
            "var=scalar");
  EXPECT_EQ(parse_repro(format_repro(config)), config);

  // Auto is the default and must not appear in the repro string, so
  // pre-variant reproducers and new ones share one format.
  config.variant = tensor::KernelVariant::Auto;
  EXPECT_EQ(format_repro(config),
            "fuzz:v1 s=rs-encode f=cauchy-good k=4 r=2 w=8 u=64 seed=7");

  // Any tier the binary knows parses, even if this host can't run it —
  // the guard degrades to best-available at run time instead.
  const FuzzConfig neon = parse_repro(
      "fuzz:v1 s=rs-encode k=4 r=2 w=8 u=64 seed=7 var=neon");
  EXPECT_EQ(neon.variant, tensor::KernelVariant::Neon);
}

TEST(FuzzRepro, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_repro(""), std::invalid_argument);
  EXPECT_THROW(parse_repro("fuzz:v2 s=rs-encode"), std::invalid_argument);
  EXPECT_THROW(parse_repro("fuzz:v1 s=bogus"), std::invalid_argument);
  EXPECT_THROW(parse_repro("fuzz:v1 qq=1"), std::invalid_argument);
  EXPECT_THROW(parse_repro("fuzz:v1 k=abc"), std::invalid_argument);
  EXPECT_THROW(parse_repro("fuzz:v1 s=rs-encode k=0"),
               std::invalid_argument);
  // Unit size must be a multiple of w.
  EXPECT_THROW(parse_repro("fuzz:v1 s=rs-encode k=4 r=2 w=8 u=60"),
               std::invalid_argument);
  // The scattered axis only applies to encode iterations.
  EXPECT_THROW(parse_repro("fuzz:v1 s=rs-decode k=4 r=2 w=8 u=64 frag=5"),
               std::invalid_argument);
  // So does the variant axis; unknown tier names are rejected outright.
  EXPECT_THROW(
      parse_repro("fuzz:v1 s=rs-decode k=4 r=2 w=8 u=64 loss=1 var=scalar"),
      std::invalid_argument);
  EXPECT_THROW(parse_repro("fuzz:v1 s=rs-encode k=4 r=2 w=8 u=64 var=sse9"),
               std::invalid_argument);
}

TEST(FuzzConfigGen, AlwaysValidAndDeterministic) {
  std::mt19937_64 a(7), b(7);
  for (int trial = 0; trial < 300; ++trial) {
    const FuzzConfig ca = random_config(a);
    const FuzzConfig cb = random_config(b);
    EXPECT_EQ(ca, cb);
    EXPECT_NO_THROW(ca.validate());
  }
}

/// The fixed-seed smoke sweep: every scenario, every backend, zero
/// divergences. A failure here prints the exact reproducer to hand to
/// `fuzz_repro`.
TEST(DiffFuzz, FixedSeedSmokeSweepFindsNoDivergence) {
  const FuzzOutcome outcome = DiffFuzzer::run_campaign(/*seed=*/1, 150);
  EXPECT_TRUE(outcome.ok) << outcome.repro << "\n" << outcome.detail;
  EXPECT_EQ(outcome.iterations, 150u);
}

TEST(DiffFuzz, CampaignIsDeterministic) {
  const FuzzOutcome a = DiffFuzzer::run_campaign(/*seed=*/9, 5);
  const FuzzOutcome b = DiffFuzzer::run_campaign(/*seed=*/9, 5);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.repro, b.repro);
}

/// Replay of the edge-case configs this PR's bug sweep fixed. Each was
/// a divergence (or spurious throw) on the pre-PR code.
TEST(DiffFuzz, EdgeCaseReprosPass) {
  const char* repros[] = {
      // unit_size == w: one-byte packets, the staging/padding path.
      "fuzz:v1 s=rs-encode k=4 r=2 w=8 u=8 seed=3",
      "fuzz:v1 s=rs-encode k=4 r=2 w=16 u=16 seed=3",
      // k == 1: single data unit.
      "fuzz:v1 s=rs-encode k=1 r=3 w=8 u=64 seed=4",
      "fuzz:v1 s=rs-decode k=1 r=2 w=8 u=64 seed=4 loss=0",
      // r == 0: degenerate striping-only code, nothing to encode.
      "fuzz:v1 s=rs-encode k=5 r=0 w=8 u=64 seed=5",
      // The scattered arms: fragmented operands and per-unit buffers,
      // aligned/misaligned mixed, across families, schedules, and the
      // degenerate shapes.
      "fuzz:v1 s=rs-encode k=4 r=2 w=8 u=64 seed=5 frag=1",
      "fuzz:v1 s=rs-encode k=10 r=4 w=8 u=512 seed=5 sched=2 frag=99",
      "fuzz:v1 s=rs-encode f=vandermonde k=6 r=3 w=16 u=128 seed=5 frag=7",
      "fuzz:v1 s=rs-encode k=1 r=1 w=8 u=8 seed=5 frag=3",
      "fuzz:v1 s=rs-encode k=5 r=0 w=8 u=64 seed=5 frag=2",
      "fuzz:v1 s=rs-encode k=3 r=2 w=4 u=4 seed=5 sched=4 frag=11",
      // Unsorted and duplicate loss ids must decode identically.
      "fuzz:v1 s=rs-decode k=6 r=3 w=8 u=64 seed=6 loss=3,1",
      "fuzz:v1 s=rs-decode k=6 r=3 w=8 u=64 seed=6 loss=2,2",
      // More losses than parities must be a clean invalid_argument.
      "fuzz:v1 s=rs-decode k=4 r=2 w=8 u=64 seed=7 loss=0,1,2",
      // Unit size a multiple of w but not of 8*w (staging path) across
      // decode, LRC, and storage.
      "fuzz:v1 s=rs-decode k=5 r=2 w=8 u=24 seed=8 loss=1,6",
      "fuzz:v1 s=lrc k=6 l=2 r=2 w=8 u=8 seed=9 loss=0,7",
      "fuzz:v1 s=store k=3 r=2 w=8 u=16 seed=10 loss=0,3",
      "fuzz:v1 s=store-fault k=3 r=2 w=8 u=16 seed=11 loss=2",
      // Campaign-found regressions (see CHANGES.md postmortems): both
      // exposed scrub giving up on stripes whose extra "erasure" was
      // only a transient read-retry exhaustion, leaving latent
      // corruption unhealed until a node failure turned it into data
      // loss.
      "fuzz:v1 s=store-fault k=10 r=1 w=4 u=4 seed=8184440594662820529 "
      "loss=4",
      "fuzz:v1 s=store-fault k=7 r=1 w=16 u=16 seed=9337184620144304163 "
      "loss=7",
      // Campaign-found: an injected read-side bit flip landed on the
      // exact bit that was corrupt on disk, so the scrub read CRC'd
      // clean while the persisted copy stayed bad — latent corruption
      // that later stacked with two node failures past r. Scrub now
      // CRCs the stored copy node-locally and rewrites it from the
      // verified read.
      "fuzz:v1 s=store-fault k=4 r=2 w=16 u=16 seed=10867058663792815222 "
      "loss=3,5",
      // Serving layer: random request mixes through EcService (manual
      // pump) vs the sequential per-request oracle, including deadline
      // expiry and queue-capacity admission accounting.
      "fuzz:v1 s=serve k=4 r=2 w=8 u=64 seed=12 loss=1,4",
      "fuzz:v1 s=serve k=1 r=0 w=8 u=8 seed=13",
      "fuzz:v1 s=serve k=6 r=3 w=16 u=48 seed=14 loss=0 sched=3",
      "fuzz:v1 s=serve k=10 r=4 w=8 u=24 seed=15 loss=2,11 sched=1",
      // Chaos serving: cancels, pre-expired deadlines with shedding,
      // injected primary-backend faults with the breaker enabled —
      // completed bytes must still match the oracle and the widened
      // counter identities must balance. Seeds picked to land each
      // breaker configuration (instant-probe and never-probe cooldowns).
      "fuzz:v1 s=serve-chaos k=4 r=2 w=8 u=64 seed=16 loss=1,4",
      "fuzz:v1 s=serve-chaos k=1 r=1 w=8 u=8 seed=17 loss=0,0",
      "fuzz:v1 s=serve-chaos k=6 r=3 w=16 u=48 seed=18 loss=5,2 sched=3",
      "fuzz:v1 s=serve-chaos k=10 r=4 w=8 u=24 seed=19 loss=2,11,7 sched=1",
      "fuzz:v1 s=serve-chaos k=5 r=3 w=4 u=64 seed=20 loss=1,1,3 sched=4",
      // Sharded multi-tenant serving: random tenant/client mixes through
      // ShardedEcService (manual pump) vs the same sequential oracle —
      // client-to-shard hashing, front-level QoS shares (skewed weights
      // on half the seeds), shard-local pools, opportunistic steal
      // scans, and the per-tenant counter identities asserted
      // unconditionally against a request-by-request mirror.
      "fuzz:v1 s=serve-shard k=4 r=2 w=8 u=64 seed=26 loss=1,4",
      "fuzz:v1 s=serve-shard k=1 r=1 w=8 u=8 seed=27 loss=0",
      "fuzz:v1 s=serve-shard k=6 r=3 w=16 u=48 seed=28 loss=5,2 sched=3",
      "fuzz:v1 s=serve-shard k=10 r=4 w=8 u=24 seed=29 loss=2,11,7 sched=1",
      "fuzz:v1 s=serve-shard k=5 r=0 w=8 u=64 seed=30",
      // Simulated multi-node cluster: put/fail_node/get under seeded
      // disk + link chaos (drops, duplicates, partition windows, hedged
      // degraded reads). Returned bytes must match the original payload
      // and the network byte ledger must balance.
      "fuzz:v1 s=cluster k=4 r=2 w=8 u=64 seed=7 loss=1,4",
      "fuzz:v1 s=cluster k=1 r=1 w=4 u=4 seed=3 loss=0",
      "fuzz:v1 s=cluster k=6 r=3 w=16 u=48 seed=21 loss=2,5,8",
      "fuzz:v1 s=cluster k=5 r=2 w=8 u=24 seed=33 loss=6",
      // Cluster DAG repair under chaos with mid-repair faults (helper
      // crashes, partitions): the repair counter identity and the
      // network ledger must balance, and the healed cluster must read
      // back byte-identical to the original payload.
      "fuzz:v1 s=cluster-repair k=6 r=3 w=8 u=128 seed=11 loss=2,5",
      "fuzz:v1 s=cluster-repair f=vandermonde k=4 r=2 w=16 u=32 seed=9 "
      "loss=3",
      "fuzz:v1 s=cluster-repair k=1 r=1 w=8 u=8 seed=17 loss=1",
      "fuzz:v1 s=cluster-repair k=8 r=3 w=8 u=64 seed=1234567 loss=0,4,9",
      // Self-healing control plane: a scripted campaign of crashes,
      // revives, rewrites, and corruption against a live healer
      // (heartbeat membership, risk-prioritized queue, token bucket).
      // After convergence every stripe must be fully redundant, reads
      // must be byte-identical, and the membership/healer/repair/ledger
      // identities must balance unconditionally.
      "fuzz:v1 s=cluster-heal k=4 r=2 w=8 u=64 seed=7 loss=1,4",
      "fuzz:v1 s=cluster-heal k=6 r=3 w=8 u=128 seed=21 loss=2",
      "fuzz:v1 s=cluster-heal k=1 r=1 w=4 u=4 seed=13",
      "fuzz:v1 s=cluster-heal f=vandermonde k=8 r=3 w=16 u=32 seed=5 "
      "loss=9,3",
      "fuzz:v1 s=cluster-heal k=5 r=2 w=8 u=24 seed=33 loss=6",
      // Variant-pinned encode: the whole iteration runs under a forced
      // kernel tier, and the cross-variant arm diffs it against a
      // forced-scalar rerun. Scalar is always available; higher tiers
      // degrade to best-available on hosts that lack them.
      "fuzz:v1 s=rs-encode k=10 r=4 w=8 u=512 seed=21 var=scalar",
      "fuzz:v1 s=rs-encode k=4 r=2 w=8 u=64 seed=22 sched=5 var=scalar",
      "fuzz:v1 s=rs-encode k=6 r=3 w=8 u=1000 seed=23 var=avx2",
      "fuzz:v1 s=rs-encode k=8 r=2 w=8 u=4096 seed=24 frag=5 var=avx512",
      "fuzz:v1 s=rs-encode k=3 r=2 w=16 u=96 seed=25 var=avx512",
  };
  for (const char* text : repros) {
    const FuzzOutcome outcome = DiffFuzzer::run_one(parse_repro(text));
    EXPECT_TRUE(outcome.ok) << text << "\n" << outcome.detail;
  }
}

/// The minimizer against a synthetic bug: "fails whenever loss id 3 is
/// present". It must strip everything irrelevant while keeping the
/// failure alive.
TEST(Minimizer, ShrinksToMinimalFailingConfig) {
  FuzzConfig start;
  start.scenario = Scenario::RsDecode;
  start.family = ec::RsFamily::Cauchy;
  start.k = 8;
  start.r = 4;
  start.w = 8;
  start.unit_size = 256;
  start.seed = 5;
  start.losses = {1, 3, 5};
  start.sched = 3;
  const auto fails = [](const FuzzConfig& c) {
    for (const std::size_t id : c.losses)
      if (id == 3) return true;
    return false;
  };
  ASSERT_TRUE(fails(start));
  const FuzzConfig min = DiffFuzzer::minimize(start, fails);
  EXPECT_TRUE(fails(min));
  EXPECT_EQ(min.losses, (std::vector<std::size_t>{3}));
  // Everything irrelevant to the predicate is reset / shrunk.
  EXPECT_EQ(min.unit_size, min.w);
  EXPECT_EQ(min.sched, 0u);
  EXPECT_EQ(min.family, ec::RsFamily::CauchyGood);
  // The shape can only shrink while keeping loss id 3 addressable.
  EXPECT_GE(min.n(), 4u);
  EXPECT_LT(min.n(), start.n());
}

TEST(Minimizer, DropsIrrelevantVariantPin) {
  FuzzConfig start;
  start.scenario = Scenario::RsEncode;
  start.k = 1;
  start.r = 0;
  start.w = 8;
  start.unit_size = 8;
  start.seed = 1;
  start.variant = tensor::KernelVariant::Scalar;
  const FuzzConfig min =
      DiffFuzzer::minimize(start, [](const FuzzConfig&) { return true; });
  EXPECT_EQ(min.variant, tensor::KernelVariant::Auto);
}

TEST(Minimizer, FixedPointWhenNothingShrinks) {
  FuzzConfig start;
  start.scenario = Scenario::RsEncode;
  start.k = 1;
  start.r = 0;
  start.w = 8;
  start.unit_size = 8;
  start.seed = 1;
  const FuzzConfig min =
      DiffFuzzer::minimize(start, [](const FuzzConfig&) { return true; });
  EXPECT_EQ(min, start);
}

TEST(ScheduleMenu, AllEntriesAreValid) {
  const auto& menu = DiffFuzzer::schedule_menu();
  ASSERT_GE(menu.size(), 5u);
  for (const tensor::Schedule& s : menu) EXPECT_TRUE(s.valid());
}

}  // namespace
}  // namespace tvmec::testing
