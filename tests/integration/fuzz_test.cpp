#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "../test_util.h"
#include "core/tvmec.h"
#include "ec/lrc.h"
#include "ec/reed_solomon.h"

/// Randomized end-to-end fuzzing of the codec invariants, complementing
/// the exhaustive-but-fixed tests:
///  - interleaved updates and erasure/decode cycles preserve the stripe,
///  - every decodable LRC pattern recovers exact bytes,
///  - parity stays consistent with a from-scratch re-encode at all times.
namespace tvmec {
namespace {

TEST(CodecFuzz, InterleavedUpdatesErasuresAndDecodes) {
  const ec::CodeParams p{6, 3, 8};
  const std::size_t unit = 1024;
  core::Codec codec(p);
  std::mt19937_64 rng(42);

  // Oracle: the current true data content.
  tensor::AlignedBuffer<std::uint8_t> stripe(p.n() * unit);
  for (std::size_t i = 0; i < p.k * unit; ++i)
    stripe[i] = static_cast<std::uint8_t>(rng());
  codec.encode(std::span<const std::uint8_t>(stripe.data(), p.k * unit),
               std::span<std::uint8_t>(stripe.data() + p.k * unit,
                                       p.r * unit),
               unit);

  tensor::AlignedBuffer<std::uint8_t> expect_parity(p.r * unit);
  for (int step = 0; step < 120; ++step) {
    const int op = static_cast<int>(rng() % 3);
    if (op == 0) {
      // Delta-update a random data unit.
      const std::size_t u = rng() % p.k;
      tensor::AlignedBuffer<std::uint8_t> fresh(unit);
      for (std::size_t b = 0; b < unit; ++b)
        fresh[b] = static_cast<std::uint8_t>(rng());
      codec.update_unit(stripe.span(), u, fresh.span(), unit);
    } else if (op == 1) {
      // Erase a random pattern of 1..r units, decode, demand identity.
      const tensor::AlignedBuffer<std::uint8_t> before = stripe;
      const std::size_t e = 1 + rng() % p.r;
      std::vector<std::size_t> ids(p.n());
      for (std::size_t i = 0; i < p.n(); ++i) ids[i] = i;
      std::shuffle(ids.begin(), ids.end(), rng);
      ids.resize(e);
      for (const std::size_t id : ids)
        std::fill_n(stripe.data() + id * unit, unit, 0xAA);
      codec.decode(stripe.span(), ids, unit);
      ASSERT_TRUE(std::equal(before.span().begin(), before.span().end(),
                             stripe.span().begin()))
          << "step " << step;
    } else {
      // Invariant: stored parity equals a from-scratch encode.
      codec.encode(
          std::span<const std::uint8_t>(stripe.data(), p.k * unit),
          expect_parity.span(), unit);
      ASSERT_TRUE(std::equal(expect_parity.span().begin(),
                             expect_parity.span().end(),
                             stripe.data() + p.k * unit))
          << "parity drifted at step " << step;
    }
  }
}

TEST(LrcFuzz, RandomPatternsEitherDecodeExactlyOrReportUnrecoverable) {
  const ec::LrcParams p{12, 3, 2, 8};
  const ec::Lrc lrc(p);
  const std::size_t unit = 256;
  const auto data = testutil::random_bytes(p.k * unit, 7);
  std::vector<std::uint8_t> stripe(p.n() * unit);
  std::copy(data.span().begin(), data.span().end(), stripe.begin());
  lrc.encode_reference(data.span(),
                       std::span<std::uint8_t>(stripe).subspan(p.k * unit),
                       unit);

  std::mt19937_64 rng(8);
  std::size_t decodable = 0, undecodable = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t e = 1 + rng() % (p.l + p.g + 1);
    std::vector<std::size_t> ids(p.n());
    for (std::size_t i = 0; i < p.n(); ++i) ids[i] = i;
    std::shuffle(ids.begin(), ids.end(), rng);
    ids.resize(e);
    std::sort(ids.begin(), ids.end());

    const auto plan = lrc.decode_plan(ids);
    if (!plan) {
      ++undecodable;
      // Sanity: patterns of size <= g must always decode.
      ASSERT_GT(e, p.g);
      continue;
    }
    ++decodable;
    std::vector<std::uint8_t> survivors(plan->survivors.size() * unit);
    for (std::size_t i = 0; i < plan->survivors.size(); ++i)
      std::copy_n(stripe.begin() +
                      static_cast<std::ptrdiff_t>(plan->survivors[i] * unit),
                  unit,
                  survivors.begin() + static_cast<std::ptrdiff_t>(i * unit));
    std::vector<std::uint8_t> rec(ids.size() * unit);
    ec::apply_matrix_reference(plan->recovery, survivors, rec, unit);
    for (std::size_t i = 0; i < ids.size(); ++i)
      ASSERT_TRUE(std::equal(
          rec.begin() + static_cast<std::ptrdiff_t>(i * unit),
          rec.begin() + static_cast<std::ptrdiff_t>((i + 1) * unit),
          stripe.begin() + static_cast<std::ptrdiff_t>(ids[i] * unit)))
          << "trial " << trial;
  }
  // Both outcomes must actually occur for the fuzz to mean anything.
  EXPECT_GT(decodable, 100u);
  EXPECT_GT(undecodable, 10u);
}

TEST(DecodePlanFuzz, RandomMdsPatternsAlwaysConsistent) {
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t k = 2 + rng() % 10;
    const std::size_t r = 1 + rng() % 4;
    const ec::ReedSolomon rs(ec::CodeParams{k, r, 8});
    const std::size_t e = 1 + rng() % r;
    std::vector<std::size_t> ids(k + r);
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    std::shuffle(ids.begin(), ids.end(), rng);
    ids.resize(e);

    const auto plan = ec::make_decode_plan(rs.generator(), ids);
    ASSERT_TRUE(plan.has_value()) << "MDS pattern must decode";
    // Algebraic consistency (see decoder_test for the fixed cases).
    const gf::Matrix lhs =
        plan->recovery.mul(rs.generator().select_rows(plan->survivors));
    ASSERT_EQ(lhs, rs.generator().select_rows(plan->erased));
  }
}

}  // namespace
}  // namespace tvmec
