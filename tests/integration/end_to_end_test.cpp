#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/tvmec.h"
#include "ec/bitmatrix_code.h"
#include "storage/chunk_accumulator.h"
#include "storage/checkpoint.h"
#include "storage/stripe_store.h"
#include "tensor/expr.h"

/// End-to-end flows across module boundaries: the §5 chunk-staging path
/// feeding the codec, tuning feeding the storage layer, and the Listing-3
/// tensor-expression declaration producing real parities.
namespace tvmec {
namespace {

constexpr std::size_t kUnit = 2048;

/// §5 pipeline: chunks arrive out of order, are staged contiguously, the
/// region feeds the GEMM codec directly, and a damaged stripe decodes.
TEST(EndToEnd, ChunkAccumulatorFeedsCodec) {
  const ec::CodeParams params{6, 3, 8};
  core::Codec codec(params);
  storage::ChunkAccumulator acc(params.k, kUnit);

  std::vector<std::vector<std::uint8_t>> chunks;
  for (std::size_t i = 0; i < params.k; ++i)
    chunks.push_back(testutil::random_vector(kUnit, 42 + i));
  // Arrival order 3, 0, 5, 1, 4, 2.
  for (const std::size_t i : {3u, 0u, 5u, 1u, 4u, 2u})
    acc.add_chunk(i, chunks[i]);
  ASSERT_TRUE(acc.ready());

  tensor::AlignedBuffer<std::uint8_t> stripe(params.n() * kUnit);
  std::copy(acc.data().begin(), acc.data().end(), stripe.data());
  codec.encode(acc.data(),
               std::span<std::uint8_t>(stripe.data() + params.k * kUnit,
                                       params.r * kUnit),
               kUnit);

  // Lose three units, recover, verify chunk bytes round-tripped.
  const std::vector<std::size_t> erased = {1, 4, 7};
  for (const std::size_t id : erased)
    std::fill_n(stripe.data() + id * kUnit, kUnit, 0);
  codec.decode(stripe.span(), erased, kUnit);
  for (std::size_t i = 0; i < params.k; ++i)
    ASSERT_TRUE(std::equal(chunks[i].begin(), chunks[i].end(),
                           stripe.data() + i * kUnit))
        << "chunk " << i;
}

/// A tuned codec drives the stripe store: autotuning must be transparent
/// to storage-level correctness.
TEST(EndToEnd, TunedCodecInsideStripeStore) {
  storage::StripeStore store(ec::CodeParams{4, 2, 8}, kUnit, 7);
  const auto payload = testutil::random_vector(50000, 9);
  store.put("model.bin", payload);
  store.fail_node(2);
  store.fail_node(5);
  const auto got = store.get("model.bin");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

/// The Listing-3 story, end to end: declare the bitmatrix-EC computation
/// in the tensor-expression front end, lower it, bind the *actual* mask
/// matrix and data of a Reed-Solomon code, and get byte-identical
/// parities to the reference encoder.
TEST(EndToEnd, TensorExpressionProducesRealParities) {
  namespace te = tensor::te;
  const ec::CodeParams params{5, 3, 8};
  const std::size_t unit = 1024;
  const ec::ReedSolomon rs(params);

  // Mask operand (rw x kw) from the bitmatrix, as GemmCoder builds it.
  const ec::BitmatrixCode bits(rs.parity_matrix());
  const std::size_t m = bits.bits().rows();
  const std::size_t kk = bits.bits().cols();
  const std::size_t n = unit / params.w / 8;
  tensor::AlignedBuffer<std::uint64_t> masks(m * kk);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < kk; ++j)
      masks[i * kk + j] = bits.bits().get(i, j) ? ~std::uint64_t{0} : 0;

  const auto data = testutil::random_bytes(params.k * unit, 123);

  // Listing 3, lines 9-12.
  const te::Placeholder A = te::placeholder(m, kk, "A");
  const te::Placeholder B = te::placeholder(kk, n, "B");
  const te::IterVar k = te::reduce_axis(kk, "k");
  const te::ComputeDef def =
      te::compute(m, n, [&](te::IterVar i, te::IterVar j) {
        return te::reduce(te::BinOp::Xor, A(i, k) & B(k, j), k);
      });
  const te::LoweredGemm lowered = te::lower(def);

  tensor::AlignedBuffer<std::uint64_t> out(m * n);
  tensor::Schedule schedule;
  schedule.tile_m = 4;
  schedule.tile_n = 8;
  lowered.run(
      {{A.id(), {masks.data(), m, kk, kk}},
       {B.id(),
        {reinterpret_cast<const std::uint64_t*>(data.data()), kk, n, n}}},
      {out.data(), m, n, n}, schedule);

  std::vector<std::uint8_t> reference(params.r * unit);
  ec::apply_matrix_reference_bitpacket(rs.parity_matrix(), data.span(),
                                       reference, unit);
  ASSERT_TRUE(std::equal(reference.begin(), reference.end(),
                         reinterpret_cast<const std::uint8_t*>(out.data())));
}

/// Checkpoint/restore driving the codec under repeated loss cycles.
TEST(EndToEnd, CheckpointSurvivesRepeatedFailures) {
  const ec::CodeParams params{8, 2, 8};
  storage::CheckpointManager mgr(params, kUnit);
  for (int epoch = 0; epoch < 5; ++epoch) {
    std::vector<std::vector<std::uint8_t>> shards;
    for (std::size_t rank = 0; rank < params.k; ++rank)
      shards.push_back(testutil::random_vector(
          kUnit - 64 * rank, static_cast<std::uint64_t>(epoch * 100 + rank)));
    std::vector<std::span<const std::uint8_t>> spans(shards.begin(),
                                                     shards.end());
    mgr.checkpoint(spans);
    mgr.lose_rank(static_cast<std::size_t>(epoch) % params.k);
    mgr.lose_rank((static_cast<std::size_t>(epoch) + 3) % params.k);
    for (std::size_t rank = 0; rank < params.k; ++rank)
      ASSERT_EQ(mgr.recover_shard(rank), shards[rank])
          << "epoch " << epoch << " rank " << rank;
  }
}

}  // namespace
}  // namespace tvmec
