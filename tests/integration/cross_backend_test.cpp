#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/backends.h"
#include "ec/decoder.h"
#include "ec/reed_solomon.h"

/// Cross-backend equivalence: the load-bearing integration property.
///
/// Two embedding families exist (see apply_matrix_reference_bitpacket):
///  - bitpacket embedding: naive, jerasure-dumb/smart, uezato, tvm-ec —
///    these five must emit byte-identical output AND match first-
///    principles GF arithmetic under that embedding;
///  - byte embedding: isal — must match element-wise GF arithmetic.
/// Checked across the paper's whole evaluation grid (k 8-10, r 2-4,
/// w 8, 128 KB units) and beyond.
namespace tvmec {
namespace {

struct GridPoint {
  ec::CodeParams params;
  std::size_t unit;
};

std::vector<core::Backend> bitmatrix_backends() {
  return {core::Backend::NaiveBitmatrix, core::Backend::JerasureDumb,
          core::Backend::JerasureSmart, core::Backend::Uezato,
          core::Backend::Gemm};
}

class CrossBackendTest : public ::testing::TestWithParam<GridPoint> {};

TEST_P(CrossBackendTest, AllBackendsAgreeOnEncode) {
  const auto& [params, unit] = GetParam();
  const ec::ReedSolomon rs(params);
  const auto data =
      testutil::random_bytes(params.k * unit, params.k * 7919 + unit);

  std::vector<std::uint8_t> bitpacket_ref(params.r * unit);
  ec::apply_matrix_reference_bitpacket(rs.parity_matrix(), data.span(),
                                       bitpacket_ref, unit);

  for (const core::Backend b : bitmatrix_backends()) {
    const auto coder = core::make_coder(b, rs.parity_matrix());
    tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
    coder->apply(data.span(), got.span(), unit);
    ASSERT_TRUE(std::equal(bitpacket_ref.begin(), bitpacket_ref.end(),
                           got.span().begin()))
        << core::to_string(b) << " diverged at k=" << params.k
        << " r=" << params.r << " w=" << params.w;
  }

  if (params.w == 8) {
    std::vector<std::uint8_t> byte_ref(params.r * unit);
    rs.encode_reference(data.span(), byte_ref, unit);
    const auto isal = core::make_coder(core::Backend::Isal,
                                       rs.parity_matrix());
    tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
    isal->apply(data.span(), got.span(), unit);
    ASSERT_TRUE(
        std::equal(byte_ref.begin(), byte_ref.end(), got.span().begin()))
        << "isal diverged";
  }
}

TEST_P(CrossBackendTest, AllBackendsAgreeOnDecode) {
  const auto& [params, unit] = GetParam();
  const ec::ReedSolomon rs(params);
  const auto data =
      testutil::random_bytes(params.k * unit, params.k * 104729 + unit);

  // Erase the first data unit and the last parity unit; decoding applies
  // the plan's recovery matrix to the survivors. Within each embedding
  // family, decode(encode(data)) must return the erased units exactly.
  const std::vector<std::size_t> erased = {0, params.n() - 1};
  const auto plan = ec::make_decode_plan(rs.generator(), erased);
  ASSERT_TRUE(plan.has_value());

  const auto run_family = [&](auto encode_fn, core::Backend decode_backend,
                              const char* label) {
    // Build the stripe in this family's embedding.
    std::vector<std::uint8_t> stripe(params.n() * unit);
    std::copy(data.span().begin(), data.span().end(), stripe.begin());
    encode_fn(std::span<std::uint8_t>(stripe).subspan(params.k * unit));

    tensor::AlignedBuffer<std::uint8_t> survivors(plan->survivors.size() *
                                                  unit);
    for (std::size_t i = 0; i < plan->survivors.size(); ++i)
      std::copy_n(stripe.begin() +
                      static_cast<std::ptrdiff_t>(plan->survivors[i] * unit),
                  unit, survivors.data() + i * unit);

    const auto coder = core::make_coder(decode_backend, plan->recovery);
    tensor::AlignedBuffer<std::uint8_t> got(erased.size() * unit);
    coder->apply(survivors.span(), got.span(), unit);
    for (std::size_t i = 0; i < erased.size(); ++i)
      ASSERT_TRUE(std::equal(
          got.span().begin() + static_cast<std::ptrdiff_t>(i * unit),
          got.span().begin() + static_cast<std::ptrdiff_t>((i + 1) * unit),
          stripe.begin() + static_cast<std::ptrdiff_t>(erased[i] * unit)))
          << label << " failed to recover unit " << erased[i];
  };

  // Bitpacket family: encode with naive, decode with each backend.
  for (const core::Backend b : bitmatrix_backends()) {
    run_family(
        [&](std::span<std::uint8_t> parity) {
          const auto enc = core::make_coder(core::Backend::NaiveBitmatrix,
                                            rs.parity_matrix());
          tensor::AlignedBuffer<std::uint8_t> out(parity.size());
          enc->apply(data.span(), out.span(), unit);
          std::copy(out.span().begin(), out.span().end(), parity.begin());
        },
        b, core::to_string(b));
  }

  // Byte family: isal decodes its own encoding.
  if (params.w == 8) {
    run_family(
        [&](std::span<std::uint8_t> parity) {
          std::vector<std::uint8_t> out(parity.size());
          rs.encode_reference(data.span(), out, unit);
          std::copy(out.begin(), out.end(), parity.begin());
        },
        core::Backend::Isal, "isal");
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, CrossBackendTest,
    ::testing::Values(
        // The exact Figure-2 grid: k in {8,9,10} x r in {2,3,4}, w=8,
        // 128 KB units.
        GridPoint{{8, 2, 8}, 128 * 1024}, GridPoint{{8, 3, 8}, 128 * 1024},
        GridPoint{{8, 4, 8}, 128 * 1024}, GridPoint{{9, 2, 8}, 128 * 1024},
        GridPoint{{9, 3, 8}, 128 * 1024}, GridPoint{{9, 4, 8}, 128 * 1024},
        GridPoint{{10, 2, 8}, 128 * 1024}, GridPoint{{10, 3, 8}, 128 * 1024},
        GridPoint{{10, 4, 8}, 128 * 1024},
        // Off-grid: other fields and small units.
        GridPoint{{6, 3, 4}, 2048}, GridPoint{{6, 3, 16}, 4096},
        GridPoint{{10, 4, 8}, 64}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.params.k) + "r" +
             std::to_string(info.param.params.r) + "w" +
             std::to_string(info.param.params.w) + "u" +
             std::to_string(info.param.unit);
    });

/// Backends must also agree for every generator family.
TEST(CrossBackendFamilies, AgreeAcrossGeneratorFamilies) {
  const ec::CodeParams params{6, 3, 8};
  const std::size_t unit = 1024;
  const auto data = testutil::random_bytes(params.k * unit, 31337);
  for (const ec::RsFamily family :
       {ec::RsFamily::VandermondeSystematic, ec::RsFamily::Cauchy,
        ec::RsFamily::CauchyGood, ec::RsFamily::CauchyBest}) {
    const ec::ReedSolomon rs(params, family);
    std::vector<std::uint8_t> bitpacket_ref(params.r * unit);
    ec::apply_matrix_reference_bitpacket(rs.parity_matrix(), data.span(),
                                         bitpacket_ref, unit);
    for (const core::Backend b : bitmatrix_backends()) {
      const auto coder = core::make_coder(b, rs.parity_matrix());
      tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
      coder->apply(data.span(), got.span(), unit);
      ASSERT_TRUE(std::equal(bitpacket_ref.begin(), bitpacket_ref.end(),
                             got.span().begin()))
          << core::to_string(b) << " with " << to_string(family);
    }
    std::vector<std::uint8_t> byte_ref(params.r * unit);
    rs.encode_reference(data.span(), byte_ref, unit);
    const auto isal = core::make_coder(core::Backend::Isal,
                                       rs.parity_matrix());
    tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
    isal->apply(data.span(), got.span(), unit);
    ASSERT_TRUE(
        std::equal(byte_ref.begin(), byte_ref.end(), got.span().begin()))
        << "isal with " << to_string(family);
  }
}

}  // namespace
}  // namespace tvmec
