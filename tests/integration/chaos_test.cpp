#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <tuple>

#include "../test_util.h"
#include "storage/checkpoint.h"
#include "storage/crc32c.h"
#include "storage/raid_array.h"
#include "storage/scrubber.h"
#include "storage/stripe_store.h"

/// End-to-end chaos: drive the storage stack through a seeded
/// fault-injection campaign — silent write corruption, transient read
/// errors, node crashes — then scrub, heal, and assert that (a) every
/// byte survives, (b) the stats books balance exactly against the
/// injector's own accounting, and (c) the whole ordeal is bit-for-bit
/// reproducible from the seed.
namespace tvmec::storage {
namespace {

constexpr std::size_t kUnit = 512;
constexpr std::size_t kStripeData = 4 * kUnit;  // k = 4

/// Everything a chaos run observes, for run-vs-run comparison.
struct ChaosOutcome {
  std::vector<std::uint32_t> content_crcs;
  FaultStats faults;
  StoreStats store;
  ScrubStats scrub;
  RetryStats retries;
  std::size_t repaired_after_crash = 0;

  bool operator==(const ChaosOutcome& o) const {
    const auto fields = [](const ChaosOutcome& c) {
      return std::make_tuple(
          c.content_crcs, c.faults.reads, c.faults.writes,
          c.faults.write_bit_flips, c.faults.torn_writes,
          c.faults.writes_corrupted, c.faults.read_bit_flips,
          c.faults.transient_bursts, c.faults.transient_errors,
          c.faults.crashes, c.store.degraded_reads, c.store.units_repaired,
          c.store.corruptions_detected, c.scrub.stripes_scanned,
          c.scrub.crc_errors, c.scrub.parity_errors, c.scrub.units_repaired,
          c.scrub.unrecoverable_stripes, c.retries.attempts, c.retries.retries,
          c.retries.exhausted, c.repaired_after_crash);
    };
    return fields(*this) == fields(o);
  }
};

/// The full StripeStore chaos scenario, parameterized only by seed.
ChaosOutcome stripe_store_chaos(std::uint64_t seed) {
  StripeStore store(ec::CodeParams{4, 2, 8}, kUnit, 8);
  FaultInjector inj(FaultPolicy{}, seed);
  store.attach_fault_injector(&inj);
  RetryPolicy retry;
  retry.max_attempts = 6;
  store.set_retry_policy(retry);

  // Phase 1 — ingest under silent write corruption. Object sizes are
  // exact stripe multiples so every stored byte is checksummed payload.
  FaultPolicy write_faults;
  write_faults.write_bit_flip = 0.03;
  write_faults.torn_write = 0.02;
  inj.set_policy(write_faults);
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> objects;
  for (std::size_t i = 1; i <= 10; ++i) {
    const std::string name = "obj" + std::to_string(i);
    objects.emplace_back(name, testutil::random_vector(i * kStripeData, i));
    store.put(name, objects.back().second);
  }

  // Phase 2 — a clean scrub pass finds *exactly* the units the injector
  // corrupted, and heals every one of them.
  inj.set_policy(FaultPolicy{});
  Scrubber scrubber(store);
  ChaosOutcome out;
  // Small steps, to run the cursor through many resume points.
  while (scrubber.passes_completed() == 0) scrubber.step(3);
  out.scrub = scrubber.last_pass();

  // Phase 3 — transient read errors: retries absorb them with no
  // degraded reads and no spurious repairs.
  FaultPolicy transient;
  transient.transient_read = 0.2;
  transient.transient_failures = 1;
  inj.set_policy(transient);
  for (const auto& [name, content] : objects) {
    const auto got = store.get(name);
    if (!got || *got != content) ADD_FAILURE() << name << " under transients";
  }
  inj.set_policy(FaultPolicy{});

  // Phase 4 — two node crashes (= r), discovered by reads, then healed.
  inj.crash_node(2);
  inj.crash_node(5);
  for (const auto& [name, content] : objects) {
    const auto got = store.get(name);
    if (!got || *got != content) ADD_FAILURE() << name << " after crashes";
  }
  store.revive_node(2);
  store.revive_node(5);
  out.repaired_after_crash = store.repair();

  // Final state: fully healed, every byte intact.
  for (const auto& [name, content] : objects) {
    const auto got = store.get(name);
    if (!got || *got != content) ADD_FAILURE() << name << " after heal";
    out.content_crcs.push_back(crc32c(*got));
  }
  out.faults = inj.stats();
  out.store = store.stats();
  out.retries = store.retry_stats();
  return out;
}

// Campaign seeds are screened so the random corruption stays within
// every stripe's r-unit tolerance; an unlucky seed would (correctly)
// leave unrecoverable stripes, which is a different test.
constexpr std::uint64_t kCampaignSeed = 1;
constexpr std::uint64_t kAltCampaignSeed = 2;

TEST(Chaos, StripeStoreSurvivesTheCampaign) {
  const ChaosOutcome out = stripe_store_chaos(kCampaignSeed);

  // The injector corrupted writes; nothing else did. The scrub ran
  // before any read, so the store detected each corrupt unit exactly
  // once — the books must balance to the unit.
  ASSERT_GT(out.faults.writes_corrupted, 0u) << "campaign was a no-op";
  EXPECT_EQ(out.scrub.crc_errors, out.faults.writes_corrupted);
  EXPECT_EQ(out.scrub.units_repaired, out.faults.writes_corrupted);
  EXPECT_EQ(out.scrub.unrecoverable_stripes, 0u);
  EXPECT_EQ(out.scrub.parity_errors, 0u);
  EXPECT_EQ(out.scrub.stripes_scanned, 55u);  // sum 1..10 stripes
  EXPECT_EQ(out.store.corruptions_detected, out.faults.writes_corrupted);

  // Transients were retried away, never reconstructed around. The only
  // exhausted retry budgets are the scrub's reads of persistently
  // corrupt units (re-reading can't fix those): one per corrupt unit.
  EXPECT_GT(out.faults.transient_errors, 0u);
  EXPECT_GT(out.retries.retries, 0u);
  EXPECT_EQ(out.retries.exhausted, out.faults.writes_corrupted);

  // The two crashes were found by reads and healed by repair().
  EXPECT_EQ(out.faults.crashes, 2u);
  EXPECT_GT(out.store.degraded_reads, 0u);
  EXPECT_GT(out.repaired_after_crash, 0u);
  EXPECT_EQ(out.store.units_repaired,
            out.scrub.units_repaired + out.repaired_after_crash);
}

TEST(Chaos, StripeStoreCampaignIsDeterministic) {
  const ChaosOutcome a = stripe_store_chaos(kCampaignSeed);
  const ChaosOutcome b = stripe_store_chaos(kCampaignSeed);
  EXPECT_TRUE(a == b);

  const ChaosOutcome c = stripe_store_chaos(kAltCampaignSeed);
  // A different seed yields a different campaign (contents still intact).
  EXPECT_EQ(c.content_crcs, a.content_crcs);
  EXPECT_FALSE(c.faults.write_bit_flips == a.faults.write_bit_flips &&
               c.faults.torn_writes == a.faults.torn_writes &&
               c.faults.transient_errors == a.faults.transient_errors);
}

TEST(Chaos, RaidArrayReadFaultsAndLatentCorruption) {
  const auto run = [](std::uint64_t seed) {
    RaidArray raid(ec::CodeParams{4, 2, 8}, 256, 16);
    FaultInjector inj(FaultPolicy{}, seed);
    raid.attach_fault_injector(&inj);
    RetryPolicy retry;
    retry.max_attempts = 8;
    raid.set_retry_policy(retry);

    // Clean ingest; the oracle is the block contents themselves.
    std::vector<std::vector<std::uint8_t>> oracle;
    for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba) {
      oracle.push_back(testutil::random_vector(256, 1000 + lba));
      raid.write_block(lba, oracle.back());
    }

    // Read-side chaos: flips and transients on every block read. CRCs
    // catch the flips, retries re-read, and when a unit exhausts its
    // budget parity reconstruction (itself CRC-verified) steps in —
    // either way the caller sees correct bytes.
    FaultPolicy read_faults;
    read_faults.read_bit_flip = 0.2;
    read_faults.transient_read = 0.1;
    read_faults.transient_failures = 1;
    inj.set_policy(read_faults);
    for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba)
      EXPECT_EQ(raid.read_block(lba), oracle[lba]) << "lba " << lba;
    EXPECT_GT(raid.retry_stats().retries, 0u);
    inj.set_policy(FaultPolicy{});

    // Latent corruption: up to r units per stripe, found by one scrub.
    std::mt19937_64 rng(seed);
    std::size_t planted = 0;
    for (std::size_t s = 0; s < raid.num_stripes(); s += 2) {
      // 1 or 2 (= r) *distinct* units — the corrupt hook toggles a bit,
      // so hitting the same unit twice would cancel out.
      const std::size_t first = rng() % 6;
      planted += raid.corrupt_unit(s, first) ? 1 : 0;
      if (rng() % 2 == 0)
        planted += raid.corrupt_unit(s, (first + 1 + rng() % 5) % 6) ? 1 : 0;
    }
    Scrubber scrubber(raid);
    const ScrubStats pass = scrubber.run();
    EXPECT_GT(planted, 0u);
    EXPECT_EQ(pass.crc_errors, planted);
    EXPECT_EQ(pass.units_repaired, planted);
    EXPECT_EQ(pass.unrecoverable_stripes, 0u);
    EXPECT_EQ(raid.verify(), 0u);

    // Crash a device mid-life; degraded reads serve, rebuild restores.
    inj.crash_node(3);
    for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba)
      EXPECT_EQ(raid.read_block(lba), oracle[lba]) << "lba " << lba;
    EXPECT_TRUE(raid.device_failed(3));
    raid.replace_device(3);
    EXPECT_GT(raid.rebuild(), 0u);
    EXPECT_EQ(raid.verify(), 0u);
    for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba)
      EXPECT_EQ(raid.read_block(lba), oracle[lba]) << "lba " << lba;

    const auto& f = inj.stats();
    const auto& r = raid.stats();
    return std::make_tuple(f.reads, f.read_bit_flips, f.transient_errors,
                           f.crashes, r.degraded_reads, r.blocks_rebuilt,
                           r.corruptions_detected, r.units_repaired,
                           raid.retry_stats().attempts,
                           raid.retry_stats().retries);
  };
  const auto a = run(0xD15C);
  const auto b = run(0xD15C);
  EXPECT_EQ(a, b);
}

TEST(Chaos, CheckpointRecoveryUnderCombinedFaults) {
  const auto run = [](std::uint64_t seed) {
    CheckpointManager mgr(ec::CodeParams{4, 2, 8}, 1024);
    FaultInjector inj(FaultPolicy{}, seed);
    mgr.attach_fault_injector(&inj);
    RetryPolicy retry;
    retry.max_attempts = 6;
    mgr.set_retry_policy(retry);

    std::vector<std::vector<std::uint8_t>> shards;
    for (std::size_t i = 0; i < 4; ++i)
      shards.push_back(testutil::random_vector(1024, seed + i));
    const std::vector<std::span<const std::uint8_t>> spans{shards.begin(),
                                                           shards.end()};

    // A rank dies mid-checkpoint; the checkpoint still lands (degraded).
    inj.crash_node(1);
    mgr.checkpoint(spans);
    inj.repair_node(1);

    // Recovery under transient read errors: the budget absorbs them.
    FaultPolicy transient;
    transient.transient_read = 0.3;
    transient.transient_failures = 1;
    inj.set_policy(transient);
    for (std::size_t rank = 0; rank < 4; ++rank)
      EXPECT_EQ(mgr.recover_shard(rank), shards[rank]) << "rank " << rank;
    inj.set_policy(FaultPolicy{});

    // A later loss on the healed stripe still recovers.
    mgr.lose_rank(2);
    EXPECT_EQ(mgr.recover_shard(2), shards[2]);

    const auto& s = mgr.stats();
    return std::make_tuple(s.checkpoints_taken, s.shards_recovered,
                           s.corruptions_detected, s.units_repaired,
                           inj.stats().transient_errors,
                           mgr.retry_stats().retries,
                           mgr.retry_stats().exhausted);
  };
  const auto a = run(0x5EED);
  EXPECT_EQ(std::get<6>(a), 0u);  // no retry budget exhausted
  EXPECT_GE(std::get<3>(a), 1u);  // the crashed rank's unit was rebuilt
  const auto b = run(0x5EED);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tvmec::storage
