#include "core/backends.h"

#include <gtest/gtest.h>

#include <set>

#include "../test_util.h"
#include "ec/reed_solomon.h"

namespace tvmec::core {
namespace {

TEST(Backends, AllBackendsListedOnce) {
  const auto backends = all_backends();
  EXPECT_EQ(backends.size(), 6u);
  std::set<std::string> names;
  for (const Backend b : backends) names.insert(to_string(b));
  EXPECT_EQ(names.size(), backends.size());
  EXPECT_EQ(backends.back(), Backend::Gemm);
}

TEST(Backends, NameLookupRoundTripsEveryBackend) {
  for (const Backend b : all_backends()) {
    const auto parsed = backend_from_name(to_string(b));
    ASSERT_TRUE(parsed.has_value()) << to_string(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(backend_from_name("").has_value());
  EXPECT_FALSE(backend_from_name("jerasure").has_value());
  EXPECT_FALSE(backend_from_name("ISAL").has_value());
}

TEST(Backends, EmbeddingFamilySplitsIsalFromBitmatrix) {
  for (const Backend b : all_backends())
    EXPECT_EQ(is_bitpacket_backend(b), b != Backend::Isal);
}

TEST(Backends, WFilteringDropsIsalForNon8) {
  EXPECT_EQ(backends_for_w(8).size(), 6u);
  const auto w4 = backends_for_w(4);
  EXPECT_EQ(w4.size(), 5u);
  for (const Backend b : w4) EXPECT_NE(b, Backend::Isal);
  EXPECT_EQ(backends_for_w(16).size(), 5u);
}

TEST(Backends, FactoryProducesWorkingCoders) {
  const ec::CodeParams params{6, 3, 8};
  const ec::ReedSolomon rs(params);
  const std::size_t unit = 512;
  const auto data = testutil::random_bytes(params.k * unit, 99);
  // Bitmatrix backends use the bitpacket embedding; ISA-L the byte
  // embedding (see apply_matrix_reference_bitpacket docs).
  std::vector<std::uint8_t> expect_bitpacket(params.r * unit);
  ec::apply_matrix_reference_bitpacket(rs.parity_matrix(), data.span(),
                                       expect_bitpacket, unit);
  std::vector<std::uint8_t> expect_byte(params.r * unit);
  rs.encode_reference(data.span(), expect_byte, unit);

  for (const Backend b : all_backends()) {
    const auto coder = make_coder(b, rs.parity_matrix());
    ASSERT_NE(coder, nullptr);
    EXPECT_EQ(coder->in_units(), params.k);
    EXPECT_EQ(coder->out_units(), params.r);
    EXPECT_EQ(coder->name(), to_string(b));
    tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
    coder->apply(data.span(), got.span(), unit);
    const auto& expect = b == Backend::Isal ? expect_byte : expect_bitpacket;
    ASSERT_TRUE(std::equal(expect.begin(), expect.end(), got.span().begin()))
        << to_string(b);
  }
}

TEST(Backends, IsalFactoryRejectsWrongField) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 4});
  EXPECT_THROW(make_coder(Backend::Isal, rs.parity_matrix()),
               std::invalid_argument);
}

TEST(Backends, GemmCoderWithExplicitSchedule) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  tensor::Schedule s;
  s.tile_m = 8;
  s.tile_n = 8;
  const auto coder = make_gemm_coder(rs.parity_matrix(), s);
  const std::size_t unit = 256;
  const auto data = testutil::random_bytes(4 * unit, 3);
  tensor::AlignedBuffer<std::uint8_t> got(2 * unit);
  std::vector<std::uint8_t> expect(2 * unit);
  coder->apply(data.span(), got.span(), unit);
  ec::apply_matrix_reference_bitpacket(rs.parity_matrix(), data.span(),
                                       expect, unit);
  ASSERT_TRUE(std::equal(expect.begin(), expect.end(), got.span().begin()));
}

}  // namespace
}  // namespace tvmec::core
