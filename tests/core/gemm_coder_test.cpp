#include "core/gemm_coder.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "baselines/naive.h"
#include "ec/reed_solomon.h"

namespace tvmec::core {
namespace {

using testutil::random_bytes;

struct GemmCase {
  ec::CodeParams params;
  std::size_t unit;
};

class GemmCoderTest : public ::testing::TestWithParam<GemmCase> {};

/// The GEMM path must agree byte-for-byte with the naive bitmatrix
/// reference (itself proven against GF arithmetic under the bitpacket
/// embedding) for every code shape in the paper's evaluation space.
TEST_P(GemmCoderTest, MatchesBitmatrixReference) {
  const auto& [params, unit] = GetParam();
  const ec::ReedSolomon rs(params);
  const GemmCoder coder(rs.parity_matrix());
  EXPECT_EQ(coder.in_units(), params.k);
  EXPECT_EQ(coder.out_units(), params.r);
  EXPECT_EQ(coder.w(), params.w);

  const auto data = random_bytes(params.k * unit, params.k * 1000 + unit);
  tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
  tensor::AlignedBuffer<std::uint8_t> expect(params.r * unit);
  coder.apply(data.span(), got.span(), unit);
  baseline::NaiveBitmatrixCoder(rs.parity_matrix())
      .apply(data.span(), expect.span(), unit);
  ASSERT_TRUE(std::equal(expect.span().begin(), expect.span().end(),
                         got.span().begin()));
}

/// And the anchor itself: the GEMM path equals first-principles GF
/// arithmetic under the bitpacket embedding (small unit: the reference
/// is O(bits * w)).
TEST(GemmCoderReference, MatchesBitpacketGfArithmetic) {
  const ec::CodeParams params{6, 3, 8};
  const std::size_t unit = 2048;
  const ec::ReedSolomon rs(params);
  const GemmCoder coder(rs.parity_matrix());
  const auto data = random_bytes(params.k * unit, 2024);
  tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
  std::vector<std::uint8_t> expect(params.r * unit);
  coder.apply(data.span(), got.span(), unit);
  ec::apply_matrix_reference_bitpacket(rs.parity_matrix(), data.span(),
                                       expect, unit);
  ASSERT_TRUE(std::equal(expect.begin(), expect.end(), got.span().begin()));
}

INSTANTIATE_TEST_SUITE_P(
    PaperShapes, GemmCoderTest,
    ::testing::Values(GemmCase{{8, 2, 8}, 128 * 1024},
                      GemmCase{{9, 3, 8}, 128 * 1024},
                      GemmCase{{10, 4, 8}, 128 * 1024},
                      GemmCase{{10, 4, 8}, 64}, GemmCase{{4, 2, 4}, 4096},
                      GemmCase{{6, 3, 16}, 8192}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.params.k) + "r" +
             std::to_string(info.param.params.r) + "w" +
             std::to_string(info.param.params.w) + "u" +
             std::to_string(info.param.unit);
    });

TEST(GemmCoder, EverySearchSpaceScheduleIsCorrect) {
  // Property: the schedule changes performance, never results.
  const ec::CodeParams params{6, 3, 8};
  const std::size_t unit = 1024;
  const ec::ReedSolomon rs(params);
  GemmCoder coder(rs.parity_matrix());
  const auto data = random_bytes(params.k * unit, 777);
  std::vector<std::uint8_t> expect(params.r * unit);
  ec::apply_matrix_reference_bitpacket(rs.parity_matrix(), data.span(),
                                       expect, unit);

  const tune::SearchSpace space(coder.task_shape(unit), 4);
  tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
  for (std::size_t i = 0; i < space.size(); ++i) {
    coder.set_schedule(space.at(i));
    got.fill_zero();
    coder.apply(data.span(), got.span(), unit);
    ASSERT_TRUE(std::equal(expect.begin(), expect.end(), got.span().begin()))
        << "schedule " << space.at(i).to_string();
  }
}

TEST(GemmCoder, TaskShapeMatchesBitmatrixGemm) {
  const ec::ReedSolomon rs(ec::CodeParams{10, 4, 8});
  const GemmCoder coder(rs.parity_matrix());
  const tune::TaskShape shape = coder.task_shape(128 * 1024);
  EXPECT_EQ(shape.m, 32u);          // r * w
  EXPECT_EQ(shape.k, 80u);          // k * w
  EXPECT_EQ(shape.n, 2048u);        // unit / w / 8
}

TEST(GemmCoder, RejectsInvalidSchedule) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  GemmCoder coder(rs.parity_matrix());
  tensor::Schedule bad;
  bad.tile_m = 5;
  EXPECT_THROW(coder.set_schedule(bad), std::invalid_argument);
  EXPECT_THROW(GemmCoder(rs.parity_matrix(), bad), std::invalid_argument);
}

TEST(GemmCoder, SizeAndAlignmentValidation) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  const GemmCoder coder(rs.parity_matrix());
  tensor::AlignedBuffer<std::uint8_t> data(4 * 64 + 1), parity(2 * 64);
  // 60 is not a multiple of w = 8: still rejected.
  EXPECT_THROW(coder.apply(data.span().subspan(0, 4 * 60), parity.span(), 60),
               std::invalid_argument);
  // Regression: a +1-offset (misaligned) input used to throw. It is now
  // staged through aligned scratch and matches the aligned result.
  for (std::size_t i = 0; i < data.span().size(); ++i)
    data.span()[i] = static_cast<std::uint8_t>(i * 131 + 7);
  const auto in_off = data.span().subspan(1, 4 * 64);
  tensor::AlignedBuffer<std::uint8_t> data_aligned(4 * 64);
  std::copy(in_off.begin(), in_off.end(), data_aligned.span().begin());
  tensor::AlignedBuffer<std::uint8_t> expect(2 * 64);
  coder.apply(data_aligned.span(), expect.span(), 64);
  EXPECT_NO_THROW(coder.apply(in_off, parity.span(), 64));
  EXPECT_TRUE(std::equal(parity.span().begin(), parity.span().end(),
                         expect.span().begin()));
}

TEST(GemmCoder, TuneInstallsBestScheduleAndImproves) {
  const ec::CodeParams params{10, 4, 8};
  const std::size_t unit = 32 * 1024;
  const ec::ReedSolomon rs(params);
  GemmCoder coder(rs.parity_matrix());

  tune::TuneOptions opt;
  opt.policy = tune::Policy::Random;
  opt.trials = 12;
  opt.seed = 3;
  const tune::TuneResult result = coder.tune(unit, opt, 1);
  EXPECT_EQ(result.history.size(), 12u);
  EXPECT_GT(result.best_throughput, 0.0);
  EXPECT_EQ(coder.schedule(), result.best_schedule);

  // Tuned coder still encodes correctly.
  const auto data = random_bytes(params.k * unit, 31);
  tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
  tensor::AlignedBuffer<std::uint8_t> expect(params.r * unit);
  coder.apply(data.span(), got.span(), unit);
  baseline::NaiveBitmatrixCoder(rs.parity_matrix())
      .apply(data.span(), expect.span(), unit);
  ASSERT_TRUE(std::equal(expect.span().begin(), expect.span().end(),
                         got.span().begin()));
}

TEST(GemmCoder, NameIsTvmEc) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  EXPECT_EQ(GemmCoder(rs.parity_matrix()).name(), "tvm-ec");
}

}  // namespace
}  // namespace tvmec::core
