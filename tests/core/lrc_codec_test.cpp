#include "core/lrc_codec.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "ec/reed_solomon.h"

namespace tvmec::core {
namespace {

constexpr std::size_t kUnit = 2048;

ec::LrcParams azure() { return ec::LrcParams{12, 2, 2, 8}; }

tensor::AlignedBuffer<std::uint8_t> make_stripe(LrcCodec& codec,
                                                std::uint64_t seed) {
  const auto& p = codec.params();
  tensor::AlignedBuffer<std::uint8_t> stripe(p.n() * kUnit);
  const auto data = testutil::random_bytes(p.k * kUnit, seed);
  std::copy(data.span().begin(), data.span().end(), stripe.data());
  codec.encode(
      std::span<const std::uint8_t>(stripe.data(), p.k * kUnit),
      std::span<std::uint8_t>(stripe.data() + p.k * kUnit,
                              (p.l + p.g) * kUnit),
      kUnit);
  return stripe;
}

TEST(LrcCodec, EncodeMatchesBitmatrixReference) {
  LrcCodec codec(azure());
  const auto& p = codec.params();
  const auto data = testutil::random_bytes(p.k * kUnit, 1);
  tensor::AlignedBuffer<std::uint8_t> parity((p.l + p.g) * kUnit);
  codec.encode(data.span(), parity.span(), kUnit);

  std::vector<std::uint8_t> expect((p.l + p.g) * kUnit);
  ec::apply_matrix_reference_bitpacket(codec.code().parity_matrix(),
                                       data.span(), expect, kUnit);
  EXPECT_TRUE(
      std::equal(expect.begin(), expect.end(), parity.span().begin()));
}

TEST(LrcCodec, LocalRepairReadsOnlyGroupAndRestoresExactly) {
  LrcCodec codec(azure());
  const auto& p = codec.params();
  const auto pristine = make_stripe(codec, 2);

  for (const std::size_t failed : {0u, 5u, 7u, 11u, 12u, 13u}) {
    tensor::AlignedBuffer<std::uint8_t> stripe = pristine;
    std::fill_n(stripe.data() + failed * kUnit, kUnit, 0xBB);
    const std::size_t reads = codec.repair_local(stripe.span(), failed, kUnit);
    EXPECT_EQ(reads, p.group_size());  // locality: k/l reads, not k
    ASSERT_TRUE(std::equal(pristine.span().begin(), pristine.span().end(),
                           stripe.span().begin()))
        << "unit " << failed;
  }
}

TEST(LrcCodec, GlobalParityHasNoLocalRepair) {
  LrcCodec codec(azure());
  auto stripe = make_stripe(codec, 3);
  EXPECT_THROW(codec.repair_local(stripe.span(), 14, kUnit),
               std::invalid_argument);
  EXPECT_THROW(codec.repair_local(stripe.span(), 99, kUnit),
               std::invalid_argument);
}

TEST(LrcCodec, MultiFailureDecode) {
  LrcCodec codec(azure());
  const auto pristine = make_stripe(codec, 4);

  // Up-to-g failures are always decodable; try data+global mixes.
  for (const std::vector<std::size_t>& pattern :
       {std::vector<std::size_t>{0, 6}, {3, 14}, {14, 15}, {2}, {12, 15}}) {
    tensor::AlignedBuffer<std::uint8_t> stripe = pristine;
    for (const std::size_t id : pattern)
      std::fill_n(stripe.data() + id * kUnit, kUnit, 0xCC);
    codec.decode(stripe.span(), pattern, kUnit);
    ASSERT_TRUE(std::equal(pristine.span().begin(), pristine.span().end(),
                           stripe.span().begin()));
  }
}

TEST(LrcCodec, UnrecoverablePatternThrows) {
  LrcCodec codec(ec::LrcParams{4, 2, 1, 8});
  auto stripe = make_stripe(codec, 5);
  // Both units of group 0, its local parity, and the global: 4 erasures
  // with only 3 parities overall -> unrecoverable.
  const std::vector<std::size_t> fatal = {0, 1, 4, 6};
  EXPECT_THROW(codec.decode(stripe.span(), fatal, kUnit),
               std::runtime_error);
}

struct LrcConfig {
  ec::LrcParams params;
};

class LrcCodecConfigTest : public ::testing::TestWithParam<LrcConfig> {};

/// Encode + local repair of every repairable unit + a g-failure decode,
/// across group shapes and field sizes.
TEST_P(LrcCodecConfigTest, FullCycleAcrossConfigs) {
  LrcCodec codec(GetParam().params);
  const auto& p = codec.params();
  const std::size_t unit = 8 * p.w * 4;
  tensor::AlignedBuffer<std::uint8_t> stripe(p.n() * unit);
  const auto data = testutil::random_bytes(p.k * unit, p.k * p.l);
  std::copy(data.span().begin(), data.span().end(), stripe.data());
  codec.encode(std::span<const std::uint8_t>(stripe.data(), p.k * unit),
               std::span<std::uint8_t>(stripe.data() + p.k * unit,
                                       (p.l + p.g) * unit),
               unit);
  const tensor::AlignedBuffer<std::uint8_t> pristine = stripe;

  // Local repair of every data and local-parity unit.
  for (std::size_t u = 0; u < p.k + p.l; ++u) {
    std::fill_n(stripe.data() + u * unit, unit, 0xEE);
    EXPECT_EQ(codec.repair_local(stripe.span(), u, unit), p.group_size());
    ASSERT_TRUE(std::equal(pristine.span().begin(), pristine.span().end(),
                           stripe.span().begin()))
        << "unit " << u;
  }

  // A g-sized failure burst of data units.
  std::vector<std::size_t> burst;
  for (std::size_t i = 0; i < p.g; ++i) burst.push_back(i);
  for (const std::size_t id : burst)
    std::fill_n(stripe.data() + id * unit, unit, 0);
  codec.decode(stripe.span(), burst, unit);
  ASSERT_TRUE(std::equal(pristine.span().begin(), pristine.span().end(),
                         stripe.span().begin()));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LrcCodecConfigTest,
    ::testing::Values(LrcConfig{{12, 2, 2, 8}}, LrcConfig{{12, 3, 2, 8}},
                      LrcConfig{{8, 4, 3, 8}}, LrcConfig{{6, 2, 2, 4}},
                      LrcConfig{{10, 5, 2, 16}}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.params.k) + "l" +
             std::to_string(info.param.params.l) + "g" +
             std::to_string(info.param.params.g) + "w" +
             std::to_string(info.param.params.w);
    });

TEST(LrcCodec, ScheduleChangeKeepsResults) {
  LrcCodec codec(azure());
  const auto pristine = make_stripe(codec, 6);
  tensor::Schedule s;
  s.tile_m = 8;
  s.tile_n = 16;
  s.block_n = 512;
  codec.set_schedule(s);

  tensor::AlignedBuffer<std::uint8_t> stripe = pristine;
  std::fill_n(stripe.data(), kUnit, 0);
  codec.repair_local(stripe.span(), 0, kUnit);
  EXPECT_TRUE(std::equal(pristine.span().begin(), pristine.span().end(),
                         stripe.span().begin()));
  // Re-encode under the new schedule matches too.
  const auto again = make_stripe(codec, 6);
  EXPECT_TRUE(std::equal(pristine.span().begin(), pristine.span().end(),
                         again.span().begin()));
}

}  // namespace
}  // namespace tvmec::core
